package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mw/internal/tracing"
)

func TestBadFlagsExit2(t *testing.T) {
	cases := [][]string{
		{"-nonsense"},
		{"-bench", "unobtainium"},
		{"-partition", "wat"},
		{"-queues", "wat"},
		{"-thermostat", "wat"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr %q)", args, code, errw.String())
		}
		if errw.Len() == 0 {
			t.Errorf("%v: no diagnostic on stderr", args)
		}
	}
}

func TestLoadMissingFileExits1(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-load", filepath.Join(t.TempDir(), "nope.mml")}, &out, &errw); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}

// TestTraceFlagExportsValidTimeline checks that -trace writes a
// Perfetto-loadable Chrome trace for a short parallel run.
func TestTraceFlagExportsValidTimeline(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.trace.json")
	var out, errw bytes.Buffer
	code := run([]string{
		"-bench", "lj-gas", "-n", "3", "-threads", "2", "-steps", "25",
		"-trace", trace,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "wrote trace timeline") {
		t.Errorf("summary missing trace line:\n%s", out.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("-trace output invalid: %v", err)
	}
	if st.Tracks != 3 {
		t.Errorf("tracks = %d, want 3 (coordinator + 2 workers)", st.Tracks)
	}
}

// TestEndToEndRun drives a tiny simulation through every output path: the
// periodic report, the XYZ trajectory, and the saved model round trip.
func TestEndToEndRun(t *testing.T) {
	dir := t.TempDir()
	traj := filepath.Join(dir, "run.xyz")
	save := filepath.Join(dir, "final.mml")
	var out, errw bytes.Buffer
	code := run([]string{
		"-bench", "lj-gas", "-n", "3", "-steps", "20", "-report-every", "10",
		"-threads", "2", "-queues", "stealing", "-partition", "dynamic",
		"-thermostat", "berendsen", "-target-temp", "90",
		"-traj", traj, "-save", save,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"27 atoms", "initial:", "step     10", "step     20", "final:", "updates/s", "Per-phase wall time", "saved model to"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}

	xyzData, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	// t=0 frame + one per report interval = 3 frames of 27 atoms.
	if got := strings.Count(string(xyzData), "\n27\n") + 1; got != 3 { // first header has no leading newline
		t.Errorf("trajectory has %d frames, want 3", got)
	}

	// The saved model must load back and run.
	var out2, errw2 bytes.Buffer
	if code := run([]string{"-load", save, "-steps", "5"}, &out2, &errw2); code != 0 {
		t.Fatalf("reloading saved model: exit %d; stderr: %s", code, errw2.String())
	}
	if !strings.Contains(out2.String(), "27 atoms") {
		t.Errorf("reloaded model output:\n%s", out2.String())
	}
}

func TestTelemetryAddrServesWhileRunning(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-bench", "lj-gas", "-n", "3", "-steps", "10", "-threads", "2",
		"-telemetry-addr", "127.0.0.1:0",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "telemetry: http://127.0.0.1:") {
		t.Errorf("expected the bound telemetry address in output:\n%s", s)
	}
	// The final phase table is enriched from the same recorder.
	if !strings.Contains(s, "p99 (µs)") {
		t.Errorf("expected quantile columns in the phase table:\n%s", s)
	}
}
