// Command mwsim runs one of the paper's benchmark simulations (or a
// generated LJ gas) in the parallel Molecular Workbench engine and reports
// energies, temperature and the display refresh rate the parallelization
// effort targeted ("MW can now sustain refresh rates as high as 32 updates
// per second on some 1000 atom benchmarks").
//
// Usage:
//
//	mwsim -bench salt -threads 4 -ps 2
//	mwsim -bench lj-gas -n 6 -temp 120 -steps 500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mw/internal/core"
	"mw/internal/mml"
	"mw/internal/report"
	"mw/internal/telemetry"
	"mw/internal/tracing"
	"mw/internal/workload"
	"mw/internal/xyz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchName = fs.String("bench", "salt", "benchmark: salt, nanocar, Al-1000, lj-gas")
		threads   = fs.Int("threads", 1, "worker threads")
		steps     = fs.Int("steps", 0, "timesteps to run (overrides -ps)")
		ps        = fs.Float64("ps", 1, "picoseconds to simulate")
		partition = fs.String("partition", "cyclic", "work partition: cyclic, block, guided, dynamic")
		queues    = fs.String("queues", "shared", "queue topology: shared, per-worker, stealing")
		reorder   = fs.Bool("reorder", false, "sort atoms into Morton cell order on neighbor-list rebuilds (output stays in file order)")
		cluster   = fs.Bool("cluster", false, "Verlet cluster-pair (4x4) LJ neighbor format; with -reorder the engine auto-picks the fast or packed-SIMD kernel")
		halflist  = fs.Bool("halflist", true, "Newton-3 half neighbor lists (false = full lists, no mirrored force writes)")
		n         = fs.Int("n", 5, "lattice size for -bench lj-gas (n³ atoms)")
		temp      = fs.Float64("temp", 120, "temperature for -bench lj-gas (K)")
		every     = fs.Int("report-every", 0, "print diagnostics every k steps (0 = summary only)")
		loadPath  = fs.String("load", "", "load a model file instead of a named benchmark")
		savePath  = fs.String("save", "", "save the final state as a model file")
		thermo    = fs.String("thermostat", "none", "temperature control: none, rescale, berendsen, langevin")
		trajPath  = fs.String("traj", "", "write an XYZ trajectory (one frame per -report-every interval)")
		target    = fs.Float64("target-temp", 300, "thermostat target temperature (K)")
		teleAddr  = fs.String("telemetry-addr", "", "serve live telemetry (JSON, Prometheus, pprof) on this address, e.g. :8077 (empty = off)")
		tracePath = fs.String("trace", "", "export the run as Chrome trace JSON to this path (open in ui.perfetto.dev)")
		traceRing = fs.Int("trace-ring", 256, "step records retained by the tracer's flight ring")
		flightDir = fs.String("flight-dir", "", "dump flight-<step>.trace.json here when a step breaches the anomaly threshold")
		anomaly   = fs.Float64("anomaly-factor", 8, "anomaly threshold: step wall time vs rolling p99 multiple (<0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var b *workload.Benchmark
	switch {
	case *loadPath != "":
		m, err := mml.LoadFile(*loadPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		sys, cfg, err := m.System()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		b = &workload.Benchmark{Name: m.Name, Sys: sys, Cfg: cfg}
	case *benchName == "lj-gas":
		b = workload.LJGas(*n, *temp, true)
	default:
		if b = workload.ByName(*benchName); b == nil {
			fmt.Fprintf(stderr, "unknown benchmark %q (salt, nanocar, Al-1000, lj-gas)\n", *benchName)
			return 2
		}
	}

	cfg := b.Cfg
	cfg.Threads = *threads
	cfg.Reorder = *reorder
	cfg.Cluster = *cluster
	if !*halflist {
		cfg.PairLists = core.FullLists
	}
	switch *partition {
	case "cyclic":
		cfg.Partition = core.PartitionCyclic
	case "block":
		cfg.Partition = core.PartitionBlock
	case "guided":
		cfg.Partition = core.PartitionGuided
	case "dynamic":
		cfg.Partition = core.PartitionDynamic
	default:
		fmt.Fprintf(stderr, "unknown partition %q\n", *partition)
		return 2
	}
	switch *thermo {
	case "none":
	case "rescale":
		cfg.Thermostat = &core.VelocityRescale{T: *target}
	case "berendsen":
		cfg.Thermostat = &core.Berendsen{T: *target}
	case "langevin":
		cfg.Thermostat = &core.Langevin{T: *target}
	default:
		fmt.Fprintf(stderr, "unknown thermostat %q\n", *thermo)
		return 2
	}
	switch *queues {
	case "shared":
		cfg.Queues = core.SharedQueue
	case "per-worker":
		cfg.Queues = core.PerWorkerQueues
	case "stealing":
		cfg.Queues = core.WorkStealingQueues
	default:
		fmt.Fprintf(stderr, "unknown queue topology %q\n", *queues)
		return 2
	}

	// The engine always runs instrumented — the ring-buffer recorder is the
	// low-overhead monitor the observer-native experiment gates under 2%, so
	// there is no "fast path without it" worth a flag. -telemetry-addr only
	// decides whether the state is additionally served over HTTP for mwtop.
	rec := telemetry.NewRecorder(*threads, core.PhaseNames())
	cfg.Telemetry = rec
	// -trace / -flight-dir upgrade the recorder to the structured tracer: the
	// same rings underneath, plus the per-step span timeline and the
	// anomaly-triggered flight recorder. The plain recorder stays the default
	// so untraced runs keep the exact path the observer gate measures.
	var tracer *tracing.Tracer
	if *tracePath != "" || *flightDir != "" {
		tracer = tracing.New(rec, tracing.Config{
			RingSteps:     *traceRing,
			AnomalyFactor: *anomaly,
			FlightDir:     *flightDir,
			OnFlight: func(path string, step int) {
				if path != "" {
					fmt.Fprintf(stderr, "anomaly at step %d — flight dump %s\n", step, path)
				}
			},
		})
		cfg.Telemetry = tracer
	}
	if *teleAddr != "" {
		srv, addr, err := telemetry.Serve(*teleAddr, rec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "telemetry: http://%s/telemetry.json (JSON), /metrics (Prometheus), /debug/pprof/\n", addr)
	}

	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer sim.Close()

	nsteps := *steps
	if nsteps <= 0 {
		nsteps = int(*ps * 1000 / cfg.Dt)
	}
	ch := workload.Characterize(b.Name, b.Sys)
	fmt.Fprintf(stdout, "%s: %d atoms (%d charged, %d bond terms), dt=%g fs, %d threads, %s/%s\n",
		ch.Name, ch.Atoms, ch.ChargedAtoms, ch.BondTerms, cfg.Dt, cfg.Threads,
		cfg.Partition, cfg.Queues)
	fmt.Fprintf(stdout, "initial: PE=%.3f eV  KE=%.3f eV  T=%.1f K\n",
		sim.PE(), sim.Sys.KineticEnergy(), sim.Sys.Temperature())

	var traj *xyz.Writer
	if *trajPath != "" {
		f, err := os.Create(*trajPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		traj = xyz.NewWriter(f)
		// Trajectory frames and saved models are always in file (original)
		// atom order, even when -reorder has permuted the live arrays.
		if err := traj.WriteFrame(sim.SystemInOriginalOrder(), "t=0"); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	start := time.Now()
	if *every > 0 {
		for done := 0; done < nsteps; {
			k := *every
			if done+k > nsteps {
				k = nsteps - done
			}
			sim.Run(k)
			done += k
			fmt.Fprintf(stdout, "step %6d  t=%7.2f ps  E=%12.4f eV  T=%7.1f K  rebuilds=%d\n",
				done, float64(done)*cfg.Dt/1000, sim.TotalEnergy(), sim.Sys.Temperature(), sim.Rebuilds())
			if traj != nil {
				if err := traj.WriteFrame(sim.SystemInOriginalOrder(), fmt.Sprintf("t=%g fs", float64(done)*cfg.Dt)); err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
			}
		}
	} else {
		sim.Run(nsteps)
		if traj != nil {
			if err := traj.WriteFrame(sim.SystemInOriginalOrder(), "final"); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	wall := time.Since(start)

	fmt.Fprintf(stdout, "final:   PE=%.3f eV  KE=%.3f eV  T=%.1f K\n",
		sim.PE(), sim.Sys.KineticEnergy(), sim.Sys.Temperature())
	fmt.Fprintf(stdout, "simulated %.2f ps in %v — %.1f updates/s (refresh rate)\n",
		float64(nsteps)*cfg.Dt/1000, wall.Round(time.Millisecond),
		float64(nsteps)/wall.Seconds())

	snap := rec.Snapshot(0)
	t := report.NewTable("Per-phase wall time", "Phase", "Total (ms)", "Mean/step (µs)", "p50 (µs)", "p99 (µs)")
	for ph := core.PhasePredictor; ph < core.NumPhases; ph++ {
		total := sim.PhaseWall[ph].Sum()
		t.AddRow(ph.String(), total*1e3, total/float64(nsteps)*1e6,
			snap.Phases[ph].P50Micros, snap.Phases[ph].P99Micros)
	}
	fmt.Fprint(stdout, t.String())

	if tracer != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := tracer.Export(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote trace timeline to %s (%d retained steps) — open in ui.perfetto.dev\n",
			*tracePath, len(tracer.Records()))
	}
	if tracer != nil {
		if anomalies := tracer.Anomalies(); anomalies > 0 {
			dumps, last := tracer.FlightDumps()
			fmt.Fprintf(stdout, "anomalous steps: %d (flight dumps: %d, last %s)\n", anomalies, dumps, last)
		}
	}

	if *savePath != "" {
		if err := mml.SaveFile(*savePath, mml.FromSystem(b.Name, sim.SystemInOriginalOrder(), cfg)); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "saved model to %s\n", *savePath)
	}
	return 0
}
