package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mw/internal/serve"
)

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-queues", "quantum"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errBuf strings.Builder
		if code := run(args, &out, &errBuf, nil, nil); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

func TestRunBadAddr(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errBuf, nil, nil); code != 1 {
		t.Errorf("run with bad addr = %d, want 1", code)
	}
}

// TestDaemonEndToEnd boots the daemon on a free port, walks a session
// through create/step/close over real HTTP, then shuts it down via the
// stop channel and checks a clean exit.
func TestDaemonEndToEnd(t *testing.T) {
	addrCh := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan int, 1)
	var out, errBuf strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queues", "stealing"},
			&out, &errBuf, func(addr string) { addrCh <- addr }, stop)
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never started; stderr: %s", errBuf.String())
	}
	if err := serve.WaitHealthy(base, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/v1/sessions?workload=lj-gas&n=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s (%s)", resp.Status, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/sessions/"+created.ID+"/step?n=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %s", resp.Status)
	}

	close(stop)
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("daemon exit code %d, want 0 (stderr: %s)", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "mwserved listening on") {
		t.Errorf("startup banner missing from stdout: %q", out.String())
	}
}
