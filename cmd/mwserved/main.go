// Command mwserved is the multi-tenant simulation daemon: it multiplexes
// many concurrent small simulations over one shared worker pool, batching
// tenant steps through the engine's queue topologies, shedding load with
// 429s when oversubscribed, and exposing sessions, trajectories and
// telemetry over HTTP.
//
// Usage:
//
//	mwserved [-addr :7977] [-workers N] [-queues shared|per-worker|stealing]
//	         [-max-sessions N] [-queue-depth N] [-max-batch N]
//	         [-batch-window D] [-idle-timeout D] [-gc-interval D]
//	         [-max-step N] [-trace-sample K] [-trace-ring N] [-slo-target D]
//
// The daemon runs until SIGINT/SIGTERM, then drains and closes every
// session.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mw/internal/core"
	"mw/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	quit := make(chan struct{})
	go func() {
		<-stop
		close(quit)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil, quit))
}

// run is main with its environment abstracted for tests: started (if
// non-nil) receives the bound address once the listener is up, and closing
// stop shuts the daemon down gracefully.
func run(args []string, stdout, stderr io.Writer, started func(addr string), stop <-chan struct{}) int {
	fs := flag.NewFlagSet("mwserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:7977", "listen address")
		workers     = fs.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		queues      = fs.String("queues", "shared", "queue topology: shared, per-worker, stealing")
		maxSessions = fs.Int("max-sessions", 4096, "maximum live sessions")
		queueDepth  = fs.Int("queue-depth", 1024, "bounded step-queue depth (admission control)")
		maxBatch    = fs.Int("max-batch", 512, "max step requests coalesced per batch")
		batchWindow = fs.Duration("batch-window", 0, "extra coalescing wait per batch (0 = none)")
		idleTimeout = fs.Duration("idle-timeout", 5*time.Minute, "evict sessions idle longer than this")
		gcInterval  = fs.Duration("gc-interval", 30*time.Second, "idle-GC sweep interval (<0 disables)")
		maxStep     = fs.Int("max-step", 1000, "max steps per step request")
		traceSample = fs.Int("trace-sample", 64, "trace 1-in-K unheaded step requests (1 = all, <0 disables)")
		traceRing   = fs.Int("trace-ring", 512, "completed request traces retained for /v1/trace")
		sloTarget   = fs.Duration("slo-target", 250*time.Millisecond, "per-tenant p99 step-latency SLO target")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mwserved: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	var topo core.QueueTopology
	switch *queues {
	case "shared":
		topo = core.SharedQueue
	case "per-worker":
		topo = core.PerWorkerQueues
	case "stealing":
		topo = core.WorkStealingQueues
	default:
		fmt.Fprintf(stderr, "mwserved: unknown -queues %q (shared, per-worker, stealing)\n", *queues)
		return 2
	}

	srv := serve.NewServer(serve.Config{
		Workers:            *workers,
		Queues:             topo,
		MaxSessions:        *maxSessions,
		QueueDepth:         *queueDepth,
		MaxBatch:           *maxBatch,
		BatchWindow:        *batchWindow,
		IdleTimeout:        *idleTimeout,
		GCInterval:         *gcInterval,
		MaxStepsPerRequest: *maxStep,
		TraceSample:        *traceSample,
		TraceRing:          *traceRing,
		SLOTargetP99:       *sloTarget,
	})
	httpSrv, bound, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "mwserved: %v\n", err)
		srv.Close()
		return 1
	}
	fmt.Fprintf(stdout, "mwserved listening on %s (workers=%d queues=%s max-sessions=%d queue-depth=%d)\n",
		bound, srv.Workers(), topo, *maxSessions, *queueDepth)
	if started != nil {
		started(bound)
	}
	<-stop
	fmt.Fprintln(stdout, "mwserved: shutting down")
	httpSrv.Close()
	srv.Close()
	return 0
}
