package main

import (
	"bytes"
	"strings"
	"testing"

	"mw/internal/analysis"
)

// TestRunCleanTree runs the full analyzer suite over the repository through
// the CLI entry point: the tree must be clean and the exit code 0.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-C", "..", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "packages clean") {
		t.Errorf("missing clean summary in output: %q", out.String())
	}
}

// TestRunEscapeGate runs the escape gate through the CLI: baseline must be
// in sync with the tree.
func TestRunEscapeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-C", "..", "-escapes"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "escapes ok") {
		t.Errorf("missing escape summary in output: %q", out.String())
	}
}

// TestRunFindingsExitOne feeds the analyzers a fixture package that violates
// the rules and checks the non-zero exit plus the per-file per-rule table.
func TestRunFindingsExitOne(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module; skipped in -short")
	}
	var out, errb bytes.Buffer
	// The vecvalue fixture directory is a plain Go package; pointing the CLI
	// at it exercises the findings path end to end.
	code := run([]string{"-C", "..", "./internal/analysis/testdata/vecvalue"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "[vecvalue]") {
		t.Errorf("no vecvalue diagnostics in output:\n%s", text)
	}
	if !strings.Contains(text, "findings") || !strings.Contains(text, "count") {
		t.Errorf("no summary table in output:\n%s", text)
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestSummaryTable checks the table aggregation independent of any loaded
// package.
func TestSummaryTable(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Rule: "hotalloc", Message: "a"},
		{Rule: "hotalloc", Message: "b"},
		{Rule: "vecvalue", Message: "c"},
	}
	diags[0].Pos.Filename = "/root/x/a.go"
	diags[1].Pos.Filename = "/root/x/a.go"
	diags[2].Pos.Filename = "/root/x/b.go"
	got := summaryTable("/root/x", diags)
	for _, want := range []string{"a.go", "b.go", "hotalloc", "vecvalue", "3 findings"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary table missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "2") {
		t.Errorf("aggregated count missing:\n%s", got)
	}
}
