// mwlint runs the project's static-analysis suite (internal/analysis): the
// hotalloc, latchcheck, privforce and vecvalue analyzers over the given
// package patterns, or — with -escapes — the escape-budget gate that diffs
// the compiler's `-gcflags=-m` heap-escape diagnostics for //mw:hotpath
// loops against a checked-in baseline.
//
// Usage:
//
//	mwlint [packages]            run the AST analyzers (default ./...)
//	mwlint -escapes              run the escape-budget gate
//	mwlint -escapes -update      regenerate the escape baseline
//
// mwlint exits 0 on a clean tree, 1 on findings, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mw/internal/analysis"
	"mw/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	escapes := fs.Bool("escapes", false, "run the escape-budget gate instead of the AST analyzers")
	update := fs.Bool("update", false, "with -escapes: regenerate the baseline from the current tree")
	chdir := fs.String("C", ".", "directory inside the module to run from")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	root, err := analysis.ModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if *escapes {
		return runEscapes(root, *update, stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runAnalyzers(root, patterns, stdout, stderr)
}

func runAnalyzers(root string, patterns []string, stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if len(diags) == 0 {
		fmt.Fprintf(stdout, "mwlint: %d packages clean\n", len(pkgs))
		return 0
	}
	for _, d := range diags {
		d.Pos.Filename = relTo(root, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, summaryTable(root, diags))
	return 1
}

// summaryTable renders per-file per-rule finding counts with the same table
// formatting the benchmark harness uses.
func summaryTable(root string, diags []analysis.Diagnostic) string {
	type key struct{ file, rule string }
	counts := map[key]int{}
	for _, d := range diags {
		counts[key{relTo(root, d.Pos.Filename), d.Rule}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].rule < keys[j].rule
	})
	tb := report.NewTable(fmt.Sprintf("mwlint: %d findings", len(diags)), "file", "rule", "count")
	for _, k := range keys {
		tb.AddRow(k.file, k.rule, counts[k])
	}
	return tb.String()
}

func runEscapes(root string, update bool, stdout, stderr io.Writer) int {
	gate := analysis.DefaultEscapeGate(root)
	rep, err := gate.Check(update)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if update {
		fmt.Fprintf(stdout, "mwlint: escape baseline updated, %d hot-loop escapes recorded in %s\n",
			len(rep.InScope), relTo(root, gate.Baseline))
		return 0
	}
	if len(rep.Stale) > 0 {
		fmt.Fprintf(stdout, "mwlint: %d stale baseline entries (rerun with -escapes -update):\n", len(rep.Stale))
		for _, k := range rep.Stale {
			fmt.Fprintf(stdout, "  stale: %s\n", k)
		}
	}
	if rep.Failed() {
		tb := report.NewTable(fmt.Sprintf("mwlint: %d new hot-loop heap escapes", len(rep.New)), "escape")
		for _, k := range rep.New {
			tb.AddRow(k)
		}
		fmt.Fprint(stdout, tb.String())
		fmt.Fprintln(stdout, "mwlint: new heap escapes in //mw:hotpath loops; fix them or update the baseline deliberately")
		return 1
	}
	fmt.Fprintf(stdout, "mwlint: escapes ok, %d in-scope escapes all baselined\n", len(rep.InScope))
	return 0
}

func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
