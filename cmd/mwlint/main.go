// mwlint runs the project's static-analysis suite (internal/analysis):
//
//   - the AST/type analyzers — hotalloc, latchcheck, privforce, vecvalue,
//     atomiccheck, and the module-level hotprop propagation — over the given
//     package patterns;
//   - with -escapes, the escape-budget gate that diffs the compiler's
//     `-gcflags=-m` heap-escape diagnostics for //mw:hotpath loops against a
//     checked-in baseline;
//   - with -vecasm, the codegen gate that parses `go build -gcflags=-S`
//     output under GOAMD64=v3 and checks the hot kernels' instruction mix
//     (packed FP present, no runtime calls in hot loops) against
//     vecasm.baseline;
//   - with -bce, the bounds-check gate over `-gcflags=-d=ssa/check_bce`
//     output against bce.baseline.
//
// Usage:
//
//	mwlint [packages]            run the analyzers (default ./...)
//	mwlint -json [packages]      same, with machine-readable JSON on stdout
//	mwlint -escapes              run the escape-budget gate
//	mwlint -vecasm [-report f]   run the vectorization/codegen gate
//	mwlint -bce                  run the bounds-check gate
//	mwlint <gate> -update        regenerate that gate's baseline
//
// The codegen gates (-vecasm, -bce) are amd64-specific; on other
// architectures they print a skip notice and exit 0 so `make lint` stays
// portable. mwlint exits 0 on a clean tree, 1 on findings, 2 on operational
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"mw/internal/analysis"
	"mw/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	escapes := fs.Bool("escapes", false, "run the escape-budget gate instead of the analyzers")
	vecasm := fs.Bool("vecasm", false, "run the vectorization/codegen gate (amd64 only)")
	bce := fs.Bool("bce", false, "run the bounds-check gate (amd64 only)")
	update := fs.Bool("update", false, "with a gate flag: regenerate its baseline from the current tree")
	jsonOut := fs.Bool("json", false, "emit findings and per-rule counts as JSON")
	reportPath := fs.String("report", "", "with -vecasm: write the full per-function instruction census to this file")
	chdir := fs.String("C", ".", "directory inside the module to run from")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	root, err := analysis.ModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	switch {
	case *escapes:
		return runEscapes(root, *update, stdout, stderr)
	case *vecasm:
		return runVecasm(root, *update, *reportPath, stdout, stderr)
	case *bce:
		return runBCE(root, *update, stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runAnalyzers(root, patterns, *jsonOut, stdout, stderr)
}

func runAnalyzers(root string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	for i := range diags {
		diags[i].Pos.Filename = relTo(root, diags[i].Pos.Filename)
	}
	if jsonOut {
		if err := writeJSON(stdout, len(pkgs), diags); err != nil {
			fmt.Fprintln(stderr, "mwlint:", err)
			return 2
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	if len(diags) == 0 {
		fmt.Fprintf(stdout, "mwlint: %d packages clean (%s)\n", len(pkgs), strings.Join(ruleNames(), ", "))
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, summaryTable(root, diags))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, ruleTable(diags))
	return 1
}

// jsonReport is the machine-readable run summary CI uploads as an artifact.
type jsonReport struct {
	Packages int            `json:"packages"`
	Counts   map[string]int `json:"counts"` // per rule, zero included
	Findings []jsonFinding  `json:"findings"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, pkgs int, diags []analysis.Diagnostic) error {
	rep := jsonReport{
		Packages: pkgs,
		Counts:   map[string]int{},
		Findings: []jsonFinding{},
	}
	for _, name := range ruleNames() {
		rep.Counts[name] = 0
	}
	for _, d := range diags {
		rep.Counts[d.Rule]++
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func ruleNames() []string {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return names
}

// summaryTable renders per-file per-rule finding counts with the same table
// formatting the benchmark harness uses. Paths are shown relative to root.
func summaryTable(root string, diags []analysis.Diagnostic) string {
	type key struct{ file, rule string }
	counts := map[key]int{}
	for _, d := range diags {
		counts[key{relTo(root, d.Pos.Filename), d.Rule}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].rule < keys[j].rule
	})
	tb := report.NewTable(fmt.Sprintf("mwlint: %d findings", len(diags)), "file", "rule", "count")
	for _, k := range keys {
		tb.AddRow(k.file, k.rule, counts[k])
	}
	return tb.String()
}

// ruleTable renders the per-rule totals, every rule listed even when clean.
func ruleTable(diags []analysis.Diagnostic) string {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Rule]++
	}
	tb := report.NewTable("findings by rule", "rule", "count")
	for _, name := range ruleNames() {
		tb.AddRow(name, counts[name])
	}
	return tb.String()
}

func runEscapes(root string, update bool, stdout, stderr io.Writer) int {
	gate := analysis.DefaultEscapeGate(root)
	rep, err := gate.Check(update)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if update {
		fmt.Fprintf(stdout, "mwlint: escape baseline updated, %d hot-loop escapes recorded in %s\n",
			len(rep.InScope), relTo(root, gate.Baseline))
		return 0
	}
	if len(rep.Stale) > 0 {
		fmt.Fprintf(stdout, "mwlint: %d stale baseline entries (rerun with -escapes -update):\n", len(rep.Stale))
		for _, k := range rep.Stale {
			fmt.Fprintf(stdout, "  stale: %s\n", k)
		}
	}
	if rep.Failed() {
		tb := report.NewTable(fmt.Sprintf("mwlint: %d new hot-loop heap escapes", len(rep.New)), "escape")
		for _, k := range rep.New {
			tb.AddRow(k)
		}
		fmt.Fprint(stdout, tb.String())
		fmt.Fprintln(stdout, "mwlint: new heap escapes in //mw:hotpath loops; fix them or update the baseline deliberately")
		return 1
	}
	fmt.Fprintf(stdout, "mwlint: escapes ok, %d in-scope escapes all baselined\n", len(rep.InScope))
	return 0
}

// skipNonAMD64 reports (and is the single place that decides) whether the
// codegen gates apply on this machine: the instruction classifier and the
// committed baselines are amd64-only.
func skipNonAMD64(gate string, stdout io.Writer) bool {
	if runtime.GOARCH == analysis.CodegenArch {
		return false
	}
	fmt.Fprintf(stdout, "mwlint: %s skipped: codegen gate requires GOARCH=%s (running on %s)\n",
		gate, analysis.CodegenArch, runtime.GOARCH)
	return true
}

func runVecasm(root string, update bool, reportPath string, stdout, stderr io.Writer) int {
	if skipNonAMD64("-vecasm", stdout) {
		return 0
	}
	gate := analysis.DefaultVecasmGate(root)
	rep, err := gate.Check(update)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(rep.ReportText()), 0o644); err != nil {
			fmt.Fprintln(stderr, "mwlint:", err)
			return 2
		}
	}
	if update {
		if rep.Failed() {
			printVecasmFailures(stdout, rep)
			fmt.Fprintln(stdout, "mwlint: baseline NOT updated: hard kernel invariants failed")
			return 1
		}
		fmt.Fprintf(stdout, "mwlint: vecasm baseline updated, %d hot functions recorded in %s\n",
			len(rep.Funcs), relTo(root, gate.Baseline))
		return 0
	}
	for _, s := range rep.Stale {
		fmt.Fprintf(stdout, "  stale: %s (rerun with -vecasm -update)\n", s)
	}
	if rep.Failed() {
		printVecasmFailures(stdout, rep)
		fmt.Fprintln(stdout, "mwlint: kernel codegen regressed; fix it or update the baseline deliberately")
		return 1
	}
	fmt.Fprintf(stdout, "mwlint: vecasm ok, %d hot functions within baseline (GOAMD64=%s)\n",
		len(rep.Funcs), analysis.CodegenAMD64Level)
	return 0
}

func printVecasmFailures(stdout io.Writer, rep *analysis.VecasmReport) {
	tb := report.NewTable(fmt.Sprintf("mwlint: %d vecasm failures", len(rep.Failures)), "failure")
	for _, f := range rep.Failures {
		tb.AddRow(f)
	}
	fmt.Fprint(stdout, tb.String())
}

func runBCE(root string, update bool, stdout, stderr io.Writer) int {
	if skipNonAMD64("-bce", stdout) {
		return 0
	}
	gate := analysis.DefaultBCEGate(root)
	rep, err := gate.Check(update)
	if err != nil {
		fmt.Fprintln(stderr, "mwlint:", err)
		return 2
	}
	if update {
		fmt.Fprintf(stdout, "mwlint: bce baseline updated, %d hot-loop bounds-check entries recorded in %s\n",
			len(rep.InScope), relTo(root, gate.Baseline))
		return 0
	}
	if len(rep.Stale) > 0 {
		fmt.Fprintf(stdout, "mwlint: %d stale baseline entries (rerun with -bce -update):\n", len(rep.Stale))
		for _, k := range rep.Stale {
			fmt.Fprintf(stdout, "  stale: %s\n", k)
		}
	}
	if rep.Failed() {
		tb := report.NewTable(fmt.Sprintf("mwlint: %d new hot-loop bounds checks", len(rep.New)), "bounds check")
		for _, k := range rep.New {
			tb.AddRow(k)
		}
		fmt.Fprint(stdout, tb.String())
		fmt.Fprintln(stdout, "mwlint: new bounds checks in //mw:hotpath loops; restore the BCE idioms or update the baseline deliberately")
		return 1
	}
	fmt.Fprintf(stdout, "mwlint: bce ok, %d in-scope bounds checks all baselined\n", len(rep.InScope))
	return 0
}

func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
