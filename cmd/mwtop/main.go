// Command mwtop is "top" for a running engine: it polls the telemetry
// endpoint an mwsim started with -telemetry-addr and renders a live
// per-phase / per-worker view of the simulation — phase latency quantiles
// from the log-bucketed histograms, and each worker's chunk, steal and park
// counters. It is the read side of the §IV lesson the telemetry package
// implements: watching the engine must not perturb it, so mwtop only ever
// reads atomic snapshots over HTTP.
//
// Usage:
//
//	mwsim -bench salt -threads 4 -ps 50 -telemetry-addr :8077 &
//	mwtop -addr localhost:8077
//	mwtop -addr localhost:8077 -once -json
//	mwtop -addr localhost:7977 -slo
//
// With -slo the target is a running mwserved and mwtop polls /v1/slo
// instead: the service-wide error budget plus the worst-burning tenants
// (bad-request fraction over the fast and slow burn windows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"mw/internal/report"
	"mw/internal/serve"
	"mw/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8077", "telemetry address of a running mwsim (-telemetry-addr)")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		once     = fs.Bool("once", false, "print one snapshot and exit")
		asJSON   = fs.Bool("json", false, "emit the raw snapshot JSON instead of tables")
		events   = fs.Int("events", 10, "recent events to show (0 = none)")
		slo      = fs.Bool("slo", false, "poll an mwserved's /v1/slo instead of engine telemetry")
		tenants  = fs.Int("tenants", 20, "worst-burning tenants to show in -slo mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *slo {
		return runSLO(*addr, *interval, *once, *asJSON, *tenants, stdout, stderr)
	}

	for {
		snap, err := fetch(*addr, *events)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else {
			render(stdout, snap, !*once)
		}
		if *once {
			return 0
		}
		time.Sleep(*interval)
	}
}

// runSLO is the -slo loop: poll /v1/slo and render the error-budget view.
func runSLO(addr string, interval time.Duration, once, asJSON bool, tenants int, stdout, stderr io.Writer) int {
	for {
		rep, err := fetchSLO(addr, tenants)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else {
			renderSLO(stdout, rep, !once)
		}
		if once {
			return 0
		}
		time.Sleep(interval)
	}
}

// fetchSLO pulls one SLO report from a running mwserved.
func fetchSLO(addr string, tenants int) (*serve.SLOReport, error) {
	url := fmt.Sprintf("http://%s/v1/slo?limit=%d", addr, tenants)
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("mwtop: %w (is mwserved running?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mwtop: %s returned %s", url, resp.Status)
	}
	var rep serve.SLOReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("mwtop: decoding SLO report: %w", err)
	}
	return &rep, nil
}

// renderSLO writes the SLO report as tables. Burn rate 1.0 means the tenant
// is consuming its error budget exactly as fast as the budget allows; the
// multi-window convention flags sustained burn (slow) vs spikes (fast).
func renderSLO(w io.Writer, rep *serve.SLOReport, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "mwtop — SLO: p99 ≤ %.0f ms, budget %.1f%% (windows %.0fs/%.0fs)\n",
		rep.TargetP99Ms, rep.BudgetPct, rep.FastWindowSecs, rep.SlowWindowSecs)

	st := report.NewTable("Service",
		"Requests", "Bad", "Bad %", "Fast burn", "Slow burn")
	st.AddRow(float64(rep.Service.Requests), float64(rep.Service.Bad),
		rep.Service.BadPct, rep.Service.FastBurn, rep.Service.SlowBurn)
	fmt.Fprint(w, st.String())

	tt := report.NewTable("Worst-burning tenants",
		"Session", "Workload", "Requests", "Bad", "Bad %", "Fast burn", "Slow burn")
	for _, t := range rep.Tenants {
		tt.AddRow(t.Session, t.Workload, float64(t.Requests), float64(t.Bad),
			t.BadPct, t.FastBurn, t.SlowBurn)
	}
	fmt.Fprint(w, tt.String())
}

// fetch pulls one snapshot from the telemetry endpoint.
func fetch(addr string, events int) (*telemetry.Snapshot, error) {
	url := fmt.Sprintf("http://%s/telemetry.json?events=%d", addr, events)
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("mwtop: %w (is mwsim running with -telemetry-addr?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mwtop: %s returned %s", url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mwtop: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// render writes the snapshot as tables; clear redraws in place (watch mode).
func render(w io.Writer, snap *telemetry.Snapshot, clear bool) {
	if clear {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(w, "mwtop — step %d, %d workers, up %.1fs, %d dropped events\n",
		snap.Steps, snap.Workers, snap.UptimeSeconds, snap.Dropped)

	pt := report.NewTable("Phases (wall time per instance)",
		"Phase", "Count", "Mean (µs)", "p50 (µs)", "p90 (µs)", "p99 (µs)", "Total (s)")
	for _, p := range snap.Phases {
		pt.AddRow(p.Phase, float64(p.Count), p.MeanMicros, p.P50Micros, p.P90Micros, p.P99Micros, p.TotalSeconds)
	}
	fmt.Fprint(w, pt.String())

	// Total phase instances with straggler attribution: the blame share
	// denominator. Zero on a fresh start (no barrier has completed yet) or a
	// serial run (one worker cannot straggle itself) — render "-" then
	// rather than a 0% that looks like a measurement.
	var attributed int64
	for _, wv := range snap.PerWorker {
		attributed += wv.Straggler
	}
	wt := report.NewTable("Workers",
		"Worker", "Chunks", "Steals", "Parks", "Parked (s)", "Busy (s)", "Straggler", "Late (s)")
	for _, wv := range snap.PerWorker {
		var busy float64
		for _, s := range wv.BusySeconds {
			busy += s
		}
		straggler, late := "-", any("-")
		if attributed > 0 {
			straggler = fmt.Sprintf("%d (%.0f%%)", wv.Straggler,
				100*float64(wv.Straggler)/float64(attributed))
			late = wv.LatenessSeconds
		}
		wt.AddRow(fmt.Sprintf("%d", wv.Worker),
			float64(wv.Chunks), float64(wv.Steals), float64(wv.Parks), wv.ParkSeconds, busy,
			straggler, late)
	}
	fmt.Fprint(w, wt.String())

	if len(snap.Recent) > 0 {
		fmt.Fprintln(w, "Recent events:")
		for _, ev := range snap.Recent {
			who := "coord"
			if ev.Worker >= 0 {
				who = fmt.Sprintf("w%d", ev.Worker)
			}
			label := ev.Kind
			if ev.Phase != "" {
				label += " " + ev.Phase
			}
			fmt.Fprintf(w, "  %9.3fs  %-6s step %-6d %s\n",
				float64(ev.AtUS)/1e6, who, ev.Step, label)
		}
	}
}
