package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mw/internal/telemetry"
)

// liveRecorder builds a recorder with a little of everything in it and
// serves it the way a running mwsim would.
func liveRecorder() *telemetry.Recorder {
	rec := telemetry.NewRecorder(2, []string{"predictor", "force"})
	rec.PhaseBegin(1, 1)
	rec.Chunk(0, 1)
	rec.Chunk(1, 1)
	rec.Steal(1)
	rec.Park(0, 3*time.Millisecond)
	rec.PhaseEnd(1, 1, 8*time.Millisecond, []time.Duration{3 * time.Millisecond, 5 * time.Millisecond})
	rec.StepDone(1)
	return rec
}

func TestOnceRendersTables(t *testing.T) {
	srv := httptest.NewServer(telemetry.Handler(liveRecorder()))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errw bytes.Buffer
	if code := run([]string{"-addr", addr, "-once"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{
		"mwtop — step 1, 2 workers",
		"Phases (wall time per instance)",
		"force",
		"Workers",
		"Recent events:",
		"steal",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "\x1b[2J") {
		t.Error("-once must not emit watch-mode clear-screen escapes")
	}
}

func TestStragglerColumnRendered(t *testing.T) {
	srv := httptest.NewServer(telemetry.Handler(liveRecorder()))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errw bytes.Buffer
	if code := run([]string{"-addr", addr, "-once"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "Straggler") || !strings.Contains(s, "Late (s)") {
		t.Errorf("Workers table missing straggler columns:\n%s", s)
	}
	// liveRecorder's one PhaseEnd blames worker 1 (5ms busy vs 3ms median).
	if !strings.Contains(s, "1 (100%)") {
		t.Errorf("worker 1 should carry 100%% of blame:\n%s", s)
	}
}

func TestStragglerColumnDashBeforeFirstStep(t *testing.T) {
	// A recorder with no completed phase barriers — mwtop attached the moment
	// mwsim started. Blame must render as "-", not a fake 0%.
	rec := telemetry.NewRecorder(2, []string{"predictor", "force"})
	srv := httptest.NewServer(telemetry.Handler(rec))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errw bytes.Buffer
	if code := run([]string{"-addr", addr, "-once"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	if strings.Contains(out.String(), "0 (0%)") || strings.Contains(out.String(), "NaN") {
		t.Errorf("fresh-start blame must render as '-':\n%s", out.String())
	}
	if !strings.Contains(out.String(), "-") {
		t.Errorf("expected '-' placeholder cells:\n%s", out.String())
	}
}

func TestOnceJSONRoundTrips(t *testing.T) {
	srv := httptest.NewServer(telemetry.Handler(liveRecorder()))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errw bytes.Buffer
	if code := run([]string{"-addr", addr, "-once", "-json", "-events", "4"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("-json output is not a snapshot: %v\n%s", err, out.String())
	}
	if snap.Workers != 2 || snap.Steps != 1 {
		t.Errorf("snapshot: workers=%d steps=%d, want 2/1", snap.Workers, snap.Steps)
	}
	if len(snap.Recent) == 0 || len(snap.Recent) > 4 {
		t.Errorf("recent events: got %d, want 1..4", len(snap.Recent))
	}
}

func TestUnreachableEndpointExits1(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:1", "-once"}, &out, &errw); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "telemetry-addr") {
		t.Errorf("diagnostic should point at -telemetry-addr: %q", errw.String())
	}
}

func TestBadFlagsExit2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errw); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
