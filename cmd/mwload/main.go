// Command mwload is the tail-latency load harness for mwserved: the
// speedup-sweep idiom applied to a service. It creates a fleet of tenant
// sessions, then for each client-concurrency level drives one step request
// per session per run (fixed NRUNS), reporting throughput and exact
// p50/p99/p999 step latency per level.
//
// Usage:
//
//	mwload [-addr http://127.0.0.1:7977] [-wait 10s] [-workload Al-1000]
//	       [-sessions 1000] [-steps 1] [-nruns 2] [-concurrency 16,64,256]
//	       [-retries 8] [-attr] [-json] [-oversub N]
//
// With -addr "" an in-process server is booted (flags -workers/-queues/
// -queue-depth configure it), which makes the command self-contained for
// smoke tests. -attr decomposes each level's latency into ingress (client
// e2e minus server wall: socket, HTTP stack and scheduler admission wait),
// queue-wait, batch-wait, and compute using the server's per-request
// attribution fields, including the exact split of the p99-rank request
// and the residual the four components cannot see (in-server done-channel
// wake + serialize). -oversub N
// additionally fires an N-client burst with no retries at a fresh fleet
// and reports how many requests were shed with 429 and which Retry-After
// hints they carried — the admission-control check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mw/internal/core"
	"mw/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadReport is mwload's JSON output: the sweep plus the optional
// oversubscription probe.
type loadReport struct {
	Addr    string             `json:"addr"`
	Sweep   *serve.SweepReport `json:"sweep"`
	Oversub *oversubReport     `json:"oversub,omitempty"`
}

type oversubReport struct {
	Burst   int   `json:"burst"`
	Shed429 int64 `json:"shed_429"`
	Healthy bool  `json:"healthy"`
	// RetryAfter tallies the Retry-After values the 429s carried — the
	// backoff hints the probe used to drop on the floor.
	RetryAfter map[string]int64 `json:"retry_after_seen,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:7977", "server base URL (empty = boot in-process)")
		wait        = fs.Duration("wait", 10*time.Second, "wait for /healthz before sweeping")
		workloadF   = fs.String("workload", "Al-1000", "workload per session (salt, nanocar, Al-1000, lj-gas)")
		sessions    = fs.Int("sessions", 64, "concurrent sessions")
		steps       = fs.Int("steps", 1, "steps per request")
		nruns       = fs.Int("nruns", 2, "runs per concurrency level")
		concurrency = fs.String("concurrency", "1,8,64", "comma-separated client concurrency levels")
		retries     = fs.Int("retries", 8, "retries after a 429")
		attr        = fs.Bool("attr", false, "decompose latency into queue-wait/batch-wait/compute per level")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON")
		oversub     = fs.Int("oversub", 0, "also fire an N-client no-retry burst and report 429 shedding")
		workers     = fs.Int("workers", 0, "in-process server: pool workers (0 = GOMAXPROCS)")
		queues      = fs.String("queues", "shared", "in-process server: queue topology")
		queueDepth  = fs.Int("queue-depth", 1024, "in-process server: step-queue depth")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mwload: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	levels, err := parseLevels(*concurrency)
	if err != nil {
		fmt.Fprintf(stderr, "mwload: %v\n", err)
		return 2
	}

	base := *addr
	if base == "" {
		var topo core.QueueTopology
		switch *queues {
		case "shared":
			topo = core.SharedQueue
		case "per-worker":
			topo = core.PerWorkerQueues
		case "stealing":
			topo = core.WorkStealingQueues
		default:
			fmt.Fprintf(stderr, "mwload: unknown -queues %q (shared, per-worker, stealing)\n", *queues)
			return 2
		}
		srv := serve.NewServer(serve.Config{
			Workers:    *workers,
			Queues:     topo,
			QueueDepth: *queueDepth,
			GCInterval: -1,
		})
		defer srv.Close()
		httpSrv, bound, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "mwload: booting in-process server: %v\n", err)
			return 1
		}
		defer httpSrv.Close()
		base = "http://" + bound
		fmt.Fprintf(stderr, "mwload: in-process server on %s (queues=%s)\n", base, topo)
	}

	if err := serve.WaitHealthy(base, *wait); err != nil {
		fmt.Fprintf(stderr, "mwload: %v\n", err)
		return 1
	}

	opts := serve.SweepOptions{
		Workload:    *workloadF,
		Sessions:    *sessions,
		StepsPerReq: *steps,
		NRuns:       *nruns,
		Concurrency: levels,
		Retries:     *retries,
		Attr:        *attr,
	}
	rep, err := serve.RunSweep(base, opts)
	if err != nil {
		fmt.Fprintf(stderr, "mwload: %v\n", err)
		return 1
	}
	out := loadReport{Addr: base, Sweep: rep}

	if *oversub > 0 {
		probeOpts := opts
		probeOpts.Sessions = min(*sessions, 64)
		shed, retryAfter, healthy, err := serve.OversubscribeProbe(base, probeOpts, *oversub)
		if err != nil && shed == 0 {
			fmt.Fprintf(stderr, "mwload: oversubscribe probe: %v\n", err)
			return 1
		}
		out.Oversub = &oversubReport{Burst: *oversub, Shed429: shed, Healthy: healthy, RetryAfter: retryAfter}
	}

	if err := rep.Validate(); err != nil {
		fmt.Fprintf(stderr, "mwload: report failed validation: %v\n", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mwload: %v\n", err)
			return 1
		}
		return 0
	}
	printReport(stdout, &out)
	return 0
}

func parseLevels(csv string) ([]int, error) {
	var levels []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -concurrency entry %q", f)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("-concurrency lists no levels")
	}
	return levels, nil
}

func printReport(w io.Writer, rep *loadReport) {
	s := rep.Sweep
	fmt.Fprintf(w, "mwload: %s — %d sessions × %d steps/req × %d runs against %s\n\n",
		s.Workload, s.Sessions, s.StepsPerReq, s.NRuns, rep.Addr)
	fmt.Fprintf(w, "%8s %10s %8s %12s %12s %10s %10s %10s\n",
		"clients", "requests", "shed", "req/s", "steps/s", "p50(µs)", "p99(µs)", "p999(µs)")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%8d %10d %8d %12.1f %12.1f %10.0f %10.0f %10.0f\n",
			r.Concurrency, r.Requests, r.Shed429, r.ReqPerSec, r.StepsPerSec,
			r.P50us, r.P99us, r.P999us)
	}
	if attributed(s.Rows) {
		fmt.Fprintf(w, "\nattribution (µs): ingress / queue-wait / batch-wait / compute, then the p99-rank request decomposed\n")
		fmt.Fprintf(w, "%8s %10s %10s %10s %10s %10s | %10s %35s %8s\n",
			"clients", "ing p99", "qw p99", "bw p99", "comp p99", "p99 e2e", "p99 sum", "ing+qw+bw+comp", "resid%")
		for _, r := range s.Rows {
			a := r.Attr
			if a == nil {
				continue
			}
			fmt.Fprintf(w, "%8d %10.0f %10.0f %10.0f %10.0f %10.0f | %10.0f %8.0f+%8.0f+%8.0f+%7.0f %7.1f%%\n",
				r.Concurrency, a.IngressP99us, a.QueueWaitP99us, a.BatchWaitP99us, a.ComputeP99us,
				a.P99E2Eus, a.P99SumUs, a.P99IngressUs, a.P99QueueUs, a.P99BatchUs, a.P99ComputeUs,
				a.ResidualPct)
			if a.P99TraceID != "" {
				fmt.Fprintf(w, "%8s p99 trace: %s\n", "", a.P99TraceID)
			}
		}
	}
	if len(s.RetryAfter) > 0 {
		fmt.Fprintf(w, "\nretry-after seen during sweep:")
		for _, v := range sortedKeys(s.RetryAfter) {
			fmt.Fprintf(w, " %s×%d", v, s.RetryAfter[v])
		}
		fmt.Fprintln(w)
	}
	if rep.Oversub != nil {
		verdict := "survived"
		if !rep.Oversub.Healthy {
			verdict = "UNHEALTHY"
		}
		fmt.Fprintf(w, "\noversubscribe: burst=%d shed(429)=%d server %s\n",
			rep.Oversub.Burst, rep.Oversub.Shed429, verdict)
		if len(rep.Oversub.RetryAfter) > 0 {
			fmt.Fprintf(w, "oversubscribe retry-after:")
			for _, v := range sortedKeys(rep.Oversub.RetryAfter) {
				fmt.Fprintf(w, " %s×%d", v, rep.Oversub.RetryAfter[v])
			}
			fmt.Fprintln(w)
		}
	}
}

func attributed(rows []serve.SweepRow) bool {
	for _, r := range rows {
		if r.Attr != nil {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
