package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseLevels(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"1,8,64", []int{1, 8, 64}, false},
		{" 2 , 4 ", []int{2, 4}, false},
		{"16", []int{16}, false},
		{"", nil, true},
		{"a,b", nil, true},
		{"0", nil, true},
		{"-4", nil, true},
		{"1.5", nil, true},
	}
	for _, tc := range cases {
		got, err := parseLevels(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseLevels(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseLevels(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseLevels(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-not-a-flag"},
		{"-concurrency", "zero,0"},
		{"-addr", "", "-queues", "quantum"},
		{"positional"},
	}
	for _, args := range cases {
		var out, errBuf strings.Builder
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

// TestRunInProcessJSON runs the whole harness against an in-process server
// and checks the emitted JSON parses and validates.
func TestRunInProcessJSON(t *testing.T) {
	var out, errBuf strings.Builder
	args := []string{
		"-addr", "", "-workload", "lj-gas", "-sessions", "4", "-steps", "1",
		"-nruns", "1", "-concurrency", "2", "-retries", "4", "-json",
		"-oversub", "4", "-workers", "1",
	}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errBuf.String())
	}
	var rep loadReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Sweep == nil {
		t.Fatal("report has no sweep")
	}
	if err := rep.Sweep.Validate(); err != nil {
		t.Errorf("emitted report fails validation: %v", err)
	}
	if rep.Oversub == nil || !rep.Oversub.Healthy {
		t.Errorf("oversub section = %+v, want healthy", rep.Oversub)
	}
}

// TestRunTableOutput checks the human-readable sweep table.
func TestRunTableOutput(t *testing.T) {
	var out, errBuf strings.Builder
	args := []string{
		"-addr", "", "-workload", "lj-gas", "-sessions", "3", "-steps", "1",
		"-nruns", "1", "-concurrency", "1,3", "-workers", "1", "-queues", "per-worker",
	}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errBuf.String())
	}
	for _, want := range []string{"clients", "p99(µs)", "steps/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}
