package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlagExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errw); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "nope") {
		t.Errorf("stderr should name the bad flag: %q", errw.String())
	}
}

func TestBadSectionExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-section", "bogus"}, &out, &errw); code != 2 {
		t.Errorf("bad section: exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "bogus") {
		t.Errorf("stderr should name the bad section: %q", errw.String())
	}
}

// TestGoldenSectionPasses runs the cheapest real section end to end: the
// golden checksums replay three short serial trajectories (~1 s total).
func TestGoldenSectionPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real trajectories")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-section", "golden", "-v"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d; output:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "0 failed") {
		t.Errorf("summary missing: %q", s)
	}
	for _, w := range []string{"nanocar", "salt", "Al-1000"} {
		if !strings.Contains(s, w) {
			t.Errorf("verbose output missing workload %s:\n%s", w, s)
		}
	}
}
