// Command mwverify runs the repository's correctness gate outside `go
// test`: the differential matrix (every executor topology × reduction mode
// against the serial reference on the three paper workloads), the physics
// invariants (NVE drift, momentum, Newton's third law, neighbor-list
// completeness), and the golden-trajectory regression checksums.
//
// Usage:
//
//	mwverify [-threads 4] [-section differential|invariant|golden] [-v]
//
// Exit status 0 when every check passes, 1 otherwise. Build with -race to
// turn the differential matrix into a race-detector sweep of the engine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mw/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threads = fs.Int("threads", 4, "worker count for the parallel combos")
		section = fs.String("section", "", "run only one section: differential, invariant, golden")
		verbose = fs.Bool("v", false, "print passing checks too")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *section {
	case "", "differential", "invariant", "golden":
	default:
		fmt.Fprintf(stderr, "unknown section %q (differential, invariant, golden)\n", *section)
		return 2
	}

	results := verify.RunSuite(*threads)
	pass, fail := 0, 0
	for _, r := range results {
		if *section != "" && r.Section != *section {
			continue
		}
		if r.Err != nil {
			fail++
			fmt.Fprintf(stdout, "FAIL [%s] %s: %v\n", r.Section, r.Name, r.Err)
			if r.Detail != "" {
				fmt.Fprintf(stdout, "     %s\n", r.Detail)
			}
			continue
		}
		pass++
		if *verbose {
			fmt.Fprintf(stdout, "ok   [%s] %s  (%s)\n", r.Section, r.Name, r.Detail)
		}
	}
	fmt.Fprintf(stdout, "mwverify: %d passed, %d failed\n", pass, fail)
	if fail > 0 {
		return 1
	}
	return 0
}
