// Command mwbench regenerates every table and figure of the paper's
// evaluation, plus the extension and ablation experiments. See DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	mwbench <experiment> [args]
//
// Experiments:
//
//	table1              Table I   benchmark characteristics
//	table2 [-verbose]   Table II  machines (+ hwloc-style trees)
//	table3              Table III pinning-topology runtimes (machine model)
//	fig1                Fig 1     modeled speedup on the Core i7 920
//	fig1-native         Fig 1     wall-clock speedup on this host
//	fig2                Fig 2     thread-to-core affinity without pinning
//	observer            §IV-A     monitor observer effect
//	sampling            §IV-B     sampler granularity vs ground truth
//	threadview          §IV-C     per-thread view, truth vs sampled display
//	imbalance           §IV       force-phase load balance per partition
//	packing             §V-A      heap layout vs cache miss rates
//	pollution           §V-B      temp-object heap census and pollution
//	machine <spec>      model a custom machine (topo.ParseMachine syntax)
//	scaling             engine complexity: O(N) LJ vs O(N²) Coulomb
//	pme                 extension direct O(N²) vs PME crossover
//	ablation            design-choice ablations
//	all                 run everything above in order
package main

import (
	"fmt"
	"os"

	"mw/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if os.Args[1] == "all" {
		for _, name := range []string{
			"table1", "table2", "fig1", "fig2", "table3",
			"observer", "sampling", "threadview", "imbalance", "packing", "pollution",
			"scaling", "pme", "ablation",
		} {
			run(name, nil)
			fmt.Println()
		}
		return
	}
	run(os.Args[1], os.Args[2:])
}

func run(name string, args []string) {
	switch name {
	case "table1":
		fmt.Print(experiments.Table1())
	case "table2":
		fmt.Print(experiments.Table2(len(args) > 0 && args[0] == "-verbose"))
	case "table3":
		r, err := experiments.Table3(0)
		fail(err)
		fmt.Print(r.Report)
	case "fig1":
		r, err := experiments.Fig1(0)
		fail(err)
		fmt.Print(r.Report)
	case "fig1-native":
		r, err := experiments.Fig1Native(0)
		fail(err)
		fmt.Print(r.Report)
	case "fig2":
		fmt.Print(experiments.Fig2().Report)
	case "observer":
		r, err := experiments.Observer(0, 0, 0)
		fail(err)
		fmt.Print(r.Report)
	case "sampling":
		fmt.Print(experiments.Sampling(0).Report)
	case "threadview":
		r, err := experiments.ThreadView(0)
		fail(err)
		fmt.Print(r.Report)
	case "imbalance":
		r, err := experiments.Imbalance(0)
		fail(err)
		fmt.Print(r.Report)
	case "packing":
		r, err := experiments.Packing(0)
		fail(err)
		fmt.Print(r.Report)
	case "pollution":
		r, err := experiments.Pollution(0)
		fail(err)
		fmt.Print(r.Report)
	case "machine":
		if len(args) < 1 {
			fmt.Fprintln(os.Stderr, "usage: mwbench machine <spec>  (e.g. \"2x8x2,l3=16M/8,ch=6\")")
			os.Exit(2)
		}
		out, err := experiments.CustomMachine(args[0])
		fail(err)
		fmt.Print(out)
	case "scaling":
		r, err := experiments.Scaling(0)
		fail(err)
		fmt.Print(r.Report)
	case "pme":
		r, err := experiments.PME()
		fail(err)
		fmt.Print(r.Report)
	case "ablation":
		r, err := experiments.Ablation(0)
		fail(err)
		fmt.Print(r.Report)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mwbench <experiment>
experiments: table1 table2 table3 fig1 fig1-native fig2 observer sampling
             threadview imbalance packing pollution scaling pme ablation all`)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
