// Command mwbench regenerates every table and figure of the paper's
// evaluation, plus the extension and ablation experiments. See DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	mwbench <experiment> [args]
//
// Experiments:
//
//	table1              Table I   benchmark characteristics
//	table2 [-verbose]   Table II  machines (+ hwloc-style trees)
//	table3              Table III pinning-topology runtimes (machine model)
//	fig1                Fig 1     modeled speedup on the Core i7 920
//	fig1-native         Fig 1     wall-clock speedup on this host
//	fig2                Fig 2     thread-to-core affinity without pinning
//	observer            §IV-A     monitor observer effect
//	observer-native     §IV-A     live telemetry layer's own observer effect
//	                              (-gate enforces the overhead budget)
//	observer-serve      §IV-A     serving layer's request-tracing observer
//	                              effect (-gate enforces the overhead budget)
//	sampling            §IV-B     sampler granularity vs ground truth
//	threadview          §IV-C     per-thread view, truth vs sampled display
//	imbalance           §IV       force-phase load balance per partition
//	packing             §V-A      heap layout vs cache miss rates
//	pollution           §V-B      temp-object heap census and pollution
//	machine <spec>      model a custom machine (topo.ParseMachine syntax)
//	scaling             engine complexity: O(N) LJ vs O(N²) Coulomb
//	pme                 extension direct O(N²) vs PME crossover
//	ablation            design-choice ablations
//	bench-json          benchmark-regression harness: kernels, engine steps,
//	                    phase percentiles → BENCH_<n>.json
//	benchdiff           compare two bench-json reports within a tolerance
//	all                 run everything above in order
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mw/internal/bench"
	"mw/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	if os.Args[1] == "all" {
		for _, name := range []string{
			"table1", "table2", "fig1", "fig2", "table3",
			"observer", "observer-native", "sampling", "threadview", "imbalance", "packing", "pollution",
			"scaling", "pme", "ablation",
		} {
			if code := run(os.Stdout, os.Stderr, name, nil); code != 0 {
				os.Exit(code)
			}
			fmt.Println()
		}
		return
	}
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1], os.Args[2:]))
}

func run(stdout, stderr io.Writer, name string, args []string) int {
	out, err := experiment(name, args)
	switch {
	case err == errUnknown:
		fmt.Fprintf(stderr, "unknown experiment %q\n\n", name)
		usage(stderr)
		return 2
	case err == errBadFlags:
		return 2
	case err != nil:
		// Experiments that fail a gate still return their report; show it so
		// the failure is diagnosable from the build log alone.
		fmt.Fprint(stdout, out)
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}

var (
	errUnknown = fmt.Errorf("unknown experiment")
	// errBadFlags: the FlagSet already printed the diagnostic and usage.
	errBadFlags = fmt.Errorf("bad flags")
)

// observerNative runs the live-telemetry observer-effect experiment; with
// -gate the overhead budget becomes a hard failure (the CI regression gate).
func observerNative(args []string) (string, error) {
	fs := flag.NewFlagSet("observer-native", flag.ContinueOnError)
	steps := fs.Int("steps", 0, "timesteps per trial (0 = default)")
	trials := fs.Int("trials", 0, "paired trials per mode (0 = default)")
	budget := fs.Float64("budget", 0, "ring-recorder overhead budget in percent (0 = 2%)")
	gate := fs.Bool("gate", false, "exit non-zero if the ring recorder breaches the budget")
	if err := fs.Parse(args); err != nil {
		return "", errBadFlags
	}
	r, err := experiments.ObserverNative(*steps, *trials, *budget)
	if err != nil {
		return "", err
	}
	if *gate {
		if err := r.Gate(); err != nil {
			return r.Report, err
		}
	}
	return r.Report, nil
}

// observerServe runs the serving-layer request-tracing observer-effect
// experiment; with -gate the overhead budget becomes a hard failure.
func observerServe(args []string) (string, error) {
	fs := flag.NewFlagSet("observer-serve", flag.ContinueOnError)
	trials := fs.Int("trials", 0, "paired trials (0 = default)")
	budget := fs.Float64("budget", 0, "request-tracing overhead budget in percent (0 = 2%)")
	gate := fs.Bool("gate", false, "exit non-zero if request tracing breaches the budget")
	if err := fs.Parse(args); err != nil {
		return "", errBadFlags
	}
	r, err := experiments.ObserverServe(*trials, *budget)
	if err != nil {
		return "", err
	}
	if *gate {
		if err := r.Gate(); err != nil {
			return r.Report, err
		}
	}
	return r.Report, nil
}

// benchJSON runs the benchmark-regression harness and writes the JSON
// report; -o "" picks the next free BENCH_<n>.json in the current directory.
func benchJSON(args []string) (string, error) {
	fs := flag.NewFlagSet("bench-json", flag.ContinueOnError)
	out := fs.String("o", "", "output path (default: next free BENCH_<n>.json)")
	benchtime := fs.Duration("benchtime", 0, "measuring window per benchmark (0 = 500ms)")
	steps := fs.Int("steps", 0, "steps for the phase-percentile runs (0 = 150)")
	serveSessions := fs.Int("serve-sessions", 0, "tenant sessions for the serve sweep (0 = 1024)")
	skipServe := fs.Bool("skip-serve", false, "omit the service tail-latency section")
	if err := fs.Parse(args); err != nil {
		return "", errBadFlags
	}
	rep, err := bench.Run(bench.Options{
		BenchTime:     *benchtime,
		Steps:         *steps,
		ServeSessions: *serveSessions,
		SkipServe:     *skipServe,
	})
	if err != nil {
		return "", err
	}
	path := *out
	if path == "" {
		path = bench.NextPath(".")
	}
	if err := rep.WriteFile(path); err != nil {
		return "", err
	}
	return fmt.Sprintf("wrote %s\n%s", path, rep.Summary()), nil
}

// benchDiff compares two bench-json reports; a regression beyond -tol exits
// non-zero (the CI gate).
func benchDiff(args []string) (string, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	base := fs.String("base", "BENCH_0.json", "baseline report")
	cur := fs.String("new", "", "report to judge (required)")
	tol := fs.Float64("tol", 0.15, "allowed fractional slowdown before failing")
	if err := fs.Parse(args); err != nil {
		return "", errBadFlags
	}
	if *cur == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		return "", errBadFlags
	}
	b, err := bench.ReadFile(*base)
	if err != nil {
		return "", err
	}
	c, err := bench.ReadFile(*cur)
	if err != nil {
		return "", err
	}
	report, _, err := bench.Diff(b, c, *tol)
	return report, err
}

func experiment(name string, args []string) (string, error) {
	switch name {
	case "bench-json":
		return benchJSON(args)
	case "benchdiff":
		return benchDiff(args)
	case "table1":
		return experiments.Table1(), nil
	case "table2":
		return experiments.Table2(len(args) > 0 && args[0] == "-verbose"), nil
	case "table3":
		r, err := experiments.Table3(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig1":
		r, err := experiments.Fig1(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig1-native":
		r, err := experiments.Fig1Native(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "fig2":
		return experiments.Fig2().Report, nil
	case "observer":
		r, err := experiments.Observer(0, 0, 0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "observer-native":
		return observerNative(args)
	case "observer-serve":
		return observerServe(args)
	case "sampling":
		return experiments.Sampling(0).Report, nil
	case "threadview":
		r, err := experiments.ThreadView(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "imbalance":
		r, err := experiments.Imbalance(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "packing":
		r, err := experiments.Packing(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "pollution":
		r, err := experiments.Pollution(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "machine":
		if len(args) < 1 {
			return "", fmt.Errorf("usage: mwbench machine <spec>  (e.g. %q)", "2x8x2,l3=16M/8,ch=6")
		}
		return experiments.CustomMachine(args[0])
	case "scaling":
		r, err := experiments.Scaling(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "pme":
		r, err := experiments.PME()
		if err != nil {
			return "", err
		}
		return r.Report, nil
	case "ablation":
		r, err := experiments.Ablation(0)
		if err != nil {
			return "", err
		}
		return r.Report, nil
	}
	return "", errUnknown
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: mwbench <experiment>
experiments: table1 table2 table3 fig1 fig1-native fig2 observer
             observer-native observer-serve sampling threadview imbalance
             packing pollution scaling pme ablation bench-json benchdiff all`)
}
