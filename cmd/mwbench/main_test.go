package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, "table1", nil); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"salt", "nanocar", "Al-1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Verbose(t *testing.T) {
	var plain, verbose, errw bytes.Buffer
	if code := run(&plain, &errw, "table2", nil); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	if code := run(&verbose, &errw, "table2", []string{"-verbose"}); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	if verbose.Len() <= plain.Len() {
		t.Error("-verbose did not add the topology trees")
	}
}

func TestUnknownExperimentExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, "frobnicate", nil); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	s := errw.String()
	if !strings.Contains(s, "frobnicate") || !strings.Contains(s, "usage:") {
		t.Errorf("stderr should name the experiment and show usage:\n%s", s)
	}
	if out.Len() != 0 {
		t.Errorf("stdout should stay clean on error: %q", out.String())
	}
}

func TestMachineMissingSpecExits1(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, "machine", nil); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "usage: mwbench machine") {
		t.Errorf("stderr: %q", errw.String())
	}
}

func TestMachineCustomSpec(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, "machine", []string{"2x2x1"}); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errw.String())
	}
	if out.Len() == 0 {
		t.Error("no report for custom machine spec")
	}
}
