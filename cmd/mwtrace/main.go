// Command mwtrace is the engine's trace-timeline front end: it runs a
// benchmark with the structured tracer installed and exports the span
// timeline as Chrome trace-event JSON (open it in ui.perfetto.dev), or
// analyzes what the tracer saw — barrier straggler blame, goroutine→CPU
// affinity — without leaving the terminal.
//
// Usage:
//
//	mwtrace record -bench Al-1000 -threads 4 -steps 200 -o al.trace.json
//	mwtrace export -in al.trace.json
//	mwtrace serve -addr http://127.0.0.1:7977 -o serve.trace.json
//	mwtrace top-stragglers -bench salt -threads 4 -steps 200
//	mwtrace affinity -bench Al-1000 -threads 4 -steps 200 -markdown
//
// The serve subcommand fetches a running mwserved's request-trace timeline
// (/v1/trace — sampled request span trees stitched onto the batcher track),
// validates it, and writes the Perfetto-loadable artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"mw/internal/core"
	"mw/internal/report"
	"mw/internal/telemetry"
	"mw/internal/tracing"
	"mw/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "record":
		return cmdRecord(args[1:], stdout, stderr)
	case "export":
		return cmdExport(args[1:], stdout, stderr)
	case "serve":
		return cmdServe(args[1:], stdout, stderr)
	case "top-stragglers":
		return cmdStragglers(args[1:], stdout, stderr)
	case "affinity":
		return cmdAffinity(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	}
	fmt.Fprintf(stderr, "mwtrace: unknown subcommand %q\n", args[0])
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `mwtrace <subcommand> [flags]

  record          run a benchmark with tracing and export a Perfetto-loadable
                  Chrome trace JSON timeline
  export          validate and summarize an existing trace JSON file
  serve           fetch a running mwserved's request-trace timeline
                  (/v1/trace), validate it, and write the artifact
  top-stragglers  run a benchmark and report per-worker barrier blame
  affinity        run a benchmark and report the goroutine→CPU placement
                  matrix (the engine-native §IV-C trace)

Run 'mwtrace <subcommand> -h' for flags.
`)
}

// runFlags is the workload/tracer flag set shared by the run-a-benchmark
// subcommands.
type runFlags struct {
	bench     *string
	threads   *int
	steps     *int
	partition *string
	queues    *string
	reorder   *bool
	n         *int
	temp      *float64
	ring      *int
	factor    *float64
	minSteps  *int
	flightDir *string
	cpuProf   *time.Duration
	affEvery  *int
}

func addRunFlags(fs *flag.FlagSet) *runFlags {
	return &runFlags{
		bench:     fs.String("bench", "Al-1000", "benchmark: salt, nanocar, Al-1000, lj-gas"),
		threads:   fs.Int("threads", 4, "worker threads"),
		steps:     fs.Int("steps", 200, "timesteps to run"),
		partition: fs.String("partition", "guided", "work partition: cyclic, block, guided, dynamic"),
		queues:    fs.String("queues", "shared", "queue topology: shared, per-worker, stealing"),
		reorder:   fs.Bool("reorder", false, "sort atoms into Morton cell order on rebuilds"),
		n:         fs.Int("n", 5, "lattice size for -bench lj-gas (n³ atoms)"),
		temp:      fs.Float64("temp", 120, "temperature for -bench lj-gas (K)"),
		ring:      fs.Int("ring", 256, "step records retained in the flight ring"),
		factor:    fs.Float64("anomaly-factor", 8, "flight-dump when a step exceeds this multiple of the rolling p99 (<0 = off)"),
		minSteps:  fs.Int("min-steps", 32, "steps before anomaly detection arms"),
		flightDir: fs.String("flight-dir", "", "directory for anomaly flight dumps (empty = count only)"),
		cpuProf:   fs.Duration("cpu-profile", 0, "CPU profile duration captured after each flight dump (0 = off)"),
		affEvery:  fs.Int("affinity-every", 256, "sample worker CPU every K chunks (<0 = off)"),
	}
}

// trace runs the selected benchmark with a Tracer installed and returns the
// tracer after nsteps.
func (rf *runFlags) trace(stdout, stderr io.Writer) (*tracing.Tracer, *core.Simulation, int) {
	var b *workload.Benchmark
	if *rf.bench == "lj-gas" {
		b = workload.LJGas(*rf.n, *rf.temp, true)
	} else if b = workload.ByName(*rf.bench); b == nil {
		fmt.Fprintf(stderr, "mwtrace: unknown benchmark %q (salt, nanocar, Al-1000, lj-gas)\n", *rf.bench)
		return nil, nil, 2
	}

	cfg := b.Cfg
	cfg.Threads = *rf.threads
	cfg.Reorder = *rf.reorder
	switch *rf.partition {
	case "cyclic":
		cfg.Partition = core.PartitionCyclic
	case "block":
		cfg.Partition = core.PartitionBlock
	case "guided":
		cfg.Partition = core.PartitionGuided
	case "dynamic":
		cfg.Partition = core.PartitionDynamic
	default:
		fmt.Fprintf(stderr, "mwtrace: unknown partition %q\n", *rf.partition)
		return nil, nil, 2
	}
	switch *rf.queues {
	case "shared":
		cfg.Queues = core.SharedQueue
	case "per-worker":
		cfg.Queues = core.PerWorkerQueues
	case "stealing":
		cfg.Queues = core.WorkStealingQueues
	default:
		fmt.Fprintf(stderr, "mwtrace: unknown queue topology %q\n", *rf.queues)
		return nil, nil, 2
	}

	rec := telemetry.NewRecorder(cfg.Threads, core.PhaseNames())
	tr := tracing.New(rec, tracing.Config{
		RingSteps:     *rf.ring,
		AnomalyFactor: *rf.factor,
		MinSteps:      *rf.minSteps,
		FlightDir:     *rf.flightDir,
		CPUProfile:    *rf.cpuProf,
		AffinityEvery: *rf.affEvery,
		OnFlight: func(path string, step int) {
			if path != "" {
				fmt.Fprintf(stderr, "mwtrace: anomaly at step %d — flight dump %s\n", step, path)
			}
		},
	})
	cfg.Telemetry = tr

	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, nil, 1
	}
	start := time.Now()
	sim.Run(*rf.steps)
	wall := time.Since(start)
	fmt.Fprintf(stdout, "%s: %d steps, %d threads, %s/%s — %v (%.1f updates/s)\n",
		b.Name, *rf.steps, cfg.Threads, cfg.Partition, cfg.Queues,
		wall.Round(time.Millisecond), float64(*rf.steps)/wall.Seconds())
	return tr, sim, 0
}

func cmdRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtrace record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rf := addRunFlags(fs)
	out := fs.String("o", "mw.trace.json", "output trace JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tr, sim, rc := rf.trace(stdout, stderr)
	if rc != 0 {
		return rc
	}
	defer sim.Close()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Re-read and validate what was just written: record is the CI
	// trace-smoke producer, so the artifact must be proven loadable.
	data, err := os.ReadFile(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(stderr, "mwtrace: exported trace failed validation: %v\n", err)
		return 1
	}
	retained := tr.Records()
	fmt.Fprintf(stdout, "wrote %s: %d retained steps, %d spans, %d instants, %d tracks, %.1f ms timeline\n",
		*out, len(retained), st.Spans, st.Instants, st.Tracks,
		float64(st.LastUS-st.FirstUS)/1e3)
	if anomalies := tr.Anomalies(); anomalies > 0 {
		dumps, last := tr.FlightDumps()
		fmt.Fprintf(stdout, "anomalies: %d (flight dumps: %d, last %s)\n", anomalies, dumps, last)
	}
	fmt.Fprintf(stdout, "open in ui.perfetto.dev (or chrome://tracing)\n")
	return 0
}

func cmdExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtrace export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "mw.trace.json", "trace JSON file to validate and summarize")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(stderr, "mwtrace: %s: %v\n", *in, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: valid Chrome trace — %d events, %d spans, %d instants, %d tracks, %.1f ms timeline\n",
		*in, st.Events, st.Spans, st.Instants, st.Tracks, float64(st.LastUS-st.FirstUS)/1e3)
	t := report.NewTable("Tracks", "Tid", "Name", "Events")
	for tid := 0; tid < len(st.PerTrack)+8; tid++ {
		n, ok := st.PerTrack[tid]
		if !ok {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", tid), st.TrackNames[tid], float64(n))
	}
	fmt.Fprint(stdout, t.String())
	return 0
}

// cmdServe pulls the request-scoped trace timeline off a live mwserved,
// proves it loads (same validator as the engine traces), and writes the
// artifact — the serve-side counterpart of record's re-read-and-validate.
func cmdServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtrace serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:7977", "mwserved base URL")
	out := fs.String("o", "serve.trace.json", "output trace JSON path")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP fetch timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*addr + "/v1/trace")
	if err != nil {
		fmt.Fprintf(stderr, "mwtrace: fetching %s/v1/trace: %v\n", *addr, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "mwtrace: %s/v1/trace: %s\n", *addr, resp.Status)
		return 1
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "mwtrace: reading trace body: %v\n", err)
		return 1
	}
	st, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(stderr, "mwtrace: served trace failed validation: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d events, %d spans, %d tracks, %.1f ms timeline\n",
		*out, st.Events, st.Spans, st.Tracks, float64(st.LastUS-st.FirstUS)/1e3)
	t := report.NewTable("Tracks", "Tid", "Name", "Events")
	for tid := 0; tid < len(st.PerTrack)+8; tid++ {
		n, ok := st.PerTrack[tid]
		if !ok {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", tid), st.TrackNames[tid], float64(n))
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintf(stdout, "open in ui.perfetto.dev (or chrome://tracing)\n")
	return 0
}

func cmdStragglers(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtrace top-stragglers", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rf := addRunFlags(fs)
	worst := fs.Int("worst", 3, "slowest steps to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tr, sim, rc := rf.trace(stdout, stderr)
	if rc != 0 {
		return rc
	}
	defer sim.Close()

	recs := tr.Records()
	phases := core.PhaseNames()
	rows := tracing.Blame(recs, *rf.threads, len(phases))
	t := report.NewTable(
		fmt.Sprintf("Barrier blame (last %d steps)", len(recs)),
		"Worker", "Stragglers", "Lateness (ms)", "Worst step", "Worst phase", "Worst (ms)")
	for _, r := range rows {
		if r.Stragglers == 0 {
			t.AddRow(fmt.Sprintf("%d", r.Worker), "0", "-", "-", "-", "-")
			continue
		}
		worstStep, worstPhase := "-", "-"
		if r.WorstPhase != "" {
			worstStep, worstPhase = fmt.Sprintf("%d", r.WorstStep), r.WorstPhase
		}
		t.AddRow(fmt.Sprintf("%d", r.Worker), float64(r.Stragglers),
			float64(r.LatenessUS)/1e3, worstStep, worstPhase, float64(r.WorstLateUS)/1e3)
	}
	fmt.Fprint(stdout, t.String())

	bp := report.NewTable("Blame by phase (straggler counts)",
		append([]string{"Worker"}, phases...)...)
	for _, r := range rows {
		cells := make([]any, 1+len(phases))
		cells[0] = fmt.Sprintf("%d", r.Worker)
		for i, n := range r.ByPhase {
			cells[1+i] = float64(n)
		}
		bp.AddRow(cells...)
	}
	fmt.Fprint(stdout, bp.String())

	if *worst > 0 {
		ws := tracing.WorstSteps(recs, *worst)
		wt := report.NewTable("Slowest retained steps", "Step", "Wall (ms)", "Straggler (worst phase)", "Lateness (ms)")
		for _, r := range ws {
			straggler, phase, late := worstSpan(r)
			if straggler < 0 {
				wt.AddRow(fmt.Sprintf("%d", r.Step), float64(r.WallUS())/1e3, "-", "-")
				continue
			}
			wt.AddRow(fmt.Sprintf("%d", r.Step), float64(r.WallUS())/1e3,
				fmt.Sprintf("w%d (%s)", straggler, phase), float64(late)/1e3)
		}
		fmt.Fprint(stdout, wt.String())
	}
	return 0
}

// worstSpan finds the span with the largest lateness in one step record.
func worstSpan(r *tracing.StepRecord) (straggler int, phase string, latenessUS int64) {
	straggler = -1
	for i := range r.Phases {
		sp := &r.Phases[i]
		if sp.Straggler >= 0 && sp.LatenessUS >= latenessUS {
			straggler, phase, latenessUS = sp.Straggler, sp.Phase, sp.LatenessUS
		}
	}
	return straggler, phase, latenessUS
}

func cmdAffinity(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mwtrace affinity", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rf := addRunFlags(fs)
	markdown := fs.Bool("markdown", false, "emit the matrix as a Markdown table (for EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !tracing.AffinitySupported() {
		fmt.Fprintln(stderr, "mwtrace: getcpu probe unsupported on this platform (Linux only)")
		return 1
	}
	tr, sim, rc := rf.trace(stdout, stderr)
	if rc != 0 {
		return rc
	}
	defer sim.Close()

	views := tr.Affinity()
	ncpu := 0
	for _, v := range views {
		if len(v.PerCPU) > ncpu {
			ncpu = len(v.PerCPU)
		}
	}
	if *markdown {
		writeAffinityMarkdown(stdout, views, ncpu)
		return 0
	}
	headers := []string{"Worker", "Samples", "Migrations", "Last CPU"}
	for c := 0; c < ncpu; c++ {
		headers = append(headers, fmt.Sprintf("cpu%d", c))
	}
	t := report.NewTable("Goroutine→CPU affinity (1-in-K chunk probe)", headers...)
	for _, v := range views {
		cells := []any{fmt.Sprintf("%d", v.Worker), float64(v.Samples), float64(v.Migrations)}
		if v.Samples == 0 {
			cells = append(cells, "-")
		} else {
			cells = append(cells, fmt.Sprintf("%d", v.LastCPU))
		}
		for c := 0; c < ncpu; c++ {
			var n int64
			if c < len(v.PerCPU) {
				n = v.PerCPU[c]
			}
			cells = append(cells, float64(n))
		}
		t.AddRow(cells...)
	}
	fmt.Fprint(stdout, t.String())
	return 0
}

// writeAffinityMarkdown emits the affinity matrix in the Markdown shape the
// EXPERIMENTS §IV-C section uses, with per-CPU shares instead of raw counts.
func writeAffinityMarkdown(w io.Writer, views []tracing.AffinityView, ncpu int) {
	fmt.Fprint(w, "| Worker | Samples | Migrations |")
	for c := 0; c < ncpu; c++ {
		fmt.Fprintf(w, " cpu%d |", c)
	}
	fmt.Fprint(w, "\n|---|---|---|")
	for c := 0; c < ncpu; c++ {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, v := range views {
		fmt.Fprintf(w, "| %d | %d | %d |", v.Worker, v.Samples, v.Migrations)
		for c := 0; c < ncpu; c++ {
			var n int64
			if c < len(v.PerCPU) {
				n = v.PerCPU[c]
			}
			if v.Samples == 0 {
				fmt.Fprint(w, " - |")
			} else {
				fmt.Fprintf(w, " %.0f%% |", 100*float64(n)/float64(v.Samples))
			}
		}
		fmt.Fprintln(w)
	}
}
