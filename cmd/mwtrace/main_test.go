package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mw/internal/tracing"
)

// smallRun is a fast lj-gas workload shared by the subcommand tests.
var smallRun = []string{"-bench", "lj-gas", "-n", "4", "-threads", "2", "-steps", "30"}

func TestRecordExportRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace.json")
	var stdout, stderr bytes.Buffer
	args := append([]string{"record", "-o", out}, smallRun...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("record exit %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "30 retained steps") {
		t.Errorf("record summary missing step count:\n%s", stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tracing.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	if st.Tracks != 3 {
		t.Errorf("tracks = %d, want 3 (coordinator + 2 workers)", st.Tracks)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"export", "-in", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("export exit %d; stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"valid Chrome trace", "barrier (coordinator)", "worker 0"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("export summary missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestExportRejectsCorruptFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"ph":"E","ts":1,"tid":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"export", "-in", bad}, &stdout, &stderr); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "without a matching B") {
		t.Errorf("diagnostic should name the invariant: %q", stderr.String())
	}
}

func TestTopStragglersRendersBlame(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(append([]string{"top-stragglers"}, smallRun...), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"Barrier blame", "Blame by phase", "Slowest retained steps", "force"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestAffinityRendersMatrix(t *testing.T) {
	if !tracing.AffinitySupported() {
		t.Skip("getcpu probe unsupported on this platform")
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"affinity", "-affinity-every", "8"}, smallRun...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Goroutine→CPU affinity") {
		t.Errorf("output missing matrix table:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	args = append(args, "-markdown")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("markdown exit %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "| Worker | Samples | Migrations |") {
		t.Errorf("markdown output missing header:\n%s", stdout.String())
	}
}

func TestUnknownSubcommandExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown subcommand") {
		t.Errorf("stderr should name the bad subcommand: %q", stderr.String())
	}
}

func TestUnknownBenchmarkExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"record", "-bench", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
