package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", r.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v", r.Var())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if math.Abs(r.Sum()-40) > 1e-9 {
		t.Errorf("Sum = %v", r.Sum())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 {
		t.Error("empty accumulator must be all zeros")
	}
	r.Add(3)
	if r.Var() != 0 {
		t.Error("single sample has zero variance")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Error("single sample min=max=sample")
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var r Running
	r.AddAll(xs)
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(r.Mean()-m) > 1e-9 {
		t.Errorf("mean mismatch: %v vs %v", r.Mean(), m)
	}
	if math.Abs(r.Var()-v) > 1e-9 {
		t.Errorf("var mismatch: %v vs %v", r.Var(), v)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be reordered.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedianInterpolates(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 10}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Median = %v", got)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("balanced Imbalance = %v", got)
	}
	// One worker does 2x the average.
	if got := Imbalance([]float64{2, 1, 1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Imbalance = %v, want 1", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Error("degenerate Imbalance must be 0")
	}
}

func TestBarrierWaste(t *testing.T) {
	// All equal: no waste.
	if w := BarrierWaste([]float64{5, 5, 5}); w != 0 {
		t.Errorf("BarrierWaste balanced = %v", w)
	}
	// loads 1,1,2: total work 4, wall slots 6, waste 2/6.
	if w := BarrierWaste([]float64{1, 1, 2}); math.Abs(w-1.0/3.0) > 1e-12 {
		t.Errorf("BarrierWaste = %v", w)
	}
	if BarrierWaste(nil) != 0 || BarrierWaste([]float64{0}) != 0 {
		t.Error("degenerate BarrierWaste must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(100)
	h.Add(10) // exactly Hi counts as over
	for i, c := range h.Bins {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.N() != 13 {
		t.Errorf("N = %d", h.N())
	}
	if math.Abs(h.BinCenter(0)-0.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(2.5)
	h.Add(2.2)
	h.Add(1.5)
	if h.Mode() != 2 {
		t.Errorf("Mode = %d", h.Mode())
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid args are repaired
	h.Add(5)
	if h.N() != 1 {
		t.Error("degenerate histogram must still count")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	s, b := LinearFit(x, y)
	if math.Abs(s-2) > 1e-12 || math.Abs(b-1) > 1e-12 {
		t.Errorf("LinearFit = %v, %v", s, b)
	}
	// Zero variance in x.
	s, b = LinearFit([]float64{2, 2}, []float64{1, 3})
	if s != 0 || b != 2 {
		t.Errorf("constant-x fit = %v, %v", s, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	LinearFit([]float64{1}, []float64{1, 2})
}

// Property: imbalance is scale-invariant and non-negative.
func TestImbalanceProperties(t *testing.T) {
	f := func(a, b, c, d float64, scale float64) bool {
		for _, x := range []float64{a, b, c, d, scale} {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		loads := []float64{math.Abs(a), math.Abs(b), math.Abs(c), math.Abs(d)}
		s := math.Mod(math.Abs(scale), 1e6) + 0.1
		i1 := Imbalance(loads)
		scaled := make([]float64, len(loads))
		for i, l := range loads {
			scaled[i] = l * s
		}
		i2 := Imbalance(scaled)
		if i1 < 0 {
			return false
		}
		return math.Abs(i1-i2) < 1e-9*(1+i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				t.Fatalf("percentile not monotone at p=%v", p)
			}
			prev = v
		}
	}
}
