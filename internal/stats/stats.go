// Package stats provides small statistical accumulators used by the
// benchmark harness and the performance-monitoring substrate: running
// mean/variance, min/max, percentiles, histograms, and load-imbalance
// metrics as used in the paper's §IV analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, variance (Welford), min and max without
// retaining samples.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll records every sample in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of samples recorded.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 if empty.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance, or 0 for fewer than 2 samples.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample, or 0 if empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 if empty.
func (r *Running) Max() float64 { return r.max }

// Sum returns n * mean.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// CV returns the coefficient of variation (std/mean), or 0 if mean is 0.
func (r *Running) CV() float64 {
	if r.mean == 0 {
		return 0
	}
	return r.Std() / math.Abs(r.mean)
}

// String formats the accumulator for reports.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Std(), r.Min(), r.Max())
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs, or 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Imbalance computes the load-imbalance factor of per-worker loads:
// max/mean - 1. Zero means perfectly balanced; 1.0 means the slowest worker
// carried twice the average load. This is the metric the paper's §IV
// analysis needs at per-iteration granularity.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	m := Mean(loads)
	if m == 0 {
		return 0
	}
	var mx float64
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return mx/m - 1
}

// BarrierWaste returns the fraction of total worker-time wasted waiting at a
// barrier if every worker must wait for the slowest: (max*n - sum)/(max*n).
func BarrierWaste(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var mx, sum float64
	for _, l := range loads {
		if l > mx {
			mx = l
		}
		sum += l
	}
	if mx == 0 {
		return 0
	}
	return (mx*float64(len(loads)) - sum) / (mx * float64(len(loads)))
}

// Histogram is a fixed-bin histogram over [lo, hi); samples outside the
// range are counted in under/over.
type Histogram struct {
	Lo, Hi      float64
	Bins        []int
	Under, Over int
	n           int
}

// NewHistogram creates a histogram with nbins equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // guard float rounding at the top edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// N returns the total number of samples recorded (including out-of-range).
func (h *Histogram) N() int { return h.n }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the index of the most populated bin.
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Bins {
		if c > h.Bins[best] {
			best = i
		}
	}
	return best
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics if the lengths differ; it returns (0, mean(y)) for fewer than 2
// points or zero x-variance.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, Mean(y)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	_ = n
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}
