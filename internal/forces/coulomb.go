package forces

import (
	"math"

	"mw/internal/atom"
	"mw/internal/units"
	"mw/internal/vec"
)

// Coulomb computes direct pairwise electrostatics between every pair of
// charged particles, regardless of distance — exactly the O(N²) algorithm
// Molecular Workbench uses (the paper notes particle-mesh Ewald as future
// work; see package ewald for that extension). A small softening length
// avoids the singularity if ions overlap during equilibration.
type Coulomb struct {
	// Softening is added in quadrature to r; zero gives the bare 1/r².
	Softening float64
}

// AccumulateRange adds Coulomb forces for all half pairs (ci, cj), cj > ci,
// where ci indexes positions lo ≤ ci < hi of the charged list, into f, and
// returns their potential energy. The charged list is the System's
// ChargedIndices(); passing it in lets the engine compute it once per run.
//
//mw:hotpath
func (c Coulomb) AccumulateRange(s *atom.System, charged []int32, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	soft2 := c.Softening * c.Softening
	box := s.Box
	for ci := lo; ci < hi; ci++ {
		i := charged[ci]
		pi := s.Pos[i]
		qi := s.Charge[i]
		fi := f[i]
		for cj := ci + 1; cj < len(charged); cj++ {
			j := charged[cj]
			d := box.MinImage(s.Pos[j].Sub(pi))
			r2 := d.Norm2() + soft2
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			e := units.CoulombK * qi * s.Charge[j] / r
			pe += e
			// F = k q1 q2 / r² along the pair axis; repulsive for like signs.
			fs := e / r2
			fi = fi.AddScaled(-fs, d)
			f[j] = f[j].AddScaled(fs, d)
		}
		f[i] = fi
	}
	return pe
}

// Accumulate adds Coulomb forces for every charged pair.
func (c Coulomb) Accumulate(s *atom.System, charged []int32, f []vec.Vec3) float64 {
	return c.AccumulateRange(s, charged, 0, len(charged), f)
}

// Field is a uniform external field: a constant electric field E (eV/(Å·e))
// acting on charges and a constant acceleration field G (applied as force
// m·G/ForceToAccel so that every atom accelerates at G, like gravity).
type Field struct {
	E vec.Vec3 // force per unit charge
	G vec.Vec3 // acceleration, Å/fs²
}

// AccumulateRange adds field forces for atoms lo ≤ i < hi. Potential energy
// of uniform fields is gauge-dependent; it is not accumulated.
//
//mw:hotpath
func (fl Field) AccumulateRange(s *atom.System, lo, hi int, f []vec.Vec3) {
	for i := lo; i < hi; i++ {
		fi := f[i]
		if q := s.Charge[i]; q != 0 {
			fi = fi.AddScaled(q, fl.E)
		}
		if fl.G != vec.Zero {
			// F = m·G / ForceToAccel so the resulting acceleration is G.
			fi = fi.AddScaled(s.Mass[i]/units.ForceToAccel, fl.G)
		}
		f[i] = fi
	}
}

// IsZero reports whether the field exerts no force.
//
//mw:hotpath
func (fl Field) IsZero() bool { return fl.E == vec.Zero && fl.G == vec.Zero }
