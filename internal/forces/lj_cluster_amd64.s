#include "textflag.h"

// 16 x 4-lane interaction masks: entry rm has lane b = all-ones iff bit b of rm.
DATA masklut<>+0x000(SB)/8, $0x0000000000000000
DATA masklut<>+0x008(SB)/8, $0x0000000000000000
DATA masklut<>+0x010(SB)/8, $0x0000000000000000
DATA masklut<>+0x018(SB)/8, $0x0000000000000000
DATA masklut<>+0x020(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x028(SB)/8, $0x0000000000000000
DATA masklut<>+0x030(SB)/8, $0x0000000000000000
DATA masklut<>+0x038(SB)/8, $0x0000000000000000
DATA masklut<>+0x040(SB)/8, $0x0000000000000000
DATA masklut<>+0x048(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x050(SB)/8, $0x0000000000000000
DATA masklut<>+0x058(SB)/8, $0x0000000000000000
DATA masklut<>+0x060(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x068(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x070(SB)/8, $0x0000000000000000
DATA masklut<>+0x078(SB)/8, $0x0000000000000000
DATA masklut<>+0x080(SB)/8, $0x0000000000000000
DATA masklut<>+0x088(SB)/8, $0x0000000000000000
DATA masklut<>+0x090(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x098(SB)/8, $0x0000000000000000
DATA masklut<>+0x0a0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0a8(SB)/8, $0x0000000000000000
DATA masklut<>+0x0b0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0b8(SB)/8, $0x0000000000000000
DATA masklut<>+0x0c0(SB)/8, $0x0000000000000000
DATA masklut<>+0x0c8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0d0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0d8(SB)/8, $0x0000000000000000
DATA masklut<>+0x0e0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0e8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0f0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x0f8(SB)/8, $0x0000000000000000
DATA masklut<>+0x100(SB)/8, $0x0000000000000000
DATA masklut<>+0x108(SB)/8, $0x0000000000000000
DATA masklut<>+0x110(SB)/8, $0x0000000000000000
DATA masklut<>+0x118(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x120(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x128(SB)/8, $0x0000000000000000
DATA masklut<>+0x130(SB)/8, $0x0000000000000000
DATA masklut<>+0x138(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x140(SB)/8, $0x0000000000000000
DATA masklut<>+0x148(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x150(SB)/8, $0x0000000000000000
DATA masklut<>+0x158(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x160(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x168(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x170(SB)/8, $0x0000000000000000
DATA masklut<>+0x178(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x180(SB)/8, $0x0000000000000000
DATA masklut<>+0x188(SB)/8, $0x0000000000000000
DATA masklut<>+0x190(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x198(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1a0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1a8(SB)/8, $0x0000000000000000
DATA masklut<>+0x1b0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1b8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1c0(SB)/8, $0x0000000000000000
DATA masklut<>+0x1c8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1d0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1d8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1e0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1e8(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1f0(SB)/8, $0xffffffffffffffff
DATA masklut<>+0x1f8(SB)/8, $0xffffffffffffffff
GLOBL masklut<>(SB), RODATA, $512

DATA ones<>+0x00(SB)/8, $0x3ff0000000000000
DATA ones<>+0x08(SB)/8, $0x3ff0000000000000
DATA ones<>+0x10(SB)/8, $0x3ff0000000000000
DATA ones<>+0x18(SB)/8, $0x3ff0000000000000
GLOBL ones<>(SB), RODATA, $32

// func ljClusterAVX2(a *clusterArgs)
//
// The 4x4 cluster-pair LJ kernel: for each i-cluster row a (broadcast) it
// computes all four j-lane interactions of an entry at once, masks them by
// the entry's interaction bits and the cutoff, and accumulates forces into
// SoA scratch plus three 4-lane energy sums (W = Σ(12A·u−6B)·u,
// S1 = Σ(B/2)·u, SH = Σshift) from which the wrapper assembles the
// potential energy as W/12 − S1 − SH.
//
// Per-entry element-pair parameters come from a 128-byte row of the params
// block selected by the entry's K field (bits 48..63 of the packed entry
// word); mixed-element entries point at an all-zero sentinel row, so the
// kernel contributes exact zeros and the Go wrapper's scalar pass supplies
// those pairs.
//
// clusterArgs layout (offsets, see lj_cluster_amd64.go):
//   0  x, 8 y, 16 z          *float64 packed SoA (padded, finite pad)
//   24 fx, 32 fy, 40 fz      *float64 SoA force scratch (zeroed window)
//   48 entries               *ClusterEntry (8-byte words: cj|mask<<32|k<<48)
//   56 offs                  *int32   (nc+1 chunk-local entry offsets)
//   64 nc                    int64    (chunk-local cluster count)
//   72 i0                    int64    (CiLo*32: byte offset of first i row)
//   80 c2                    float64
//   88 params                *float64 (16 doubles per k: 12A,−6B,B/2,shift ×4)
//   96 w, 128 s1, 160 sh     [4]float64 out
//
// frame: xi/yi/zi copies (96), i-acc 12 ymm (384), inv spill (32),
//        offs cursor (8), offs end (8), entry hi (8), params base (8),
//        entry param row (8)
#define FR_XI 0
#define FR_YI 32
#define FR_ZI 64
#define FR_FIX 96
#define FR_FIY 224
#define FR_FIZ 352
#define FR_INV 480
#define FR_OFFS 512
#define FR_OEND 520
#define FR_EHI 528
#define FR_PBASE 536
#define FR_PAR 544

TEXT ·ljClusterAVX2(SB), NOSPLIT, $552-8
	MOVQ a+0(FP), DI
	MOVQ 0(DI), R8           // x
	MOVQ 8(DI), R9           // y
	MOVQ 16(DI), R10         // z
	MOVQ 24(DI), R11         // fx
	MOVQ 32(DI), R12         // fy
	MOVQ 40(DI), R13         // fz
	LEAQ masklut<>(SB), R14
	VBROADCASTSD 80(DI), Y15 // c2
	VMOVUPD ones<>(SB), Y12  // 1.0 lanes
	VXORPS Y11, Y11, Y11     // S1 = Σ(B/2)·um
	VXORPS Y10, Y10, Y10     // W  = Σ(12A·um−6B)·um
	VXORPS Y9, Y9, Y9        // SH = Σ shift (masked)
	MOVQ 88(DI), AX          // params base
	MOVQ AX, FR_PBASE(SP)
	MOVQ 56(DI), AX          // offs
	MOVQ AX, FR_OFFS(SP)
	MOVQ 64(DI), BX          // nc
	LEAQ (AX)(BX*4), AX
	MOVQ AX, FR_OEND(SP)
	MOVQ 72(DI), R15         // i0*8 byte cursor into the SoA rows

ciloop:
	MOVQ FR_OFFS(SP), AX
	CMPQ AX, FR_OEND(SP)
	JAE done
	// entry range [lo, hi)
	MOVLQSX 0(AX), SI
	MOVLQSX 4(AX), BX
	ADDQ $4, AX
	MOVQ AX, FR_OFFS(SP)
	MOVQ 48(DI), AX          // entries base
	LEAQ (AX)(BX*8), BX
	MOVQ BX, FR_EHI(SP)
	LEAQ (AX)(SI*8), SI      // entry cursor
	// copy xi/yi/zi rows to the frame
	VMOVUPD (R8)(R15*1), Y0
	VMOVUPD Y0, FR_XI(SP)
	VMOVUPD (R9)(R15*1), Y0
	VMOVUPD Y0, FR_YI(SP)
	VMOVUPD (R10)(R15*1), Y0
	VMOVUPD Y0, FR_ZI(SP)
	// zero the 12 i-acc slots
	VXORPS Y0, Y0, Y0
	VMOVUPD Y0, FR_FIX+0(SP)
	VMOVUPD Y0, FR_FIX+32(SP)
	VMOVUPD Y0, FR_FIX+64(SP)
	VMOVUPD Y0, FR_FIX+96(SP)
	VMOVUPD Y0, FR_FIY+0(SP)
	VMOVUPD Y0, FR_FIY+32(SP)
	VMOVUPD Y0, FR_FIY+64(SP)
	VMOVUPD Y0, FR_FIY+96(SP)
	VMOVUPD Y0, FR_FIZ+0(SP)
	VMOVUPD Y0, FR_FIZ+32(SP)
	VMOVUPD Y0, FR_FIZ+64(SP)
	VMOVUPD Y0, FR_FIZ+96(SP)

entryloop:
	CMPQ SI, FR_EHI(SP)
	JAE cidone
	MOVQ (SI), CX            // packed entry: cj | mask<<32 | k<<48
	ADDQ $8, SI
	MOVL CX, DX              // cj (zero-extended)
	SHLQ $2, DX              // j0 = cj*4
	SHRQ $32, CX             // CX = mask | k<<16
	MOVQ CX, BX
	SHRQ $16, BX             // k
	SHLQ $7, BX              // k*128
	ADDQ FR_PBASE(SP), BX
	MOVQ BX, FR_PAR(SP)      // this entry's parameter row
	VXORPS Y0, Y0, Y0        // fjx
	VXORPS Y1, Y1, Y1        // fjy
	VXORPS Y2, Y2, Y2        // fjz
	XORQ AX, AX              // row a = 0

rowloop:
	MOVQ CX, BX
	ANDQ $15, BX
	JZ rownext
	SHLQ $5, BX              // rm*32 -> lut offset
	// dx = xj - xi[a]
	VBROADCASTSD FR_XI(SP)(AX*8), Y3
	VMOVUPD (R8)(DX*8), Y6
	VSUBPD Y3, Y6, Y3
	VBROADCASTSD FR_YI(SP)(AX*8), Y4
	VMOVUPD (R9)(DX*8), Y6
	VSUBPD Y4, Y6, Y4
	VBROADCASTSD FR_ZI(SP)(AX*8), Y5
	VMOVUPD (R10)(DX*8), Y6
	VSUBPD Y5, Y6, Y5
	// r2
	VMULPD Y3, Y3, Y6
	VFMADD231PD Y4, Y4, Y6
	VFMADD231PD Y5, Y5, Y6
	// m = (r2 < c2) & (r2 != 0) & lanemask, kept live in Y13 through the
	// fs computation: masked lanes may carry r2 == 0 (the self-cluster
	// diagonal) whose inv is +Inf, and fs must be re-masked *bitwise* after
	// the inv multiply — 0·Inf is NaN, but NaN & 0 is +0.
	VCMPPD $1, Y15, Y6, Y7
	VANDPD (R14)(BX*1), Y7, Y7
	VXORPS Y8, Y8, Y8
	VCMPPD $4, Y8, Y6, Y8
	VANDPD Y8, Y7, Y13
	// inv = 1/r2 ; u = inv^3
	VDIVPD Y6, Y12, Y6
	VMOVUPD Y6, FR_INV(SP)
	VMULPD Y6, Y6, Y6
	VMULPD FR_INV(SP), Y6, Y6
	// um = u & m
	VANDPD Y6, Y13, Y8
	// energy sums: SH += shift&m ; S1 += (B/2)*um
	MOVQ FR_PAR(SP), BX
	VANDPD 96(BX), Y13, Y6
	VADDPD Y6, Y9, Y9
	VFMADD231PD 64(BX), Y8, Y11
	// w = (12A*um - 6B)*um ; W += w ; fs = (w*inv) & m
	VMOVUPD 32(BX), Y7
	VFMADD231PD 0(BX), Y8, Y7
	VMULPD Y8, Y7, Y7
	VADDPD Y7, Y10, Y10
	VMULPD FR_INV(SP), Y7, Y7
	VANDPD Y13, Y7, Y7
	// j forces += fs*d
	VFMADD231PD Y7, Y3, Y0
	VFMADD231PD Y7, Y4, Y1
	VFMADD231PD Y7, Y5, Y2
	// i forces -= fs*d  (frame accumulators)
	MOVQ AX, BX
	SHLQ $5, BX
	LEAQ FR_FIX(SP)(BX*1), BX
	VMOVUPD (BX), Y8
	VFNMADD231PD Y7, Y3, Y8
	VMOVUPD Y8, (BX)
	VMOVUPD 128(BX), Y8
	VFNMADD231PD Y7, Y4, Y8
	VMOVUPD Y8, 128(BX)
	VMOVUPD 256(BX), Y8
	VFNMADD231PD Y7, Y5, Y8
	VMOVUPD Y8, 256(BX)

rownext:
	SHRQ $4, CX
	INCQ AX
	CMPQ AX, $4
	JB rowloop

	// fx[j0..j0+3] += fj
	VMOVUPD (R11)(DX*8), Y3
	VADDPD Y0, Y3, Y3
	VMOVUPD Y3, (R11)(DX*8)
	VMOVUPD (R12)(DX*8), Y3
	VADDPD Y1, Y3, Y3
	VMOVUPD Y3, (R12)(DX*8)
	VMOVUPD (R13)(DX*8), Y3
	VADDPD Y2, Y3, Y3
	VMOVUPD Y3, (R13)(DX*8)
	JMP entryloop

cidone:
	// horizontal-sum the 12 i-acc vectors into fx/fy/fz[i0+a]
#define HSUM(off, dst, disp) \
	VMOVUPD off(SP), Y3 \
	VEXTRACTF128 $1, Y3, X4 \
	VADDPD X4, X3, X3 \
	VHADDPD X3, X3, X3 \
	VADDSD disp(dst)(R15*1), X3, X3 \
	VMOVSD X3, disp(dst)(R15*1)

	HSUM(FR_FIX+0, R11, 0)
	HSUM(FR_FIX+32, R11, 8)
	HSUM(FR_FIX+64, R11, 16)
	HSUM(FR_FIX+96, R11, 24)
	HSUM(FR_FIY+0, R12, 0)
	HSUM(FR_FIY+32, R12, 8)
	HSUM(FR_FIY+64, R12, 16)
	HSUM(FR_FIY+96, R12, 24)
	HSUM(FR_FIZ+0, R13, 0)
	HSUM(FR_FIZ+32, R13, 8)
	HSUM(FR_FIZ+64, R13, 16)
	HSUM(FR_FIZ+96, R13, 24)

	ADDQ $32, R15
	JMP ciloop

done:
	VMOVUPD Y10, 96(DI)      // W
	VMOVUPD Y11, 128(DI)     // S1
	VMOVUPD Y9, 160(DI)      // SH
	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
