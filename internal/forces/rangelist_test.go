package forces

import (
	"math"
	"testing"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/vec"
)

func TestAccumulateRangeListMatchesGlobal(t *testing.T) {
	s := randomAtoms(31, 60, 14, 2.0)
	lj := NewLJ(s.Elements, 6)
	nl := cells.NewNeighborList(6, 0.5)
	nl.Build(s)
	want := make([]vec.Vec3, s.N())
	peWant := lj.Accumulate(s, nl, want)

	g := cells.NewGrid(s.Box, 6.5)
	g.Assign(s)
	got := make([]vec.Vec3, s.N())
	var pe float64
	var rl cells.RangeList
	for _, span := range [][2]int{{0, 20}, {20, 45}, {45, 60}} {
		g.BuildRange(s, 6.5, span[0], span[1], &rl)
		pe += lj.AccumulateRangeList(s, &rl, got)
	}
	if math.Abs(pe-peWant) > 1e-9*(1+math.Abs(peWant)) {
		t.Errorf("PE: range lists %v vs global %v", pe, peWant)
	}
	for i := range want {
		if !got[i].ApproxEqual(want[i], 1e-9*(1+want[i].Norm())) {
			t.Fatalf("force %d mismatch", i)
		}
	}
}

func TestAccumulateRangeListFullMatchesHalf(t *testing.T) {
	s := randomAtoms(32, 50, 13, 2.2)
	lj := NewLJ(s.Elements, 6)
	g := cells.NewGrid(s.Box, 6)
	g.Assign(s)

	half := make([]vec.Vec3, s.N())
	var rlH cells.RangeList
	g.BuildRange(s, 6, 0, s.N(), &rlH)
	peHalf := lj.AccumulateRangeList(s, &rlH, half)

	full := make([]vec.Vec3, s.N())
	var rlF cells.RangeList
	g.BuildRangeFull(s, 6, 0, s.N(), &rlF)
	peFull := lj.AccumulateRangeListFull(s, &rlF, full)

	if math.Abs(peHalf-peFull) > 1e-9*(1+math.Abs(peHalf)) {
		t.Errorf("PE: half %v vs full %v", peHalf, peFull)
	}
	for i := range half {
		if !full[i].ApproxEqual(half[i], 1e-9*(1+half[i].Norm())) {
			t.Fatalf("force %d: half %v vs full %v", i, half[i], full[i])
		}
	}
}

func TestAccumulateRangeListFullRespectsExclusions(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.C, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(6.5, 5, 5), vec.Zero, 0, false)
	s.Bonds = []atom.Bond{{I: 0, J: 1, K: 10, R0: 1.5}}
	s.BuildExclusions()
	lj := NewLJ(s.Elements, 8)
	g := cells.NewGrid(s.Box, 8)
	g.Assign(s)
	var rl cells.RangeList
	g.BuildRangeFull(s, 8, 0, 2, &rl)
	f := make([]vec.Vec3, 2)
	if pe := lj.AccumulateRangeListFull(s, &rl, f); pe != 0 {
		t.Errorf("excluded bonded pair contributed LJ energy %v", pe)
	}
	if f[0] != vec.Zero || f[1] != vec.Zero {
		t.Error("excluded bonded pair contributed LJ force")
	}
}

func TestAngleValue(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.C, vec.New(6, 5, 5), vec.Zero, 0, false) // I
	s.AddAtom(atom.C, vec.New(5, 5, 5), vec.Zero, 0, false) // J (vertex)
	s.AddAtom(atom.C, vec.New(5, 6, 5), vec.Zero, 0, false) // K
	a := atom.Angle{I: 0, J: 1, K: 2}
	if got := AngleValue(s, a); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("AngleValue = %v, want π/2", got)
	}
	// Degenerate (coincident) vertex.
	s.Pos[0] = s.Pos[1]
	if got := AngleValue(s, a); got != 0 {
		t.Errorf("degenerate AngleValue = %v", got)
	}
}

func TestDihedralValue(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	// A 90° dihedral: I below the JK axis plane, L out of it.
	s.AddAtom(atom.C, vec.New(5, 4, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(6, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(6, 5, 6), vec.Zero, 0, false)
	to := atom.Torsion{I: 0, J: 1, K: 2, L: 3}
	got := DihedralValue(s, to)
	if math.Abs(math.Abs(got)-math.Pi/2) > 1e-12 {
		t.Errorf("DihedralValue = %v, want ±π/2", got)
	}
	// Collinear chain: 0.
	s.Pos[3] = vec.New(7, 5, 5)
	s.Pos[0] = vec.New(4, 5, 5)
	if got := DihedralValue(s, to); got != 0 {
		t.Errorf("collinear DihedralValue = %v", got)
	}
	// The value must be consistent with the energy minimum: a torsion
	// parameterized at the measured dihedral exerts no force.
	s.Pos[0] = vec.New(5, 4, 5.3)
	s.Pos[3] = vec.New(6, 5.4, 6)
	phi := DihedralValue(s, to)
	s.Torsions = []atom.Torsion{{I: 0, J: 1, K: 2, L: 3, V0: 2, N: 1, Phi0: phi}}
	f := make([]vec.Vec3, 4)
	pe := AccumulateTorsionsRange(s, s.Torsions, 0, 1, f)
	if pe > 1e-12 {
		t.Errorf("torsion at its own Phi0 has PE %v", pe)
	}
	for i, fi := range f {
		if fi.Norm() > 1e-9 {
			t.Errorf("torsion at its own Phi0 exerts force on %d: %v", i, fi)
		}
	}
}
