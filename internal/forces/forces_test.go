package forces

import (
	"math"
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/units"
	"mw/internal/vec"
)

// numGrad computes -dE/dPos[i] by central differences for an arbitrary
// energy functional, giving the reference force on atom i.
func numGrad(s *atom.System, i int, energy func(*atom.System) float64) vec.Vec3 {
	const h = 1e-6
	var g [3]float64
	for d := 0; d < 3; d++ {
		orig := s.Pos[i]
		bump := func(delta float64) float64 {
			p := orig
			switch d {
			case 0:
				p.X += delta
			case 1:
				p.Y += delta
			case 2:
				p.Z += delta
			}
			s.Pos[i] = p
			e := energy(s)
			s.Pos[i] = orig
			return e
		}
		g[d] = -(bump(h) - bump(-h)) / (2 * h)
	}
	return vec.New(g[0], g[1], g[2])
}

func ljEnergy(lj *LJ) func(*atom.System) float64 {
	return func(s *atom.System) float64 {
		nl := cells.NewNeighborList(lj.Cutoff, 0.5)
		nl.Build(s)
		f := make([]vec.Vec3, s.N())
		return lj.Accumulate(s, nl, f)
	}
}

func randomAtoms(seed int64, n int, l float64, minSep float64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, false))
	rng := rand.New(rand.NewSource(seed))
	for len(s.Pos) < n {
		p := vec.New(1+rng.Float64()*(l-2), 1+rng.Float64()*(l-2), 1+rng.Float64()*(l-2))
		ok := true
		for _, q := range s.Pos {
			if q.Dist(p) < minSep {
				ok = false
				break
			}
		}
		if ok {
			s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
		}
	}
	return s
}

func TestLJForceMatchesNumericalGradient(t *testing.T) {
	s := randomAtoms(1, 12, 12, 3.0)
	lj := NewLJ(s.Elements, 8)
	nl := cells.NewNeighborList(8, 0.5)
	nl.Build(s)
	f := make([]vec.Vec3, s.N())
	lj.Accumulate(s, nl, f)
	for i := 0; i < s.N(); i++ {
		want := numGrad(s, i, ljEnergy(lj))
		if !f[i].ApproxEqual(want, 1e-5*(1+want.Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
}

func TestLJNewtonThirdLaw(t *testing.T) {
	s := randomAtoms(2, 60, 15, 2.0)
	lj := NewLJ(s.Elements, 6)
	nl := cells.NewNeighborList(6, 0.5)
	nl.Build(s)
	f := make([]vec.Vec3, s.N())
	lj.Accumulate(s, nl, f)
	var sum vec.Vec3
	for _, fi := range f {
		sum = sum.Add(fi)
	}
	if sum.Norm() > 1e-9 {
		t.Errorf("net LJ force = %v", sum)
	}
}

func TestLJTwoAtomAnalytic(t *testing.T) {
	// Two argon atoms at the potential minimum r = 2^(1/6) σ feel no force.
	s := atom.NewSystem(atom.CubicBox(20, false))
	sigma := atom.Builtin[atom.Ar].Sigma
	rmin := math.Pow(2, 1.0/6.0) * sigma
	s.AddAtom(atom.Ar, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.Ar, vec.New(5+rmin, 5, 5), vec.Zero, 0, false)
	lj := NewLJ(s.Elements, 10)
	nl := cells.NewNeighborList(10, 0.5)
	nl.Build(s)
	f := make([]vec.Vec3, 2)
	pe := lj.Accumulate(s, nl, f)
	if f[0].Norm() > 1e-10 {
		t.Errorf("force at minimum = %v", f[0])
	}
	// Energy at minimum is -ε (plus the small cutoff shift).
	eps := atom.Builtin[atom.Ar].Epsilon
	if math.Abs(pe-(-eps)) > 0.01*eps {
		t.Errorf("PE at minimum = %v, want ≈ %v", pe, -eps)
	}
}

func TestLJCutoffRespected(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(30, false))
	s.AddAtom(atom.Ar, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.Ar, vec.New(16, 5, 5), vec.Zero, 0, false) // beyond cutoff 10
	lj := NewLJ(s.Elements, 10)
	nl := cells.NewNeighborList(10, 2)
	nl.Build(s)
	f := make([]vec.Vec3, 2)
	pe := lj.Accumulate(s, nl, f)
	if pe != 0 || f[0] != vec.Zero || f[1] != vec.Zero {
		t.Errorf("interaction beyond cutoff: pe=%v f=%v", pe, f)
	}
}

func TestLJFixedPairSkipped(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.Au, vec.New(5, 5, 5), vec.Zero, 0, true)
	s.AddAtom(atom.Au, vec.New(7, 5, 5), vec.Zero, 0, true)
	s.AddAtom(atom.Ar, vec.New(5, 7, 5), vec.Zero, 0, false)
	lj := NewLJ(s.Elements, 8)
	nl := cells.NewNeighborList(8, 0.5)
	nl.Build(s)
	f := make([]vec.Vec3, 3)
	lj.Accumulate(s, nl, f)
	// Fixed-fixed pair contributes nothing, but fixed-mobile does.
	if f[2] == vec.Zero {
		t.Error("mobile atom near fixed atoms feels no force")
	}
	// Compare: remove the mobile atom's interactions; fixed atoms must then
	// have zero force (only their mutual pair remains, which is skipped).
	s2 := atom.NewSystem(atom.CubicBox(20, false))
	s2.AddAtom(atom.Au, vec.New(5, 5, 5), vec.Zero, 0, true)
	s2.AddAtom(atom.Au, vec.New(7, 5, 5), vec.Zero, 0, true)
	nl2 := cells.NewNeighborList(8, 0.5)
	nl2.Build(s2)
	f2 := make([]vec.Vec3, 2)
	pe := lj.Accumulate(s2, nl2, f2)
	if pe != 0 || f2[0] != vec.Zero || f2[1] != vec.Zero {
		t.Error("fixed-fixed pair not skipped")
	}
}

func TestLJRangePartitionEquivalence(t *testing.T) {
	// Summing AccumulateRange over disjoint ranges with private arrays must
	// equal a single full Accumulate — the engine's privatization+reduction.
	s := randomAtoms(3, 80, 15, 2.0)
	lj := NewLJ(s.Elements, 6)
	nl := cells.NewNeighborList(6, 0.5)
	nl.Build(s)

	full := make([]vec.Vec3, s.N())
	peFull := lj.Accumulate(s, nl, full)

	parts := [][2]int{{0, 20}, {20, 47}, {47, 80}}
	sum := make([]vec.Vec3, s.N())
	var peSum float64
	for _, p := range parts {
		priv := make([]vec.Vec3, s.N())
		peSum += lj.AccumulateRange(s, nl, p[0], p[1], priv)
		for i := range sum {
			sum[i] = sum[i].Add(priv[i])
		}
	}
	if math.Abs(peFull-peSum) > 1e-9*(1+math.Abs(peFull)) {
		t.Errorf("PE: full %v vs partitioned %v", peFull, peSum)
	}
	for i := range full {
		if !full[i].ApproxEqual(sum[i], 1e-9*(1+full[i].Norm())) {
			t.Fatalf("force %d: full %v vs partitioned %v", i, full[i], sum[i])
		}
	}
}

func chargedPair(t *testing.T) *atom.System {
	t.Helper()
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.Na, vec.New(5, 5, 5), vec.Zero, +1, false)
	s.AddAtom(atom.Cl, vec.New(8, 5, 5), vec.Zero, -1, false)
	return s
}

func TestCoulombTwoIonAnalytic(t *testing.T) {
	s := chargedPair(t)
	var c Coulomb
	f := make([]vec.Vec3, 2)
	pe := c.Accumulate(s, s.ChargedIndices(), f)
	r := 3.0
	wantPE := -units.CoulombK / r
	if math.Abs(pe-wantPE) > 1e-12 {
		t.Errorf("PE = %v, want %v", pe, wantPE)
	}
	wantF := units.CoulombK / (r * r)
	// Opposite charges attract: ion 0 pulled toward +x.
	if math.Abs(f[0].X-wantF) > 1e-12 || math.Abs(f[1].X+wantF) > 1e-12 {
		t.Errorf("forces = %v", f)
	}
	if f[0].Y != 0 || f[0].Z != 0 {
		t.Errorf("off-axis force = %v", f[0])
	}
}

func TestCoulombMatchesNumericalGradient(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		q := 1.0
		if i%2 == 1 {
			q = -1
		}
		p := vec.New(2+rng.Float64()*16, 2+rng.Float64()*16, 2+rng.Float64()*16)
		s.AddAtom(atom.Na, p, vec.Zero, q, false)
	}
	var c Coulomb
	charged := s.ChargedIndices()
	f := make([]vec.Vec3, s.N())
	c.Accumulate(s, charged, f)
	energy := func(s *atom.System) float64 {
		scratch := make([]vec.Vec3, s.N())
		return c.Accumulate(s, s.ChargedIndices(), scratch)
	}
	for i := 0; i < s.N(); i++ {
		want := numGrad(s, i, energy)
		if !f[i].ApproxEqual(want, 1e-5*(1+want.Norm())) {
			t.Errorf("ion %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
}

func TestCoulombNewtonThirdLaw(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		q := float64(1 + rng.Intn(2))
		if rng.Intn(2) == 0 {
			q = -q
		}
		s.AddAtom(atom.Na, vec.New(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20), vec.Zero, q, false)
	}
	var c Coulomb
	f := make([]vec.Vec3, s.N())
	c.Accumulate(s, s.ChargedIndices(), f)
	var sum vec.Vec3
	for _, fi := range f {
		sum = sum.Add(fi)
	}
	if sum.Norm() > 1e-9 {
		t.Errorf("net Coulomb force = %v", sum)
	}
}

func TestCoulombRangePartitionEquivalence(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		q := 1.0
		if i%2 == 0 {
			q = -1
		}
		s.AddAtom(atom.Cl, vec.New(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20), vec.Zero, q, false)
	}
	var c Coulomb
	charged := s.ChargedIndices()
	full := make([]vec.Vec3, s.N())
	peFull := c.Accumulate(s, charged, full)
	sum := make([]vec.Vec3, s.N())
	var peSum float64
	for _, p := range [][2]int{{0, 10}, {10, 18}, {18, 30}} {
		priv := make([]vec.Vec3, s.N())
		peSum += c.AccumulateRange(s, charged, p[0], p[1], priv)
		for i := range sum {
			sum[i] = sum[i].Add(priv[i])
		}
	}
	if math.Abs(peFull-peSum) > 1e-9 {
		t.Errorf("PE mismatch: %v vs %v", peFull, peSum)
	}
	for i := range full {
		if !full[i].ApproxEqual(sum[i], 1e-9*(1+full[i].Norm())) {
			t.Fatalf("force %d mismatch", i)
		}
	}
}

func TestCoulombSoftening(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	s.AddAtom(atom.Na, vec.New(5, 5, 5), vec.Zero, 1, false)
	s.AddAtom(atom.Na, vec.New(5, 5, 5), vec.Zero, 1, false) // coincident
	c := Coulomb{Softening: 0.1}
	f := make([]vec.Vec3, 2)
	pe := c.Accumulate(s, s.ChargedIndices(), f)
	if math.IsInf(pe, 0) || math.IsNaN(pe) {
		t.Error("softened Coulomb produced non-finite energy")
	}
}

func TestBondForceMatchesNumericalGradient(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6; i++ {
		s.AddAtom(atom.C, vec.New(5+rng.Float64()*8, 5+rng.Float64()*8, 5+rng.Float64()*8), vec.Zero, 0, false)
	}
	s.Bonds = []atom.Bond{
		{I: 0, J: 1, K: 20, R0: 1.5},
		{I: 1, J: 2, K: 15, R0: 1.4},
		{I: 3, J: 4, K: 25, R0: 2.0},
	}
	f := make([]vec.Vec3, s.N())
	AccumulateBondsRange(s, s.Bonds, 0, len(s.Bonds), f)
	energy := func(s *atom.System) float64 {
		scratch := make([]vec.Vec3, s.N())
		return AccumulateBondsRange(s, s.Bonds, 0, len(s.Bonds), scratch)
	}
	for i := 0; i < s.N(); i++ {
		want := numGrad(s, i, energy)
		if !f[i].ApproxEqual(want, 1e-4*(1+want.Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
}

func TestAngleForceMatchesNumericalGradient(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.H, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.O, vec.New(6, 5.2, 5.1), vec.Zero, 0, false)
	s.AddAtom(atom.H, vec.New(6.4, 6.1, 4.9), vec.Zero, 0, false)
	s.Angles = []atom.Angle{{I: 0, J: 1, K: 2, KTheta: 3.0, Theta0: 104.5 * math.Pi / 180}}
	f := make([]vec.Vec3, s.N())
	AccumulateAnglesRange(s, s.Angles, 0, len(s.Angles), f)
	energy := func(s *atom.System) float64 {
		scratch := make([]vec.Vec3, s.N())
		return AccumulateAnglesRange(s, s.Angles, 0, len(s.Angles), scratch)
	}
	for i := 0; i < 3; i++ {
		want := numGrad(s, i, energy)
		if !f[i].ApproxEqual(want, 1e-4*(1+want.Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
	// Net force and net torque of an isolated angle term must vanish.
	sum := f[0].Add(f[1]).Add(f[2])
	if sum.Norm() > 1e-10 {
		t.Errorf("net angle force = %v", sum)
	}
}

func TestTorsionForceMatchesNumericalGradient(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.C, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(6.5, 5.3, 5.2), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(7.1, 6.7, 5.8), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(8.4, 6.9, 6.9), vec.Zero, 0, false)
	s.Torsions = []atom.Torsion{{I: 0, J: 1, K: 2, L: 3, V0: 2.0, N: 3, Phi0: 0.3}}
	f := make([]vec.Vec3, s.N())
	AccumulateTorsionsRange(s, s.Torsions, 0, len(s.Torsions), f)
	energy := func(s *atom.System) float64 {
		scratch := make([]vec.Vec3, s.N())
		return AccumulateTorsionsRange(s, s.Torsions, 0, len(s.Torsions), scratch)
	}
	for i := 0; i < 4; i++ {
		want := numGrad(s, i, energy)
		if !f[i].ApproxEqual(want, 1e-4*(1+want.Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
	sum := f[0].Add(f[1]).Add(f[2]).Add(f[3])
	if sum.Norm() > 1e-10 {
		t.Errorf("net torsion force = %v", sum)
	}
}

func TestTorsionDegenerateChainSkipped(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	// Collinear chain: dihedral undefined.
	for i := 0; i < 4; i++ {
		s.AddAtom(atom.C, vec.New(5+float64(i), 5, 5), vec.Zero, 0, false)
	}
	s.Torsions = []atom.Torsion{{I: 0, J: 1, K: 2, L: 3, V0: 2.0, N: 3, Phi0: 0}}
	f := make([]vec.Vec3, 4)
	pe := AccumulateTorsionsRange(s, s.Torsions, 0, 1, f)
	if pe != 0 {
		t.Errorf("degenerate torsion PE = %v", pe)
	}
	for _, fi := range f {
		if fi != vec.Zero {
			t.Error("degenerate torsion produced forces")
		}
	}
}

func TestAngleCollinearSkipped(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.C, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(6, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.C, vec.New(7, 5, 5), vec.Zero, 0, false)
	s.Angles = []atom.Angle{{I: 0, J: 1, K: 2, KTheta: 3, Theta0: 2}}
	f := make([]vec.Vec3, 3)
	AccumulateAnglesRange(s, s.Angles, 0, 1, f)
	for _, fi := range f {
		if fi != vec.Zero {
			t.Error("collinear angle produced forces")
		}
	}
}

func TestBondedEnergyAggregates(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	for i := 0; i < 4; i++ {
		s.AddAtom(atom.C, vec.New(5+1.3*float64(i), 5+0.4*float64(i%2), 5), vec.Zero, 0, false)
	}
	s.Bonds = []atom.Bond{{I: 0, J: 1, K: 20, R0: 1.0}}
	s.Angles = []atom.Angle{{I: 0, J: 1, K: 2, KTheta: 3, Theta0: 2}}
	s.Torsions = []atom.Torsion{{I: 0, J: 1, K: 2, L: 3, V0: 1, N: 1, Phi0: 0}}
	f := make([]vec.Vec3, 4)
	got := AccumulateBonded(s, f)
	want := BondedEnergy(s)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AccumulateBonded %v != BondedEnergy %v", got, want)
	}
	if got == 0 {
		t.Error("expected non-zero bonded energy")
	}
}

func TestFieldForces(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	s.AddAtom(atom.Na, vec.New(5, 5, 5), vec.Zero, 2, false)
	s.AddAtom(atom.Ar, vec.New(3, 3, 3), vec.Zero, 0, false)
	fl := Field{E: vec.New(0.5, 0, 0)}
	f := make([]vec.Vec3, 2)
	fl.AccumulateRange(s, 0, 2, f)
	if !f[0].ApproxEqual(vec.New(1.0, 0, 0), 1e-12) {
		t.Errorf("E-field force on q=2: %v", f[0])
	}
	if f[1] != vec.Zero {
		t.Error("neutral atom felt E field")
	}
}

func TestFieldGravity(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	s.AddAtom(atom.Au, vec.New(5, 5, 5), vec.Zero, 0, false)
	g := vec.New(0, -1e-4, 0)
	fl := Field{G: g}
	f := make([]vec.Vec3, 1)
	fl.AccumulateRange(s, 0, 1, f)
	// Resulting acceleration must equal G independent of mass.
	a := units.Acceleration(f[0].Y, s.Mass[0])
	if math.Abs(a-g.Y) > 1e-15 {
		t.Errorf("gravity acceleration = %v, want %v", a, g.Y)
	}
	if !fl.IsZero() == false && fl.IsZero() {
		t.Error("non-zero field reported zero")
	}
	if (Field{}).IsZero() == false {
		t.Error("zero field reported non-zero")
	}
}

func TestPairEnergyBeyondCutoff(t *testing.T) {
	lj := NewLJ(atom.Builtin[:], 5)
	if lj.PairEnergy(atom.Ar, atom.Ar, 26) != 0 {
		t.Error("PairEnergy beyond cutoff must be 0")
	}
	if lj.PairEnergy(atom.Ar, atom.Ar, 10) == 0 {
		t.Error("PairEnergy inside cutoff must be non-zero")
	}
}

func TestNewLJPanicsOnBadCutoff(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLJ must panic on non-positive cutoff")
		}
	}()
	NewLJ(atom.Builtin[:], -1)
}

func TestMorseForceMatchesNumericalGradient(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 6; i++ {
		s.AddAtom(atom.O, vec.New(5+rng.Float64()*8, 5+rng.Float64()*8, 5+rng.Float64()*8), vec.Zero, 0, false)
	}
	s.Morses = []atom.Morse{
		{I: 0, J: 1, D: 4.5, A: 2.0, R0: 1.2},
		{I: 2, J: 3, D: 2.0, A: 1.5, R0: 2.0},
		{I: 4, J: 5, D: 1.0, A: 1.0, R0: 3.0},
	}
	f := make([]vec.Vec3, s.N())
	AccumulateMorseRange(s, s.Morses, 0, len(s.Morses), f)
	energy := func(s *atom.System) float64 {
		scratch := make([]vec.Vec3, s.N())
		return AccumulateMorseRange(s, s.Morses, 0, len(s.Morses), scratch)
	}
	for i := 0; i < s.N(); i++ {
		want := numGrad(s, i, energy)
		if !f[i].ApproxEqual(want, 1e-4*(1+want.Norm())) {
			t.Errorf("atom %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
	// Newton's third law per bond.
	var sum vec.Vec3
	for _, fi := range f {
		sum = sum.Add(fi)
	}
	if sum.Norm() > 1e-10 {
		t.Errorf("net Morse force = %v", sum)
	}
}

func TestMorseProperties(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.O, vec.New(5, 5, 5), vec.Zero, 0, false)
	s.AddAtom(atom.O, vec.New(5, 5, 6.2), vec.Zero, 0, false) // at R0
	s.Morses = []atom.Morse{{I: 0, J: 1, D: 5.0, A: 2.0, R0: 1.2}}
	f := make([]vec.Vec3, 2)
	pe := AccumulateMorseRange(s, s.Morses, 0, 1, f)
	if math.Abs(pe) > 1e-12 || f[0].Norm() > 1e-12 {
		t.Errorf("Morse at equilibrium: pe=%v f=%v", pe, f[0])
	}
	// Dissociation limit: energy → D, force → 0.
	s.Pos[1] = vec.New(5, 5, 17)
	f[0], f[1] = vec.Zero, vec.Zero
	pe = AccumulateMorseRange(s, s.Morses, 0, 1, f)
	if math.Abs(pe-5.0) > 1e-6 {
		t.Errorf("dissociated Morse energy %v, want ≈ D", pe)
	}
	if f[0].Norm() > 1e-6 {
		t.Errorf("dissociated Morse force %v", f[0])
	}
}
