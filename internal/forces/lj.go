// Package forces implements the three interatomic force families computed
// in phase 4 of the Molecular Workbench timestep (paper §II-B):
//
//   - Lennard-Jones between non-bonded atoms within a cutoff, driven by the
//     linked-cell neighbor lists (the dominant force in most repository
//     simulations, e.g. Al-1000);
//   - Coulombic forces between every pair of charged particles regardless of
//     distance (dominant in the salt benchmark);
//   - bonded forces — radial, angular and torsional terms involving up to
//     four atoms with irregular indexing into the atom array (dominant in
//     the nanocar benchmark);
//
// plus uniform external fields. All Accumulate functions add forces into a
// caller-provided array, which is how the engine privatizes force
// accumulation per worker thread before the reduction phase, and return the
// potential energy of the accumulated terms.
package forces

import (
	"math"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/vec"
)

// LJ computes shifted Lennard-Jones interactions with per-element-pair
// parameters combined by Lorentz-Berthelot rules. The potential is shifted
// so that V(cutoff) = 0, keeping energy continuous across the cutoff.
type LJ struct {
	Cutoff float64

	nelem  int
	sigma2 []float64 // σ², indexed [a*nelem+b]
	eps    []float64 // ε
	shift  []float64 // V_unshifted(cutoff)

	// Cluster-kernel tables (lj_cluster.go). The A/B form of the potential
	// — A = 4εσ¹², B = 4εσ⁶, u = 1/r⁶ — turns the pair energy into
	// A·u² − B·u − shift and the force scale into (12A·u − 6B)·u/r²,
	// replacing one of the two divisions of the σ²/r² form with FMA-friendly
	// polynomial evaluation.
	cA, cB     []float64 // A, B per pair index
	cA12, cB6  []float64 // 12A, 6B per pair index
	simdParams []float64 // (nelem²+1)×16 block of 4-lane broadcast rows
}

// NewLJ precomputes the pair table for the element set.
func NewLJ(elements []atom.Element, cutoff float64) *LJ {
	if cutoff <= 0 {
		panic("forces: non-positive LJ cutoff")
	}
	n := len(elements)
	lj := &LJ{
		Cutoff: cutoff,
		nelem:  n,
		sigma2: make([]float64, n*n),
		eps:    make([]float64, n*n),
		shift:  make([]float64, n*n),
	}
	c2 := cutoff * cutoff
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sigma, eps := atom.MixLJ(elements[a], elements[b])
			s2 := sigma * sigma
			lj.sigma2[a*n+b] = s2
			lj.eps[a*n+b] = eps
			sr2 := s2 / c2
			sr6 := sr2 * sr2 * sr2
			lj.shift[a*n+b] = 4 * eps * (sr6*sr6 - sr6)
		}
	}
	// Cluster-kernel tables. The SIMD parameter block holds one 128-byte
	// row per pair index k — four broadcast lanes each of 12A, −6B, B/2 and
	// shift — plus an all-zero sentinel row at index nelem² for mixed-element
	// entries: the vector kernel computes exact zeros for those and a scalar
	// pass recomputes them (see AccumulateClusterListSIMD).
	nn := n * n
	lj.cA = make([]float64, nn)
	lj.cB = make([]float64, nn)
	lj.cA12 = make([]float64, nn)
	lj.cB6 = make([]float64, nn)
	lj.simdParams = make([]float64, (nn+1)*16)
	for k := 0; k < nn; k++ {
		s2 := lj.sigma2[k]
		s6 := s2 * s2 * s2
		a := 4 * lj.eps[k] * s6 * s6
		b := 4 * lj.eps[k] * s6
		lj.cA[k], lj.cB[k] = a, b
		lj.cA12[k], lj.cB6[k] = 12*a, 6*b
		row := lj.simdParams[k*16 : k*16+16]
		for l := 0; l < 4; l++ {
			row[l] = 12 * a
			row[4+l] = -6 * b
			row[8+l] = b / 2
			row[12+l] = lj.shift[k]
		}
	}
	return lj
}

// AccumulateRange adds LJ forces for all half pairs owned by atoms
// lo ≤ i < hi (their full neighbor slices) into f and returns the potential
// energy of those pairs. Because each pair is owned by exactly one atom, two
// workers never both write the same pair — but they may write the same f[j]
// entry, which is why the engine gives every worker a private f.
//
// Pairs of two fixed atoms are skipped: the nanocar's immovable gold
// platform atoms do not interact with one another (paper §III), which is
// what lowers that benchmark's effective atom count.
//
//mw:hotpath
func (lj *LJ) AccumulateRange(s *atom.System, nl *cells.NeighborList, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	// BCE preamble (every kernel below repeats it): reslice the per-atom
	// arrays to the force array's length and hoist the pair tables at a
	// common length, then guard the range once. Together with the uint
	// comparisons inside the pair loop this hands the prove pass everything
	// it needs to delete the implicit bounds checks — and their panic calls —
	// from the pair loop; `mwlint -bce` holds the loops check-free.
	n := len(f)
	pos, elem, fixed := s.Pos[:n], s.Elem[:n], s.Fixed[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fi := f[i]
		fixedI := fixed[i]
		for _, j := range nl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			if fixedI && fixed[jj] {
				continue
			}
			if s.Excl.Excluded(int32(i), j) {
				continue
			}
			d := box.MinImage(pos[jj].Sub(pi))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 4*eps*(sr12-sr6) - shiftT[k]
			// dV/dr · 1/r, applied along d (j-i direction).
			fs := 24 * eps * (2*sr12 - sr6) / r2
			fi = fi.AddScaled(-fs, d)
			f[jj] = f[jj].AddScaled(fs, d)
		}
		f[i] = fi
	}
	return pe
}

// Accumulate adds LJ forces for every pair in the list.
func (lj *LJ) Accumulate(s *atom.System, nl *cells.NeighborList, f []vec.Vec3) float64 {
	return lj.AccumulateRange(s, nl, 0, s.N(), f)
}

// AccumulateRangeList adds LJ forces for all pairs held by a per-chunk
// RangeList into f and returns their potential energy. This is the fused
// phase-3+4 fast path of the parallel engine.
//
//mw:hotpath
func (lj *LJ) AccumulateRangeList(s *atom.System, rl *cells.RangeList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	n := len(f)
	pos, elem, fixed := s.Pos[:n], s.Elem[:n], s.Fixed[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	lo, hi := rl.Lo, rl.Hi
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fi := f[i]
		fixedI := fixed[i]
		for _, j := range rl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			if fixedI && fixed[jj] {
				continue
			}
			if s.Excl.Excluded(int32(i), j) {
				continue
			}
			d := box.MinImage(pos[jj].Sub(pi))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 4*eps*(sr12-sr6) - shiftT[k]
			fs := 24 * eps * (2*sr12 - sr6) / r2
			fi = fi.AddScaled(-fs, d)
			f[jj] = f[jj].AddScaled(fs, d)
		}
		f[i] = fi
	}
	return pe
}

// AccumulateRangeListNoExcl is AccumulateRangeList specialized for systems
// with no exclusion pairs (salt and Al-1000: no bonded topology, so every
// neighbor pair interacts). Dropping the per-pair ExclusionSet call — a
// non-inlinable function with a nil check and a slice walk — from the
// innermost loop is a measurable win on exactly the rebuild-heavy LJ
// workload the paper profiles; combined with Morton reordering this is the
// engine's fastest symmetric (Newton-3) path. The engine selects it
// automatically; callers may use it directly only when Excl.Len() == 0.
//
//mw:hotpath
func (lj *LJ) AccumulateRangeListNoExcl(s *atom.System, rl *cells.RangeList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	n := len(f)
	pos, elem, fixed := s.Pos[:n], s.Elem[:n], s.Fixed[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	lo, hi := rl.Lo, rl.Hi
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fi := f[i]
		fixedI := fixed[i]
		for _, j := range rl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			if fixedI && fixed[jj] {
				continue
			}
			d := box.MinImage(pos[jj].Sub(pi))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 4*eps*(sr12-sr6) - shiftT[k]
			fs := 24 * eps * (2*sr12 - sr6) / r2
			fi = fi.AddScaled(-fs, d)
			f[jj] = f[jj].AddScaled(fs, d)
		}
		f[i] = fi
	}
	return pe
}

// AccumulateRangeListFast is the cell-ordered hot-path kernel: exclusion
// check and fixed-pair check dropped, and the two per-pair divisions fused
// into one reciprocal (sr2 and fs both multiply by 1/r2). The reciprocal
// changes floating-point association at the ulp level, so unlike the NoExcl
// kernels this one is NOT bitwise-identical to the reference path — the
// engine selects it only when the reorder hot path is explicitly enabled
// (Cfg.Reorder), where the differential matrix bounds the deviation, never
// on the default path that golden trajectories pin. Preconditions:
// Excl.Len() == 0 and no fixed atoms.
//
//mw:hotpath
func (lj *LJ) AccumulateRangeListFast(s *atom.System, rl *cells.RangeList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	// The displacement is computed on scalars with the minimum-image wrap
	// inlined behind one perfectly-predicted branch: Box.MinImage is a real
	// (non-inlined) call, and at ~30 pairs per atom the call overhead is a
	// measurable slice of the whole kernel.
	periodic := s.Box.Periodic
	lx, ly, lz := s.Box.L.X, s.Box.L.Y, s.Box.L.Z
	n := len(f)
	pos, elem := s.Pos[:n], s.Elem[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	lo, hi := rl.Lo, rl.Hi
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fix, fiy, fiz := f[i].X, f[i].Y, f[i].Z
		for _, j := range rl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			q := pos[jj]
			dx, dy, dz := q.X-pi.X, q.Y-pi.Y, q.Z-pi.Z
			if periodic {
				dx -= lx * math.Round(dx/lx)
				dy -= ly * math.Round(dy/ly)
				dz -= lz * math.Round(dz/lz)
			}
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= c2 || r2 == 0 {
				continue
			}
			inv := 1 / r2
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] * inv
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 4*eps*(sr12-sr6) - shiftT[k]
			fs := 24 * eps * (2*sr12 - sr6) * inv
			fix -= fs * dx
			fiy -= fs * dy
			fiz -= fs * dz
			f[jj].X += fs * dx
			f[jj].Y += fs * dy
			f[jj].Z += fs * dz
		}
		f[i] = vec.Vec3{X: fix, Y: fiy, Z: fiz}
	}
	return pe
}

// AccumulateRangeListFullNoExcl is the full-list analogue of
// AccumulateRangeListNoExcl: no mirrored write, halved pair energy, no
// exclusion check. Valid only when Excl.Len() == 0.
//
//mw:hotpath
func (lj *LJ) AccumulateRangeListFullNoExcl(s *atom.System, rl *cells.RangeList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	n := len(f)
	pos, elem, fixed := s.Pos[:n], s.Elem[:n], s.Fixed[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	lo, hi := rl.Lo, rl.Hi
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fi := f[i]
		fixedI := fixed[i]
		for _, j := range rl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			if fixedI && fixed[jj] {
				continue
			}
			d := box.MinImage(pos[jj].Sub(pi))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 0.5 * (4*eps*(sr12-sr6) - shiftT[k])
			fs := 24 * eps * (2*sr12 - sr6) / r2
			fi = fi.AddScaled(-fs, d)
		}
		f[i] = fi
	}
	return pe
}

// AccumulateRangeListFull adds LJ forces from a FULL range list (built by
// Grid.BuildRangeFull: every pair appears under both endpoints). Force is
// added only to the owning atom i — no mirrored write — and each pair's
// energy is halved so the total matches the half-list path. Because no
// worker ever writes another worker's atoms, this path needs no privatized
// arrays for the LJ term; the trade is ~2× the pair arithmetic.
//
//mw:hotpath
func (lj *LJ) AccumulateRangeListFull(s *atom.System, rl *cells.RangeList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	n := len(f)
	pos, elem, fixed := s.Pos[:n], s.Elem[:n], s.Fixed[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	lo, hi := rl.Lo, rl.Hi
	if lo < 0 || hi > n {
		panic("forces: LJ range outside force array")
	}
	for i := lo; i < hi; i++ {
		pi := pos[i]
		ei := int(elem[i])
		fi := f[i]
		fixedI := fixed[i]
		for _, j := range rl.Of(i) {
			jj := int(j)
			if uint(jj) >= uint(n) {
				continue // corrupt neighbor entry; valid lists never hit this
			}
			if fixedI && fixed[jj] {
				continue
			}
			if s.Excl.Excluded(int32(i), j) {
				continue
			}
			d := box.MinImage(pos[jj].Sub(pi))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			k := ei*lj.nelem + int(elem[jj])
			if uint(k) >= uint(m) {
				continue // element id outside the pair table
			}
			sr2 := sig2[k] / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			eps := epsT[k]
			pe += 0.5 * (4*eps*(sr12-sr6) - shiftT[k])
			fs := 24 * eps * (2*sr12 - sr6) / r2
			fi = fi.AddScaled(-fs, d)
		}
		f[i] = fi
	}
	return pe
}

// PairEnergy returns the shifted LJ pair energy for elements a, b at squared
// distance r2 (0 beyond the cutoff); used by tests and diagnostics.
func (lj *LJ) PairEnergy(a, b int16, r2 float64) float64 {
	if r2 >= lj.Cutoff*lj.Cutoff {
		return 0
	}
	k := int(a)*lj.nelem + int(b)
	sr2 := lj.sigma2[k] / r2
	sr6 := sr2 * sr2 * sr2
	return 4*lj.eps[k]*(sr6*sr6-sr6) - lj.shift[k]
}
