//go:build amd64

package forces

import (
	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/vec"
)

// clusterArgs is the argument block of ljClusterAVX2. The field offsets are
// hard-coded in lj_cluster_amd64.s — keep the two in sync.
type clusterArgs struct {
	x, y, z    *float64
	fx, fy, fz *float64
	entries    *cells.ClusterEntry
	offs       *int32
	nc         int64
	i0         int64 // byte offset of the first i row: CiLo*ClusterSize*8
	c2         float64
	params     *float64
	w, s1, sh  [4]float64
}

// ljClusterAVX2 is the packed 4x4 cluster-pair kernel in
// lj_cluster_amd64.s. The stub belongs to the hot-path closure even though
// its body is assembly; the vecasm gate censuses the .s source directly.
//
//mw:hotpath
//go:noescape
func ljClusterAVX2(a *clusterArgs)

// cpuid and xgetbv0 are tiny feature probes in lj_cluster_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// HaveClusterSIMD reports whether the packed cluster kernel can run on this
// CPU: AVX2 and FMA present, and the OS saves ymm state. The build always
// contains the kernel (plain `go build`, any GOAMD64 level); this flag is
// what gates executing it.
var HaveClusterSIMD = hasAVX2FMA()

func hasAVX2FMA() bool {
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// XCR0 bits 1..2: OS manages xmm+ymm state across context switches.
	lo, _ := xgetbv0()
	if lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// AccumulateClusterListSIMD runs the packed cluster kernel over a chunk's
// cluster list, accumulating into f and returning the potential energy.
// Preconditions (the engine enforces them when picking this rung):
// HaveClusterSIMD, a non-periodic box, and cc packed for the current
// positions. Mixed-element entries flow through the params sentinel row as
// exact zeros and are recomputed by the scalar mixed pass.
//
// The per-chunk scratch exists because the kernel accumulates j forces with
// unmasked 4-lane read-modify-writes: lanes outside the chunk's own atom
// range receive zero contributions, but the writes still race with
// neighboring chunks if aimed at the shared force array, so each worker
// gets a private SoA window that is zeroed and folded back here.
//
//mw:hotpath
func (lj *LJ) AccumulateClusterListSIMD(s *atom.System, cc *cells.ClusterCoords, cl *cells.ClusterList, scr *ClusterScratch, f []vec.Vec3) float64 {
	nc := cl.CiHi - cl.CiLo
	if nc <= 0 || len(cl.Entries) == 0 {
		return 0
	}
	np := cc.NC * cells.ClusterSize
	if cap(scr.fx) < np {
		scr.fx = make([]float64, np)
		scr.fy = make([]float64, np)
		scr.fz = make([]float64, np)
	}
	fx, fy, fz := scr.fx[:np], scr.fy[:np], scr.fz[:np]
	scr.fx, scr.fy, scr.fz = fx, fy, fz
	winLo := cl.CiLo * cells.ClusterSize
	winHi := (cl.MaxCJ + 1) * cells.ClusterSize
	if winHi > np {
		winHi = np
	}
	if winLo < 0 || winLo > winHi {
		return 0
	}
	wx, wy, wz := fx[winLo:winHi], fy[winLo:winHi], fz[winLo:winHi]
	for i := range wx {
		wx[i], wy[i], wz[i] = 0, 0, 0
	}

	a := clusterArgs{
		x: &cc.X[0], y: &cc.Y[0], z: &cc.Z[0],
		fx: &fx[0], fy: &fy[0], fz: &fz[0],
		entries: &cl.Entries[0], offs: &cl.Offsets[0],
		nc: int64(nc), i0: int64(winLo * 8),
		c2: lj.Cutoff * lj.Cutoff, params: &lj.simdParams[0],
	}
	ljClusterAVX2(&a)
	pe := (a.w[0]+a.w[1]+a.w[2]+a.w[3])/12 -
		(a.s1[0] + a.s1[1] + a.s1[2] + a.s1[3]) -
		(a.sh[0] + a.sh[1] + a.sh[2] + a.sh[3])

	hi := winHi
	if hi > len(f) {
		hi = len(f)
	}
	ff := f[winLo:hi]
	ux, uy, uz := fx[winLo:hi], fy[winLo:hi], fz[winLo:hi]
	for i := range ff {
		ff[i].X += ux[i]
		ff[i].Y += uy[i]
		ff[i].Z += uz[i]
	}
	if cl.Mixed > 0 {
		pe += lj.clusterMixedPass(s, cl, f)
	}
	return pe
}
