package forces

import (
	"math"

	"mw/internal/atom"
	"mw/internal/vec"
)

// Bonded forces are the most floating-point-intensive interactions in
// Molecular Workbench, touching up to four atoms per term through indirect
// indexing into the atom array (paper §II-B). Forces are computed in bond
// list order; parallel workers take disjoint ranges of the bond list (not of
// the atom array), since a single atom may appear in many bonds.

// AccumulateBondsRange adds harmonic stretch forces for bonds[lo:hi] into f
// and returns their potential energy: V = ½ K (r - R0)².
//
//mw:hotpath
func AccumulateBondsRange(s *atom.System, bonds []atom.Bond, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	box := s.Box
	for b := lo; b < hi; b++ {
		bd := bonds[b]
		d := box.MinImage(s.Pos[bd.J].Sub(s.Pos[bd.I]))
		r := d.Norm()
		if r == 0 {
			continue
		}
		dr := r - bd.R0
		pe += 0.5 * bd.K * dr * dr
		// F_I = +K (r - R0) d̂ pulls I toward J when stretched.
		fs := bd.K * dr / r
		f[bd.I] = f[bd.I].AddScaled(fs, d)
		f[bd.J] = f[bd.J].AddScaled(-fs, d)
	}
	return pe
}

// AccumulateAnglesRange adds harmonic angle-bend forces for angles[lo:hi]
// into f and returns their potential energy: V = ½ K (θ - θ0)², with θ the
// angle at vertex J of the triplet I-J-K.
//
//mw:hotpath
func AccumulateAnglesRange(s *atom.System, angles []atom.Angle, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	box := s.Box
	for a := lo; a < hi; a++ {
		an := angles[a]
		u := box.MinImage(s.Pos[an.I].Sub(s.Pos[an.J]))
		v := box.MinImage(s.Pos[an.K].Sub(s.Pos[an.J]))
		lu, lv := u.Norm(), v.Norm()
		if lu == 0 || lv == 0 {
			continue
		}
		cosT := u.Dot(v) / (lu * lv)
		if cosT > 1 {
			cosT = 1
		} else if cosT < -1 {
			cosT = -1
		}
		theta := math.Acos(cosT)
		dT := theta - an.Theta0
		pe += 0.5 * an.KTheta * dT * dT

		sinT := math.Sqrt(1 - cosT*cosT)
		if sinT < 1e-8 {
			continue // collinear: torque direction undefined, zero force
		}
		// dθ/dr_I = -1/sinθ · d cosθ/dr_I, with
		// d cosθ/dr_I = v/(|u||v|) - cosθ·u/|u|², so
		// F_I = -dV/dθ · dθ/dr_I = +K(θ-θ0)/sinθ · d cosθ/dr_I.
		coef := an.KTheta * dT / sinT
		dcosI := v.Scale(1 / (lu * lv)).Sub(u.Scale(cosT / (lu * lu)))
		dcosK := u.Scale(1 / (lu * lv)).Sub(v.Scale(cosT / (lv * lv)))
		fI := dcosI.Scale(coef)
		fK := dcosK.Scale(coef)
		f[an.I] = f[an.I].Add(fI)
		f[an.K] = f[an.K].Add(fK)
		f[an.J] = f[an.J].Sub(fI).Sub(fK)
	}
	return pe
}

// AccumulateTorsionsRange adds cosine torsion forces for torsions[lo:hi]
// into f and returns their potential energy:
// V = ½ V0 (1 - cos(N(φ - φ0))) over the dihedral φ of the chain I-J-K-L.
// The gradient follows the standard formulation (Allen & Tildesley; see the
// numerical-gradient tests).
//
//mw:hotpath
func AccumulateTorsionsRange(s *atom.System, torsions []atom.Torsion, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	box := s.Box
	for t := lo; t < hi; t++ {
		to := torsions[t]
		b1 := box.MinImage(s.Pos[to.J].Sub(s.Pos[to.I]))
		b2 := box.MinImage(s.Pos[to.K].Sub(s.Pos[to.J]))
		b3 := box.MinImage(s.Pos[to.L].Sub(s.Pos[to.K]))

		m := b1.Cross(b2)
		n := b2.Cross(b3)
		m2, n2 := m.Norm2(), n.Norm2()
		lb2 := b2.Norm()
		if m2 < 1e-16 || n2 < 1e-16 || lb2 == 0 {
			continue // degenerate (collinear) chain
		}
		// Signed dihedral: φ = atan2((m×n)·b̂2, m·n).
		phi := math.Atan2(m.Cross(n).Dot(b2)/lb2, m.Dot(n))

		nf := float64(to.N)
		arg := nf * (phi - to.Phi0)
		pe += 0.5 * to.V0 * (1 - math.Cos(arg))
		dVdPhi := 0.5 * to.V0 * nf * math.Sin(arg)

		// dφ/dr derivatives.
		dI := m.Scale(-lb2 / m2)
		dL := n.Scale(lb2 / n2)
		s12 := b1.Dot(b2) / (lb2 * lb2)
		s32 := b3.Dot(b2) / (lb2 * lb2)
		dJ := dI.Scale(-1-s12).AddScaled(s32, dL)
		dK := dI.Scale(s12).AddScaled(-1-s32, dL)

		f[to.I] = f[to.I].AddScaled(-dVdPhi, dI)
		f[to.J] = f[to.J].AddScaled(-dVdPhi, dJ)
		f[to.K] = f[to.K].AddScaled(-dVdPhi, dK)
		f[to.L] = f[to.L].AddScaled(-dVdPhi, dL)
	}
	return pe
}

// AccumulateMorseRange adds Morse bond forces for morses[lo:hi] into f and
// returns their potential energy: V = D·(1 − e^{−A(r−R0)})².
//
//mw:hotpath
func AccumulateMorseRange(s *atom.System, morses []atom.Morse, lo, hi int, f []vec.Vec3) float64 {
	var pe float64
	box := s.Box
	for b := lo; b < hi; b++ {
		mo := morses[b]
		d := box.MinImage(s.Pos[mo.J].Sub(s.Pos[mo.I]))
		r := d.Norm()
		if r == 0 {
			continue
		}
		e := math.Exp(-mo.A * (r - mo.R0))
		om := 1 - e
		pe += mo.D * om * om
		// dV/dr = 2·D·A·(1−e)·e; F_I = +dV/dr·d̂ pulls I toward J when
		// stretched (r > R0 ⇒ e < 1 ⇒ dV/dr > 0).
		fs := 2 * mo.D * mo.A * om * e / r
		f[mo.I] = f[mo.I].AddScaled(fs, d)
		f[mo.J] = f[mo.J].AddScaled(-fs, d)
	}
	return pe
}

// AngleValue returns the current angle (radians) of the triplet, or 0 for a
// degenerate geometry — used to parameterize Theta0 from built structures.
func AngleValue(s *atom.System, a atom.Angle) float64 {
	u := s.Box.MinImage(s.Pos[a.I].Sub(s.Pos[a.J]))
	v := s.Box.MinImage(s.Pos[a.K].Sub(s.Pos[a.J]))
	if u.Norm() == 0 || v.Norm() == 0 {
		return 0
	}
	return u.Angle(v)
}

// DihedralValue returns the current signed dihedral (radians) of the chain,
// or 0 for a degenerate (collinear) geometry.
func DihedralValue(s *atom.System, to atom.Torsion) float64 {
	b1 := s.Box.MinImage(s.Pos[to.J].Sub(s.Pos[to.I]))
	b2 := s.Box.MinImage(s.Pos[to.K].Sub(s.Pos[to.J]))
	b3 := s.Box.MinImage(s.Pos[to.L].Sub(s.Pos[to.K]))
	m := b1.Cross(b2)
	n := b2.Cross(b3)
	lb2 := b2.Norm()
	if m.Norm2() < 1e-16 || n.Norm2() < 1e-16 || lb2 == 0 {
		return 0
	}
	return math.Atan2(m.Cross(n).Dot(b2)/lb2, m.Dot(n))
}

// AccumulateBonded adds all bonded terms of the system into f and returns
// the bonded potential energy.
func AccumulateBonded(s *atom.System, f []vec.Vec3) float64 {
	pe := AccumulateBondsRange(s, s.Bonds, 0, len(s.Bonds), f)
	pe += AccumulateAnglesRange(s, s.Angles, 0, len(s.Angles), f)
	pe += AccumulateTorsionsRange(s, s.Torsions, 0, len(s.Torsions), f)
	pe += AccumulateMorseRange(s, s.Morses, 0, len(s.Morses), f)
	return pe
}

// BondedEnergy returns the total bonded potential energy without touching
// forces (used by tests for numerical differentiation).
func BondedEnergy(s *atom.System) float64 {
	scratch := make([]vec.Vec3, s.N())
	return AccumulateBonded(s, scratch)
}
