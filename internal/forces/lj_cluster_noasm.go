//go:build !amd64

package forces

import (
	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/vec"
)

// HaveClusterSIMD is false off amd64: there is no packed cluster kernel, so
// the engine's cluster rung tops out at AccumulateClusterListFast.
const HaveClusterSIMD = false

// AccumulateClusterListSIMD falls back to the fast scalar cluster variant
// on platforms without the packed kernel, keeping call sites portable.
func (lj *LJ) AccumulateClusterListSIMD(s *atom.System, cc *cells.ClusterCoords, cl *cells.ClusterList, scr *ClusterScratch, f []vec.Vec3) float64 {
	_, _ = cc, scr
	return lj.AccumulateClusterListFast(s, cl, f)
}
