package forces

import (
	"math"
	"math/bits"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/vec"
)

// ClusterScratch is the per-chunk SoA force scratch of the packed cluster
// kernel (AccumulateClusterListSIMD). Workers reuse it across steps; the
// zero/fold cost is bounded by the chunk's dirty window [CiLo, MaxCJ].
type ClusterScratch struct {
	fx, fy, fz []float64
}

// AccumulateClusterList adds LJ forces for every masked pair of a cluster
// list into f and returns their potential energy. This is the reference
// cluster variant: the per-pair arithmetic is exactly the expression
// sequence of AccumulateRange (min-image, σ²/r² powers, two divisions), so
// any force difference against the half-list ladder comes from summation
// order alone, and the bit-unpacking loop visits pairs in a fixed order, so
// the result is bitwise-deterministic for a given list.
//
// Exclusions and fixed-fixed pairs are already masked out of the list at
// build time (cells.BuildClusterRange); the only runtime pair checks are
// the cutoff and the degenerate r² = 0 guard, same as the list kernels.
//
//mw:hotpath
func (lj *LJ) AccumulateClusterList(s *atom.System, cl *cells.ClusterList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	box := s.Box
	n := len(f)
	pos, elem := s.Pos[:n], s.Elem[:n]
	sig2 := lj.sigma2
	m := len(sig2)
	epsT, shiftT := lj.eps[:m], lj.shift[:m]
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		i0 := ci * cells.ClusterSize
		for _, e := range cl.EntriesOf(ci) {
			j0 := int(e.CJ) * cells.ClusterSize
			for mk := e.Mask; mk != 0; mk &= mk - 1 {
				t := uint(bits.TrailingZeros16(mk))
				i := i0 + int((t>>2)&3)
				jj := j0 + int(t&3)
				if uint(i) >= uint(n) || uint(jj) >= uint(n) {
					continue // corrupt mask bit; valid lists never hit this
				}
				d := box.MinImage(pos[jj].Sub(pos[i]))
				r2 := d.Norm2()
				if r2 >= c2 || r2 == 0 {
					continue
				}
				k := int(elem[i])*lj.nelem + int(elem[jj])
				if uint(k) >= uint(m) {
					continue // element id outside the pair table
				}
				sr2 := sig2[k] / r2
				sr6 := sr2 * sr2 * sr2
				sr12 := sr6 * sr6
				eps := epsT[k]
				pe += 4*eps*(sr12-sr6) - shiftT[k]
				fs := 24 * eps * (2*sr12 - sr6) / r2
				f[i] = f[i].AddScaled(-fs, d)
				f[jj] = f[jj].AddScaled(fs, d)
			}
		}
	}
	return pe
}

// AccumulateClusterListFast is the opt-in fast cluster variant: A/B-form
// algebra (one division per pair instead of two), FMA contractions, and
// MxN-local accumulators that keep the four i-rows and four j-lanes of an
// entry in registers. Results differ from the reference variant at the
// rounding level (≲1e-13 relative), which is why the engine selects it only
// under Cfg.Reorder — the same opt-in that admits AccumulateRangeListFast.
//
//mw:hotpath
func (lj *LJ) AccumulateClusterListFast(s *atom.System, cl *cells.ClusterList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	periodic := s.Box.Periodic
	lx, ly, lz := s.Box.L.X, s.Box.L.Y, s.Box.L.Z
	n := len(f)
	pos, elem := s.Pos[:n], s.Elem[:n]
	aT := lj.cA
	m := len(aT)
	bT, a12T, b6T, shiftT := lj.cB[:m], lj.cA12[:m], lj.cB6[:m], lj.shift[:m]
	nelem := lj.nelem
	var xi, yi, zi, fix, fiy, fiz [cells.ClusterSize]float64
	var fjx, fjy, fjz [cells.ClusterSize]float64
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		i0 := ci * cells.ClusterSize
		if uint(i0) >= uint(n) {
			break
		}
		// Row slices give the bounds-check prover a local length to reason
		// from: rows ≤ len(rowPos) and rows ≤ len(rowF) by construction, so
		// the gather and the i write-back below are check-free.
		rowPos, rowF := pos[i0:], f[i0:n]
		rows := len(rowPos)
		if rows > cells.ClusterSize {
			rows = cells.ClusterSize
		}
		if rows > len(rowF) {
			rows = len(rowF)
		}
		for a := 0; a < rows; a++ {
			p := rowPos[a]
			xi[a], yi[a], zi[a] = p.X, p.Y, p.Z
			fix[a], fiy[a], fiz[a] = 0, 0, 0
		}
		for _, e := range cl.EntriesOf(ci) {
			j0 := int(e.CJ) * cells.ClusterSize
			fjx[0], fjx[1], fjx[2], fjx[3] = 0, 0, 0, 0
			fjy[0], fjy[1], fjy[2], fjy[3] = 0, 0, 0, 0
			fjz[0], fjz[1], fjz[2], fjz[3] = 0, 0, 0, 0
			for mk := e.Mask; mk != 0; mk &= mk - 1 {
				t := uint(bits.TrailingZeros16(mk))
				a := (t >> 2) & 3
				b := t & 3
				jj := j0 + int(b)
				if uint(jj) >= uint(n) {
					continue
				}
				pj := pos[jj]
				dx := pj.X - xi[a]
				dy := pj.Y - yi[a]
				dz := pj.Z - zi[a]
				if periodic {
					dx -= lx * math.Round(dx/lx)
					dy -= ly * math.Round(dy/ly)
					dz -= lz * math.Round(dz/lz)
				}
				r2 := math.FMA(dx, dx, math.FMA(dy, dy, dz*dz))
				if r2 >= c2 || r2 == 0 {
					continue
				}
				ii := i0 + int(a)
				if uint(ii) >= uint(n) {
					continue
				}
				k := int(elem[ii])*nelem + int(elem[jj])
				if uint(k) >= uint(m) {
					continue
				}
				inv := 1 / r2
				u := inv * inv * inv
				pe += math.FMA(u, math.FMA(aT[k], u, -bT[k]), -shiftT[k])
				fs := math.FMA(a12T[k], u, -b6T[k]) * u * inv
				fix[a] = math.FMA(-fs, dx, fix[a])
				fiy[a] = math.FMA(-fs, dy, fiy[a])
				fiz[a] = math.FMA(-fs, dz, fiz[a])
				fjx[b] = math.FMA(fs, dx, fjx[b])
				fjy[b] = math.FMA(fs, dy, fjy[b])
				fjz[b] = math.FMA(fs, dz, fjz[b])
			}
			jhi := j0 + cells.ClusterSize
			if jhi > n {
				jhi = n
			}
			if j0 < 0 || j0 > jhi {
				continue
			}
			fj := f[j0:jhi]
			for b := range fj {
				// b&3 indexes the length-4 lane arrays check-free.
				fj[b].X += fjx[b&3]
				fj[b].Y += fjy[b&3]
				fj[b].Z += fjz[b&3]
			}
		}
		for a := 0; a < rows; a++ {
			rowF[a].X += fix[a]
			rowF[a].Y += fiy[a]
			rowF[a].Z += fiz[a]
		}
	}
	return pe
}

// clusterMixedPass recomputes the pairs of mixed-element entries (K equal
// to the sentinel cells.MixedK row) with the fast variant's scalar algebra,
// adding straight into f. The SIMD kernel routes those entries through its
// all-zero parameter row, so this pass is the only source of their
// contribution.
//
//mw:hotpath
func (lj *LJ) clusterMixedPass(s *atom.System, cl *cells.ClusterList, f []vec.Vec3) float64 {
	var pe float64
	c2 := lj.Cutoff * lj.Cutoff
	n := len(f)
	pos, elem := s.Pos[:n], s.Elem[:n]
	aT := lj.cA
	m := len(aT)
	bT, a12T, b6T, shiftT := lj.cB[:m], lj.cA12[:m], lj.cB6[:m], lj.shift[:m]
	nelem := lj.nelem
	mixed := cells.MixedK(nelem)
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		i0 := ci * cells.ClusterSize
		for _, e := range cl.EntriesOf(ci) {
			if e.K != mixed {
				continue
			}
			j0 := int(e.CJ) * cells.ClusterSize
			for mk := e.Mask; mk != 0; mk &= mk - 1 {
				t := uint(bits.TrailingZeros16(mk))
				ii := i0 + int((t>>2)&3)
				jj := j0 + int(t&3)
				if uint(ii) >= uint(n) || uint(jj) >= uint(n) {
					continue
				}
				pj := pos[jj]
				pi := pos[ii]
				dx := pj.X - pi.X
				dy := pj.Y - pi.Y
				dz := pj.Z - pi.Z
				r2 := math.FMA(dx, dx, math.FMA(dy, dy, dz*dz))
				if r2 >= c2 || r2 == 0 {
					continue
				}
				k := int(elem[ii])*nelem + int(elem[jj])
				if uint(k) >= uint(m) {
					continue
				}
				inv := 1 / r2
				u := inv * inv * inv
				pe += math.FMA(u, math.FMA(aT[k], u, -bT[k]), -shiftT[k])
				fs := math.FMA(a12T[k], u, -b6T[k]) * u * inv
				f[ii].X = math.FMA(-fs, dx, f[ii].X)
				f[ii].Y = math.FMA(-fs, dy, f[ii].Y)
				f[ii].Z = math.FMA(-fs, dz, f[ii].Z)
				f[jj].X = math.FMA(fs, dx, f[jj].X)
				f[jj].Y = math.FMA(fs, dy, f[jj].Y)
				f[jj].Z = math.FMA(fs, dz, f[jj].Z)
			}
		}
	}
	return pe
}
