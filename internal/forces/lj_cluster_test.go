package forces_test

import (
	"math"
	"sort"
	"testing"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/forces"
	"mw/internal/vec"
	"mw/internal/workload"
)

// clusterFixture builds a full-range cluster list plus the half-list
// RangeList reference over the same grid.
type clusterFixture struct {
	s   *atom.System
	lj  *forces.LJ
	cl  cells.ClusterList
	rl  cells.RangeList
	cc  cells.ClusterCoords
	rng float64
}

func newClusterFixture(t *testing.T, s *atom.System, cutoff, skin float64) *clusterFixture {
	t.Helper()
	fx := &clusterFixture{s: s, rng: cutoff + skin}
	fx.lj = forces.NewLJ(s.Elements, cutoff)
	g := cells.NewGrid(s.Box, fx.rng)
	g.Assign(s)
	g.BuildClusterRange(s, fx.rng, 0, s.N(), &fx.cl)
	g.BuildRange(s, fx.rng, 0, s.N(), &fx.rl)
	fx.cc.Pack(s)
	return fx
}

// maxForceDev returns the worst component-wise deviation, treating any
// non-finite value as infinitely bad: a NaN-poisoned force array must fail
// the comparison, not sail through because NaN compares false.
func maxForceDev(a, b []vec.Vec3) float64 {
	var worst float64
	for i := range a {
		if !a[i].IsFinite() || !b[i].IsFinite() {
			return math.Inf(1)
		}
		if d := a[i].Sub(b[i]).MaxAbs(); d > worst {
			worst = d
		}
	}
	return worst
}

func relDev(a, b float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
		return math.Inf(1)
	}
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

func clusterWorkloads(t *testing.T) map[string]*atom.System {
	t.Helper()
	reorder := func(b *workload.Benchmark) *atom.System {
		// Morton-order like the engine does under Reorder, so cluster
		// occupancy resembles production.
		g := cells.NewGrid(b.Sys.Box, b.Cfg.LJCutoff+b.Cfg.Skin)
		ranks := g.MortonRanks()
		s := b.Sys
		order := make([]int32, s.N())
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return ranks[g.CellIndexOf(s.Pos[order[a]])] < ranks[g.CellIndexOf(s.Pos[order[b]])]
		})
		var r atom.Reorderer
		if err := r.Apply(s, order); err != nil {
			t.Fatalf("reorder: %v", err)
		}
		return s
	}
	return map[string]*atom.System{
		"al1000":        workload.Al1000().Sys,
		"al1000-morton": reorder(workload.Al1000()),
		"salt":          workload.Salt().Sys,
		"nanocar":       workload.Nanocar().Sys,
		"ljgas-pbc":     workload.LJGas(4, 120, true).Sys,
	}
}

// TestClusterReferenceMatchesHalfList is the cluster-vs-half-list
// differential: the reference cluster kernel repeats the half-list kernel's
// per-pair arithmetic, so forces agree to summation-order noise (≤1e-12)
// on every workload family, including multi-element and periodic ones.
func TestClusterReferenceMatchesHalfList(t *testing.T) {
	for name, s := range clusterWorkloads(t) {
		fx := newClusterFixture(t, s, 8, 0.8)
		n := s.N()
		fRef := make([]vec.Vec3, n)
		fCl := make([]vec.Vec3, n)
		peRef := fx.lj.AccumulateRangeList(s, &fx.rl, fRef)
		peCl := fx.lj.AccumulateClusterList(s, &fx.cl, fCl)
		if d := maxForceDev(fRef, fCl); d > 1e-12 {
			t.Errorf("%s: max force deviation %.3e > 1e-12", name, d)
		}
		if d := relDev(peRef, peCl); d > 1e-12 {
			t.Errorf("%s: pe deviation %.3e (ref %.12g cluster %.12g)", name, d, peRef, peCl)
		}
	}
}

// TestClusterReferenceBitwiseDeterministic: same list, same bits — the
// reference variant's fixed mask-unpacking order makes reruns exact.
func TestClusterReferenceBitwiseDeterministic(t *testing.T) {
	s := workload.Al1000().Sys
	fx := newClusterFixture(t, s, 8, 0.8)
	n := s.N()
	f1 := make([]vec.Vec3, n)
	f2 := make([]vec.Vec3, n)
	pe1 := fx.lj.AccumulateClusterList(s, &fx.cl, f1)
	pe2 := fx.lj.AccumulateClusterList(s, &fx.cl, f2)
	if pe1 != pe2 {
		t.Fatalf("pe not bitwise stable: %x vs %x", math.Float64bits(pe1), math.Float64bits(pe2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("force %d not bitwise stable", i)
		}
	}
}

// TestClusterFastMatchesReference bounds the rounding drift of the A/B-form
// fast variant against the reference variant.
func TestClusterFastMatchesReference(t *testing.T) {
	for name, s := range clusterWorkloads(t) {
		fx := newClusterFixture(t, s, 8, 0.8)
		n := s.N()
		fRef := make([]vec.Vec3, n)
		fFast := make([]vec.Vec3, n)
		peRef := fx.lj.AccumulateClusterList(s, &fx.cl, fRef)
		peFast := fx.lj.AccumulateClusterListFast(s, &fx.cl, fFast)
		if d := maxForceDev(fRef, fFast); d > 1e-10 {
			t.Errorf("%s: max force deviation %.3e > 1e-10", name, d)
		}
		if d := relDev(peRef, peFast); d > 1e-10 {
			t.Errorf("%s: pe deviation %.3e", name, d)
		}
	}
}

// TestClusterSIMDMatchesFast checks the packed kernel (where available)
// against the fast variant on non-periodic workloads, including salt whose
// alternating Na/Cl lattice routes most entries through the mixed-element
// scalar pass.
func TestClusterSIMDMatchesFast(t *testing.T) {
	if !forces.HaveClusterSIMD {
		t.Skip("no packed cluster kernel on this CPU")
	}
	for name, s := range clusterWorkloads(t) {
		if s.Box.Periodic {
			continue // the packed kernel is non-periodic only
		}
		fx := newClusterFixture(t, s, 8, 0.8)
		n := s.N()
		fFast := make([]vec.Vec3, n)
		fSIMD := make([]vec.Vec3, n)
		peFast := fx.lj.AccumulateClusterListFast(s, &fx.cl, fFast)
		var scr forces.ClusterScratch
		peSIMD := fx.lj.AccumulateClusterListSIMD(s, &fx.cc, &fx.cl, &scr, fSIMD)
		if d := maxForceDev(fFast, fSIMD); d > 1e-10 {
			t.Errorf("%s: max force deviation %.3e > 1e-10", name, d)
		}
		if d := relDev(peFast, peSIMD); d > 1e-10 {
			t.Errorf("%s: pe deviation %.3e (fast %.12g simd %.12g)", name, d, peFast, peSIMD)
		}
	}
}

// TestClusterSIMDChunked runs the packed kernel over several chunk-local
// lists and checks the folded result equals the single full-range run.
func TestClusterSIMDChunked(t *testing.T) {
	if !forces.HaveClusterSIMD {
		t.Skip("no packed cluster kernel on this CPU")
	}
	s := workload.Al1000().Sys
	rng := 8.8
	lj := forces.NewLJ(s.Elements, 8)
	g := cells.NewGrid(s.Box, rng)
	g.Assign(s)
	var cc cells.ClusterCoords
	cc.Pack(s)

	var full cells.ClusterList
	g.BuildClusterRange(s, rng, 0, s.N(), &full)
	fFull := make([]vec.Vec3, s.N())
	var scr forces.ClusterScratch
	peFull := lj.AccumulateClusterListSIMD(s, &cc, &full, &scr, fFull)

	cuts := []int{0, 251, 252, 600, s.N()}
	fSum := make([]vec.Vec3, s.N())
	var peSum float64
	for c := 0; c+1 < len(cuts); c++ {
		var cl cells.ClusterList
		g.BuildClusterRange(s, rng, cuts[c], cuts[c+1], &cl)
		var scrC forces.ClusterScratch
		peSum += lj.AccumulateClusterListSIMD(s, &cc, &cl, &scrC, fSum)
	}
	if d := maxForceDev(fFull, fSum); d > 1e-10 {
		t.Errorf("chunked max force deviation %.3e", d)
	}
	if d := relDev(peFull, peSum); d > 1e-10 {
		t.Errorf("chunked pe deviation %.3e", d)
	}
}

// metamorphic exactness checks: a system whose only in-range pair is
// masked out (excluded, or fixed-fixed) must produce exactly zero energy
// and forces, and a single live pair must be bitwise-equal to the
// half-list kernel (one pair ⇒ no summation-order freedom).
func TestClusterMaskedPairsExact(t *testing.T) {
	mk := func(fixed bool, bonded bool) *atom.System {
		s := atom.NewSystem(atom.CubicBox(40, false))
		s.AddAtom(atom.Ar, vec.New(10, 10, 10), vec.Zero, 0, fixed)
		s.AddAtom(atom.Ar, vec.New(13, 10, 10), vec.Zero, 0, fixed)
		if bonded {
			s.Bonds = append(s.Bonds, atom.Bond{I: 0, J: 1})
			s.BuildExclusions()
		}
		return s
	}

	t.Run("live pair bitwise vs half-list", func(t *testing.T) {
		s := mk(false, false)
		fx := newClusterFixture(t, s, 8, 0.8)
		fRef := make([]vec.Vec3, 2)
		fCl := make([]vec.Vec3, 2)
		peRef := fx.lj.AccumulateRangeList(s, &fx.rl, fRef)
		peCl := fx.lj.AccumulateClusterList(s, &fx.cl, fCl)
		if peRef != peCl || fRef[0] != fCl[0] || fRef[1] != fCl[1] {
			t.Fatalf("single pair not bitwise equal: pe %x vs %x", math.Float64bits(peRef), math.Float64bits(peCl))
		}
		if peCl == 0 {
			t.Fatal("expected nonzero pair energy")
		}
	})
	t.Run("excluded pair exactly zero", func(t *testing.T) {
		s := mk(false, true)
		fx := newClusterFixture(t, s, 8, 0.8)
		for _, run := range []func([]vec.Vec3) float64{
			func(f []vec.Vec3) float64 { return fx.lj.AccumulateClusterList(s, &fx.cl, f) },
			func(f []vec.Vec3) float64 { return fx.lj.AccumulateClusterListFast(s, &fx.cl, f) },
		} {
			f := make([]vec.Vec3, 2)
			if pe := run(f); pe != 0 || f[0] != (vec.Vec3{}) || f[1] != (vec.Vec3{}) {
				t.Fatal("excluded pair leaked force or energy")
			}
		}
	})
	t.Run("fixed-fixed pair exactly zero", func(t *testing.T) {
		s := mk(true, false)
		fx := newClusterFixture(t, s, 8, 0.8)
		f := make([]vec.Vec3, 2)
		if pe := fx.lj.AccumulateClusterList(s, &fx.cl, f); pe != 0 || f[0] != (vec.Vec3{}) || f[1] != (vec.Vec3{}) {
			t.Fatal("fixed-fixed pair leaked force or energy")
		}
	})
}
