// Package atom defines the simulation state of the molecular dynamics
// engine: elements, the periodic simulation box, bonded topology (radial,
// angular, torsional bonds — the paper's "up to four atoms" bond forces),
// and the structure-of-arrays System holding positions, velocities,
// accelerations, forces, masses and charges.
package atom

import "math"

// Element describes a chemical species with its Lennard-Jones parameters.
// Sigma is in Å, Epsilon in eV, Mass in amu. Molecular Workbench carries
// per-element LJ parameters and combines them with Lorentz-Berthelot rules.
type Element struct {
	Symbol  string
	Mass    float64 // amu
	Sigma   float64 // Å
	Epsilon float64 // eV
}

// Builtin element identifiers. These are the species used by the paper's
// three benchmarks (salt: Na/Cl; nanocar: C/H/Au; Al-1000: Al/Au) plus argon
// for the quickstart example.
const (
	Ar = iota
	Na
	Cl
	Al
	Au
	C
	H
	O
	NumBuiltin
)

// Builtin is the built-in element table. LJ parameters are standard
// literature values converted to eV/Å (UFF-like magnitudes; MW uses values
// of the same order).
var Builtin = [NumBuiltin]Element{
	Ar: {Symbol: "Ar", Mass: 39.948, Sigma: 3.405, Epsilon: 0.0104},
	Na: {Symbol: "Na", Mass: 22.990, Sigma: 2.350, Epsilon: 0.00130},
	Cl: {Symbol: "Cl", Mass: 35.453, Sigma: 4.400, Epsilon: 0.00970},
	Al: {Symbol: "Al", Mass: 26.982, Sigma: 2.620, Epsilon: 0.1700},
	Au: {Symbol: "Au", Mass: 196.97, Sigma: 2.630, Epsilon: 0.2290},
	C:  {Symbol: "C", Mass: 12.011, Sigma: 3.400, Epsilon: 0.00456},
	H:  {Symbol: "H", Mass: 1.008, Sigma: 2.650, Epsilon: 0.00190},
	O:  {Symbol: "O", Mass: 15.999, Sigma: 3.120, Epsilon: 0.00260},
}

// MixLJ returns the Lorentz-Berthelot combined LJ parameters for a pair of
// elements: arithmetic-mean sigma, geometric-mean epsilon.
func MixLJ(a, b Element) (sigma, epsilon float64) {
	sigma = 0.5 * (a.Sigma + b.Sigma)
	epsilon = math.Sqrt(a.Epsilon * b.Epsilon)
	return sigma, epsilon
}
