package atom

import (
	"testing"

	"mw/internal/vec"
)

func chainSystem(n int) *System {
	s := NewSystem(CubicBox(50, false))
	for i := 0; i < n; i++ {
		s.AddAtom(C, vec.New(5+1.5*float64(i), 25, 25), vec.Zero, 0, false)
	}
	return s
}

func TestExclusionsFromBonds(t *testing.T) {
	s := chainSystem(4)
	s.Bonds = []Bond{{I: 0, J: 1}, {I: 1, J: 2}}
	s.BuildExclusions()
	if !s.Excl.Excluded(0, 1) || !s.Excl.Excluded(1, 2) {
		t.Error("bonded pairs not excluded")
	}
	if !s.Excl.Excluded(1, 0) {
		t.Error("exclusion not symmetric")
	}
	if s.Excl.Excluded(0, 2) {
		t.Error("1-3 pair excluded without an angle term")
	}
	if s.Excl.Excluded(0, 3) {
		t.Error("unrelated pair excluded")
	}
	if s.Excl.Len() != 2 {
		t.Errorf("Len = %d", s.Excl.Len())
	}
}

func TestExclusionsFromAnglesAndTorsions(t *testing.T) {
	s := chainSystem(5)
	s.Angles = []Angle{{I: 0, J: 1, K: 2}}
	s.Torsions = []Torsion{{I: 1, J: 2, K: 3, L: 4}}
	s.BuildExclusions()
	// Angle excludes all three pairs of its triplet.
	for _, p := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if !s.Excl.Excluded(p[0], p[1]) {
			t.Errorf("angle pair %v not excluded", p)
		}
	}
	// Torsion excludes only its 1-4 ends.
	if !s.Excl.Excluded(1, 4) {
		t.Error("torsion 1-4 pair not excluded")
	}
	if s.Excl.Excluded(2, 4) || s.Excl.Excluded(3, 4) == false {
		// 3-4 is not excluded by the torsion itself (no bond terms here).
		if s.Excl.Excluded(3, 4) {
			t.Error("torsion excluded a non-1-4 pair")
		}
	}
}

func TestExclusionsDeduplicate(t *testing.T) {
	s := chainSystem(3)
	s.Bonds = []Bond{{I: 0, J: 1}, {I: 1, J: 0}} // duplicate in both orders
	s.Angles = []Angle{{I: 0, J: 1, K: 2}}       // re-adds 0-1
	s.BuildExclusions()
	if s.Excl.Len() != 3 { // 0-1, 1-2, 0-2
		t.Errorf("Len = %d, want 3", s.Excl.Len())
	}
}

func TestExclusionsNilSafe(t *testing.T) {
	var e *ExclusionSet
	if e.Excluded(0, 1) {
		t.Error("nil set excluded a pair")
	}
	if e.Len() != 0 {
		t.Error("nil set non-empty")
	}
}

func TestExclusionsSelfPairIgnored(t *testing.T) {
	s := chainSystem(2)
	s.Angles = []Angle{{I: 0, J: 0, K: 1}} // degenerate vertex
	s.BuildExclusions()
	if s.Excl.Excluded(0, 0) {
		t.Error("self pair excluded")
	}
}

func TestExclusionsLargeFanout(t *testing.T) {
	// A star topology: atom 0 bonded to many others; CSR segments must stay
	// sorted for the early-exit scan.
	s := NewSystem(CubicBox(100, false))
	for i := 0; i < 50; i++ {
		s.AddAtom(C, vec.New(float64(i)+1, 50, 50), vec.Zero, 0, false)
	}
	for j := int32(49); j >= 1; j-- { // insert in reverse to stress sorting
		s.Bonds = append(s.Bonds, Bond{I: 0, J: j})
	}
	s.BuildExclusions()
	for j := int32(1); j < 50; j++ {
		if !s.Excl.Excluded(0, j) {
			t.Fatalf("pair 0-%d not excluded", j)
		}
	}
	if s.Excl.Excluded(1, 2) {
		t.Error("non-bonded leaf pair excluded")
	}
}
