package atom

import (
	"fmt"
	"math"
	"math/rand"

	"mw/internal/units"
	"mw/internal/vec"
)

// System holds the full state of a simulation in structure-of-arrays form.
// The Java Molecular Workbench stores an array of Atom objects (an
// array-of-structures on a garbage-collected heap); the paper's §V shows
// that this layout, whose addresses the programmer cannot control, was
// central to the memory-subsystem problems. The Go engine uses SoA slices
// for the native fast path; the Java-like scattered layout is reproduced by
// internal/jheap for the locality experiments.
type System struct {
	Box Box

	Pos   []vec.Vec3 // positions, Å
	Vel   []vec.Vec3 // velocities, Å/fs
	Acc   []vec.Vec3 // accelerations, Å/fs²
	Force []vec.Vec3 // forces, eV/Å

	Mass    []float64 // amu
	InvMass []float64 // 1/amu, 0 for fixed atoms
	Charge  []float64 // elementary charges
	Elem    []int16   // index into Elements
	Fixed   []bool    // immovable atoms (e.g. the nanocar's gold platform)

	Elements []Element

	Bonds    []Bond
	Angles   []Angle
	Torsions []Torsion
	Morses   []Morse

	// Excl holds the non-bonded exclusion pairs derived from the topology;
	// nil means no exclusions. Built by BuildExclusions.
	Excl *ExclusionSet
}

// NewSystem returns an empty system with the given box using the built-in
// element table.
func NewSystem(box Box) *System {
	return &System{Box: box, Elements: Builtin[:]}
}

// N returns the number of atoms.
//
//mw:hotpath
func (s *System) N() int { return len(s.Pos) }

// AddAtom appends an atom of the given element at position p with velocity v
// and returns its index. Fixed atoms participate in force computations on
// others but never move (their InvMass is zero).
func (s *System) AddAtom(elem int16, p, v vec.Vec3, charge float64, fixed bool) int {
	e := s.Elements[elem]
	s.Pos = append(s.Pos, p)
	s.Vel = append(s.Vel, v)
	s.Acc = append(s.Acc, vec.Zero)
	s.Force = append(s.Force, vec.Zero)
	s.Mass = append(s.Mass, e.Mass)
	inv := 1 / e.Mass
	if fixed {
		inv = 0
	}
	s.InvMass = append(s.InvMass, inv)
	s.Charge = append(s.Charge, charge)
	s.Elem = append(s.Elem, elem)
	s.Fixed = append(s.Fixed, fixed)
	return len(s.Pos) - 1
}

// Validate checks internal consistency: equal array lengths, bond indices in
// range, atoms inside the box for non-periodic systems.
func (s *System) Validate() error {
	n := s.N()
	if len(s.Vel) != n || len(s.Acc) != n || len(s.Force) != n ||
		len(s.Mass) != n || len(s.InvMass) != n || len(s.Charge) != n ||
		len(s.Elem) != n || len(s.Fixed) != n {
		return fmt.Errorf("atom: inconsistent array lengths (n=%d)", n)
	}
	if mx := MaxAtomIndex(s.Bonds, s.Angles, s.Torsions); int(mx) >= n {
		return fmt.Errorf("atom: bond references atom %d, system has %d", mx, n)
	}
	for i, m := range s.Morses {
		if m.I == m.J || m.I < 0 || m.J < 0 || int(m.I) >= n || int(m.J) >= n {
			return fmt.Errorf("atom: morse %d is degenerate or out of range (%d-%d)", i, m.I, m.J)
		}
	}
	for i, b := range s.Bonds {
		if b.I == b.J || b.I < 0 || b.J < 0 {
			return fmt.Errorf("atom: bond %d is degenerate (%d-%d)", i, b.I, b.J)
		}
	}
	// MaxAtomIndex only bounds the terms from above; negative indices would
	// slip through and index out of range in BuildExclusions.
	for i, a := range s.Angles {
		if a.I < 0 || a.J < 0 || a.K < 0 {
			return fmt.Errorf("atom: angle %d has a negative atom index (%d-%d-%d)", i, a.I, a.J, a.K)
		}
	}
	for i, t := range s.Torsions {
		if t.I < 0 || t.J < 0 || t.K < 0 || t.L < 0 {
			return fmt.Errorf("atom: torsion %d has a negative atom index (%d-%d-%d-%d)", i, t.I, t.J, t.K, t.L)
		}
	}
	for i, p := range s.Pos {
		if !p.IsFinite() {
			return fmt.Errorf("atom: position %d is not finite", i)
		}
		if !s.Box.Periodic && !s.Box.Contains(p) {
			return fmt.Errorf("atom: position %d outside box: %v", i, p)
		}
	}
	return nil
}

// KineticEnergy returns the total kinetic energy in eV. Fixed atoms do not
// contribute.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i := range s.Vel {
		if s.Fixed[i] {
			continue
		}
		ke += units.KineticEnergy(s.Mass[i], s.Vel[i].Norm2())
	}
	return ke
}

// Temperature returns the instantaneous temperature in K computed from the
// kinetic energy of the mobile atoms.
func (s *System) Temperature() float64 {
	return units.TemperatureFromKE(s.KineticEnergy(), 3*s.NumMobile())
}

// NumMobile returns the number of non-fixed atoms.
func (s *System) NumMobile() int {
	n := 0
	for _, f := range s.Fixed {
		if !f {
			n++
		}
	}
	return n
}

// NumCharged returns the number of atoms with a non-zero charge.
func (s *System) NumCharged() int {
	n := 0
	for _, q := range s.Charge {
		if q != 0 {
			n++
		}
	}
	return n
}

// ChargedIndices returns the indices of all charged atoms, in index order.
func (s *System) ChargedIndices() []int32 {
	idx := make([]int32, 0, s.NumCharged())
	for i, q := range s.Charge {
		if q != 0 {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// TotalCharge returns the net charge of the system in elementary charges.
func (s *System) TotalCharge() float64 {
	var q float64
	for _, c := range s.Charge {
		q += c
	}
	return q
}

// Thermalize draws Maxwell-Boltzmann velocities at temperature T for all
// mobile atoms using rng, then removes the center-of-mass drift so that the
// system has no net momentum.
func (s *System) Thermalize(T float64, rng *rand.Rand) {
	for i := range s.Vel {
		if s.Fixed[i] {
			s.Vel[i] = vec.Zero
			continue
		}
		// Per-component sigma: ½ m <vx²> KEFactor = ½ k_B T.
		sd := math.Sqrt(units.Boltzmann * T / (s.Mass[i] * units.KEFactor))
		s.Vel[i] = vec.New(rng.NormFloat64()*sd, rng.NormFloat64()*sd, rng.NormFloat64()*sd)
	}
	s.RemoveDrift()
}

// RemoveDrift subtracts the center-of-mass velocity from every mobile atom.
func (s *System) RemoveDrift() {
	var p vec.Vec3
	var m float64
	for i := range s.Vel {
		if s.Fixed[i] {
			continue
		}
		p = p.AddScaled(s.Mass[i], s.Vel[i])
		m += s.Mass[i]
	}
	if m == 0 {
		return
	}
	v := p.Scale(1 / m)
	for i := range s.Vel {
		if !s.Fixed[i] {
			s.Vel[i] = s.Vel[i].Sub(v)
		}
	}
}

// Momentum returns the total momentum of the mobile atoms (amu·Å/fs).
func (s *System) Momentum() vec.Vec3 {
	var p vec.Vec3
	for i := range s.Vel {
		if s.Fixed[i] {
			continue
		}
		p = p.AddScaled(s.Mass[i], s.Vel[i])
	}
	return p
}

// ZeroForces clears the force array.
func (s *System) ZeroForces() {
	for i := range s.Force {
		s.Force[i] = vec.Zero
	}
}

// Clone returns a deep copy of the system (bond lists are shared: they are
// immutable after construction).
func (s *System) Clone() *System {
	c := &System{
		Box:      s.Box,
		Pos:      append([]vec.Vec3(nil), s.Pos...),
		Vel:      append([]vec.Vec3(nil), s.Vel...),
		Acc:      append([]vec.Vec3(nil), s.Acc...),
		Force:    append([]vec.Vec3(nil), s.Force...),
		Mass:     append([]float64(nil), s.Mass...),
		InvMass:  append([]float64(nil), s.InvMass...),
		Charge:   append([]float64(nil), s.Charge...),
		Elem:     append([]int16(nil), s.Elem...),
		Fixed:    append([]bool(nil), s.Fixed...),
		Elements: s.Elements,
		Bonds:    s.Bonds,
		Angles:   s.Angles,
		Torsions: s.Torsions,
		Morses:   s.Morses,
		Excl:     s.Excl,
	}
	return c
}

// MaxSpeed returns the largest atom speed in Å/fs, used for timestep sanity
// checks and neighbor-skin heuristics.
func (s *System) MaxSpeed() float64 {
	var mx float64
	for _, v := range s.Vel {
		if n := v.Norm2(); n > mx {
			mx = n
		}
	}
	return math.Sqrt(mx)
}
