package atom

import (
	"math/rand"
	"testing"

	"mw/internal/vec"
)

// buildTestSystem makes a small bonded system with every term family.
func buildTestSystem(n int, rng *rand.Rand) *System {
	s := NewSystem(NewBox(30, 30, 30, false))
	for i := 0; i < n; i++ {
		p := vec.New(2+rng.Float64()*26, 2+rng.Float64()*26, 2+rng.Float64()*26)
		v := vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.01)
		s.AddAtom(int16(i%3), p, v, float64(i%3)-1, i%7 == 0)
	}
	for i := 0; i+1 < n; i += 3 {
		s.Bonds = append(s.Bonds, Bond{I: int32(i), J: int32(i + 1), K: 5, R0: 2})
	}
	for i := 0; i+2 < n; i += 5 {
		s.Angles = append(s.Angles, Angle{I: int32(i), J: int32(i + 1), K: int32(i + 2), KTheta: 1, Theta0: 2})
	}
	for i := 0; i+3 < n; i += 7 {
		s.Torsions = append(s.Torsions, Torsion{I: int32(i), J: int32(i + 1), K: int32(i + 2), L: int32(i + 3), V0: 0.2, N: 3})
	}
	for i := 0; i+1 < n; i += 11 {
		s.Morses = append(s.Morses, Morse{I: int32(i), J: int32(i + 1), D: 1, A: 1, R0: 2})
	}
	s.BuildExclusions()
	return s
}

func randomOrder(n int, rng *rand.Rand) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
	return order
}

// TestReorderRoundTrip applies a random permutation and then its inverse;
// the system must come back identical, including remapped topology.
func TestReorderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := buildTestSystem(40, rng)
	orig := s.Clone()

	order := randomOrder(s.N(), rng)
	var r Reorderer
	if err := r.Apply(s, order); err != nil {
		t.Fatal(err)
	}
	// Forward check: new slot k must hold old atom order[k].
	for k, o := range order {
		if s.Pos[k] != orig.Pos[o] || s.Elem[k] != orig.Elem[o] || s.Charge[k] != orig.Charge[o] {
			t.Fatalf("slot %d does not hold original atom %d", k, o)
		}
	}
	// The inverse gather order is Inverse() itself: undoing places old atom o
	// (now at inv[o]) back at slot o.
	undo := append([]int32(nil), r.Inverse()...)
	if err := r.Apply(s, undo); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N(); i++ {
		if s.Pos[i] != orig.Pos[i] || s.Vel[i] != orig.Vel[i] || s.Acc[i] != orig.Acc[i] ||
			s.Force[i] != orig.Force[i] || s.Mass[i] != orig.Mass[i] || s.InvMass[i] != orig.InvMass[i] ||
			s.Charge[i] != orig.Charge[i] || s.Elem[i] != orig.Elem[i] || s.Fixed[i] != orig.Fixed[i] {
			t.Fatalf("atom %d not restored by inverse permutation", i)
		}
	}
	if len(s.Bonds) != len(orig.Bonds) {
		t.Fatal("bond count changed")
	}
	for i := range s.Bonds {
		if s.Bonds[i] != orig.Bonds[i] {
			t.Fatalf("bond %d not restored: %+v vs %+v", i, s.Bonds[i], orig.Bonds[i])
		}
	}
	for i := range s.Angles {
		if s.Angles[i] != orig.Angles[i] {
			t.Fatalf("angle %d not restored", i)
		}
	}
	for i := range s.Torsions {
		if s.Torsions[i] != orig.Torsions[i] {
			t.Fatalf("torsion %d not restored", i)
		}
	}
	for i := range s.Morses {
		if s.Morses[i] != orig.Morses[i] {
			t.Fatalf("morse %d not restored", i)
		}
	}
}

// TestReorderPreservesExclusions: exclusion queries must be invariant under
// the index relabeling.
func TestReorderPreservesExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := buildTestSystem(36, rng)
	orig := s.Clone()
	order := randomOrder(s.N(), rng)
	var r Reorderer
	if err := r.Apply(s, order); err != nil {
		t.Fatal(err)
	}
	inv := r.Inverse()
	n := s.N()
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if got, want := s.Excl.Excluded(inv[i], inv[j]), orig.Excl.Excluded(i, j); got != want {
				t.Fatalf("exclusion (%d,%d) changed across reorder: got %v want %v", i, j, got, want)
			}
		}
	}
}

// TestReorderLeavesSharedTopologyUntouched: Clone shares bond slices; a
// reorder of the clone must not corrupt the original's terms.
func TestReorderLeavesSharedTopologyUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := buildTestSystem(30, rng)
	c := s.Clone()
	wantBonds := append([]Bond(nil), s.Bonds...)
	var r Reorderer
	if err := r.Apply(c, randomOrder(c.N(), rng)); err != nil {
		t.Fatal(err)
	}
	for i := range wantBonds {
		if s.Bonds[i] != wantBonds[i] {
			t.Fatalf("shared bond %d mutated by clone reorder", i)
		}
	}
}

// TestReorderRepeatedApplySharedTopology is the regression test for the
// scratch-aliasing bug: the first Apply must not capture the system's
// original (shared) topology slice as scratch, or the SECOND Apply rewrites
// the original through the shared backing array. Two Applies through one
// Reorderer on two clones of the same parent must leave the parent intact.
func TestReorderRepeatedApplySharedTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	parent := buildTestSystem(30, rng)
	wantBonds := append([]Bond(nil), parent.Bonds...)
	wantAngles := append([]Angle(nil), parent.Angles...)
	var r Reorderer
	for trial := 0; trial < 3; trial++ {
		c := parent.Clone()
		if err := r.Apply(c, randomOrder(c.N(), rng)); err != nil {
			t.Fatal(err)
		}
		for i := range wantBonds {
			if parent.Bonds[i] != wantBonds[i] {
				t.Fatalf("trial %d: parent bond %d clobbered through scratch aliasing", trial, i)
			}
		}
		for i := range wantAngles {
			if parent.Angles[i] != wantAngles[i] {
				t.Fatalf("trial %d: parent angle %d clobbered through scratch aliasing", trial, i)
			}
		}
	}
}

// TestReorderScratchReuse: steady-state Apply must not allocate beyond the
// first call's scratch growth (minus the unavoidable CheckOrder seen-bitmap
// and exclusion rebuild, which this topology-free system avoids).
func TestReorderScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSystem(NewBox(30, 30, 30, false))
	for i := 0; i < 200; i++ {
		s.AddAtom(0, vec.New(1+rng.Float64()*28, 1+rng.Float64()*28, 1+rng.Float64()*28), vec.Zero, 0, false)
	}
	orders := [][]int32{randomOrder(200, rng), randomOrder(200, rng)}
	var r Reorderer
	for _, o := range orders { // warm scratch
		if err := r.Apply(s, o); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.Apply(s, orders[0]); err != nil {
			t.Fatal(err)
		}
		if err := r.Apply(s, orders[1]); err != nil {
			t.Fatal(err)
		}
	})
	// CheckOrder's seen bitmap is the only per-call allocation (2 calls/run).
	if allocs > 2 {
		t.Errorf("steady-state Apply allocates %.0f/run, want ≤ 2", allocs)
	}
}

// TestReorderRejectsMalformedOrder exercises the validation paths.
func TestReorderRejectsMalformedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := buildTestSystem(10, rng)
	var r Reorderer
	for name, order := range map[string][]int32{
		"short":        {0, 1, 2},
		"out-of-range": {0, 1, 2, 3, 4, 5, 6, 7, 8, 12},
		"negative":     {0, 1, 2, 3, 4, 5, 6, 7, 8, -1},
		"duplicate":    {0, 1, 2, 3, 4, 5, 6, 7, 8, 8},
	} {
		before := s.Clone()
		if err := r.Apply(s, order); err == nil {
			t.Errorf("%s order accepted", name)
		}
		for i := range s.Pos {
			if s.Pos[i] != before.Pos[i] {
				t.Fatalf("%s order mutated the system despite the error", name)
			}
		}
	}
}

// TestReorderRejectsCorruptTopology: out-of-range or degenerate terms must
// produce errors, never panics (the fuzz target's contract).
func TestReorderRejectsCorruptTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	order := []int32{1, 0, 2, 3, 4, 5, 6, 7, 8, 9}
	var r Reorderer
	cases := map[string]func(*System){
		"bond-oob":     func(s *System) { s.Bonds = append(s.Bonds, Bond{I: 0, J: 99}) },
		"bond-neg":     func(s *System) { s.Bonds = append(s.Bonds, Bond{I: -2, J: 1}) },
		"bond-self":    func(s *System) { s.Bonds = append(s.Bonds, Bond{I: 3, J: 3}) },
		"angle-oob":    func(s *System) { s.Angles = append(s.Angles, Angle{I: 0, J: 1, K: 42}) },
		"torsion-oob":  func(s *System) { s.Torsions = append(s.Torsions, Torsion{I: 0, J: 1, K: 2, L: -7}) },
		"morse-oob":    func(s *System) { s.Morses = append(s.Morses, Morse{I: 10, J: 1}) },
		"morse-self":   func(s *System) { s.Morses = append(s.Morses, Morse{I: 2, J: 2}) },
		"angle-neg":    func(s *System) { s.Angles = append(s.Angles, Angle{I: -1, J: 1, K: 2}) },
		"torsion-oob2": func(s *System) { s.Torsions = append(s.Torsions, Torsion{I: 0, J: 1, K: 2, L: 98}) },
	}
	for name, corrupt := range cases {
		s := NewSystem(NewBox(20, 20, 20, false))
		for i := 0; i < 10; i++ {
			s.AddAtom(0, vec.New(rng.Float64()*19, rng.Float64()*19, rng.Float64()*19), vec.Zero, 0, false)
		}
		corrupt(s)
		if err := r.Apply(s, order); err == nil {
			t.Errorf("%s: corrupt topology accepted", name)
		}
	}
}
