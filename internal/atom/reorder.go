package atom

import (
	"fmt"

	"mw/internal/vec"
)

// Atom reordering: applying a spatial-sort permutation to every per-atom
// array of a System and remapping the topology (bond terms, exclusions) to
// the new indices. This is the engine-native realization of the paper's
// §V-A data reordering — the part that "was not practical in Java" because
// the JVM owns object addresses; with SoA slices the permutation is just a
// gather.
//
// The permutation convention throughout is gather order:
//
//	order[newIndex] = oldIndex
//
// so new slot k receives the atom previously at order[k]. The inverse map
// (old → new), needed to remap topology indices and to report original atom
// IDs in trajectories, is maintained alongside.

// CheckOrder verifies that order is a permutation of [0, n). It returns a
// descriptive error (never panics) for wrong length, out-of-range entries
// and duplicates — the malformed inputs the reorder fuzz target feeds.
func CheckOrder(order []int32, n int) error {
	if len(order) != n {
		return fmt.Errorf("atom: order length %d, system has %d atoms", len(order), n)
	}
	seen := make([]bool, n)
	for k, o := range order {
		if o < 0 || int(o) >= n {
			return fmt.Errorf("atom: order[%d] = %d out of range [0,%d)", k, o, n)
		}
		if seen[o] {
			return fmt.Errorf("atom: order[%d] = %d duplicated", k, o)
		}
		seen[o] = true
	}
	return nil
}

// Reorderer applies permutations to Systems while reusing all scratch
// storage, so steady-state reorders (one per neighbor-list rebuild in the
// engine) allocate nothing. The zero value is ready to use.
type Reorderer struct {
	inv  []int32 // old index → new index
	v3   []vec.Vec3
	f64  []float64
	i16  []int16
	bool []bool

	// Topology scratch is double-buffered: Apply hands one buffer to the
	// system and remaps into the other on the next call, so the slice a
	// system arrived with — possibly shared with its Clone siblings — is
	// never written, only replaced.
	bonds    [2][]Bond
	angles   [2][]Angle
	torsions [2][]Torsion
	morses   [2][]Morse
	sel      int
}

// Inverse returns the old→new index map of the most recent Apply. The slice
// aliases internal storage and is invalidated by the next Apply.
func (r *Reorderer) Inverse() []int32 { return r.inv }

// Apply permutes s in place so that new slot k holds the atom previously at
// order[k]: all per-atom arrays are gathered, every topology term index i is
// rewritten to inverse(i), and the exclusion set (if present) is rebuilt.
// The input is validated first; on error the system is untouched.
//
// Bond-term slices are replaced, not rewritten: Clone shares them between
// systems on the premise that they are immutable, so remapping buffers the
// terms through the Reorderer's own storage.
func (r *Reorderer) Apply(s *System, order []int32) error {
	n := s.N()
	if err := CheckOrder(order, n); err != nil {
		return err
	}
	if err := checkTopology(s, n); err != nil {
		return err
	}
	if cap(r.inv) < n {
		r.inv = make([]int32, n)
	}
	r.inv = r.inv[:n]
	for k, o := range order {
		r.inv[o] = int32(k)
	}

	r.permuteAtoms(s, order)
	r.remapTopology(s)
	if s.Excl != nil {
		s.BuildExclusions()
	}
	return nil
}

// checkTopology validates every bond-term index against n with descriptive
// errors; unlike Validate it is complete for all four term families (the
// reorder fuzz target feeds deliberately corrupt topologies).
func checkTopology(s *System, n int) error {
	in := func(i int32) bool { return i >= 0 && int(i) < n }
	for k, b := range s.Bonds {
		if !in(b.I) || !in(b.J) {
			return fmt.Errorf("atom: bond %d references atom out of range (%d-%d, n=%d)", k, b.I, b.J, n)
		}
		if b.I == b.J {
			return fmt.Errorf("atom: bond %d is degenerate (%d-%d)", k, b.I, b.J)
		}
	}
	for k, a := range s.Angles {
		if !in(a.I) || !in(a.J) || !in(a.K) {
			return fmt.Errorf("atom: angle %d references atom out of range (%d-%d-%d, n=%d)", k, a.I, a.J, a.K, n)
		}
	}
	for k, t := range s.Torsions {
		if !in(t.I) || !in(t.J) || !in(t.K) || !in(t.L) {
			return fmt.Errorf("atom: torsion %d references atom out of range (%d-%d-%d-%d, n=%d)", k, t.I, t.J, t.K, t.L, n)
		}
	}
	for k, m := range s.Morses {
		if !in(m.I) || !in(m.J) {
			return fmt.Errorf("atom: morse %d references atom out of range (%d-%d, n=%d)", k, m.I, m.J, n)
		}
		if m.I == m.J {
			return fmt.Errorf("atom: morse %d is degenerate (%d-%d)", k, m.I, m.J)
		}
	}
	return nil
}

// permuteAtoms gathers every per-atom array through the scratch buffers.
//
//mw:hotpath
func (r *Reorderer) permuteAtoms(s *System, order []int32) {
	n := len(order)
	if cap(r.v3) < n {
		r.v3 = make([]vec.Vec3, n)
	}
	v3 := r.v3[:n]
	gatherV3(s.Pos, v3, order)
	gatherV3(s.Vel, v3, order)
	gatherV3(s.Acc, v3, order)
	gatherV3(s.Force, v3, order)

	if cap(r.f64) < n {
		r.f64 = make([]float64, n)
	}
	f64 := r.f64[:n]
	gatherF64(s.Mass, f64, order)
	gatherF64(s.InvMass, f64, order)
	gatherF64(s.Charge, f64, order)

	if cap(r.i16) < n {
		r.i16 = make([]int16, n)
	}
	i16 := r.i16[:n]
	for k, o := range order {
		i16[k] = s.Elem[o]
	}
	copy(s.Elem, i16)

	if cap(r.bool) < n {
		r.bool = make([]bool, n)
	}
	bl := r.bool[:n]
	for k, o := range order {
		bl[k] = s.Fixed[o]
	}
	copy(s.Fixed, bl)
}

// gatherV3 permutes arr in place through scratch: arr[k] = arr[order[k]].
//
//mw:hotpath
func gatherV3(arr, scratch []vec.Vec3, order []int32) {
	for k, o := range order {
		scratch[k] = arr[o]
	}
	copy(arr, scratch)
}

// gatherF64 is gatherV3 for float64 arrays.
//
//mw:hotpath
func gatherF64(arr, scratch []float64, order []int32) {
	for k, o := range order {
		scratch[k] = arr[o]
	}
	copy(arr, scratch)
}

// remapTopology rewrites all term indices through r.inv into the inactive
// scratch buffer of each family and hands that buffer to the system. The
// system's previous slices are left untouched: they may be shared with Clone
// siblings, so they must never serve as scratch. Two buffers suffice because
// the engine applies a Reorderer to one live system; its slice from the last
// Apply is replaced (not written) before the other buffer comes around again.
func (r *Reorderer) remapTopology(s *System) {
	inv := r.inv
	a, b := r.sel, 1-r.sel
	r.sel = b
	if len(s.Bonds) > 0 {
		buf := append(r.bonds[a][:0], s.Bonds...)
		for i := range buf {
			buf[i].I = inv[buf[i].I]
			buf[i].J = inv[buf[i].J]
		}
		r.bonds[a], s.Bonds = buf, buf
	}
	if len(s.Angles) > 0 {
		buf := append(r.angles[a][:0], s.Angles...)
		for i := range buf {
			buf[i].I = inv[buf[i].I]
			buf[i].J = inv[buf[i].J]
			buf[i].K = inv[buf[i].K]
		}
		r.angles[a], s.Angles = buf, buf
	}
	if len(s.Torsions) > 0 {
		buf := append(r.torsions[a][:0], s.Torsions...)
		for i := range buf {
			buf[i].I = inv[buf[i].I]
			buf[i].J = inv[buf[i].J]
			buf[i].K = inv[buf[i].K]
			buf[i].L = inv[buf[i].L]
		}
		r.torsions[a], s.Torsions = buf, buf
	}
	if len(s.Morses) > 0 {
		buf := append(r.morses[a][:0], s.Morses...)
		for i := range buf {
			buf[i].I = inv[buf[i].I]
			buf[i].J = inv[buf[i].J]
		}
		r.morses[a], s.Morses = buf, buf
	}
}
