package atom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mw/internal/vec"
)

func TestMixLJ(t *testing.T) {
	sigma, eps := MixLJ(Builtin[Na], Builtin[Cl])
	wantSigma := 0.5 * (Builtin[Na].Sigma + Builtin[Cl].Sigma)
	wantEps := math.Sqrt(Builtin[Na].Epsilon * Builtin[Cl].Epsilon)
	if math.Abs(sigma-wantSigma) > 1e-12 || math.Abs(eps-wantEps) > 1e-12 {
		t.Errorf("MixLJ = %v, %v", sigma, eps)
	}
	// Self-mixing is the identity.
	s, e := MixLJ(Builtin[Ar], Builtin[Ar])
	if s != Builtin[Ar].Sigma || math.Abs(e-Builtin[Ar].Epsilon) > 1e-15 {
		t.Errorf("self MixLJ = %v, %v", s, e)
	}
}

func TestBuiltinTableComplete(t *testing.T) {
	for i, e := range Builtin {
		if e.Symbol == "" || e.Mass <= 0 || e.Sigma <= 0 || e.Epsilon <= 0 {
			t.Errorf("builtin element %d incomplete: %+v", i, e)
		}
	}
}

func TestBoxMinImage(t *testing.T) {
	b := CubicBox(10, true)
	d := b.MinImage(vec.New(9, -9, 4))
	if !d.ApproxEqual(vec.New(-1, 1, 4), 1e-12) {
		t.Errorf("MinImage = %v", d)
	}
	// Non-periodic: identity.
	np := CubicBox(10, false)
	if got := np.MinImage(vec.New(9, -9, 4)); got != vec.New(9, -9, 4) {
		t.Errorf("non-periodic MinImage = %v", got)
	}
}

func TestBoxWrap(t *testing.T) {
	b := CubicBox(10, true)
	p := b.Wrap(vec.New(11, -0.5, 25))
	if !p.ApproxEqual(vec.New(1, 9.5, 5), 1e-12) {
		t.Errorf("Wrap = %v", p)
	}
	if !b.Contains(p) {
		t.Error("wrapped point outside box")
	}
}

func TestBoxReflect(t *testing.T) {
	b := CubicBox(10, false)
	p, v := b.Reflect(vec.New(-1, 5, 12), vec.New(-2, 1, 3))
	if !p.ApproxEqual(vec.New(1, 5, 8), 1e-12) {
		t.Errorf("Reflect p = %v", p)
	}
	if !v.ApproxEqual(vec.New(2, 1, -3), 1e-12) {
		t.Errorf("Reflect v = %v", v)
	}
	// Extreme overshoot still lands inside.
	p, _ = b.Reflect(vec.New(47, 5, 5), vec.New(1, 0, 0))
	if !b.Contains(p) {
		t.Errorf("overshoot reflect left box: %v", p)
	}
}

func TestBoxReflectPeriodicWraps(t *testing.T) {
	b := CubicBox(10, true)
	p, v := b.Reflect(vec.New(11, 5, 5), vec.New(1, 0, 0))
	if !p.ApproxEqual(vec.New(1, 5, 5), 1e-12) {
		t.Errorf("periodic Reflect p = %v", p)
	}
	if v != vec.New(1, 0, 0) {
		t.Errorf("periodic Reflect must not flip velocity: %v", v)
	}
}

func TestBoxVolume(t *testing.T) {
	if v := NewBox(2, 3, 4, false).Volume(); v != 24 {
		t.Errorf("Volume = %v", v)
	}
}

// Property: minimum-image displacement components never exceed L/2.
func TestMinImageBoundProperty(t *testing.T) {
	b := CubicBox(7.5, true)
	f := func(x, y, z float64) bool {
		v := vec.New(x, y, z)
		if !v.IsFinite() || v.MaxAbs() > 1e12 {
			// Beyond ~1e12 the quotient d/L loses the sub-L resolution that
			// the minimum-image convention requires; physical displacements
			// are always within a few box lengths.
			return true
		}
		d := b.MinImage(v)
		return d.MaxAbs() <= 7.5/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxAtomIndex(t *testing.T) {
	if MaxAtomIndex(nil, nil, nil) != -1 {
		t.Error("empty MaxAtomIndex != -1")
	}
	got := MaxAtomIndex(
		[]Bond{{I: 1, J: 5}},
		[]Angle{{I: 2, J: 9, K: 0}},
		[]Torsion{{I: 3, J: 4, K: 5, L: 12}},
	)
	if got != 12 {
		t.Errorf("MaxAtomIndex = %d", got)
	}
}

func newTestSystem(t *testing.T, n int) *System {
	t.Helper()
	s := NewSystem(CubicBox(20, false))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		p := vec.New(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20)
		s.AddAtom(Ar, p, vec.Zero, 0, false)
	}
	return s
}

func TestSystemAddAndValidate(t *testing.T) {
	s := newTestSystem(t, 10)
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s.Bonds = append(s.Bonds, Bond{I: 0, J: 99})
	if err := s.Validate(); err == nil {
		t.Error("out-of-range bond not caught")
	}
	s.Bonds = []Bond{{I: 3, J: 3}}
	if err := s.Validate(); err == nil {
		t.Error("degenerate bond not caught")
	}
}

func TestValidateOutsideBox(t *testing.T) {
	s := NewSystem(CubicBox(5, false))
	s.AddAtom(Ar, vec.New(6, 1, 1), vec.Zero, 0, false)
	if err := s.Validate(); err == nil {
		t.Error("atom outside non-periodic box not caught")
	}
}

func TestFixedAtoms(t *testing.T) {
	s := NewSystem(CubicBox(10, false))
	i := s.AddAtom(Au, vec.New(5, 5, 5), vec.New(1, 0, 0), 0, true)
	if s.InvMass[i] != 0 {
		t.Error("fixed atom must have zero inverse mass")
	}
	if s.NumMobile() != 0 {
		t.Error("fixed atom counted as mobile")
	}
	if s.KineticEnergy() != 0 {
		t.Error("fixed atoms must not contribute kinetic energy")
	}
}

func TestChargeAccounting(t *testing.T) {
	s := NewSystem(CubicBox(10, false))
	s.AddAtom(Na, vec.New(1, 1, 1), vec.Zero, +1, false)
	s.AddAtom(Cl, vec.New(2, 2, 2), vec.Zero, -1, false)
	s.AddAtom(Ar, vec.New(3, 3, 3), vec.Zero, 0, false)
	if s.NumCharged() != 2 {
		t.Errorf("NumCharged = %d", s.NumCharged())
	}
	if s.TotalCharge() != 0 {
		t.Errorf("TotalCharge = %v", s.TotalCharge())
	}
	idx := s.ChargedIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("ChargedIndices = %v", idx)
	}
}

func TestThermalizeTemperature(t *testing.T) {
	s := newTestSystem(t, 2000)
	rng := rand.New(rand.NewSource(11))
	const T = 300.0
	s.Thermalize(T, rng)
	got := s.Temperature()
	// 2000 atoms: relative sampling error ~ sqrt(2/3N) ≈ 1.8%; allow 5 sigma.
	if math.Abs(got-T)/T > 0.1 {
		t.Errorf("Temperature after Thermalize = %v, want ≈ %v", got, T)
	}
	// Drift removed.
	if p := s.Momentum(); p.Norm() > 1e-9 {
		t.Errorf("net momentum after Thermalize = %v", p)
	}
}

func TestRemoveDriftNoMobile(t *testing.T) {
	s := NewSystem(CubicBox(10, false))
	s.AddAtom(Au, vec.New(5, 5, 5), vec.Zero, 0, true)
	s.RemoveDrift() // must not divide by zero
}

func TestCloneIndependence(t *testing.T) {
	s := newTestSystem(t, 5)
	c := s.Clone()
	c.Pos[0] = vec.New(1, 2, 3)
	c.Vel[0] = vec.New(4, 5, 6)
	if s.Pos[0] == c.Pos[0] || s.Vel[0] == c.Vel[0] {
		t.Error("Clone shares mutable state")
	}
	if c.N() != s.N() {
		t.Error("Clone size mismatch")
	}
}

func TestZeroForces(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Force[2] = vec.New(1, 1, 1)
	s.ZeroForces()
	for i, f := range s.Force {
		if f != vec.Zero {
			t.Errorf("Force[%d] = %v after ZeroForces", i, f)
		}
	}
}

func TestMaxSpeed(t *testing.T) {
	s := newTestSystem(t, 3)
	s.Vel[1] = vec.New(3, 4, 0)
	if got := s.MaxSpeed(); math.Abs(got-5) > 1e-12 {
		t.Errorf("MaxSpeed = %v", got)
	}
}

func TestKineticEnergyMatchesTemperatureDOF(t *testing.T) {
	// KE and Temperature must be mutually consistent via 3N dof.
	s := newTestSystem(t, 50)
	rng := rand.New(rand.NewSource(3))
	s.Thermalize(250, rng)
	ke := s.KineticEnergy()
	T := s.Temperature()
	want := 2 * ke / (3 * float64(s.NumMobile()) * 8.617333262e-5)
	if math.Abs(T-want) > 1e-9 {
		t.Errorf("Temperature inconsistent with KE: %v vs %v", T, want)
	}
}

func TestReflectNonFiniteParksAtWall(t *testing.T) {
	b := CubicBox(10, false)
	p, v := b.Reflect(vec.New(math.Inf(1), 5, 5), vec.New(1, 0, 0))
	if p.X != 10 || v.X != 0 {
		t.Errorf("Inf reflect: p=%v v=%v", p, v)
	}
	p, v = b.Reflect(vec.New(math.NaN(), 5, 5), vec.New(1, 0, 0))
	if !b.Contains(p) || v.X != 0 {
		t.Errorf("NaN reflect: p=%v v=%v", p, v)
	}
	// Huge-but-finite overshoot folds in O(1) and preserves flip parity.
	p, v = b.Reflect(vec.New(1e9+3, 5, 5), vec.New(1, 0, 0))
	if !b.Contains(p) {
		t.Errorf("huge overshoot left box: %v", p)
	}
	// 1e9+3 mod 20 = 3 (5e7 periods, even flips): x=3, v unchanged.
	if math.Abs(p.X-3) > 1e-6 || v.X != 1 {
		t.Errorf("fold parity wrong: p=%v v=%v", p, v)
	}
}
