package atom

import "sort"

// ExclusionSet records atom pairs excluded from non-bonded (LJ) interaction:
// directly bonded pairs (1-2), angle ends (1-3) and torsion ends (1-4).
// Without these exclusions the steep LJ core would fight the bond terms at
// bonded distances. Storage is CSR over the smaller index of each pair, so
// lookups during the half-pair LJ loop (which always queries i < j) touch a
// short sorted slice.
type ExclusionSet struct {
	offsets []int32
	ids     []int32
}

// BuildExclusions derives the exclusion set from the system's bond topology
// and stores it in s.Excl. Calling it again after topology changes rebuilds
// the set.
func (s *System) BuildExclusions() {
	pairs := make(map[[2]int32]struct{}, len(s.Bonds)*2)
	add := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		pairs[[2]int32{a, b}] = struct{}{}
	}
	for _, b := range s.Bonds {
		add(b.I, b.J)
	}
	for _, m := range s.Morses {
		add(m.I, m.J)
	}
	for _, a := range s.Angles {
		add(a.I, a.J)
		add(a.J, a.K)
		add(a.I, a.K)
	}
	for _, t := range s.Torsions {
		add(t.I, t.L)
	}

	n := s.N()
	counts := make([]int32, n+1)
	for p := range pairs {
		counts[p[0]+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	ids := make([]int32, len(pairs))
	fill := append([]int32(nil), counts[:n]...)
	for p := range pairs {
		ids[fill[p[0]]] = p[1]
		fill[p[0]]++
	}
	for i := 0; i < n; i++ {
		seg := ids[counts[i]:counts[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	s.Excl = &ExclusionSet{offsets: counts, ids: ids}
}

// Excluded reports whether the unordered pair (i, j) is excluded. It is safe
// on a nil receiver (nothing excluded).
//
//mw:hotpath
func (e *ExclusionSet) Excluded(i, j int32) bool {
	if e == nil {
		return false
	}
	if i > j {
		i, j = j, i
	}
	// Explicit guards in place of the implicit bounds checks: an index outside
	// the table (never hit by valid systems) reads as "not excluded", and the
	// prove pass drops every check from the per-pair path.
	k := int(i)
	offs := e.offsets
	if k < 0 || k >= len(offs) {
		return false
	}
	seg := offs[k:]
	if len(seg) < 2 {
		return false
	}
	a, b := int(seg[0]), int(seg[1])
	ids := e.ids
	if a < 0 || b < a || b > len(ids) {
		return false
	}
	for _, v := range ids[a:b] {
		if v == j {
			return true
		}
		if v > j {
			return false
		}
	}
	return false
}

// Len returns the number of excluded pairs.
func (e *ExclusionSet) Len() int {
	if e == nil {
		return 0
	}
	return len(e.ids)
}
