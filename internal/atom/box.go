package atom

import (
	"math"

	"mw/internal/vec"
)

// Box is an orthorhombic simulation box anchored at the origin with edge
// lengths L. When Periodic is true, positions wrap and pair displacements
// use the minimum-image convention; otherwise the box only defines the
// extent used by the linked-cell grid and atoms reflect off the walls
// (Molecular Workbench simulations run in a closed container).
type Box struct {
	L        vec.Vec3
	Periodic bool
}

// NewBox returns a box with the given edge lengths.
func NewBox(lx, ly, lz float64, periodic bool) Box {
	return Box{L: vec.New(lx, ly, lz), Periodic: periodic}
}

// CubicBox returns a cube with edge length l.
func CubicBox(l float64, periodic bool) Box { return NewBox(l, l, l, periodic) }

// Volume returns the box volume in Å³.
func (b Box) Volume() float64 { return b.L.X * b.L.Y * b.L.Z }

// MinImage returns the minimum-image displacement for d. For non-periodic
// boxes d is returned unchanged.
//
//mw:hotpath
func (b Box) MinImage(d vec.Vec3) vec.Vec3 {
	if !b.Periodic {
		return d
	}
	d.X -= b.L.X * math.Round(d.X/b.L.X)
	d.Y -= b.L.Y * math.Round(d.Y/b.L.Y)
	d.Z -= b.L.Z * math.Round(d.Z/b.L.Z)
	return d
}

// Displacement returns the (minimum-image) displacement from p to q.
func (b Box) Displacement(p, q vec.Vec3) vec.Vec3 {
	return b.MinImage(q.Sub(p))
}

// Wrap maps p into [0, L) per periodic dimension. Non-periodic boxes return
// p unchanged.
//
//mw:hotpath
func (b Box) Wrap(p vec.Vec3) vec.Vec3 {
	if !b.Periodic {
		return p
	}
	p.X -= b.L.X * math.Floor(p.X/b.L.X)
	p.Y -= b.L.Y * math.Floor(p.Y/b.L.Y)
	p.Z -= b.L.Z * math.Floor(p.Z/b.L.Z)
	return p
}

// Reflect applies elastic wall reflection for a non-periodic box: if the
// position has crossed a wall, it is mirrored back inside and the
// corresponding velocity component flipped. Periodic boxes wrap instead.
// It returns the corrected position and velocity.
//
//mw:hotpath
func (b Box) Reflect(p, v vec.Vec3) (vec.Vec3, vec.Vec3) {
	if b.Periodic {
		return b.Wrap(p), v
	}
	p.X, v.X = reflect1(p.X, v.X, b.L.X)
	p.Y, v.Y = reflect1(p.Y, v.Y, b.L.Y)
	p.Z, v.Z = reflect1(p.Z, v.Z, b.L.Z)
	return p, v
}

//mw:hotpath
func reflect1(x, v, l float64) (float64, float64) {
	// A fast atom can overshoot by more than one box length; fold until
	// inside. Each fold flips the velocity sign once. Non-finite input
	// (a diverged integration step) cannot be folded — park the atom at
	// the nearest wall with zero velocity rather than looping forever.
	if math.IsNaN(x) || math.IsInf(x, 0) {
		if x > 0 {
			return l, 0
		}
		return 0, 0
	}
	// Collapse distant overshoots in O(1): the fold pattern has period 2l.
	if x < -2*l || x > 2*l {
		period := math.Mod(x, 2*l)
		if period < 0 {
			period += 2 * l
		}
		x = period // now in [0, 2l); at most one fold remains
	}
	for x < 0 || x > l {
		if x < 0 {
			x = -x
		} else {
			x = 2*l - x
		}
		v = -v
	}
	return x, v
}

// Contains reports whether p lies inside [0, L] in all dimensions.
func (b Box) Contains(p vec.Vec3) bool {
	return p.X >= 0 && p.X <= b.L.X &&
		p.Y >= 0 && p.Y <= b.L.Y &&
		p.Z >= 0 && p.Z <= b.L.Z
}
