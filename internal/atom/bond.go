package atom

// The paper's §II-B: "Bond force equations are more complex than the other
// types, require more floating point operations, can involve up to four
// atoms, and exhibit indirect and therefore irregular indexing into the atom
// array." Molecular Workbench implements radial (2-atom), angular (3-atom)
// and torsional (4-atom) bonds; all three are modeled here.

// Bond is a harmonic radial bond between atoms I and J:
// V = ½ K (r - R0)².  K is in eV/Å², R0 in Å.
type Bond struct {
	I, J int32
	K    float64
	R0   float64
}

// Angle is a harmonic angular bond on the triplet I-J-K with J the vertex:
// V = ½ K (θ - Theta0)².  K is in eV/rad², Theta0 in radians.
type Angle struct {
	I, J, K int32
	KTheta  float64
	Theta0  float64
}

// Torsion is a cosine torsional bond on the chain I-J-K-L:
// V = ½ V0 (1 - cos(N (φ - Phi0))).  V0 in eV, Phi0 in radians, N the
// periodicity.
type Torsion struct {
	I, J, K, L int32
	V0         float64
	N          int
	Phi0       float64
}

// Morse is an anharmonic radial bond between atoms I and J with the Morse
// potential V = D·(1 − e^{−A(r−R0)})² — Molecular Workbench's alternative to
// the harmonic bond for dissociable pairs. D is the well depth in eV, A the
// stiffness in 1/Å, R0 the equilibrium length in Å.
type Morse struct {
	I, J int32
	D    float64
	A    float64
	R0   float64
}

// MaxAtomIndex returns the largest atom index referenced by any bond term,
// or -1 when there are none. Systems validate this against their size.
func MaxAtomIndex(bonds []Bond, angles []Angle, torsions []Torsion) int32 {
	var mx int32 = -1
	up := func(i int32) {
		if i > mx {
			mx = i
		}
	}
	for _, b := range bonds {
		up(b.I)
		up(b.J)
	}
	for _, a := range angles {
		up(a.I)
		up(a.J)
		up(a.K)
	}
	for _, t := range torsions {
		up(t.I)
		up(t.J)
		up(t.K)
		up(t.L)
	}
	return mx
}
