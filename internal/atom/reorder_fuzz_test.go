package atom

import (
	"encoding/binary"
	"testing"

	"mw/internal/vec"
)

// FuzzReorderTopology drives the reorder pass's validation with arbitrary
// permutations and arbitrary (frequently malformed: duplicate, negative,
// out-of-range) bond-term indices decoded from the fuzz input. The contract
// under test: Reorderer.Apply either succeeds — in which case the system
// must still Validate and the permutation must invert cleanly — or returns
// an error; it must never panic and never mutate the system on the error
// path. This sits alongside the mml/xyz parser fuzzers as the third
// untrusted-input surface (model files carry topology, and the engine
// remaps it on every reorder).
func FuzzReorderTopology(f *testing.F) {
	// Seeds: identity, a valid shuffle with valid bonds, and three corrupt
	// shapes (out-of-range bond, duplicate order entry, negative index).
	f.Add(uint8(4), []byte{0, 1, 2, 3}, []byte{0, 1, 1, 2})
	f.Add(uint8(4), []byte{3, 2, 1, 0}, []byte{0, 3, 2, 1})
	f.Add(uint8(4), []byte{0, 1, 2, 9}, []byte{0, 1, 0, 1})
	f.Add(uint8(4), []byte{1, 1, 2, 3}, []byte{2, 3, 3, 3})
	f.Add(uint8(3), []byte{0, 255, 2}, []byte{0, 2, 255, 1, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, n uint8, orderBytes, topoBytes []byte) {
		if n == 0 || n > 64 {
			return
		}
		s := NewSystem(NewBox(100, 100, 100, false))
		for i := 0; i < int(n); i++ {
			s.AddAtom(0, vec.New(float64(i)+0.5, 1, 1), vec.Zero, 0, false)
		}
		order := make([]int32, 0, len(orderBytes))
		for _, b := range orderBytes {
			order = append(order, int32(int8(b))) // signed: negatives reachable
		}
		// Decode topology terms round-robin across the four families.
		for k := 0; k+1 < len(topoBytes); k += 2 {
			i, j := int32(int8(topoBytes[k])), int32(int8(topoBytes[k+1]))
			switch k / 2 % 4 {
			case 0:
				s.Bonds = append(s.Bonds, Bond{I: i, J: j, K: 1, R0: 1})
			case 1:
				s.Angles = append(s.Angles, Angle{I: i, J: j, K: (i + j) / 2, KTheta: 1})
			case 2:
				s.Torsions = append(s.Torsions, Torsion{I: i, J: j, K: i, L: j, V0: 1, N: 1})
			default:
				s.Morses = append(s.Morses, Morse{I: i, J: j, D: 1, A: 1, R0: 1})
			}
		}
		before := s.Clone()
		before.Bonds = append([]Bond(nil), s.Bonds...)

		var r Reorderer
		err := r.Apply(s, order)
		if err != nil {
			// Error path: the system must be byte-identical to before.
			for i := range s.Pos {
				if s.Pos[i] != before.Pos[i] {
					t.Fatalf("error path mutated positions: %v", err)
				}
			}
			for i := range s.Bonds {
				if s.Bonds[i] != before.Bonds[i] {
					t.Fatalf("error path mutated bonds: %v", err)
				}
			}
			return
		}
		// Success path: everything in range, invertible.
		if err := s.Validate(); err != nil {
			t.Fatalf("Apply accepted input but left an invalid system: %v", err)
		}
		undo := append([]int32(nil), r.Inverse()...)
		if err := r.Apply(s, undo); err != nil {
			t.Fatalf("inverse of an accepted permutation rejected: %v", err)
		}
		for i := range s.Pos {
			if s.Pos[i] != before.Pos[i] {
				t.Fatal("permute+inverse is not the identity")
			}
		}
		for i := range s.Bonds {
			if s.Bonds[i] != before.Bonds[i] {
				t.Fatal("bond remap+inverse is not the identity")
			}
		}
	})
}

// FuzzCheckOrder stresses the permutation validator alone with raw
// little-endian int32s — it must classify, never panic, and accept exactly
// the true permutations.
func FuzzCheckOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 0}, uint8(2))
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0}, uint8(2))
	f.Add([]byte{255, 255, 255, 255}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, n uint8) {
		order := make([]int32, 0, len(raw)/4)
		for k := 0; k+3 < len(raw); k += 4 {
			order = append(order, int32(binary.LittleEndian.Uint32(raw[k:])))
		}
		err := CheckOrder(order, int(n))
		seen := map[int32]bool{}
		valid := len(order) == int(n)
		for _, o := range order {
			if o < 0 || int(o) >= int(n) || seen[o] {
				valid = false
				break
			}
			seen[o] = true
		}
		if valid != (err == nil) {
			t.Fatalf("CheckOrder(%v, %d) = %v, reference says valid=%v", order, n, err, valid)
		}
	})
}
