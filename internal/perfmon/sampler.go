package perfmon

import "time"

// Sampler reproduces the §IV-B tools: it observes a ground-truth timeline
// only at multiples of Period, like VisualVM (1 s) or VTune (5–10 ms), and
// like those tools it "sampled the thread state immediately before it
// changed, but continued to display the sampled state until the next
// sample".
type Sampler struct {
	Period time.Duration
}

// SampleReport compares what the sampler saw against ground truth.
type SampleReport struct {
	Period  time.Duration
	Samples int

	// RunningFrac is each thread's apparent running fraction (from
	// displayed state, i.e. sample-and-hold).
	RunningFrac []float64
	// TrueRunningFrac is each thread's actual running fraction.
	TrueRunningFrac []float64

	// TrueEvents is the number of ground-truth imbalance events
	// (phases with imbalance > threshold).
	TrueEvents int
	// DetectedEvents counts true events during which at least one sample
	// landed in the imbalanced tail (some threads running, some waiting) —
	// what a tool user could actually see.
	DetectedEvents int
	// FalsePositives counts sample intervals displayed as an imbalance
	// pattern that do not overlap any true event — artifacts of
	// sample-and-hold display.
	FalsePositives int
}

// DetectionRate returns DetectedEvents / TrueEvents (1 when no events).
func (r SampleReport) DetectionRate() float64 {
	if r.TrueEvents == 0 {
		return 1
	}
	return float64(r.DetectedEvents) / float64(r.TrueEvents)
}

// Run samples the timeline and builds the report. threshold is the
// imbalance (max/mean − 1) above which a phase counts as a true event.
func (s Sampler) Run(tl *Timeline, threshold float64) SampleReport {
	nth := len(tl.Threads)
	rep := SampleReport{
		Period:          s.Period,
		RunningFrac:     make([]float64, nth),
		TrueRunningFrac: make([]float64, nth),
	}
	if s.Period <= 0 || tl.Horizon <= 0 {
		return rep
	}

	// Ground truth.
	trueEvents := map[int]bool{}
	for _, p := range tl.PhaseSpans {
		if p.Imbalance() > threshold {
			trueEvents[p.Step] = true
		}
	}
	rep.TrueEvents = len(trueEvents)
	for th := range tl.Threads {
		var run time.Duration
		for _, iv := range tl.Threads[th] {
			if iv.State == StateRunning {
				run += iv.End - iv.Start
			}
		}
		rep.TrueRunningFrac[th] = float64(run) / float64(tl.Horizon)
	}

	// Sample-and-hold pass.
	detected := map[int]bool{}
	running := make([]bool, nth)
	steps := make([]int, nth)
	for t := time.Duration(0); t < tl.Horizon; t += s.Period {
		rep.Samples++
		nRun, nWait := 0, 0
		for th := 0; th < nth; th++ {
			st := tl.StateAt(th, t)
			running[th] = st == StateRunning
			steps[th] = stepAt(tl, th, t)
			if running[th] {
				nRun++
			} else {
				nWait++
			}
		}
		// Displayed state persists for the whole period.
		hold := s.Period
		if t+hold > tl.Horizon {
			hold = tl.Horizon - t
		}
		for th := 0; th < nth; th++ {
			if running[th] {
				rep.RunningFrac[th] += float64(hold) / float64(tl.Horizon)
			}
		}
		// An "imbalance pattern": some threads running while others wait.
		// A sample only counts as a false positive when some running thread
		// actually sits in a phase interval (step ≥ 0): if every running
		// thread is in a trace gap, nothing was displayed *as a phase*, so
		// there is no spurious phase imbalance to mis-attribute.
		if nRun > 0 && nWait > 0 {
			overlapsTrue, anyPhase := false, false
			for th := 0; th < nth; th++ {
				if running[th] && steps[th] >= 0 {
					anyPhase = true
					if trueEvents[steps[th]] {
						detected[steps[th]] = true
						overlapsTrue = true
					}
				}
			}
			if anyPhase && !overlapsTrue {
				rep.FalsePositives++
			}
		}
	}
	rep.DetectedEvents = len(detected)
	return rep
}

// stepAt returns the step of the interval containing t for thread th, or -1.
func stepAt(tl *Timeline, th int, t time.Duration) int {
	iv := tl.Threads[th]
	lo, hi := 0, len(iv)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case t < iv[mid].Start:
			hi = mid
		case t >= iv[mid].End:
			lo = mid + 1
		default:
			return iv[mid].Step
		}
	}
	return -1
}
