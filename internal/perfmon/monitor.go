// Package perfmon reproduces the performance-monitoring substrate the paper
// evaluates in §IV:
//
//   - monitors in the style of the Java Application Monitor (JaMON), in
//     three synchronization flavors — a global-mutex monitor (JaMON's
//     synchronized sections, whose updates "were serializing the overall
//     performance of MW"), an atomic-counter monitor, and a per-thread
//     sharded monitor — so the observer effect can be measured rather than
//     suffered;
//
//   - a sampling profiler over thread-state timelines with configurable
//     period, reproducing §IV-B: samplers at 1 s (VisualVM) or 5–10 ms
//     (VTune) against 80–5000 µs work units see only the most severe
//     imbalance and display stale states as false positives;
//
//   - a timeline builder that records ground truth from the engine's
//     instrumentation hooks.
package perfmon

import (
	"sync"
	"sync/atomic"
	"time"
)

// Monitor accumulates named durations reported by multiple workers — the
// JaMON role. Implementations differ only in their synchronization, which
// is exactly what the observer-effect experiment varies.
type Monitor interface {
	// Record adds one observation for a label from a worker.
	Record(worker int, label string, d time.Duration)
	// Total returns the accumulated duration for a label.
	Total(label string) time.Duration
	// Count returns the number of observations for a label.
	Count(label string) int64
	// Name identifies the synchronization flavor.
	Name() string
}

// SyncMonitor guards a shared map with one mutex — the JaMON design. Every
// Record from every worker serializes on the same lock.
type SyncMonitor struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int64
}

// NewSyncMonitor returns an empty synchronized monitor.
func NewSyncMonitor() *SyncMonitor {
	return &SyncMonitor{totals: map[string]time.Duration{}, counts: map[string]int64{}}
}

// Record implements Monitor.
func (m *SyncMonitor) Record(_ int, label string, d time.Duration) {
	m.mu.Lock()
	m.totals[label] += d
	m.counts[label]++
	m.mu.Unlock()
}

// Total implements Monitor.
func (m *SyncMonitor) Total(label string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals[label]
}

// Count implements Monitor.
func (m *SyncMonitor) Count(label string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[label]
}

// Name implements Monitor.
func (m *SyncMonitor) Name() string { return "synchronized" }

// AtomicMonitor keeps one pair of atomic counters per label. Labels must be
// pre-registered so the hot path is lock-free.
type AtomicMonitor struct {
	mu    sync.RWMutex
	slots map[string]*atomicSlot
}

type atomicSlot struct {
	nanos atomic.Int64
	count atomic.Int64
}

// NewAtomicMonitor returns a monitor with the given pre-registered labels.
func NewAtomicMonitor(labels ...string) *AtomicMonitor {
	m := &AtomicMonitor{slots: map[string]*atomicSlot{}}
	for _, l := range labels {
		m.slots[l] = &atomicSlot{}
	}
	return m
}

func (m *AtomicMonitor) slot(label string) *atomicSlot {
	m.mu.RLock()
	s := m.slots[label]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s = m.slots[label]; s == nil {
		s = &atomicSlot{}
		m.slots[label] = s
	}
	return s
}

// Record implements Monitor.
func (m *AtomicMonitor) Record(_ int, label string, d time.Duration) {
	s := m.slot(label)
	s.nanos.Add(int64(d))
	s.count.Add(1)
}

// Total implements Monitor.
func (m *AtomicMonitor) Total(label string) time.Duration {
	return time.Duration(m.slot(label).nanos.Load())
}

// Count implements Monitor.
func (m *AtomicMonitor) Count(label string) int64 { return m.slot(label).count.Load() }

// Name implements Monitor.
func (m *AtomicMonitor) Name() string { return "atomic" }

// ShardedMonitor gives each worker a private shard, padded to a cache line
// to avoid false sharing; reads aggregate across shards. Record is
// contention-free — the design the paper's conclusions call for ("less
// timing-intrusive").
type ShardedMonitor struct {
	mu     sync.RWMutex
	labels map[string]int
	shards [][]paddedSlot // [worker][labelIdx]
}

type paddedSlot struct {
	nanos int64
	count int64
	_     [48]byte // pad to a 64-byte line
}

// NewShardedMonitor creates a monitor for a fixed worker count and label
// set (both must be known up front; that is the price of zero contention).
func NewShardedMonitor(workers int, labels ...string) *ShardedMonitor {
	m := &ShardedMonitor{labels: map[string]int{}}
	for i, l := range labels {
		m.labels[l] = i
	}
	m.shards = make([][]paddedSlot, workers)
	for w := range m.shards {
		m.shards[w] = make([]paddedSlot, len(labels))
	}
	return m
}

// Record implements Monitor. Unknown labels or workers are dropped (the
// fixed layout is the point).
func (m *ShardedMonitor) Record(worker int, label string, d time.Duration) {
	m.mu.RLock()
	idx, ok := m.labels[label]
	m.mu.RUnlock()
	if !ok || worker < 0 || worker >= len(m.shards) {
		return
	}
	s := &m.shards[worker][idx]
	s.nanos += int64(d)
	s.count++
}

// Total implements Monitor.
func (m *ShardedMonitor) Total(label string) time.Duration {
	m.mu.RLock()
	idx, ok := m.labels[label]
	m.mu.RUnlock()
	if !ok {
		return 0
	}
	var n int64
	for w := range m.shards {
		n += m.shards[w][idx].nanos
	}
	return time.Duration(n)
}

// Count implements Monitor.
func (m *ShardedMonitor) Count(label string) int64 {
	m.mu.RLock()
	idx, ok := m.labels[label]
	m.mu.RUnlock()
	if !ok {
		return 0
	}
	var n int64
	for w := range m.shards {
		n += m.shards[w][idx].count
	}
	return n
}

// WorkerTotal returns one worker's accumulated duration for a label.
func (m *ShardedMonitor) WorkerTotal(worker int, label string) time.Duration {
	m.mu.RLock()
	idx, ok := m.labels[label]
	m.mu.RUnlock()
	if !ok {
		return 0
	}
	return time.Duration(m.shards[worker][idx].nanos)
}

// Name implements Monitor.
func (m *ShardedMonitor) Name() string { return "sharded" }

// Stopwatch is JaMON's paired start/stop API over any Monitor: callers
// bracket a region with StartWatch / Stop and the elapsed time lands in the
// monitor under the label.
type Stopwatch struct {
	m      Monitor
	worker int
	label  string
	t0     time.Time
}

// StartWatch begins timing a region for a worker.
func StartWatch(m Monitor, worker int, label string) *Stopwatch {
	return &Stopwatch{m: m, worker: worker, label: label, t0: time.Now()}
}

// Stop records the elapsed time and returns it. Stop is idempotent only in
// the sense that each call records a fresh observation from the same start.
func (s *Stopwatch) Stop() time.Duration {
	d := time.Since(s.t0)
	s.m.Record(s.worker, s.label, d)
	return d
}
