package perfmon

import (
	"strings"
	"testing"
	"time"
)

func twoThreadTimeline() *Timeline {
	// Thread 0 runs the whole horizon; thread 1 runs only the first half.
	return &Timeline{
		Threads: [][]Interval{
			{{Start: 0, End: 100 * time.Millisecond, State: StateRunning, Step: 0}},
			{{Start: 0, End: 50 * time.Millisecond, State: StateRunning, Step: 0}},
		},
		Horizon: 100 * time.Millisecond,
	}
}

func TestThreadViewShape(t *testing.T) {
	out := ThreadView(twoThreadTimeline(), 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("thread 0 should run throughout: %q", lines[0])
	}
	// Thread 1: first 5 buckets running, last 5 waiting.
	row1 := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(row1, "#####") {
		t.Errorf("thread 1 prefix: %q", row1)
	}
	if !strings.Contains(row1, ".....") {
		t.Errorf("thread 1 idle tail missing: %q", row1)
	}
}

func TestThreadViewPartialBucket(t *testing.T) {
	tl := &Timeline{
		Threads: [][]Interval{
			{{Start: 0, End: 3 * time.Millisecond, State: StateRunning}},
		},
		Horizon: 100 * time.Millisecond,
	}
	out := ThreadView(tl, 10)
	// 3ms of a 10ms bucket: '+' (ran some, less than half).
	row := out[strings.Index(out, "|")+1:]
	if row[0] != '+' {
		t.Errorf("partial bucket glyph = %q", row[0])
	}
}

func TestThreadViewDegenerate(t *testing.T) {
	if ThreadView(&Timeline{}, 10) != "" {
		t.Error("empty timeline must render empty")
	}
	if ThreadView(twoThreadTimeline(), 0) != "" {
		t.Error("zero cols must render empty")
	}
}

func TestSampledThreadViewStaleDisplay(t *testing.T) {
	// Thread runs only the first 10ms of 100ms. A 80ms-period sampler
	// samples at t=0 (running) and displays "running" until t=80 — the
	// §IV-B stale-display artifact.
	tl := &Timeline{
		Threads: [][]Interval{
			{{Start: 0, End: 10 * time.Millisecond, State: StateRunning}},
		},
		Horizon: 100 * time.Millisecond,
	}
	out := SampledThreadView(tl, 10, 80*time.Millisecond)
	row := out[strings.Index(out, "|")+1 : strings.LastIndex(out, "|")]
	running := strings.Count(row, "#")
	if running < 7 {
		t.Errorf("stale display shows %d/10 running buckets, want ≥7: %q", running, row)
	}
	// Ground truth shows ~1 bucket running.
	truth := ThreadView(tl, 10)
	trow := truth[strings.Index(truth, "|")+1 : strings.LastIndex(truth, "|")]
	if strings.Count(trow, "#") > 1 {
		t.Errorf("ground truth wrong: %q", trow)
	}
}

func TestSampledThreadViewDegenerate(t *testing.T) {
	if SampledThreadView(twoThreadTimeline(), 10, 0) != "" {
		t.Error("zero period must render empty")
	}
}

func TestRunningTimeClipping(t *testing.T) {
	tl := twoThreadTimeline()
	// Window entirely inside the run.
	if got := runningTime(tl, 0, 10*time.Millisecond, 20*time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("inside window = %v", got)
	}
	// Window straddling the end of thread 1's run.
	if got := runningTime(tl, 1, 40*time.Millisecond, 60*time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("straddling window = %v", got)
	}
	// Window past the run.
	if got := runningTime(tl, 1, 60*time.Millisecond, 80*time.Millisecond); got != 0 {
		t.Errorf("past window = %v", got)
	}
}
