package perfmon

import (
	"math"
	"sync"
	"testing"
	"time"
)

func monitors() []Monitor {
	return []Monitor{
		NewSyncMonitor(),
		NewAtomicMonitor("a", "b"),
		NewShardedMonitor(8, "a", "b"),
	}
}

func TestMonitorsAccumulate(t *testing.T) {
	for _, m := range monitors() {
		m.Record(0, "a", 10*time.Millisecond)
		m.Record(1, "a", 5*time.Millisecond)
		m.Record(2, "b", 1*time.Millisecond)
		if got := m.Total("a"); got != 15*time.Millisecond {
			t.Errorf("%s: Total(a) = %v", m.Name(), got)
		}
		if got := m.Count("a"); got != 2 {
			t.Errorf("%s: Count(a) = %d", m.Name(), got)
		}
		if got := m.Total("b"); got != time.Millisecond {
			t.Errorf("%s: Total(b) = %v", m.Name(), got)
		}
	}
}

func TestMonitorsConcurrentCorrectness(t *testing.T) {
	// Sync and atomic monitors must count exactly under concurrency; the
	// sharded monitor must too as long as each worker uses its own id.
	const workers = 8
	const per = 5000
	for _, m := range monitors() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					m.Record(w, "a", time.Microsecond)
				}
			}()
		}
		wg.Wait()
		if got := m.Count("a"); got != workers*per {
			t.Errorf("%s: Count = %d, want %d", m.Name(), got, workers*per)
		}
		if got := m.Total("a"); got != workers*per*time.Microsecond {
			t.Errorf("%s: Total = %v", m.Name(), got)
		}
	}
}

func TestAtomicMonitorLazyLabel(t *testing.T) {
	m := NewAtomicMonitor()
	m.Record(0, "new", time.Second)
	if m.Total("new") != time.Second {
		t.Error("lazy label lost")
	}
}

func TestShardedMonitorDropsUnknown(t *testing.T) {
	m := NewShardedMonitor(2, "a")
	m.Record(0, "nope", time.Second) // unknown label
	m.Record(9, "a", time.Second)    // out-of-range worker
	if m.Total("nope") != 0 || m.Total("a") != 0 {
		t.Error("sharded monitor accepted invalid records")
	}
	m.Record(1, "a", 2*time.Second)
	if m.WorkerTotal(1, "a") != 2*time.Second || m.WorkerTotal(0, "a") != 0 {
		t.Error("per-worker totals wrong")
	}
	if m.WorkerTotal(0, "nope") != 0 {
		t.Error("unknown label WorkerTotal nonzero")
	}
}

func TestMonitorNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range monitors() {
		names[m.Name()] = true
	}
	for _, want := range []string{"synchronized", "atomic", "sharded"} {
		if !names[want] {
			t.Errorf("missing monitor flavor %q", want)
		}
	}
}

func TestMeasureObserverEffectRuns(t *testing.T) {
	base := MeasureObserverEffect(4, 400, 200, nil)
	if base <= 0 {
		t.Fatal("no wall time measured")
	}
	m := NewSyncMonitor()
	instr := MeasureObserverEffect(4, 400, 200, m)
	if instr <= 0 {
		t.Fatal("no instrumented wall time")
	}
	if m.Count("work") != 400 {
		t.Errorf("recorded %d units, want 400", m.Count("work"))
	}
}

func TestSyntheticTimelineShape(t *testing.T) {
	tl := Synthetic(SyntheticConfig{Threads: 4, Steps: 50, MeanTask: time.Millisecond, Seed: 1})
	if len(tl.Threads) != 4 || len(tl.PhaseSpans) != 50 {
		t.Fatalf("timeline shape %d threads, %d spans", len(tl.Threads), len(tl.PhaseSpans))
	}
	if tl.Horizon <= 0 {
		t.Fatal("zero horizon")
	}
	// Spans tile the horizon without overlap.
	var prevEnd time.Duration
	for i, p := range tl.PhaseSpans {
		if p.Start < prevEnd {
			t.Fatalf("span %d overlaps previous", i)
		}
		if p.End <= p.Start {
			t.Fatalf("span %d empty", i)
		}
		prevEnd = p.End
	}
	// Every 5th step is an imbalance event by default.
	events := tl.TrueImbalancedSteps(0.5)
	if len(events) != 10 {
		t.Errorf("true events = %d, want 10", len(events))
	}
	for _, s := range events {
		if s%5 != 4 {
			t.Errorf("unexpected event step %d", s)
		}
	}
}

func TestStateAt(t *testing.T) {
	tl := &Timeline{
		Threads: [][]Interval{{
			{Start: 0, End: 10, State: StateRunning, Step: 0},
			{Start: 20, End: 30, State: StateRunning, Step: 1},
		}},
		Horizon: 30,
	}
	if tl.StateAt(0, 5) != StateRunning {
		t.Error("t=5 should be running")
	}
	if tl.StateAt(0, 15) != StateWaiting {
		t.Error("t=15 should be waiting")
	}
	if tl.StateAt(0, 25) != StateRunning {
		t.Error("t=25 should be running")
	}
	if tl.StateAt(0, 30) != StateWaiting {
		t.Error("t=30 (past horizon) should be waiting")
	}
}

func TestFineSamplerDetectsWhatCoarseMisses(t *testing.T) {
	// §IV-B's core claim: with 500 µs tasks, a 100 µs sampler sees the
	// imbalance a 10 ms or 1 s sampler misses.
	tl := Synthetic(SyntheticConfig{
		Threads: 4, Steps: 200, MeanTask: 500 * time.Microsecond,
		ImbalanceEvery: 5, ImbalanceFactor: 4, Seed: 2,
	})
	const threshold = 1.0
	fine := Sampler{Period: 100 * time.Microsecond}.Run(tl, threshold)
	coarse := Sampler{Period: 10 * time.Millisecond}.Run(tl, threshold)
	verycoarse := Sampler{Period: time.Second}.Run(tl, threshold)

	if fine.TrueEvents == 0 {
		t.Fatal("synthetic timeline has no true events")
	}
	if fine.DetectionRate() < 0.9 {
		t.Errorf("fine sampler detection rate %v < 0.9", fine.DetectionRate())
	}
	if coarse.DetectionRate() >= fine.DetectionRate() {
		t.Errorf("coarse (%v) not below fine (%v)", coarse.DetectionRate(), fine.DetectionRate())
	}
	if verycoarse.DetectionRate() > 0.2 {
		t.Errorf("1s sampler detected %v of 500µs-scale events", verycoarse.DetectionRate())
	}
}

func TestSamplerRunningFractionConverges(t *testing.T) {
	tl := Synthetic(SyntheticConfig{Threads: 2, Steps: 500, MeanTask: time.Millisecond, ImbalanceEvery: 1000, Seed: 3})
	rep := Sampler{Period: 20 * time.Microsecond}.Run(tl, 1.0)
	for th := range rep.RunningFrac {
		if math.Abs(rep.RunningFrac[th]-rep.TrueRunningFrac[th]) > 0.05 {
			t.Errorf("thread %d: sampled frac %v vs true %v",
				th, rep.RunningFrac[th], rep.TrueRunningFrac[th])
		}
	}
	if rep.Samples == 0 {
		t.Error("no samples taken")
	}
}

func TestSamplerStaleDisplayFalsePositives(t *testing.T) {
	// With skewed launches but NO true imbalance events, a coarse
	// sample-and-hold display still shows imbalance patterns: artifacts.
	tl := Synthetic(SyntheticConfig{
		Threads: 4, Steps: 400, MeanTask: 500 * time.Microsecond,
		ImbalanceEvery: 1 << 30, // never
		Skew:           300 * time.Microsecond,
		Seed:           4,
	})
	rep := Sampler{Period: 5 * time.Millisecond}.Run(tl, 1.0)
	if rep.TrueEvents != 0 {
		t.Fatalf("expected no true events, got %d", rep.TrueEvents)
	}
	if rep.FalsePositives == 0 {
		t.Error("no false positives from stale-state display")
	}
}

func TestSamplerDegenerateInputs(t *testing.T) {
	tl := Synthetic(SyntheticConfig{Threads: 2, Steps: 5, Seed: 5})
	rep := Sampler{Period: 0}.Run(tl, 1.0)
	if rep.Samples != 0 {
		t.Error("zero period must not sample")
	}
}

func TestPhaseSpanImbalance(t *testing.T) {
	p := PhaseSpan{Busy: []time.Duration{time.Second, time.Second, 2 * time.Second, 0}}
	if got := p.Imbalance(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Imbalance = %v, want 1.0", got)
	}
}

func TestStopwatch(t *testing.T) {
	m := NewShardedMonitor(2, "region")
	w := StartWatch(m, 1, "region")
	time.Sleep(2 * time.Millisecond)
	d := w.Stop()
	if d < 2*time.Millisecond {
		t.Errorf("Stop returned %v", d)
	}
	if m.Count("region") != 1 || m.WorkerTotal(1, "region") < 2*time.Millisecond {
		t.Error("stopwatch did not record into monitor")
	}
}

func TestSamplerGapOnlySamplesAreNotFalsePositives(t *testing.T) {
	// Regression: a sample whose running threads all sit in trace gaps
	// (intervals with Step = -1, i.e. work outside any timestep's phase)
	// used to be counted as a false positive even though the display showed
	// no phase at all. Thread 0 runs non-phase work for 10 ms while thread 1
	// waits: an imbalance *pattern*, but not a phase artifact.
	tl := &Timeline{
		Threads: [][]Interval{
			{{Start: 0, End: 10 * time.Millisecond, State: StateRunning, Step: -1}},
			{}, // always waiting
		},
		Horizon: 10 * time.Millisecond,
	}
	rep := Sampler{Period: 4 * time.Millisecond}.Run(tl, 1.0)
	if rep.Samples != 3 {
		t.Fatalf("got %d samples, want 3", rep.Samples)
	}
	if rep.FalsePositives != 0 {
		t.Errorf("gap-only samples produced %d false positives, want 0", rep.FalsePositives)
	}

	// Control: the same shape inside a real (non-event) phase interval must
	// still be flagged as a stale-display false positive.
	tl.Threads[0][0].Step = 7
	rep = Sampler{Period: 4 * time.Millisecond}.Run(tl, 1.0)
	if rep.FalsePositives == 0 {
		t.Error("phase-backed imbalance pattern with no true event must stay a false positive")
	}
}
