package perfmon

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// spinWork burns roughly n arithmetic iterations and returns a value the
// compiler cannot discard.
func spinWork(n int) float64 {
	x := 1.0001
	for i := 0; i < n; i++ {
		x = x*1.0000001 + 0.000001
	}
	return x
}

// spinSink defeats dead-code elimination of spinWork results; written
// atomically since every worker stores into it.
var spinSink atomic.Uint64

// MeasureObserverEffect runs units work units (each ~iters arithmetic
// iterations) split evenly across workers goroutines. If m is non-nil, every
// unit is recorded into it — JaMON-style per-unit instrumentation. The
// returned wall time, compared to an uninstrumented run, quantifies §IV-A's
// observer effect: "synchronized updates to the performance monitors were
// serializing the overall performance of MW".
func MeasureObserverEffect(workers, units, iters int, m Monitor) time.Duration {
	perWorker := units / workers
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var acc float64
			for u := 0; u < perWorker; u++ {
				t0 := time.Now()
				acc += spinWork(iters)
				if m != nil {
					m.Record(w, "work", time.Since(t0))
				}
			}
			spinSink.Store(math.Float64bits(acc))
		}()
	}
	wg.Wait()
	return time.Since(start)
}
