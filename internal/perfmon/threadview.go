package perfmon

import (
	"fmt"
	"strings"
	"time"
)

// ThreadView renders a timeline as one row per thread over cols time
// buckets — the unified per-thread display §IV-C asks for ("A simple way to
// see what method a thread was executing at a given moment for all threads
// would be tremendously helpful"). Each cell shows the thread's dominant
// state in that bucket: '#' running more than half the bucket, '+' running
// some of it, '.' waiting.
func ThreadView(tl *Timeline, cols int) string {
	if cols <= 0 || tl.Horizon <= 0 {
		return ""
	}
	var b strings.Builder
	bucket := tl.Horizon / time.Duration(cols)
	if bucket <= 0 {
		bucket = 1
	}
	for th := range tl.Threads {
		fmt.Fprintf(&b, "thread %d |", th)
		for c := 0; c < cols; c++ {
			lo := time.Duration(c) * bucket
			hi := lo + bucket
			run := runningTime(tl, th, lo, hi)
			switch {
			case run > bucket/2:
				b.WriteByte('#')
			case run > 0:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// SampledThreadView renders what a sample-and-hold tool with the given
// period would DISPLAY for the same timeline — put next to ThreadView it
// makes §IV-B's distortion visible: imbalanced tails vanish or smear across
// whole sampling intervals.
func SampledThreadView(tl *Timeline, cols int, period time.Duration) string {
	if cols <= 0 || tl.Horizon <= 0 || period <= 0 {
		return ""
	}
	var b strings.Builder
	bucket := tl.Horizon / time.Duration(cols)
	if bucket <= 0 {
		bucket = 1
	}
	for th := range tl.Threads {
		fmt.Fprintf(&b, "thread %d |", th)
		for c := 0; c < cols; c++ {
			// The displayed state at bucket center is the state sampled at
			// the latest sample instant before it.
			t := time.Duration(c)*bucket + bucket/2
			sampleAt := t - t%period
			if tl.StateAt(th, sampleAt) == StateRunning {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// runningTime returns how long thread th ran within [lo, hi).
func runningTime(tl *Timeline, th int, lo, hi time.Duration) time.Duration {
	var total time.Duration
	for _, iv := range tl.Threads[th] {
		if iv.State != StateRunning || iv.End <= lo {
			continue
		}
		if iv.Start >= hi {
			break
		}
		s, e := iv.Start, iv.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		total += e - s
	}
	return total
}
