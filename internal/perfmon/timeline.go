package perfmon

import (
	"math/rand"
	"time"

	"mw/internal/core"
	"mw/internal/stats"
)

// State is a thread's scheduling state, the quantity VisualVM's thread view
// displays and §IV-B's samplers sample.
type State int8

const (
	// StateRunning: executing work.
	StateRunning State = iota
	// StateWaiting: parked at a phase barrier.
	StateWaiting
)

// Interval is a half-open [Start, End) span of one state.
type Interval struct {
	Start, End time.Duration
	State      State
	Step       int // timestep the interval belongs to (-1 if none)
}

// Timeline is the ground-truth record of what every thread was doing — the
// information the paper's tools could only approximate by sampling.
type Timeline struct {
	Threads [][]Interval
	Horizon time.Duration
	// PhaseSpans records, per step, the span of the phase instance and the
	// per-thread busy durations in it (for true-imbalance computation).
	PhaseSpans []PhaseSpan
}

// PhaseSpan is one barriered phase instance.
type PhaseSpan struct {
	Step       int
	Start, End time.Duration
	Busy       []time.Duration
}

// Imbalance returns max/mean − 1 of the phase's per-thread busy times.
func (p PhaseSpan) Imbalance() float64 {
	loads := make([]float64, len(p.Busy))
	for i, b := range p.Busy {
		loads[i] = b.Seconds()
	}
	return stats.Imbalance(loads)
}

// StateAt returns thread th's state at time t (Waiting outside any running
// interval).
func (tl *Timeline) StateAt(th int, t time.Duration) State {
	iv := tl.Threads[th]
	lo, hi := 0, len(iv)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case t < iv[mid].Start:
			hi = mid
		case t >= iv[mid].End:
			lo = mid + 1
		default:
			return iv[mid].State
		}
	}
	return StateWaiting
}

// TrueImbalancedSteps lists the steps whose phase imbalance exceeds the
// threshold — ground truth for the sampler-detection experiment.
func (tl *Timeline) TrueImbalancedSteps(threshold float64) []int {
	var out []int
	for _, p := range tl.PhaseSpans {
		if p.Imbalance() > threshold {
			out = append(out, p.Step)
		}
	}
	return out
}

// SyntheticConfig builds a ground-truth timeline shaped like parallel MW's
// force phase: per step, each thread runs a task of roughly MeanTask, then
// waits at the barrier for the slowest. A fraction of steps inflate one
// thread's task (an imbalance event); launch skew delays task starts.
type SyntheticConfig struct {
	Threads int
	Steps   int
	// MeanTask is the typical per-thread task duration (the paper: "the
	// typical work load in MW takes between 80 and 5000 microseconds").
	MeanTask time.Duration
	// Jitter is the relative sigma of task durations (default 0.1).
	Jitter float64
	// ImbalanceEvery makes every k-th step an imbalance event in which one
	// thread's task is inflated by ImbalanceFactor (default 5 / 3.0).
	ImbalanceEvery  int
	ImbalanceFactor float64
	// Skew delays each thread's task start by up to this much (queue skew,
	// §IV-B).
	Skew time.Duration
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.MeanTask <= 0 {
		c.MeanTask = 500 * time.Microsecond
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.ImbalanceEvery <= 0 {
		c.ImbalanceEvery = 5
	}
	if c.ImbalanceFactor == 0 {
		c.ImbalanceFactor = 3
	}
	return c
}

// Synthetic generates the ground-truth timeline.
func Synthetic(cfg SyntheticConfig) *Timeline {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tl := &Timeline{Threads: make([][]Interval, cfg.Threads)}
	var now time.Duration
	for step := 0; step < cfg.Steps; step++ {
		span := PhaseSpan{Step: step, Start: now, Busy: make([]time.Duration, cfg.Threads)}
		victim := -1
		if step%cfg.ImbalanceEvery == cfg.ImbalanceEvery-1 {
			victim = rng.Intn(cfg.Threads)
		}
		var phaseEnd time.Duration
		starts := make([]time.Duration, cfg.Threads)
		ends := make([]time.Duration, cfg.Threads)
		for th := 0; th < cfg.Threads; th++ {
			d := time.Duration(float64(cfg.MeanTask) * (1 + cfg.Jitter*rng.NormFloat64()))
			if d < cfg.MeanTask/10 {
				d = cfg.MeanTask / 10
			}
			if th == victim {
				d = time.Duration(float64(d) * cfg.ImbalanceFactor)
			}
			var skew time.Duration
			if cfg.Skew > 0 {
				skew = time.Duration(rng.Int63n(int64(cfg.Skew)))
			}
			starts[th] = now + skew
			ends[th] = starts[th] + d
			span.Busy[th] = d
			if ends[th] > phaseEnd {
				phaseEnd = ends[th]
			}
		}
		for th := 0; th < cfg.Threads; th++ {
			tl.Threads[th] = append(tl.Threads[th],
				Interval{Start: starts[th], End: ends[th], State: StateRunning, Step: step})
		}
		span.End = phaseEnd
		tl.PhaseSpans = append(tl.PhaseSpans, span)
		now = phaseEnd
	}
	tl.Horizon = now
	return tl
}

// Recorder builds a ground-truth timeline from real engine runs: it
// implements core.Instrument, mapping each force-phase instance to a
// PhaseSpan with the engine's measured per-worker busy times.
type Recorder struct {
	Phase core.Phase // which phase to record (typically PhaseForce)
	tl    Timeline
	now   time.Duration
}

// NewRecorder records the given phase.
func NewRecorder(ph core.Phase, workers int) *Recorder {
	r := &Recorder{Phase: ph}
	r.tl.Threads = make([][]Interval, workers)
	return r
}

// PhaseDone implements core.Instrument.
func (r *Recorder) PhaseDone(step int, ph core.Phase, wall time.Duration, busy []time.Duration) {
	if ph != r.Phase {
		return
	}
	span := PhaseSpan{Step: step, Start: r.now, End: r.now + wall, Busy: append([]time.Duration(nil), busy...)}
	for th := range r.tl.Threads {
		b := busy[th%len(busy)]
		r.tl.Threads[th] = append(r.tl.Threads[th],
			Interval{Start: r.now, End: r.now + b, State: StateRunning, Step: step})
	}
	r.tl.PhaseSpans = append(r.tl.PhaseSpans, span)
	r.now += wall
	r.tl.Horizon = r.now
}

// Timeline returns the recorded ground truth.
func (r *Recorder) Timeline() *Timeline { return &r.tl }
