package ewald

import (
	"fmt"
	"math"

	"mw/internal/atom"
	"mw/internal/fft"
	"mw/internal/units"
	"mw/internal/vec"
)

// PME is the smooth particle-mesh Ewald method: the real-space and self
// terms are identical to the classical Ewald sum, but the reciprocal term is
// evaluated by B-spline charge spreading onto a mesh, a 3D FFT convolution
// with the Ewald influence function, and force interpolation through the
// analytic derivative of the same splines — O(N log N) instead of the O(N²)
// direct Coulomb sum.
type PME struct {
	Alpha float64
	RCut  float64
	// Mesh is the grid size per dimension (power of two).
	Mesh int
	// Order is the B-spline interpolation order (default 4, cubic).
	Order int
}

// bspline evaluates the cardinal B-spline M_n at u (support (0, n)).
func bspline(n int, u float64) float64 {
	if u <= 0 || u >= float64(n) {
		return 0
	}
	if n == 2 {
		return 1 - math.Abs(u-1)
	}
	nf := float64(n)
	return u/(nf-1)*bspline(n-1, u) + (nf-u)/(nf-1)*bspline(n-1, u-1)
}

// bsplineDeriv evaluates M_n'(u) = M_{n-1}(u) − M_{n-1}(u−1).
func bsplineDeriv(n int, u float64) float64 {
	return bspline(n-1, u) - bspline(n-1, u-1)
}

// bMod2 returns |b(m)|² for the SPME Euler exponential spline factor of one
// dimension: b(m) = exp(2πi(n−1)m/K) / Σ_{k=0}^{n−2} M_n(k+1)·exp(2πi·mk/K).
// Returns 0 where the denominator vanishes (odd harmonics at m = K/2 for
// even order), which simply drops those (already tiny) terms.
func bMod2(n, m, k int) float64 {
	var dRe, dIm float64
	for j := 0; j <= n-2; j++ {
		w := bspline(n, float64(j+1))
		ang := 2 * math.Pi * float64(m) * float64(j) / float64(k)
		sin, cos := math.Sincos(ang)
		dRe += w * cos
		dIm += w * sin
	}
	den := dRe*dRe + dIm*dIm
	if den < 1e-10 {
		return 0
	}
	return 1 / den
}

// Accumulate adds the PME forces into f and returns the total electrostatic
// energy.
func (p PME) Accumulate(s *atom.System, f []vec.Vec3) (float64, error) {
	order := p.Order
	if order == 0 {
		order = 4
	}
	if order < 3 {
		return 0, fmt.Errorf("ewald: PME order must be ≥ 3")
	}
	e := Ewald{Alpha: p.Alpha, RCut: p.RCut, KMax: 1}
	l, err := e.check(s)
	if err != nil {
		return 0, err
	}
	if p.Mesh <= 0 || p.Mesh&(p.Mesh-1) != 0 {
		return 0, fmt.Errorf("ewald: PME mesh %d is not a power of two", p.Mesh)
	}
	k := p.Mesh

	pe := realSpace(s, p.Alpha, p.RCut, f)
	pe += selfEnergy(s, p.Alpha)

	mesh, err := fft.NewMesh3D(k, k, k)
	if err != nil {
		return 0, err
	}

	charged := s.ChargedIndices()
	type spread struct {
		base [3]int
		w    [3][]float64 // weights per dim
		dw   [3][]float64 // weight derivatives per dim (d/du)
	}
	sp := make([]spread, len(charged))
	scale := float64(k) / l
	for ci, i := range charged {
		pos := s.Box.Wrap(s.Pos[i])
		u := [3]float64{pos.X * scale, pos.Y * scale, pos.Z * scale}
		for d := 0; d < 3; d++ {
			b := int(math.Floor(u[d]))
			sp[ci].base[d] = b
			sp[ci].w[d] = make([]float64, order)
			sp[ci].dw[d] = make([]float64, order)
			for j := 0; j < order; j++ {
				// Grid point g = b − order + 1 + j; spline argument u − g.
				arg := u[d] - float64(b-order+1+j)
				sp[ci].w[d][j] = bspline(order, arg)
				sp[ci].dw[d][j] = bsplineDeriv(order, arg)
			}
		}
		// Spread the charge.
		q := s.Charge[i]
		for jz := 0; jz < order; jz++ {
			gz := mod(sp[ci].base[2]-order+1+jz, k)
			wz := sp[ci].w[2][jz]
			for jy := 0; jy < order; jy++ {
				gy := mod(sp[ci].base[1]-order+1+jy, k)
				wyz := wz * sp[ci].w[1][jy]
				for jx := 0; jx < order; jx++ {
					gx := mod(sp[ci].base[0]-order+1+jx, k)
					idx := mesh.Index(gx, gy, gz)
					mesh.Data[idx] += complex(q*wyz*sp[ci].w[0][jx], 0)
				}
			}
		}
	}

	if err := mesh.Transform(false); err != nil {
		return 0, err
	}

	// Multiply by the influence function:
	// G(m) = exp(-π²·m̄²/α²) / (π·V·m̄²) · B(m), energy = ke/2·Σ G|Q̂|².
	vol := l * l * l
	bx := make([]float64, k)
	for m := 0; m < k; m++ {
		bx[m] = bMod2(order, m, k)
	}
	var recipE float64
	for mz := 0; mz < k; mz++ {
		fz := signedFreq(mz, k) / l
		for my := 0; my < k; my++ {
			fy := signedFreq(my, k) / l
			for mx := 0; mx < k; mx++ {
				idx := mesh.Index(mx, my, mz)
				if mx == 0 && my == 0 && mz == 0 {
					mesh.Data[idx] = 0
					continue
				}
				fx := signedFreq(mx, k) / l
				m2 := fx*fx + fy*fy + fz*fz
				b := bx[mx] * bx[my] * bx[mz]
				g := math.Exp(-math.Pi*math.Pi*m2/(p.Alpha*p.Alpha)) / (math.Pi * vol * m2) * b
				q := mesh.Data[idx]
				recipE += 0.5 * units.CoulombK * g * (real(q)*real(q) + imag(q)*imag(q))
				mesh.Data[idx] = q * complex(g, 0)
			}
		}
	}
	pe += recipE

	// Back-transform to the convolved potential mesh.
	if err := mesh.Transform(true); err != nil {
		return 0, err
	}
	// The inverse FFT applied 1/K³ normalization, but the convolution
	// theorem for this discrete sum wants the raw inverse sum.
	norm := float64(k * k * k)

	// Interpolate forces: F_i = −ke·q_i·∇_i Σ w(r_i)·φ(g).
	for ci, i := range charged {
		q := s.Charge[i]
		var grad vec.Vec3
		for jz := 0; jz < order; jz++ {
			gz := mod(sp[ci].base[2]-order+1+jz, k)
			wz, dz := sp[ci].w[2][jz], sp[ci].dw[2][jz]
			for jy := 0; jy < order; jy++ {
				gy := mod(sp[ci].base[1]-order+1+jy, k)
				wy, dy := sp[ci].w[1][jy], sp[ci].dw[1][jy]
				for jx := 0; jx < order; jx++ {
					gx := mod(sp[ci].base[0]-order+1+jx, k)
					wx, dx := sp[ci].w[0][jx], sp[ci].dw[0][jx]
					phi := real(mesh.Data[mesh.Index(gx, gy, gz)]) * norm
					grad.X += dx * wy * wz * phi
					grad.Y += wx * dy * wz * phi
					grad.Z += wx * wy * dz * phi
				}
			}
		}
		// d/dr = (K/L)·d/du; E couples each charge twice through |Q̂|² but
		// G is symmetric, so the factor 2·(ke/2) = ke.
		f[i] = f[i].AddScaled(-units.CoulombK*q*scale, grad)
	}
	return pe, nil
}

// Energy returns the PME energy without touching forces.
func (p PME) Energy(s *atom.System) (float64, error) {
	f := make([]vec.Vec3, s.N())
	return p.Accumulate(s, f)
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// signedFreq maps FFT bin m of K to the signed frequency index in
// [−K/2, K/2).
func signedFreq(m, k int) float64 {
	if m > k/2 {
		return float64(m - k)
	}
	return float64(m)
}
