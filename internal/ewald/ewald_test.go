package ewald

import (
	"math"
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/units"
	"mw/internal/vec"
)

// rockSalt builds an n³-ion periodic NaCl lattice with nearest-neighbor
// spacing a (n must be even for charge neutrality).
func rockSalt(n int, a float64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(float64(n)*a, true))
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				p := vec.New(float64(x)*a, float64(y)*a, float64(z)*a)
				if (x+y+z)%2 == 0 {
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				} else {
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				}
			}
		}
	}
	return s
}

// randomIons builds a neutral random configuration of n ions (n even) with
// a minimum separation to keep energies tame.
func randomIons(seed int64, n int, l float64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, true))
	rng := rand.New(rand.NewSource(seed))
	for len(s.Pos) < n {
		p := vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		ok := true
		for _, q := range s.Pos {
			if s.Box.MinImage(q.Sub(p)).Norm() < 1.5 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		q := 1.0
		if len(s.Pos)%2 == 1 {
			q = -1
		}
		s.AddAtom(atom.Na, p, vec.Zero, q, false)
	}
	return s
}

func converged(l float64) Ewald {
	return Ewald{Alpha: 6 / l, RCut: 0.4999 * l, KMax: 8}
}

func TestMadelungConstant(t *testing.T) {
	// Total lattice energy per ion of rock salt is −M·k_e·q²/(2a)·2 =
	// E_i/2 with E_i = −M k_e q²/a and Madelung constant M = 1.747565.
	const a = 2.82
	s := rockSalt(4, a)
	e := converged(s.Box.L.X)
	pe, err := e.Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	perIon := pe / float64(s.N())
	want := -1.747565 * units.CoulombK / (2 * a)
	if rel := math.Abs(perIon-want) / math.Abs(want); rel > 1e-3 {
		t.Errorf("Madelung energy per ion %v, want %v (rel err %v)", perIon, want, rel)
	}
}

func TestMadelungConvergesWithSize(t *testing.T) {
	// The per-ion energy must be nearly identical for 4³ and 6³ lattices
	// (the Ewald sum handles the infinite periodic images).
	const a = 2.82
	e4 := converged(4 * a)
	pe4, err := e4.Energy(rockSalt(4, a))
	if err != nil {
		t.Fatal(err)
	}
	s6 := rockSalt(6, a)
	e6 := converged(6 * a)
	pe6, err := e6.Energy(s6)
	if err != nil {
		t.Fatal(err)
	}
	p4, p6 := pe4/64, pe6/216
	if math.Abs(p4-p6)/math.Abs(p6) > 1e-3 {
		t.Errorf("per-ion energy not size-converged: %v vs %v", p4, p6)
	}
}

func TestEwaldParameterIndependence(t *testing.T) {
	// The total must be (nearly) independent of the alpha split.
	s := randomIons(1, 16, 14)
	e1 := Ewald{Alpha: 0.35, RCut: 7, KMax: 8}
	e2 := Ewald{Alpha: 0.55, RCut: 7, KMax: 10}
	p1, err := e1.Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e2.Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2)/math.Abs(p1) > 1e-3 {
		t.Errorf("alpha dependence: %v vs %v", p1, p2)
	}
}

func TestEwaldForcesMatchNumericalGradient(t *testing.T) {
	s := randomIons(2, 8, 12)
	e := Ewald{Alpha: 0.5, RCut: 6, KMax: 8}
	f := make([]vec.Vec3, s.N())
	if _, err := e.Accumulate(s, f); err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for i := 0; i < s.N(); i++ {
		var want vec.Vec3
		for d := 0; d < 3; d++ {
			orig := s.Pos[i]
			bump := func(delta float64) float64 {
				p := orig
				switch d {
				case 0:
					p.X += delta
				case 1:
					p.Y += delta
				case 2:
					p.Z += delta
				}
				s.Pos[i] = p
				pe, err := e.Energy(s)
				if err != nil {
					t.Fatal(err)
				}
				s.Pos[i] = orig
				return pe
			}
			g := -(bump(h) - bump(-h)) / (2 * h)
			switch d {
			case 0:
				want.X = g
			case 1:
				want.Y = g
			case 2:
				want.Z = g
			}
		}
		if !f[i].ApproxEqual(want, 1e-4*(1+want.Norm())) {
			t.Errorf("ion %d: analytic %v vs numeric %v", i, f[i], want)
		}
	}
}

func TestEwaldNewtonThirdLaw(t *testing.T) {
	s := randomIons(3, 20, 16)
	e := Ewald{Alpha: 0.4, RCut: 8, KMax: 8}
	f := make([]vec.Vec3, s.N())
	if _, err := e.Accumulate(s, f); err != nil {
		t.Fatal(err)
	}
	var sum vec.Vec3
	for _, fi := range f {
		sum = sum.Add(fi)
	}
	if sum.Norm() > 1e-8 {
		t.Errorf("net Ewald force = %v", sum)
	}
}

func TestEwaldValidation(t *testing.T) {
	open := atom.NewSystem(atom.CubicBox(10, false))
	if _, err := (Ewald{Alpha: 0.4, RCut: 4, KMax: 4}).Energy(open); err == nil {
		t.Error("non-periodic box accepted")
	}
	rect := atom.NewSystem(atom.NewBox(10, 12, 10, true))
	if _, err := (Ewald{Alpha: 0.4, RCut: 4, KMax: 4}).Energy(rect); err == nil {
		t.Error("non-cubic box accepted")
	}
	cube := atom.NewSystem(atom.CubicBox(10, true))
	if _, err := (Ewald{Alpha: 0.4, RCut: 9, KMax: 4}).Energy(cube); err == nil {
		t.Error("RCut > L/2 accepted")
	}
	if _, err := (Ewald{Alpha: 0, RCut: 4, KMax: 4}).Energy(cube); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestPMEEnergyMatchesEwald(t *testing.T) {
	s := randomIons(4, 32, 16)
	ref, err := (Ewald{Alpha: 0.45, RCut: 7.5, KMax: 12}).Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	pme, err := (PME{Alpha: 0.45, RCut: 7.5, Mesh: 32, Order: 4}).Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pme-ref) / math.Abs(ref); rel > 2e-3 {
		t.Errorf("PME energy %v vs Ewald %v (rel err %v)", pme, ref, rel)
	}
}

func TestPMEForcesMatchEwald(t *testing.T) {
	s := randomIons(5, 24, 16)
	fRef := make([]vec.Vec3, s.N())
	if _, err := (Ewald{Alpha: 0.45, RCut: 7.5, KMax: 12}).Accumulate(s, fRef); err != nil {
		t.Fatal(err)
	}
	fPME := make([]vec.Vec3, s.N())
	if _, err := (PME{Alpha: 0.45, RCut: 7.5, Mesh: 32, Order: 4}).Accumulate(s, fPME); err != nil {
		t.Fatal(err)
	}
	var scale float64
	for _, fr := range fRef {
		if n := fr.Norm(); n > scale {
			scale = n
		}
	}
	for i := range fRef {
		if d := fPME[i].Sub(fRef[i]).Norm(); d > 0.02*scale {
			t.Errorf("ion %d: PME force %v vs Ewald %v (err %v of scale %v)",
				i, fPME[i], fRef[i], d, scale)
		}
	}
}

func TestPMEMadelung(t *testing.T) {
	const a = 2.82
	s := rockSalt(4, a)
	l := s.Box.L.X
	pme := PME{Alpha: 6 / l, RCut: l / 2, Mesh: 32, Order: 4}
	pe, err := pme.Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	perIon := pe / float64(s.N())
	want := -1.747565 * units.CoulombK / (2 * a)
	if rel := math.Abs(perIon-want) / math.Abs(want); rel > 5e-3 {
		t.Errorf("PME Madelung per ion %v, want %v (rel %v)", perIon, want, rel)
	}
}

func TestPMEMeshRefinementConverges(t *testing.T) {
	s := randomIons(6, 16, 14)
	ref, err := (Ewald{Alpha: 0.5, RCut: 7, KMax: 12}).Energy(s)
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = math.Inf(1)
	for _, mesh := range []int{8, 16, 32} {
		pe, err := (PME{Alpha: 0.5, RCut: 7, Mesh: mesh, Order: 4}).Energy(s)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(pe - ref)
		if e > prevErr*1.5 {
			t.Errorf("mesh %d error %v worse than coarser mesh %v", mesh, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 1e-3*math.Abs(ref) {
		t.Errorf("finest mesh error %v still large", prevErr)
	}
}

func TestPMEValidation(t *testing.T) {
	s := randomIons(7, 8, 12)
	if _, err := (PME{Alpha: 0.5, RCut: 5, Mesh: 24, Order: 4}).Energy(s); err == nil {
		t.Error("non-power-of-two mesh accepted")
	}
	if _, err := (PME{Alpha: 0.5, RCut: 5, Mesh: 16, Order: 2}).Energy(s); err == nil {
		t.Error("order 2 accepted")
	}
}

func TestBsplinePartitionOfUnity(t *testing.T) {
	// Σ_j M_n(u+j) over integer shifts is 1 for any u — the property that
	// makes spreading conserve charge.
	for _, n := range []int{3, 4, 5} {
		for u := 0.05; u < 1; u += 0.1 {
			var sum float64
			for j := 0; j < n; j++ {
				sum += bspline(n, u+float64(j))
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("order %d: partition of unity = %v at u=%v", n, sum, u)
			}
		}
	}
}

func TestBsplineDerivative(t *testing.T) {
	const h = 1e-6
	for _, n := range []int{3, 4} {
		for u := 0.3; u < float64(n); u += 0.37 {
			want := (bspline(n, u+h) - bspline(n, u-h)) / (2 * h)
			got := bsplineDeriv(n, u)
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("M_%d'(%v) = %v, want %v", n, u, got, want)
			}
		}
	}
}

func TestSignedFreq(t *testing.T) {
	if signedFreq(0, 8) != 0 || signedFreq(3, 8) != 3 || signedFreq(5, 8) != -3 || signedFreq(7, 8) != -1 {
		t.Error("signedFreq mapping wrong")
	}
}

// randomCharged builds a neutral random system with heterogeneous charge
// magnitudes — unlike randomIons' ±1 pattern, this exercises the PME charge
// spreading with non-uniform weights.
func randomCharged(seed int64, n int, l float64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, true))
	rng := rand.New(rand.NewSource(seed))
	var total float64
	for len(s.Pos) < n {
		p := vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		ok := true
		for _, q := range s.Pos {
			if s.Box.MinImage(q.Sub(p)).Norm() < 1.5 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		q := 0.2 + 1.6*rng.Float64()
		if rng.Intn(2) == 1 {
			q = -q
		}
		if len(s.Pos) == n-1 {
			q = -total // force exact neutrality on the last ion
		}
		total += q
		s.AddAtom(atom.Na, p, vec.Zero, q, false)
	}
	return s
}

// TestPMEAccuracyRandomCharges is the accuracy gate over seeded random
// charged systems: PME energy within 2e-3 relative and every per-ion force
// within 2% of the force scale of a well-converged direct Ewald sum.
func TestPMEAccuracyRandomCharges(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		s := randomCharged(seed, 28, 16)
		var net float64
		for _, q := range s.Charge {
			net += q
		}
		if math.Abs(net) > 1e-12 {
			t.Fatalf("seed %d: system not neutral (%g)", seed, net)
		}

		fRef := make([]vec.Vec3, s.N())
		ref, err := (Ewald{Alpha: 0.45, RCut: 7.5, KMax: 12}).Accumulate(s, fRef)
		if err != nil {
			t.Fatal(err)
		}
		fPME := make([]vec.Vec3, s.N())
		pme, err := (PME{Alpha: 0.45, RCut: 7.5, Mesh: 32, Order: 4}).Accumulate(s, fPME)
		if err != nil {
			t.Fatal(err)
		}

		if rel := math.Abs(pme-ref) / math.Abs(ref); rel > 2e-3 {
			t.Errorf("seed %d: PME energy %v vs Ewald %v (rel err %v)", seed, pme, ref, rel)
		}
		var scale float64
		for _, fr := range fRef {
			if norm := fr.Norm(); norm > scale {
				scale = norm
			}
		}
		for i := range fRef {
			if d := fPME[i].Sub(fRef[i]).Norm(); d > 0.02*scale {
				t.Errorf("seed %d ion %d: PME force %v vs Ewald %v (err %v of scale %v)",
					seed, i, fPME[i], fRef[i], d, scale)
			}
		}
	}
}
