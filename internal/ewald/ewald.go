// Package ewald implements periodic electrostatics for cubic boxes: the
// classical Ewald summation and the smooth particle-mesh Ewald (SPME)
// method of Darden et al. — the O(N log N) algorithm the paper names as the
// future-work replacement for Molecular Workbench's O(N²) direct Coulomb
// sum ("A particle-mesh-Ewald method would have lower algorithmic
// complexity … but its use is a future work direction due to its
// implementation complexity", §II-B).
package ewald

import (
	"fmt"
	"math"

	"mw/internal/atom"
	"mw/internal/units"
	"mw/internal/vec"
)

// Ewald is the classical Ewald sum: a short-range erfc-screened real-space
// part, a reciprocal-space sum over k-vectors, and the self-energy
// correction.
type Ewald struct {
	// Alpha is the splitting parameter in 1/Å; larger alpha shifts work
	// from real to reciprocal space.
	Alpha float64
	// RCut is the real-space cutoff in Å (must be < L/2).
	RCut float64
	// KMax bounds the reciprocal sum: all integer vectors |n_d| ≤ KMax.
	KMax int
}

// check validates the method against the system's box.
func (e Ewald) check(s *atom.System) (float64, error) {
	b := s.Box
	if !b.Periodic {
		return 0, fmt.Errorf("ewald: box must be periodic")
	}
	if b.L.X != b.L.Y || b.L.Y != b.L.Z {
		return 0, fmt.Errorf("ewald: box must be cubic")
	}
	if e.RCut <= 0 || e.RCut > b.L.X/2 {
		return 0, fmt.Errorf("ewald: RCut %g outside (0, L/2]", e.RCut)
	}
	if e.Alpha <= 0 || e.KMax < 1 {
		return 0, fmt.Errorf("ewald: need positive Alpha and KMax")
	}
	return b.L.X, nil
}

// realSpace accumulates the erfc-screened pair part shared by Ewald and PME.
func realSpace(s *atom.System, alpha, rcut float64, f []vec.Vec3) float64 {
	var pe float64
	r2cut := rcut * rcut
	charged := s.ChargedIndices()
	twoAlphaPi := 2 * alpha / math.Sqrt(math.Pi)
	for ci, i := range charged {
		pi := s.Pos[i]
		qi := s.Charge[i]
		for _, j := range charged[ci+1:] {
			d := s.Box.MinImage(s.Pos[j].Sub(pi))
			r2 := d.Norm2()
			if r2 >= r2cut || r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			qq := units.CoulombK * qi * s.Charge[j]
			erfcT := math.Erfc(alpha * r)
			pe += qq * erfcT / r
			fs := qq * (erfcT/r + twoAlphaPi*math.Exp(-alpha*alpha*r2)) / r2
			f[i] = f[i].AddScaled(-fs, d)
			f[j] = f[j].AddScaled(fs, d)
		}
	}
	return pe
}

// selfEnergy is the Ewald self-interaction correction.
func selfEnergy(s *atom.System, alpha float64) float64 {
	var q2 float64
	for _, q := range s.Charge {
		q2 += q * q
	}
	return -units.CoulombK * alpha / math.Sqrt(math.Pi) * q2
}

// Accumulate adds the full Ewald forces into f and returns the total
// electrostatic energy (real + reciprocal + self).
func (e Ewald) Accumulate(s *atom.System, f []vec.Vec3) (float64, error) {
	l, err := e.check(s)
	if err != nil {
		return 0, err
	}
	pe := realSpace(s, e.Alpha, e.RCut, f)
	pe += selfEnergy(s, e.Alpha)

	vol := l * l * l
	twoPiOverL := 2 * math.Pi / l
	charged := s.ChargedIndices()
	inv4a2 := 1 / (4 * e.Alpha * e.Alpha)

	for nx := -e.KMax; nx <= e.KMax; nx++ {
		for ny := -e.KMax; ny <= e.KMax; ny++ {
			for nz := -e.KMax; nz <= e.KMax; nz++ {
				if nx == 0 && ny == 0 && nz == 0 {
					continue
				}
				k := vec.New(float64(nx), float64(ny), float64(nz)).Scale(twoPiOverL)
				k2 := k.Norm2()
				a := math.Exp(-k2*inv4a2) / k2
				// Structure factor S(k) = Σ q_j exp(i k·r_j).
				var sRe, sIm float64
				for _, j := range charged {
					ph := k.Dot(s.Pos[j])
					sin, cos := math.Sincos(ph)
					sRe += s.Charge[j] * cos
					sIm += s.Charge[j] * sin
				}
				pe += units.CoulombK * (2 * math.Pi / vol) * a * (sRe*sRe + sIm*sIm)
				coef := units.CoulombK * (4 * math.Pi / vol) * a
				for _, j := range charged {
					ph := k.Dot(s.Pos[j])
					sin, cos := math.Sincos(ph)
					// Im(conj(S)·e^{ik·r_j}) = sin·S_re − cos·S_im.
					im := sin*sRe - cos*sIm
					f[j] = f[j].AddScaled(coef*s.Charge[j]*im, k)
				}
			}
		}
	}
	return pe, nil
}

// Energy returns the total electrostatic energy without touching forces.
func (e Ewald) Energy(s *atom.System) (float64, error) {
	f := make([]vec.Vec3, s.N())
	return e.Accumulate(s, f)
}
