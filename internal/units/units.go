// Package units defines the unit system and physical constants used by the
// molecular dynamics engine.
//
// The engine works in the "MD natural" unit system commonly used for
// atomistic simulation of the Molecular Workbench scale:
//
//	length  Å   (1e-10 m)
//	time    fs  (1e-15 s)
//	mass    amu (atomic mass unit)
//	energy  eV
//	charge  e   (elementary charge)
//
// These are not mutually consistent, so force/mass → acceleration and
// velocity² → kinetic-energy conversions require the factors below.
package units

import "math"

// Fundamental constants in the engine unit system.
const (
	// Boltzmann is the Boltzmann constant k_B in eV/K.
	Boltzmann = 8.617333262e-5

	// CoulombK is Coulomb's constant k_e = 1/(4πϵ0) in eV·Å/e².
	// F = CoulombK * q1*q2 / r²  [eV/Å] with q in e and r in Å.
	CoulombK = 14.399645

	// ForceToAccel converts force/mass in (eV/Å)/amu to acceleration in Å/fs².
	// 1 eV/(Å·amu) = 9.648533…e-3 Å/fs².
	ForceToAccel = 9.64853329e-3

	// KEFactor converts amu·(Å/fs)² to eV: E_k = KEFactor * ½ m v².
	// It is the reciprocal of ForceToAccel.
	KEFactor = 1.0 / ForceToAccel
)

// Time conversions.
const (
	Femtosecond = 1.0
	Picosecond  = 1000.0 * Femtosecond
)

// KineticEnergy returns the kinetic energy in eV of mass m (amu) moving with
// squared speed v2 ((Å/fs)²).
func KineticEnergy(m, v2 float64) float64 {
	return 0.5 * m * v2 * KEFactor
}

// Acceleration returns the acceleration in Å/fs² produced by force f (eV/Å)
// acting on mass m (amu).
func Acceleration(f, m float64) float64 {
	return f / m * ForceToAccel
}

// TemperatureFromKE returns the instantaneous temperature in K of a system
// with total kinetic energy ke (eV) and ndof kinetic degrees of freedom.
func TemperatureFromKE(ke float64, ndof int) float64 {
	if ndof <= 0 {
		return 0
	}
	return 2 * ke / (float64(ndof) * Boltzmann)
}

// ThermalSpeed returns the RMS thermal speed in Å/fs of a particle of mass m
// (amu) at temperature T (K): v_rms = sqrt(3 k_B T / m) with unit conversion.
func ThermalSpeed(m, T float64) float64 {
	if m <= 0 || T <= 0 {
		return 0
	}
	// ½ m v² KEFactor = 3/2 k_B T  ⇒  v = sqrt(3 k_B T / (m KEFactor))
	return math.Sqrt(3 * Boltzmann * T / (m * KEFactor))
}
