package units

import (
	"math"
	"testing"
)

func TestForceToAccelReciprocal(t *testing.T) {
	if math.Abs(ForceToAccel*KEFactor-1) > 1e-12 {
		t.Errorf("ForceToAccel * KEFactor = %v, want 1", ForceToAccel*KEFactor)
	}
}

func TestKineticEnergy(t *testing.T) {
	// 1 amu at 1 Å/fs: E = ½ * KEFactor eV.
	got := KineticEnergy(1, 1)
	want := 0.5 * KEFactor
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("KineticEnergy = %v, want %v", got, want)
	}
	if KineticEnergy(2, 0) != 0 {
		t.Error("zero speed should have zero KE")
	}
}

func TestAcceleration(t *testing.T) {
	// F = 1 eV/Å on m = 1 amu.
	got := Acceleration(1, 1)
	if math.Abs(got-ForceToAccel) > 1e-15 {
		t.Errorf("Acceleration = %v, want %v", got, ForceToAccel)
	}
	// Doubling mass halves acceleration.
	if math.Abs(Acceleration(1, 2)*2-got) > 1e-15 {
		t.Error("acceleration not inversely proportional to mass")
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	// A system with N atoms at temperature T has KE = 3/2 N k_B T.
	const n = 100
	const T = 300.0
	ke := 1.5 * float64(3*n) / 3 * Boltzmann * T // 3N dof
	got := TemperatureFromKE(ke, 3*n)
	if math.Abs(got-T) > 1e-9 {
		t.Errorf("TemperatureFromKE round trip = %v, want %v", got, T)
	}
	if TemperatureFromKE(1, 0) != 0 {
		t.Error("zero dof must give zero temperature")
	}
}

func TestThermalSpeed(t *testing.T) {
	// Round trip: KE of one atom moving at v_rms equals 3/2 k_B T.
	const m, T = 39.95, 300.0 // argon at room temperature
	v := ThermalSpeed(m, T)
	ke := KineticEnergy(m, v*v)
	want := 1.5 * Boltzmann * T
	if math.Abs(ke-want) > 1e-12 {
		t.Errorf("KE at thermal speed = %v, want %v", ke, want)
	}
	// Sanity: argon at 300K moves a few hundred m/s ≈ a few 1e-3 Å/fs.
	if v < 1e-3 || v > 1e-2 {
		t.Errorf("thermal speed %v Å/fs outside physical range", v)
	}
	if ThermalSpeed(0, 300) != 0 || ThermalSpeed(1, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
}

func TestPicosecond(t *testing.T) {
	if Picosecond != 1000*Femtosecond {
		t.Error("1 ps must be 1000 fs")
	}
}
