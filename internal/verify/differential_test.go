package verify

import (
	"strings"
	"testing"

	"mw/internal/core"
	"mw/internal/vec"
)

const testThreads = 4

// TestCombosCoverMatrix guards the acceptance criterion: every executor
// topology (serial, shared queue, per-worker queues, work stealing) must be
// crossed with every reduction mode (privatized, shared mutex), and the
// cell-ordered hot path (reorder + guided) must cover all four topologies
// plus a full-list variant, and the cluster-pair rung must cover the serial
// reference kernel plus layered reorder variants.
func TestCombosCoverMatrix(t *testing.T) {
	combos := Combos(testThreads)
	if len(combos) != 17 {
		t.Fatalf("got %d combos, want 17 (4 topologies × 2 reduce modes + 4 reorder + 1 reorder/full-lists + 3 cluster + 1 reorder/tracing)", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		seen[c.Name] = true
		if c.Name != "serial/privatized" && c.Name != "serial/shared-mutex" &&
			c.Name != "serial/reorder+guided" && c.Name != "serial/cluster" && c.Threads < 2 {
			t.Errorf("parallel combo %s has %d threads", c.Name, c.Threads)
		}
	}
	for _, topo := range []string{"serial", "shared-queue", "per-worker-queues", "work-stealing"} {
		for _, red := range []string{"privatized", "shared-mutex"} {
			if !seen[topo+"/"+red] {
				t.Errorf("matrix missing %s/%s", topo, red)
			}
		}
		if !seen[topo+"/reorder+guided"] {
			t.Errorf("matrix missing %s/reorder+guided", topo)
		}
	}
	if !seen["shared-queue/reorder+guided+full-lists"] {
		t.Error("matrix missing the reorder + full-lists variant")
	}
	if !seen["shared-queue/reorder+guided+tracing"] {
		t.Error("matrix missing the reorder + tracing variant")
	}
	if !seen["serial/cluster"] {
		t.Error("matrix missing the serial cluster-reference combo")
	}
	for _, q := range []string{"shared-queue", "work-stealing"} {
		if !seen[q+"/cluster+reorder+guided"] {
			t.Errorf("matrix missing %s/cluster+reorder+guided", q)
		}
	}
	for _, c := range combos {
		if c.Reorder && c.Partition != core.PartitionGuided {
			t.Errorf("%s: reorder combos must use the guided partition", c.Name)
		}
	}
}

// TestTracingChangesNoPhysics is the bitwise half of the tracing combo's
// promise: the serial engine with the full tracer installed must produce
// positions identical — not within tolerance, identical — to the serial
// engine without it. (The parallel tracing combo goes through the
// differential matrix above like every other cell.)
func TestTracingChangesNoPhysics(t *testing.T) {
	w := WorkloadByName("salt")
	if w == nil {
		t.Fatal("salt workload missing")
	}
	run := func(c Combo) []vec.Vec3 {
		sim, err := core.New(w.Sys.Clone(), c.Apply(w.Cfg))
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		sim.Run(24)
		return append([]vec.Vec3(nil), sim.SystemInOriginalOrder().Pos...)
	}
	plain := run(Combo{Name: "serial", Threads: 1})
	traced := run(Combo{Name: "serial+tracing", Threads: 1, Tracing: true})
	if len(plain) != len(traced) {
		t.Fatalf("atom counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("atom %d position differs with tracing on: %v vs %v", i, plain[i], traced[i])
		}
	}
	if Checksum(plain, DefaultQuantum) != Checksum(traced, DefaultQuantum) {
		t.Error("golden checksum differs with tracing on")
	}
}

// TestDifferentialMatrix is the tentpole check: all three paper workloads,
// every topology × reduction combo, compared per step against the serial
// reference within tolerance.
func TestDifferentialMatrix(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			results, err := RunDifferential(w, testThreads)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if err := w.Tol.Check(r.Worst); err != nil {
					t.Errorf("%s under %s: %v (worst %s)", r.Workload, r.Combo, err, r.Worst)
				}
				// The serial privatized combo replays the reference
				// configuration: it must reproduce the trajectory bit for
				// bit, or the engine is nondeterministic even serially.
				if r.Combo == "serial/privatized" && (r.Worst != core.StateDiff{}) {
					t.Errorf("serial self-check not bitwise identical: %s", r.Worst)
				}
				if r.Rebuilds < 1 {
					t.Errorf("%s under %s: no neighbor-list rebuild in window; differential would not cover the rebuild path", r.Workload, r.Combo)
				}
			}
		})
	}
}

// TestAl1000WindowIsRebuildHeavy asserts the warmup puts the differential
// window into the collision regime the workload exists to exercise.
func TestAl1000WindowIsRebuildHeavy(t *testing.T) {
	w := WorkloadByName("Al-1000")
	if w == nil {
		t.Fatal("Al-1000 workload missing")
	}
	base, err := w.Warm()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceTrajectory(base, Reference().Apply(w.Cfg), w.Steps)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Differential(base, Reference().Apply(w.Cfg), ref)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rebuilds < 2 {
		t.Errorf("only %d rebuilds in the Al-1000 window; want ≥2 (collision regime)", r.Rebuilds)
	}
}

// TestDifferentialDetectsPerturbation is the negative control: a 1e-3 Å
// nudge to one atom must blow through every workload tolerance, proving the
// harness would catch a real physics change.
func TestDifferentialDetectsPerturbation(t *testing.T) {
	w := Workloads()[1] // salt: cheap, no warmup
	base, err := w.Warm()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceTrajectory(base, Reference().Apply(w.Cfg), w.Steps)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base.Clone()
	perturbed.Pos[0] = perturbed.Pos[0].Add(vec.New(1e-3, 0, 0))
	r, err := Differential(perturbed, Reference().Apply(w.Cfg), ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Tol.Check(r.Worst); err == nil {
		t.Errorf("perturbed trajectory passed tolerance (worst %s); harness is not sensitive enough", r.Worst)
	}
}

// TestReferenceTrajectoryDeterministic runs the serial reference twice; the
// trajectories must agree exactly, or golden fixtures could never hold.
func TestReferenceTrajectoryDeterministic(t *testing.T) {
	w := Workloads()[1]
	a, err := ReferenceTrajectory(w.Sys, Reference().Apply(w.Cfg), 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReferenceTrajectory(w.Sys, Reference().Apply(w.Cfg), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if d := a[i].Diff(b[i]); d != (core.StateDiff{}) {
			t.Fatalf("step %d: repeated serial runs differ: %s", i, d)
		}
	}
}

// TestToleranceCheck exercises the bound formatter.
func TestToleranceCheck(t *testing.T) {
	tol := Tolerance{Pos: 1e-7, Vel: 1e-7, Force: 1e-5, PE: 1e-5}
	if err := tol.Check(core.StateDiff{Pos: 1e-9}); err != nil {
		t.Errorf("within tolerance, got %v", err)
	}
	err := tol.Check(core.StateDiff{Pos: 1e-3})
	if err == nil || !strings.Contains(err.Error(), "pos") {
		t.Errorf("want pos violation, got %v", err)
	}
	// Zero bounds are "not checked".
	if err := (Tolerance{}).Check(core.StateDiff{Pos: 1}); err != nil {
		t.Errorf("zero tolerance should skip checks, got %v", err)
	}
}
