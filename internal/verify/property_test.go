package verify

import (
	"math"
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/core"
)

// bootstrapForces builds a serial simulation over sys and returns its state
// right after the bootstrap force evaluation (no steps taken).
func bootstrapForces(t *testing.T, sys *atom.System, cfg core.Config) core.Snapshot {
	t.Helper()
	cfg.Threads = 1
	sim, err := core.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	return sim.Snapshot()
}

// TestForcePermutationEquivariance is the property the whole reorder pass
// rests on: for a random permutation π, F(π·x)[i] = F(x)[π(i)] — forces are
// equivariant under relabeling and the potential energy is invariant. The
// check is run on every Table I workload with several seeded permutations;
// deviations beyond FP-reordering noise (1e-12) mean the topology remap or
// the exclusion rebuild is wrong.
func TestForcePermutationEquivariance(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			refSnap := bootstrapForces(t, w.Sys.Clone(), w.Cfg)
			rng := rand.New(rand.NewSource(7))
			n := w.Sys.N()
			var ro atom.Reorderer
			for trial := 0; trial < 4; trial++ {
				order := make([]int32, n)
				for i := range order {
					order[i] = int32(i)
				}
				rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
				perm := w.Sys.Clone()
				if err := ro.Apply(perm, order); err != nil {
					t.Fatal(err)
				}
				snap := bootstrapForces(t, perm, w.Cfg)
				// PE is a sum over every pair: permutation changes the
				// summation order, so the bound is relative to its magnitude.
				peScale := math.Abs(refSnap.PE)
				if peScale < 1 {
					peScale = 1
				}
				if d := math.Abs(snap.PE - refSnap.PE); d > 1e-12*peScale {
					t.Fatalf("trial %d: PE not invariant under permutation: Δ=%.3g (PE %.3g)", trial, d, refSnap.PE)
				}
				// order[new] = old: the permuted run's atom `new` is the
				// reference run's atom order[new].
				var worst float64
				for newIdx, old := range order {
					if d := snap.Force[newIdx].Sub(refSnap.Force[old]).MaxAbs(); d > worst {
						worst = d
					}
				}
				if worst > 1e-12 {
					t.Fatalf("trial %d: forces not equivariant: worst Δ=%.3g", trial, worst)
				}
			}
		})
	}
}

// TestReorderInverseRoundTrip: applying a permutation and then its inverse
// must restore the original system exactly (bitwise — gathering is
// rearrangement, not arithmetic).
func TestReorderInverseRoundTrip(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			n := w.Sys.N()
			order := make([]int32, n)
			for i := range order {
				order[i] = int32(i)
			}
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			sys := w.Sys.Clone()
			var ro atom.Reorderer
			if err := ro.Apply(sys, order); err != nil {
				t.Fatal(err)
			}
			inv := append([]int32(nil), ro.Inverse()...)
			if err := ro.Apply(sys, inv); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if sys.Pos[i] != w.Sys.Pos[i] || sys.Vel[i] != w.Sys.Vel[i] ||
					sys.Elem[i] != w.Sys.Elem[i] || sys.Charge[i] != w.Sys.Charge[i] {
					t.Fatalf("atom %d not restored by inverse permutation", i)
				}
			}
		})
	}
}

// TestHalfVsFullListMetamorphic: half lists with mirrored Newton-3 writes and
// full lists with owner-only writes must produce the same trajectory — the
// same pair set traversed two different ways. This is the metamorphic
// relation guarding the half-list kernels (including the exclusion-free
// specializations, which Al-1000 and salt take automatically).
func TestHalfVsFullListMetamorphic(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base, err := w.Warm()
			if err != nil {
				t.Fatal(err)
			}
			half := Reference().Apply(w.Cfg)
			ref, err := ReferenceTrajectory(base, half, w.Steps)
			if err != nil {
				t.Fatal(err)
			}
			full := half
			full.PairLists = core.FullLists
			r, err := Differential(base, full, ref)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Tol.Check(r.Worst); err != nil {
				t.Errorf("full-list run deviates from half-list reference: %v (worst %s)", err, r.Worst)
			}
		})
	}
}
