package verify

import (
	"fmt"

	"mw/internal/atom"
	"mw/internal/core"
)

// Warm advances a fresh clone of the workload's system through the warmup
// steps under the serial reference configuration and returns the resulting
// state. With Warmup == 0 it is just a clone.
func (w Workload) Warm() (*atom.System, error) {
	sys := w.Sys.Clone()
	if w.Warmup == 0 {
		return sys, nil
	}
	sim, err := core.New(sys, Reference().Apply(w.Cfg))
	if err != nil {
		return nil, fmt.Errorf("warmup %s: %w", w.Name, err)
	}
	defer sim.Close()
	sim.Run(w.Warmup)
	return sim.Sys.Clone(), nil
}

// ReferenceTrajectory runs base under cfg for the given number of steps and
// returns one snapshot per step boundary: index 0 is the state right after
// the bootstrap force evaluation, index i the state after step i.
func ReferenceTrajectory(base *atom.System, cfg core.Config, steps int) ([]core.Snapshot, error) {
	sim, err := core.New(base.Clone(), cfg)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	snaps := make([]core.Snapshot, 0, steps+1)
	snaps = append(snaps, sim.Snapshot())
	for i := 0; i < steps; i++ {
		sim.Step()
		snaps = append(snaps, sim.Snapshot())
	}
	return snaps, nil
}

// DiffResult is the outcome of one combo's lockstep run against the serial
// reference trajectory.
type DiffResult struct {
	Workload string
	Combo    string
	Steps    int
	Rebuilds int
	// Worst holds the maximum deviation components seen over all compared
	// steps.
	Worst core.StateDiff
}

// Differential runs base under the combo's configuration in lockstep with
// the recorded reference trajectory, comparing positions, velocities,
// forces and potential energy after every step, and returns the worst
// deviations. It does not judge them; callers apply a Tolerance.
func Differential(base *atom.System, cfg core.Config, ref []core.Snapshot) (DiffResult, error) {
	if len(ref) == 0 {
		return DiffResult{}, fmt.Errorf("verify: empty reference trajectory")
	}
	sim, err := core.New(base.Clone(), cfg)
	if err != nil {
		return DiffResult{}, err
	}
	defer sim.Close()
	res := DiffResult{Steps: len(ref) - 1}
	res.Worst = sim.Snapshot().Diff(ref[0])
	for _, want := range ref[1:] {
		sim.Step()
		res.Worst = res.Worst.Merge(sim.Snapshot().Diff(want))
	}
	res.Rebuilds = sim.Rebuilds()
	return res, nil
}

// RunDifferential executes the full matrix for one workload: it warms the
// system, records the serial reference trajectory, then checks every combo
// against it. Combo "serial/privatized" is included as a self-check — it
// must match the reference bit for bit.
func RunDifferential(w Workload, threads int) ([]DiffResult, error) {
	base, err := w.Warm()
	if err != nil {
		return nil, err
	}
	ref, err := ReferenceTrajectory(base, Reference().Apply(w.Cfg), w.Steps)
	if err != nil {
		return nil, fmt.Errorf("reference %s: %w", w.Name, err)
	}
	var out []DiffResult
	for _, c := range Combos(threads) {
		r, err := Differential(base, c.Apply(w.Cfg), ref)
		if err != nil {
			return nil, fmt.Errorf("%s under %s: %w", w.Name, c.Name, err)
		}
		r.Workload = w.Name
		r.Combo = c.Name
		out = append(out, r)
	}
	return out, nil
}
