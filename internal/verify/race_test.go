package verify

import (
	"fmt"
	"testing"

	"mw/internal/core"
)

// TestGuidedReorderRaceMatrix steps every Table I workload under the guided
// partition with Morton reordering across all three parallel queue
// topologies. Functionally it is subsumed by the differential matrix; it
// exists as a focused target for `make race`: the cell-aligned cut chunks
// change which atom ranges the guided executor's shared cursor deals out, so
// the mirrored Newton-3 writes and the privatized reduce must be re-proven
// race-free under that geometry (the race detector needs the code to run,
// not to be compared).
func TestGuidedReorderRaceMatrix(t *testing.T) {
	for _, w := range Workloads() {
		for _, q := range []core.QueueTopology{core.SharedQueue, core.PerWorkerQueues, core.WorkStealingQueues} {
			w, q := w, q
			t.Run(fmt.Sprintf("%s/%s", w.Name, q), func(t *testing.T) {
				t.Parallel()
				cfg := w.Cfg
				cfg.Threads = testThreads
				cfg.Queues = q
				cfg.Partition = core.PartitionGuided
				cfg.Reorder = true
				sim, err := core.New(w.Sys.Clone(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer sim.Close()
				sim.Run(8)
				if sim.StepCount() != 8 {
					t.Fatalf("ran %d steps, want 8", sim.StepCount())
				}
			})
		}
	}
}
