package verify

import (
	_ "embed"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"mw/internal/core"
	"mw/internal/vec"
	"mw/internal/workload"
)

// DefaultQuantum is the position quantization used by the committed golden
// fixtures: 1e-6 Å. It sits far above the ~1e-15 Å noise a compiler or
// instruction-scheduling change could introduce into the (fully
// deterministic) serial engine, and far below any genuine physics change,
// so checksums are stable across toolchains yet still pin the trajectory.
const DefaultQuantum = 1e-6

// Checksum hashes positions with FNV-1a after quantizing every coordinate
// to the given quantum. Two trajectories agree iff every coordinate rounds
// to the same multiple of the quantum.
func Checksum(pos []vec.Vec3, quantum float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(math.Round(x/quantum))))
		h.Write(buf[:])
	}
	for _, p := range pos {
		put(p.X)
		put(p.Y)
		put(p.Z)
	}
	return h.Sum64()
}

// TrajectorySignature runs the serial reference engine on a fresh instance
// of the benchmark and returns checksums of the positions at step 0 (after
// the bootstrap force evaluation) and after every `every` further steps.
func TrajectorySignature(b *workload.Benchmark, steps, every int, quantum float64) ([]uint64, error) {
	if every <= 0 || steps%every != 0 {
		return nil, fmt.Errorf("verify: steps %d must be a positive multiple of every %d", steps, every)
	}
	sim, err := core.New(b.Sys.Clone(), Reference().Apply(b.Cfg))
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	sums := []uint64{Checksum(sim.Sys.Pos, quantum)}
	for done := 0; done < steps; done += every {
		sim.Run(every)
		sums = append(sums, Checksum(sim.Sys.Pos, quantum))
	}
	return sums, nil
}

// Golden is one workload's committed trajectory signature.
type Golden struct {
	Steps     int      `json:"steps"`
	Every     int      `json:"every"`
	Checksums []string `json:"checksums"` // hex, one per sampled step
}

// GoldenFile is the on-disk fixture format (testdata/golden.json).
type GoldenFile struct {
	Comment   string            `json:"comment"`
	Quantum   float64           `json:"quantum"`
	Workloads map[string]Golden `json:"workloads"`
}

//go:embed testdata/golden.json
var goldenJSON []byte

// EmbeddedGolden returns the fixtures compiled into the binary, so the
// mwverify command needs no working directory.
func EmbeddedGolden() (*GoldenFile, error) {
	var g GoldenFile
	if err := json.Unmarshal(goldenJSON, &g); err != nil {
		return nil, fmt.Errorf("verify: embedded golden fixtures: %w", err)
	}
	return &g, nil
}

// Save writes the fixtures as indented JSON.
func (g *GoldenFile) Save(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatChecksum renders a checksum the way fixtures store it.
func FormatChecksum(c uint64) string { return fmt.Sprintf("%016x", c) }

// CheckGolden recomputes the signature for the named workload and compares
// it against the fixture. A mismatch names the first diverging sample.
func CheckGolden(g *GoldenFile, name string) error {
	fix, ok := g.Workloads[name]
	if !ok {
		return fmt.Errorf("verify: no golden fixture for %q", name)
	}
	b := workload.ByName(name)
	if b == nil {
		return fmt.Errorf("verify: unknown workload %q", name)
	}
	sums, err := TrajectorySignature(b, fix.Steps, fix.Every, g.Quantum)
	if err != nil {
		return err
	}
	if len(sums) != len(fix.Checksums) {
		return fmt.Errorf("verify: %s produced %d samples, fixture has %d", name, len(sums), len(fix.Checksums))
	}
	for i, want := range fix.Checksums {
		if got := FormatChecksum(sums[i]); got != want {
			return fmt.Errorf("verify: %s trajectory diverged at step %d: checksum %s, fixture %s "+
				"(if the physics change is intentional, regenerate with "+
				"`go test ./internal/verify -run TestGolden -update`)",
				name, i*fix.Every, got, want)
		}
	}
	return nil
}

// RegenerateGolden computes fresh fixtures for the three paper workloads
// with the default sampling (120 steps, every 20).
func RegenerateGolden() (*GoldenFile, error) {
	g := &GoldenFile{
		Comment: "FNV-1a checksums of quantized serial-reference trajectories; " +
			"regenerate with `go test ./internal/verify -run TestGolden -update`",
		Quantum:   DefaultQuantum,
		Workloads: map[string]Golden{},
	}
	for _, b := range workload.All() {
		const steps, every = 120, 20
		sums, err := TrajectorySignature(b, steps, every, g.Quantum)
		if err != nil {
			return nil, fmt.Errorf("verify: %s: %w", b.Name, err)
		}
		fix := Golden{Steps: steps, Every: every}
		for _, s := range sums {
			fix.Checksums = append(fix.Checksums, FormatChecksum(s))
		}
		g.Workloads[b.Name] = fix
	}
	return g, nil
}
