package verify

import (
	"fmt"
	"math/rand"

	"mw/internal/core"
	"mw/internal/workload"
)

// Result is one suite check: section/name identify it, Err is nil on pass,
// Detail carries the measured values either way.
type Result struct {
	Section string
	Name    string
	Detail  string
	Err     error
}

// invariantBounds collects the suite's numeric gates in one place, with the
// reasoning documented in EXPERIMENTS.md §Verification.
var invariantBounds = struct {
	// energyDrift bounds |E(t)−E(0)| / KE₀ over energySteps NVE steps.
	energyDrift map[string]float64
	energySteps int
	// momentumDrift bounds |Δp| in amu·Å/fs over momentumSteps.
	momentumDrift float64
	momentumSteps int
	// netForce bounds |ΣF| relative to the mean per-atom force magnitude.
	netForce float64
	// antisymmetry bounds |f_i + f_j| / |f_i| for isolated pairs.
	antisymmetry float64
}{
	energyDrift: map[string]float64{
		// Thermalized workloads conserve tightly; Al-1000's supersonic
		// impact through a steep LJ core at dt=1 fs is the documented worst
		// case and gets a looser (but still sub-percent-scale) gate.
		"nanocar": 0.02,
		"salt":    0.02,
		"Al-1000": 0.05,
	},
	energySteps:   150,
	momentumDrift: 1e-9,
	momentumSteps: 100,
	netForce:      1e-9,
	antisymmetry:  1e-11,
}

// RunSuite executes the full verification suite — differential matrix,
// physics invariants, golden trajectories — and returns one Result per
// check. threads sets the parallel worker count for the matrix (min 2;
// values below default to 4).
func RunSuite(threads int) []Result {
	var out []Result
	out = append(out, runDifferentialSuite(threads)...)
	out = append(out, runInvariantSuite()...)
	out = append(out, runGoldenSuite()...)
	return out
}

func runDifferentialSuite(threads int) []Result {
	var out []Result
	for _, w := range Workloads() {
		results, err := RunDifferential(w, threads)
		if err != nil {
			out = append(out, Result{Section: "differential", Name: w.Name, Err: err})
			continue
		}
		for _, r := range results {
			res := Result{
				Section: "differential",
				Name:    fmt.Sprintf("%s × %s", r.Workload, r.Combo),
				Detail:  fmt.Sprintf("%d steps, %d rebuilds, worst %s", r.Steps, r.Rebuilds, r.Worst),
				Err:     w.Tol.Check(r.Worst),
			}
			out = append(out, res)
		}
	}
	return out
}

func runInvariantSuite() []Result {
	var out []Result
	b := invariantBounds

	for _, w := range Workloads() {
		// Warm first so the Al-1000 window covers the projectile impact —
		// the hardest regime for the integrator.
		sys, err := w.Warm()
		var drift float64
		if err == nil {
			drift, err = EnergyDrift(sys, Reference().Apply(w.Cfg), b.energySteps)
		}
		r := Result{
			Section: "invariant",
			Name:    "energy-drift " + w.Name,
			Detail:  fmt.Sprintf("|ΔE|/KE₀ = %.3g over %d steps", drift, b.energySteps),
			Err:     err,
		}
		if err == nil && drift > b.energyDrift[w.Name] {
			r.Err = fmt.Errorf("drift %.3g exceeds bound %.3g", drift, b.energyDrift[w.Name])
		}
		out = append(out, r)
	}

	// Momentum: systems with no walls hit, no fixed atoms, no thermostat.
	momentum := []*workload.Benchmark{
		workload.LJGas(4, 60, true),
		workload.Salt(),
	}
	for _, bench := range momentum {
		drift, err := MomentumDrift(bench.Sys, Reference().Apply(bench.Cfg), b.momentumSteps)
		r := Result{
			Section: "invariant",
			Name:    "momentum " + bench.Name,
			Detail:  fmt.Sprintf("|Δp| = %.3g amu·Å/fs over %d steps", drift, b.momentumSteps),
			Err:     err,
		}
		if err == nil && drift > b.momentumDrift {
			r.Err = fmt.Errorf("momentum drift %.3g exceeds bound %.3g", drift, b.momentumDrift)
		}
		out = append(out, r)
	}

	// Newton's third law, in aggregate, on randomized systems.
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := RandomSystem(rng, 40+int(seed)*17, seed%2 == 0)
		net, scale, err := NetForce(sys, core.Config{Dt: 1, LJCutoff: 6, Skin: 0.5})
		r := Result{
			Section: "invariant",
			Name:    fmt.Sprintf("net-force seed=%d", seed),
			Detail:  fmt.Sprintf("|ΣF| = %.3g, mean |F| = %.3g", net, scale),
			Err:     err,
		}
		if err == nil && net > b.netForce*(1+scale) {
			r.Err = fmt.Errorf("net force %.3g exceeds bound %.3g", net, b.netForce*(1+scale))
		}
		out = append(out, r)
	}

	// Newton's third law, pairwise, per force family.
	rng := rand.New(rand.NewSource(9))
	for _, pc := range PairCases() {
		worst := 0.0
		var err error
		for trial := 0; trial < 8 && err == nil; trial++ {
			sep := 2.5 + rng.Float64()*3.5
			var defect float64
			defect, err = Antisymmetry(pc, sep, core.Config{Dt: 1, LJCutoff: 8, Skin: 0.5})
			if defect > worst {
				worst = defect
			}
		}
		r := Result{
			Section: "invariant",
			Name:    "antisymmetry " + pc.Name,
			Detail:  fmt.Sprintf("worst |f_i+f_j|/|f_i| = %.3g", worst),
			Err:     err,
		}
		if err == nil && worst > b.antisymmetry {
			r.Err = fmt.Errorf("antisymmetry defect %.3g exceeds bound %.3g", worst, b.antisymmetry)
		}
		out = append(out, r)
	}

	// Neighbor-list completeness vs brute force, half and full builders,
	// several densities/chunkings, periodic and closed boxes, including the
	// degenerate single-cell grid (range larger than a periodic box third).
	type listCase struct {
		name  string
		n     int
		per   bool
		rng   float64
		chunk int
	}
	for i, lc := range []listCase{
		{"closed", 60, false, 4.3, 16},
		{"periodic", 64, true, 4.3, 7},
		{"periodic-one-cell", 20, true, 6.0, 3},
		{"closed-chunk1", 30, false, 5.0, 1},
	} {
		sys := RandomSystem(rand.New(rand.NewSource(int64(100+i))), lc.n, lc.per)
		err := CheckNeighborCompleteness(sys, lc.rng, lc.chunk)
		out = append(out, Result{
			Section: "invariant",
			Name:    "neighbor-list " + lc.name,
			Detail:  fmt.Sprintf("n=%d rng=%g chunk=%d", lc.n, lc.rng, lc.chunk),
			Err:     err,
		})
	}
	return out
}

func runGoldenSuite() []Result {
	g, err := EmbeddedGolden()
	if err != nil {
		return []Result{{Section: "golden", Name: "fixtures", Err: err}}
	}
	var out []Result
	for _, b := range workload.All() {
		fix := g.Workloads[b.Name]
		out = append(out, Result{
			Section: "golden",
			Name:    b.Name,
			Detail:  fmt.Sprintf("%d steps, sampled every %d, quantum %g Å", fix.Steps, fix.Every, g.Quantum),
			Err:     CheckGolden(g, b.Name),
		})
	}
	return out
}
