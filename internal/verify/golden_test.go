package verify

import (
	"flag"
	"math/rand"
	"strings"
	"testing"

	"mw/internal/vec"
	"mw/internal/workload"
)

// Run `go test ./internal/verify -run TestGolden -update` after an
// intentional physics change to regenerate testdata/golden.json.
var update = flag.Bool("update", false, "regenerate golden trajectory fixtures")

// TestGoldenTrajectories is the regression gate: the serial reference
// trajectory of each paper workload must reproduce the committed checksums.
func TestGoldenTrajectories(t *testing.T) {
	if *update {
		g, err := RegenerateGolden()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Save("testdata/golden.json"); err != nil {
			t.Fatal(err)
		}
		t.Log("regenerated testdata/golden.json — commit it and rebuild so the embedded copy matches")
	}
	g, err := EmbeddedGolden()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			if err := CheckGolden(g, b.Name); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChecksumQuantization pins the fixture robustness contract: noise far
// below the quantum never changes a checksum; a move above it always does.
func TestChecksumQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pos := make([]vec.Vec3, 200)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40)
	}
	base := Checksum(pos, DefaultQuantum)

	jittered := append([]vec.Vec3(nil), pos...)
	for i := range jittered {
		// ±1e-10 Å — four decades below the quantum; boundary-straddling
		// coordinates are measure-zero for random positions.
		jittered[i] = jittered[i].Add(vec.New(1e-10*(rng.Float64()-0.5), 1e-10*(rng.Float64()-0.5), 0))
	}
	if got := Checksum(jittered, DefaultQuantum); got != base {
		t.Errorf("sub-quantum jitter changed checksum: %016x vs %016x", got, base)
	}

	moved := append([]vec.Vec3(nil), pos...)
	moved[17] = moved[17].Add(vec.New(10*DefaultQuantum, 0, 0))
	if got := Checksum(moved, DefaultQuantum); got == base {
		t.Error("supra-quantum move left checksum unchanged")
	}
}

// TestChecksumOrderSensitive: swapping two atoms must change the checksum —
// the fixture pins per-atom identity, not just the point cloud.
func TestChecksumOrderSensitive(t *testing.T) {
	pos := []vec.Vec3{vec.New(1, 2, 3), vec.New(4, 5, 6), vec.New(7, 8, 9)}
	a := Checksum(pos, DefaultQuantum)
	pos[0], pos[1] = pos[1], pos[0]
	if b := Checksum(pos, DefaultQuantum); a == b {
		t.Error("atom swap left checksum unchanged")
	}
}

// TestTrajectorySignatureValidation covers the parameter contract.
func TestTrajectorySignatureValidation(t *testing.T) {
	b := workload.Salt()
	if _, err := TrajectorySignature(b, 10, 3, DefaultQuantum); err == nil {
		t.Error("steps not a multiple of every should error")
	}
	if _, err := TrajectorySignature(b, 10, 0, DefaultQuantum); err == nil {
		t.Error("zero every should error")
	}
	sums, err := TrajectorySignature(b, 4, 2, DefaultQuantum)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Errorf("got %d samples, want 3 (steps 0, 2, 4)", len(sums))
	}
}

// TestCheckGoldenNamesDivergence makes sure a fabricated mismatch produces
// the actionable regeneration message.
func TestCheckGoldenNamesDivergence(t *testing.T) {
	g, err := EmbeddedGolden()
	if err != nil {
		t.Fatal(err)
	}
	broken := &GoldenFile{Quantum: g.Quantum, Workloads: map[string]Golden{}}
	fix := g.Workloads["salt"]
	fix.Checksums = append([]string(nil), fix.Checksums...)
	fix.Checksums[2] = "deadbeefdeadbeef"
	broken.Workloads["salt"] = fix
	err = CheckGolden(broken, "salt")
	if err == nil {
		t.Fatal("corrupted fixture passed")
	}
	for _, want := range []string{"step 40", "-update"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("divergence error %q missing %q", err, want)
		}
	}
}
