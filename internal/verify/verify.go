// Package verify is the repository's correctness gate. The paper's central
// claim is that the parallelized Molecular Workbench engine computes the
// same physics as the serial engine across thread-pool topologies while
// only the performance differs; this package checks exactly that, three
// ways:
//
//  1. Differential testing — the same seeded system is run through every
//     executor topology (serial, shared queue, per-worker queues, work
//     stealing) × reduction mode (privatized arrays, shared mutex) and
//     compared per step against the serial reference on all three Table I
//     workloads (nanocar, salt, Al-1000).
//  2. Physics invariants — NVE total-energy drift bounds, linear-momentum
//     conservation, Newton's-third-law force antisymmetry on randomized
//     systems, and neighbor-list completeness (cell-list pairs ⊇
//     brute-force pairs within the interaction range).
//  3. Golden-trajectory regression — FNV-1a checksums over quantized
//     positions of the serial reference, committed as fixtures, so a PR
//     that silently changes the physics fails tier-1 tests.
//
// The whole suite runs as `go test ./internal/verify/...` (including under
// -race) and as the `mwverify` command.
package verify

import (
	"fmt"

	"mw/internal/core"
	"mw/internal/telemetry"
	"mw/internal/tracing"
	"mw/internal/workload"
)

// Combo is one executor-topology × reduction-mode cell of the verification
// matrix, optionally layered with the §V-A cell-ordered hot path (Morton
// reorder + guided cell-block chunking), the pair-list mode, and the
// structured tracer (proving observation changes no physics).
type Combo struct {
	Name      string
	Threads   int
	Queues    core.QueueTopology
	Reduce    core.ReduceMode
	Partition core.Partition
	PairLists core.PairListMode
	Reorder   bool
	Cluster   bool
	Tracing   bool
}

// Apply overlays the combo onto a benchmark's recommended config.
func (c Combo) Apply(cfg core.Config) core.Config {
	cfg.Threads = c.Threads
	cfg.Queues = c.Queues
	cfg.Reduce = c.Reduce
	cfg.Partition = c.Partition
	cfg.PairLists = c.PairLists
	cfg.Reorder = c.Reorder
	cfg.Cluster = c.Cluster
	if c.Tracing {
		// The full tracer stack on small rings: spans, straggler
		// attribution, drain, anomaly detection. The differential run then
		// proves the instrumented engine's physics is bit-for-bit the
		// uninstrumented engine's.
		threads := c.Threads
		if threads < 1 {
			threads = 1
		}
		rec := telemetry.NewRecorderSize(threads, core.PhaseNames(), 1024)
		cfg.Telemetry = tracing.New(rec, tracing.Config{RingSteps: 8})
	}
	return cfg
}

// Combos enumerates the full verification matrix for the given parallel
// worker count: the serial topology and all three queue topologies, each
// under both reduction modes; then the cell-ordered hot path (Morton reorder
// + guided partition) across all four topologies, including one full-list
// variant. The first entry (serial + privatized) is the reference
// configuration the rest are compared against.
func Combos(threads int) []Combo {
	if threads < 2 {
		threads = 4
	}
	var out []Combo
	for _, r := range []core.ReduceMode{core.ReducePrivatized, core.ReduceSharedMutex} {
		out = append(out, Combo{
			Name:    "serial/" + r.String(),
			Threads: 1,
			Reduce:  r,
		})
	}
	for _, q := range []core.QueueTopology{core.SharedQueue, core.PerWorkerQueues, core.WorkStealingQueues} {
		for _, r := range []core.ReduceMode{core.ReducePrivatized, core.ReduceSharedMutex} {
			out = append(out, Combo{
				Name:    fmt.Sprintf("%s/%s", q, r),
				Threads: threads,
				Queues:  q,
				Reduce:  r,
			})
		}
	}
	// Cell-ordered hot path: atoms permuted into Morton order, guided
	// partition dealing contiguous cell blocks. Snapshots are always in
	// original IDs, so these compare against the same reference.
	out = append(out, Combo{
		Name:      "serial/reorder+guided",
		Threads:   1,
		Partition: core.PartitionGuided,
		Reorder:   true,
	})
	for _, q := range []core.QueueTopology{core.SharedQueue, core.PerWorkerQueues, core.WorkStealingQueues} {
		out = append(out, Combo{
			Name:      fmt.Sprintf("%s/reorder+guided", q),
			Threads:   threads,
			Queues:    q,
			Partition: core.PartitionGuided,
			Reorder:   true,
		})
	}
	out = append(out, Combo{
		Name:      "shared-queue/reorder+guided+full-lists",
		Threads:   threads,
		Partition: core.PartitionGuided,
		PairLists: core.FullLists,
		Reorder:   true,
	})
	// Cluster-pair rungs: the reference cluster kernel serially (bitwise
	// path), then layered with reorder+guided so the engine auto-picks the
	// fast variant — or, on capable amd64 with a non-periodic box, the
	// packed AVX2 kernel — across the parallel topologies.
	out = append(out, Combo{
		Name:    "serial/cluster",
		Threads: 1,
		Cluster: true,
	})
	for _, q := range []core.QueueTopology{core.SharedQueue, core.WorkStealingQueues} {
		out = append(out, Combo{
			Name:      fmt.Sprintf("%s/cluster+reorder+guided", q),
			Threads:   threads,
			Queues:    q,
			Partition: core.PartitionGuided,
			Reorder:   true,
			Cluster:   true,
		})
	}
	// The tracing combo: the hardest layered configuration with the
	// structured tracer installed, proving the trace timeline observes the
	// physics without changing it.
	out = append(out, Combo{
		Name:      "shared-queue/reorder+guided+tracing",
		Threads:   threads,
		Partition: core.PartitionGuided,
		Reorder:   true,
		Tracing:   true,
	})
	return out
}

// Reference is the configuration every combo is measured against.
func Reference() Combo {
	return Combo{Name: "serial/privatized", Threads: 1}
}

// Workload couples a paper benchmark with the differential-run parameters
// chosen for it.
type Workload struct {
	*workload.Benchmark
	// Warmup steps run once, serially, before the differential window, to
	// bring the system into its characteristic regime (Al-1000 needs the
	// projectile near the block so that collisions and neighbor-list
	// rebuilds happen inside the window).
	Warmup int
	// Steps is the differential window length.
	Steps int
	// Tol bounds the per-step deviation from the serial reference.
	Tol Tolerance
}

// Tolerance bounds a StateDiff. Zero fields mean "not checked".
type Tolerance struct {
	Pos, Vel, Force, PE float64
}

// Check returns an error naming the first exceeded bound.
func (t Tolerance) Check(d core.StateDiff) error {
	type bound struct {
		name     string
		got, tol float64
	}
	for _, b := range []bound{
		{"pos", d.Pos, t.Pos},
		{"vel", d.Vel, t.Vel},
		{"force", d.Force, t.Force},
		{"pe", d.PE, t.PE},
	} {
		if b.tol > 0 && b.got > b.tol {
			return fmt.Errorf("%s deviation %.3g exceeds tolerance %.3g", b.name, b.got, b.tol)
		}
	}
	return nil
}

// Workloads returns the three Table I benchmarks with their differential
// parameters. Tolerances are two to three decades above the FP-reordering
// noise floor measured across topologies (see EXPERIMENTS.md §Verification)
// and two-plus decades below any genuine physics change, which shows up at
// ≥1e-3 Å within a couple of steps.
func Workloads() []Workload {
	return []Workload{
		{
			Benchmark: workload.Nanocar(),
			Steps:     16,
			Tol:       Tolerance{Pos: 1e-7, Vel: 1e-7, Force: 1e-5, PE: 1e-5},
		},
		{
			Benchmark: workload.Salt(),
			Steps:     16,
			Tol:       Tolerance{Pos: 1e-7, Vel: 1e-7, Force: 1e-5, PE: 1e-5},
		},
		{
			// 220 warmup steps put the gold projectile in contact with the
			// block, so the window covers collisions and frequent rebuilds —
			// the regime §III says characterizes this workload.
			Benchmark: workload.Al1000(),
			Warmup:    220,
			Steps:     16,
			Tol:       Tolerance{Pos: 1e-6, Vel: 1e-6, Force: 1e-4, PE: 1e-4},
		},
	}
}

// WorkloadByName returns the named verification workload or nil.
func WorkloadByName(name string) *Workload {
	for _, w := range Workloads() {
		if w.Name == name {
			w := w
			return &w
		}
	}
	return nil
}
