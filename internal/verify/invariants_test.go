package verify

import (
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/vec"
)

func TestEnergyDriftWorkloads(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			sys, err := w.Warm()
			if err != nil {
				t.Fatal(err)
			}
			drift, err := EnergyDrift(sys, Reference().Apply(w.Cfg), invariantBounds.energySteps)
			if err != nil {
				t.Fatal(err)
			}
			if bound := invariantBounds.energyDrift[w.Name]; drift > bound {
				t.Errorf("NVE energy drift %.3g exceeds %.3g over %d steps", drift, bound, invariantBounds.energySteps)
			}
		})
	}
}

// TestEnergyDriftParallel runs the NVE gate under a parallel topology too:
// conservation must not depend on the executor.
func TestEnergyDriftParallel(t *testing.T) {
	w := Workloads()[1] // salt
	cfg := w.Cfg
	cfg.Threads = testThreads
	cfg.Queues = core.WorkStealingQueues
	drift, err := EnergyDrift(w.Sys, cfg, invariantBounds.energySteps)
	if err != nil {
		t.Fatal(err)
	}
	if bound := invariantBounds.energyDrift[w.Name]; drift > bound {
		t.Errorf("parallel NVE drift %.3g exceeds %.3g", drift, bound)
	}
}

func TestMomentumConservationInvariant(t *testing.T) {
	for _, w := range Workloads() {
		if w.Name == "nanocar" {
			continue // fixed platform atoms absorb momentum by design
		}
		if w.Name == "Al-1000" {
			continue // wall reflections exchange momentum with the box
		}
		drift, err := MomentumDrift(w.Sys, Reference().Apply(w.Cfg), invariantBounds.momentumSteps)
		if err != nil {
			t.Fatal(err)
		}
		if drift > invariantBounds.momentumDrift {
			t.Errorf("%s: momentum drift %.3g exceeds %.3g", w.Name, drift, invariantBounds.momentumDrift)
		}
	}
}

func TestNetForceVanishes(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := RandomSystem(rng, 30+int(seed)*13, seed%2 == 0)
		net, scale, err := NetForce(sys, core.Config{Dt: 1, LJCutoff: 6, Skin: 0.5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if net > invariantBounds.netForce*(1+scale) {
			t.Errorf("seed %d: |ΣF| = %.3g with mean |F| = %.3g — third law violated in aggregate", seed, net, scale)
		}
	}
}

func TestPairAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, pc := range PairCases() {
		for trial := 0; trial < 10; trial++ {
			sep := 2.2 + rng.Float64()*4
			defect, err := Antisymmetry(pc, sep, core.Config{Dt: 1, LJCutoff: 8, Skin: 0.5})
			if err != nil {
				t.Fatalf("%s at %g Å: %v", pc.Name, sep, err)
			}
			if defect > invariantBounds.antisymmetry {
				t.Errorf("%s at %.2f Å: antisymmetry defect %.3g", pc.Name, sep, defect)
			}
		}
	}
}

func TestNeighborListCompleteness(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		per   bool
		rng   float64
		chunk int
	}{
		{"closed-dense", 80, false, 4.3, 16},
		{"periodic", 64, true, 4.3, 7},
		{"periodic-one-cell-fallback", 20, true, 6.0, 3},
		{"chunk-of-one", 30, false, 5.0, 1},
		{"chunk-bigger-than-system", 25, true, 4.0, 1000},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := RandomSystem(rand.New(rand.NewSource(int64(200+i))), tc.n, tc.per)
			if err := CheckNeighborCompleteness(sys, tc.rng, tc.chunk); err != nil {
				t.Error(err)
			}
			// Sanity: the check is vacuous if nothing is in range.
			if len(BrutePairs(sys, tc.rng)) == 0 {
				t.Errorf("no pairs within %g Å — case checks nothing", tc.rng)
			}
		})
	}
}

// TestBrutePairsMinImage pins the brute-force oracle itself on a hand-built
// case: two atoms across a periodic boundary are within range through the
// image, not directly.
func TestBrutePairsMinImage(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, true))
	s.AddAtom(atom.Ar, vec.New(1, 10, 10), vec.Zero, 0, false)
	s.AddAtom(atom.Ar, vec.New(19, 10, 10), vec.Zero, 0, false) // 2 Å apart through the boundary
	if got := len(BrutePairs(s, 3)); got != 1 {
		t.Errorf("minimum-image pair not found: got %d pairs", got)
	}
	if err := CheckNeighborCompleteness(s, 3, 4); err != nil {
		t.Errorf("cell list misses the minimum-image pair: %v", err)
	}
}
