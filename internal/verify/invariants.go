package verify

import (
	"fmt"
	"math"
	"math/rand"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/core"
	"mw/internal/vec"
)

// EnergyDrift runs an NVE simulation of base under cfg (thermostat stripped)
// and returns the total-energy drift relative to the kinetic-energy scale,
// the gate the UPC MD study (arXiv:1603.03888) uses as its correctness
// criterion. Elastic walls and fixed atoms both conserve energy, so the
// bound applies to every paper workload.
func EnergyDrift(base *atom.System, cfg core.Config, steps int) (float64, error) {
	cfg.Thermostat = nil
	sim, err := core.New(base.Clone(), cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	e0 := sim.TotalEnergy()
	scale := sim.Sys.KineticEnergy() + 1e-9
	sim.Run(steps)
	return math.Abs(sim.TotalEnergy()-e0) / scale, nil
}

// MomentumDrift runs base under cfg and returns the growth of the total
// linear momentum of the mobile atoms in amu·Å/fs. Momentum is conserved
// only while nothing external acts: callers must pick systems without wall
// contact, fixed atoms or thermostats.
func MomentumDrift(base *atom.System, cfg core.Config, steps int) (float64, error) {
	cfg.Thermostat = nil
	sim, err := core.New(base.Clone(), cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	p0 := sim.Sys.Momentum()
	sim.Run(steps)
	return sim.Sys.Momentum().Sub(p0).Norm(), nil
}

// RandomSystem builds a seeded random test system: n atoms on a jittered
// lattice (no overlapping cores), a neutral mix of Na⁺/Cl⁻ ions among
// neutral carbons, and a short bonded chain (bonds, angles, a torsion)
// parameterized to its built geometry. It exercises every force family the
// engine has.
func RandomSystem(rng *rand.Rand, n int, periodic bool) *atom.System {
	const spacing = 3.5
	side := 1
	for side*side*side < n {
		side++
	}
	l := float64(side)*spacing + 4
	s := atom.NewSystem(atom.CubicBox(l, periodic))
	count := 0
	for x := 0; x < side && count < n; x++ {
		for y := 0; y < side && count < n; y++ {
			for z := 0; z < side && count < n; z++ {
				p := vec.New(
					2+float64(x)*spacing+rng.Float64()*0.6,
					2+float64(y)*spacing+rng.Float64()*0.6,
					2+float64(z)*spacing+rng.Float64()*0.6,
				)
				// A neutral ion pair every four atoms, carbons between.
				switch count % 4 {
				case 0:
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				case 1:
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				default:
					s.AddAtom(atom.C, p, vec.Zero, 0, false)
				}
				count++
			}
		}
	}
	// Bonded chain over the first few atoms, at mechanical equilibrium so
	// the random geometry is a valid starting point.
	chain := 6
	if chain > n {
		chain = n
	}
	for i := 0; i+1 < chain; i++ {
		r0 := s.Box.MinImage(s.Pos[i+1].Sub(s.Pos[i])).Norm()
		s.Bonds = append(s.Bonds, atom.Bond{I: int32(i), J: int32(i + 1), K: 6, R0: r0})
	}
	for i := 0; i+2 < chain; i++ {
		a := atom.Angle{I: int32(i), J: int32(i + 1), K: int32(i + 2), KTheta: 1.5}
		s.Angles = append(s.Angles, a)
	}
	if chain >= 4 {
		s.Torsions = append(s.Torsions, atom.Torsion{I: 0, J: 1, K: 2, L: 3, V0: 0.4, N: 3})
	}
	s.BuildExclusions()
	s.Thermalize(80, rng)
	return s
}

// NetForce runs one engine force evaluation of base under cfg and returns
// the magnitude of the total force vector alongside the mean per-atom force
// magnitude. With no external field every engine force is an
// action–reaction pair (or a pure-internal angle/torsion gradient), so the
// net must vanish to rounding — Newton's third law in aggregate.
func NetForce(base *atom.System, cfg core.Config) (net, scale float64, err error) {
	sim, err := core.New(base.Clone(), cfg)
	if err != nil {
		return 0, 0, err
	}
	defer sim.Close()
	var sum vec.Vec3
	for _, f := range sim.Sys.Force {
		sum = sum.Add(f)
		scale += f.Norm()
	}
	n := len(sim.Sys.Force)
	if n > 0 {
		scale /= float64(n)
	}
	return sum.Norm(), scale, nil
}

// PairAntisymmetry places two atoms at a random separation, evaluates the
// engine's forces, and returns the relative antisymmetry defect
// |f_i + f_j| / max(|f_i|, ε). Exercised per force family by the choice of
// atoms: LJ (two argons), Coulomb (an ion pair), bond and Morse (bonded
// pairs).
type PairCase struct {
	Name string
	// Build places two interacting atoms at separation r into a fresh
	// system.
	Build func(r float64) *atom.System
}

// PairCases returns one randomized two-body case per pairwise force family.
func PairCases() []PairCase {
	mk := func(el int16, q1, q2 float64) func(r float64) *atom.System {
		return func(r float64) *atom.System {
			s := atom.NewSystem(atom.CubicBox(30, false))
			s.AddAtom(el, vec.New(15-r/2, 15, 15), vec.Zero, q1, false)
			s.AddAtom(el, vec.New(15+r/2, 15, 15), vec.Zero, q2, false)
			return s
		}
	}
	return []PairCase{
		{"lj", mk(atom.Ar, 0, 0)},
		{"coulomb", func(r float64) *atom.System {
			s := atom.NewSystem(atom.CubicBox(30, false))
			s.AddAtom(atom.Na, vec.New(15-r/2, 15, 15), vec.Zero, +1, false)
			s.AddAtom(atom.Cl, vec.New(15+r/2, 15, 15), vec.Zero, -1, false)
			return s
		}},
		{"bond", func(r float64) *atom.System {
			s := mk(atom.C, 0, 0)(r)
			s.Bonds = append(s.Bonds, atom.Bond{I: 0, J: 1, K: 8, R0: r * 0.8})
			s.BuildExclusions()
			return s
		}},
		{"morse", func(r float64) *atom.System {
			s := mk(atom.C, 0, 0)(r)
			s.Morses = append(s.Morses, atom.Morse{I: 0, J: 1, D: 2, A: 1.5, R0: r * 0.9})
			s.BuildExclusions()
			return s
		}},
	}
}

// Antisymmetry evaluates the case at separation r and returns the relative
// defect |f0 + f1| / (|f0| + ε).
func Antisymmetry(pc PairCase, r float64, cfg core.Config) (float64, error) {
	s := pc.Build(r)
	sim, err := core.New(s, cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	f0, f1 := sim.Sys.Force[0], sim.Sys.Force[1]
	return f0.Add(f1).Norm() / (f0.Norm() + 1e-12), nil
}

// pairKey orders an (i, j) pair canonically.
func pairKey(i, j int32) [2]int32 {
	if i > j {
		i, j = j, i
	}
	return [2]int32{i, j}
}

// BrutePairs enumerates every unordered atom pair of s within rng by the
// O(N²) definition the cell list must reproduce: minimum-image center
// distance strictly below rng.
func BrutePairs(s *atom.System, rng float64) map[[2]int32]struct{} {
	out := make(map[[2]int32]struct{})
	r2 := rng * rng
	n := s.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Box.MinImage(s.Pos[j].Sub(s.Pos[i])).Norm2() < r2 {
				out[pairKey(int32(i), int32(j))] = struct{}{}
			}
		}
	}
	return out
}

// CellPairs enumerates the pairs the linked-cell grid produces when the
// engine builds per-chunk range lists of the given chunk size. With
// full=true it uses the full-list builder and verifies that every pair
// appears exactly twice (once per endpoint) before collapsing it.
func CellPairs(s *atom.System, rng float64, chunk int, full bool) (map[[2]int32]struct{}, error) {
	grid := cells.NewGrid(s.Box, rng)
	grid.Assign(s)
	seen := make(map[[2]int32]int)
	n := s.N()
	var rl cells.RangeList
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if full {
			grid.BuildRangeFull(s, rng, lo, hi, &rl)
		} else {
			grid.BuildRange(s, rng, lo, hi, &rl)
		}
		for i := lo; i < hi; i++ {
			a := rl.Offsets[i-lo]
			b := rl.Offsets[i-lo+1]
			for _, j := range rl.Neighbors[a:b] {
				if !full && j <= int32(i) {
					return nil, fmt.Errorf("half list stores %d-%d with j ≤ i", i, j)
				}
				seen[pairKey(int32(i), j)]++
			}
		}
	}
	want := 1
	if full {
		want = 2
	}
	out := make(map[[2]int32]struct{}, len(seen))
	for p, c := range seen {
		if c != want {
			return nil, fmt.Errorf("pair %d-%d stored %d times, want %d", p[0], p[1], c, want)
		}
		out[p] = struct{}{}
	}
	return out, nil
}

// CheckNeighborCompleteness asserts that the cell-list pair set equals the
// brute-force pair set for s at the given interaction range: no pair within
// range may be missing (completeness), and no listed pair may be out of
// range (validity — both builders share the brute-force distance
// predicate, so the sets must be identical). Checked for both the half- and
// full-list builders.
func CheckNeighborCompleteness(s *atom.System, rng float64, chunk int) error {
	brute := BrutePairs(s, rng)
	for _, full := range []bool{false, true} {
		got, err := CellPairs(s, rng, chunk, full)
		if err != nil {
			return err
		}
		for p := range brute {
			if _, ok := got[p]; !ok {
				return fmt.Errorf("full=%v: pair %d-%d within %g Å missing from cell list", full, p[0], p[1], rng)
			}
		}
		for p := range got {
			if _, ok := brute[p]; !ok {
				return fmt.Errorf("full=%v: cell list pair %d-%d is outside range %g Å", full, p[0], p[1], rng)
			}
		}
	}
	return nil
}
