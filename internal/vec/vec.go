// Package vec provides a small, allocation-free 3-component vector type used
// throughout the molecular dynamics engine.
//
// Vec3 is a value type on purpose: the paper (§V-B) found that in the Java
// implementation over 50% of live heap memory was consumed by short-lived
// heap-allocated 3-float wrapper objects, which polluted the caches. In Go we
// keep vectors as plain values so hot loops perform no allocation at all; the
// Java behaviour is modeled separately by internal/jheap for the
// cache-pollution experiments.
package vec

import "math"

// Vec3 is a 3-component double-precision vector.
type Vec3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Zero is the zero vector.
var Zero = Vec3{}

// Add returns v + w.
//
//mw:hotpath
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
//
//mw:hotpath
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
//
//mw:hotpath
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// AddScaled returns v + s*w, the fused update used by integrators.
//
//mw:hotpath
func (v Vec3) AddScaled(s float64, w Vec3) Vec3 {
	return Vec3{v.X + s*w.X, v.Y + s*w.Y, v.Z + s*w.Z}
}

// Dot returns the inner product of v and w.
//
//mw:hotpath
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
//
//mw:hotpath
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns |v|².
//
//mw:hotpath
func (v Vec3) Norm2() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Norm returns |v|.
//
//mw:hotpath
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns |v - w|².
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalized returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Clamp returns v with each component clamped into [lo, hi].
func (v Vec3) Clamp(lo, hi float64) Vec3 {
	return Vec3{clamp(v.X, lo, hi), clamp(v.Y, lo, hi), clamp(v.Z, lo, hi)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// MaxAbs returns the largest absolute component of v, i.e. the L∞ norm.
func (v Vec3) MaxAbs() float64 {
	m := math.Abs(v.X)
	if a := math.Abs(v.Y); a > m {
		m = a
	}
	if a := math.Abs(v.Z); a > m {
		m = a
	}
	return m
}

// MinAbs returns the smallest absolute component of v — e.g. the thinnest
// edge of a box extent, which is what bounds the minimum-image convention.
func (v Vec3) MinAbs() float64 {
	m := math.Abs(v.X)
	if a := math.Abs(v.Y); a < m {
		m = a
	}
	if a := math.Abs(v.Z); a < m {
		m = a
	}
	return m
}

// IsFinite reports whether every component is finite (not NaN or ±Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEqual reports whether v and w agree component-wise within tol.
func (v Vec3) ApproxEqual(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol && math.Abs(v.Z-w.Z) <= tol
}

// Angle returns the angle in radians between v and w, in [0, π].
// It is numerically stable near 0 and π (uses atan2 of cross/dot).
func (v Vec3) Angle(w Vec3) float64 {
	c := v.Cross(w).Norm()
	d := v.Dot(w)
	return math.Atan2(c, d)
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}
