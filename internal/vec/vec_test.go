package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestAddSub(t *testing.T) {
	v := New(1, 2, 3)
	w := New(4, -5, 6)
	if got := v.Add(w); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScaleNegMul(t *testing.T) {
	v := New(1, -2, 3)
	if got := v.Scale(2); got != New(2, -4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != New(-1, 2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Mul(New(2, 3, 4)); got != New(2, -6, 12) {
		t.Errorf("Mul = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	v := New(1, 1, 1)
	got := v.AddScaled(2, New(1, 2, 3))
	if got != New(3, 5, 7) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if x.Dot(y) != 0 {
		t.Error("x·y != 0")
	}
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Neg() {
		t.Errorf("y×x = %v, want -z", got)
	}
}

func TestNorms(t *testing.T) {
	v := New(3, 4, 0)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if d := v.Dist(New(0, 0, 0)); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d := v.Dist2(New(3, 4, 12)); d != 144 {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestNormalized(t *testing.T) {
	v := New(0, 3, 4).Normalized()
	if math.Abs(v.Norm()-1) > eps {
		t.Errorf("|normalized| = %v", v.Norm())
	}
	if got := Zero.Normalized(); got != Zero {
		t.Errorf("Zero.Normalized = %v", got)
	}
}

func TestClamp(t *testing.T) {
	v := New(-2, 0.5, 7).Clamp(-1, 1)
	if v != New(-1, 0.5, 1) {
		t.Errorf("Clamp = %v", v)
	}
}

func TestLerp(t *testing.T) {
	a, b := New(0, 0, 0), New(2, 4, 8)
	if got := a.Lerp(b, 0.5); got != New(1, 2, 4) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := New(-3, 2, 1).MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := New(0, -9, 5).MaxAbs(); got != 9 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := New(0, 1, -5).MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestAngle(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	if a := x.Angle(y); math.Abs(a-math.Pi/2) > eps {
		t.Errorf("Angle(x,y) = %v", a)
	}
	if a := x.Angle(x.Scale(3)); math.Abs(a) > eps {
		t.Errorf("Angle parallel = %v", a)
	}
	if a := x.Angle(x.Neg()); math.Abs(a-math.Pi) > eps {
		t.Errorf("Angle antiparallel = %v", a)
	}
}

func TestMinMax(t *testing.T) {
	a := New(1, 5, -2)
	b := New(3, 2, -4)
	if got := a.Min(b); got != New(1, 2, -4) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(3, 5, -2) {
		t.Errorf("Max = %v", got)
	}
}

func randVec(r *rand.Rand) Vec3 {
	return New(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
}

// Property: cross product is orthogonal to both operands.
func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() || a.MaxAbs() > 1e100 || b.MaxAbs() > 1e100 {
			return true // avoid overflow in intermediate products
		}
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return math.Abs(c.Dot(a)) < 1e-9*scale*scale && math.Abs(c.Dot(b)) < 1e-9*scale*scale
	}
	cfg := &quick.Config{MaxCount: 500, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: |a+b| <= |a| + |b| (triangle inequality).
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() || a.MaxAbs() > 1e150 || b.MaxAbs() > 1e150 {
			return true
		}
		sum := a.Norm() + b.Norm()
		return a.Add(b).Norm() <= sum+1e-9*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: dot product is bilinear.
func TestDotBilinearProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a, b, c := randVec(r), randVec(r), randVec(r)
		s := r.NormFloat64()
		lhs := a.Add(b.Scale(s)).Dot(c)
		rhs := a.Dot(c) + s*b.Dot(c)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("bilinearity violated: %v vs %v", lhs, rhs)
		}
	}
}

// Property: Lagrange identity |a×b|² = |a|²|b|² - (a·b)².
func TestLagrangeIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := randVec(r), randVec(r)
		lhs := a.Cross(b).Norm2()
		rhs := a.Norm2()*b.Norm2() - a.Dot(b)*a.Dot(b)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(rhs)) {
			t.Fatalf("Lagrange identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func BenchmarkAddScaled(b *testing.B) {
	v, w := New(1, 2, 3), New(4, 5, 6)
	var acc Vec3
	for i := 0; i < b.N; i++ {
		acc = acc.AddScaled(0.5, v).AddScaled(-0.25, w)
	}
	if acc.IsFinite() == false {
		b.Fatal("unexpected")
	}
}
