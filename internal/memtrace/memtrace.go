// Package memtrace converts a molecular dynamics system into the per-thread
// memory access streams its force phase generates, so the machine model
// (internal/machine) can replay them against the cache hierarchy. This is
// the bridge between the real workloads of Table I and the paper's §V
// memory-subsystem analysis: the same pair lists the engine computes are
// walked here, but what is recorded is which heap addresses get touched, in
// which order, by which thread, and how much computation separates the
// touches.
package memtrace

import (
	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/jheap"
)

// Access is one memory operation: Compute cycles of pure computation execute
// before the operation itself.
type Access struct {
	Addr    uint64
	Write   bool
	Compute uint16
}

// Stream is one thread's access sequence for a phase.
type Stream struct {
	Accesses []Access
	// ColdLo/ColdHi mark an address range whose contents are freshly
	// allocated every timestep (boxed neighbor-list and cell nodes of
	// rebuild-heavy workloads): the machine model invalidates it from every
	// cache at each phase-repeat boundary, so its lines always miss.
	ColdLo, ColdHi uint64
}

func (s *Stream) add(addr uint64, write bool, compute uint16) {
	s.Accesses = append(s.Accesses, Access{Addr: addr, Write: write, Compute: compute})
}

// Len returns the number of accesses.
func (s *Stream) Len() int { return len(s.Accesses) }

// ComputeCycles sums the pure-compute cycles in the stream.
func (s *Stream) ComputeCycles() int64 {
	var c int64
	for _, a := range s.Accesses {
		c += int64(a.Compute)
	}
	return c
}

// Per-interaction compute costs in cycles. Coulomb pairs cost more than LJ
// (sqrt + divides); bonded terms cost the most ("require more floating point
// operations", §II-B).
const (
	perAtomCompute  = 12
	ljPairCompute   = 30
	coulPairCompute = 55
	bondCompute     = 90
	angleCompute    = 150
	torsionCompute  = 230
	reduceCompute   = 2
)

// Options configures trace generation.
type Options struct {
	// Threads is the worker count; chunks are dealt cyclically as in the
	// engine's default partition.
	Threads int
	// Layout is the atom-object placement policy.
	Layout jheap.Layout
	// Order optionally gives the placement order for LayoutReordered.
	Order []int
	// JavaTemps allocates a nursery Vec3 wrapper per LJ pair and bonded
	// term, §V-B's cache pollution. The Coulomb inner loop operates on
	// primitive doubles (it is a simple q·q/r² kernel over flat arrays) and
	// allocates no wrappers, which is consistent with salt's good scaling in
	// the paper despite the "ubiquitous" wrapper class elsewhere.
	JavaTemps bool
	// IncludeRebuild prepends the linked-cell + neighbor-list rebuild
	// traffic to each phase: scattered re-reads of every atom object during
	// cell assignment and candidate scanning, plus sequential writes of the
	// accepted pair list. The paper singles out Al-1000 as requiring
	// "frequent neighbor list updates" (§III); salt and nanocar rebuild
	// rarely.
	IncludeRebuild bool
	// ScatterRegionMB, when > 0 and the layout is scattered, spreads the
	// atom objects across at least this many MB — the paper measured ~25 MB
	// working sets for its Java benchmarks. Default 24.
	ScatterRegionMB int
	// ChunkAtoms is the chunk granularity (default 64).
	ChunkAtoms int
	// Cutoff and Skin configure the neighbor list (defaults 8 / 0.8).
	Cutoff, Skin float64
	// Seed drives scattered placement.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.ChunkAtoms <= 0 {
		o.ChunkAtoms = 64
	}
	if o.Cutoff <= 0 {
		o.Cutoff = 8
	}
	if o.Skin == 0 {
		o.Skin = 0.8
	}
	if o.ScatterRegionMB == 0 {
		o.ScatterRegionMB = 24
	}
	return o
}

// AddrMap resolves simulation state to heap addresses.
type AddrMap struct {
	Atom      []uint64 // atom object base addresses
	forceBase []uint64 // per-thread privatized force arrays (packed doubles)
	shared    uint64   // shared (reduced) force array
	heap      *jheap.Heap
}

// Heap returns the underlying heap model (for census queries).
func (m *AddrMap) Heap() *jheap.Heap { return m.heap }

// Pos returns the address of atom i's position field.
func (m *AddrMap) Pos(i int32) uint64 { return m.Atom[i] + 16 }

// Force returns the address of thread t's privatized force entry for atom i.
func (m *AddrMap) Force(t int, i int32) uint64 { return m.forceBase[t] + uint64(i)*24 }

// SharedForce returns the address of the reduced force entry for atom i.
func (m *AddrMap) SharedForce(i int32) uint64 { return m.shared + uint64(i)*24 }

// NewAddrMap lays the system out on a fresh heap model.
func NewAddrMap(n int, opt Options) *AddrMap {
	opt = opt.withDefaults()
	h := jheap.New(opt.Seed)
	m := &AddrMap{heap: h}
	if opt.Layout == jheap.LayoutScattered && opt.ScatterRegionMB<<20 > n*jheap.AtomObjectBytes*4 {
		// The paper measured ~25 MB Java working sets for ~1000 atoms: atom
		// objects intermixed with other live data across the old generation.
		// Scatter the real atoms among phantom objects (GUI state, strings,
		// boxed neighbor structures) so the region matches that working set.
		// The phantom slots model dead objects and fragmentation, not live
		// data, so they are placed without census registration; only the
		// real atoms are registered as live.
		factor := (opt.ScatterRegionMB << 20) / (n * jheap.AtomObjectBytes)
		all := h.LayoutObjects(n*factor, jheap.LayoutScattered, nil)
		m.Atom = append([]uint64(nil), all[:n]...)
		h.RegisterLive("Atom3D", n, n*jheap.AtomObjectBytes)
	} else {
		m.Atom = h.LayoutAtoms(n, opt.Layout, opt.Order)
	}
	// Force arrays are double[] arrays in Java too: packed.
	m.forceBase = make([]uint64, opt.Threads)
	base := uint64(0x4000_0000)
	for t := range m.forceBase {
		m.forceBase[t] = base
		base += uint64(n) * 24
	}
	m.shared = base
	return m
}

// ownerOfChunk deals chunk c cyclically over t threads.
func ownerOfChunk(c, t int) int { return c % t }

// ForcePhase builds one force-phase access stream per thread for the system:
// LJ pairs from a fresh linked-cell neighbor list, Coulomb pairs over the
// charged list, and all bonded terms, chunk-dealt exactly like the engine.
func ForcePhase(sys *atom.System, m *AddrMap, opt Options) []Stream {
	opt = opt.withDefaults()
	t := opt.Threads
	streams := make([]Stream, t)

	nl := cells.NewNeighborList(opt.Cutoff, opt.Skin)
	nl.Build(sys)

	n := sys.N()
	nchunks := (n + opt.ChunkAtoms - 1) / opt.ChunkAtoms

	// Predictor sweep (phase 1): every atom's position is read and written
	// each step. These writes are what invalidate other cores' and other
	// sockets' cached copies of the positions between steps.
	for c := 0; c < nchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			st.add(m.Pos(int32(i)), false, perAtomCompute)
			st.add(m.Pos(int32(i)), true, 6)
		}
	}

	// Neighbor-list rebuild traffic (fused phase 3): cell assignment reads
	// every atom object, candidate scanning touches each stencil candidate
	// (roughly 3× the accepted pairs for these densities), and the accepted
	// pair list is written sequentially. All of it is low-compute scattered
	// memory traffic.
	// boxedBase is the region the boxed per-step cell/list nodes occupy;
	// their addresses are fresh every step (invalidated per repeat).
	const boxedBase = uint64(0x7000_0000)
	boxedCursor := boxedBase
	// Cell-chain nodes are reached by pointer chasing through the object
	// graph, so their addresses are effectively random within the boxed
	// region — no prefetcher helps them. Pair-list nodes, in contrast, are
	// bump-allocated and traversed in order (prefetch-friendly).
	chainLines := uint64(3 * nl.Len())
	if chainLines == 0 {
		chainLines = 1
	}
	chainAddr := func(idx uint64) uint64 {
		h := idx*0x9E3779B97F4A7C15 + 0x1234
		h ^= h >> 29
		return boxedBase + (h%chainLines)*64
	}
	chainRegion := boxedBase + chainLines*64
	var chainIdx uint64
	if opt.IncludeRebuild {
		boxedCursor = chainRegion // pair nodes live after the chain region
		for c := 0; c < nchunks; c++ {
			w := ownerOfChunk(c, t)
			st := &streams[w]
			lo := c * opt.ChunkAtoms
			hi := lo + opt.ChunkAtoms
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				st.add(m.Pos(int32(i)), false, 8) // cell assignment
				neigh := nl.Of(i)
				for k, j := range neigh {
					// Candidate scan chases a boxed cell-node chain (fresh
					// objects every rebuild, scattered by pointer order);
					// each of the ~3 candidates per accepted pair is reached
					// through its own chain node.
					st.add(chainAddr(chainIdx), false, 8)
					st.add(m.Pos(j), false, 8)
					st.add(chainAddr(chainIdx+1), false, 8)
					st.add(m.Pos((j+int32(7*k+1))%int32(n)), false, 8)
					st.add(chainAddr(chainIdx+2), false, 8)
					st.add(m.Pos((j+int32(13*k+5))%int32(n)), false, 8)
					chainIdx += 3
					// Accepted pair recorded as a boxed list node.
					st.add(boxedCursor, true, 2)
					boxedCursor += 64
				}
			}
		}
	}

	// LJ chunks over atoms.
	for c := 0; c < nchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			st.add(m.Pos(int32(i)), false, perAtomCompute)
			for _, j := range nl.Of(i) {
				if sys.Fixed[i] && sys.Fixed[j] {
					continue
				}
				if opt.IncludeRebuild {
					// Traverse the boxed pair node written this step.
					st.add(boxedCursor, false, 4)
					boxedCursor += 64
				}
				st.add(m.Pos(j), false, ljPairCompute)
				st.add(m.Force(w, int32(i)), true, 0)
				st.add(m.Force(w, j), true, 0)
				if opt.JavaTemps {
					// The LJ kernel creates two wrappers per pair: the
					// displacement vector and the force contribution.
					st.add(m.heap.AllocTemp(w, "Vec3", jheap.Vec3ObjectBytes), true, 0)
					st.add(m.heap.AllocTemp(w, "Vec3", jheap.Vec3ObjectBytes), true, 0)
				}
			}
		}
	}
	if opt.IncludeRebuild {
		for w := range streams {
			streams[w].ColdLo, streams[w].ColdHi = boxedBase, boxedCursor
		}
	}

	// Coulomb chunks over the charged list.
	charged := sys.ChargedIndices()
	ccs := opt.ChunkAtoms/2 + 1
	cchunks := (len(charged) + ccs - 1) / ccs
	for c := 0; c < cchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * ccs
		hi := lo + ccs
		if hi > len(charged) {
			hi = len(charged)
		}
		for ci := lo; ci < hi; ci++ {
			i := charged[ci]
			st.add(m.Pos(i), false, perAtomCompute)
			for cj := ci + 1; cj < len(charged); cj++ {
				j := charged[cj]
				st.add(m.Pos(j), false, coulPairCompute)
				st.add(m.Force(w, i), true, 0)
				st.add(m.Force(w, j), true, 0)
			}
		}
	}

	// Bonded chunks over term lists.
	bchunks := (len(sys.Bonds) + opt.ChunkAtoms - 1) / opt.ChunkAtoms
	for c := 0; c < bchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > len(sys.Bonds) {
			hi = len(sys.Bonds)
		}
		for _, b := range sys.Bonds[lo:hi] {
			st.add(m.Pos(b.I), false, bondCompute)
			st.add(m.Pos(b.J), false, 0)
			st.add(m.Force(w, b.I), true, 0)
			st.add(m.Force(w, b.J), true, 0)
			if opt.JavaTemps {
				st.add(m.heap.AllocTemp(w, "Vec3", jheap.Vec3ObjectBytes), true, 0)
			}
		}
	}
	achunks := (len(sys.Angles) + opt.ChunkAtoms - 1) / opt.ChunkAtoms
	for c := 0; c < achunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > len(sys.Angles) {
			hi = len(sys.Angles)
		}
		for _, a := range sys.Angles[lo:hi] {
			st.add(m.Pos(a.I), false, angleCompute)
			st.add(m.Pos(a.J), false, 0)
			st.add(m.Pos(a.K), false, 0)
			st.add(m.Force(w, a.I), true, 0)
			st.add(m.Force(w, a.J), true, 0)
			st.add(m.Force(w, a.K), true, 0)
			if opt.JavaTemps {
				st.add(m.heap.AllocTemp(w, "Vec3", jheap.Vec3ObjectBytes), true, 0)
			}
		}
	}
	tchunks := (len(sys.Torsions) + opt.ChunkAtoms - 1) / opt.ChunkAtoms
	for c := 0; c < tchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > len(sys.Torsions) {
			hi = len(sys.Torsions)
		}
		for _, to := range sys.Torsions[lo:hi] {
			st.add(m.Pos(to.I), false, torsionCompute)
			st.add(m.Pos(to.J), false, 0)
			st.add(m.Pos(to.K), false, 0)
			st.add(m.Pos(to.L), false, 0)
			st.add(m.Force(w, to.I), true, 0)
			st.add(m.Force(w, to.J), true, 0)
			st.add(m.Force(w, to.K), true, 0)
			st.add(m.Force(w, to.L), true, 0)
			if opt.JavaTemps {
				st.add(m.heap.AllocTemp(w, "Vec3", jheap.Vec3ObjectBytes), true, 0)
			}
		}
	}

	// Morse chunks over the Morse bond list.
	mchunks := (len(sys.Morses) + opt.ChunkAtoms - 1) / opt.ChunkAtoms
	for c := 0; c < mchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > len(sys.Morses) {
			hi = len(sys.Morses)
		}
		for _, mo := range sys.Morses[lo:hi] {
			st.add(m.Pos(mo.I), false, bondCompute+20) // exp() costs extra
			st.add(m.Pos(mo.J), false, 0)
			st.add(m.Force(w, mo.I), true, 0)
			st.add(m.Force(w, mo.J), true, 0)
		}
	}

	// Reduction sweep: each thread folds all privatized arrays for its atom
	// chunks into the shared force array (phase 5).
	for c := 0; c < nchunks; c++ {
		w := ownerOfChunk(c, t)
		st := &streams[w]
		lo := c * opt.ChunkAtoms
		hi := lo + opt.ChunkAtoms
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			for wt := 0; wt < t; wt++ {
				st.add(m.Force(wt, int32(i)), false, reduceCompute)
			}
			st.add(m.SharedForce(int32(i)), true, 0)
		}
	}
	return streams
}
