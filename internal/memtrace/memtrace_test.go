package memtrace

import (
	"testing"

	"mw/internal/jheap"
	"mw/internal/workload"
)

func TestStreamsCoverAllThreads(t *testing.T) {
	b := workload.Al1000()
	opt := Options{Threads: 4, Layout: jheap.LayoutPacked, Cutoff: 7, Skin: 0.6}
	m := NewAddrMap(b.Sys.N(), opt)
	streams := ForcePhase(b.Sys, m, opt)
	if len(streams) != 4 {
		t.Fatalf("streams = %d", len(streams))
	}
	for w, s := range streams {
		if s.Len() == 0 {
			t.Errorf("thread %d has empty stream", w)
		}
	}
}

func TestTotalPairWorkIndependentOfThreads(t *testing.T) {
	// The same physical work must be distributed, not duplicated: total
	// accesses across threads is the same for any thread count.
	b := workload.Salt()
	count := func(threads int) int {
		opt := Options{Threads: threads, Layout: jheap.LayoutPacked}
		m := NewAddrMap(b.Sys.N(), opt)
		streams := ForcePhase(b.Sys, m, opt)
		total := 0
		for _, s := range streams {
			total += s.Len()
		}
		// Reduction reads scale with thread count (t reads per atom);
		// subtract them for comparability.
		total -= b.Sys.N() * threads
		return total
	}
	if c1, c4 := count(1), count(4); c1-1000 > c4 || c4 > c1+1000 {
		// Allow the +1 shared write per atom difference envelope.
		t.Errorf("work not conserved: 1 thread %d vs 4 threads %d", c1, c4)
	}
}

func TestDominantForceShapesStreams(t *testing.T) {
	// salt: Coulomb-heavy → high compute per access; Al-1000: LJ → lower.
	mkComputePerAccess := func(b *workload.Benchmark) float64 {
		opt := Options{Threads: 1, Layout: jheap.LayoutPacked}
		m := NewAddrMap(b.Sys.N(), opt)
		streams := ForcePhase(b.Sys, m, opt)
		return float64(streams[0].ComputeCycles()) / float64(streams[0].Len())
	}
	salt := mkComputePerAccess(workload.Salt())
	al := mkComputePerAccess(workload.Al1000())
	if salt <= al {
		t.Errorf("compute density salt %v not above Al-1000 %v", salt, al)
	}
}

func TestJavaTempsAddNurseryTraffic(t *testing.T) {
	b := workload.Al1000()
	opt := Options{Threads: 1, Layout: jheap.LayoutScattered, JavaTemps: true, Cutoff: 7, Skin: 0.6}
	m := NewAddrMap(b.Sys.N(), opt)
	streams := ForcePhase(b.Sys, m, opt)
	optNo := opt
	optNo.JavaTemps = false
	m2 := NewAddrMap(b.Sys.N(), optNo)
	plain := ForcePhase(b.Sys, m2, optNo)
	if streams[0].Len() <= plain[0].Len() {
		t.Error("JavaTemps did not add accesses")
	}
	// Census: temps dominate live heap (§V-B).
	if f := m.Heap().ClassFraction("Vec3"); f <= 0.5 {
		t.Errorf("Vec3 fraction = %v, want > 0.5", f)
	}
}

func TestScatteredLayoutWideSpan(t *testing.T) {
	n := 1000
	mp := NewAddrMap(n, Options{Threads: 1, Layout: jheap.LayoutPacked})
	ms := NewAddrMap(n, Options{Threads: 1, Layout: jheap.LayoutScattered, ScatterRegionMB: 24, Seed: 3})
	spanP := jheap.Span(mp.Atom, jheap.AtomObjectBytes)
	spanS := jheap.Span(ms.Atom, jheap.AtomObjectBytes)
	if spanS < 10*spanP {
		t.Errorf("scattered span %d not ≫ packed span %d", spanS, spanP)
	}
	if spanS < 20<<20 {
		t.Errorf("scattered span %d below the ~24MB working-set target", spanS)
	}
}

func TestForceArraysPrivatePerThread(t *testing.T) {
	m := NewAddrMap(100, Options{Threads: 3})
	// Different threads' force entries for the same atom never collide.
	for i := int32(0); i < 100; i++ {
		a0, a1, a2 := m.Force(0, i), m.Force(1, i), m.Force(2, i)
		if a0 == a1 || a1 == a2 || a0 == a2 {
			t.Fatalf("privatized force arrays alias at atom %d", i)
		}
	}
	// Shared array distinct from all privates.
	if m.SharedForce(0) == m.Force(0, 0) {
		t.Error("shared force aliases private array")
	}
}

func TestFixedPairsSkipped(t *testing.T) {
	// Nanocar platform atoms do not interact with one another; the trace
	// must reflect the reduced effective atom count.
	b := workload.Nanocar()
	opt := Options{Threads: 1, Layout: jheap.LayoutPacked}
	m := NewAddrMap(b.Sys.N(), opt)
	streams := ForcePhase(b.Sys, m, opt)

	all := b.Sys.Clone()
	for i := range all.Fixed {
		all.Fixed[i] = false
	}
	m2 := NewAddrMap(all.N(), opt)
	unskipped := ForcePhase(all, m2, opt)
	if streams[0].Len() >= unskipped[0].Len() {
		t.Error("fixed-fixed pair skipping had no effect")
	}
}

func TestOwnerOfChunkCyclic(t *testing.T) {
	for c := 0; c < 12; c++ {
		if ownerOfChunk(c, 4) != c%4 {
			t.Fatal("cyclic dealing broken")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Threads != 1 || o.ChunkAtoms != 64 || o.Cutoff != 8 || o.Skin != 0.8 || o.ScatterRegionMB != 24 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
