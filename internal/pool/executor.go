package pool

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// spawnLabeled starts fn as a worker goroutine carrying pprof labels, so CPU
// profiles of a running engine split per pool kind and per worker.
func spawnLabeled(kind string, w int, fn func()) {
	go pprof.Do(context.Background(),
		pprof.Labels("mw_pool", kind, "mw_worker", strconv.Itoa(w)),
		func(context.Context) { fn() })
}

// Executor is the role java.util.concurrent.ExecutorService plays in
// Molecular Workbench: accept tasks, run them on a fixed set of workers.
type Executor interface {
	// Execute enqueues a task for asynchronous execution.
	Execute(Task)
	// Workers returns the fixed worker count.
	Workers() int
	// Shutdown drains queued tasks and stops the workers, blocking until
	// every worker has exited.
	Shutdown()
}

// WorkerStats records per-worker activity for the load-balance analysis of
// §IV: task counts and cumulative busy time.
type WorkerStats struct {
	Tasks int64
	Busy  time.Duration
}

// FixedPool is a fixed-size pool whose workers share a single work queue —
// the paper's first configuration: "If all threads are in a single thread
// pool, they share a single work queue … any work waiting to be assigned
// will be picked up by the next available thread. On the other hand … all
// threads are contending for access to that single resource."
type FixedPool struct {
	queue *Queue
	n     int
	teleSlot
	wg      sync.WaitGroup
	mu      sync.Mutex
	stats   []WorkerStats
	stopped bool
}

// NewFixedPool starts n workers sharing one queue.
func NewFixedPool(n int) *FixedPool {
	if n <= 0 {
		panic("pool: need at least one worker")
	}
	p := &FixedPool{queue: NewQueue(), n: n, stats: make([]WorkerStats, n)}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		spawnLabeled("fixed", w, func() { p.worker(w) })
	}
	return p
}

func (p *FixedPool) worker(w int) {
	defer p.wg.Done()
	for {
		t, ok, waited := p.queue.TakeTimed()
		if waited > 0 {
			if tele := p.load(); tele != nil {
				tele.Park(w, waited)
			}
		}
		if !ok {
			return
		}
		start := time.Now()
		t()
		d := time.Since(start)
		p.mu.Lock()
		p.stats[w].Tasks++
		p.stats[w].Busy += d
		p.mu.Unlock()
	}
}

// Execute implements Executor.
//
//mw:hotpath
func (p *FixedPool) Execute(t Task) { p.queue.Put(t) }

// Workers implements Executor.
func (p *FixedPool) Workers() int { return p.n }

// Shutdown implements Executor.
func (p *FixedPool) Shutdown() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	p.queue.Close()
	p.wg.Wait()
}

// Stats returns a copy of the per-worker statistics.
func (p *FixedPool) Stats() []WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WorkerStats(nil), p.stats...)
}

// QueueStats exposes the shared queue's contention counters.
func (p *FixedPool) QueueStats() (enqueued, dequeued, contended int64) {
	return p.queue.Stats()
}

// PinnedPools is the paper's second configuration — "for each core a
// FixedThreadPool containing a single thread. By assigning work to the pool,
// it would be executed by the corresponding thread" (§V-B) — and also the
// one-queue-per-thread layout of §II-B: no queue contention, but an
// overloaded queue leaves other workers idle.
type PinnedPools struct {
	queues []*Queue
	rr     atomic.Uint64 // round-robin ticket counter for Execute
	teleSlot
	wg      sync.WaitGroup
	mu      sync.Mutex
	stats   []WorkerStats
	stopped bool
}

// NewPinnedPools starts n single-worker pools, each with its own queue.
func NewPinnedPools(n int) *PinnedPools {
	if n <= 0 {
		panic("pool: need at least one worker")
	}
	p := &PinnedPools{queues: make([]*Queue, n), stats: make([]WorkerStats, n)}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		p.queues[w] = NewQueue()
		w := w
		spawnLabeled("pinned", w, func() { p.worker(w) })
	}
	return p
}

func (p *PinnedPools) worker(w int) {
	defer p.wg.Done()
	for {
		t, ok, waited := p.queues[w].TakeTimed()
		if waited > 0 {
			if tele := p.load(); tele != nil {
				tele.Park(w, waited)
			}
		}
		if !ok {
			return
		}
		start := time.Now()
		t()
		d := time.Since(start)
		p.mu.Lock()
		p.stats[w].Tasks++
		p.stats[w].Busy += d
		p.mu.Unlock()
	}
}

// Submit enqueues a task on worker w's private queue. This is the mechanism
// for directing "tasks and computations using the same subsets of the
// simulation data … to the same thread" (temporal cache locality, §V-B).
//
//mw:hotpath
func (p *PinnedPools) Submit(w int, t Task) {
	if w < 0 || w >= len(p.queues) {
		panic(fmt.Sprintf("pool: worker %d out of range [0,%d)", w, len(p.queues)))
	}
	p.queues[w].Put(t)
}

// Execute implements Executor with true round-robin placement (no
// affinity): an atomic ticket counter deals tasks to the private queues in
// strict rotation. The previous shortest-queue scan read every queue's Len
// and then Put non-atomically, so concurrent submitters raced to the same
// momentarily-short queue and fast workers made every length read 0 —
// collapsing "no locality preference" into "everything on queue 0".
//
//mw:hotpath
func (p *PinnedPools) Execute(t Task) {
	w := int((p.rr.Add(1) - 1) % uint64(len(p.queues)))
	p.queues[w].Put(t)
}

// Workers implements Executor.
func (p *PinnedPools) Workers() int { return len(p.queues) }

// Shutdown implements Executor.
func (p *PinnedPools) Shutdown() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	for _, q := range p.queues {
		q.Close()
	}
	p.wg.Wait()
}

// Stats returns a copy of the per-worker statistics.
func (p *PinnedPools) Stats() []WorkerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WorkerStats(nil), p.stats...)
}

// QueueStats sums the contention counters across all private queues.
func (p *PinnedPools) QueueStats() (enqueued, dequeued, contended int64) {
	for _, q := range p.queues {
		e, d, c := q.Stats()
		enqueued += e
		dequeued += d
		contended += c
	}
	return enqueued, dequeued, contended
}

// RunPhase submits one task per chunk to the executor and blocks until all
// chunks complete — exactly one simulation phase in the paper's structure:
// fan work out, count down a latch, await the latch (a barrier between
// phases).
func RunPhase(ex Executor, chunks []Task) {
	latch := NewLatch(len(chunks))
	for _, c := range chunks {
		c := c
		ex.Execute(func() {
			c()
			latch.CountDown()
		})
	}
	latch.Await()
}
