package pool

import (
	"sync/atomic"
	"time"
)

// Telemetry receives pool-level scheduling events: steals and parks. It is a
// narrow structural subset of internal/telemetry's Sink, declared here so the
// pool does not depend on the telemetry package; a *telemetry.Recorder (or
// any Sink) satisfies it directly.
type Telemetry interface {
	// Steal is called by the executing worker after it runs a task taken
	// from another worker's deque.
	Steal(worker int)
	// Park is called after a worker blocked waiting for work, with the time
	// it spent blocked.
	Park(worker int, wait time.Duration)
}

// teleRef boxes the interface so pools can install it atomically while
// workers are already running: workers load the pointer once per event, which
// is race-free without touching the queue locks.
type teleRef struct{ t Telemetry }

// teleSlot is the shared install/load mechanics embedded in each pool type.
type teleSlot struct {
	ref atomic.Pointer[teleRef]
}

// SetTelemetry installs (or, with nil, removes) the event sink. Safe to call
// while workers run; events race-freely start flowing to the new sink.
func (s *teleSlot) SetTelemetry(t Telemetry) {
	if t == nil {
		s.ref.Store(nil)
		return
	}
	s.ref.Store(&teleRef{t: t})
}

// load returns the installed sink or nil.
//
//mw:hotpath
func (s *teleSlot) load() Telemetry {
	if r := s.ref.Load(); r != nil {
		return r.t
	}
	return nil
}
