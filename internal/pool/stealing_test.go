package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStealingRunsAllTasksExactlyOnce(t *testing.T) {
	p := NewStealingPools(4)
	const tasks = 2000
	var counts [tasks]atomic.Int32
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		i := i
		p.SubmitFor(i%4, func(_ int) {
			counts[i].Add(1)
			latch.CountDown()
		})
	}
	latch.Await()
	p.Shutdown()
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
	var executed int64
	for _, e := range p.Executed() {
		executed += e
	}
	if executed != tasks {
		t.Errorf("executed sum %d", executed)
	}
}

func TestStealingBalancesLoadedDeque(t *testing.T) {
	// A long-running task occupies one worker while 200 short tasks sit in
	// deque 0. The batch must complete regardless; and when the blocked
	// worker is worker 0 itself (the owner), every short task can only have
	// been STOLEN.
	p := NewStealingPools(4)
	gate := make(chan struct{})
	blockerWorker := make(chan int, 1)
	started := make(chan struct{})
	p.SubmitFor(0, func(w int) {
		blockerWorker <- w
		close(started)
		<-gate
	})
	<-started

	const tasks = 200
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		p.SubmitFor(0, func(_ int) { latch.CountDown() })
	}
	done := make(chan struct{})
	go func() { latch.Await(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stealing pool did not drain a loaded deque")
	}
	close(gate)
	p.Shutdown()
	var steals int64
	for _, s := range p.Steals() {
		steals += s
	}
	if <-blockerWorker == 0 && steals < tasks {
		t.Errorf("owner was blocked but only %d of %d tasks were stolen", steals, tasks)
	}
}

func TestDequeDiscipline(t *testing.T) {
	// Owner pops LIFO from the bottom; thieves take FIFO from the top.
	d := &deque{}
	order := []int{}
	mk := func(i int) WTask { return func(_ int) { order = append(order, i) } }
	d.pushBottom(mk(1))
	d.pushBottom(mk(2))
	d.pushBottom(mk(3))
	if t1, ok := d.stealTop(); !ok {
		t.Fatal("stealTop failed")
	} else {
		t1(0)
	}
	if t3, ok := d.popBottom(); !ok {
		t.Fatal("popBottom failed")
	} else {
		t3(0)
	}
	if t2, ok := d.popBottom(); !ok {
		t.Fatal("second popBottom failed")
	} else {
		t2(0)
	}
	if _, ok := d.popBottom(); ok {
		t.Fatal("empty deque popped")
	}
	if _, ok := d.stealTop(); ok {
		t.Fatal("empty deque stolen from")
	}
	want := []int{1, 3, 2} // steal got oldest, pops got newest-first
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("discipline order %v, want %v", order, want)
		}
	}
}

func TestStealingWorkerIDMatchesExecutor(t *testing.T) {
	// The worker id passed to the task must identify the goroutine that
	// runs it: per-worker slots written via that id never race.
	p := NewStealingPools(4)
	slots := make([][]int, 4)
	var mu [4]sync.Mutex
	const tasks = 400
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		i := i
		p.SubmitFor(0, func(w int) { // all owned by 0: forces stealing
			mu[w].Lock()
			slots[w] = append(slots[w], i)
			mu[w].Unlock()
			latch.CountDown()
		})
	}
	latch.Await()
	p.Shutdown()
	total := 0
	for w := range slots {
		total += len(slots[w])
	}
	if total != tasks {
		t.Errorf("slot total %d", total)
	}
}

func TestStealingShutdownDrains(t *testing.T) {
	p := NewStealingPools(2)
	var n atomic.Int32
	for i := 0; i < 50; i++ {
		p.SubmitFor(i, func(_ int) { n.Add(1) })
	}
	p.Shutdown() // must not return before queued tasks drain
	if n.Load() != 50 {
		t.Errorf("drained %d of 50", n.Load())
	}
	p.Shutdown() // idempotent
}

func TestStealingSubmitAfterShutdownPanics(t *testing.T) {
	p := NewStealingPools(1)
	p.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("SubmitFor after Shutdown must panic")
		}
	}()
	p.SubmitFor(0, func(_ int) {})
}

func TestStealingPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero workers must panic")
		}
	}()
	NewStealingPools(0)
}

func TestStealingSingleWorkerNeverSteals(t *testing.T) {
	// A one-worker pool has no victims: everything executes locally.
	// (Owner preference with several workers is a throughput property that
	// a single-CPU host cannot observe reliably: whichever goroutine is
	// scheduled drains every deque.)
	p := NewStealingPools(1)
	latch := NewLatch(100)
	for i := 0; i < 100; i++ {
		p.SubmitFor(0, func(_ int) { latch.CountDown() })
	}
	latch.Await()
	p.Shutdown()
	if p.Steals()[0] != 0 {
		t.Errorf("single worker stole %d tasks", p.Steals()[0])
	}
	if p.Executed()[0] != 100 {
		t.Errorf("executed %d", p.Executed()[0])
	}
	if p.Workers() != 1 {
		t.Errorf("Workers = %d", p.Workers())
	}
}
