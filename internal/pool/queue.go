// Package pool reproduces the java.util.concurrent machinery that the paper
// used to parallelize Molecular Workbench (§II-B): fixed-size thread pools
// fed by blocking work queues (either one shared queue or one queue per
// worker), countdown latches for phase completion, and a cyclic barrier.
//
// The work queue is deliberately implemented as a mutex-protected deque with
// condition variables — the structure of Java's LinkedBlockingQueue — rather
// than a Go channel, because the paper's single-queue-vs-multi-queue
// trade-off is about lock contention on the queue ("all threads are
// contending for access to that single resource"), and the queue exposes
// contention counters so the benchmarks can measure exactly that.
package pool

import (
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of work submitted to an executor.
type Task func()

// Queue is a blocking FIFO task queue with contention accounting.
type Queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	tasks    []Task
	closed   bool

	// contended counts lock acquisitions that found the lock already held —
	// the "threads contending for a single resource" effect of §II-B.
	contended atomic.Int64
	enqueued  atomic.Int64
	dequeued  atomic.Int64
}

// NewQueue returns an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// lock acquires the queue mutex and counts the acquisition as contended if
// the lock was already held. Only the worker-facing operations (Put, Take,
// TryTake) go through it: maintenance and monitoring paths (Close, Len) use
// the mutex directly so that polling the queue does not pollute the §II-B
// contention counter it is trying to observe.
//
//mw:coldcall
func (q *Queue) lock() {
	if !q.mu.TryLock() {
		q.contended.Add(1)
		q.mu.Lock()
	}
}

// Put appends a task. It panics if the queue is closed.
//
//mw:hotpath
func (q *Queue) Put(t Task) {
	q.lock()
	if q.closed {
		q.mu.Unlock()
		panic("pool: Put on closed queue")
	}
	q.tasks = append(q.tasks, t)
	q.enqueued.Add(1)
	q.mu.Unlock()
	q.nonEmpty.Signal()
}

// Take removes the oldest task, blocking while the queue is empty. It
// returns ok=false once the queue is closed and drained.
//
//mw:hotpath
func (q *Queue) Take() (Task, bool) {
	t, ok, _ := q.TakeTimed()
	return t, ok
}

// TakeTimed is Take plus a measurement of how long the caller blocked
// waiting for a task — 0 when one was immediately available. Pool workers
// report the blocked time as park events to telemetry; the clock only runs
// on the empty-queue path, so a loaded queue pays nothing for it.
//
//mw:hotpath
func (q *Queue) TakeTimed() (t Task, ok bool, waited time.Duration) {
	q.lock()
	if len(q.tasks) == 0 && !q.closed {
		t0 := time.Now()
		for len(q.tasks) == 0 && !q.closed {
			q.nonEmpty.Wait()
		}
		waited = time.Since(t0)
	}
	if len(q.tasks) == 0 {
		q.mu.Unlock()
		return nil, false, waited
	}
	t = q.tasks[0]
	q.tasks = q.tasks[1:]
	q.dequeued.Add(1)
	q.mu.Unlock()
	return t, true, waited
}

// TryTake removes a task without blocking; ok=false if none available.
//
//mw:hotpath
func (q *Queue) TryTake() (Task, bool) {
	q.lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	q.dequeued.Add(1)
	return t, true
}

// Close marks the queue closed; blocked Take calls drain remaining tasks and
// then return ok=false.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// Len returns the current number of queued tasks. It is a monitoring path
// and deliberately bypasses the contention accounting.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// Stats returns lifetime enqueue, dequeue and contention counts.
func (q *Queue) Stats() (enqueued, dequeued, contended int64) {
	return q.enqueued.Load(), q.dequeued.Load(), q.contended.Load()
}
