package pool

import (
	"sync"
	"sync/atomic"
	"time"
)

// WTask is a work item that learns which worker executed it — needed by
// consumers that keep per-worker private state (the engine's privatized
// force arrays) under work stealing, where the executing worker may differ
// from the owner the task was submitted to.
type WTask func(worker int)

// StealingPools resolves §II-B's queue dilemma — a single shared queue
// contends, per-worker queues strand work — the way java.util.concurrent's
// ForkJoinPool later did: every worker owns a deque, owners pop LIFO from
// the bottom, and idle workers steal FIFO from the top of a victim's deque.
type StealingPools struct {
	deques []*deque
	n      int
	teleSlot

	mu      sync.Mutex
	idle    *sync.Cond
	seq     uint64 // bumped on every submit; lets workers park race-free
	stopped bool

	wg       sync.WaitGroup
	executed []atomic.Int64
	steals   []atomic.Int64
}

// deque is a mutex-guarded double-ended queue. Contention is inherently low:
// the owner works the bottom, thieves only touch it when their own deque is
// empty.
type deque struct {
	mu    sync.Mutex
	items []WTask
}

//mw:hotpath
func (d *deque) pushBottom(t WTask) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

//mw:hotpath
func (d *deque) popBottom() (WTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	t := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return t, true
}

//mw:hotpath
func (d *deque) stealTop() (WTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil, false
	}
	t := d.items[0]
	d.items = d.items[1:]
	return t, true
}

// NewStealingPools starts n workers with private deques.
func NewStealingPools(n int) *StealingPools {
	if n <= 0 {
		panic("pool: need at least one worker")
	}
	p := &StealingPools{
		deques:   make([]*deque, n),
		n:        n,
		executed: make([]atomic.Int64, n),
		steals:   make([]atomic.Int64, n),
	}
	p.idle = sync.NewCond(&p.mu)
	for i := range p.deques {
		p.deques[i] = &deque{}
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		spawnLabeled("stealing", w, func() { p.worker(w) })
	}
	return p
}

// SubmitFor enqueues a task on the owner's deque. Any worker may end up
// executing it. Tasks submitted from inside other tasks are not supported
// once Shutdown has been called.
//
//mw:hotpath
func (p *StealingPools) SubmitFor(owner int, t WTask) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		panic("pool: SubmitFor after Shutdown")
	}
	p.deques[owner%p.n].pushBottom(t)
	p.seq++
	p.mu.Unlock()
	p.idle.Broadcast()
}

// worker runs until shutdown: own deque first, then steal sweeps, then park.
func (p *StealingPools) worker(w int) {
	defer p.wg.Done()
	var seen uint64
	for {
		p.mu.Lock()
		seen = p.seq
		stopped := p.stopped
		p.mu.Unlock()

		if t, stolen := p.find(w); t != nil {
			t(w)
			p.executed[w].Add(1)
			if stolen {
				p.steals[w].Add(1)
				if tele := p.load(); tele != nil {
					tele.Steal(w)
				}
			}
			continue
		}
		if stopped {
			return // stopped and every deque empty at the last sweep
		}
		// Nothing found: park until a newer submit or shutdown. Comparing
		// against the sequence observed BEFORE the sweep closes the race
		// where a task lands mid-sweep.
		var waited time.Duration
		p.mu.Lock()
		if p.seq == seen && !p.stopped {
			t0 := time.Now()
			for p.seq == seen && !p.stopped {
				p.idle.Wait()
			}
			waited = time.Since(t0)
		}
		p.mu.Unlock()
		if waited > 0 {
			if tele := p.load(); tele != nil {
				tele.Park(w, waited)
			}
		}
	}
}

// find pops locally or steals from victims in round-robin order.
//
//mw:hotpath
func (p *StealingPools) find(w int) (WTask, bool) {
	if t, ok := p.deques[w].popBottom(); ok {
		return t, false
	}
	for k := 1; k < p.n; k++ {
		if t, ok := p.deques[(w+k)%p.n].stealTop(); ok {
			return t, true
		}
	}
	return nil, false
}

// Workers returns the worker count.
func (p *StealingPools) Workers() int { return p.n }

// Shutdown drains remaining tasks and stops the workers.
func (p *StealingPools) Shutdown() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	p.mu.Unlock()
	p.idle.Broadcast()
	p.wg.Wait()
}

// Executed returns per-worker executed-task counts.
func (p *StealingPools) Executed() []int64 {
	out := make([]int64, p.n)
	for i := range out {
		out[i] = p.executed[i].Load()
	}
	return out
}

// Steals returns per-worker steal counts (tasks a worker took from another
// worker's deque).
func (p *StealingPools) Steals() []int64 {
	out := make([]int64, p.n)
	for i := range out {
		out[i] = p.steals[i].Load()
	}
	return out
}
