package pool

import "sync"

// CountDownLatch mirrors java.util.concurrent.CountDownLatch: the engine
// initializes one per phase to the number of work chunks; each worker
// decrements it when its chunk is done, and the coordinator awaits zero
// before starting the next phase (paper §II-B: "When the thread finishes
// its work, it decrements a countdown latch so the program knows when all
// work in the phase is complete").
type CountDownLatch struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// NewLatch returns a latch initialized to n. n must be non-negative.
func NewLatch(n int) *CountDownLatch {
	if n < 0 {
		panic("pool: negative latch count")
	}
	l := &CountDownLatch{n: n}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// CountDown decrements the latch, releasing waiters at zero. Decrementing
// below zero is a no-op, matching Java semantics.
func (l *CountDownLatch) CountDown() {
	l.mu.Lock()
	if l.n > 0 {
		l.n--
		if l.n == 0 {
			l.cond.Broadcast()
		}
	}
	l.mu.Unlock()
}

// Await blocks until the latch reaches zero.
func (l *CountDownLatch) Await() {
	l.mu.Lock()
	for l.n > 0 {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// Count returns the current count.
func (l *CountDownLatch) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// CyclicBarrier is a reusable barrier for a fixed party count, equivalent to
// java.util.concurrent.CyclicBarrier. Await returns the arrival index
// (parties-1 for the first arriver, 0 for the last, as in Java).
type CyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
	trips   uint64
}

// NewBarrier returns a barrier for the given positive party count.
func NewBarrier(parties int) *CyclicBarrier {
	if parties <= 0 {
		panic("pool: barrier needs at least one party")
	}
	b := &CyclicBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have arrived, then releases the generation
// together and resets for reuse.
func (b *CyclicBarrier) Await() int {
	b.mu.Lock()
	gen := b.gen
	index := b.parties - 1 - b.waiting
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.trips++
		b.cond.Broadcast()
		b.mu.Unlock()
		return index
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return index
}

// Parties returns the configured party count.
func (b *CyclicBarrier) Parties() int { return b.parties }

// Trips returns how many times the barrier has been tripped.
func (b *CyclicBarrier) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
