package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.Put(func() { got = append(got, i) })
	}
	for {
		task, ok := q.TryTake()
		if !ok {
			break
		}
		task()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestQueueTakeBlocksUntilPut(t *testing.T) {
	q := NewQueue()
	done := make(chan struct{})
	go func() {
		task, ok := q.Take()
		if !ok {
			t.Error("Take returned !ok on open queue")
		} else {
			task()
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	ran := false
	q.Put(func() { ran = true })
	<-done
	if !ran {
		t.Error("task not executed")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue()
	var n atomic.Int32
	q.Put(func() { n.Add(1) })
	q.Put(func() { n.Add(1) })
	q.Close()
	for {
		task, ok := q.Take()
		if !ok {
			break
		}
		task()
	}
	if n.Load() != 2 {
		t.Errorf("drained %d tasks, want 2", n.Load())
	}
	if _, ok := q.Take(); ok {
		t.Error("Take on closed empty queue returned ok")
	}
}

func TestQueuePutAfterClosePanics(t *testing.T) {
	q := NewQueue()
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("Put after Close must panic")
		}
	}()
	q.Put(func() {})
}

func TestQueueStats(t *testing.T) {
	q := NewQueue()
	q.Put(func() {})
	q.Put(func() {})
	q.TryTake()
	e, d, _ := q.Stats()
	if e != 2 || d != 1 {
		t.Errorf("Stats = %d enq, %d deq", e, d)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestLatchBasic(t *testing.T) {
	l := NewLatch(3)
	if l.Count() != 3 {
		t.Fatalf("Count = %d", l.Count())
	}
	done := make(chan struct{})
	go func() {
		l.Await()
		close(done)
	}()
	l.CountDown()
	l.CountDown()
	select {
	case <-done:
		t.Fatal("Await returned before zero")
	case <-time.After(5 * time.Millisecond):
	}
	l.CountDown()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Await did not return at zero")
	}
	// Extra countdowns are no-ops.
	l.CountDown()
	if l.Count() != 0 {
		t.Error("count went negative")
	}
}

func TestLatchZeroImmediate(t *testing.T) {
	l := NewLatch(0)
	c := make(chan struct{})
	go func() { l.Await(); close(c) }()
	select {
	case <-c:
	case <-time.After(time.Second):
		t.Fatal("Await on zero latch blocked")
	}
}

func TestLatchNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative latch must panic")
		}
	}()
	NewLatch(-1)
}

func TestLatchConcurrentCountdown(t *testing.T) {
	const n = 100
	l := NewLatch(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.CountDown()
		}()
	}
	l.Await()
	wg.Wait()
	if l.Count() != 0 {
		t.Errorf("Count = %d after full countdown", l.Count())
	}
}

func TestBarrierReuse(t *testing.T) {
	const parties = 4
	const rounds = 10
	b := NewBarrier(parties)
	var phase atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan string, parties*rounds)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cur := phase.Load()
				idx := b.Await()
				if idx == 0 { // last arriver advances the phase
					phase.Add(1)
				}
				// Everyone must observe phase > cur after the barrier... but
				// the last arriver increments after release; re-sync first.
				b.Await()
				if got := phase.Load(); got != cur+1 {
					errs <- "phase skew"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if b.Trips() != parties*rounds/2 {
		t.Errorf("Trips = %d, want %d", b.Trips(), parties*rounds/2)
	}
}

func TestBarrierArrivalIndices(t *testing.T) {
	b := NewBarrier(3)
	var wg sync.WaitGroup
	idxs := make(chan int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idxs <- b.Await()
		}()
	}
	wg.Wait()
	close(idxs)
	seen := map[int]bool{}
	for i := range idxs {
		if seen[i] {
			t.Fatalf("duplicate arrival index %d", i)
		}
		seen[i] = true
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Errorf("missing arrival index %d", i)
		}
	}
}

func TestBarrierPanicsOnBadParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-party barrier must panic")
		}
	}()
	NewBarrier(0)
}

func TestFixedPoolRunsAllTasks(t *testing.T) {
	p := NewFixedPool(4)
	var n atomic.Int64
	const tasks = 1000
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		p.Execute(func() {
			n.Add(1)
			latch.CountDown()
		})
	}
	latch.Await()
	p.Shutdown()
	if n.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", n.Load(), tasks)
	}
	e, d, _ := p.QueueStats()
	if e != tasks || d != tasks {
		t.Errorf("queue stats %d/%d", e, d)
	}
	var statTotal int64
	for _, s := range p.Stats() {
		statTotal += s.Tasks
	}
	if statTotal != tasks {
		t.Errorf("worker stats sum %d", statTotal)
	}
}

func TestFixedPoolSharedQueueBalances(t *testing.T) {
	// With a shared queue, blocking tasks cannot starve other workers:
	// 4 workers, 4 slow tasks and many fast ones — fast tasks complete even
	// while slow tasks occupy some workers.
	p := NewFixedPool(4)
	defer p.Shutdown()
	slowGate := make(chan struct{})
	for i := 0; i < 2; i++ {
		p.Execute(func() { <-slowGate })
	}
	var fast atomic.Int32
	latch := NewLatch(50)
	for i := 0; i < 50; i++ {
		p.Execute(func() {
			fast.Add(1)
			latch.CountDown()
		})
	}
	donec := make(chan struct{})
	go func() { latch.Await(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(5 * time.Second):
		t.Fatal("fast tasks starved behind slow ones despite shared queue")
	}
	close(slowGate)
}

func TestFixedPoolShutdownIdempotent(t *testing.T) {
	p := NewFixedPool(2)
	p.Shutdown()
	p.Shutdown()
}

func TestFixedPoolPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size pool must panic")
		}
	}()
	NewFixedPool(0)
}

func TestPinnedPoolsSubmitAffinity(t *testing.T) {
	p := NewPinnedPools(3)
	const tasks = 60
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		w := i % 3
		p.Submit(w, func() { latch.CountDown() })
	}
	latch.Await()
	p.Shutdown()
	for w, s := range p.Stats() {
		if s.Tasks != tasks/3 {
			t.Errorf("worker %d ran %d tasks, want %d", w, s.Tasks, tasks/3)
		}
	}
}

func TestPinnedPoolsImbalance(t *testing.T) {
	// One queue loaded, others idle — the §II-B failure mode of per-thread
	// queues: "one queue has considerable work while other threads, with
	// empty work queues, sit idle".
	p := NewPinnedPools(4)
	const tasks = 40
	latch := NewLatch(tasks)
	for i := 0; i < tasks; i++ {
		p.Submit(0, func() { latch.CountDown() })
	}
	latch.Await()
	p.Shutdown()
	st := p.Stats()
	if st[0].Tasks != tasks {
		t.Errorf("worker 0 ran %d", st[0].Tasks)
	}
	for w := 1; w < 4; w++ {
		if st[w].Tasks != 0 {
			t.Errorf("idle worker %d ran %d tasks", w, st[w].Tasks)
		}
	}
}

func TestPinnedPoolsExecuteSpreads(t *testing.T) {
	p := NewPinnedPools(4)
	const tasks = 400
	latch := NewLatch(tasks)
	gate := make(chan struct{})
	for i := 0; i < tasks; i++ {
		p.Execute(func() { <-gate; latch.CountDown() })
	}
	close(gate)
	latch.Await()
	p.Shutdown()
	for w, s := range p.Stats() {
		if s.Tasks == 0 {
			t.Errorf("worker %d received no tasks from Execute", w)
		}
	}
}

func TestPinnedPoolsSubmitOutOfRangePanics(t *testing.T) {
	p := NewPinnedPools(2)
	defer p.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Submit must panic")
		}
	}()
	p.Submit(5, func() {})
}

func TestRunPhaseCompletesAllChunks(t *testing.T) {
	for _, newEx := range []func() Executor{
		func() Executor { return NewFixedPool(4) },
		func() Executor { return NewPinnedPools(4) },
	} {
		ex := newEx()
		var n atomic.Int32
		chunks := make([]Task, 17)
		for i := range chunks {
			chunks[i] = func() { n.Add(1) }
		}
		RunPhase(ex, chunks)
		if n.Load() != 17 {
			t.Errorf("RunPhase completed %d chunks", n.Load())
		}
		// Phases are barriers: a second phase only runs after the first.
		var order []int32
		var mu sync.Mutex
		RunPhase(ex, []Task{func() { mu.Lock(); order = append(order, 1); mu.Unlock() }})
		RunPhase(ex, []Task{func() { mu.Lock(); order = append(order, 2); mu.Unlock() }})
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Errorf("phase ordering violated: %v", order)
		}
		ex.Shutdown()
	}
}

func TestSingleQueueContentionExceedsPerWorkerQueues(t *testing.T) {
	// The paper's queue trade-off, made measurable: hammer a shared queue
	// from many submitters vs. private queues, compare contention counters.
	shared := NewQueue()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				shared.Put(func() {})
				shared.TryTake()
			}
		}()
	}
	wg.Wait()
	_, _, sharedContended := shared.Stats()

	private := make([]*Queue, 8)
	for i := range private {
		private[i] = NewQueue()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := private[g]
			for i := 0; i < 2000; i++ {
				q.Put(func() {})
				q.TryTake()
			}
		}(g)
	}
	wg.Wait()
	var privContended int64
	for _, q := range private {
		_, _, c := q.Stats()
		privContended += c
	}
	// On a single-CPU host goroutines interleave cooperatively, so absolute
	// contention may be low; the ordering must still hold.
	if sharedContended < privContended {
		t.Errorf("shared queue contention (%d) below private queues (%d)",
			sharedContended, privContended)
	}
}

func TestQueueMaintenancePathsLeaveContentionUntouched(t *testing.T) {
	// Regression: Close and Len used to go through the counting lock(), so
	// the §II-B "threads contending for a single resource" counter included
	// monitoring and maintenance acquisitions. Hammering Len (and a final
	// Close) from many goroutines with no worker traffic must leave the
	// counter exactly where worker traffic put it.
	q := NewQueue()
	for i := 0; i < 100; i++ {
		q.Put(func() {})
	}
	for i := 0; i < 50; i++ {
		q.TryTake()
	}
	_, _, before := q.Stats()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				q.Len()
			}
		}()
	}
	wg.Wait()
	q.Close()
	if _, _, after := q.Stats(); after != before {
		t.Errorf("Len/Close polling moved the contention counter: %d → %d", before, after)
	}
}

func TestPinnedPoolsExecuteRoundRobinExact(t *testing.T) {
	// Regression: Execute claimed round-robin but did a racy shortest-queue
	// scan; with fast workers every Len read 0 and placement collapsed onto
	// queue 0. True round-robin deals exactly tasks/workers to each private
	// queue — and each queue is consumed only by its own worker, so the
	// per-worker task counts are the placement distribution.
	const workers, perWorker = 4, 100
	p := NewPinnedPools(workers)
	const tasks = workers * perWorker
	latch := NewLatch(tasks)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ { // concurrent submitters exercise the atomicity
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tasks/4; i++ {
				p.Execute(func() { <-gate; latch.CountDown() })
			}
		}()
	}
	wg.Wait()
	close(gate)
	latch.Await()
	p.Shutdown()
	for w, s := range p.Stats() {
		if s.Tasks != perWorker {
			t.Errorf("worker %d executed %d tasks, want exactly %d", w, s.Tasks, perWorker)
		}
	}
}
