package xyz

import (
	"strings"
	"testing"
)

// FuzzReadFrames feeds arbitrary bytes to the trajectory parser: malformed
// input must produce an error, never a panic or a pathological allocation.
func FuzzReadFrames(f *testing.F) {
	f.Add("2\nframe\nAr 1.0 2.0 3.0\nAr 4.0 5.0 6.0\n")
	f.Add("1\n\nNa 0 0 0\n2\n\nCl 1 1 1\nCl 2 2 2\n") // two frames
	f.Add("notanumber\n")
	f.Add("-3\nc\n")
	f.Add("3\nc\nAr 1 2\n")   // short atom line
	f.Add("2\nc\nAr x y z\n") // bad coordinates
	f.Add("5\nc\nAr 1 2 3\n") // truncated frame
	// Regression: a header claiming 10^15 atoms used to preallocate the
	// whole slice before reading a single atom line.
	f.Add("1000000000000000\nboom\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		frames, err := ReadFrames(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, fr := range frames {
			if len(fr.Symbols) != len(fr.Pos) {
				t.Fatalf("frame %d: %d symbols, %d positions", i, len(fr.Symbols), len(fr.Pos))
			}
		}
	})
}

// TestHugeAtomCountHeader pins the allocation cap: the parser must reach the
// "truncated frame" error without first allocating for the claimed count.
func TestHugeAtomCountHeader(t *testing.T) {
	_, err := ReadFrames(strings.NewReader("1000000000000000\nboom\n"))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("want truncated-frame error, got %v", err)
	}
}
