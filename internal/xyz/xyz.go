// Package xyz reads and writes trajectories in the ubiquitous XYZ format
// (one frame = atom count, comment line, then "Symbol x y z" rows), the
// lingua franca for molecular visualizers — the export a downstream
// Molecular Workbench user feeds to VMD/OVITO/Jmol.
package xyz

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mw/internal/atom"
	"mw/internal/vec"
)

// Writer streams frames to an underlying writer.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteFrame appends one snapshot with the given comment.
func (x *Writer) WriteFrame(s *atom.System, comment string) error {
	if x.err != nil {
		return x.err
	}
	fmt.Fprintf(x.w, "%d\n%s\n", s.N(), sanitize(comment))
	for i := 0; i < s.N(); i++ {
		p := s.Pos[i]
		_, x.err = fmt.Fprintf(x.w, "%s %.8f %.8f %.8f\n",
			s.Elements[s.Elem[i]].Symbol, p.X, p.Y, p.Z)
		if x.err != nil {
			return x.err
		}
	}
	return x.w.Flush()
}

func sanitize(c string) string {
	return strings.ReplaceAll(strings.ReplaceAll(c, "\n", " "), "\r", " ")
}

// Frame is one parsed snapshot.
type Frame struct {
	Comment string
	Symbols []string
	Pos     []vec.Vec3
}

// ReadFrames parses all frames from r.
func ReadFrames(r io.Reader) ([]Frame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var frames []Frame
	for sc.Scan() {
		head := strings.TrimSpace(sc.Text())
		if head == "" {
			continue
		}
		n, err := strconv.Atoi(head)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("xyz: bad atom count %q", head)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("xyz: missing comment line")
		}
		// Cap the preallocation: n comes straight from the file, and a
		// header claiming 10^15 atoms must not translate into a huge
		// allocation before the (inevitably truncated) frame is read.
		capHint := n
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		f := Frame{Comment: sc.Text(), Symbols: make([]string, 0, capHint), Pos: make([]vec.Vec3, 0, capHint)}
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("xyz: truncated frame (atom %d of %d)", i, n)
			}
			fields := strings.Fields(sc.Text())
			if len(fields) < 4 {
				return nil, fmt.Errorf("xyz: malformed atom line %q", sc.Text())
			}
			var p [3]float64
			for k := 0; k < 3; k++ {
				if p[k], err = strconv.ParseFloat(fields[k+1], 64); err != nil {
					return nil, fmt.Errorf("xyz: bad coordinate %q", fields[k+1])
				}
			}
			f.Symbols = append(f.Symbols, fields[0])
			f.Pos = append(f.Pos, vec.New(p[0], p[1], p[2]))
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return frames, nil
}
