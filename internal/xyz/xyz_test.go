package xyz

import (
	"bytes"
	"strings"
	"testing"

	"mw/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	b := workload.Salt()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(b.Sys, "frame 0"); err != nil {
		t.Fatal(err)
	}
	// Mutate and write a second frame.
	b.Sys.Pos[0].X += 1.25
	if err := w.WriteFrame(b.Sys, "frame 1"); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	for k, f := range frames {
		if len(f.Pos) != 800 {
			t.Fatalf("frame %d has %d atoms", k, len(f.Pos))
		}
	}
	if frames[0].Comment != "frame 0" || frames[1].Comment != "frame 1" {
		t.Error("comments lost")
	}
	if frames[1].Pos[0].X-frames[0].Pos[0].X != 1.25 {
		t.Errorf("coordinate delta %v", frames[1].Pos[0].X-frames[0].Pos[0].X)
	}
	if frames[0].Symbols[0] != "Na" && frames[0].Symbols[0] != "Cl" {
		t.Errorf("symbol %q", frames[0].Symbols[0])
	}
}

func TestCommentSanitized(t *testing.T) {
	b := workload.LJGas(2, 50, true)
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteFrame(b.Sys, "multi\nline\rcomment"); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(frames[0].Comment, "\n\r") {
		t.Error("newline survived in comment")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad count":      "x\ncomment\n",
		"negative count": "-3\ncomment\n",
		"truncated":      "3\ncomment\nAr 1 2 3\n",
		"short line":     "1\ncomment\nAr 1 2\n",
		"bad coord":      "1\ncomment\nAr 1 two 3\n",
		"no comment":     "2",
	}
	for name, doc := range cases {
		if _, err := ReadFrames(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadSkipsBlankSeparators(t *testing.T) {
	doc := "1\na\nAr 0 0 0\n\n\n1\nb\nAr 1 1 1\n"
	frames, err := ReadFrames(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
}

func TestEmptyInput(t *testing.T) {
	frames, err := ReadFrames(strings.NewReader(""))
	if err != nil || len(frames) != 0 {
		t.Errorf("empty input: %v, %d frames", err, len(frames))
	}
}
