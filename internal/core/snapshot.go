package core

import (
	"fmt"
	"math"

	"mw/internal/vec"
)

// Snapshot is a deep copy of the dynamical state of a simulation at a step
// boundary: positions, velocities, the forces from the most recent force
// evaluation, and the potential energy they produced. internal/verify
// captures one per step from the serial reference engine and compares every
// parallel topology against it in lockstep.
type Snapshot struct {
	Step  int
	PE    float64
	Pos   []vec.Vec3
	Vel   []vec.Vec3
	Force []vec.Vec3
}

// Snapshot captures the current state. It must be called between steps, not
// from an Instrument callback mid-phase. Snapshots are always expressed in
// original atom IDs: when the reorder pass has permuted the system, the
// arrays are scattered back through the inverse index map, so snapshots of
// reordered and file-ordered runs of the same physics are directly
// comparable (this is what lets the verify differential matrix include
// -reorder combos without any special casing).
func (sim *Simulation) Snapshot() Snapshot {
	snap := Snapshot{
		Step:  sim.step,
		PE:    sim.pe,
		Pos:   append([]vec.Vec3(nil), sim.Sys.Pos...),
		Vel:   append([]vec.Vec3(nil), sim.Sys.Vel...),
		Force: append([]vec.Vec3(nil), sim.Sys.Force...),
	}
	if orig := sim.ro.orig; orig != nil {
		for slot, id := range orig {
			snap.Pos[id] = sim.Sys.Pos[slot]
			snap.Vel[id] = sim.Sys.Vel[slot]
			snap.Force[id] = sim.Sys.Force[slot]
		}
	}
	return snap
}

// StateDiff holds the maximum absolute component-wise deviations between two
// snapshots.
type StateDiff struct {
	Pos, Vel, Force, PE float64
}

// Diff compares two snapshots of equally sized systems.
func (a Snapshot) Diff(b Snapshot) StateDiff {
	d := StateDiff{PE: math.Abs(a.PE - b.PE)}
	d.Pos = maxAbsDiff(a.Pos, b.Pos)
	d.Vel = maxAbsDiff(a.Vel, b.Vel)
	d.Force = maxAbsDiff(a.Force, b.Force)
	return d
}

func maxAbsDiff(a, b []vec.Vec3) float64 {
	var mx float64
	for i := range a {
		if d := a[i].Sub(b[i]).MaxAbs(); d > mx {
			mx = d
		}
	}
	return mx
}

// Merge returns the component-wise maximum of two diffs — the worst
// deviation seen across a run.
func (d StateDiff) Merge(o StateDiff) StateDiff {
	return StateDiff{
		Pos:   math.Max(d.Pos, o.Pos),
		Vel:   math.Max(d.Vel, o.Vel),
		Force: math.Max(d.Force, o.Force),
		PE:    math.Max(d.PE, o.PE),
	}
}

// String formats the diff compactly for reports.
func (d StateDiff) String() string {
	return fmt.Sprintf("pos=%.3g vel=%.3g force=%.3g pe=%.3g", d.Pos, d.Vel, d.Force, d.PE)
}
