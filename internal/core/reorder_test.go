package core

import (
	"math"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

// reorderCfg is the engine-native packing configuration under test.
func reorderCfg(threads int) Config {
	return Config{Dt: 1, LJCutoff: 6, Skin: 0.5, Threads: threads,
		Reorder: true, Partition: PartitionGuided, ChunkAtoms: 32}
}

// TestReorderActuallyPermutes: a deliberately scrambled lattice must be
// permuted at bootstrap, and the engine must report the permutation.
func TestReorderActuallyPermutes(t *testing.T) {
	s := ljGas(5, 4.3, 80, false)
	// Scramble file order so Morton sorting has work to do.
	n := s.N()
	for i := 0; i < n/2; i++ {
		j := n - 1 - i
		s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
		s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
	}
	sim, err := New(s, reorderCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if sim.Reorders() == 0 {
		t.Fatal("scrambled system not reordered at bootstrap")
	}
	orig := sim.OriginalIDs()
	if orig == nil {
		t.Fatal("OriginalIDs nil after a reorder")
	}
	seen := make([]bool, n)
	for _, id := range orig {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatal("OriginalIDs is not a permutation")
		}
		seen[id] = true
	}
	// Consecutive atoms must now be spatially closer on average than in the
	// scrambled order — the locality the pass exists for.
	var sum float64
	for i := 1; i < n; i++ {
		sum += sim.Sys.Pos[i].Sub(sim.Sys.Pos[i-1]).Norm()
	}
	if mean := sum / float64(n-1); mean > 8 {
		t.Errorf("mean consecutive-atom distance %.1f Å after Morton sort; expected locality", mean)
	}
}

// TestReorderPhysicsMatchesReference: with and without the reorder pass the
// trajectory (in original IDs) must agree to FP-reordering noise.
func TestReorderPhysicsMatchesReference(t *testing.T) {
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"serial-guided", func(c *Config) {}},
		{"full-lists", func(c *Config) { c.PairLists = FullLists }},
		{"beeman", func(c *Config) { c.Integrator = Beeman }},
		{"separate-rebuild", func(c *Config) { c.SeparateRebuild = true }},
		{"threads4-stealing", func(c *Config) { c.Threads = 4; c.Queues = WorkStealingQueues }},
		{"threads4-shared-mutex", func(c *Config) { c.Threads = 4; c.Reduce = ReduceSharedMutex }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// The mutation applies to both sides so the only difference
			// between the runs is the reorder pass itself.
			refCfg := Config{Dt: 1, LJCutoff: 6, Skin: 0.5}
			mode.mut(&refCfg)
			ref, err := New(ljGas(4, 4.3, 90, false), refCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			cfg := reorderCfg(1)
			mode.mut(&cfg)
			sim, err := New(ljGas(4, 4.3, 90, false), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			worst := StateDiff{}
			for step := 0; step < 40; step++ {
				ref.Step()
				sim.Step()
				worst = worst.Merge(sim.Snapshot().Diff(ref.Snapshot()))
			}
			if sim.Reorders() == 0 {
				t.Error("reorder pass never fired over 40 steps of a hot gas")
			}
			if worst.Pos > 1e-8 || worst.Vel > 1e-8 || worst.Force > 1e-6 || worst.PE > 1e-6 {
				t.Errorf("reordered run deviates from reference: %s", worst)
			}
		})
	}
}

// TestReorderChargedSystem: the charged-atom index list must track the
// permutation (Coulomb forces are computed off that list).
func TestReorderChargedSystem(t *testing.T) {
	ref, err := New(saltCluster(4, 2.8), Config{Dt: 1, LJCutoff: 6, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	sim, err := New(saltCluster(4, 2.8), reorderCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	worst := StateDiff{}
	for step := 0; step < 25; step++ {
		ref.Step()
		sim.Step()
		worst = worst.Merge(sim.Snapshot().Diff(ref.Snapshot()))
	}
	if worst.Pos > 1e-8 || worst.PE > 1e-6 {
		t.Errorf("reordered salt deviates: %s", worst)
	}
}

// TestReorderBondedSystem: bond/angle/torsion indices and exclusions must
// survive repeated remapping.
func TestReorderBondedSystem(t *testing.T) {
	ref, err := New(bondedChain(), Config{Dt: 0.5, LJCutoff: 6, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	sim, err := New(bondedChain(), Config{Dt: 0.5, LJCutoff: 6, Skin: 0.5, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	worst := StateDiff{}
	for step := 0; step < 50; step++ {
		ref.Step()
		sim.Step()
		worst = worst.Merge(sim.Snapshot().Diff(ref.Snapshot()))
	}
	if worst.Pos > 1e-8 || worst.PE > 1e-6 {
		t.Errorf("reordered bonded chain deviates: %s", worst)
	}
}

// TestSystemInOriginalOrder: the de-permuted view must match the reference
// system atom for atom, while the live system is genuinely permuted.
func TestSystemInOriginalOrder(t *testing.T) {
	mk := func() *atom.System {
		s := ljGas(4, 4.3, 120, false)
		for i := 0; i < s.N()/2; i++ { // scramble
			j := s.N() - 1 - i
			s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
			s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
		}
		return s
	}
	ref, err := New(mk(), Config{Dt: 1, LJCutoff: 6, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	sim, err := New(mk(), reorderCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	ref.Run(10)
	sim.Run(10)
	if sim.Reorders() == 0 {
		t.Fatal("expected a reorder")
	}
	view := sim.SystemInOriginalOrder()
	if view == sim.Sys {
		t.Fatal("view should be a de-permuted copy after a reorder")
	}
	var worst float64
	for i := range view.Pos {
		if d := view.Pos[i].Sub(ref.Sys.Pos[i]).MaxAbs(); d > worst {
			worst = d
		}
	}
	if worst > 1e-8 {
		t.Errorf("original-order view deviates from reference by %.3g Å", worst)
	}
	// A second simulation without reorder must return the live system.
	plain, err := New(ljGas(3, 4.3, 80, false), Config{Dt: 1, LJCutoff: 6, Skin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.SystemInOriginalOrder() != plain.Sys {
		t.Error("without reorder the view must be the live system")
	}
}

// TestCellChunkCuts covers the Morton cell-block chunk geometry.
func TestCellChunkCuts(t *testing.T) {
	cuts := cellChunkCuts([]int32{3, 3, 3, 3, 3, 3}, 18, 6)
	want := []int32{0, 6, 12, 18}
	if len(cuts) != len(want) {
		t.Fatalf("cuts %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts %v, want %v", cuts, want)
		}
	}
	// Uneven populations: every cut must land on a cell boundary and cover
	// the full range exactly once.
	pop := []int32{5, 0, 9, 1, 1, 1, 20, 2}
	total := int32(0)
	for _, p := range pop {
		total += p
	}
	cuts = cellChunkCuts(pop, int(total), 7)
	if cuts[0] != 0 || cuts[len(cuts)-1] != total {
		t.Fatalf("cuts do not span [0,%d]: %v", total, cuts)
	}
	boundaries := map[int32]bool{0: true}
	run := int32(0)
	for _, p := range pop {
		run += p
		boundaries[run] = true
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly ascending: %v", cuts)
		}
		if !boundaries[cuts[i]] {
			t.Fatalf("cut %d is not a cell boundary (%v)", cuts[i], cuts)
		}
	}
}

// TestReorderGuidedChunksCoverAllAtoms: with cell-aligned cuts active, one
// step must still touch every atom exactly once per phase (checked via the
// corrector's effect on velocities in a field-free drift).
func TestReorderGuidedChunksCoverAllAtoms(t *testing.T) {
	s := ljGas(4, 8.0, 0, false) // cold sparse gas: negligible forces
	for i := range s.Vel {
		s.Vel[i] = vec.New(1e-4, 0, 0)
	}
	sim, err := New(s, reorderCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	before := append([]vec.Vec3(nil), sim.Sys.Pos...)
	sim.Step()
	moved := 0
	for i := range sim.Sys.Pos {
		if math.Abs(sim.Sys.Pos[i].X-before[i].X) > 1e-6 {
			moved++
		}
	}
	if moved != sim.Sys.N() {
		t.Errorf("only %d/%d atoms advanced through the cut-chunk phases", moved, sim.Sys.N())
	}
}
