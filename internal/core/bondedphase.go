package core

import (
	"mw/internal/forces"
	"mw/internal/vec"
)

// Thin adapters so the force-phase dispatch reads uniformly.

//mw:hotpath
func accumulateBonds(sim *Simulation, lo, hi int, f []vec.Vec3) float64 {
	return forces.AccumulateBondsRange(sim.Sys, sim.Sys.Bonds, lo, hi, f)
}

//mw:hotpath
func accumulateAngles(sim *Simulation, lo, hi int, f []vec.Vec3) float64 {
	return forces.AccumulateAnglesRange(sim.Sys, sim.Sys.Angles, lo, hi, f)
}

//mw:hotpath
func accumulateTorsions(sim *Simulation, lo, hi int, f []vec.Vec3) float64 {
	return forces.AccumulateTorsionsRange(sim.Sys, sim.Sys.Torsions, lo, hi, f)
}
