package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/forces"
	"mw/internal/telemetry"
	"mw/internal/vec"
)

// ljGas builds an argon lattice with nx³ atoms, spacing a, thermalized at T.
func ljGas(nx int, a, T float64, periodic bool) *atom.System {
	l := float64(nx) * a
	s := atom.NewSystem(atom.CubicBox(l, periodic))
	for x := 0; x < nx; x++ {
		for y := 0; y < nx; y++ {
			for z := 0; z < nx; z++ {
				p := vec.New((float64(x)+0.5)*a, (float64(y)+0.5)*a, (float64(z)+0.5)*a)
				s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
			}
		}
	}
	s.Thermalize(T, rand.New(rand.NewSource(77)))
	return s
}

// saltCluster builds a small NaCl rock-salt cube (alternating charges).
func saltCluster(nx int, a float64) *atom.System {
	l := float64(nx)*a + 10
	s := atom.NewSystem(atom.CubicBox(l, false))
	for x := 0; x < nx; x++ {
		for y := 0; y < nx; y++ {
			for z := 0; z < nx; z++ {
				p := vec.New(5+float64(x)*a, 5+float64(y)*a, 5+float64(z)*a)
				if (x+y+z)%2 == 0 {
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				} else {
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				}
			}
		}
	}
	return s
}

// bondedChain builds a short bonded chain with angles and a torsion.
func bondedChain() *atom.System {
	s := atom.NewSystem(atom.CubicBox(30, false))
	pts := []vec.Vec3{
		{X: 10, Y: 10, Z: 10},
		{X: 11.5, Y: 10.3, Z: 10.1},
		{X: 12.8, Y: 11.2, Z: 10.5},
		{X: 14.2, Y: 11.4, Z: 11.4},
		{X: 15.6, Y: 12.3, Z: 11.6},
	}
	for _, p := range pts {
		s.AddAtom(atom.C, p, vec.Zero, 0, false)
	}
	for i := 0; i < 4; i++ {
		s.Bonds = append(s.Bonds, atom.Bond{I: int32(i), J: int32(i + 1), K: 15, R0: 1.6})
	}
	for i := 0; i < 3; i++ {
		s.Angles = append(s.Angles, atom.Angle{I: int32(i), J: int32(i + 1), K: int32(i + 2), KTheta: 2, Theta0: 2.0})
	}
	s.Torsions = append(s.Torsions, atom.Torsion{I: 0, J: 1, K: 2, L: 3, V0: 0.5, N: 3, Phi0: 0})
	return s
}

func mustSim(t *testing.T, s *atom.System, cfg Config) *Simulation {
	t.Helper()
	sim, err := New(s, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim
}

func TestInitialForcesMatchDirectEvaluation(t *testing.T) {
	// Engine-assembled forces (chunked LJ + Coulomb + bonded) must equal a
	// direct single-threaded evaluation with the forces package.
	s := saltCluster(3, 2.8)
	s.Bonds = []atom.Bond{{I: 0, J: 1, K: 5, R0: 2.5}}
	s.BuildExclusions() // engine would build them; reference needs them too
	sim := mustSim(t, s.Clone(), Config{Threads: 3, LJCutoff: 6, Skin: 0.5})
	defer sim.Close()

	ref := s.Clone()
	lj := forces.NewLJ(ref.Elements, 6)
	nl := cells.NewNeighborList(6, 0.5)
	nl.Build(ref)
	f := make([]vec.Vec3, ref.N())
	peWant := lj.Accumulate(ref, nl, f)
	peWant += forces.Coulomb{Softening: 0.05}.Accumulate(ref, ref.ChargedIndices(), f)
	peWant += forces.AccumulateBonded(ref, f)

	for i := range f {
		if !sim.Sys.Force[i].ApproxEqual(f[i], 1e-9*(1+f[i].Norm())) {
			t.Fatalf("force %d: engine %v vs direct %v", i, sim.Sys.Force[i], f[i])
		}
	}
	if math.Abs(sim.PE()-peWant) > 1e-9*(1+math.Abs(peWant)) {
		t.Errorf("PE: engine %v vs direct %v", sim.PE(), peWant)
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	s := ljGas(4, 4.3, 30, true)
	sim := mustSim(t, s, Config{Dt: 1, LJCutoff: 8, Skin: 0.8})
	defer sim.Close()
	e0 := sim.TotalEnergy()
	sim.Run(300)
	e1 := sim.TotalEnergy()
	ke := s.KineticEnergy()
	drift := math.Abs(e1 - e0)
	if drift > 0.02*(ke+1e-9) {
		t.Errorf("energy drift %v eV over 300 steps (KE %v)", drift, ke)
	}
}

func TestMomentumConservation(t *testing.T) {
	s := ljGas(3, 4.3, 80, true)
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	p0 := s.Momentum()
	sim.Run(100)
	p1 := s.Momentum()
	if p1.Sub(p0).Norm() > 1e-9 {
		t.Errorf("momentum drift: %v -> %v", p0, p1)
	}
}

// runVariant advances a fresh clone of base under cfg and returns positions.
func runVariant(t *testing.T, base *atom.System, cfg Config, steps int) []vec.Vec3 {
	t.Helper()
	sim := mustSim(t, base.Clone(), cfg)
	defer sim.Close()
	sim.Run(steps)
	return append([]vec.Vec3(nil), sim.Sys.Pos...)
}

func maxPosDiff(a, b []vec.Vec3) float64 {
	var mx float64
	for i := range a {
		if d := a[i].Sub(b[i]).MaxAbs(); d > mx {
			mx = d
		}
	}
	return mx
}

func TestParallelMatchesSerial(t *testing.T) {
	base := ljGas(4, 4.3, 60, true)
	base.Charge[0], base.Charge[1] = 1, -1 // exercise Coulomb too
	serial := runVariant(t, base, Config{Dt: 1, Threads: 1}, 25)
	for _, threads := range []int{2, 4, 7} {
		par := runVariant(t, base, Config{Dt: 1, Threads: threads}, 25)
		if d := maxPosDiff(serial, par); d > 1e-7 {
			t.Errorf("threads=%d diverged from serial by %v", threads, d)
		}
	}
}

func TestPartitionStrategiesAgree(t *testing.T) {
	base := ljGas(4, 4.3, 60, true)
	ref := runVariant(t, base, Config{Dt: 1, Threads: 4, Partition: PartitionCyclic}, 20)
	for _, p := range []Partition{PartitionBlock, PartitionGuided, PartitionDynamic} {
		got := runVariant(t, base, Config{Dt: 1, Threads: 4, Partition: p}, 20)
		if d := maxPosDiff(ref, got); d > 1e-7 {
			t.Errorf("partition %v diverged by %v", p, d)
		}
	}
}

func TestQueueTopologiesAgree(t *testing.T) {
	base := ljGas(3, 4.3, 60, true)
	ref := runVariant(t, base, Config{Dt: 1, Threads: 4, Queues: SharedQueue}, 20)
	got := runVariant(t, base, Config{Dt: 1, Threads: 4, Queues: PerWorkerQueues}, 20)
	if d := maxPosDiff(ref, got); d > 1e-7 {
		t.Errorf("queue topologies diverged by %v", d)
	}
}

func TestReduceModesAgree(t *testing.T) {
	base := ljGas(3, 4.3, 60, true)
	ref := runVariant(t, base, Config{Dt: 1, Threads: 4, Reduce: ReducePrivatized}, 20)
	got := runVariant(t, base, Config{Dt: 1, Threads: 4, Reduce: ReduceSharedMutex}, 20)
	if d := maxPosDiff(ref, got); d > 1e-7 {
		t.Errorf("reduce modes diverged by %v", d)
	}
}

func TestSeparateRebuildAgrees(t *testing.T) {
	base := ljGas(3, 4.3, 120, true)
	ref := runVariant(t, base, Config{Dt: 1, Threads: 2}, 40)
	got := runVariant(t, base, Config{Dt: 1, Threads: 2, SeparateRebuild: true}, 40)
	if d := maxPosDiff(ref, got); d > 1e-6 {
		t.Errorf("separate rebuild diverged by %v", d)
	}
}

func TestBondedSystemDynamics(t *testing.T) {
	s := bondedChain()
	sim := mustSim(t, s, Config{Dt: 0.5})
	defer sim.Close()
	e0 := sim.TotalEnergy()
	sim.Run(400)
	e1 := sim.TotalEnergy()
	if math.Abs(e1-e0) > 0.05*(math.Abs(e0)+0.1) {
		t.Errorf("bonded chain energy drift: %v -> %v", e0, e1)
	}
	// Bonds must hold the chain together.
	for i := 0; i < 4; i++ {
		d := s.Pos[i].Dist(s.Pos[i+1])
		if d < 0.8 || d > 3.0 {
			t.Errorf("bond %d length %v escaped harmonic well", i, d)
		}
	}
}

func TestOppositeIonsAttract(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(30, false))
	s.AddAtom(atom.Na, vec.New(12, 15, 15), vec.Zero, +1, false)
	s.AddAtom(atom.Cl, vec.New(18, 15, 15), vec.Zero, -1, false)
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	d0 := s.Pos[0].Dist(s.Pos[1])
	sim.Run(50)
	d1 := s.Pos[0].Dist(s.Pos[1])
	if d1 >= d0 {
		t.Errorf("opposite ions did not approach: %v -> %v", d0, d1)
	}
}

func TestFixedAtomsNeverMove(t *testing.T) {
	s := ljGas(3, 4.3, 200, false)
	fixedPos := map[int]vec.Vec3{}
	for i := 0; i < 5; i++ {
		s.Fixed[i] = true
		s.InvMass[i] = 0
		s.Vel[i] = vec.Zero
		fixedPos[i] = s.Pos[i]
	}
	sim := mustSim(t, s, Config{Dt: 1, Threads: 2})
	defer sim.Close()
	sim.Run(50)
	for i, p := range fixedPos {
		if s.Pos[i] != p {
			t.Errorf("fixed atom %d moved: %v -> %v", i, p, s.Pos[i])
		}
	}
}

func TestWallsContainAtoms(t *testing.T) {
	s := ljGas(3, 4.3, 400, false) // hot gas in a closed box
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	sim.Run(200)
	for i, p := range s.Pos {
		if !s.Box.Contains(p) {
			t.Fatalf("atom %d escaped the box: %v", i, p)
		}
	}
}

func TestNeighborListRebuilds(t *testing.T) {
	s := ljGas(3, 4.3, 300, true)
	sim := mustSim(t, s, Config{Dt: 2})
	defer sim.Close()
	r0 := sim.Rebuilds()
	if r0 != 1 {
		t.Fatalf("initial build count = %d, want 1", r0)
	}
	sim.Run(200)
	if sim.Rebuilds() <= r0 {
		t.Error("no rebuilds during hot-gas run")
	}
	if sim.Rebuilds() > 201 {
		t.Error("rebuilt more than once per step")
	}
}

func TestStepAndRunForCount(t *testing.T) {
	s := ljGas(3, 4.3, 10, true)
	sim := mustSim(t, s, Config{Dt: 2})
	defer sim.Close()
	sim.Run(3)
	sim.RunFor(10) // 5 steps at 2 fs
	if sim.StepCount() != 8 {
		t.Errorf("StepCount = %d, want 8", sim.StepCount())
	}
}

type recordingInstrument struct {
	phases map[Phase]int
	steps  int
}

func (r *recordingInstrument) PhaseDone(step int, ph Phase, wall time.Duration, busy []time.Duration) {
	if r.phases == nil {
		r.phases = map[Phase]int{}
	}
	r.phases[ph]++
	if step > r.steps {
		r.steps = step
	}
	if len(busy) == 0 {
		panic("no worker busy slice")
	}
}

func TestInstrumentReceivesPhases(t *testing.T) {
	s := ljGas(3, 4.3, 50, true)
	inst := &recordingInstrument{}
	sim := mustSim(t, s, Config{Dt: 1, Threads: 2, Instrument: inst})
	defer sim.Close()
	sim.Run(5)
	for ph := PhasePredictor; ph < NumPhases; ph++ {
		if inst.phases[ph] < 5 {
			t.Errorf("phase %v reported %d times, want ≥5", ph, inst.phases[ph])
		}
	}
	if inst.steps != 5 {
		t.Errorf("last step = %d", inst.steps)
	}
}

func TestPhaseWallAccumulates(t *testing.T) {
	s := ljGas(3, 4.3, 50, true)
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	sim.Run(10)
	for ph := PhasePredictor; ph < NumPhases; ph++ {
		if sim.PhaseWall[ph].N() < 10 {
			t.Errorf("PhaseWall[%v].N = %d", ph, sim.PhaseWall[ph].N())
		}
	}
}

func TestWorkerBusyPopulated(t *testing.T) {
	s := ljGas(3, 4.3, 50, true)
	sim := mustSim(t, s, Config{Dt: 1, Threads: 3})
	defer sim.Close()
	sim.Run(10)
	var total time.Duration
	for _, d := range sim.WorkerBusy[PhaseForce] {
		total += d
	}
	if total == 0 {
		t.Error("no busy time recorded in force phase")
	}
}

func TestValidationErrors(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	s.AddAtom(atom.Ar, vec.New(50, 1, 1), vec.Zero, 0, false) // outside box
	if _, err := New(s, Config{}); err == nil {
		t.Error("invalid system accepted")
	}
	// Periodic box smaller than interaction range.
	s2 := atom.NewSystem(atom.CubicBox(5, true))
	s2.AddAtom(atom.Ar, vec.New(1, 1, 1), vec.Zero, 0, false)
	if _, err := New(s2, Config{LJCutoff: 8}); err == nil {
		t.Error("undersized periodic box accepted")
	}
}

func TestLJPairsCounted(t *testing.T) {
	s := ljGas(3, 4.3, 10, true)
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	if sim.LJPairs() == 0 {
		t.Error("no LJ pairs in a dense lattice")
	}
}

func TestCloseIdempotentAndWorkers(t *testing.T) {
	s := ljGas(3, 4.3, 10, true)
	sim := mustSim(t, s, Config{Threads: 2})
	if sim.Workers() != 2 {
		t.Errorf("Workers = %d", sim.Workers())
	}
	sim.Close()
	sim.Close()
}

func TestChunkSetBounds(t *testing.T) {
	c := newChunkSet(10, 4)
	if c.count != 3 {
		t.Fatalf("count = %d", c.count)
	}
	cases := [][3]int{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}
	for _, tc := range cases {
		lo, hi := c.bounds(tc[0])
		if lo != tc[1] || hi != tc[2] {
			t.Errorf("bounds(%d) = %d,%d", tc[0], lo, hi)
		}
	}
	// Degenerate sizes are repaired.
	c = newChunkSet(5, 0)
	if c.count != 5 {
		t.Errorf("zero-size chunkSet count = %d", c.count)
	}
	c = newChunkSet(0, 8)
	if c.count != 0 {
		t.Errorf("empty chunkSet count = %d", c.count)
	}
}

func TestEnumStrings(t *testing.T) {
	if PartitionCyclic.String() != "cyclic" || PartitionBlock.String() != "block" ||
		PartitionGuided.String() != "guided" || PartitionDynamic.String() != "dynamic" {
		t.Error("partition names wrong")
	}
	if Partition(99).String() != "unknown" {
		t.Error("unknown partition name")
	}
	if SharedQueue.String() != "shared-queue" || PerWorkerQueues.String() != "per-worker-queues" {
		t.Error("queue topology names wrong")
	}
	if ReducePrivatized.String() != "privatized" || ReduceSharedMutex.String() != "shared-mutex" {
		t.Error("reduce mode names wrong")
	}
	names := map[Phase]string{
		PhasePredictor: "predictor", PhaseNeighborCheck: "neighbor-check",
		PhaseForce: "force", PhaseReduce: "reduce", PhaseCorrector: "corrector",
	}
	for ph, want := range names {
		if ph.String() != want {
			t.Errorf("Phase(%d).String = %q", ph, ph.String())
		}
	}
	if Phase(99).String() != "unknown" {
		t.Error("unknown phase name")
	}
}

func TestExternalFieldAcceleratesIons(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(40, false))
	s.AddAtom(atom.Na, vec.New(5, 20, 20), vec.Zero, +1, false)
	sim := mustSim(t, s, Config{Dt: 1, Field: forces.Field{E: vec.New(0.01, 0, 0)}})
	defer sim.Close()
	sim.Run(20)
	if s.Pos[0].X <= 5 {
		t.Errorf("positive ion did not drift along E: x=%v", s.Pos[0].X)
	}
	if math.Abs(s.Pos[0].Y-20) > 1e-9 {
		t.Errorf("ion drifted off axis: %v", s.Pos[0])
	}
}

// TestBootstrapClearsStaleForces is the regression test for a bug found by
// the internal/verify differential harness: a system cloned from a previous
// run carries that run's Force array, and the shared-mutex reduction mode
// accumulates the bootstrap evaluation into it in place instead of
// overwriting, corrupting the initial accelerations. New must clear Force
// before the bootstrap so both reduction modes agree bitwise.
func TestBootstrapClearsStaleForces(t *testing.T) {
	first := mustSim(t, ljGas(3, 4.3, 80, true), Config{Dt: 1})
	first.Run(5)
	base := first.Sys.Clone() // Force is non-zero here
	first.Close()

	priv := mustSim(t, base.Clone(), Config{Dt: 1, Reduce: ReducePrivatized})
	defer priv.Close()
	shared := mustSim(t, base.Clone(), Config{Dt: 1, Reduce: ReduceSharedMutex})
	defer shared.Close()
	for i := range priv.Sys.Force {
		if priv.Sys.Force[i] != shared.Sys.Force[i] {
			t.Fatalf("bootstrap force %d differs across reduce modes: %v vs %v",
				i, priv.Sys.Force[i], shared.Sys.Force[i])
		}
		if priv.Sys.Acc[i] != shared.Sys.Acc[i] {
			t.Fatalf("bootstrap acceleration %d differs across reduce modes", i)
		}
	}
}

// TestSnapshotDiff covers the verify-facing snapshot hooks.
func TestSnapshotDiff(t *testing.T) {
	sim := mustSim(t, ljGas(3, 4.3, 60, true), Config{Dt: 1})
	defer sim.Close()
	a := sim.Snapshot()
	if d := a.Diff(a); d != (StateDiff{}) {
		t.Fatalf("self-diff not zero: %s", d)
	}
	sim.Run(3)
	b := sim.Snapshot()
	if b.Step != 3 {
		t.Errorf("snapshot step = %d, want 3", b.Step)
	}
	d := a.Diff(b)
	if d.Pos == 0 || d.Vel == 0 {
		t.Errorf("positions/velocities did not move: %s", d)
	}
	// Snapshots are deep copies: stepping further must not mutate b.
	probe := b.Pos[0]
	sim.Run(2)
	if b.Pos[0] != probe {
		t.Error("snapshot aliases live system state")
	}
	m := d.Merge(StateDiff{Force: d.Force + 1})
	if m.Force != d.Force+1 || m.Pos != d.Pos {
		t.Errorf("merge wrong: %+v", m)
	}
	if s := d.String(); !strings.Contains(s, "pos=") {
		t.Errorf("diff string %q", s)
	}
}

func TestTelemetryObservesEngineNotBootstrap(t *testing.T) {
	// The recorder wired through Config.Telemetry must see every timestep's
	// phases and chunks — and nothing from New's bootstrap force evaluation,
	// which is setup, not simulation (the same contract Instrument has).
	rec := telemetry.NewRecorder(2, PhaseNames())
	sim := mustSim(t, ljGas(4, 2.2, 120, true), Config{
		Threads: 2, ChunkAtoms: 8, Telemetry: rec,
	})
	defer sim.Close()

	if snap := rec.Snapshot(0); snap.Phases[PhaseForce].Count != 0 {
		t.Fatalf("bootstrap leaked into telemetry: force-phase count %d before any Step",
			snap.Phases[PhaseForce].Count)
	}

	const steps = 5
	sim.Run(steps)
	snap := rec.Snapshot(16)
	if snap.Steps != steps {
		t.Errorf("steps: got %d want %d", snap.Steps, steps)
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if got := snap.Phases[ph].Count; got != steps {
			t.Errorf("phase %v: count %d want %d", ph, got, steps)
		}
	}
	// 64 atoms in chunks of 8 → 8 chunks per atom-partitioned phase; the
	// force phase adds its (empty) bonded families' zero chunks on top, so
	// just require a sensible total split across both workers.
	var chunks int64
	for _, wv := range snap.PerWorker {
		chunks += wv.Chunks
	}
	if chunks < int64(steps)*3*8 {
		t.Errorf("chunk events: got %d, want at least %d", chunks, steps*3*8)
	}
	if len(snap.Recent) == 0 {
		t.Error("expected recent events after a run")
	}
}

func TestTelemetryWorksAcrossTopologies(t *testing.T) {
	for _, q := range []QueueTopology{SharedQueue, PerWorkerQueues, WorkStealingQueues} {
		rec := telemetry.NewRecorder(2, PhaseNames())
		sim := mustSim(t, ljGas(3, 2.2, 120, true), Config{
			Threads: 2, ChunkAtoms: 4, LJCutoff: 2.5, Skin: 0.4, Queues: q, Telemetry: rec,
		})
		sim.Run(3)
		sim.Close()
		snap := rec.Snapshot(0)
		if snap.Phases[PhaseForce].Count != 3 {
			t.Errorf("%v: force-phase count %d want 3", q, snap.Phases[PhaseForce].Count)
		}
		if snap.Dropped != 0 {
			t.Errorf("%v: %d dropped events", q, snap.Dropped)
		}
	}
}
