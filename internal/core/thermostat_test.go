package core

import (
	"math"
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

func TestFullListsMatchHalfLists(t *testing.T) {
	base := ljGas(4, 4.3, 60, true)
	half := runVariant(t, base, Config{Dt: 1, Threads: 2, PairLists: HalfLists}, 25)
	full := runVariant(t, base, Config{Dt: 1, Threads: 2, PairLists: FullLists}, 25)
	if d := maxPosDiff(half, full); d > 1e-7 {
		t.Errorf("full lists diverged from half lists by %v", d)
	}
}

func TestFullListsEnergyMatches(t *testing.T) {
	base := ljGas(3, 4.3, 40, true)
	simH := mustSim(t, base.Clone(), Config{Dt: 1, PairLists: HalfLists})
	defer simH.Close()
	simF := mustSim(t, base.Clone(), Config{Dt: 1, PairLists: FullLists})
	defer simF.Close()
	if math.Abs(simH.PE()-simF.PE()) > 1e-9*(1+math.Abs(simH.PE())) {
		t.Errorf("initial PE: half %v vs full %v", simH.PE(), simF.PE())
	}
}

func TestPairListModeString(t *testing.T) {
	if HalfLists.String() != "half-lists" || FullLists.String() != "full-lists" {
		t.Error("pair list mode names wrong")
	}
}

func TestVelocityRescaleHoldsTemperature(t *testing.T) {
	s := ljGas(4, 4.3, 250, true)
	sim := mustSim(t, s, Config{Dt: 1, Thermostat: &VelocityRescale{T: 150}})
	defer sim.Close()
	sim.Run(100)
	if got := s.Temperature(); math.Abs(got-150) > 1 {
		t.Errorf("rescale thermostat: T = %v, want 150", got)
	}
}

func TestVelocityRescalePeriod(t *testing.T) {
	s := ljGas(3, 4.3, 300, true)
	th := &VelocityRescale{T: 100, Period: 10}
	sim := mustSim(t, s, Config{Dt: 1, Thermostat: th})
	defer sim.Close()
	sim.Run(9) // no rescale yet
	if got := s.Temperature(); math.Abs(got-100) < 5 {
		t.Skip("temperature drifted to target naturally; inconclusive")
	}
	sim.Run(1) // 10th step rescales
	if got := s.Temperature(); math.Abs(got-100) > 1 {
		t.Errorf("periodic rescale missed: T = %v", got)
	}
}

func TestBerendsenRelaxesTowardTarget(t *testing.T) {
	s := ljGas(4, 4.3, 400, true)
	sim := mustSim(t, s, Config{Dt: 1, Thermostat: &Berendsen{T: 150, Tau: 50}})
	defer sim.Close()
	t0 := s.Temperature()
	sim.Run(300)
	t1 := s.Temperature()
	if math.Abs(t1-150) >= math.Abs(t0-150) {
		t.Errorf("Berendsen did not relax toward target: %v -> %v", t0, t1)
	}
	if math.Abs(t1-150) > 30 {
		t.Errorf("Berendsen far from target after 300 steps: %v", t1)
	}
}

func TestLangevinSamplesTargetTemperature(t *testing.T) {
	s := ljGas(4, 4.3, 50, true)
	th := &Langevin{T: 200, Gamma: 0.05, Rng: rand.New(rand.NewSource(4))}
	sim := mustSim(t, s, Config{Dt: 1, Thermostat: th})
	defer sim.Close()
	sim.Run(200) // equilibrate
	var sum float64
	const samples = 100
	for i := 0; i < samples; i++ {
		sim.Run(5)
		sum += s.Temperature()
	}
	mean := sum / samples
	if math.Abs(mean-200)/200 > 0.15 {
		t.Errorf("Langevin mean temperature %v, want ≈200", mean)
	}
}

func TestThermostatSkipsFixedAtoms(t *testing.T) {
	s := ljGas(3, 4.3, 300, true)
	s.Fixed[0] = true
	s.InvMass[0] = 0
	s.Vel[0] = vec.Zero
	for _, th := range []Thermostat{
		&VelocityRescale{T: 100},
		&Berendsen{T: 100},
		&Langevin{T: 100, Rng: rand.New(rand.NewSource(1))},
	} {
		th.Apply(s, 1)
		if s.Vel[0] != vec.Zero {
			t.Errorf("%s moved a fixed atom", th.Name())
		}
	}
}

func TestThermostatNames(t *testing.T) {
	names := map[string]bool{}
	for _, th := range []Thermostat{&VelocityRescale{}, &Berendsen{}, &Langevin{}} {
		names[th.Name()] = true
	}
	for _, want := range []string{"velocity-rescale", "berendsen", "langevin"} {
		if !names[want] {
			t.Errorf("missing thermostat %q", want)
		}
	}
}

func TestBeemanConservesEnergy(t *testing.T) {
	s := ljGas(4, 4.3, 30, true)
	sim := mustSim(t, s, Config{Dt: 1, Integrator: Beeman})
	defer sim.Close()
	e0 := sim.TotalEnergy()
	sim.Run(300)
	drift := math.Abs(sim.TotalEnergy() - e0)
	if drift > 0.02*(s.KineticEnergy()+1e-9) {
		t.Errorf("Beeman energy drift %v over 300 steps", drift)
	}
}

func TestBeemanParallelMatchesSerial(t *testing.T) {
	base := ljGas(3, 4.3, 60, true)
	serial := runVariant(t, base, Config{Dt: 1, Integrator: Beeman}, 20)
	par := runVariant(t, base, Config{Dt: 1, Integrator: Beeman, Threads: 3}, 20)
	if d := maxPosDiff(serial, par); d > 1e-7 {
		t.Errorf("parallel Beeman diverged by %v", d)
	}
}

func TestIntegratorsAgreeShortTerm(t *testing.T) {
	// Both schemes are O(dt²) in positions: over a few steps at small dt
	// they must track each other closely, while not being identical.
	base := ljGas(3, 4.3, 40, true)
	vv := runVariant(t, base, Config{Dt: 0.2, Integrator: VelocityVerlet}, 10)
	bm := runVariant(t, base, Config{Dt: 0.2, Integrator: Beeman}, 10)
	d := maxPosDiff(vv, bm)
	if d > 1e-4 {
		t.Errorf("integrators diverged too fast: %v", d)
	}
	if d == 0 {
		t.Error("integrators produced identical trajectories (Beeman not active?)")
	}
}

func TestIntegratorModeString(t *testing.T) {
	if VelocityVerlet.String() != "velocity-verlet" || Beeman.String() != "beeman" {
		t.Error("integrator names wrong")
	}
}

func TestRectangularPeriodicBox(t *testing.T) {
	// The engine must handle non-cubic boxes: a 2:1:1 periodic slab.
	s := atom.NewSystem(atom.NewBox(34.4, 17.2, 17.2, true))
	for x := 0; x < 8; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				p := vec.New((float64(x)+0.5)*4.3, (float64(y)+0.5)*4.3, (float64(z)+0.5)*4.3)
				s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
			}
		}
	}
	s.Thermalize(60, rand.New(rand.NewSource(12)))
	sim := mustSim(t, s, Config{Dt: 1, Threads: 2})
	defer sim.Close()
	e0 := sim.TotalEnergy()
	sim.Run(200)
	if drift := math.Abs(sim.TotalEnergy() - e0); drift > 0.02*(s.KineticEnergy()+1e-9) {
		t.Errorf("rectangular box energy drift %v", drift)
	}
	for i, p := range s.Pos {
		if !p.IsFinite() {
			t.Fatalf("atom %d non-finite in rectangular box", i)
		}
	}
}

func TestRectangularOpenBoxWalls(t *testing.T) {
	s := atom.NewSystem(atom.NewBox(30, 12, 18, false))
	rng := rand.New(rand.NewSource(13))
	for len(s.Pos) < 60 {
		p := vec.New(1+rng.Float64()*28, 1+rng.Float64()*10, 1+rng.Float64()*16)
		ok := true
		for _, q := range s.Pos {
			if q.Dist(p) < 3.2 { // keep out of the steep LJ core
				ok = false
				break
			}
		}
		if ok {
			s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
		}
	}
	s.Thermalize(500, rng)
	sim := mustSim(t, s, Config{Dt: 1})
	defer sim.Close()
	sim.Run(200)
	for i, p := range s.Pos {
		if !s.Box.Contains(p) {
			t.Fatalf("atom %d escaped rectangular box: %v", i, p)
		}
	}
}

func TestWorkStealingMatchesSharedQueue(t *testing.T) {
	base := ljGas(4, 4.3, 60, true)
	base.Charge[0], base.Charge[1] = 1, -1
	ref := runVariant(t, base, Config{Dt: 1, Threads: 4, Queues: SharedQueue}, 20)
	got := runVariant(t, base, Config{Dt: 1, Threads: 4, Queues: WorkStealingQueues}, 20)
	if d := maxPosDiff(ref, got); d > 1e-7 {
		t.Errorf("work stealing diverged by %v", d)
	}
}

func TestWorkStealingBlockPartition(t *testing.T) {
	// Block ownership with the triangular salt-like load: stealing must
	// still complete everything and the engine must report steal counts.
	base := ljGas(3, 4.3, 80, true)
	sim := mustSim(t, base.Clone(), Config{Dt: 1, Threads: 4,
		Queues: WorkStealingQueues, Partition: PartitionBlock})
	defer sim.Close()
	sim.Run(10)
	if sim.Steals() == nil {
		t.Fatal("Steals() nil under work-stealing topology")
	}
	// A non-stealing sim reports nil.
	sim2 := mustSim(t, base.Clone(), Config{Dt: 1, Threads: 2})
	defer sim2.Close()
	if sim2.Steals() != nil {
		t.Error("Steals() non-nil without work stealing")
	}
}

func TestQueueTopologyStrings(t *testing.T) {
	if WorkStealingQueues.String() != "work-stealing" {
		t.Error("work-stealing name wrong")
	}
}

func TestMorseDimerOscillatesAndConserves(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(20, false))
	s.AddAtom(atom.O, vec.New(9, 10, 10), vec.Zero, 0, false)
	s.AddAtom(atom.O, vec.New(10.4, 10, 10), vec.Zero, 0, false) // stretched past R0
	s.Morses = []atom.Morse{{I: 0, J: 1, D: 5.0, A: 2.2, R0: 1.2}}
	sim := mustSim(t, s, Config{Dt: 0.25, Threads: 2})
	defer sim.Close()
	e0 := sim.TotalEnergy()
	minD, maxD := 99.0, 0.0
	for k := 0; k < 400; k++ {
		sim.Step()
		d := s.Pos[0].Dist(s.Pos[1])
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if math.Abs(sim.TotalEnergy()-e0) > 0.01*(math.Abs(e0)+0.1) {
		t.Errorf("Morse dimer energy drift: %v -> %v", e0, sim.TotalEnergy())
	}
	// The bond must oscillate around R0: compressed below and stretched above.
	if minD >= 1.2 || maxD <= 1.2 {
		t.Errorf("no oscillation around R0: range [%v, %v]", minD, maxD)
	}
}
