package core

import (
	"mw/internal/atom"
	"mw/internal/vec"
)

// The engine-native reorder pass (Cfg.Reorder): at every neighbor-list
// rebuild, atoms are sorted into Morton (Z-order) cell order with a stable
// counting sort over the grid's Morton cell ranks, and the permutation is
// applied to the whole System plus the engine's own per-atom state. The
// paper's §V-A could only *simulate* this layout effect (internal/jheap);
// here the SoA slices are really permuted, which is what makes the
// cell-ordered traversal of MD-Bench (arXiv:2302.14660) available to the
// force kernels.

// reorderState is the Simulation's spatial-reordering scratch and the
// original-ID bookkeeping. All buffers are reused across rebuilds.
type reorderState struct {
	reorderer atom.Reorderer

	mortonRank []int32 // cell index → Morton rank, cached per grid
	rankDims   [3]int  // grid dims the cache was built for

	keys    []int32 // per-atom Morton cell rank
	counts  []int32 // per-rank populations (prefix-summed during the sort)
	cellPop []int32 // per-rank populations preserved for chunk alignment
	order   []int32 // gather permutation: order[new] = old
	v3      []vec.Vec3

	// orig[slot] = original atom ID now held in slot; origSlot is its
	// inverse. nil until the first non-identity reorder.
	orig     []int32
	origSlot []int32

	reorders int
}

// maybeReorder permutes the system into Morton cell order if Cfg.Reorder is
// enabled and the current positions are not already sorted. It must run
// before grid.Assign on the rebuild path (it invalidates cell chains) and
// only between phases, never inside one. Returns whether a permutation was
// applied.
//
//mw:coldcall
func (sim *Simulation) maybeReorder() bool {
	if !sim.Cfg.Reorder {
		return false
	}
	ro := &sim.ro
	g := sim.grid
	if ro.mortonRank == nil || ro.rankDims != g.Dims {
		ro.mortonRank = g.MortonRanks()
		ro.rankDims = g.Dims
	}
	s := sim.Sys
	n := s.N()
	nc := g.NumCells()
	if cap(ro.keys) < n {
		ro.keys = make([]int32, n)
		ro.order = make([]int32, n)
	}
	if cap(ro.counts) < nc+1 {
		ro.counts = make([]int32, nc+1)
		ro.cellPop = make([]int32, nc)
	}
	keys, order := ro.keys[:n], ro.order[:n]
	counts, pop := ro.counts[:nc+1], ro.cellPop[:nc]
	for i := range counts {
		counts[i] = 0
	}
	sorted := true
	for i := 0; i < n; i++ {
		k := ro.mortonRank[g.CellIndexOf(s.Pos[i])]
		keys[i] = k
		counts[k+1]++
		if i > 0 && keys[i-1] > k {
			sorted = false
		}
	}
	copy(pop, counts[1:])
	if sorted {
		return false
	}
	for r := 0; r < nc; r++ {
		counts[r+1] += counts[r]
	}
	// Stable counting sort: old atoms in key order, ties in index order.
	for i := 0; i < n; i++ {
		k := keys[i]
		order[counts[k]] = int32(i)
		counts[k]++
	}

	if err := ro.reorderer.Apply(s, order); err != nil {
		// The order was just constructed as a permutation and the system
		// was validated at New; any failure here is an engine bug.
		panic("core: reorder pass produced an invalid permutation: " + err.Error())
	}
	sim.permuteEngineState(order)
	ro.reorders++
	return true
}

// permuteEngineState carries the per-atom state the engine owns (previous
// accelerations, charged-atom index list, original-ID maps) across a
// permutation of the System.
func (sim *Simulation) permuteEngineState(order []int32) {
	ro := &sim.ro
	n := len(order)

	if sim.prevAcc != nil {
		if cap(ro.v3) < n {
			ro.v3 = make([]vec.Vec3, n)
		}
		v3 := ro.v3[:n]
		for k, o := range order {
			v3[k] = sim.prevAcc[o]
		}
		copy(sim.prevAcc, v3)
	}

	// The charged-atom list holds indices; map them and restore ascending
	// order by rescanning (the list length never changes under relabeling).
	if len(sim.charged) > 0 {
		sim.charged = sim.charged[:0]
		for i := 0; i < n; i++ {
			if sim.Sys.Charge[i] != 0 {
				sim.charged = append(sim.charged, int32(i))
			}
		}
	}

	if ro.orig == nil {
		ro.orig = make([]int32, n)
		ro.origSlot = make([]int32, n)
		copy(ro.orig, order)
	} else {
		// Compose: slot k now holds the atom that was in old slot order[k],
		// whose original ID is orig[order[k]]. origSlot's backing doubles
		// as compose scratch; it is rebuilt from orig below.
		scratch := ro.origSlot
		for k, o := range order {
			scratch[k] = ro.orig[o]
		}
		ro.orig, ro.origSlot = scratch, ro.orig
	}
	for k, id := range ro.orig {
		ro.origSlot[id] = int32(k)
	}
}

// Reorders returns how many times the reorder pass has actually permuted
// the system.
func (sim *Simulation) Reorders() int { return sim.ro.reorders }

// OriginalIDs returns orig[slot] = the original (construction-time) ID of
// the atom currently stored at slot, or nil if the system has never been
// reordered. The slice is live engine state; treat it as read-only and
// invalidated by the next Step.
func (sim *Simulation) OriginalIDs() []int32 { return sim.ro.orig }

// SystemInOriginalOrder returns the simulation state with atoms in their
// original construction order — the view trajectory writers and model
// savers should use, so files are comparable across runs regardless of how
// the engine has packed memory. Without Cfg.Reorder (or before the first
// permutation) it returns the live system itself; afterwards it returns a
// fresh de-permuted deep copy. Call it only between steps.
func (sim *Simulation) SystemInOriginalOrder() *atom.System {
	if sim.ro.orig == nil {
		return sim.Sys
	}
	c := sim.Sys.Clone()
	var r atom.Reorderer
	if err := r.Apply(c, sim.ro.origSlot); err != nil {
		panic("core: original-order view failed: " + err.Error())
	}
	return c
}

// cellChunkCuts builds atom-chunk boundaries aligned to Morton cell blocks:
// walking cells in Morton rank order, a cut is placed whenever the running
// population reaches the target chunk size, so every chunk is a contiguous
// block of whole cells (in the Morton-sorted atom layout, a contiguous
// atom range). pop is the per-rank cell population from the last reorder.
func cellChunkCuts(pop []int32, total, target int) []int32 {
	if target <= 0 {
		target = 1
	}
	cuts := make([]int32, 1, total/target+2)
	run := 0
	sum := 0
	for _, p := range pop {
		run += int(p)
		sum += int(p)
		if run >= target && sum < total {
			cuts = append(cuts, int32(sum))
			run = 0
		}
	}
	cuts = append(cuts, int32(total))
	return cuts
}
