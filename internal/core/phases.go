package core

import (
	"context"
	"runtime/trace"
	"sync/atomic"
	"time"

	"mw/internal/forces"
	"mw/internal/pool"
	"mw/internal/units"
	"mw/internal/vec"
)

// phaseRegion holds static runtime/trace region names per phase, so opening
// a region never builds a string on the schedule path.
var phaseRegion = [NumPhases]string{
	"mw.predictor", "mw.neighbor-check", "mw.force", "mw.reduce", "mw.corrector",
}

// beginPhase emits the telemetry phase-begin event; paired with the
// phase-end emitted by finishPhase.
//
//mw:coldcall
func (sim *Simulation) beginPhase(ph Phase) {
	if tele := sim.Cfg.Telemetry; tele != nil {
		tele.PhaseBegin(sim.step, uint8(ph))
	}
}

// schedule executes items 0..count-1 across the workers according to the
// configured partition strategy, with a barrier at the end (the engine's
// inter-phase synchronization). fn must be safe for concurrent invocation
// with distinct worker ids; each item is processed exactly once.
//
//mw:coldcall
func (sim *Simulation) schedule(ph Phase, count int, fn func(worker, item int)) {
	defer trace.StartRegion(context.Background(), phaseRegion[ph]).End()
	sim.beginPhase(ph)
	start := time.Now()
	w := sim.Cfg.Threads
	if hook := sim.Cfg.ChunkHook; hook != nil {
		inner := fn
		fn = func(worker, item int) {
			inner(worker, item)
			hook(worker)
		}
	}
	if tele := sim.Cfg.Telemetry; tele != nil {
		phase := uint8(ph)
		inner := fn
		fn = func(worker, item int) {
			inner(worker, item)
			tele.Chunk(worker, phase)
		}
	}
	if (sim.ex == nil && sim.stealing == nil) || w == 1 || count == 0 {
		t0 := time.Now()
		for item := 0; item < count; item++ {
			fn(0, item)
		}
		sim.busy[0] = time.Since(t0)
		for i := 1; i < w; i++ {
			sim.busy[i] = 0
		}
		sim.finishPhase(ph, start)
		return
	}

	if sim.stealing != nil {
		// Work-stealing topology: every chunk is its own task, owned per the
		// static partition mapping; idle workers steal the rest. Guided and
		// dynamic strategies are inherently self-balancing already, so their
		// chunks are simply dealt cyclically as owners.
		sim.scheduleStealing(ph, count, fn, start)
		return
	}

	var cursor atomic.Int64 // shared counter for guided/dynamic
	tasks := make([]pool.Task, w)
	for worker := 0; worker < w; worker++ {
		worker := worker
		tasks[worker] = func() {
			t0 := time.Now()
			switch sim.Cfg.Partition {
			case PartitionBlock:
				lo := worker * count / w
				hi := (worker + 1) * count / w
				for item := lo; item < hi; item++ {
					fn(worker, item)
				}
			case PartitionCyclic:
				for item := worker; item < count; item += w {
					fn(worker, item)
				}
			case PartitionGuided:
				for {
					remaining := int64(count) - cursor.Load()
					if remaining <= 0 {
						break
					}
					batch := remaining / int64(2*w)
					if batch < 1 {
						batch = 1
					}
					lo := cursor.Add(batch) - batch
					if lo >= int64(count) {
						break
					}
					hi := lo + batch
					if hi > int64(count) {
						hi = int64(count)
					}
					for item := int(lo); item < int(hi); item++ {
						fn(worker, item)
					}
				}
			case PartitionDynamic:
				for {
					item := cursor.Add(1) - 1
					if item >= int64(count) {
						break
					}
					fn(worker, int(item))
				}
			}
			sim.busy[worker] = time.Since(t0)
		}
	}
	sim.runOnWorkers(tasks)
	sim.finishPhase(ph, start)
}

// scheduleStealing fans one task per chunk into the owners' deques and
// awaits the latch. fn receives the id of the worker that actually executes
// the chunk (which may differ from its owner after a steal), keeping
// per-worker privatized state safe.
func (sim *Simulation) scheduleStealing(ph Phase, count int, fn func(worker, item int), start time.Time) {
	w := sim.Cfg.Threads
	latch := pool.NewLatch(count)
	busy := make([]atomic.Int64, w)
	for item := 0; item < count; item++ {
		owner := item % w
		if sim.Cfg.Partition == PartitionBlock {
			owner = item * w / count
			if owner >= w {
				owner = w - 1
			}
		}
		item := item
		sim.stealing.SubmitFor(owner, func(worker int) {
			t0 := time.Now()
			fn(worker, item)
			busy[worker].Add(int64(time.Since(t0)))
			latch.CountDown()
		})
	}
	latch.Await()
	for i := 0; i < w; i++ {
		sim.busy[i] = time.Duration(busy[i].Load())
	}
	sim.finishPhase(ph, start)
}

// runOnWorkers dispatches exactly one task per worker and awaits them all —
// the fan-out / countdown-latch / barrier structure of §II-B.
func (sim *Simulation) runOnWorkers(tasks []pool.Task) {
	latch := pool.NewLatch(len(tasks))
	for w, t := range tasks {
		t := t
		wrapped := func() {
			t()
			latch.CountDown()
		}
		if sim.pinned != nil {
			sim.pinned.Submit(w, wrapped)
		} else {
			sim.ex.Execute(wrapped)
		}
	}
	latch.Await()
}

//mw:coldcall
func (sim *Simulation) finishPhase(ph Phase, start time.Time) {
	wall := time.Since(start)
	sim.PhaseWall[ph].Add(wall.Seconds())
	for w, b := range sim.busy {
		sim.WorkerBusy[ph][w] += b
	}
	if sim.Cfg.Instrument != nil {
		sim.Cfg.Instrument.PhaseDone(sim.step, ph, wall, sim.busy)
	}
	if tele := sim.Cfg.Telemetry; tele != nil {
		tele.PhaseEnd(sim.step, uint8(ph), wall, sim.busy)
	}
}

// predictorPhase is phase 1: advance positions with a second-order Taylor
// step (velocity Verlet's half-kick + drift, or Beeman's weighted-
// acceleration drift), then handle wall collisions. It also clears the
// shared force array for the shared-mutex reduction mode.
//
//mw:hotpath
//mw:forcewriter
func (sim *Simulation) predictorPhase() {
	s := sim.Sys
	dt := sim.Cfg.Dt
	half := 0.5 * dt
	beeman := sim.Cfg.Integrator == Beeman
	zeroShared := sim.Cfg.Reduce == ReduceSharedMutex
	sim.schedule(PhasePredictor, sim.atomChunks.count, func(_, item int) {
		lo, hi := sim.atomChunks.bounds(item)
		for i := lo; i < hi; i++ {
			if zeroShared {
				s.Force[i] = vec.Zero
			}
			if s.Fixed[i] {
				continue
			}
			var p, v vec.Vec3
			if beeman {
				// x += v·dt + (4a − a_prev)·dt²/6
				v = s.Vel[i]
				p = s.Pos[i].AddScaled(dt, v).
					AddScaled(dt*dt/6, s.Acc[i].Scale(4).Sub(sim.prevAcc[i]))
			} else {
				v = s.Vel[i].AddScaled(half, s.Acc[i])
				p = s.Pos[i].AddScaled(dt, v)
			}
			p, v = s.Box.Reflect(p, v)
			s.Pos[i] = p
			s.Vel[i] = v
		}
	})
}

// neighborCheckPhase is phase 2: decide whether the neighbor list is still
// valid by measuring the maximum displacement since the last rebuild.
//
//mw:hotpath
func (sim *Simulation) neighborCheckPhase() {
	if !sim.listValid {
		// Nothing to check; a rebuild is already pending.
		sim.beginPhase(PhaseNeighborCheck)
		for w := range sim.busy {
			sim.busy[w] = 0
		}
		sim.finishPhase(PhaseNeighborCheck, time.Now())
		return
	}
	s := sim.Sys
	for w := range sim.maxDisp2 {
		sim.maxDisp2[w] = 0
	}
	sim.schedule(PhaseNeighborCheck, sim.atomChunks.count, func(worker, item int) {
		lo, hi := sim.atomChunks.bounds(item)
		var mx float64
		for i := lo; i < hi; i++ {
			if d := s.Box.MinImage(s.Pos[i].Sub(sim.refPos[i])).Norm2(); d > mx {
				mx = d
			}
		}
		if mx > sim.maxDisp2[worker] {
			sim.maxDisp2[worker] = mx
		}
	})
	limit2 := sim.Cfg.Skin * sim.Cfg.Skin / 4
	for _, mx := range sim.maxDisp2 {
		if mx > limit2 {
			sim.listValid = false
			break
		}
	}
}

// rebuildPhase is the unfused variant of phase 3 (ablation only): assign the
// grid and rebuild every chunk's range list as a standalone barriered phase.
func (sim *Simulation) rebuildPhase() {
	sim.maybeReorder()
	sim.grid.Assign(sim.Sys)
	rng := sim.Cfg.LJCutoff + sim.Cfg.Skin
	sim.schedule(PhaseForce, sim.atomChunks.count, func(_, item int) {
		lo, hi := sim.atomChunks.bounds(item)
		switch {
		case sim.Cfg.Cluster:
			sim.grid.BuildClusterRange(sim.Sys, rng, lo, hi, &sim.clusterLists[item])
		case sim.Cfg.PairLists == FullLists:
			sim.grid.BuildRangeFull(sim.Sys, rng, lo, hi, &sim.ljLists[item])
		default:
			sim.grid.BuildRange(sim.Sys, rng, lo, hi, &sim.ljLists[item])
		}
	})
	copy(sim.refPos, sim.Sys.Pos)
	sim.listValid = true
	sim.rebuilds++
}

// forceItemKind dispatches force-phase work items.
// The force phase's item space concatenates all force families so that
// dynamic strategies balance across them:
// [LJ chunks | Coulomb chunks | bond chunks | angle chunks | torsion chunks].
//
//mw:hotpath
func (sim *Simulation) forceItemCount() int {
	return sim.atomChunks.count + sim.coulChunks.count +
		sim.bondChunks.count + sim.angleChunks.count + sim.torsChunks.count +
		sim.morseChunks.count
}

// forcePhase is the fused phases 3+4: if the neighbor list is stale, each LJ
// chunk rebuilds its range list immediately before consuming it; then all
// force families accumulate into per-worker privatized arrays (or the shared
// array under a mutex in the ablation mode).
//
//mw:hotpath
//mw:forcewriter
func (sim *Simulation) forcePhase() {
	s := sim.Sys
	rebuild := !sim.listValid
	if rebuild {
		// Spatial reordering (when enabled) rides the rebuild cadence: the
		// permutation is only worth applying when the lists are about to be
		// reconstructed anyway, and it must precede cell assignment.
		sim.maybeReorder()
		// Cell assignment is O(N) with tiny constants; done serially before
		// the parallel fused loop (MW does the same under its fused loop's
		// first barrier).
		sim.grid.Assign(s)
	}
	if sim.clCoords != nil {
		// The packed kernel reads the padded SoA coordinate copy; positions
		// move every step, so the repack rides every force phase (serial,
		// O(N) with tiny constants, like Assign above).
		sim.clCoords.Pack(s)
	}
	rng := sim.Cfg.LJCutoff + sim.Cfg.Skin
	for w := range sim.peWorker {
		sim.peWorker[w] = 0
	}
	hasField := !sim.Cfg.Field.IsZero()

	ljEnd := sim.atomChunks.count
	coulEnd := ljEnd + sim.coulChunks.count
	bondEnd := coulEnd + sim.bondChunks.count
	angleEnd := bondEnd + sim.angleChunks.count
	torsEnd := angleEnd + sim.torsChunks.count

	shared := sim.Cfg.Reduce == ReduceSharedMutex
	sim.schedule(PhaseForce, sim.forceItemCount(), func(worker, item int) {
		var f []vec.Vec3
		if shared {
			sim.forceMu.Lock()
			f = s.Force
		} else {
			f = sim.priv[worker]
		}
		var pe float64
		switch {
		case item < ljEnd:
			lo, hi := sim.atomChunks.bounds(item)
			rl := &sim.ljLists[item]
			if sim.Cfg.Cluster {
				cl := &sim.clusterLists[item]
				if rebuild {
					sim.grid.BuildClusterRange(s, rng, lo, hi, cl)
				}
				switch {
				case sim.clusterSIMD:
					pe = sim.lj.AccumulateClusterListSIMD(s, sim.clCoords, cl, &sim.clScratch[item], f)
				case sim.clusterFast:
					pe = sim.lj.AccumulateClusterListFast(s, cl, f)
				default:
					pe = sim.lj.AccumulateClusterList(s, cl, f)
				}
			} else if sim.Cfg.PairLists == FullLists {
				if rebuild {
					sim.grid.BuildRangeFull(s, rng, lo, hi, rl)
				}
				if sim.noExcl {
					pe = sim.lj.AccumulateRangeListFullNoExcl(s, rl, f)
				} else {
					pe = sim.lj.AccumulateRangeListFull(s, rl, f)
				}
			} else {
				if rebuild {
					sim.grid.BuildRange(s, rng, lo, hi, rl)
				}
				switch {
				case sim.fastLJ:
					pe = sim.lj.AccumulateRangeListFast(s, rl, f)
				case sim.noExcl:
					pe = sim.lj.AccumulateRangeListNoExcl(s, rl, f)
				default:
					pe = sim.lj.AccumulateRangeList(s, rl, f)
				}
			}
			if hasField {
				sim.Cfg.Field.AccumulateRange(s, lo, hi, f)
			}
		case item < coulEnd:
			lo, hi := sim.coulChunks.bounds(item - ljEnd)
			pe = sim.coul.AccumulateRange(s, sim.charged, lo, hi, f)
		case item < bondEnd:
			lo, hi := sim.bondChunks.bounds(item - coulEnd)
			pe = accumulateBonds(sim, lo, hi, f)
		case item < angleEnd:
			lo, hi := sim.angleChunks.bounds(item - bondEnd)
			pe = accumulateAngles(sim, lo, hi, f)
		case item < torsEnd:
			lo, hi := sim.torsChunks.bounds(item - angleEnd)
			pe = accumulateTorsions(sim, lo, hi, f)
		default:
			lo, hi := sim.morseChunks.bounds(item - torsEnd)
			pe = forces.AccumulateMorseRange(s, s.Morses, lo, hi, f)
		}
		sim.peWorker[worker] += pe
		if shared {
			sim.forceMu.Unlock()
		}
	})

	if rebuild {
		copy(sim.refPos, s.Pos)
		sim.listValid = true
		sim.rebuilds++
	}
}

// reducePhase is phase 5: fold the privatized force arrays into the shared
// one and clear them for the next step. In shared-mutex mode forces are
// already in place and only the energy is folded.
//
//mw:hotpath
//mw:forcewriter
func (sim *Simulation) reducePhase() {
	var pe float64
	for _, p := range sim.peWorker {
		pe += p
	}
	sim.pe = pe
	if sim.Cfg.Reduce == ReduceSharedMutex {
		sim.beginPhase(PhaseReduce)
		for w := range sim.busy {
			sim.busy[w] = 0
		}
		sim.finishPhase(PhaseReduce, time.Now())
		return
	}
	s := sim.Sys
	priv := sim.priv
	sim.schedule(PhaseReduce, sim.atomChunks.count, func(_, item int) {
		lo, hi := sim.atomChunks.bounds(item)
		for i := lo; i < hi; i++ {
			f := priv[0][i]
			priv[0][i] = vec.Zero
			for w := 1; w < len(priv); w++ {
				f = f.Add(priv[w][i])
				priv[w][i] = vec.Zero
			}
			s.Force[i] = f
		}
	})
}

// correctorPhase is phase 6: compute the new acceleration from the reduced
// forces and complete the velocity update (velocity Verlet's second
// half-kick, or Beeman's weighted three-acceleration corrector).
//
//mw:hotpath
func (sim *Simulation) correctorPhase() {
	s := sim.Sys
	dt := sim.Cfg.Dt
	half := 0.5 * dt
	beeman := sim.Cfg.Integrator == Beeman
	sim.schedule(PhaseCorrector, sim.atomChunks.count, func(_, item int) {
		lo, hi := sim.atomChunks.bounds(item)
		for i := lo; i < hi; i++ {
			if s.Fixed[i] {
				continue
			}
			a := s.Force[i].Scale(s.InvMass[i] * units.ForceToAccel)
			if beeman {
				// v += (2a_new + 5a − a_prev)·dt/6
				s.Vel[i] = s.Vel[i].AddScaled(dt/6,
					a.Scale(2).Add(s.Acc[i].Scale(5)).Sub(sim.prevAcc[i]))
				sim.prevAcc[i] = s.Acc[i]
			} else {
				s.Vel[i] = s.Vel[i].AddScaled(half, a)
			}
			s.Acc[i] = a
		}
	})
}
