package core

import (
	"math"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

// TestClusterMatchesDefaultEngine runs the cluster rung against the default
// half-list engine on the same seeded system and bounds the per-run
// deviation. The cluster kernels visit exactly the same pairs; only the
// summation order differs, so the trajectories should agree far tighter
// than any physical tolerance.
func TestClusterMatchesDefaultEngine(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"serial-reference", Config{Dt: 1, Cluster: true}},
		{"reorder-guided-fast", Config{Dt: 1, Cluster: true, Reorder: true, Partition: PartitionGuided}},
		{"threads-stealing", Config{Dt: 1, Threads: 4, Queues: WorkStealingQueues, Cluster: true, Reorder: true, Partition: PartitionGuided}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := mustSim(t, ljGas(4, 4.3, 120, false), Config{Dt: 1})
			defer ref.Close()
			got := mustSim(t, ljGas(4, 4.3, 120, false), tc.cfg)
			defer got.Close()
			var worst StateDiff
			for step := 0; step < 25; step++ {
				ref.Step()
				got.Step()
				worst = worst.Merge(ref.Snapshot().Diff(got.Snapshot()))
			}
			const tol = 1e-7
			// Negated-<= so a NaN-poisoned diff fails instead of comparing false.
			if !(worst.Pos <= tol && worst.Vel <= tol && worst.Force <= tol && worst.PE <= tol) {
				t.Errorf("cluster engine deviates from default: %v", worst)
			}
		})
	}
}

// TestClusterPeriodicBox exercises the cluster rung under a periodic box,
// where the engine must stay on the Go kernels (the packed kernel is
// non-periodic only).
func TestClusterPeriodicBox(t *testing.T) {
	ref := mustSim(t, ljGas(3, 4.3, 80, true), Config{Dt: 1})
	defer ref.Close()
	got := mustSim(t, ljGas(3, 4.3, 80, true), Config{Dt: 1, Cluster: true, Reorder: true, Partition: PartitionGuided})
	defer got.Close()
	var worst StateDiff
	for step := 0; step < 25; step++ {
		ref.Step()
		got.Step()
		worst = worst.Merge(ref.Snapshot().Diff(got.Snapshot()))
	}
	const tol = 1e-7
	if !(worst.Pos <= tol && worst.Vel <= tol && worst.Force <= tol && worst.PE <= tol) {
		t.Errorf("periodic cluster engine deviates from default: %v", worst)
	}
	// Pair accounting must follow the active list format: under Cluster the
	// pairs are mask bits, not ljLists entries.
	if got.LJPairs() == 0 {
		t.Error("cluster engine reports 0 LJ pairs")
	}
}

// TestClusterRequiresHalfLists: the cluster masks encode Newton-3 half-pair
// ownership, so full lists must be rejected at construction.
func TestClusterRequiresHalfLists(t *testing.T) {
	s := ljGas(2, 4.3, 10, false)
	if _, err := New(s, Config{Cluster: true, PairLists: FullLists}); err == nil {
		t.Error("Cluster+FullLists accepted")
	}
}

// TestAnisotropicPeriodicBoxRejected: the minimum-image check must use the
// *thinnest* periodic edge. A box ample in two dimensions but thinner than
// the interaction range in the third passes a max-edge check and silently
// folds neighbors onto the wrong image.
func TestAnisotropicPeriodicBoxRejected(t *testing.T) {
	s := atom.NewSystem(atom.NewBox(20, 5, 20, true))
	s.AddAtom(atom.Ar, vec.New(1, 1, 1), vec.Zero, 0, false)
	if _, err := New(s, Config{LJCutoff: 8, Skin: 0.8}); err == nil {
		t.Error("periodic box with one undersized edge accepted")
	}
	// The same extents without periodicity are fine.
	s2 := atom.NewSystem(atom.NewBox(20, 5, 20, false))
	s2.AddAtom(atom.Ar, vec.New(1, 1, 1), vec.Zero, 0, false)
	if _, err := New(s2, Config{LJCutoff: 8, Skin: 0.8}); err != nil {
		t.Errorf("non-periodic thin box rejected: %v", err)
	}
}

// TestRunForSteps: RunFor must round to the nearest whole step when the
// requested duration is a whole multiple of Dt up to floating-point error —
// naive truncation turns 10.0/0.1 = 99.999… into 99 steps.
func TestRunForSteps(t *testing.T) {
	cases := []struct {
		dt, fs float64
		want   int
	}{
		{0.1, 10, 100}, // 10/0.1 = 99.999…; truncation would drop a step
		{0.7, 7, 10},   // 7/0.7 = 9.999…
		{2, 10, 5},     // exact
		{0.3, 1, 3},    // 3.33 steps: not near-integral, truncate
		{0.1, 9.99, 99},
		{1, 0.4, 0},
	}
	for _, tc := range cases {
		s := ljGas(2, 4.3, 10, false)
		sim := mustSim(t, s, Config{Dt: tc.dt})
		sim.RunFor(tc.fs)
		if got := sim.StepCount(); got != tc.want {
			t.Errorf("RunFor(%v) at Dt=%v: %d steps, want %d", tc.fs, tc.dt, got, tc.want)
		}
		sim.Close()
	}
	// Guard the guard: a genuinely integral ratio stays put.
	if r := 10.0 / 2.0; math.Round(r) != 5 {
		t.Fatal("arithmetic sanity")
	}
}
