package core

import (
	"context"
	"fmt"
	"math"
	"runtime/trace"
	"sync"
	"time"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/forces"
	"mw/internal/pool"
	"mw/internal/stats"
	"mw/internal/units"
	"mw/internal/vec"
)

// Simulation drives a System through timesteps with the phase structure of
// parallel Molecular Workbench. Create with New, advance with Step or Run,
// release workers with Close.
type Simulation struct {
	Sys *atom.System
	Cfg Config

	lj   *forces.LJ
	coul forces.Coulomb
	grid *cells.Grid

	charged []int32
	// noExcl selects the exclusion-free LJ kernels: true when the system has
	// no excluded pairs, so the per-pair ExclusionSet call can be dropped
	// from the innermost loop. Those kernels are bitwise-identical to the
	// reference math. fastLJ additionally selects the single-reciprocal
	// half-list kernel, whose FP association differs at the ulp level — it is
	// gated on the opt-in reorder hot path (plus no exclusions and no fixed
	// atoms) so default-path golden trajectories never move.
	noExcl bool
	fastLJ bool

	// Cluster-rung state (Cfg.Cluster): per-chunk cluster-pair lists, and —
	// when the packed kernel is selected — the shared padded SoA coordinate
	// copy (repacked serially every step) plus per-chunk SIMD force scratch.
	// clusterFast/clusterSIMD mirror the fastLJ ladder: reference kernel by
	// default, fast variants only on the opt-in reorder hot path.
	clusterLists []cells.ClusterList
	clCoords     *cells.ClusterCoords
	clScratch    []forces.ClusterScratch
	clusterFast  bool
	clusterSIMD  bool

	// Neighbor-list state: per-atom-chunk range lists plus the reference
	// positions from the last rebuild (for the phase-2 validity check).
	ljLists   []cells.RangeList
	refPos    []vec.Vec3
	listValid bool
	rebuilds  int

	// prevAcc holds the previous step's accelerations for the Beeman
	// integrator (nil under velocity Verlet).
	prevAcc []vec.Vec3

	// Executor state. ex is nil for serial runs. pinned is set when the
	// per-worker-queue topology is selected; stealing when work stealing is.
	ex       pool.Executor
	pinned   *pool.PinnedPools
	stealing *pool.StealingPools

	// Per-worker privatized state.
	priv     [][]vec.Vec3 // force arrays (privatized mode)
	peWorker []float64
	maxDisp2 []float64 // per-worker phase-2 partial maxima
	busy     []time.Duration

	forceMu sync.Mutex // guards Sys.Force in shared-mutex mode

	// ro is the §V-A engine-native spatial reordering state (Cfg.Reorder).
	ro reorderState

	// Chunk geometry.
	atomChunks, coulChunks, bondChunks, angleChunks, torsChunks, morseChunks chunkSet

	step int
	pe   float64

	// PhaseWall accumulates wall-clock time per phase across the run.
	PhaseWall [NumPhases]stats.Running
	// WorkerBusy accumulates per-worker busy time per phase.
	WorkerBusy [NumPhases][]time.Duration
}

// chunkSet is a partition of [0, total) into chunks: uniform chunks of size
// size, or — when cuts is set — explicit boundaries (the Morton cell-block
// alignment of the reorder pass, where every chunk covers whole cells).
type chunkSet struct {
	total, size, count int
	cuts               []int32 // nil for uniform chunks; else length count+1
}

func newChunkSet(total, size int) chunkSet {
	if size <= 0 {
		size = 1
	}
	count := (total + size - 1) / size
	return chunkSet{total: total, size: size, count: count}
}

// newCutChunkSet builds a chunkSet from explicit ascending boundaries
// (cuts[0] = 0, cuts[len-1] = total).
func newCutChunkSet(cuts []int32) chunkSet {
	total := int(cuts[len(cuts)-1])
	return chunkSet{total: total, count: len(cuts) - 1, cuts: cuts}
}

//mw:hotpath
func (c chunkSet) bounds(i int) (lo, hi int) {
	if c.cuts != nil {
		return int(c.cuts[i]), int(c.cuts[i+1])
	}
	lo = i * c.size
	hi = lo + c.size
	if hi > c.total {
		hi = c.total
	}
	return lo, hi
}

// New creates a simulation over sys. The system is validated; its Acc array
// is initialized from a first force evaluation so that the first predictor
// step sees consistent state.
func New(sys *atom.System, cfg Config) (*Simulation, error) {
	cfg = cfg.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.Excl == nil && (len(sys.Bonds) > 0 || len(sys.Angles) > 0 || len(sys.Torsions) > 0 || len(sys.Morses) > 0) {
		sys.BuildExclusions()
	}
	rng := cfg.LJCutoff + cfg.Skin
	// The minimum-image convention needs *every* periodic edge to be at
	// least the interaction range — a box thin in one dimension would pass a
	// max-edge check and silently fold neighbors onto the wrong image.
	if sys.Box.Periodic && sys.Box.L.MinAbs() < rng {
		return nil, fmt.Errorf("core: periodic box edge smaller than interaction range %g", rng)
	}
	if cfg.Cluster && cfg.PairLists == FullLists {
		return nil, fmt.Errorf("core: cluster pair format requires half pair lists")
	}
	sim := &Simulation{
		Sys:     sys,
		Cfg:     cfg,
		lj:      forces.NewLJ(sys.Elements, cfg.LJCutoff),
		coul:    forces.Coulomb{Softening: cfg.CoulombSoftening},
		grid:    cells.NewGrid(sys.Box, rng),
		charged: sys.ChargedIndices(),
		noExcl:  sys.Excl.Len() == 0,
	}
	if cfg.Reorder && sim.noExcl {
		sim.fastLJ = true
		for _, fx := range sys.Fixed {
			if fx {
				sim.fastLJ = false
				break
			}
		}
	}
	n := sys.N()
	w := cfg.Threads
	// With Reorder on, sort the system into Morton cell order up front so
	// the atom-chunk boundaries computed next can align to cell blocks:
	// under guided/dynamic partitions the shared cursor then deals out
	// contiguous blocks of whole cells in decreasing batches.
	if cfg.Reorder {
		sim.maybeReorder()
	}
	if cfg.Reorder && n > 0 && sim.ro.cellPop != nil {
		sim.atomChunks = newCutChunkSet(cellChunkCuts(sim.ro.cellPop, n, cfg.ChunkAtoms))
	} else {
		sim.atomChunks = newChunkSet(n, cfg.ChunkAtoms)
	}
	sim.coulChunks = newChunkSet(len(sim.charged), cfg.ChunkAtoms/2+1)
	sim.bondChunks = newChunkSet(len(sys.Bonds), cfg.ChunkAtoms)
	sim.angleChunks = newChunkSet(len(sys.Angles), cfg.ChunkAtoms)
	sim.torsChunks = newChunkSet(len(sys.Torsions), cfg.ChunkAtoms)
	sim.morseChunks = newChunkSet(len(sys.Morses), cfg.ChunkAtoms)
	sim.ljLists = make([]cells.RangeList, sim.atomChunks.count)
	if cfg.Cluster {
		sim.clusterLists = make([]cells.ClusterList, sim.atomChunks.count)
		if cfg.Reorder {
			sim.clusterSIMD = forces.HaveClusterSIMD && !sys.Box.Periodic
			sim.clusterFast = !sim.clusterSIMD
		}
		if sim.clusterSIMD {
			sim.clCoords = &cells.ClusterCoords{}
			sim.clScratch = make([]forces.ClusterScratch, sim.atomChunks.count)
		}
	}
	sim.refPos = make([]vec.Vec3, n)

	sim.peWorker = make([]float64, w)
	sim.maxDisp2 = make([]float64, w)
	sim.busy = make([]time.Duration, w)
	if cfg.Reduce == ReducePrivatized {
		sim.priv = make([][]vec.Vec3, w)
		for i := range sim.priv {
			sim.priv[i] = make([]vec.Vec3, n)
		}
	}
	for ph := range sim.WorkerBusy {
		sim.WorkerBusy[ph] = make([]time.Duration, w)
	}
	if w > 1 {
		switch cfg.Queues {
		case PerWorkerQueues:
			sim.pinned = pool.NewPinnedPools(w)
			sim.ex = sim.pinned
		case WorkStealingQueues:
			sim.stealing = pool.NewStealingPools(w)
		default:
			sim.ex = pool.NewFixedPool(w)
		}
	}

	// Initial force evaluation fills Force and Acc. It is bootstrap, not a
	// timestep: instruments and telemetry must not see it as a phase
	// instance (nor its tasks as chunks or parks) — counting bootstrap is
	// exactly the metric pollution the maintenance paths elsewhere avoid.
	// The force array must be cleared first: a system cloned from a previous
	// run carries that run's forces, and the shared-mutex mode accumulates
	// into Force in place (privatized mode overwrites it during reduce, but
	// zeroing is cheap and keeps both modes on the same contract).
	sys.ZeroForces()
	inst, tele := sim.Cfg.Instrument, sim.Cfg.Telemetry
	sim.Cfg.Instrument = nil
	sim.Cfg.Telemetry = nil
	sim.listValid = false
	sim.forcePhase()
	sim.reducePhase()
	sim.Cfg.Instrument = inst
	sim.Cfg.Telemetry = tele
	if tele != nil {
		// Pool-level events (steals, parks) flow to the same sink, armed
		// only now so bootstrap parks are invisible.
		switch {
		case sim.pinned != nil:
			sim.pinned.SetTelemetry(tele)
		case sim.stealing != nil:
			sim.stealing.SetTelemetry(tele)
		case sim.ex != nil:
			if fp, ok := sim.ex.(*pool.FixedPool); ok {
				fp.SetTelemetry(tele)
			}
		}
	}
	for i := range sys.Acc {
		sys.Acc[i] = sys.Force[i].Scale(sys.InvMass[i] * units.ForceToAccel)
	}
	if cfg.Integrator == Beeman {
		// Bootstrap a(t−dt) = a(0): degrades the first step to second
		// order, standard practice.
		sim.prevAcc = append([]vec.Vec3(nil), sys.Acc...)
	}
	return sim, nil
}

// Close shuts the worker pool down. The simulation must not be stepped
// afterwards.
func (sim *Simulation) Close() {
	if sim.ex != nil {
		sim.ex.Shutdown()
		sim.ex = nil
		sim.pinned = nil
	}
	if sim.stealing != nil {
		sim.stealing.Shutdown()
		sim.stealing = nil
	}
}

// Step advances the simulation by one timestep through the full phase
// sequence.
func (sim *Simulation) Step() {
	region := trace.StartRegion(context.Background(), "mw.step")
	sim.step++
	sim.predictorPhase()
	sim.neighborCheckPhase()
	if sim.Cfg.SeparateRebuild && !sim.listValid {
		sim.rebuildPhase()
	}
	sim.forcePhase()
	sim.reducePhase()
	sim.correctorPhase()
	if sim.Cfg.Thermostat != nil {
		sim.Cfg.Thermostat.Apply(sim.Sys, sim.Cfg.Dt)
	}
	region.End()
	if tele := sim.Cfg.Telemetry; tele != nil {
		tele.StepDone(sim.step)
	}
}

// Run advances the simulation by n timesteps.
func (sim *Simulation) Run(n int) {
	for i := 0; i < n; i++ {
		sim.Step()
	}
}

// RunFor advances the simulation by the given simulated duration in fs.
// The step count rounds to the nearest integer when the division lands
// within a relative tolerance of it: 10 fs at Dt=0.1 is 100 steps even
// though 10.0/0.1 evaluates to 99.999… in floating point. Otherwise the
// fractional tail is truncated as before (only whole steps run).
func (sim *Simulation) RunFor(fs float64) {
	ratio := fs / sim.Cfg.Dt
	steps := int(ratio)
	if nearest := math.Round(ratio); nearest > 0 && math.Abs(ratio-nearest) <= 1e-9*nearest {
		steps = int(nearest)
	}
	sim.Run(steps)
}

// StepCount returns the number of completed timesteps.
func (sim *Simulation) StepCount() int { return sim.step }

// PE returns the potential energy from the most recent force evaluation.
func (sim *Simulation) PE() float64 { return sim.pe }

// TotalEnergy returns PE + KE in eV.
func (sim *Simulation) TotalEnergy() float64 {
	return sim.pe + sim.Sys.KineticEnergy()
}

// Rebuilds returns how many times the neighbor list has been rebuilt.
func (sim *Simulation) Rebuilds() int { return sim.rebuilds }

// Workers returns the configured worker count.
func (sim *Simulation) Workers() int { return sim.Cfg.Threads }

// QueueStats returns the executor's queue counters (enqueued, dequeued,
// contended lock acquisitions); zeros for serial runs.
func (sim *Simulation) QueueStats() (enqueued, dequeued, contended int64) {
	switch ex := sim.ex.(type) {
	case *pool.FixedPool:
		return ex.QueueStats()
	case *pool.PinnedPools:
		return ex.QueueStats()
	}
	return 0, 0, 0
}

// Steals returns per-worker steal counts under the work-stealing topology
// (nil otherwise).
func (sim *Simulation) Steals() []int64 {
	if sim.stealing == nil {
		return nil
	}
	return sim.stealing.Steals()
}

// LJPairs returns the number of stored LJ half pairs. Under Cfg.Cluster the
// pairs live in the cluster lists as mask bits rather than in ljLists, so
// the count comes from there.
func (sim *Simulation) LJPairs() int {
	n := 0
	if sim.Cfg.Cluster {
		for i := range sim.clusterLists {
			n += sim.clusterLists[i].Pairs()
		}
		return n
	}
	for i := range sim.ljLists {
		n += sim.ljLists[i].Len()
	}
	return n
}
