// Package core implements the parallel 3D molecular dynamics engine of
// Molecular Workbench as described in the paper's §II: a timestep split into
// phases — predictor, neighbor-list validity check, fused neighbor
// rebuild + force computation, reduction across privatized force arrays,
// corrector — with barriers between phases, executed by a fixed pool of
// workers fed through work queues.
package core

import (
	"time"

	"mw/internal/forces"
	"mw/internal/telemetry"
)

// Partition selects how work chunks are assigned to workers within a phase
// (paper §II-B discusses the 1/N block split and the load-shape problems of
// the fused phase; §IV analyzes the resulting imbalance).
type Partition int

const (
	// PartitionCyclic deals chunks round-robin: chunk c goes to worker
	// c mod N. This balances the triangular load shape of half pair lists
	// and is the engine default.
	PartitionCyclic Partition = iota
	// PartitionBlock gives each worker one contiguous range of chunks — the
	// paper's "each thread is assigned a fraction 1/N of the total atoms".
	// Under half pairing, lower-numbered chunks carry more pairs, so this
	// strategy exhibits the §IV load imbalance.
	PartitionBlock
	// PartitionGuided hands out batches of decreasing size from a shared
	// counter (OpenMP guided-style self-scheduling).
	PartitionGuided
	// PartitionDynamic hands out one chunk at a time from a shared counter —
	// maximal balance, maximal queue traffic.
	PartitionDynamic
)

// String returns the partition strategy name.
func (p Partition) String() string {
	switch p {
	case PartitionCyclic:
		return "cyclic"
	case PartitionBlock:
		return "block"
	case PartitionGuided:
		return "guided"
	case PartitionDynamic:
		return "dynamic"
	}
	return "unknown"
}

// QueueTopology selects the executor layout (paper §II-B: single shared
// work queue vs. one queue per thread).
type QueueTopology int

const (
	// SharedQueue: one FixedPool, all workers pull from a single queue.
	SharedQueue QueueTopology = iota
	// PerWorkerQueues: one single-worker pool per worker, tasks routed to a
	// specific worker's private queue (also the §V-B affinity mechanism).
	PerWorkerQueues
	// WorkStealingQueues: per-worker deques with idle-worker stealing — the
	// ForkJoinPool-style resolution of the shared-vs-private trade-off.
	// Work chunks are submitted one task each to their owner's deque; idle
	// workers steal, so §II-B's "one queue has considerable work while
	// other threads sit idle" cannot happen.
	WorkStealingQueues
)

// String returns the topology name.
func (q QueueTopology) String() string {
	switch q {
	case PerWorkerQueues:
		return "per-worker-queues"
	case WorkStealingQueues:
		return "work-stealing"
	}
	return "shared-queue"
}

// ReduceMode selects how per-pair forces reach the shared force array.
type ReduceMode int

const (
	// ReducePrivatized gives every worker a private force array and adds a
	// reduction phase — the paper's phase 5.
	ReducePrivatized ReduceMode = iota
	// ReduceSharedMutex writes directly into the shared force array under a
	// global mutex — the naive alternative, kept as an ablation.
	ReduceSharedMutex
)

// String returns the reduction mode name.
func (r ReduceMode) String() string {
	if r == ReduceSharedMutex {
		return "shared-mutex"
	}
	return "privatized"
}

// IntegratorMode selects the predictor-corrector integration scheme. Both
// fit the paper's description (§II-A): a second-order Taylor predictor for
// positions followed by a velocity corrector using the newly computed
// forces.
type IntegratorMode int

const (
	// VelocityVerlet is the default half-kick/drift/half-kick scheme.
	VelocityVerlet IntegratorMode = iota
	// Beeman is Beeman's third-order-position predictor-corrector — the
	// scheme the Molecular Workbench engine itself documents. It needs the
	// previous step's acceleration.
	Beeman
)

// String returns the integrator name.
func (m IntegratorMode) String() string {
	if m == Beeman {
		return "beeman"
	}
	return "velocity-verlet"
}

// PairListMode selects half or full neighbor lists.
type PairListMode int

const (
	// HalfLists stores each pair once under its lower-indexed atom —
	// Molecular Workbench's scheme (§II-B), with its front-loaded work.
	HalfLists PairListMode = iota
	// FullLists stores each pair under both endpoints: ~2× the pair
	// arithmetic, but a uniform load shape and no mirrored force writes.
	FullLists
)

// String returns the mode name.
func (p PairListMode) String() string {
	if p == FullLists {
		return "full-lists"
	}
	return "half-lists"
}

// Phase identifies one stage of the timestep (paper §II-A's six phases;
// neighbor rebuild is fused into the force phase, and the validity check is
// phase 2).
type Phase int

const (
	PhasePredictor Phase = iota
	PhaseNeighborCheck
	PhaseForce // fused neighbor rebuild + all force computations
	PhaseReduce
	PhaseCorrector
	NumPhases
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhasePredictor:
		return "predictor"
	case PhaseNeighborCheck:
		return "neighbor-check"
	case PhaseForce:
		return "force"
	case PhaseReduce:
		return "reduce"
	case PhaseCorrector:
		return "corrector"
	}
	return "unknown"
}

// PhaseNames returns the phase-name table indexed by Phase — the table a
// telemetry.Recorder for this engine should be built with.
func PhaseNames() []string {
	names := make([]string, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		names[ph] = ph.String()
	}
	return names
}

// Instrument receives engine events; implementations live in
// internal/perfmon. A nil instrument costs two branch checks per phase.
// Instrument implementations are themselves the subject of the paper's §IV-A
// observer-effect experiments.
type Instrument interface {
	// PhaseDone is called once per phase per step with the phase wall time
	// and each worker's busy time during that phase.
	PhaseDone(step int, ph Phase, wall time.Duration, workerBusy []time.Duration)
}

// Config holds engine parameters. The zero value is not usable; call
// (Config).withDefaults via New.
type Config struct {
	// Dt is the timestep in fs (default 2, the paper's upper step size).
	Dt float64
	// LJCutoff is the Lennard-Jones cutoff radius in Å (default 8).
	LJCutoff float64
	// Skin is the neighbor-list skin in Å (default 0.8); the list is rebuilt
	// when any atom moves farther than Skin/2.
	Skin float64
	// CoulombSoftening is the Coulomb softening length in Å (default 0.05).
	CoulombSoftening float64
	// Threads is the worker count (default 1 = serial).
	Threads int
	// Partition is the chunk-assignment strategy (default cyclic).
	Partition Partition
	// Queues selects the executor topology (default shared queue).
	Queues QueueTopology
	// Reduce selects force accumulation (default privatized arrays).
	Reduce ReduceMode
	// SeparateRebuild runs the neighbor rebuild as its own barriered phase
	// instead of fusing it into the force phase. The fused layout (default)
	// is the paper's design; the separated layout exists for the ablation
	// benchmark.
	SeparateRebuild bool
	// ChunkAtoms is the work-chunk granularity in atoms/bonds (default 64).
	ChunkAtoms int
	// PairLists selects half (default, the paper's scheme) or full
	// neighbor lists.
	PairLists PairListMode
	// Reorder enables the engine-native spatial data reordering of §V-A: on
	// every neighbor-list rebuild, atoms are permuted into Morton (Z-order)
	// cell order — positions, velocities, forces, charges gathered, bond
	// indices remapped, exclusions rebuilt — so the half-list traversal
	// walks nearly contiguous memory. An inverse index map is maintained;
	// Snapshot, SystemInOriginalOrder and OriginalIDs report original atom
	// IDs, so trajectories and the verify matrix are unaffected by the
	// relabeling. Off by default (golden trajectories are bit-identical
	// with the feature off). With Reorder on, atom chunk boundaries are
	// aligned to Morton cell blocks, so guided/dynamic partitions deal out
	// contiguous blocks of cells in decreasing batches (the hybrid
	// cell-task scheme of Mangiardi & Meyer, arXiv:1611.00075).
	Reorder bool
	// Cluster selects the Verlet cluster-pair (MxN) neighbor format for the
	// LJ cutoff loop: atoms grouped into clusters of cells.ClusterSize with
	// per-cluster-pair interaction masks, the GROMACS-style layout that
	// keeps SIMD lanes full under Al-1000's frequent rebuilds. On its own it
	// runs the bitwise-deterministic reference cluster kernel; combined with
	// the opt-in Reorder hot path the engine auto-picks the fast variant and,
	// on capable amd64 hardware with a non-periodic box, the packed AVX2
	// kernel. Requires half pair lists (the cluster masks encode Newton-3
	// half-pair ownership).
	Cluster bool
	// Integrator selects the predictor-corrector scheme (default velocity
	// Verlet).
	Integrator IntegratorMode
	// Thermostat optionally controls temperature each step (nil = NVE).
	Thermostat Thermostat
	// Field is an optional uniform external field.
	Field forces.Field
	// Instrument optionally receives per-phase events.
	Instrument Instrument
	// Telemetry optionally receives live engine events — phase begin/end,
	// per-chunk completions, and (via the pool executors) steals and parks.
	// Unlike Instrument, which the perfmon experiments swap per run, this is
	// the always-on production monitor: a telemetry.Recorder here costs a
	// few nanoseconds per event (the observer-native experiment gates it
	// under 2%), and nil costs one branch per phase plus one per chunk.
	Telemetry telemetry.Sink
	// ChunkHook, when set, is invoked by the worker after every processed
	// work chunk. It is the injection point for fine-grained monitors (the
	// JaMON-style per-work-unit instrumentation whose observer effect §IV-A
	// measures). It must be safe for concurrent use.
	ChunkHook func(worker int)
}

// withDefaults fills unset fields with engine defaults.
func (c Config) withDefaults() Config {
	if c.Dt <= 0 {
		c.Dt = 2
	}
	if c.LJCutoff <= 0 {
		c.LJCutoff = 8
	}
	if c.Skin < 0 {
		c.Skin = 0
	} else if c.Skin == 0 {
		c.Skin = 0.8
	}
	if c.CoulombSoftening == 0 {
		c.CoulombSoftening = 0.05
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.ChunkAtoms <= 0 {
		c.ChunkAtoms = 64
	}
	return c
}
