package core

import (
	"math"
	"math/rand"

	"mw/internal/atom"
	"mw/internal/units"
	"mw/internal/vec"
)

// Thermostat adjusts velocities once per step, after the corrector.
// Molecular Workbench exposes a "heat bath" with exactly this role: its
// pedagogical simulations heat, cool and hold temperature interactively.
type Thermostat interface {
	// Apply rescales or perturbs the mobile atoms' velocities. dt is the
	// timestep in fs.
	Apply(s *atom.System, dt float64)
	// Name identifies the algorithm.
	Name() string
}

// VelocityRescale is the crudest thermostat: hard-rescale velocities to the
// target temperature every Period steps.
type VelocityRescale struct {
	T      float64 // target temperature, K
	Period int     // steps between rescales (default 1)
	count  int
}

// Apply implements Thermostat.
func (v *VelocityRescale) Apply(s *atom.System, _ float64) {
	period := v.Period
	if period <= 0 {
		period = 1
	}
	v.count++
	if v.count%period != 0 {
		return
	}
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	scale := math.Sqrt(v.T / cur)
	for i := range s.Vel {
		if !s.Fixed[i] {
			s.Vel[i] = s.Vel[i].Scale(scale)
		}
	}
}

// Name implements Thermostat.
func (v *VelocityRescale) Name() string { return "velocity-rescale" }

// Berendsen is the weak-coupling thermostat: velocities relax toward the
// target with time constant Tau, λ = sqrt(1 + dt/τ·(T0/T − 1)).
type Berendsen struct {
	T   float64 // target temperature, K
	Tau float64 // coupling time constant, fs (default 100)
}

// Apply implements Thermostat.
func (b *Berendsen) Apply(s *atom.System, dt float64) {
	tau := b.Tau
	if tau <= 0 {
		tau = 100
	}
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	lam2 := 1 + dt/tau*(b.T/cur-1)
	if lam2 < 0.64 {
		lam2 = 0.64 // clamp extreme corrections (λ ∈ [0.8, 1.25])
	} else if lam2 > 1.5625 {
		lam2 = 1.5625
	}
	lam := math.Sqrt(lam2)
	for i := range s.Vel {
		if !s.Fixed[i] {
			s.Vel[i] = s.Vel[i].Scale(lam)
		}
	}
}

// Name implements Thermostat.
func (b *Berendsen) Name() string { return "berendsen" }

// Langevin applies the BBK-style stochastic thermostat: per step each
// velocity is damped by exp(-γ·dt) and kicked with Gaussian noise of the
// matching variance, producing a canonical distribution at T.
type Langevin struct {
	T     float64 // target temperature, K
	Gamma float64 // friction, 1/fs (default 0.01)
	Rng   *rand.Rand
}

// Apply implements Thermostat.
func (l *Langevin) Apply(s *atom.System, dt float64) {
	gamma := l.Gamma
	if gamma <= 0 {
		gamma = 0.01
	}
	if l.Rng == nil {
		l.Rng = rand.New(rand.NewSource(1))
	}
	c1 := math.Exp(-gamma * dt)
	for i := range s.Vel {
		if s.Fixed[i] {
			continue
		}
		// σ² per component for the fluctuation term.
		sigma := math.Sqrt((1 - c1*c1) * units.Boltzmann * l.T / (s.Mass[i] * units.KEFactor))
		s.Vel[i] = s.Vel[i].Scale(c1).Add(vec.New(
			sigma*l.Rng.NormFloat64(),
			sigma*l.Rng.NormFloat64(),
			sigma*l.Rng.NormFloat64(),
		))
	}
}

// Name implements Thermostat.
func (l *Langevin) Name() string { return "langevin" }
