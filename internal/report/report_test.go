package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.AddRow("short", 1.5)
	tb.AddRow("much-longer-name", 123456.789)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: "Value" header starts at same offset as row values.
	hdr := lines[1]
	row := lines[4]
	if strings.Index(hdr, "Value") > len(row) {
		t.Error("misaligned columns")
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.14159265)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float not compacted: %s", tb.String())
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("a", "b")
	out := tb.String()
	if strings.Contains(out, "==") || strings.Contains(out, "---") {
		t.Errorf("unexpected chrome: %q", out)
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{
		{0, 0.5, 1},
		{1, 0, -0.5}, // clamped
	}
	out := Heatmap("H", []string{"core0", "core1"}, m)
	if !strings.Contains(out, "core0") || !strings.Contains(out, "== H ==") {
		t.Error("missing labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Intensity 1 renders the densest glyph, 0 a space.
	if !strings.Contains(lines[1], "@") {
		t.Errorf("max intensity glyph missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "@") {
		t.Errorf("row 2 clamp: %q", lines[2])
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Speedup", "cores", []float64{1, 2, 4})
	s.Add("salt", []float64{1, 1.9, 3.6})
	s.Add("nanocar", []float64{1, 1.8, 3.0})
	out := s.String()
	for _, frag := range []string{"Speedup", "cores", "salt", "nanocar", "3.6"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	s := NewSeries("x", "x", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	s.Add("bad", []float64{1})
}
