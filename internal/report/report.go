// Package report renders experiment results as aligned text tables, ASCII
// heat maps and series — the output layer shared by cmd/mwbench and the
// benchmark harness, producing the rows/series the paper's tables and
// figures report.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v (floats with %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// heatRamp maps intensity 0..1 to a character (the paper's Fig 2 uses
// green→red; text gets light→dark).
const heatRamp = " .:-=+*#%@"

// Heatmap renders a row-labeled intensity matrix (values clamped to [0,1]).
func Heatmap(title string, rowLabels []string, m [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for r, row := range m {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, v := range row {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Series renders one or more named y-series against shared x values.
type Series struct {
	Title  string
	XLabel string
	xs     []float64
	names  []string
	ys     [][]float64
}

// NewSeries creates a series plot container.
func NewSeries(title, xlabel string, xs []float64) *Series {
	return &Series{Title: title, XLabel: xlabel, xs: xs}
}

// Add appends one named series; len(ys) must equal len(xs).
func (s *Series) Add(name string, ys []float64) {
	if len(ys) != len(s.xs) {
		panic("report: series length mismatch")
	}
	s.names = append(s.names, name)
	s.ys = append(s.ys, ys)
}

// String renders the series as a table with one row per x.
func (s *Series) String() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.names...)...)
	for i, x := range s.xs {
		row := make([]any, 1+len(s.ys))
		row[0] = x
		for j := range s.ys {
			row[j+1] = s.ys[j][i]
		}
		t.AddRow(row...)
	}
	return t.String()
}
