// Package workload generates the three benchmark systems of the paper's
// Table I, chosen to represent the three force-dominance categories found in
// the Molecular Workbench repository (§III):
//
//	salt     — 800 atoms, all charged (400 Na⁺ + 400 Cl⁻), Coulomb-dominated
//	nanocar  — 989 atoms, 2277 bond terms, half of the atoms an immovable
//	           gold platform; bond-dominated
//	Al-1000  — 1000 atoms: a dense stationary block of 999 aluminum atoms
//	           hit by a single fast gold atom; LJ-dominated with frequent
//	           neighbor-list rebuilds
//
// plus scaled variants used by the extension experiments.
package workload

import (
	"math/rand"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/forces"
	"mw/internal/vec"
)

// Benchmark couples a generated system with the engine configuration the
// paper's experiments use for it.
type Benchmark struct {
	Name string
	Sys  *atom.System
	Cfg  core.Config
	// RebuildHeavy marks workloads that invalidate the neighbor list nearly
	// every step (the paper's Al-1000: "a large number of collisions and
	// requires frequent neighbor list updates").
	RebuildHeavy bool
}

// Characteristics summarizes a benchmark the way Table I does.
type Characteristics struct {
	Name         string
	Atoms        int
	ChargedAtoms int
	BondTerms    int // radial + angular + torsional terms
	Radial       int
	Angles       int
	Torsions     int
	Dominant     string
}

// Characterize derives Table I's row for a system.
func Characterize(name string, s *atom.System) Characteristics {
	c := Characteristics{
		Name:         name,
		Atoms:        s.N(),
		ChargedAtoms: s.NumCharged(),
		Radial:       len(s.Bonds),
		Angles:       len(s.Angles),
		Torsions:     len(s.Torsions),
	}
	c.BondTerms = c.Radial + c.Angles + c.Torsions
	switch {
	case c.BondTerms > 0 && c.BondTerms >= c.Atoms:
		c.Dominant = "Bonds"
	case c.ChargedAtoms > c.Atoms/2:
		c.Dominant = "Ionic"
	default:
		c.Dominant = "Lennard-Jones"
	}
	return c
}

// Salt builds the salt benchmark: a 10×10×8 rock-salt lattice of 400 sodium
// and 400 chlorine ions (every atom charged, no bonds), thermalized to 300 K.
func Salt() *Benchmark {
	const spacing = 2.82 // Å, NaCl nearest-neighbor distance
	const nx, ny, nz = 10, 10, 8
	margin := 8.0
	box := atom.NewBox(
		float64(nx)*spacing+2*margin,
		float64(ny)*spacing+2*margin,
		float64(nz)*spacing+2*margin,
		false,
	)
	s := atom.NewSystem(box)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				p := vec.New(
					margin+float64(x)*spacing,
					margin+float64(y)*spacing,
					margin+float64(z)*spacing,
				)
				if (x+y+z)%2 == 0 {
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				} else {
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				}
			}
		}
	}
	s.Thermalize(300, rand.New(rand.NewSource(1)))
	return &Benchmark{
		Name: "salt",
		Sys:  s,
		Cfg:  core.Config{Dt: 2, LJCutoff: 8, Skin: 0.8},
	}
}

// Al1000 builds the Al-1000 benchmark: a densely packed stationary block of
// 999 aluminum atoms struck by a single fast-moving gold atom. The impact
// produces many collisions and frequent neighbor-list updates (§III).
func Al1000() *Benchmark {
	const spacing = 2.86 // Å, Al nearest-neighbor distance
	const n = 10         // 10×10×10 minus one corner = 999 Al
	margin := 12.0
	l := float64(n-1)*spacing + 2*margin
	s := atom.NewSystem(atom.CubicBox(l, false))
	count := 0
	for x := 0; x < n && count < 999; x++ {
		for y := 0; y < n && count < 999; y++ {
			for z := 0; z < n && count < 999; z++ {
				p := vec.New(
					margin+float64(x)*spacing,
					margin+float64(y)*spacing,
					margin+float64(z)*spacing,
				)
				s.AddAtom(atom.Al, p, vec.Zero, 0, false)
				count++
			}
		}
	}
	// The projectile: a gold atom above the block moving straight at its
	// center at ~5 km/s (0.05 Å/fs).
	center := vec.New(l/2, l/2, l/2)
	start := vec.New(l/2, l/2, l-2)
	dir := center.Sub(start).Normalized()
	s.AddAtom(atom.Au, start, dir.Scale(0.05), 0, false)
	return &Benchmark{
		Name:         "Al-1000",
		Sys:          s,
		Cfg:          core.Config{Dt: 1, LJCutoff: 7, Skin: 0.6},
		RebuildHeavy: true,
	}
}

// nanocarTargets are Table I's published counts for the nanocar benchmark.
const (
	nanocarAtoms     = 989
	nanocarBondTerms = 2277
)

// Nanocar builds the nanocar benchmark: a bonded "nanoscale car" of carbon
// and hydrogen resting on an immovable platform of gold atoms. About half
// the atoms form the car; the platform atoms are fixed and do not interact
// with one another, lowering the effective atom count (§III).
func Nanocar() *Benchmark {
	const platformSpacing = 2.88
	const platformSide = 22 // 22×22 = 484 fixed gold atoms
	const carSpacing = 3.3

	margin := 6.0
	lx := float64(platformSide-1)*platformSpacing + 2*margin
	box := atom.NewBox(lx, lx, 60, false)
	s := atom.NewSystem(box)

	// Platform: a single fixed gold layer at z = 4.
	for x := 0; x < platformSide; x++ {
		for y := 0; y < platformSide; y++ {
			p := vec.New(margin+float64(x)*platformSpacing, margin+float64(y)*platformSpacing, 4)
			s.AddAtom(atom.Au, p, vec.Zero, 0, true)
		}
	}

	// Car: a 5×10×10 carbon mesh (500 atoms) with a 5-atom antenna chain,
	// centered above the platform. 505 car atoms + 484 platform = 989. The
	// mesh zig-zags slightly (like real sp³ backbones) so that no bonded
	// chain is collinear — straight chains make the dihedral angle singular.
	const cx, cy, cz = 5, 10, 10
	const zig = 0.45
	carBase := vec.New(lx/2-float64(cx-1)*carSpacing/2, lx/2-float64(cy-1)*carSpacing/2, 8)
	idx := func(x, y, z int) int32 {
		return int32(platformSide*platformSide + (x*cy+y)*cz + z)
	}
	for x := 0; x < cx; x++ {
		for y := 0; y < cy; y++ {
			for z := 0; z < cz; z++ {
				p := carBase.Add(vec.New(
					float64(x)*carSpacing+zig*float64(z%2),
					float64(y)*carSpacing+zig*float64(x%2),
					float64(z)*carSpacing+zig*float64((x+y)%2),
				))
				s.AddAtom(atom.C, p, vec.Zero, 0, false)
			}
		}
	}
	antennaStart := int32(s.N())
	for k := 0; k < 5; k++ {
		p := carBase.Add(vec.New(
			float64(cx)*carSpacing+float64(k)*carSpacing,
			zig*float64(k%2), 0,
		))
		s.AddAtom(atom.H, p, vec.Zero, 0, false)
	}

	// Radial bonds along all mesh edges.
	const kBond, r0 = 18.0, carSpacing
	for x := 0; x < cx; x++ {
		for y := 0; y < cy; y++ {
			for z := 0; z < cz; z++ {
				if x+1 < cx {
					s.Bonds = append(s.Bonds, atom.Bond{I: idx(x, y, z), J: idx(x+1, y, z), K: kBond, R0: r0})
				}
				if y+1 < cy {
					s.Bonds = append(s.Bonds, atom.Bond{I: idx(x, y, z), J: idx(x, y+1, z), K: kBond, R0: r0})
				}
				if z+1 < cz {
					s.Bonds = append(s.Bonds, atom.Bond{I: idx(x, y, z), J: idx(x, y, z+1), K: kBond, R0: r0})
				}
			}
		}
	}
	// Antenna chain bonds (mesh corner → 5 hydrogens).
	prev := idx(cx-1, 0, 0)
	for k := int32(0); k < 5; k++ {
		s.Bonds = append(s.Bonds, atom.Bond{I: prev, J: antennaStart + k, K: 10, R0: r0})
		prev = antennaStart + k
	}

	// Angle terms along straight x-triples, then y-triples, until the term
	// budget (2277 total, with 27 reserved for torsions) is reached.
	termBudget := nanocarBondTerms - 27 - len(s.Bonds)
	const kTheta, theta0 = 2.5, 3.14159265358979
addAngles:
	for _, axis := range [3]int{0, 1, 2} {
		for x := 0; x < cx; x++ {
			for y := 0; y < cy; y++ {
				for z := 0; z < cz; z++ {
					if len(s.Angles) >= termBudget {
						break addAngles
					}
					var a, b, c int32
					switch axis {
					case 0:
						if x+2 >= cx {
							continue
						}
						a, b, c = idx(x, y, z), idx(x+1, y, z), idx(x+2, y, z)
					case 1:
						if y+2 >= cy {
							continue
						}
						a, b, c = idx(x, y, z), idx(x, y+1, z), idx(x, y+2, z)
					default:
						if z+2 >= cz {
							continue
						}
						a, b, c = idx(x, y, z), idx(x, y, z+1), idx(x, y, z+2)
					}
					s.Angles = append(s.Angles, atom.Angle{I: a, J: b, K: c, KTheta: kTheta, Theta0: theta0})
				}
			}
		}
	}

	// Torsions along x-chains: exactly 27.
	for y := 0; y < cy && len(s.Torsions) < 27; y++ {
		for z := 0; z < cz && len(s.Torsions) < 27; z++ {
			s.Torsions = append(s.Torsions, atom.Torsion{
				I: idx(0, y, z), J: idx(1, y, z), K: idx(2, y, z), L: idx(3, y, z),
				V0: 0.3, N: 3, Phi0: 0,
			})
		}
	}

	// Parameterize every bonded term to the built geometry so the structure
	// starts at mechanical equilibrium.
	for i := range s.Bonds {
		b := &s.Bonds[i]
		b.R0 = s.Box.MinImage(s.Pos[b.J].Sub(s.Pos[b.I])).Norm()
	}
	for i := range s.Angles {
		s.Angles[i].Theta0 = forces.AngleValue(s, s.Angles[i])
	}
	for i := range s.Torsions {
		s.Torsions[i].Phi0 = forces.DihedralValue(s, s.Torsions[i])
	}

	s.BuildExclusions()
	s.Thermalize(200, rand.New(rand.NewSource(2)))
	return &Benchmark{
		Name: "nanocar",
		Sys:  s,
		Cfg:  core.Config{Dt: 1, LJCutoff: 8, Skin: 0.8},
	}
}

// All returns the three Table I benchmarks in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{Nanocar(), Salt(), Al1000()}
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	switch name {
	case "salt":
		return Salt()
	case "nanocar":
		return Nanocar()
	case "Al-1000", "al-1000", "al1000":
		return Al1000()
	}
	return nil
}

// ScaledSalt builds an ionic system with n ions (n even) on a rock-salt
// lattice — the workload for the PME crossover experiment.
func ScaledSalt(n int) *Benchmark {
	const spacing = 2.82
	side := 1
	for side*side*side < n {
		side++
	}
	margin := 8.0
	l := float64(side-1)*spacing + 2*margin
	s := atom.NewSystem(atom.CubicBox(l, false))
	count := 0
	for x := 0; x < side && count < n; x++ {
		for y := 0; y < side && count < n; y++ {
			for z := 0; z < side && count < n; z++ {
				p := vec.New(margin+float64(x)*spacing, margin+float64(y)*spacing, margin+float64(z)*spacing)
				if (x+y+z)%2 == 0 {
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				} else {
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				}
				count++
			}
		}
	}
	s.Thermalize(300, rand.New(rand.NewSource(3)))
	return &Benchmark{
		Name: "scaled-salt",
		Sys:  s,
		Cfg:  core.Config{Dt: 2, LJCutoff: 8, Skin: 0.8},
	}
}

// LJGas builds an argon lattice with n³ atoms at the given temperature —
// the quickstart example's workload.
func LJGas(n int, temperature float64, periodic bool) *Benchmark {
	const spacing = 4.3
	l := float64(n) * spacing
	s := atom.NewSystem(atom.CubicBox(l, periodic))
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				p := vec.New((float64(x)+0.5)*spacing, (float64(y)+0.5)*spacing, (float64(z)+0.5)*spacing)
				s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
			}
		}
	}
	s.Thermalize(temperature, rand.New(rand.NewSource(4)))
	return &Benchmark{
		Name: "lj-gas",
		Sys:  s,
		Cfg:  core.Config{Dt: 2, LJCutoff: 8, Skin: 0.8},
	}
}
