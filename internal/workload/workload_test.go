package workload

import (
	"math"
	"testing"

	"mw/internal/core"
)

// Table I's published characteristics.
func TestTableICharacteristics(t *testing.T) {
	cases := []struct {
		bench    *Benchmark
		atoms    int
		charged  int
		bonds    int
		dominant string
	}{
		{Nanocar(), 989, 0, 2277, "Bonds"},
		{Salt(), 800, 800, 0, "Ionic"},
		{Al1000(), 1000, 0, 0, "Lennard-Jones"},
	}
	for _, c := range cases {
		ch := Characterize(c.bench.Name, c.bench.Sys)
		if ch.Atoms != c.atoms {
			t.Errorf("%s: atoms = %d, want %d", c.bench.Name, ch.Atoms, c.atoms)
		}
		if ch.ChargedAtoms != c.charged {
			t.Errorf("%s: charged = %d, want %d", c.bench.Name, ch.ChargedAtoms, c.charged)
		}
		if ch.BondTerms != c.bonds {
			t.Errorf("%s: bond terms = %d, want %d", c.bench.Name, ch.BondTerms, c.bonds)
		}
		if ch.Dominant != c.dominant {
			t.Errorf("%s: dominant = %s, want %s", c.bench.Name, ch.Dominant, c.dominant)
		}
	}
}

func TestSaltChargeNeutral(t *testing.T) {
	s := Salt().Sys
	if s.TotalCharge() != 0 {
		t.Errorf("net charge %v", s.TotalCharge())
	}
	na, cl := 0, 0
	for i := range s.Charge {
		switch {
		case s.Charge[i] > 0:
			na++
		case s.Charge[i] < 0:
			cl++
		}
	}
	if na != 400 || cl != 400 {
		t.Errorf("ion counts %d Na / %d Cl", na, cl)
	}
}

func TestNanocarPlatformFixed(t *testing.T) {
	s := Nanocar().Sys
	fixed := 0
	for _, f := range s.Fixed {
		if f {
			fixed++
		}
	}
	if fixed != 484 {
		t.Errorf("fixed platform atoms = %d, want 484", fixed)
	}
	// "About half its atoms are bonded together to form the car with the
	// other half making up an immovable platform."
	mobile := s.N() - fixed
	if math.Abs(float64(mobile-fixed)) > 0.1*float64(s.N()) {
		t.Errorf("car/platform split %d/%d not roughly half", mobile, fixed)
	}
	if s.Excl == nil || s.Excl.Len() == 0 {
		t.Error("nanocar has no LJ exclusions")
	}
}

func TestAl1000Projectile(t *testing.T) {
	s := Al1000().Sys
	// Exactly one gold atom, moving fast; the block is at rest.
	fast := 0
	for i := range s.Vel {
		if s.Vel[i].Norm() > 0.01 {
			fast++
			if s.Elements[s.Elem[i]].Symbol != "Au" {
				t.Error("projectile is not gold")
			}
		}
	}
	if fast != 1 {
		t.Errorf("fast atoms = %d, want 1", fast)
	}
}

func TestBenchmarksValidateAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if err := b.Sys.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			sim, err := core.New(b.Sys, b.Cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer sim.Close()
			sim.Run(5)
			for i, p := range sim.Sys.Pos {
				if !p.IsFinite() {
					t.Fatalf("atom %d position non-finite after 5 steps", i)
				}
			}
		})
	}
}

func TestAl1000RebuildsFrequently(t *testing.T) {
	// §III: Al-1000 "has a large number of collisions and requires frequent
	// neighbor list updates." Verify it rebuilds more often than salt over
	// the same horizon.
	al := Al1000()
	salt := Salt()
	simA, err := core.New(al.Sys, al.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer simA.Close()
	simS, err := core.New(salt.Sys, salt.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer simS.Close()
	simA.Run(60)
	simS.Run(60)
	if simA.Rebuilds() <= simS.Rebuilds() {
		t.Errorf("Al-1000 rebuilds (%d) not above salt (%d)", simA.Rebuilds(), simS.Rebuilds())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"salt", "nanocar", "Al-1000", "al1000"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestScaledSalt(t *testing.T) {
	for _, n := range []int{64, 250, 1000} {
		b := ScaledSalt(n)
		if b.Sys.N() != n {
			t.Errorf("ScaledSalt(%d) has %d atoms", n, b.Sys.N())
		}
		if b.Sys.NumCharged() != n {
			t.Errorf("ScaledSalt(%d) has %d charged", n, b.Sys.NumCharged())
		}
		if err := b.Sys.Validate(); err != nil {
			t.Errorf("ScaledSalt(%d): %v", n, err)
		}
	}
}

func TestLJGas(t *testing.T) {
	b := LJGas(4, 120, true)
	if b.Sys.N() != 64 {
		t.Errorf("N = %d", b.Sys.N())
	}
	temp := b.Sys.Temperature()
	if temp < 60 || temp > 200 {
		t.Errorf("temperature %v far from 120", temp)
	}
	if err := b.Sys.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetSize(t *testing.T) {
	// §III: "Each of the benchmarks had a working set size of about 25 MB"
	// in Java. Our SoA layout is far more compact; just sanity-check that
	// the benchmarks are ~1000 atoms, the size class the paper targets.
	for _, b := range All() {
		if n := b.Sys.N(); n < 800 || n > 1000 {
			t.Errorf("%s has %d atoms, outside the paper's size class", b.Name, n)
		}
	}
}
