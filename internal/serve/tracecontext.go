package serve

import (
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
)

// TraceContext is the W3C trace-context identity of one request: the
// 16-byte trace id names the whole request tree across services, the 8-byte
// span id names this hop, and Sampled carries the 01 flag bit. The service
// accepts an inbound `traceparent` header (so an upstream caller can stitch
// mwserved spans into its own trace), generates a fresh context for a
// sampled share of unheaded requests, and answers every traced request with
// a `traceparent` response header so clients (mwload) learn the id they can
// look up in /v1/trace.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// traceparentLen is the exact length of a version-00 traceparent header:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

// Valid reports whether both ids are nonzero — the spec reserves all-zero
// ids as invalid.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-char trace id.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-char span id.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a version-00 traceparent header value.
func (tc TraceContext) Traceparent() string {
	buf := make([]byte, 0, traceparentLen)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, tc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, tc.SpanID[:])
	if tc.Sampled {
		buf = append(buf, "-01"...)
	} else {
		buf = append(buf, "-00"...)
	}
	return string(buf)
}

// hexDecodeStrict decodes lowercase hex only. encoding/hex accepts
// uppercase; the traceparent ABNF does not, and a parser on an untrusted
// HTTP surface should not be more lenient than the spec it implements.
func hexDecodeStrict(dst, src []byte) bool {
	for _, c := range src {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	_, err := hex.Decode(dst, src)
	return err == nil
}

// ParseTraceparent parses a version-00 traceparent header value. It is
// strict: exact length, exact dash positions, lowercase hex, version 00
// (version ff is forbidden, higher versions would be longer than 55 bytes
// anyway), nonzero trace and span ids. Anything else reports ok=false and
// the request proceeds untraced — a malformed header from an untrusted
// client must never be an error, just an ignored one (the fuzz target
// FuzzTraceparent holds the parser to "classify, never panic").
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	if len(h) != traceparentLen {
		return tc, false
	}
	if h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	if !hexDecodeStrict(tc.TraceID[:], []byte(h[3:35])) {
		return tc, false
	}
	if !hexDecodeStrict(tc.SpanID[:], []byte(h[36:52])) {
		return tc, false
	}
	var flags [1]byte
	if !hexDecodeStrict(flags[:], []byte(h[53:55])) {
		return tc, false
	}
	if !tc.Valid() {
		return tc, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// newTraceContext generates a fresh sampled context. Trace ids need
// uniqueness, not secrecy, so the ids come from math/rand/v2's lock-free
// runtime-seeded generator — crypto/rand would put a getrandom call on the
// traced request path, which the observer-overhead gate would notice.
func newTraceContext() TraceContext {
	var tc TraceContext
	binary.LittleEndian.PutUint64(tc.TraceID[:8], rand.Uint64())
	binary.LittleEndian.PutUint64(tc.TraceID[8:], rand.Uint64())
	binary.LittleEndian.PutUint64(tc.SpanID[:], rand.Uint64())
	tc.Sampled = true
	if !tc.Valid() { // astronomically unlikely, but the spec forbids zero ids
		tc.TraceID[0] |= 1
		tc.SpanID[0] |= 1
	}
	return tc
}

// childSpan returns tc re-identified as a child hop: same trace id, fresh
// span id. The service uses it as its own span identity when a request
// arrives with an upstream traceparent.
func (tc TraceContext) childSpan() TraceContext {
	binary.LittleEndian.PutUint64(tc.SpanID[:], rand.Uint64())
	if tc.SpanID == [8]byte{} {
		tc.SpanID[0] = 1
	}
	return tc
}

// sampleTrace decides one request's trace context. An inbound sampled
// traceparent always wins (the upstream chose); an inbound unsampled one is
// honored as a no. With no (valid) header, every TraceSample-th request is
// sampled — an atomic counter, not a RNG, so a short sweep at K=64 still
// deterministically yields exemplars.
func (s *Server) sampleTrace(r *http.Request) (TraceContext, bool) {
	if s.cfg.TraceSample <= 0 {
		return TraceContext{}, false
	}
	if h := r.Header.Get("traceparent"); h != "" {
		if tc, ok := ParseTraceparent(h); ok {
			if !tc.Sampled {
				return TraceContext{}, false
			}
			return tc.childSpan(), true
		}
	}
	if s.traceSeq.Add(1)%int64(s.cfg.TraceSample) != 0 {
		return TraceContext{}, false
	}
	return newTraceContext(), true
}
