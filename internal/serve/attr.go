package serve

import (
	"time"

	"mw/internal/telemetry"
)

// Latency attribution: every step request's end-to-end latency decomposes
// into queue_wait (admission → batcher pickup) + batch_wait (pickup → a
// pool worker holds the session lock) + compute (sim.Run) + serialize
// (result received → response bytes written), and each component gets its
// own exemplar histogram at service level and per tenant. straggler_share
// is recorded alongside but is deliberately *not* a component of the
// request's own latency: the reply is handed back before the batch barrier
// trips, so barrier lateness is cost this request imposed on the next
// batch pickup — exactly the per-barrier lateness ROADMAP item 2 wants
// measured at the service level.
const (
	attrQueueWait = iota
	attrBatchWait
	attrCompute
	attrStraggler
	attrSerialize
	attrComponents
)

// attrNames indexes the component constants; these strings are the public
// schema (telemetry.json attribution section, mwload columns, docs).
var attrNames = [attrComponents]string{
	"queue_wait", "batch_wait", "compute", "straggler_share", "serialize",
}

// attrSet is one scope's (service-wide or per-tenant) component histograms.
type attrSet struct {
	h [attrComponents]telemetry.ExemplarHistogram
}

// observe records one component value; traced observations also pin the
// bucket's exemplar to the request's trace id.
func (a *attrSet) observe(component int, d time.Duration, traceID string, atUS int64) {
	if traceID != "" {
		a.h[component].ObserveTraced(d, traceID, atUS)
		return
	}
	a.h[component].Observe(d)
}

// AttrComponent is one component's exported digest.
type AttrComponent struct {
	Component string               `json:"component"`
	Latency   latencySummary       `json:"latency"`
	Exemplars []telemetry.Exemplar `json:"exemplars,omitempty"`
}

// snapshot digests the set. keep filters exemplars to trace ids that still
// resolve in the request-trace ring — the exemplar-correctness contract:
// every trace id this export names has a span tree in /v1/trace.
func (a *attrSet) snapshot(keep func(traceID string) bool) []AttrComponent {
	out := make([]AttrComponent, 0, attrComponents)
	for c := 0; c < attrComponents; c++ {
		ac := AttrComponent{Component: attrNames[c], Latency: summarize(&a.h[c].Hist)}
		for _, ex := range a.h[c].Exemplars() {
			if keep == nil || keep(ex.TraceID) {
				ac.Exemplars = append(ac.Exemplars, ex)
			}
		}
		out = append(out, ac)
	}
	return out
}
