package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
)

// The fuzz targets share one small server per process. Its limits are
// deliberately tiny so fuzzing explores the rejection paths cheaply
// instead of running big simulations.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzID   string // one live session, so the happy path is reachable
)

func fuzzHandler(tb testing.TB) (http.Handler, string) {
	fuzzOnce.Do(func() {
		fuzzSrv = NewServer(Config{
			Workers:            1,
			MaxSessions:        128,
			MaxStepsPerRequest: 4,
			MaxFramesPerStream: 4,
			MaxStepsPerFrame:   4,
			MaxAtoms:           64,
			MaxBodyBytes:       1 << 16,
			GCInterval:         -1,
		})
		sess, hErr := fuzzSrv.createFromWorkload(url.Values{"workload": {"lj-gas"}, "n": {"3"}})
		if hErr != nil {
			panic(fmt.Sprintf("fuzz server bootstrap: %d %s", hErr.code, hErr.msg))
		}
		fuzzID = sess.ID
	})
	return fuzzSrv.Handler(), fuzzID
}

// serveRaw runs one request against the in-process handler and returns the
// status code and response body. Requests that cannot even be constructed
// don't count as findings.
func serveRaw(h http.Handler, method, target string, body []byte) (int, []byte, bool) {
	u, err := url.Parse(target)
	if err != nil {
		return 0, nil, false
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, "http://fuzz.local/", rd)
	req.URL = u
	req.URL.Scheme = "http"
	req.URL.Host = "fuzz.local"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), true
}

// FuzzTraceparent holds the traceparent parser to "classify, never panic":
// any input either parses — in which case it must be the canonical
// rendering of the parsed context (strict round-trip) — or is cleanly
// rejected. The parser sits on an untrusted HTTP header, so this is the
// fuzz surface the request-tracing tentpole adds.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	f.Add("")
	f.Add("traceparent")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	f.Fuzz(func(t *testing.T, h string) {
		tc, ok := ParseTraceparent(h)
		if !ok {
			if tc.Sampled {
				t.Fatalf("rejected header %q left Sampled set", h)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("parser accepted %q but ids are zero", h)
		}
		// flags other than the sampled bit are legal in version 00, so the
		// canonical re-rendering must match everywhere except the flag byte.
		rendered := tc.Traceparent()
		if rendered[:53] != h[:53] {
			t.Fatalf("round trip mangled %q -> %q", h, rendered)
		}
		if got, ok2 := ParseTraceparent(rendered); !ok2 || got != tc {
			t.Fatalf("canonical rendering %q does not re-parse to the same context", rendered)
		}
	})
}

// FuzzSessionPath throws arbitrary session ids at every {id} route. The
// contract: never panic, never 5xx, and only the one live id may answer
// 2xx.
func FuzzSessionPath(f *testing.F) {
	f.Add("0123456789abcdef", 0)
	f.Add("../../etc/passwd", 1)
	f.Add("0123456789ABCDEF", 2)
	f.Add("%2e%2e%2f", 3)
	f.Add("deadbeef", 4)
	f.Add("", 5)
	f.Add("0123456789abcdef0123456789abcdef", 0)
	h, liveID := fuzzHandler(f)
	routes := []struct {
		method, suffix string
	}{
		{http.MethodGet, ""},
		{http.MethodGet, "/snapshot"},
		{http.MethodGet, "/snapshot.xyz"},
		{http.MethodGet, "/telemetry.json"},
		{http.MethodGet, "/stream?frames=1"},
		{http.MethodPost, "/step"},
	}
	f.Fuzz(func(t *testing.T, id string, route int) {
		r := routes[((route%len(routes))+len(routes))%len(routes)]
		target := "/v1/sessions/" + url.PathEscape(id) + r.suffix
		code, _, ok := serveRaw(h, r.method, target, nil)
		if !ok {
			t.Skip()
		}
		if code >= 500 {
			t.Fatalf("%s %s -> %d", r.method, target, code)
		}
		if code >= 200 && code < 300 && id != liveID {
			t.Fatalf("%s %s -> %d for a non-live id %q", r.method, target, code, id)
		}
	})
}

// FuzzStepParams throws arbitrary query strings at the step and stream
// endpoints of a live session: any response below 500 is acceptable, a
// panic or 5xx is a finding.
func FuzzStepParams(f *testing.F) {
	f.Add("n=1", true)
	f.Add("n=abc", true)
	f.Add("n=-99999999999999999999", true)
	f.Add("n=2&n=3", true)
	f.Add("frames=2&every=2", false)
	f.Add("frames=1e9", false)
	f.Add("frames=%00", false)
	f.Add("a=b&c=d", true)
	h, liveID := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, rawQuery string, step bool) {
		var target string
		if step {
			target = "/v1/sessions/" + liveID + "/step?" + rawQuery
		} else {
			target = "/v1/sessions/" + liveID + "/stream?" + rawQuery
		}
		method := http.MethodGet
		if step {
			method = http.MethodPost
		}
		code, _, ok := serveRaw(h, method, target, nil)
		if !ok {
			t.Skip()
		}
		if code >= 500 && code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s -> %d", method, target, code)
		}
	})
}

// FuzzCreateModel uploads arbitrary bytes as MML models. The server must
// answer 201 (and then close the session) or reject with a 4xx — never
// panic, never 5xx, never leak sessions.
func FuzzCreateModel(f *testing.F) {
	model := func(atoms string) string {
		return `{"version":1,"name":"f","box":{"l":[20,20,20],"periodic":true},` +
			atoms + `"engine":{"dt":1,"lj_cutoff":6,"skin":0.5}}`
	}
	f.Add([]byte(model(`"atoms":[{"el":"Ar","p":[8,10,10]},{"el":"Ar","p":[12,10,10]}],`)))
	f.Add([]byte(model(`"atoms":[{"el":"Na","p":[1,1,1],"q":1},{"el":"Cl","p":[3,1,1],"q":-1}],`)))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"name":"x","box":{"l":[1e300,1,1],"periodic":true},"atoms":[{"el":"Ar","p":[0,0,0]}],"engine":{"dt":1,"lj_cutoff":6,"skin":0.5}}`))
	f.Add([]byte{})
	h, _ := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		code, respBody, ok := serveRaw(h, http.MethodPost, "/v1/sessions", body)
		if !ok {
			t.Skip()
		}
		switch {
		case code == http.StatusCreated:
			// Clean up so the fuzz server doesn't fill with sessions.
			var created struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(respBody, &created); err != nil {
				t.Fatalf("201 with undecodable body %q: %v", respBody, err)
			}
			if delCode, _, _ := serveRaw(h, http.MethodDelete, "/v1/sessions/"+created.ID, nil); delCode != http.StatusNoContent {
				t.Fatalf("cleanup DELETE of %s -> %d", created.ID, delCode)
			}
		case code >= 500:
			t.Fatalf("POST /v1/sessions -> %d for %q", code, body)
		case len(body) == 0 && code != http.StatusBadRequest:
			t.Fatalf("empty create -> %d, want 400 (no workload, no body)", code)
		}
	})
}
