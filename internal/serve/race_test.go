package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"mw/internal/core"
)

// TestConcurrentLifecycleAllTopologies hammers one server per queue
// topology with concurrent create/step/snapshot/close/evict from many
// goroutines. It asserts no races (run under -race via RACE_PKGS), no
// panics, and that every response is an expected status — creates and
// steps may legitimately shed (429) or lose a close race (404/409), but
// nothing may 500.
func TestConcurrentLifecycleAllTopologies(t *testing.T) {
	topologies := []core.QueueTopology{
		core.SharedQueue, core.PerWorkerQueues, core.WorkStealingQueues,
	}
	for _, topo := range topologies {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			s, ts := newTestServer(t, Config{
				Workers:     2,
				Queues:      topo,
				MaxSessions: 64,
				QueueDepth:  32,
				IdleTimeout: 1, // everything is instantly stale for EvictIdle
			})
			client := ts.Client()

			const goroutines = 6
			const opsPerG = 8
			allowed := map[int]bool{
				http.StatusOK: true, http.StatusCreated: true, http.StatusNoContent: true,
				http.StatusNotFound: true, http.StatusConflict: true,
				http.StatusTooManyRequests: true,
			}
			var wg sync.WaitGroup
			errs := make(chan error, goroutines*opsPerG*4)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for op := 0; op < opsPerG; op++ {
						code, body := doReq(t, client, http.MethodPost,
							ts.URL+"/v1/sessions?workload=lj-gas&n=3", nil)
						if code == http.StatusTooManyRequests {
							continue
						}
						if code != http.StatusCreated {
							errs <- fmt.Errorf("g%d create: %d %s", g, code, body)
							continue
						}
						var created struct {
							ID string `json:"id"`
						}
						if err := json.Unmarshal(body, &created); err != nil {
							errs <- fmt.Errorf("g%d create body: %v", g, err)
							continue
						}
						base := ts.URL + "/v1/sessions/" + created.ID
						for _, req := range [][2]string{
							{http.MethodPost, base + "/step"},
							{http.MethodGet, base + "/snapshot"},
							{http.MethodPost, base + "/step?n=2"},
						} {
							if code, body := doReq(t, client, req[0], req[1], nil); !allowed[code] {
								errs <- fmt.Errorf("g%d %s %s: %d %s", g, req[0], req[1], code, body)
							}
						}
						// Half the sessions close explicitly; the rest are
						// left for the concurrent evictor.
						if op%2 == 0 {
							if code, body := doReq(t, client, http.MethodDelete, base, nil); !allowed[code] {
								errs <- fmt.Errorf("g%d delete: %d %s", g, code, body)
							}
						}
						if g == 0 {
							s.EvictIdle()
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			// Everything still alive is evictable; the server must end clean.
			s.EvictIdle()
			st := s.StatsNow()
			if int64(st.ActiveSessions) != st.CreatedTotal-st.ClosedTotal {
				t.Errorf("session accounting off: active=%d created=%d closed=%d",
					st.ActiveSessions, st.CreatedTotal, st.ClosedTotal)
			}
		})
	}
}
