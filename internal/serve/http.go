package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"mw/internal/core"
	"mw/internal/mml"
	"mw/internal/telemetry"
	"mw/internal/workload"
	"mw/internal/xyz"
)

// httpError is a handler failure: an HTTP status plus a one-line message.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) write(w http.ResponseWriter) {
	if e.code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfter)
	}
	http.Error(w, e.msg, e.code)
}

// intParam parses query parameter name as an integer: absent means def,
// values outside [lo, hi] are clamped, and anything that is not an integer
// is a 400 — the strconv+clamp+400-on-garbage contract every numeric
// parameter on this surface follows (the telemetry events-param fix of
// PR 5, applied here from the start instead of retrofitted).
func intParam(q url.Values, name string, def, lo, hi int) (int, *httpError) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, &httpError{http.StatusBadRequest,
			fmt.Sprintf("%s=%q: not an integer", name, s)}
	}
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n, nil
}

// floatParam is intParam for float64 parameters; NaN and infinities are
// garbage, out-of-range values are clamped.
func floatParam(q url.Values, name string, def, lo, hi float64) (float64, *httpError) {
	s := q.Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, &httpError{http.StatusBadRequest,
			fmt.Sprintf("%s=%q: not a finite number", name, s)}
	}
	return math.Min(math.Max(v, lo), hi), nil
}

// sessionIDLen is the length of server-issued session IDs (8 random bytes,
// hex-encoded).
const sessionIDLen = 16

// validSessionID reports whether id has the shape this server issues —
// anything else is a 400 (malformed), distinct from 404 (well-formed but
// unknown). Session IDs arrive in URL paths from untrusted clients, so the
// check is a strict character whitelist, not just a length test.
func validSessionID(id string) bool {
	if len(id) != sessionIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// session resolves the {id} path value to a live session: 400 for a
// malformed id, 404 for a well-formed unknown one (including every id
// whose session was closed or evicted — double-close is a clean 404).
func (s *Server) session(r *http.Request) (*Session, *httpError) {
	id := r.PathValue("id")
	if !validSessionID(id) {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("malformed session id %q", id)}
	}
	sess := s.lookup(id)
	if sess == nil {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("no session %s", id)}
	}
	return sess, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the service's full HTTP surface:
//
//	POST   /v1/sessions                  create (named workload or MML upload)
//	GET    /v1/sessions                  list live sessions
//	GET    /v1/sessions/{id}             session info
//	POST   /v1/sessions/{id}/step        advance n steps through the batch queue
//	GET    /v1/sessions/{id}/snapshot    full dynamical state as JSON
//	GET    /v1/sessions/{id}/snapshot.xyz  one XYZ frame
//	GET    /v1/sessions/{id}/stream      chunked XYZ trajectory (frames × every)
//	GET    /v1/sessions/{id}/telemetry.json  per-tenant engine-phase recorder
//	                                     + latency attribution w/ exemplars
//	DELETE /v1/sessions/{id}             close (double-close: 404)
//	GET    /v1/stats                     service counters + latency percentiles
//	GET    /v1/slo                       per-tenant SLO state + burn rates
//	GET    /v1/trace                     retained request span trees
//	                                     (Chrome/Perfetto trace JSON)
//	GET    /healthz                      liveness
//	GET    /telemetry.json, /metrics, /debug/pprof/   the existing telemetry
//	                                     surface over the service recorder,
//	                                     with serve_* + slo_* series
//	                                     prepended to /metrics and the
//	                                     attribution section (exemplars
//	                                     resolving in /v1/trace) appended
//	                                     to /telemetry.json
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	tele := telemetry.Handler(s.rec)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleInfo)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot.xyz", s.handleSnapshotXYZ)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/sessions/{id}/telemetry.json", s.handleSessionTelemetry)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /telemetry.json", s.handleTelemetry)
	mux.Handle("GET /debug/pprof/", tele)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.writeServeMetrics(w)
		// The service recorder's mw_* series follow on the same page.
		tele.ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "mwserved — %d sessions, %d workers (%s), up %.1fs\n\n"+
			"  /v1/sessions      session lifecycle (POST create, DELETE close)\n"+
			"  /v1/stats         service counters + step-latency percentiles\n"+
			"  /telemetry.json   service recorder snapshot\n"+
			"  /metrics          Prometheus text (serve_* + mw_*)\n"+
			"  /debug/pprof/     profiles\n",
			s.SessionCount(), s.cfg.Workers, s.cfg.Queues, s.Uptime().Seconds())
	})
	return mux
}

// createdInfo is the create response body.
type createdInfo struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Atoms    int    `json:"atoms"`
}

// handleCreate admits a new session. With a request body, the body is an
// MML model upload; otherwise the workload query parameter names a builtin
// benchmark (salt, nanocar, Al-1000, lj-gas — lj-gas takes n and temp).
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		(&httpError{http.StatusBadRequest, "reading body: " + err.Error()}).write(w)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		(&httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("model larger than %d bytes", s.cfg.MaxBodyBytes)}).write(w)
		return
	}
	var (
		name string
		sess *Session
		hErr *httpError
	)
	if len(body) > 0 {
		sess, hErr = s.createFromModel(body)
	} else {
		sess, hErr = s.createFromWorkload(r.URL.Query())
	}
	if hErr != nil {
		hErr.write(w)
		return
	}
	name = sess.Workload
	writeJSON(w, http.StatusCreated, createdInfo{ID: sess.ID, Workload: name, Atoms: sess.Atoms})
}

func (s *Server) createFromWorkload(q url.Values) (*Session, *httpError) {
	name := q.Get("workload")
	switch name {
	case "":
		return nil, &httpError{http.StatusBadRequest, "missing workload parameter (or model body)"}
	case "lj-gas":
		// Lower bound 3: an n=2 lattice's periodic box (8.6 Å) is smaller
		// than the configured interaction range and the engine rejects it.
		n, hErr := intParam(q, "n", 5, 3, 12)
		if hErr != nil {
			return nil, hErr
		}
		temp, hErr := floatParam(q, "temp", 120, 1, 10000)
		if hErr != nil {
			return nil, hErr
		}
		b := workload.LJGas(n, temp, true)
		return s.createSession(b.Name, b.Sys, b.Cfg)
	default:
		b := workload.ByName(name)
		if b == nil {
			return nil, &httpError{http.StatusBadRequest,
				fmt.Sprintf("unknown workload %q (salt, nanocar, Al-1000, lj-gas)", name)}
		}
		return s.createSession(b.Name, b.Sys, b.Cfg)
	}
}

// createFromModel materializes an uploaded MML document. Uploads are
// untrusted: beyond mml's own validation, the server bounds the atom count
// and the cell-grid extent (a model is one Validate call away from asking
// the engine to allocate a box/cutoff ratio's cube worth of cells).
func (s *Server) createFromModel(body []byte) (*Session, *httpError) {
	m, err := mml.Load(bytes.NewReader(body))
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	sys, cfg, err := m.System()
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	if sys.N() == 0 {
		return nil, &httpError{http.StatusBadRequest, "model has no atoms"}
	}
	if sys.N() > s.cfg.MaxAtoms {
		return nil, &httpError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("model has %d atoms, limit %d", sys.N(), s.cfg.MaxAtoms)}
	}
	if hErr := checkModelGeometry(sys.Box.L.X, sys.Box.L.Y, sys.Box.L.Z, cfg); hErr != nil {
		return nil, hErr
	}
	name := m.Name
	if name == "" {
		name = "model"
	}
	return s.createSession(name, sys, cfg)
}

// checkModelGeometry bounds the uploaded geometry before the engine builds
// a cell grid over it: each dimension must be a sane finite length and the
// implied cell count must not explode.
func checkModelGeometry(lx, ly, lz float64, cfg core.Config) *httpError {
	const maxDim = 1e6 // Å
	rng := cfg.LJCutoff + cfg.Skin
	if rng <= 0 {
		rng = 8.8 // the engine defaults the cutoff+skin to this
	}
	cells := 1.0
	for _, l := range [3]float64{lx, ly, lz} {
		if math.IsNaN(l) || math.IsInf(l, 0) || l <= 0 || l > maxDim {
			return &httpError{http.StatusBadRequest,
				fmt.Sprintf("box dimension %g outside (0, %g]", l, maxDim)}
		}
		cells *= math.Max(1, l/rng)
	}
	if cells > 1<<22 {
		return &httpError{http.StatusBadRequest,
			fmt.Sprintf("box/cutoff geometry implies %.0f cells, limit %d", cells, 1<<22)}
	}
	return nil
}

// sessionInfo is the list/info response row.
type sessionInfo struct {
	ID          string  `json:"id"`
	Workload    string  `json:"workload"`
	Atoms       int     `json:"atoms"`
	Step        int64   `json:"step"`
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
}

func (sess *Session) info() sessionInfo {
	return sessionInfo{
		ID:          sess.ID,
		Workload:    sess.Workload,
		Atoms:       sess.Atoms,
		Step:        sess.steps.Load(),
		AgeSeconds:  time.Since(sess.created).Seconds(),
		IdleSeconds: sess.IdleFor().Seconds(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit, hErr := intParam(r.URL.Query(), "limit", 100, 1, 10000)
	if hErr != nil {
		hErr.write(w)
		return
	}
	s.mu.RLock()
	out := make([]sessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if len(out) >= limit {
			break
		}
		out = append(out, sess.info())
	}
	total := len(s.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"total": total, "sessions": out})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	n, hErr := intParam(r.URL.Query(), "n", 1, 1, s.cfg.MaxStepsPerRequest)
	if hErr != nil {
		hErr.write(w)
		return
	}
	startUS := s.rec.NowMicros()
	tc, sampled := s.sampleTrace(r)
	rq := &stepReq{sess: sess, n: n, t0: time.Now(), done: make(chan stepResult, 1)}
	var rt *RequestTrace
	if sampled {
		rt = &RequestTrace{
			TraceID:  tc.TraceIDString(),
			SpanID:   tc.SpanIDString(),
			Session:  sess.ID,
			Workload: sess.Workload,
			Steps:    n,
			StartUS:  startUS,
			log:      s.reqTraces,
		}
		rt.pending.Store(2) // handler + batch side both fill the record
		rq.rt = rt
		// Echo the context so the client learns the id /v1/trace resolves.
		w.Header().Set("traceparent", tc.Traceparent())
	}
	// Stamp before the queue send: the far side reads these stamps after
	// synchronizing handoffs, so they must be written before admission.
	rq.enqueueUS = s.rec.NowMicros()
	if rt != nil {
		rt.EnqueueUS = rq.enqueueUS
	}
	if hErr := s.enqueue(rq, false); hErr != nil {
		if hErr.code == http.StatusTooManyRequests {
			// A shed request burns the tenant's error budget like a missed
			// latency target — load you turned away is latency the client ate.
			sess.slo.record(0, true)
			s.slo.record(0, true)
		}
		if rt != nil {
			rt.Status = hErr.code
			rt.DoneUS = s.rec.NowMicros()
			rt.pending.Store(1) // no batch side will ever run
			rt.finishWriter()
		}
		hErr.write(w)
		return
	}
	select {
	case res := <-rq.done:
		if res.err != nil {
			if rt != nil {
				rt.Status = res.err.code
				rt.DoneUS = s.rec.NowMicros()
				rt.finishWriter()
			}
			res.err.write(w)
			return
		}
		replyUS := s.rec.NowMicros()
		writeJSON(w, http.StatusOK, res)
		doneUS := s.rec.NowMicros()
		ser := time.Duration(clampUS(doneUS-replyUS)) * time.Microsecond
		s.svcAttr.observe(attrSerialize, ser, res.TraceID, doneUS)
		sess.attr.observe(attrSerialize, ser, res.TraceID, doneUS)
		if rt != nil {
			rt.Status = http.StatusOK
			rt.ReplyUS = replyUS
			rt.DoneUS = doneUS
			rt.SerializeUS = clampUS(doneUS - replyUS)
			rt.finishWriter()
		}
	case <-r.Context().Done():
		// Client gone; the batch still runs (done is buffered).
		if rt != nil {
			rt.Status = 499 // client closed request
			rt.DoneUS = s.rec.NowMicros()
			rt.finishWriter()
		}
	}
}

// snapshotBody is the full dynamical state of a session, arrays in
// construction order. Float64 values survive the JSON round trip bit-for-
// bit (encoding/json emits shortest-round-trip representations), which is
// what lets the differential serve row demand bitwise equality through
// this endpoint.
type snapshotBody struct {
	ID    string       `json:"id"`
	Step  int          `json:"step"`
	PE    float64      `json:"pe"`
	Pos   [][3]float64 `json:"pos"`
	Vel   [][3]float64 `json:"vel"`
	Force [][3]float64 `json:"force"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	t0 := time.Now()
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		(&httpError{http.StatusConflict, "session closed"}).write(w)
		return
	}
	snap := sess.sim.Snapshot()
	sess.touch()
	sess.mu.Unlock()

	body := snapshotBody{
		ID:    sess.ID,
		Step:  snap.Step,
		PE:    snap.PE,
		Pos:   make([][3]float64, len(snap.Pos)),
		Vel:   make([][3]float64, len(snap.Vel)),
		Force: make([][3]float64, len(snap.Force)),
	}
	for i := range snap.Pos {
		body.Pos[i] = [3]float64{snap.Pos[i].X, snap.Pos[i].Y, snap.Pos[i].Z}
		body.Vel[i] = [3]float64{snap.Vel[i].X, snap.Vel[i].Y, snap.Vel[i].Z}
		body.Force[i] = [3]float64{snap.Force[i].X, snap.Force[i].Y, snap.Force[i].Z}
	}
	seq := snap.Step
	s.rec.PhaseBegin(seq, svcSnapshot)
	s.rec.PhaseEnd(seq, svcSnapshot, time.Since(t0), nil)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSnapshotXYZ(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if hErr := s.writeFrame(sess, xyz.NewWriter(w)); hErr != nil {
		hErr.write(w)
	}
}

// writeFrame emits one XYZ frame of the session's current state (atoms in
// original construction order, like every trajectory writer in the repo).
func (s *Server) writeFrame(sess *Session, xw *xyz.Writer) *httpError {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return &httpError{http.StatusConflict, "session closed"}
	}
	sys := sess.sim.SystemInOriginalOrder()
	comment := fmt.Sprintf("session=%s step=%d pe=%.8f", sess.ID, sess.sim.StepCount(), sess.sim.PE())
	sess.touch()
	if err := xw.WriteFrame(sys, comment); err != nil {
		return &httpError{http.StatusInternalServerError, err.Error()}
	}
	return nil
}

// handleStream streams a trajectory as chunked XYZ: frames snapshots, each
// preceded by every engine steps. Stepping goes through the same batch
// queue as everything else — a stream is just a client that issues its
// step requests in order — but enqueues blockingly: a long-lived stream
// waits for queue slots rather than erroring mid-body.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	q := r.URL.Query()
	frames, hErr := intParam(q, "frames", 10, 1, s.cfg.MaxFramesPerStream)
	if hErr != nil {
		hErr.write(w)
		return
	}
	every, hErr := intParam(q, "every", 1, 1, s.cfg.MaxStepsPerFrame)
	if hErr != nil {
		hErr.write(w)
		return
	}
	t0 := time.Now()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	xw := xyz.NewWriter(w)
	// Frame 0 is the current state; each subsequent frame advances first.
	if hErr := s.writeFrame(sess, xw); hErr != nil {
		hErr.write(w)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for f := 1; f < frames; f++ {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		rq := &stepReq{sess: sess, n: every, t0: time.Now(), done: make(chan stepResult, 1)}
		if hErr := s.enqueue(rq, true); hErr != nil {
			return // headers are gone; just stop the stream
		}
		select {
		case res := <-rq.done:
			if res.err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
		if hErr := s.writeFrame(sess, xw); hErr != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.rec.PhaseBegin(frames, svcStream)
	s.rec.PhaseEnd(frames, svcStream, time.Since(t0), nil)
}

// telemetryBody is a recorder snapshot with the latency-attribution section
// appended — the serve-flavored /telemetry.json schema. Every exemplar
// trace id in the attribution section resolves to a span tree in /v1/trace:
// exemplars are filtered against the live request-trace ring at export
// time, so the invariant holds by construction (and a regression test
// holds it to that).
type telemetryBody struct {
	telemetry.Snapshot
	Attribution []AttrComponent `json:"attribution"`
}

// handleTelemetry is the service-level /telemetry.json: the service
// recorder snapshot plus the service-wide attribution histograms.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	events, hErr := intParam(r.URL.Query(), "events", 0, 0, s.rec.EventCapacity())
	if hErr != nil {
		hErr.write(w)
		return
	}
	ids := s.reqTraces.ids()
	writeJSON(w, http.StatusOK, telemetryBody{
		Snapshot:    s.rec.Snapshot(events),
		Attribution: s.svcAttr.snapshot(func(id string) bool { return ids[id] }),
	})
}

// handleSessionTelemetry exposes the tenant's own ring recorder — engine
// phase histograms and decomposed latency attribution for just this
// session, same schema as /telemetry.json.
func (s *Server) handleSessionTelemetry(w http.ResponseWriter, r *http.Request) {
	sess, hErr := s.session(r)
	if hErr != nil {
		hErr.write(w)
		return
	}
	events, hErr := intParam(r.URL.Query(), "events", 0, 0, sess.rec.EventCapacity())
	if hErr != nil {
		hErr.write(w)
		return
	}
	ids := s.reqTraces.ids()
	writeJSON(w, http.StatusOK, telemetryBody{
		Snapshot:    sess.rec.Snapshot(events),
		Attribution: sess.attr.snapshot(func(id string) bool { return ids[id] }),
	})
}

// handleSLO is /v1/slo: the service SLO state plus the worst-burning
// tenants (limit rows, default 100).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	limit, hErr := intParam(r.URL.Query(), "limit", 100, 1, 100000)
	if hErr != nil {
		hErr.write(w)
		return
	}
	writeJSON(w, http.StatusOK, s.SLONow(limit))
}

// handleTrace is /v1/trace: the retained request span trees as Chrome
// trace-event JSON, loadable in ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.WriteRequestTrace(w)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validSessionID(id) {
		(&httpError{http.StatusBadRequest, fmt.Sprintf("malformed session id %q", id)}).write(w)
		return
	}
	if !s.closeSession(id) {
		(&httpError{http.StatusNotFound, fmt.Sprintf("no session %s", id)}).write(w)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// latencySummary is a histogram's percentile digest.
type latencySummary struct {
	Count    int64   `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	P999Us   float64 `json:"p999_us"`
	TotalSec float64 `json:"total_seconds"`
}

func summarize(h *telemetry.Histogram) latencySummary {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return latencySummary{
		Count:    h.Count(),
		MeanUs:   us(h.Mean()),
		P50Us:    us(h.Quantile(0.50)),
		P99Us:    us(h.Quantile(0.99)),
		P999Us:   us(h.Quantile(0.999)),
		TotalSec: h.Sum().Seconds(),
	}
}

// Stats is the /v1/stats body: admission, batching and latency counters
// for the whole service.
type Stats struct {
	UptimeSeconds   float64        `json:"uptime_seconds"`
	Workers         int            `json:"workers"`
	Queues          string         `json:"queues"`
	ActiveSessions  int            `json:"active_sessions"`
	CreatedTotal    int64          `json:"created_total"`
	ClosedTotal     int64          `json:"closed_total"`
	EvictedTotal    int64          `json:"evicted_total"`
	StepRequests    int64          `json:"step_requests_total"`
	Shed429         int64          `json:"shed_429_total"`
	StepsTotal      int64          `json:"steps_total"`
	Batches         int64          `json:"batches_total"`
	BatchedRequests int64          `json:"batched_requests_total"`
	MeanBatch       float64        `json:"mean_batch_size"`
	QueueLen        int            `json:"queue_len"`
	QueueCap        int            `json:"queue_cap"`
	StepLatency     latencySummary `json:"step_latency"`
}

// StatsNow assembles the current service counters.
func (s *Server) StatsNow() Stats {
	st := Stats{
		UptimeSeconds:   s.Uptime().Seconds(),
		Workers:         s.cfg.Workers,
		Queues:          s.cfg.Queues.String(),
		ActiveSessions:  s.SessionCount(),
		CreatedTotal:    s.created.Load(),
		ClosedTotal:     s.closedCount.Load(),
		EvictedTotal:    s.evicted.Load(),
		StepRequests:    s.stepReqs.Load(),
		Shed429:         s.shed.Load(),
		StepsTotal:      s.stepsTotal.Load(),
		Batches:         s.batches.Load(),
		BatchedRequests: s.batchedReqs.Load(),
		QueueLen:        len(s.stepQ),
		QueueCap:        cap(s.stepQ),
		StepLatency:     summarize(&s.stepLat),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedRequests) / float64(st.Batches)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsNow())
}

// writeServeMetrics renders the service counters as Prometheus text; the
// telemetry handler appends the mw_* recorder series after it.
func (s *Server) writeServeMetrics(w io.Writer) {
	st := s.StatsNow()
	fmt.Fprintf(w, "# TYPE serve_sessions_active gauge\nserve_sessions_active %d\n", st.ActiveSessions)
	fmt.Fprintf(w, "# TYPE serve_sessions_created_total counter\nserve_sessions_created_total %d\n", st.CreatedTotal)
	fmt.Fprintf(w, "# TYPE serve_sessions_closed_total counter\nserve_sessions_closed_total %d\n", st.ClosedTotal)
	fmt.Fprintf(w, "# TYPE serve_sessions_evicted_total counter\nserve_sessions_evicted_total %d\n", st.EvictedTotal)
	fmt.Fprintf(w, "# TYPE serve_step_requests_total counter\nserve_step_requests_total %d\n", st.StepRequests)
	fmt.Fprintf(w, "# TYPE serve_shed_429_total counter\nserve_shed_429_total %d\n", st.Shed429)
	fmt.Fprintf(w, "# TYPE serve_steps_total counter\nserve_steps_total %d\n", st.StepsTotal)
	fmt.Fprintf(w, "# TYPE serve_batches_total counter\nserve_batches_total %d\n", st.Batches)
	fmt.Fprintf(w, "# TYPE serve_queue_len gauge\nserve_queue_len %d\n", st.QueueLen)
	// Cumulative histogram over the step-latency log₂ buckets, same bucket
	// convention as mw_phase_wall_duration_seconds.
	fmt.Fprintf(w, "# TYPE serve_step_latency_seconds histogram\n")
	var cum uint64
	buckets := s.stepLat.Buckets()
	for b, c := range buckets {
		cum += c
		if c == 0 && b != len(buckets)-1 {
			continue
		}
		le := math.Exp2(float64(b)) / 1e9
		fmt.Fprintf(w, "serve_step_latency_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", le), cum)
	}
	fmt.Fprintf(w, "serve_step_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "serve_step_latency_seconds_sum %g\n", s.stepLat.Sum().Seconds())
	fmt.Fprintf(w, "serve_step_latency_seconds_count %d\n", s.stepLat.Count())

	// SLO series: service-level target, totals and multi-window burn rates
	// (per-tenant burn lives in /v1/slo — a per-session Prometheus label
	// would be a cardinality bomb at MaxSessions=4096).
	slo := s.slo.status()
	fmt.Fprintf(w, "# TYPE slo_target_seconds gauge\nslo_target_seconds %g\n",
		s.cfg.SLOTargetP99.Seconds())
	fmt.Fprintf(w, "# TYPE slo_requests_total counter\nslo_requests_total %d\n", slo.Requests)
	fmt.Fprintf(w, "# TYPE slo_bad_total counter\nslo_bad_total %d\n", slo.Bad)
	fmt.Fprintf(w, "# TYPE slo_burn_rate gauge\n")
	fmt.Fprintf(w, "slo_burn_rate{window=\"fast\"} %g\n", slo.FastBurn)
	fmt.Fprintf(w, "slo_burn_rate{window=\"slow\"} %g\n", slo.SlowBurn)

	// Attribution component latency sums/counts (exemplars are JSON-only).
	fmt.Fprintf(w, "# TYPE serve_attr_latency_seconds summary\n")
	for c := 0; c < attrComponents; c++ {
		h := &s.svcAttr.h[c].Hist
		fmt.Fprintf(w, "serve_attr_latency_seconds_sum{component=%q} %g\n",
			attrNames[c], h.Sum().Seconds())
		fmt.Fprintf(w, "serve_attr_latency_seconds_count{component=%q} %d\n",
			attrNames[c], h.Count())
	}
}
