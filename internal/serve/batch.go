package serve

import (
	"net/http"
	"time"

	"mw/internal/pool"
)

// stepReq is one tenant's request to advance its simulation n steps. done
// is buffered so the batch can complete a request whose client has already
// disconnected without blocking a pool worker.
type stepReq struct {
	sess *Session
	n    int
	t0   time.Time
	done chan stepResult
}

// stepResult is what a completed (or failed) step request reports back.
type stepResult struct {
	Step       int     `json:"step"`
	PE         float64 `json:"pe"`
	WallMicros float64 `json:"wall_us"`
	Batch      int     `json:"batch"`
	BatchSize  int     `json:"batch_size"`
	err        *httpError
}

// retryAfter is the Retry-After hint on shed requests: roughly one batch's
// worth of queue drain, deliberately coarse (the header has 1 s resolution).
const retryAfter = "1"

// enqueue admits a step request to the bounded queue. In non-blocking mode
// a full queue sheds the request with 429 + Retry-After — the admission
// control that keeps an oversubscribed server answering instead of
// accumulating unbounded latency. Blocking mode is for streams, which are
// long-lived and prefer waiting for a slot over mid-stream errors; the
// bounded queue still applies backpressure through them.
func (s *Server) enqueue(rq *stepReq, block bool) *httpError {
	if s.closed.Load() {
		return &httpError{http.StatusServiceUnavailable, "server shutting down"}
	}
	s.stepReqs.Add(1)
	if block {
		select {
		case s.stepQ <- rq:
			return nil
		case <-s.quit:
			return &httpError{http.StatusServiceUnavailable, "server shutting down"}
		}
	}
	select {
	case s.stepQ <- rq:
		return nil
	default:
		s.shed.Add(1)
		return &httpError{http.StatusTooManyRequests, "step queue full"}
	}
}

// batcher is the single consumer of the step queue: it coalesces pending
// requests from many tenants into one batch and fans the batch out over the
// shared pool behind a latch barrier — pool.RunPhase's fan-out/latch/await
// shape with sessions as the work chunks. While a batch executes, new
// requests pile up in the queue, so batches grow with load and shrink when
// load drops; BatchWindow adds an explicit coalescing wait for workloads
// that prefer throughput over first-request latency.
func (s *Server) batcher() {
	defer s.wg.Done()
	for {
		select {
		case rq := <-s.stepQ:
			s.runBatch(s.collect(rq))
		case <-s.quit:
			// Fail whatever is still queued so no handler waits forever.
			for {
				select {
				case rq := <-s.stepQ:
					rq.done <- stepResult{err: &httpError{
						http.StatusServiceUnavailable, "server shutting down"}}
				default:
					return
				}
			}
		}
	}
}

// collect assembles a batch: the triggering request, whatever else is
// already queued, and — when a batch window is configured — whatever more
// arrives within it.
func (s *Server) collect(first *stepReq) []*stepReq {
	batch := make([]*stepReq, 1, 16)
	batch[0] = first
drain:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case rq := <-s.stepQ:
			batch = append(batch, rq)
		default:
			break drain
		}
	}
	if s.cfg.BatchWindow > 0 && len(batch) < s.cfg.MaxBatch {
		timer := time.NewTimer(s.cfg.BatchWindow)
		defer timer.Stop()
	window:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case rq := <-s.stepQ:
				batch = append(batch, rq)
			case <-timer.C:
				break window
			case <-s.quit:
				break window
			}
		}
	}
	return batch
}

// runBatch fans the batch out over the pool and blocks until the latch
// barrier trips. Each task is one tenant's whole serial step run, so the
// pool's queue topology is exercised exactly as in the paper's §II-B — just
// with sessions instead of atom chunks.
func (s *Server) runBatch(batch []*stepReq) {
	seq := int(s.batchSeq.Add(1))
	size := len(batch)
	t0 := time.Now()
	s.rec.PhaseBegin(seq, svcStep)
	latch := pool.NewLatch(size)
	for i, rq := range batch {
		rq := rq
		task := func() {
			res := s.execStep(rq)
			res.Batch = seq
			res.BatchSize = size
			rq.done <- res
			latch.CountDown()
		}
		switch {
		case s.fixed != nil:
			s.fixed.Execute(task)
		case s.pinned != nil:
			s.pinned.Execute(task)
		case s.stealing != nil:
			s.stealing.SubmitFor(i%s.cfg.Workers, func(worker int) { task() })
		}
	}
	latch.Await()
	s.rec.PhaseEnd(seq, svcStep, time.Since(t0), nil)
	s.batches.Add(1)
	s.batchedReqs.Add(int64(size))
}

// execStep advances one session under its lock. A session evicted or closed
// between enqueue and execution reports 409 — the request was admitted, the
// tenant vanished.
func (s *Server) execStep(rq *stepReq) stepResult {
	sess := rq.sess
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return stepResult{err: &httpError{http.StatusConflict, "session closed"}}
	}
	sess.sim.Run(rq.n)
	sess.steps.Add(int64(rq.n))
	s.stepsTotal.Add(int64(rq.n))
	sess.touch()
	lat := time.Since(rq.t0)
	sess.stepHist.Observe(lat)
	s.stepLat.Observe(lat)
	return stepResult{
		Step:       sess.sim.StepCount(),
		PE:         sess.sim.PE(),
		WallMicros: float64(lat) / float64(time.Microsecond),
	}
}
