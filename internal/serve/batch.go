package serve

import (
	"net/http"
	"time"

	"mw/internal/pool"
)

// stepReq is one tenant's request to advance its simulation n steps. done
// is buffered so the batch can complete a request whose client has already
// disconnected without blocking a pool worker.
//
// The *US stamps (service-recorder µs) are the attribution trail every
// request leaves, traced or not: enqueue is written by the handler,
// dequeue by the batcher, execBegin/execEnd by the pool worker. Each stamp
// is read only on the far side of a synchronizing handoff (queue send,
// done send, latch await), so none of them need atomics.
type stepReq struct {
	sess *Session
	n    int
	t0   time.Time
	done chan stepResult

	enqueueUS   int64
	dequeueUS   int64
	execBeginUS int64
	execEndUS   int64

	// rt is non-nil for sampled requests: the trace record both sides of
	// the request fill in and then publish (see RequestTrace.finishWriter).
	rt *RequestTrace
}

// stepResult is what a completed (or failed) step request reports back.
// The attribution fields decompose WallMicros: wall ≈ queue_wait +
// batch_wait + compute plus the serialize/network time the client alone
// can see — which is how mwload -attr reconciles the split against its
// own end-to-end measurement.
type stepResult struct {
	Step        int     `json:"step"`
	PE          float64 `json:"pe"`
	WallMicros  float64 `json:"wall_us"`
	Batch       int     `json:"batch"`
	BatchSize   int     `json:"batch_size"`
	QueueWaitUS float64 `json:"queue_wait_us"`
	BatchWaitUS float64 `json:"batch_wait_us"`
	ComputeUS   float64 `json:"compute_us"`
	TraceID     string  `json:"trace_id,omitempty"`
	err         *httpError
}

// retryAfter is the Retry-After hint on shed requests: roughly one batch's
// worth of queue drain, deliberately coarse (the header has 1 s resolution).
const retryAfter = "1"

// enqueue admits a step request to the bounded queue. In non-blocking mode
// a full queue sheds the request with 429 + Retry-After — the admission
// control that keeps an oversubscribed server answering instead of
// accumulating unbounded latency. Blocking mode is for streams, which are
// long-lived and prefer waiting for a slot over mid-stream errors; the
// bounded queue still applies backpressure through them.
func (s *Server) enqueue(rq *stepReq, block bool) *httpError {
	if s.closed.Load() {
		return &httpError{http.StatusServiceUnavailable, "server shutting down"}
	}
	s.stepReqs.Add(1)
	if block {
		select {
		case s.stepQ <- rq:
			return nil
		case <-s.quit:
			return &httpError{http.StatusServiceUnavailable, "server shutting down"}
		}
	}
	select {
	case s.stepQ <- rq:
		return nil
	default:
		s.shed.Add(1)
		return &httpError{http.StatusTooManyRequests, "step queue full"}
	}
}

// batcher is the single consumer of the step queue: it coalesces pending
// requests from many tenants into one batch and fans the batch out over the
// shared pool behind a latch barrier — pool.RunPhase's fan-out/latch/await
// shape with sessions as the work chunks. While a batch executes, new
// requests pile up in the queue, so batches grow with load and shrink when
// load drops; BatchWindow adds an explicit coalescing wait for workloads
// that prefer throughput over first-request latency.
func (s *Server) batcher() {
	defer s.wg.Done()
	for {
		select {
		case rq := <-s.stepQ:
			s.runBatch(s.collect(rq))
		case <-s.quit:
			// Fail whatever is still queued so no handler waits forever.
			for {
				select {
				case rq := <-s.stepQ:
					if rq.rt != nil {
						rq.rt.finishWriter() // the batch side will never run
					}
					rq.done <- stepResult{err: &httpError{
						http.StatusServiceUnavailable, "server shutting down"}}
				default:
					return
				}
			}
		}
	}
}

// collect assembles a batch: the triggering request, whatever else is
// already queued, and — when a batch window is configured — whatever more
// arrives within it.
func (s *Server) collect(first *stepReq) []*stepReq {
	batch := make([]*stepReq, 1, 16)
	batch[0] = first
drain:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case rq := <-s.stepQ:
			batch = append(batch, rq)
		default:
			break drain
		}
	}
	if s.cfg.BatchWindow > 0 && len(batch) < s.cfg.MaxBatch {
		timer := time.NewTimer(s.cfg.BatchWindow)
		defer timer.Stop()
	window:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case rq := <-s.stepQ:
				batch = append(batch, rq)
			case <-timer.C:
				break window
			case <-s.quit:
				break window
			}
		}
	}
	return batch
}

// runBatch fans the batch out over the pool and blocks until the latch
// barrier trips. Each task is one tenant's whole serial step run, so the
// pool's queue topology is exercised exactly as in the paper's §II-B — just
// with sessions instead of atom chunks.
func (s *Server) runBatch(batch []*stepReq) {
	seq := int(s.batchSeq.Add(1))
	size := len(batch)
	t0 := time.Now()
	dequeueUS := s.rec.NowMicros()
	for _, rq := range batch {
		rq.dequeueUS = dequeueUS
	}
	s.rec.PhaseBegin(seq, svcStep)
	latch := pool.NewLatch(size)
	for i, rq := range batch {
		rq := rq
		task := func() {
			res := s.execStep(rq)
			res.Batch = seq
			res.BatchSize = size
			rq.done <- res
			latch.CountDown()
		}
		switch {
		case s.fixed != nil:
			s.fixed.Execute(task)
		case s.pinned != nil:
			s.pinned.Execute(task)
		case s.stealing != nil:
			s.stealing.SubmitFor(i%s.cfg.Workers, func(worker int) { task() })
		}
	}
	latch.Await()
	s.rec.PhaseEnd(seq, svcStep, time.Since(t0), nil)
	s.batches.Add(1)
	s.batchedReqs.Add(int64(size))

	// Barrier accounting, after the latch: how long each request's tenant
	// kept the batch closed past its own compute (the straggler share),
	// plus the batch span for /v1/trace's tid-0 track. The worker-side
	// stamps are safely visible here — they happen-before CountDown, which
	// happens-before Await returning.
	barrierUS := s.rec.NowMicros()
	for _, rq := range batch {
		if rq.execEndUS > 0 {
			straggler := time.Duration(barrierUS-rq.execEndUS) * time.Microsecond
			traceID := ""
			if rq.rt != nil {
				traceID = rq.rt.TraceID
			}
			s.svcAttr.observe(attrStraggler, straggler, traceID, barrierUS)
			rq.sess.attr.observe(attrStraggler, straggler, traceID, barrierUS)
		}
		if rt := rq.rt; rt != nil {
			rt.Batch = seq
			rt.BatchSize = size
			rt.DequeueUS = rq.dequeueUS
			rt.ExecBeginUS = rq.execBeginUS
			rt.ExecEndUS = rq.execEndUS
			rt.BarrierUS = barrierUS
			rt.QueueWaitUS = clampUS(rq.dequeueUS - rq.enqueueUS)
			rt.BatchWaitUS = clampUS(rq.execBeginUS - rq.dequeueUS)
			rt.ComputeUS = clampUS(rq.execEndUS - rq.execBeginUS)
			if rq.execEndUS > 0 {
				rt.StragglerUS = clampUS(barrierUS - rq.execEndUS)
			}
			rt.finishWriter()
		}
	}
	s.batchSpans.add(batchSpan{Seq: seq, Size: size, BeginUS: dequeueUS, EndUS: barrierUS})
}

// clampUS floors a µs difference at zero — stamps a truncated error path
// never wrote must not turn into negative components.
func clampUS(us int64) int64 {
	if us < 0 {
		return 0
	}
	return us
}

// execStep advances one session under its lock. A session evicted or closed
// between enqueue and execution reports 409 — the request was admitted, the
// tenant vanished.
func (s *Server) execStep(rq *stepReq) stepResult {
	sess := rq.sess
	sess.mu.Lock()
	defer sess.mu.Unlock()
	rq.execBeginUS = s.rec.NowMicros()
	if sess.closed {
		rq.execEndUS = rq.execBeginUS
		return stepResult{err: &httpError{http.StatusConflict, "session closed"}}
	}
	traced := rq.rt != nil
	var tenantBeginUS int64
	if traced {
		// Open the drain window: seek the cursor past the backlog earlier
		// untraced requests left in the ring (O(shards), not O(backlog) —
		// at TraceSample=64 the backlog is ~64 requests of events and this
		// runs on the traced hot path, which the observer-overhead gate
		// watches), and stamp the tenant-clock compute start so the post-run
		// drain can fence off any event that still predates this window.
		sess.rec.Seek(&sess.cursor)
		tenantBeginUS = sess.rec.NowMicros()
	}
	sess.sim.Run(rq.n)
	rq.execEndUS = s.rec.NowMicros()
	traceID := ""
	if traced {
		traceID = rq.rt.TraceID
		// Re-base the tenant recorder's timebase onto the service clock and
		// collect the engine-phase spans that ran inside this compute window.
		offset := rq.execEndUS - sess.rec.NowMicros()
		rq.rt.Phases = drainRequestPhases(sess, tenantBeginUS, offset, rq.execBeginUS, rq.execEndUS)
	}
	sess.steps.Add(int64(rq.n))
	s.stepsTotal.Add(int64(rq.n))
	sess.touch()
	lat := time.Since(rq.t0)
	sess.stepHist.Observe(lat)
	s.stepLat.Observe(lat)
	sess.slo.record(lat, false)
	s.slo.record(lat, false)

	// Attribution: every request (traced or not) feeds the decomposed
	// histograms; traced ones pin bucket exemplars to their trace id.
	queueWait := time.Duration(clampUS(rq.dequeueUS-rq.enqueueUS)) * time.Microsecond
	batchWait := time.Duration(clampUS(rq.execBeginUS-rq.dequeueUS)) * time.Microsecond
	compute := time.Duration(clampUS(rq.execEndUS-rq.execBeginUS)) * time.Microsecond
	at := rq.execEndUS
	s.svcAttr.observe(attrQueueWait, queueWait, traceID, at)
	s.svcAttr.observe(attrBatchWait, batchWait, traceID, at)
	s.svcAttr.observe(attrCompute, compute, traceID, at)
	sess.attr.observe(attrQueueWait, queueWait, traceID, at)
	sess.attr.observe(attrBatchWait, batchWait, traceID, at)
	sess.attr.observe(attrCompute, compute, traceID, at)

	return stepResult{
		Step:        sess.sim.StepCount(),
		PE:          sess.sim.PE(),
		WallMicros:  float64(lat) / float64(time.Microsecond),
		QueueWaitUS: float64(queueWait) / float64(time.Microsecond),
		BatchWaitUS: float64(batchWait) / float64(time.Microsecond),
		ComputeUS:   float64(compute) / float64(time.Microsecond),
		TraceID:     traceID,
	}
}
