package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip: every generated context renders to a header the
// strict parser accepts back, bit-for-bit.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		tc := newTraceContext()
		h := tc.Traceparent()
		if len(h) != traceparentLen {
			t.Fatalf("Traceparent() length %d, want %d (%q)", len(h), traceparentLen, h)
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("generated header %q rejected by parser", h)
		}
		if got != tc {
			t.Fatalf("round trip mangled context: %+v -> %q -> %+v", tc, h, got)
		}
		if got.Traceparent() != h {
			t.Fatalf("re-render differs: %q vs %q", got.Traceparent(), h)
		}
	}
}

// TestParseTraceparentStrict holds the parser to the version-00 ABNF:
// exact length, exact dashes, lowercase hex, nonzero ids.
func TestParseTraceparentStrict(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if tc, ok := ParseTraceparent(valid); !ok || !tc.Sampled {
		t.Fatalf("canonical example rejected: ok=%v tc=%+v", ok, tc)
	}
	if tc, ok := ParseTraceparent(valid[:len(valid)-1] + "0"); !ok || tc.Sampled {
		t.Fatalf("flags=00 example: ok=%v sampled=%v, want ok, unsampled", ok, tc.Sampled)
	}
	// Unknown flag bits besides 0x01 must not break parsing.
	if tc, ok := ParseTraceparent(valid[:len(valid)-2] + "03"); !ok || !tc.Sampled {
		t.Fatalf("flags=03: ok=%v sampled=%v, want ok, sampled", ok, tc.Sampled)
	}

	bad := []string{
		"",
		valid + "x",                                  // too long
		valid[:54],                                   // too short
		strings.ToUpper(valid),                       // uppercase hex
		"01" + valid[2:],                             // version 01
		"ff" + valid[2:],                             // forbidden version
		strings.Replace(valid, "-", "_", 1),          // wrong separator
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g", // non-hex flags
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("parser accepted malformed header %q", h)
		}
	}
}

// TestSampleTrace pins the sampling policy: inbound sampled headers always
// trace (with a fresh span id), inbound unsampled headers never do, and
// unheaded requests are traced exactly 1-in-K.
func TestSampleTrace(t *testing.T) {
	s := NewServer(Config{Workers: 1, TraceSample: 4, GCInterval: -1})
	defer s.Close()

	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/x/step", nil)
	upstream := newTraceContext()
	req.Header.Set("traceparent", upstream.Traceparent())
	tc, traced := s.sampleTrace(req)
	if !traced {
		t.Fatal("inbound sampled traceparent not traced")
	}
	if tc.TraceID != upstream.TraceID {
		t.Error("trace id not propagated from inbound header")
	}
	if tc.SpanID == upstream.SpanID {
		t.Error("span id not re-minted for this hop")
	}

	unsampled := upstream
	unsampled.Sampled = false
	req.Header.Set("traceparent", unsampled.Traceparent())
	if _, traced := s.sampleTrace(req); traced {
		t.Error("inbound unsampled traceparent was traced anyway")
	}

	req.Header.Del("traceparent")
	n := 0
	for i := 0; i < 40; i++ {
		if _, traced := s.sampleTrace(req); traced {
			n++
		}
	}
	if n != 10 {
		t.Errorf("1-in-4 sampling traced %d of 40 unheaded requests, want 10", n)
	}

	off := NewServer(Config{Workers: 1, TraceSample: -1, GCInterval: -1})
	defer off.Close()
	req.Header.Set("traceparent", upstream.Traceparent())
	if _, traced := off.sampleTrace(req); traced {
		t.Error("TraceSample<0 still traced an inbound header")
	}
}
