package serve

import (
	"net/http"
	"net/url"
	"testing"

	"mw/internal/core"
)

// TestIntParam pins the strconv+clamp+400 contract at the unit level.
func TestIntParam(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		want    int
		wantErr bool
	}{
		{"absent", "", 7, false},
		{"in range", "n=5", 5, false},
		{"clamped low", "n=-3", 1, false},
		{"clamped high", "n=9999", 100, false},
		{"at bounds", "n=100", 100, false},
		{"garbage", "n=abc", 0, true},
		{"float", "n=1.5", 0, true},
		{"scientific", "n=1e9", 0, true},
		{"hex", "n=0x10", 0, true},
		{"overflow", "n=99999999999999999999", 0, true},
		{"empty value", "n=", 7, false},
		{"trailing junk", "n=5x", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.raw)
			if err != nil {
				t.Fatal(err)
			}
			got, hErr := intParam(q, "n", 7, 1, 100)
			if tc.wantErr {
				if hErr == nil || hErr.code != http.StatusBadRequest {
					t.Fatalf("intParam(%q) = %d, %+v, want 400", tc.raw, got, hErr)
				}
				return
			}
			if hErr != nil {
				t.Fatalf("intParam(%q) unexpected error %+v", tc.raw, hErr)
			}
			if got != tc.want {
				t.Errorf("intParam(%q) = %d, want %d", tc.raw, got, tc.want)
			}
		})
	}
}

func TestFloatParam(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		want    float64
		wantErr bool
	}{
		{"absent", "", 120, false},
		{"in range", "temp=200.5", 200.5, false},
		{"clamped low", "temp=0.001", 1, false},
		{"clamped high", "temp=1e12", 10000, false},
		{"garbage", "temp=warm", 0, true},
		{"nan", "temp=NaN", 0, true},
		{"inf", "temp=Inf", 0, true},
		{"neg inf", "temp=-Inf", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.raw)
			if err != nil {
				t.Fatal(err)
			}
			got, hErr := floatParam(q, "temp", 120, 1, 10000)
			if tc.wantErr {
				if hErr == nil || hErr.code != http.StatusBadRequest {
					t.Fatalf("floatParam(%q) = %g, %+v, want 400", tc.raw, got, hErr)
				}
				return
			}
			if hErr != nil {
				t.Fatalf("floatParam(%q) unexpected error %+v", tc.raw, hErr)
			}
			if got != tc.want {
				t.Errorf("floatParam(%q) = %g, want %g", tc.raw, got, tc.want)
			}
		})
	}
}

func TestValidSessionID(t *testing.T) {
	good := []string{"0123456789abcdef", "deadbeefdeadbeef"}
	bad := []string{
		"", "short", "0123456789ABCDEF", "0123456789abcde!", "0123456789abcdeff",
		"../../../../etc/", "0123456789abcdeg", "0123456789 bcdef",
	}
	for _, id := range good {
		if !validSessionID(id) {
			t.Errorf("validSessionID(%q) = false, want true", id)
		}
	}
	for _, id := range bad {
		if validSessionID(id) {
			t.Errorf("validSessionID(%q) = true, want false", id)
		}
	}
}

// TestBadParamsOverHTTP drives every numeric parameter on the surface with
// garbage, out-of-range and boundary values and asserts the contract:
// garbage is 400, out-of-range is clamped and served.
func TestBadParamsOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createTestSession(t, ts)
	const unknown = "0123456789abcdef"

	cases := []struct {
		name   string
		method string
		path   string
		want   int
	}{
		// step n
		{"step garbage n", "POST", "/v1/sessions/" + id + "/step?n=abc", 400},
		{"step float n", "POST", "/v1/sessions/" + id + "/step?n=2.5", 400},
		{"step negative n clamps", "POST", "/v1/sessions/" + id + "/step?n=-4", 200},
		{"step huge n clamps", "POST", "/v1/sessions/" + id + "/step?n=99999999", 200},
		// stream frames/every
		{"stream garbage frames", "GET", "/v1/sessions/" + id + "/stream?frames=x", 400},
		{"stream garbage every", "GET", "/v1/sessions/" + id + "/stream?frames=2&every=x", 400},
		{"stream scientific frames", "GET", "/v1/sessions/" + id + "/stream?frames=1e3", 400},
		{"stream clamps", "GET", "/v1/sessions/" + id + "/stream?frames=-1&every=-1", 200},
		// list limit
		{"list garbage limit", "GET", "/v1/sessions?limit=lots", 400},
		{"list clamps limit", "GET", "/v1/sessions?limit=-5", 200},
		// tenant telemetry events
		{"telemetry garbage events", "GET", "/v1/sessions/" + id + "/telemetry.json?events=x", 400},
		{"telemetry clamps events", "GET", "/v1/sessions/" + id + "/telemetry.json?events=999999999", 200},
		// create params
		{"create garbage n", "POST", "/v1/sessions?workload=lj-gas&n=two", 400},
		{"create garbage temp", "POST", "/v1/sessions?workload=lj-gas&n=3&temp=cold", 400},
		{"create nan temp", "POST", "/v1/sessions?workload=lj-gas&n=3&temp=NaN", 400},
		{"create unknown workload", "POST", "/v1/sessions?workload=plasma", 400},
		{"create missing workload", "POST", "/v1/sessions", 400},
		// session-id shapes
		{"malformed id", "GET", "/v1/sessions/not-a-session-id", 400},
		{"uppercase id", "GET", "/v1/sessions/0123456789ABCDEF", 400},
		{"short id", "GET", "/v1/sessions/abc", 400},
		{"unknown id", "GET", "/v1/sessions/" + unknown, 404},
		{"unknown id step", "POST", "/v1/sessions/" + unknown + "/step", 404},
		{"unknown id snapshot", "GET", "/v1/sessions/" + unknown + "/snapshot", 404},
		{"unknown id stream", "GET", "/v1/sessions/" + unknown + "/stream", 404},
		{"unknown id telemetry", "GET", "/v1/sessions/" + unknown + "/telemetry.json", 404},
		{"malformed id delete", "DELETE", "/v1/sessions/zz", 400},
		{"unknown id delete", "DELETE", "/v1/sessions/" + unknown, 404},
		// service telemetry surface keeps its own contract
		{"service telemetry garbage events", "GET", "/telemetry.json?events=bogus", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := doReq(t, ts.Client(), tc.method, ts.URL+tc.path, nil)
			if code != tc.want {
				t.Errorf("%s %s = %d (%s), want %d", tc.method, tc.path, code, body, tc.want)
			}
		})
	}
}

// TestCheckModelGeometry pins the upload geometry guard.
func TestCheckModelGeometry(t *testing.T) {
	cases := []struct {
		name       string
		lx, ly, lz float64
		ok         bool
	}{
		{"sane box", 20, 20, 20, true},
		{"zero dim", 0, 20, 20, false},
		{"negative dim", -5, 20, 20, false},
		{"huge dim", 2e6, 20, 20, false},
		{"cell-count bomb", 9e5, 9e5, 9e5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hErr := checkModelGeometry(tc.lx, tc.ly, tc.lz, core.Config{LJCutoff: 6, Skin: 0.5})
			if tc.ok && hErr != nil {
				t.Errorf("rejected: %d %s", hErr.code, hErr.msg)
			}
			if !tc.ok && hErr == nil {
				t.Error("accepted, want 400")
			}
		})
	}
}
