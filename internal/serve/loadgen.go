package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the load-generation half of the service: a fixed-NRUNS ×
// client-concurrency sweep in the same shape as the paper's speedup
// harness — create a fleet of tenant sessions once, then for each client
// concurrency level drive one step request per session per run and report
// throughput plus exact p50/p99/p999 step latency. It lives in the package
// (rather than cmd/mwload) so the bench regression harness and tests can
// run sweeps in-process against an httptest server.

// SweepOptions configures a load sweep.
type SweepOptions struct {
	Workload          string       // builtin workload name sent on create
	WorkloadQuery     url.Values   // extra create params (e.g. n, temp for lj-gas)
	Sessions          int          // concurrent sessions to create and keep live
	StepsPerReq       int          // n on each step request
	NRuns             int          // repetitions per concurrency level
	Concurrency       []int        // client goroutine counts to sweep
	CreateConcurrency int          // parallel creators during setup (default 32)
	Retries           int          // per-request retries after a 429
	Client            *http.Client // default: dedicated client, 60 s timeout
	KeepSessions      bool         // leave sessions live after the sweep
	// Attr adds the latency-attribution columns to every row: the server-
	// reported queue-wait vs batch-wait vs compute split per concurrency
	// level, and the decomposition of the p99-rank request against its own
	// end-to-end latency (the "where did p99 go" answer).
	Attr bool
}

func (o *SweepOptions) withDefaults() {
	if o.Workload == "" {
		o.Workload = "Al-1000"
	}
	if o.Sessions <= 0 {
		o.Sessions = 16
	}
	if o.StepsPerReq <= 0 {
		o.StepsPerReq = 1
	}
	if o.NRuns <= 0 {
		o.NRuns = 2
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 8, 64}
	}
	if o.CreateConcurrency <= 0 {
		o.CreateConcurrency = 32
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 60 * time.Second}
	}
}

// SweepRow is one concurrency level's aggregate over all runs.
type SweepRow struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Shed429     int64   `json:"shed_429"`
	Errors      int64   `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	ReqPerSec   float64 `json:"req_per_sec"`
	StepsPerSec float64 `json:"steps_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	// Attr is the latency-attribution split (SweepOptions.Attr).
	Attr *AttrSplit `json:"attr,omitempty"`
}

// AttrSplit decomposes one concurrency level's latency into four measured
// components: ingress (client e2e minus the server's own wall — socket,
// HTTP stack and scheduler admission wait plus the response hop), then the
// server-stamped queue-wait, batch-wait and compute. Percentiles are
// per-component across all requests, plus the exact decomposition of the
// p99-rank request. ResidualPct is what none of the four explain — the
// in-server unattributed time (done-channel wake, serialize, stamp gaps)
// as a share of the measured e2e — and is the sanity bound gated at 5% by
// the bench acceptance run: if it grows, a new latency source appeared
// that the attribution layer does not see.
type AttrSplit struct {
	IngressP50us   float64 `json:"ingress_p50_us"`
	IngressP99us   float64 `json:"ingress_p99_us"`
	QueueWaitP50us float64 `json:"queue_wait_p50_us"`
	QueueWaitP99us float64 `json:"queue_wait_p99_us"`
	BatchWaitP50us float64 `json:"batch_wait_p50_us"`
	BatchWaitP99us float64 `json:"batch_wait_p99_us"`
	ComputeP50us   float64 `json:"compute_p50_us"`
	ComputeP99us   float64 `json:"compute_p99_us"`

	// The p99-rank request, decomposed. TraceID is set when that request
	// happened to be sampled server-side.
	P99TraceID   string  `json:"p99_trace_id,omitempty"`
	P99E2Eus     float64 `json:"p99_e2e_us"`
	P99IngressUs float64 `json:"p99_ingress_us"`
	P99QueueUs   float64 `json:"p99_queue_wait_us"`
	P99BatchUs   float64 `json:"p99_batch_wait_us"`
	P99ComputeUs float64 `json:"p99_compute_us"`
	P99SumUs     float64 `json:"p99_sum_us"`
	ResidualPct  float64 `json:"p99_residual_pct"`
}

// SweepReport is the full result of one sweep.
type SweepReport struct {
	Workload    string     `json:"workload"`
	Sessions    int        `json:"sessions"`
	StepsPerReq int        `json:"steps_per_req"`
	NRuns       int        `json:"nruns"`
	Rows        []SweepRow `json:"rows"`
	// RetryAfter counts the distinct Retry-After header values seen on 429
	// responses during the sweep's retry loops (value → occurrences).
	RetryAfter map[string]int64 `json:"retry_after_seen,omitempty"`
}

// retryAfterCount tallies Retry-After header values across goroutines. A
// nil counter ignores notes, so callers opt in by allocating one.
type retryAfterCount struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *retryAfterCount) note(v string) {
	if c == nil {
		return
	}
	if v == "" {
		v = "(absent)"
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]int64{}
	}
	c.m[v]++
	c.mu.Unlock()
}

func (c *retryAfterCount) snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Validate sanity-checks a report: the sweep ran, every row completed its
// requests, and the percentile digests are ordered. The smoke target runs
// this against mwload's JSON output.
func (r *SweepReport) Validate() error {
	if r.Sessions <= 0 || r.NRuns <= 0 || len(r.Rows) == 0 {
		return fmt.Errorf("empty sweep report")
	}
	for _, row := range r.Rows {
		if row.Concurrency <= 0 {
			return fmt.Errorf("row with concurrency %d", row.Concurrency)
		}
		want := int64(r.Sessions) * int64(r.NRuns)
		if row.Requests != want {
			return fmt.Errorf("c=%d: %d requests, want %d", row.Concurrency, row.Requests, want)
		}
		if row.Errors > 0 {
			return fmt.Errorf("c=%d: %d errors", row.Concurrency, row.Errors)
		}
		if row.WallSeconds <= 0 || row.StepsPerSec <= 0 {
			return fmt.Errorf("c=%d: no throughput (wall=%g steps/s=%g)",
				row.Concurrency, row.WallSeconds, row.StepsPerSec)
		}
		if !(row.P50us <= row.P99us && row.P99us <= row.P999us) {
			return fmt.Errorf("c=%d: percentiles out of order (%g, %g, %g)",
				row.Concurrency, row.P50us, row.P99us, row.P999us)
		}
	}
	return nil
}

// WaitHealthy polls base's /healthz until it answers 200 or the timeout
// elapses — how mwload (and the smoke target) syncs with a freshly booted
// daemon.
func WaitHealthy(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy after %s: %v", base, timeout, err)
			}
			return fmt.Errorf("server at %s not healthy after %s", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// RunSweep creates o.Sessions sessions against base, then for each
// concurrency level issues one step request per session per run, retrying
// shed (429) requests up to o.Retries times. Latencies are recorded
// exactly and sorted for the percentile digests — at sweep sizes the full
// sample fits trivially in memory, so there is no reason to settle for the
// server histogram's √2 bucket resolution.
func RunSweep(base string, o SweepOptions) (*SweepReport, error) {
	o.withDefaults()
	ids, err := createSessions(base, &o)
	if err != nil {
		return nil, err
	}
	if !o.KeepSessions {
		defer closeSessions(base, o.Client, ids)
	}
	rep := &SweepReport{
		Workload:    o.Workload,
		Sessions:    o.Sessions,
		StepsPerReq: o.StepsPerReq,
		NRuns:       o.NRuns,
	}
	ra := &retryAfterCount{}
	for _, c := range o.Concurrency {
		if c <= 0 {
			return nil, fmt.Errorf("concurrency must be positive, got %d", c)
		}
		row, err := runLevel(base, &o, ids, c, ra)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.RetryAfter = ra.snapshot()
	return rep, nil
}

func createSessions(base string, o *SweepOptions) ([]string, error) {
	q := url.Values{}
	for k, vs := range o.WorkloadQuery {
		q[k] = vs
	}
	q.Set("workload", o.Workload)
	createURL := base + "/v1/sessions?" + q.Encode()

	ids := make([]string, o.Sessions)
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
		next     atomic.Int64
	)
	workers := o.CreateConcurrency
	if workers > o.Sessions {
		workers = o.Sessions
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Sessions || firstErr.Load() != nil {
					return
				}
				id, err := createOne(o.Client, createURL)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ids[i] = id
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return ids, nil
}

func createOne(client *http.Client, createURL string) (string, error) {
	resp, err := client.Post(createURL, "application/json", nil)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("create: %s: %s", resp.Status, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		return "", fmt.Errorf("create: decoding response: %v", err)
	}
	if !validSessionID(created.ID) {
		return "", fmt.Errorf("create: server returned malformed id %q", created.ID)
	}
	return created.ID, nil
}

func closeSessions(base string, client *http.Client, ids []string) {
	for _, id := range ids {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// stepSample is one successful request's client-side latency plus the
// server's per-request attribution fields from the response body.
type stepSample struct {
	E2EUs     float64
	WallUs    float64 // server-side wall: handler entry → response ready
	QueueUs   float64
	BatchUs   float64
	ComputeUs float64
	TraceID   string
}

// IngressUs is the admission wait: client-measured end-to-end minus the
// server's own wall — socket buffers, the HTTP stack, and scheduler delay
// before the handler's first stamp, plus the response's network hop. On a
// saturated host this is where most of a request's life goes (the handler
// goroutine cannot even run while a batch holds the cores), which is why a
// decomposition built from server-side stamps alone cannot explain the
// client's p99.
func (s stepSample) IngressUs() float64 {
	if d := s.E2EUs - s.WallUs; d > 0 {
		return d
	}
	return 0
}

// runLevel drives all sessions through c client goroutines for o.NRuns
// runs and aggregates the row.
func runLevel(base string, o *SweepOptions, ids []string, c int, ra *retryAfterCount) (SweepRow, error) {
	row := SweepRow{Concurrency: c}
	var all []stepSample
	for run := 0; run < o.NRuns; run++ {
		samples, shed, errs, wall, err := runOnce(base, o, ids, c, ra)
		if err != nil {
			return row, err
		}
		row.Requests += int64(len(samples))
		row.Shed429 += shed
		row.Errors += errs
		row.WallSeconds += wall.Seconds()
		all = append(all, samples...)
	}
	if row.WallSeconds > 0 {
		row.ReqPerSec = float64(row.Requests) / row.WallSeconds
		row.StepsPerSec = float64(row.Requests) * float64(o.StepsPerReq) / row.WallSeconds
	}
	sort.Slice(all, func(i, j int) bool { return all[i].E2EUs < all[j].E2EUs })
	lats := make([]float64, len(all))
	for i, s := range all {
		lats[i] = s.E2EUs
	}
	row.P50us = pct(lats, 0.50)
	row.P99us = pct(lats, 0.99)
	row.P999us = pct(lats, 0.999)
	if o.Attr && len(all) > 0 {
		row.Attr = attrSplit(all)
	}
	return row, nil
}

// attrSplit aggregates the attribution columns for one level. samples must
// be sorted by E2EUs (runLevel's percentile order) so the p99-rank request
// is just an index.
func attrSplit(samples []stepSample) *AttrSplit {
	col := func(get func(stepSample) float64) []float64 {
		vs := make([]float64, len(samples))
		for i, s := range samples {
			vs[i] = get(s)
		}
		sort.Float64s(vs)
		return vs
	}
	ingress := col(stepSample.IngressUs)
	queue := col(func(s stepSample) float64 { return s.QueueUs })
	batch := col(func(s stepSample) float64 { return s.BatchUs })
	compute := col(func(s stepSample) float64 { return s.ComputeUs })
	a := &AttrSplit{
		IngressP50us:   pct(ingress, 0.50),
		IngressP99us:   pct(ingress, 0.99),
		QueueWaitP50us: pct(queue, 0.50),
		QueueWaitP99us: pct(queue, 0.99),
		BatchWaitP50us: pct(batch, 0.50),
		BatchWaitP99us: pct(batch, 0.99),
		ComputeP50us:   pct(compute, 0.50),
		ComputeP99us:   pct(compute, 0.99),
	}
	i := int(0.99 * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	p99 := samples[i]
	a.P99TraceID = p99.TraceID
	a.P99E2Eus = p99.E2EUs
	a.P99IngressUs = p99.IngressUs()
	a.P99QueueUs = p99.QueueUs
	a.P99BatchUs = p99.BatchUs
	a.P99ComputeUs = p99.ComputeUs
	a.P99SumUs = a.P99IngressUs + p99.QueueUs + p99.BatchUs + p99.ComputeUs
	if p99.E2EUs > 0 {
		a.ResidualPct = 100 * (p99.E2EUs - a.P99SumUs) / p99.E2EUs
	}
	return a
}

// pct returns the q-th percentile of sorted microsecond samples (nearest-
// rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func runOnce(base string, o *SweepOptions, ids []string, c int, ra *retryAfterCount) (samples []stepSample, shed, errs int64, wall time.Duration, err error) {
	type clientResult struct {
		samples []stepSample
		shed    int64
		errs    int64
		err     error
	}
	results := make([]clientResult, c)
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	t0 := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				sample, s, e := stepOnce(o, base, ids[i], ra)
				res.shed += s
				if e != nil {
					res.errs++
					if res.err == nil {
						res.err = e
					}
					continue
				}
				res.samples = append(res.samples, sample)
			}
		}(w)
	}
	wg.Wait()
	wall = time.Since(t0)
	for i := range results {
		samples = append(samples, results[i].samples...)
		shed += results[i].shed
		errs += results[i].errs
		if err == nil {
			err = results[i].err
		}
	}
	// Errors are reported in the row, not fatal: Validate decides whether
	// they sink the report.
	err = nil
	for i := range results {
		if results[i].err != nil {
			err = fmt.Errorf("c=%d: %v (and %d more errors)", c, results[i].err, errs-1)
			break
		}
	}
	return samples, shed, errs, wall, err
}

// stepOnce issues one step request, honoring 429 shedding with up to
// o.Retries retries. The reported latency is the successful attempt's
// round trip; shed counts every 429 seen along the way, and each 429's
// Retry-After value is tallied into ra (nil = don't care).
func stepOnce(o *SweepOptions, base, id string, ra *retryAfterCount) (sample stepSample, shed int64, err error) {
	stepURL := fmt.Sprintf("%s/v1/sessions/%s/step?n=%d", base, id, o.StepsPerReq)
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := o.Client.Post(stepURL, "application/json", nil)
		if err != nil {
			return sample, shed, err
		}
		lat := time.Since(t0)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			sample.E2EUs = float64(lat) / float64(time.Microsecond)
			var attr struct {
				WallUS      float64 `json:"wall_us"`
				QueueWaitUS float64 `json:"queue_wait_us"`
				BatchWaitUS float64 `json:"batch_wait_us"`
				ComputeUS   float64 `json:"compute_us"`
				TraceID     string  `json:"trace_id"`
			}
			if json.Unmarshal(body, &attr) == nil {
				sample.WallUs = attr.WallUS
				sample.QueueUs = attr.QueueWaitUS
				sample.BatchUs = attr.BatchWaitUS
				sample.ComputeUs = attr.ComputeUS
				sample.TraceID = attr.TraceID
			}
			return sample, shed, nil
		case http.StatusTooManyRequests:
			shed++
			ra.note(resp.Header.Get("Retry-After"))
			if attempt >= o.Retries {
				return sample, shed, fmt.Errorf("step %s: shed %d times, retries exhausted", id, shed)
			}
			// The server's Retry-After has 1 s resolution; at sweep scale a
			// short bounded backoff drains faster without hammering.
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		default:
			return sample, shed, fmt.Errorf("step %s: %s: %s", id, resp.Status, body)
		}
	}
}

// OversubscribeProbe slams base with burst one-shot step requests (no
// retries) against sess sessions and reports how many were shed with 429,
// the Retry-After values those 429s carried (the backoff hints an honest
// load shedder must provide — previously counted but dropped), and whether
// the server still answers /healthz afterwards — the "sheds load instead
// of collapsing" acceptance check.
func OversubscribeProbe(base string, o SweepOptions, burst int) (shed int64, retryAfter map[string]int64, healthy bool, err error) {
	o.withDefaults()
	o.Retries = 0
	ids, err := createSessions(base, &o)
	if err != nil {
		return 0, nil, false, err
	}
	defer closeSessions(base, o.Client, ids)
	var (
		wg       sync.WaitGroup
		shedN    atomic.Int64
		hardErrs atomic.Int64
	)
	ra := &retryAfterCount{}
	for w := 0; w < burst; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, s, e := stepOnce(&o, base, ids[w%len(ids)], ra)
			shedN.Add(s)
			if e != nil && s == 0 {
				hardErrs.Add(1)
			}
		}(w)
	}
	wg.Wait()
	healthErr := WaitHealthy(base, 10*time.Second)
	if hardErrs.Load() > 0 {
		return shedN.Load(), ra.snapshot(), healthErr == nil,
			fmt.Errorf("%d non-429 failures during burst", hardErrs.Load())
	}
	return shedN.Load(), ra.snapshot(), healthErr == nil, healthErr
}
