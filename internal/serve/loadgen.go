package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the load-generation half of the service: a fixed-NRUNS ×
// client-concurrency sweep in the same shape as the paper's speedup
// harness — create a fleet of tenant sessions once, then for each client
// concurrency level drive one step request per session per run and report
// throughput plus exact p50/p99/p999 step latency. It lives in the package
// (rather than cmd/mwload) so the bench regression harness and tests can
// run sweeps in-process against an httptest server.

// SweepOptions configures a load sweep.
type SweepOptions struct {
	Workload          string       // builtin workload name sent on create
	WorkloadQuery     url.Values   // extra create params (e.g. n, temp for lj-gas)
	Sessions          int          // concurrent sessions to create and keep live
	StepsPerReq       int          // n on each step request
	NRuns             int          // repetitions per concurrency level
	Concurrency       []int        // client goroutine counts to sweep
	CreateConcurrency int          // parallel creators during setup (default 32)
	Retries           int          // per-request retries after a 429
	Client            *http.Client // default: dedicated client, 60 s timeout
	KeepSessions      bool         // leave sessions live after the sweep
}

func (o *SweepOptions) withDefaults() {
	if o.Workload == "" {
		o.Workload = "Al-1000"
	}
	if o.Sessions <= 0 {
		o.Sessions = 16
	}
	if o.StepsPerReq <= 0 {
		o.StepsPerReq = 1
	}
	if o.NRuns <= 0 {
		o.NRuns = 2
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 8, 64}
	}
	if o.CreateConcurrency <= 0 {
		o.CreateConcurrency = 32
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 60 * time.Second}
	}
}

// SweepRow is one concurrency level's aggregate over all runs.
type SweepRow struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Shed429     int64   `json:"shed_429"`
	Errors      int64   `json:"errors"`
	WallSeconds float64 `json:"wall_seconds"`
	ReqPerSec   float64 `json:"req_per_sec"`
	StepsPerSec float64 `json:"steps_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
}

// SweepReport is the full result of one sweep.
type SweepReport struct {
	Workload    string     `json:"workload"`
	Sessions    int        `json:"sessions"`
	StepsPerReq int        `json:"steps_per_req"`
	NRuns       int        `json:"nruns"`
	Rows        []SweepRow `json:"rows"`
}

// Validate sanity-checks a report: the sweep ran, every row completed its
// requests, and the percentile digests are ordered. The smoke target runs
// this against mwload's JSON output.
func (r *SweepReport) Validate() error {
	if r.Sessions <= 0 || r.NRuns <= 0 || len(r.Rows) == 0 {
		return fmt.Errorf("empty sweep report")
	}
	for _, row := range r.Rows {
		if row.Concurrency <= 0 {
			return fmt.Errorf("row with concurrency %d", row.Concurrency)
		}
		want := int64(r.Sessions) * int64(r.NRuns)
		if row.Requests != want {
			return fmt.Errorf("c=%d: %d requests, want %d", row.Concurrency, row.Requests, want)
		}
		if row.Errors > 0 {
			return fmt.Errorf("c=%d: %d errors", row.Concurrency, row.Errors)
		}
		if row.WallSeconds <= 0 || row.StepsPerSec <= 0 {
			return fmt.Errorf("c=%d: no throughput (wall=%g steps/s=%g)",
				row.Concurrency, row.WallSeconds, row.StepsPerSec)
		}
		if !(row.P50us <= row.P99us && row.P99us <= row.P999us) {
			return fmt.Errorf("c=%d: percentiles out of order (%g, %g, %g)",
				row.Concurrency, row.P50us, row.P99us, row.P999us)
		}
	}
	return nil
}

// WaitHealthy polls base's /healthz until it answers 200 or the timeout
// elapses — how mwload (and the smoke target) syncs with a freshly booted
// daemon.
func WaitHealthy(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy after %s: %v", base, timeout, err)
			}
			return fmt.Errorf("server at %s not healthy after %s", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// RunSweep creates o.Sessions sessions against base, then for each
// concurrency level issues one step request per session per run, retrying
// shed (429) requests up to o.Retries times. Latencies are recorded
// exactly and sorted for the percentile digests — at sweep sizes the full
// sample fits trivially in memory, so there is no reason to settle for the
// server histogram's √2 bucket resolution.
func RunSweep(base string, o SweepOptions) (*SweepReport, error) {
	o.withDefaults()
	ids, err := createSessions(base, &o)
	if err != nil {
		return nil, err
	}
	if !o.KeepSessions {
		defer closeSessions(base, o.Client, ids)
	}
	rep := &SweepReport{
		Workload:    o.Workload,
		Sessions:    o.Sessions,
		StepsPerReq: o.StepsPerReq,
		NRuns:       o.NRuns,
	}
	for _, c := range o.Concurrency {
		if c <= 0 {
			return nil, fmt.Errorf("concurrency must be positive, got %d", c)
		}
		row, err := runLevel(base, &o, ids, c)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func createSessions(base string, o *SweepOptions) ([]string, error) {
	q := url.Values{}
	for k, vs := range o.WorkloadQuery {
		q[k] = vs
	}
	q.Set("workload", o.Workload)
	createURL := base + "/v1/sessions?" + q.Encode()

	ids := make([]string, o.Sessions)
	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
		next     atomic.Int64
	)
	workers := o.CreateConcurrency
	if workers > o.Sessions {
		workers = o.Sessions
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Sessions || firstErr.Load() != nil {
					return
				}
				id, err := createOne(o.Client, createURL)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ids[i] = id
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return ids, nil
}

func createOne(client *http.Client, createURL string) (string, error) {
	resp, err := client.Post(createURL, "application/json", nil)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("create: %s: %s", resp.Status, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		return "", fmt.Errorf("create: decoding response: %v", err)
	}
	if !validSessionID(created.ID) {
		return "", fmt.Errorf("create: server returned malformed id %q", created.ID)
	}
	return created.ID, nil
}

func closeSessions(base string, client *http.Client, ids []string) {
	for _, id := range ids {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// runLevel drives all sessions through c client goroutines for o.NRuns
// runs and aggregates the row.
func runLevel(base string, o *SweepOptions, ids []string, c int) (SweepRow, error) {
	row := SweepRow{Concurrency: c}
	var all []float64
	for run := 0; run < o.NRuns; run++ {
		lats, shed, errs, wall, err := runOnce(base, o, ids, c)
		if err != nil {
			return row, err
		}
		row.Requests += int64(len(lats))
		row.Shed429 += shed
		row.Errors += errs
		row.WallSeconds += wall.Seconds()
		all = append(all, lats...)
	}
	if row.WallSeconds > 0 {
		row.ReqPerSec = float64(row.Requests) / row.WallSeconds
		row.StepsPerSec = float64(row.Requests) * float64(o.StepsPerReq) / row.WallSeconds
	}
	sort.Float64s(all)
	row.P50us = pct(all, 0.50)
	row.P99us = pct(all, 0.99)
	row.P999us = pct(all, 0.999)
	return row, nil
}

// pct returns the q-th percentile of sorted microsecond samples (nearest-
// rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func runOnce(base string, o *SweepOptions, ids []string, c int) (lats []float64, shed, errs int64, wall time.Duration, err error) {
	type clientResult struct {
		lats []float64
		shed int64
		errs int64
		err  error
	}
	results := make([]clientResult, c)
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	t0 := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				lat, s, e := stepOnce(o, base, ids[i])
				res.shed += s
				if e != nil {
					res.errs++
					if res.err == nil {
						res.err = e
					}
					continue
				}
				res.lats = append(res.lats, lat)
			}
		}(w)
	}
	wg.Wait()
	wall = time.Since(t0)
	for i := range results {
		lats = append(lats, results[i].lats...)
		shed += results[i].shed
		errs += results[i].errs
		if err == nil {
			err = results[i].err
		}
	}
	// Errors are reported in the row, not fatal: Validate decides whether
	// they sink the report.
	err = nil
	for i := range results {
		if results[i].err != nil {
			err = fmt.Errorf("c=%d: %v (and %d more errors)", c, results[i].err, errs-1)
			break
		}
	}
	return lats, shed, errs, wall, err
}

// stepOnce issues one step request, honoring 429 shedding with up to
// o.Retries retries. The reported latency is the successful attempt's
// round trip; shed counts every 429 seen along the way.
func stepOnce(o *SweepOptions, base, id string) (latUs float64, shed int64, err error) {
	stepURL := fmt.Sprintf("%s/v1/sessions/%s/step?n=%d", base, id, o.StepsPerReq)
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := o.Client.Post(stepURL, "application/json", nil)
		if err != nil {
			return 0, shed, err
		}
		lat := time.Since(t0)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return float64(lat) / float64(time.Microsecond), shed, nil
		case http.StatusTooManyRequests:
			shed++
			if attempt >= o.Retries {
				return 0, shed, fmt.Errorf("step %s: shed %d times, retries exhausted", id, shed)
			}
			// The server's Retry-After has 1 s resolution; at sweep scale a
			// short bounded backoff drains faster without hammering.
			time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
		default:
			return 0, shed, fmt.Errorf("step %s: %s: %s", id, resp.Status, body)
		}
	}
}

// OversubscribeProbe slams base with burst one-shot step requests (no
// retries) against sess sessions and reports how many were shed with 429
// and whether the server still answers /healthz afterwards — the
// "sheds load instead of collapsing" acceptance check.
func OversubscribeProbe(base string, o SweepOptions, burst int) (shed int64, healthy bool, err error) {
	o.withDefaults()
	o.Retries = 0
	ids, err := createSessions(base, &o)
	if err != nil {
		return 0, false, err
	}
	defer closeSessions(base, o.Client, ids)
	var (
		wg       sync.WaitGroup
		shedN    atomic.Int64
		hardErrs atomic.Int64
	)
	for w := 0; w < burst; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, s, e := stepOnce(&o, base, ids[w%len(ids)])
			shedN.Add(s)
			if e != nil && s == 0 {
				hardErrs.Add(1)
			}
		}(w)
	}
	wg.Wait()
	healthErr := WaitHealthy(base, 10*time.Second)
	if hardErrs.Load() > 0 {
		return shedN.Load(), healthErr == nil, fmt.Errorf("%d non-429 failures during burst", hardErrs.Load())
	}
	return shedN.Load(), healthErr == nil, healthErr
}
