package serve

import (
	"testing"
	"time"
)

// TestSLOWindowRotation drives a burn window with synthetic clock reads:
// old buckets must age out, and a long quiet gap must clear the whole ring
// instead of replaying it bucket by bucket.
func TestSLOWindowRotation(t *testing.T) {
	t0 := time.Unix(1000, 0)
	var w sloWindow
	w.init(60*time.Second, t0) // 10 s buckets

	for i := 0; i < 10; i++ {
		w.record(true, t0.Add(time.Duration(i)*time.Second))
	}
	if burn, n := w.burn(t0.Add(9 * time.Second)); n != 10 || burn != 1/sloBudget {
		t.Fatalf("all-bad window: burn=%.1f n=%d, want %.1f, 10", burn, n, 1/sloBudget)
	}

	// 30 s later the bad requests still sit inside the 60 s window.
	for i := 0; i < 10; i++ {
		w.record(false, t0.Add(30*time.Second))
	}
	if burn, n := w.burn(t0.Add(30 * time.Second)); n != 20 || burn != 0.5/sloBudget {
		t.Fatalf("half-bad window: burn=%.1f n=%d, want %.1f, 20", burn, n, 0.5/sloBudget)
	}

	// 75 s after the bad burst every bad bucket has rotated out, but the
	// good requests from +30 s are still inside the 60 s window.
	if burn, n := w.burn(t0.Add(75 * time.Second)); burn != 0 || n != 10 {
		t.Fatalf("aged-out window: burn=%.1f n=%d, want 0, 10", burn, n)
	}

	// Quiet-gap reset: a record after a multi-window silence must not see
	// stale counts.
	w.record(false, t0.Add(75*time.Second))
	w.record(true, t0.Add(10_000*time.Second))
	if burn, n := w.burn(t0.Add(10_000 * time.Second)); n != 1 || burn != 1/sloBudget {
		t.Fatalf("post-gap window: burn=%.1f n=%d, want %.1f, 1", burn, n, 1/sloBudget)
	}
}

// TestSLOTrackerRecord pins the bad-request definition: over-target
// latency or a shed request, nothing else.
func TestSLOTrackerRecord(t *testing.T) {
	tr := newSLOTracker(10*time.Millisecond, time.Minute, time.Hour)
	tr.record(time.Millisecond, false)      // good
	tr.record(20*time.Millisecond, false)   // bad: over target
	tr.record(0, true)                      // bad: shed
	tr.record(10*time.Millisecond, false)   // good: exactly at target
	st := tr.status()
	if st.Requests != 4 || st.Bad != 2 {
		t.Fatalf("status = %d/%d bad, want 2/4", st.Bad, st.Requests)
	}
	if st.BadPct != 50 {
		t.Errorf("BadPct = %.1f, want 50", st.BadPct)
	}
	if st.FastBurn != 50/1.0 {
		t.Errorf("FastBurn = %.1f, want 50", st.FastBurn)
	}
	if st.FastWindow != 4 || st.SlowWindow != 4 {
		t.Errorf("window counts = %d/%d, want 4/4", st.FastWindow, st.SlowWindow)
	}
}
