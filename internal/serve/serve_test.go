package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mw/internal/xyz"
)

// newTestServer boots a Server plus an httptest frontend and tears both
// down with the test. The background GC sweeper is off unless the config
// asks for it — eviction tests drive EvictIdle directly.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.GCInterval == 0 {
		cfg.GCInterval = -1
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// doReq issues one request and returns status and body.
func doReq(t *testing.T, client *http.Client, method, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("building %s %s: %v", method, url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s body: %v", method, url, err)
	}
	return resp.StatusCode, b
}

// createTestSession creates a tiny lj-gas session and returns its id.
func createTestSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions?workload=lj-gas&n=3", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", code, body)
	}
	var created struct {
		ID    string `json:"id"`
		Atoms int    `json:"atoms"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v", err)
	}
	if !validSessionID(created.ID) {
		t.Fatalf("create returned malformed id %q", created.ID)
	}
	if created.Atoms != 27 {
		t.Fatalf("lj-gas n=3 session has %d atoms, want 27", created.Atoms)
	}
	return created.ID
}

// TestSessionLifecycle walks the whole tenant story end to end over real
// HTTP: create → N steps → snapshot (JSON and XYZ) → stream → close, then
// double-close and use-after-close.
func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	id := createTestSession(t, ts)
	base := ts.URL + "/v1/sessions/" + id

	const nSteps = 3
	for i := 1; i <= nSteps; i++ {
		code, body := doReq(t, ts.Client(), http.MethodPost, base+"/step", nil)
		if code != http.StatusOK {
			t.Fatalf("step %d: status %d, body %s", i, code, body)
		}
		var res struct {
			Step      int     `json:"step"`
			PE        float64 `json:"pe"`
			BatchSize int     `json:"batch_size"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("step %d response: %v", i, err)
		}
		if res.Step != i {
			t.Errorf("after step request %d engine reports step %d", i, res.Step)
		}
		if res.BatchSize < 1 {
			t.Errorf("step %d: batch size %d", i, res.BatchSize)
		}
	}

	// Info reflects the steps served.
	code, body := doReq(t, ts.Client(), http.MethodGet, base, nil)
	if code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	var info sessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("info response: %v", err)
	}
	if info.Step != nSteps {
		t.Errorf("info.Step = %d, want %d", info.Step, nSteps)
	}

	// JSON snapshot: full dynamical state at the current step.
	code, body = doReq(t, ts.Client(), http.MethodGet, base+"/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	var snap snapshotBody
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot response: %v", err)
	}
	if snap.Step != nSteps || len(snap.Pos) != 27 || len(snap.Vel) != 27 || len(snap.Force) != 27 {
		t.Errorf("snapshot step=%d len(pos)=%d len(vel)=%d len(force)=%d, want step=%d and 27 atoms",
			snap.Step, len(snap.Pos), len(snap.Vel), len(snap.Force), nSteps)
	}

	// XYZ snapshot parses as exactly one 27-atom frame.
	code, body = doReq(t, ts.Client(), http.MethodGet, base+"/snapshot.xyz", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot.xyz: status %d", code)
	}
	frames, err := xyz.ReadFrames(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("snapshot.xyz did not parse: %v", err)
	}
	if len(frames) != 1 || len(frames[0].Pos) != 27 {
		t.Fatalf("snapshot.xyz: %d frames, want 1 × 27 atoms", len(frames))
	}

	// Stream: frames × every advances the engine between frames.
	code, body = doReq(t, ts.Client(), http.MethodGet, base+"/stream?frames=3&every=2", nil)
	if code != http.StatusOK {
		t.Fatalf("stream: status %d", code)
	}
	frames, err = xyz.ReadFrames(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("stream did not parse as XYZ: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("stream returned %d frames, want 3", len(frames))
	}
	// 3 steps + 2 frames × 2 steps each.
	code, body = doReq(t, ts.Client(), http.MethodGet, base, nil)
	if code != http.StatusOK {
		t.Fatalf("info after stream: status %d", code)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("info response: %v", err)
	}
	if want := int64(nSteps + 2*2); info.Step != want {
		t.Errorf("after stream info.Step = %d, want %d", info.Step, want)
	}

	// Per-tenant telemetry snapshot exists and has engine phases.
	code, body = doReq(t, ts.Client(), http.MethodGet, base+"/telemetry.json", nil)
	if code != http.StatusOK {
		t.Fatalf("tenant telemetry: status %d", code)
	}
	var tele struct {
		Steps  int64 `json:"steps"`
		Phases []struct {
			Phase string `json:"phase"`
			Count int64  `json:"count"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(body, &tele); err != nil {
		t.Fatalf("tenant telemetry response: %v", err)
	}
	if len(tele.Phases) == 0 {
		t.Error("tenant telemetry has no phases")
	}

	// Close → 204, double-close → clean 404, step-after-close → 404.
	code, _ = doReq(t, ts.Client(), http.MethodDelete, base, nil)
	if code != http.StatusNoContent {
		t.Fatalf("close: status %d, want 204", code)
	}
	code, _ = doReq(t, ts.Client(), http.MethodDelete, base, nil)
	if code != http.StatusNotFound {
		t.Fatalf("double close: status %d, want 404", code)
	}
	code, _ = doReq(t, ts.Client(), http.MethodPost, base+"/step", nil)
	if code != http.StatusNotFound {
		t.Fatalf("step after close: status %d, want 404", code)
	}
	if n := s.SessionCount(); n != 0 {
		t.Errorf("%d sessions left after close", n)
	}
}

// TestIdleGCEviction verifies that idle sessions are evicted and evicted
// ids answer 404 afterwards.
func TestIdleGCEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, IdleTimeout: time.Millisecond, GCInterval: -1})
	idIdle := createTestSession(t, ts)
	idBusy := createTestSession(t, ts)

	time.Sleep(5 * time.Millisecond)
	// Touch one session so only the other is stale.
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions/"+idBusy+"/step", nil); code != http.StatusOK {
		t.Fatalf("keep-alive step: status %d", code)
	}
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle evicted %d sessions, want 1", n)
	}
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/sessions/"+idIdle, nil); code != http.StatusNotFound {
		t.Errorf("evicted session answers %d, want 404", code)
	}
	if code, _ := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/sessions/"+idBusy, nil); code != http.StatusOK {
		t.Errorf("live session answers %d, want 200", code)
	}
	st := s.StatsNow()
	if st.EvictedTotal != 1 {
		t.Errorf("stats report %d evictions, want 1", st.EvictedTotal)
	}
}

// TestBackgroundGCSweeper exercises the gcLoop path end to end.
func TestBackgroundGCSweeper(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, IdleTimeout: time.Millisecond, GCInterval: 5 * time.Millisecond})
	createTestSession(t, ts)
	deadline := time.Now().Add(2 * time.Second)
	for s.SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never evicted the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEnqueueSheds verifies admission control at the unit level: with no
// batcher draining the queue, a full queue sheds non-blocking enqueues
// with 429 and counts them.
func TestEnqueueSheds(t *testing.T) {
	// Hand-built server: queue capacity 1 and no batcher goroutine, so the
	// queue state is fully deterministic.
	s := &Server{
		cfg:   Config{QueueDepth: 1}.withDefaults(),
		stepQ: make(chan *stepReq, 1),
		quit:  make(chan struct{}),
	}
	rq := func() *stepReq { return &stepReq{done: make(chan stepResult, 1)} }
	if hErr := s.enqueue(rq(), false); hErr != nil {
		t.Fatalf("first enqueue failed: %d %s", hErr.code, hErr.msg)
	}
	hErr := s.enqueue(rq(), false)
	if hErr == nil || hErr.code != http.StatusTooManyRequests {
		t.Fatalf("second enqueue = %+v, want 429", hErr)
	}
	if got := s.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// The 429 must carry Retry-After.
	rec := httptest.NewRecorder()
	hErr.write(rec)
	if got := rec.Header().Get("Retry-After"); got != retryAfter {
		t.Errorf("Retry-After = %q, want %q", got, retryAfter)
	}
}

// TestSessionCap verifies the MaxSessions admission limit sheds creates
// with 429.
func TestSessionCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 2})
	createTestSession(t, ts)
	createTestSession(t, ts)
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions?workload=lj-gas&n=3", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("create over cap: status %d (%s), want 429", code, body)
	}
}

// TestStatsAndMetrics checks the service observability surface: /v1/stats
// counters move, /metrics carries both serve_* and recorder series.
func TestStatsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createTestSession(t, ts)
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions/"+id+"/step?n=2", nil); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}

	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats response: %v", err)
	}
	if st.ActiveSessions != 1 || st.CreatedTotal != 1 || st.StepsTotal != 2 || st.Batches < 1 {
		t.Errorf("stats = %+v, want 1 session, 1 created, 2 steps, ≥1 batch", st)
	}
	if st.StepLatency.Count != 1 || st.StepLatency.P99Us <= 0 {
		t.Errorf("step latency summary = %+v, want 1 sample with positive p99", st.StepLatency)
	}

	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"serve_sessions_active 1",
		"serve_steps_total 2",
		"serve_step_latency_seconds_count 1",
		"mw_", // the service recorder's series follow
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = doReq(t, ts.Client(), http.MethodGet, ts.URL+"/telemetry.json", nil)
	if code != http.StatusOK {
		t.Fatalf("/telemetry.json: status %d", code)
	}
	var tele struct {
		Phases []struct {
			Phase string `json:"phase"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(body, &tele); err != nil {
		t.Fatalf("telemetry response: %v", err)
	}
	var names []string
	for _, p := range tele.Phases {
		names = append(names, p.Phase)
	}
	if fmt.Sprint(names) != fmt.Sprint(svcPhases()) {
		t.Errorf("service phases = %v, want %v", names, svcPhases())
	}
}

// TestCreateFromModel uploads an MML document and runs it.
func TestCreateFromModel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	model := `{"version":1,"name":"pair","box":{"l":[20,20,20],"periodic":true},
		"atoms":[{"el":"Ar","p":[8,10,10]},{"el":"Ar","p":[12,10,10]}],
		"engine":{"dt":1,"lj_cutoff":6,"skin":0.5}}`
	code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader(model))
	if code != http.StatusCreated {
		t.Fatalf("model create: status %d, body %s", code, body)
	}
	var created createdInfo
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v", err)
	}
	if created.Atoms != 2 || created.Workload != "pair" {
		t.Errorf("created = %+v, want 2 atoms named pair", created)
	}
	code, _ = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/step", nil)
	if code != http.StatusOK {
		t.Errorf("stepping model session: status %d", code)
	}
}

// TestCreateRejectsOversizeAndGarbage covers the untrusted-upload guards.
func TestCreateRejectsOversizeAndGarbage(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxAtoms: 1, MaxBodyBytes: 512})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "not json at all", http.StatusBadRequest},
		{"unknown field", `{"version":1,"bogus":true}`, http.StatusBadRequest},
		{"too many atoms", `{"version":1,"name":"x","box":{"l":[20,20,20],"periodic":true},
			"atoms":[{"el":"Ar","p":[8,10,10]},{"el":"Ar","p":[12,10,10]}],
			"engine":{"dt":1,"lj_cutoff":6,"skin":0.5}}`, http.StatusRequestEntityTooLarge},
		{"body too large", `{"version":1,"pad":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader(tc.body))
			if code != tc.want {
				t.Errorf("status %d (%s), want %d", code, body, tc.want)
			}
		})
	}
}

// TestServerCloseIdempotent double-closes the server and checks requests
// after shutdown fail cleanly rather than hanging or panicking.
func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer(Config{Workers: 1, GCInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	s.Close()
	code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions?workload=lj-gas&n=3", nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("create after shutdown: status %d, want 503", code)
	}
}
