package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mw/internal/telemetry"
	"mw/internal/tracing"
)

// traceIDSet parses a Chrome trace JSON body and collects every trace_id
// argument — the set of requests that have a span tree in the artifact.
func traceIDSet(t *testing.T, data []byte) map[string]bool {
	t.Helper()
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				TraceID string `json:"trace_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("parsing trace JSON: %v", err)
	}
	ids := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Args.TraceID != "" {
			ids[ev.Args.TraceID] = true
		}
	}
	return ids
}

// TestRequestTraceEndToEnd drives traced steps through the full stack and
// checks the whole observability story: traceparent response headers, the
// trace id echoed in the step body, a valid /v1/trace span-tree artifact
// containing those ids, and attribution components on /telemetry.json.
func TestRequestTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TraceSample: 1})
	id := createTestSession(t, ts)
	base := ts.URL + "/v1/sessions/" + id

	upstream := newTraceContext()
	seen := map[string]bool{}
	const nSteps = 6
	for i := 0; i < nSteps; i++ {
		req, err := http.NewRequest(http.MethodPost, base+"/step", nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// First request arrives with an upstream trace context; the
			// service must keep its trace id.
			req.Header.Set("traceparent", upstream.Traceparent())
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		var res struct {
			TraceID     string  `json:"trace_id"`
			WallMicros  float64 `json:"wall_us"`
			QueueWaitUS float64 `json:"queue_wait_us"`
			BatchWaitUS float64 `json:"batch_wait_us"`
			ComputeUS   float64 `json:"compute_us"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("step %d response: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d", i, resp.StatusCode)
		}
		h := resp.Header.Get("traceparent")
		tc, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("step %d: malformed response traceparent %q", i, h)
		}
		if res.TraceID != tc.TraceIDString() {
			t.Errorf("step %d: body trace_id %q != header trace id %q", i, res.TraceID, tc.TraceIDString())
		}
		if i == 0 && res.TraceID != upstream.TraceIDString() {
			t.Errorf("inbound trace id %q not propagated (got %q)", upstream.TraceIDString(), res.TraceID)
		}
		if res.ComputeUS <= 0 {
			t.Errorf("step %d: compute component %.0f µs, want > 0", i, res.ComputeUS)
		}
		sum := res.QueueWaitUS + res.BatchWaitUS + res.ComputeUS
		if sum > res.WallMicros*1.01+1 {
			t.Errorf("step %d: components sum %.0f µs exceeds e2e %.0f µs", i, sum, res.WallMicros)
		}
		seen[res.TraceID] = true
	}

	// The trace artifact must validate and hold a span tree for every id
	// the step responses named.
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/trace: status %d", code)
	}
	if _, err := tracing.ValidateChromeTrace(body); err != nil {
		t.Fatalf("/v1/trace failed validation: %v", err)
	}
	inTrace := traceIDSet(t, body)
	for id := range seen {
		if !inTrace[id] {
			t.Errorf("trace id %s from a step response has no span tree in /v1/trace", id)
		}
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "B" {
			names[ev.Name]++
		}
	}
	for _, want := range []string{"request:step", "compute", "serialize", "batch"} {
		if names[want] == 0 {
			t.Errorf("/v1/trace has no %q spans (have %v)", want, names)
		}
	}
	// The engine phases drained from the tenant recorder nest inside
	// compute; lj-gas always runs a force phase.
	if names["force"] == 0 {
		t.Errorf("/v1/trace has no tenant engine phase spans (have %v)", names)
	}

	// Exemplar correctness: every exemplar trace id exported by the
	// service and session telemetry bodies resolves in the artifact.
	for _, path := range []string{ts.URL + "/telemetry.json", base + "/telemetry.json"} {
		code, teleBody := doReq(t, ts.Client(), http.MethodGet, path, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		var tele struct {
			Attribution []AttrComponent `json:"attribution"`
		}
		if err := json.Unmarshal(teleBody, &tele); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(tele.Attribution) != attrComponents {
			t.Fatalf("%s: %d attribution components, want %d", path, len(tele.Attribution), attrComponents)
		}
		exemplars := 0
		for _, ac := range tele.Attribution {
			if ac.Latency.Count == 0 && ac.Component != "straggler_share" && ac.Component != "serialize" {
				t.Errorf("%s: component %s observed nothing", path, ac.Component)
			}
			for _, ex := range ac.Exemplars {
				exemplars++
				if !inTrace[ex.TraceID] {
					t.Errorf("%s: exemplar %s (%s) does not resolve in /v1/trace",
						path, ex.TraceID, ac.Component)
				}
			}
		}
		if exemplars == 0 {
			t.Errorf("%s: no exemplars despite TraceSample=1", path)
		}
	}
}

// TestSLOEndpoint checks /v1/slo: an impossible target makes every request
// bad, so the burn rate must saturate at 1/budget for the service and the
// tenant, and the shed path must count against the budget too.
func TestSLOEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SLOTargetP99: time.Nanosecond})
	id := createTestSession(t, ts)
	for i := 0; i < 4; i++ {
		code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions/"+id+"/step", nil)
		if code != http.StatusOK {
			t.Fatalf("step %d: status %d", i, code)
		}
	}
	code, body := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/v1/slo?limit=5", nil)
	if code != http.StatusOK {
		t.Fatalf("/v1/slo: status %d", code)
	}
	var rep SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.BudgetPct != 1 {
		t.Errorf("budget %.2f%%, want 1%%", rep.BudgetPct)
	}
	if rep.Service.Requests != 4 || rep.Service.Bad != 4 {
		t.Errorf("service counted %d/%d bad, want 4/4", rep.Service.Bad, rep.Service.Requests)
	}
	if rep.Service.FastBurn != 1/sloBudget {
		t.Errorf("service fast burn %.1f, want %.1f", rep.Service.FastBurn, 1/sloBudget)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Session != id {
		t.Fatalf("tenants = %+v, want just %s", rep.Tenants, id)
	}
	if rep.Tenants[0].Bad != 4 {
		t.Errorf("tenant counted %d bad, want 4", rep.Tenants[0].Bad)
	}

	// The SLO gauges must be on /metrics.
	code, metrics := doReq(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{"slo_burn_rate{window=\"fast\"}", "slo_bad_total 4", "serve_attr_latency_seconds_count{component=\"compute\"}"} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTelemetryRingLeak is the per-tenant ring leak regression: every
// session creation takes a ring recorder, and every exit path — explicit
// close, idle-GC eviction, failed creation — must release it.
func TestTelemetryRingLeak(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 4, IdleTimeout: time.Millisecond})
	baseline := telemetry.LiveRings()

	ids := make([]string, 3)
	for i := range ids {
		ids[i] = createTestSession(t, ts)
	}
	if got := telemetry.LiveRings(); got != baseline+3 {
		t.Fatalf("LiveRings = %d after 3 creates, want %d", got, baseline+3)
	}

	// A creation rejected at the MaxSessions gate must not leak a ring.
	createTestSession(t, ts)
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions?workload=lj-gas&n=3", nil); code != http.StatusTooManyRequests {
		t.Fatalf("5th create: status %d, want 429", code)
	}
	// Nor may one rejected by parameter validation.
	if code, _ := doReq(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/sessions/"+ids[0], nil); code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}
	if code, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/v1/sessions?workload=lj-gas&n=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("n=abc create: status %d, want 400", code)
	}
	if got := telemetry.LiveRings(); got != baseline+3 {
		t.Fatalf("LiveRings = %d after failed creates + 1 close, want %d", got, baseline+3)
	}

	// Idle-GC eviction releases the rest.
	time.Sleep(5 * time.Millisecond)
	if n := s.EvictIdle(); n != 3 {
		t.Fatalf("EvictIdle evicted %d sessions, want 3", n)
	}
	if got := telemetry.LiveRings(); got != baseline {
		t.Fatalf("LiveRings = %d after eviction, want baseline %d — a tenant ring leaked", got, baseline)
	}
}
