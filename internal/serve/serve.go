// Package serve is mwserved's engine room: a long-running multi-tenant
// simulation service that multiplexes thousands of concurrent small
// simulations (the nanocar/salt/Al-1000 size class) over one shared worker
// pool from internal/pool.
//
// The design transfers the paper's single-process findings to a service:
// instead of one simulation fanning chunks out to N workers (where the §IV
// barriers and §II-B queue contention live), the service keeps every tenant
// simulation serial — a whole sim step is one task — and gets its
// parallelism across tenants. Many small steps batched through one pool is
// the hybrid task decomposition of Mangiardi & Meyer (arXiv:1611.00075)
// applied at the session level, and the pool topology (shared queue,
// per-worker queues, work stealing) remains selectable so the paper's
// queue-contention results can be re-measured under service load.
//
// The moving parts:
//
//   - Session lifecycle: create (named workload or uploaded MML model),
//     step, snapshot, stream, close, plus idle GC eviction.
//   - Per-step batching: step requests from all tenants land in one bounded
//     queue; the batcher drains it and fans the batch out over the pool
//     behind a latch barrier — exactly pool.RunPhase's shape, with sessions
//     as chunks.
//   - Admission control: a full queue sheds load with 429 + Retry-After
//     instead of queueing unboundedly; session creation is capped the same
//     way. Shedding is counted, not hidden.
//   - Telemetry: a service-level telemetry.Recorder (phases admit/step/
//     snapshot/stream/gc) feeds the existing /telemetry.json + /metrics
//     surface, and every session carries its own small ring recorder wired
//     into its engine, so per-tenant engine-phase histograms are one GET
//     away.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/pool"
	"mw/internal/telemetry"
)

// Service-level recorder phases. At most 7 fit the telemetry event format.
const (
	svcAdmit = iota
	svcStep
	svcSnapshot
	svcStream
	svcGC
)

// svcPhases is the phase-name table for the service recorder.
func svcPhases() []string { return []string{"admit", "step", "snapshot", "stream", "gc"} }

// Config tunes a Server. The zero value is usable: every field has a
// production default (explicitly, because PR 3's zero-value sentinel bugs
// are exactly what an all-int config invites: negative means "disable",
// zero means "default").
type Config struct {
	// Workers is the shared pool size (default GOMAXPROCS).
	Workers int
	// Queues selects the pool topology the batch fans out over (default
	// shared queue).
	Queues core.QueueTopology
	// MaxSessions caps concurrently live sessions; creation beyond it is
	// shed with 429 (default 4096).
	MaxSessions int
	// QueueDepth bounds pending step requests; a full queue sheds step
	// requests with 429 + Retry-After (default 1024).
	QueueDepth int
	// MaxBatch caps how many requests one pool pass coalesces (default 512).
	MaxBatch int
	// BatchWindow is how long the batcher waits after the first request of a
	// batch for more to coalesce. 0 (the default) means no artificial wait:
	// under load batches form naturally while the previous barrier runs.
	BatchWindow time.Duration
	// IdleTimeout evicts sessions untouched for this long (default 5m).
	IdleTimeout time.Duration
	// GCInterval is the idle-eviction sweep period (default 30s; negative
	// disables the background sweeper — tests call EvictIdle directly).
	GCInterval time.Duration
	// MaxStepsPerRequest clamps the step endpoint's n parameter (default 1000).
	MaxStepsPerRequest int
	// MaxFramesPerStream clamps a trajectory stream's frame count (default 10000).
	MaxFramesPerStream int
	// MaxStepsPerFrame clamps a stream's steps-between-frames (default 1000).
	MaxStepsPerFrame int
	// MaxAtoms caps uploaded model sizes (default 100000).
	MaxAtoms int
	// MaxBodyBytes caps upload body sizes (default 8 MiB).
	MaxBodyBytes int64
	// TenantRing is the per-session recorder ring capacity (default 256;
	// small, because there can be thousands of them).
	TenantRing int
	// TraceSample samples every K-th unheaded step request for request-
	// scoped tracing (default 64; negative disables tracing entirely).
	// Requests arriving with a sampled W3C traceparent header are always
	// traced while tracing is enabled, whatever K says.
	TraceSample int
	// TraceRing caps how many completed request traces /v1/trace retains
	// (default 512).
	TraceRing int
	// SLOTargetP99 is the per-tenant latency target a step request is
	// scored against: >target (or shed) burns the 1% error budget
	// (default 250ms).
	SLOTargetP99 time.Duration
	// SLOFastWindow / SLOSlowWindow are the two burn-rate windows
	// (defaults 5m and 1h).
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.GCInterval == 0 {
		c.GCInterval = 30 * time.Second
	}
	if c.MaxStepsPerRequest <= 0 {
		c.MaxStepsPerRequest = 1000
	}
	if c.MaxFramesPerStream <= 0 {
		c.MaxFramesPerStream = 10000
	}
	if c.MaxStepsPerFrame <= 0 {
		c.MaxStepsPerFrame = 1000
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 100000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.TenantRing <= 0 {
		c.TenantRing = 256
	}
	if c.TraceSample == 0 {
		c.TraceSample = 64
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 512
	}
	if c.SLOTargetP99 <= 0 {
		c.SLOTargetP99 = 250 * time.Millisecond
	}
	if c.SLOFastWindow <= 0 {
		c.SLOFastWindow = 5 * time.Minute
	}
	if c.SLOSlowWindow <= 0 {
		c.SLOSlowWindow = time.Hour
	}
	return c
}

// Session is one tenant simulation. Its engine always runs serial
// (Threads = 1): the service's parallelism is across sessions, so a whole
// step is one pool task and the trajectory is bitwise-identical to a
// direct serial core.Simulation run of the same system.
type Session struct {
	ID       string
	Workload string
	Atoms    int

	// mu serializes all engine access (steps, snapshots, streams, close).
	mu     sync.Mutex
	sim    *core.Simulation
	closed bool

	// rec is the per-tenant ring recorder wired into the engine: the same
	// telemetry.Recorder the single-process engine uses, sized small.
	// Released (for the LiveRings leak ledger) when the session closes.
	rec *telemetry.Recorder
	// cursor is the drain position request tracing resumes from when it
	// collects this tenant's engine-phase spans; guarded by mu.
	cursor telemetry.DrainCursor
	// stepHist records this tenant's step-request service latency
	// (enqueue → batch completion, queue wait included).
	stepHist telemetry.Histogram
	// attr decomposes this tenant's step latency into queue_wait /
	// batch_wait / compute / straggler_share / serialize exemplar
	// histograms; slo scores it against the service's p99 target.
	attr attrSet
	slo  *sloTracker

	created  time.Time
	lastUsed atomic.Int64 // unix nanos
	steps    atomic.Int64 // engine steps served
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// IdleFor returns how long the session has gone without a request.
func (s *Session) IdleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.lastUsed.Load())
}

// Server is the multi-tenant simulation service.
type Server struct {
	cfg Config
	rec *telemetry.Recorder // service-level phases: admit/step/snapshot/stream/gc

	mu       sync.RWMutex
	sessions map[string]*Session

	stepQ chan *stepReq
	quit  chan struct{}
	wg    sync.WaitGroup

	// Exactly one of the three pool fields is non-nil, mirroring the
	// engine's topology selection.
	fixed    *pool.FixedPool
	pinned   *pool.PinnedPools
	stealing *pool.StealingPools

	closed atomic.Bool

	start time.Time

	// Counters. stepLat is the service-wide step-request latency histogram
	// (what the /metrics tail-latency series and /v1/stats percentiles read).
	created     atomic.Int64
	evicted     atomic.Int64
	closedCount atomic.Int64
	stepsTotal  atomic.Int64
	stepReqs    atomic.Int64
	shed        atomic.Int64
	batches     atomic.Int64
	batchedReqs atomic.Int64
	batchSeq    atomic.Int64
	stepLat     telemetry.Histogram

	// Request-scoped observability: the 1-in-K sampling counter, the ring
	// of completed request traces behind /v1/trace, the batch-span track
	// they are stitched against, the service-wide attribution histograms
	// and the service-wide SLO tracker.
	traceSeq   atomic.Int64
	reqTraces  *traceLog
	batchSpans *batchLog
	svcAttr    attrSet
	slo        *sloTracker
}

// NewServer starts the worker pool, the batcher and (unless disabled) the
// idle-GC sweeper.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		rec:        telemetry.NewRecorder(cfg.Workers, svcPhases()),
		sessions:   make(map[string]*Session),
		stepQ:      make(chan *stepReq, cfg.QueueDepth),
		quit:       make(chan struct{}),
		start:      time.Now(),
		reqTraces:  newTraceLog(cfg.TraceRing),
		batchSpans: newBatchLog(1024),
		slo:        newSLOTracker(cfg.SLOTargetP99, cfg.SLOFastWindow, cfg.SLOSlowWindow),
	}
	switch cfg.Queues {
	case core.PerWorkerQueues:
		s.pinned = pool.NewPinnedPools(cfg.Workers)
	case core.WorkStealingQueues:
		s.stealing = pool.NewStealingPools(cfg.Workers)
	default:
		s.fixed = pool.NewFixedPool(cfg.Workers)
	}
	s.wg.Add(1)
	go s.batcher()
	if cfg.GCInterval > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s
}

// Close stops accepting work, fails queued requests with 503, shuts the
// pool down and closes every session. Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.quit)
	s.wg.Wait() // batcher drained the queue; gc loop exited
	switch {
	case s.fixed != nil:
		s.fixed.Shutdown()
	case s.pinned != nil:
		s.pinned.Shutdown()
	case s.stealing != nil:
		s.stealing.Shutdown()
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.closeSession(id)
	}
}

// Workers returns the shared pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// Uptime returns how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// newSessionID returns a fresh 16-hex-char session ID.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// createSession admits a new tenant around an already-materialized system.
// The engine is forced serial; parallelism is across sessions. The
// bootstrap force evaluation happens here, on the caller's goroutine, so
// the pool never sees non-step work.
func (s *Server) createSession(name string, sys *atom.System, cfg core.Config) (*Session, *httpError) {
	if s.closed.Load() {
		return nil, &httpError{http.StatusServiceUnavailable, "server shutting down"}
	}
	if n := s.SessionCount(); n >= s.cfg.MaxSessions {
		return nil, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)}
	}
	t0 := time.Now()
	rec := telemetry.NewRecorderSize(1, core.PhaseNames(), s.cfg.TenantRing)
	cfg.Threads = 1
	cfg.Telemetry = rec
	sim, err := core.New(sys, cfg)
	if err != nil {
		// The recorder was minted for an engine that never existed; retire
		// its rings or the LiveRings ledger leaks one entry per bad model.
		rec.Release()
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	sess := &Session{
		ID:       newSessionID(),
		Workload: name,
		Atoms:    sys.N(),
		sim:      sim,
		rec:      rec,
		slo:      newSLOTracker(s.cfg.SLOTargetP99, s.cfg.SLOFastWindow, s.cfg.SLOSlowWindow),
		created:  t0,
	}
	sess.touch()

	s.mu.Lock()
	// Re-check the cap under the lock: the read above was advisory.
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		sim.Close()
		rec.Release()
		return nil, &httpError{http.StatusTooManyRequests,
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)}
	}
	s.sessions[sess.ID] = sess
	s.mu.Unlock()

	s.created.Add(1)
	seq := int(s.created.Load())
	s.rec.PhaseBegin(seq, svcAdmit)
	s.rec.PhaseEnd(seq, svcAdmit, time.Since(t0), nil)
	return sess, nil
}

// lookup returns the live session or nil.
func (s *Server) lookup(id string) *Session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// closeSession removes the session from the registry and shuts its engine
// down. Returns false when the id is unknown (already closed or never
// existed) — the handler maps that to 404, making double-close clean.
func (s *Server) closeSession(id string) bool {
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	sess.mu.Lock()
	sess.closed = true
	sess.sim.Close()
	// Retire the tenant's ring recorder with the session: eviction must
	// return the LiveRings ledger to baseline (the per-tenant-ring leak
	// regression test drives exactly this path through EvictIdle).
	sess.rec.Release()
	sess.mu.Unlock()
	s.closedCount.Add(1)
	return true
}

// EvictIdle closes every session idle longer than the configured timeout
// and returns how many were evicted. The background sweeper calls it each
// GCInterval; tests and operators can call it directly.
func (s *Server) EvictIdle() int {
	t0 := time.Now()
	s.mu.RLock()
	var stale []string
	for id, sess := range s.sessions {
		if sess.IdleFor() > s.cfg.IdleTimeout {
			stale = append(stale, id)
		}
	}
	s.mu.RUnlock()
	n := 0
	for _, id := range stale {
		if s.closeSession(id) {
			n++
		}
	}
	if n > 0 {
		s.evicted.Add(int64(n))
		seq := int(s.evicted.Load())
		s.rec.PhaseBegin(seq, svcGC)
		s.rec.PhaseEnd(seq, svcGC, time.Since(t0), nil)
	}
	return n
}

func (s *Server) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.EvictIdle()
		case <-s.quit:
			return
		}
	}
}

// Serve starts the service's HTTP endpoint on addr (":0" picks a free
// port) and returns the http.Server and the bound address — the same shape
// as telemetry.Serve, so callers embed the service the same way they embed
// the telemetry endpoint.
func (s *Server) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
