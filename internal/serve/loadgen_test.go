package serve

import (
	"net/url"
	"testing"
	"time"
)

// TestRunSweep drives a full sweep against an in-process server and
// validates the report — the same path mwload and the bench serve rows
// use.
func TestRunSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	rep, err := RunSweep(ts.URL, SweepOptions{
		Workload:      "lj-gas",
		WorkloadQuery: url.Values{"n": {"3"}},
		Sessions:      6,
		StepsPerReq:   2,
		NRuns:         2,
		Concurrency:   []int{2, 4},
		Retries:       4,
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report failed validation: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Requests != 12 { // 6 sessions × 2 runs
			t.Errorf("c=%d: %d requests, want 12", row.Concurrency, row.Requests)
		}
		if row.StepsPerSec <= 0 || row.P99us <= 0 {
			t.Errorf("c=%d: empty throughput/latency: %+v", row.Concurrency, row)
		}
	}
}

// TestAttrSplit pins the attribution decomposition on synthetic samples:
// ingress is the client-side e2e minus the server wall (clamped at zero),
// the p99-rank sum is exactly ingress+queue+batch+compute, and the
// residual is the in-server slack as a share of e2e.
func TestAttrSplit(t *testing.T) {
	// Sorted by E2EUs, as runLevel guarantees. The last (p99-rank at n=4)
	// sample: e2e 1000, wall 900 → ingress 100; components 50+30+700=780;
	// sum 880; residual (1000−880)/1000 = 12%.
	samples := []stepSample{
		{E2EUs: 100, WallUs: 90, QueueUs: 5, BatchUs: 2, ComputeUs: 80},
		{E2EUs: 200, WallUs: 210, QueueUs: 8, BatchUs: 3, ComputeUs: 150}, // wall > e2e → ingress 0
		{E2EUs: 500, WallUs: 450, QueueUs: 20, BatchUs: 10, ComputeUs: 400, TraceID: "aa"},
		{E2EUs: 1000, WallUs: 900, QueueUs: 50, BatchUs: 30, ComputeUs: 700, TraceID: "bb"},
	}
	a := attrSplit(samples)
	if a.P99TraceID != "bb" || a.P99E2Eus != 1000 {
		t.Fatalf("p99-rank sample = %q/%g, want bb/1000", a.P99TraceID, a.P99E2Eus)
	}
	if a.P99IngressUs != 100 {
		t.Errorf("P99IngressUs = %g, want 100 (e2e − wall)", a.P99IngressUs)
	}
	if want := 100.0 + 50 + 30 + 700; a.P99SumUs != want {
		t.Errorf("P99SumUs = %g, want %g (ingress+qw+bw+comp)", a.P99SumUs, want)
	}
	if want := 12.0; a.ResidualPct != want {
		t.Errorf("ResidualPct = %g, want %g", a.ResidualPct, want)
	}
	if (stepSample{E2EUs: 200, WallUs: 210}).IngressUs() != 0 {
		t.Error("ingress not clamped at zero when wall exceeds e2e")
	}
	if a.IngressP50us > a.IngressP99us || a.QueueWaitP50us > a.QueueWaitP99us ||
		a.BatchWaitP50us > a.BatchWaitP99us || a.ComputeP50us > a.ComputeP99us {
		t.Errorf("component percentiles out of order: %+v", a)
	}
	if a.ComputeP99us != 700 || a.QueueWaitP99us != 50 {
		t.Errorf("component p99s = comp %g qw %g, want 700/50", a.ComputeP99us, a.QueueWaitP99us)
	}
}

// TestSweepValidateCatchesBadReports pins Validate's checks.
func TestSweepValidateCatchesBadReports(t *testing.T) {
	good := SweepReport{
		Sessions: 2, NRuns: 1, StepsPerReq: 1,
		Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, P50us: 1, P99us: 2, P999us: 3}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := []SweepReport{
		{},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 1, WallSeconds: 0.1, StepsPerSec: 20}}},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, Errors: 1}}},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, P50us: 5, P99us: 2, P999us: 3}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d passed validation", i)
		}
	}
}

// TestOversubscribeProbe forces shedding: queue depth 1 and tiny batches,
// so during each batch's barrier the queue is full and a no-retry burst
// must see 429s — and the server must stay healthy.
func TestOversubscribeProbe(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		MaxBatch:   2,
	})
	// 50 steps per request keeps each batch on the pool for a few
	// milliseconds, so the burst reliably finds the 1-deep queue full.
	shed, retryAfter, healthy, err := OversubscribeProbe(ts.URL, SweepOptions{
		Workload:      "lj-gas",
		WorkloadQuery: url.Values{"n": {"3"}},
		Sessions:      4,
		StepsPerReq:   50,
		Client:        ts.Client(),
	}, 24)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if !healthy {
		t.Error("server unhealthy after burst")
	}
	if shed == 0 {
		t.Error("no requests shed despite queue depth 1 under a 24-client burst")
	}
	if shed > 0 && len(retryAfter) == 0 {
		t.Error("shed requests recorded no Retry-After values")
	}
	for v, n := range retryAfter {
		if v == "(absent)" {
			t.Errorf("%d shed responses carried no Retry-After header", n)
		}
	}
}

// TestWaitHealthyTimeout verifies the failure path against a dead address.
func TestWaitHealthyTimeout(t *testing.T) {
	err := WaitHealthy("http://127.0.0.1:1", 100*time.Millisecond)
	if err == nil {
		t.Fatal("WaitHealthy succeeded against a closed port")
	}
}
