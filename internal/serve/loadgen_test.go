package serve

import (
	"net/url"
	"testing"
	"time"
)

// TestRunSweep drives a full sweep against an in-process server and
// validates the report — the same path mwload and the bench serve rows
// use.
func TestRunSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	rep, err := RunSweep(ts.URL, SweepOptions{
		Workload:      "lj-gas",
		WorkloadQuery: url.Values{"n": {"3"}},
		Sessions:      6,
		StepsPerReq:   2,
		NRuns:         2,
		Concurrency:   []int{2, 4},
		Retries:       4,
		Client:        ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report failed validation: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Requests != 12 { // 6 sessions × 2 runs
			t.Errorf("c=%d: %d requests, want 12", row.Concurrency, row.Requests)
		}
		if row.StepsPerSec <= 0 || row.P99us <= 0 {
			t.Errorf("c=%d: empty throughput/latency: %+v", row.Concurrency, row)
		}
	}
}

// TestSweepValidateCatchesBadReports pins Validate's checks.
func TestSweepValidateCatchesBadReports(t *testing.T) {
	good := SweepReport{
		Sessions: 2, NRuns: 1, StepsPerReq: 1,
		Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, P50us: 1, P99us: 2, P999us: 3}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	bad := []SweepReport{
		{},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 1, WallSeconds: 0.1, StepsPerSec: 20}}},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, Errors: 1}}},
		{Sessions: 2, NRuns: 1, Rows: []SweepRow{{Concurrency: 1, Requests: 2, WallSeconds: 0.1, StepsPerSec: 20, P50us: 5, P99us: 2, P999us: 3}}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d passed validation", i)
		}
	}
}

// TestOversubscribeProbe forces shedding: queue depth 1 and tiny batches,
// so during each batch's barrier the queue is full and a no-retry burst
// must see 429s — and the server must stay healthy.
func TestOversubscribeProbe(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		MaxBatch:   2,
	})
	// 50 steps per request keeps each batch on the pool for a few
	// milliseconds, so the burst reliably finds the 1-deep queue full.
	shed, healthy, err := OversubscribeProbe(ts.URL, SweepOptions{
		Workload:      "lj-gas",
		WorkloadQuery: url.Values{"n": {"3"}},
		Sessions:      4,
		StepsPerReq:   50,
		Client:        ts.Client(),
	}, 24)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if !healthy {
		t.Error("server unhealthy after burst")
	}
	if shed == 0 {
		t.Error("no requests shed despite queue depth 1 under a 24-client burst")
	}
}

// TestWaitHealthyTimeout verifies the failure path against a dead address.
func TestWaitHealthyTimeout(t *testing.T) {
	err := WaitHealthy("http://127.0.0.1:1", 100*time.Millisecond)
	if err == nil {
		t.Fatal("WaitHealthy succeeded against a closed port")
	}
}
