package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"mw/internal/core"
	"mw/internal/vec"
	"mw/internal/verify"
	"mw/internal/workload"
)

// fromBody reconstructs a core.Snapshot from the HTTP snapshot JSON.
// encoding/json emits shortest-round-trip float64 representations, so the
// reconstruction is bit-exact — which is what lets this test demand an
// identically-zero diff rather than a tolerance.
func fromBody(b snapshotBody) core.Snapshot {
	snap := core.Snapshot{
		Step:  b.Step,
		PE:    b.PE,
		Pos:   make([]vec.Vec3, len(b.Pos)),
		Vel:   make([]vec.Vec3, len(b.Vel)),
		Force: make([]vec.Vec3, len(b.Force)),
	}
	for i := range b.Pos {
		snap.Pos[i] = vec.New(b.Pos[i][0], b.Pos[i][1], b.Pos[i][2])
		snap.Vel[i] = vec.New(b.Vel[i][0], b.Vel[i][1], b.Vel[i][2])
		snap.Force[i] = vec.New(b.Force[i][0], b.Force[i][1], b.Force[i][2])
	}
	return snap
}

// TestServeDifferentialRow is the serve row of the differential matrix:
// the same workload stepped through mwserved (HTTP create, one step per
// request through the batch queue, HTTP snapshot each step) must produce a
// trajectory bitwise identical to a direct serial core.Simulation run.
// Sessions are forced Threads=1, so which pool worker runs a step must not
// matter — any deviation here means the service layer touched the physics.
func TestServeDifferentialRow(t *testing.T) {
	const steps = 8
	b := workload.LJGas(3, 120, true) // 27 atoms: fast, periodic, thermalized

	// Direct reference: the exact config a session runs under.
	cfg := b.Cfg
	cfg.Threads = 1
	ref, err := verify.ReferenceTrajectory(b.Sys, cfg, steps)
	if err != nil {
		t.Fatalf("reference trajectory: %v", err)
	}

	// Serve side: same workload materialized by the create handler. Two
	// workers so batches really cross goroutines.
	_, ts := newTestServer(t, Config{Workers: 2})
	code, body := doReq(t, ts.Client(), http.MethodPost,
		ts.URL+"/v1/sessions?workload=lj-gas&n=3&temp=120", nil)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v", err)
	}
	base := ts.URL + "/v1/sessions/" + created.ID

	getSnap := func() core.Snapshot {
		t.Helper()
		code, body := doReq(t, ts.Client(), http.MethodGet, base+"/snapshot", nil)
		if code != http.StatusOK {
			t.Fatalf("snapshot: status %d", code)
		}
		var sb snapshotBody
		if err := json.Unmarshal(body, &sb); err != nil {
			t.Fatalf("snapshot response: %v", err)
		}
		return fromBody(sb)
	}

	worst := getSnap().Diff(ref[0])
	for i := 1; i <= steps; i++ {
		if code, body := doReq(t, ts.Client(), http.MethodPost, base+"/step", nil); code != http.StatusOK {
			t.Fatalf("step %d: status %d, body %s", i, code, body)
		}
		worst = worst.Merge(getSnap().Diff(ref[i]))
	}
	if worst != (core.StateDiff{}) {
		t.Errorf("serve row deviates from direct serial run: %+v (must be identically zero)", worst)
	}
}
