package serve

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mw/internal/telemetry"
	"mw/internal/tracing"
)

// This file is the request-scoped half of the service's observability: a
// bounded ring of completed RequestTraces (one per sampled request),
// assembled from stamps taken at every hop of a step request's life —
// handler admission, batch queue, batcher dequeue, pool execution, latch
// barrier, response serialization — plus the tenant engine's own phase
// events drained from its ring recorder. /v1/trace exports the ring as a
// Chrome/Perfetto trace of per-request span trees laid out next to the
// batcher track, so "where did this tenant's p99 go" is one click, not a
// log-grep. All timestamps are µs in the *service* recorder's timebase;
// nothing here ever touches the FP state, so determinism is untouched.

// ReqPhaseSpan is one engine-phase instance that ran inside a traced
// request's compute window, re-based onto the service clock.
type ReqPhaseSpan struct {
	Phase   string `json:"phase"`
	BeginUS int64  `json:"begin_us"`
	EndUS   int64  `json:"end_us"`
}

// RequestTrace is the record of one sampled step request. The stamp fields
// are a monotone sequence on the service clock; the derived *US component
// fields are what the attribution histograms observe. A trace is published
// to the ring only after both of its writers (the HTTP handler goroutine
// and the batch/pool side) are done with it, so readers never see a
// half-filled record.
type RequestTrace struct {
	TraceID   string `json:"trace_id"`
	SpanID    string `json:"span_id"`
	Session   string `json:"session"`
	Workload  string `json:"workload"`
	Steps     int    `json:"steps"`
	Batch     int    `json:"batch,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	Status    int    `json:"status"`

	StartUS     int64 `json:"start_us"`               // handler entry
	EnqueueUS   int64 `json:"enqueue_us,omitempty"`   // admitted to the step queue
	DequeueUS   int64 `json:"dequeue_us,omitempty"`   // batcher picked the batch up
	ExecBeginUS int64 `json:"exec_begin_us,omitempty"` // pool worker holds the session lock
	ExecEndUS   int64 `json:"exec_end_us,omitempty"`  // sim.Run returned
	BarrierUS   int64 `json:"barrier_us,omitempty"`   // the batch's latch opened
	ReplyUS     int64 `json:"reply_us,omitempty"`     // handler got the result; serialize begins
	DoneUS      int64 `json:"done_us"`                // response body written

	QueueWaitUS int64 `json:"queue_wait_us"`
	BatchWaitUS int64 `json:"batch_wait_us"`
	ComputeUS   int64 `json:"compute_us"`
	// StragglerUS is how long the batch barrier stayed closed after this
	// request's own compute finished — cost this request imposed on the
	// batcher's next pickup, not a component of this request's latency
	// (the reply is sent before the barrier trips).
	StragglerUS int64 `json:"straggler_us"`
	SerializeUS int64 `json:"serialize_us"`

	Phases []ReqPhaseSpan `json:"phases,omitempty"`

	// pending counts the writers still filling the record (handler +
	// batch side); the last one to finish publishes it to the ring.
	pending atomic.Int32
	log     *traceLog
}

// finishWriter retires one of the trace's writers and publishes the record
// once both are done.
func (rt *RequestTrace) finishWriter() {
	if rt.pending.Add(-1) == 0 && rt.log != nil {
		rt.log.add(rt)
	}
}

// traceLog is the bounded ring of completed request traces, the backing
// store of /v1/trace and the referent set every exported exemplar is
// filtered against. Mutex-guarded: it is touched once per *sampled*
// request completion and on export, never on the per-request fast path.
type traceLog struct {
	mu    sync.Mutex
	buf   []*RequestTrace
	next  int
	total int64
}

func newTraceLog(capacity int) *traceLog {
	return &traceLog{buf: make([]*RequestTrace, 0, capacity)}
}

func (l *traceLog) add(rt *RequestTrace) {
	l.mu.Lock()
	if cap(l.buf) == 0 {
		l.mu.Unlock()
		return
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rt)
	} else {
		l.buf[l.next] = rt
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
}

// snapshot returns the retained traces ordered oldest-first.
func (l *traceLog) snapshot() []*RequestTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*RequestTrace, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
		return out
	}
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// ids returns the set of retained trace ids — what exported exemplars are
// filtered against so every exemplar resolves to a span tree.
func (l *traceLog) ids() map[string]bool {
	set := map[string]bool{}
	for _, rt := range l.snapshot() {
		set[rt.TraceID] = true
	}
	return set
}

// batchSpan is one batcher pickup: the tid-0 track /v1/trace stitches the
// request lanes against (the serve-level analogue of PR 5's barrier track).
type batchSpan struct {
	Seq     int
	Size    int
	BeginUS int64
	EndUS   int64
}

// batchLog is the bounded ring of recent batch spans. Single producer (the
// batcher goroutine); the mutex is for export readers.
type batchLog struct {
	mu   sync.Mutex
	buf  []batchSpan
	next int
}

func newBatchLog(capacity int) *batchLog {
	return &batchLog{buf: make([]batchSpan, 0, capacity)}
}

func (l *batchLog) add(b batchSpan) {
	l.mu.Lock()
	if cap(l.buf) == 0 {
		l.mu.Unlock()
		return
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, b)
	} else {
		l.buf[l.next] = b
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.mu.Unlock()
}

func (l *batchLog) snapshot() []batchSpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]batchSpan, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
	} else {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BeginUS < out[j].BeginUS })
	return out
}

// drainRequestPhases collects the engine-phase spans the tenant recorder
// saw during this request's compute window, re-based onto the service
// clock. Called under sess.mu (the drain cursor is session state), right
// after sim.Run, by the pool worker executing the step — the tenant engine
// is serial, so its phase begin/end events pair up like brackets. sinceUS
// (tenant clock) fences off events left in the ring by earlier untraced
// requests; offsetUS rebases the tenant recorder's timebase onto the
// service one; spans are clamped into [beginUS, endUS] so clock skew
// between the two time reads can never make a child span escape its parent.
func drainRequestPhases(sess *Session, sinceUS, offsetUS, beginUS, endUS int64) []ReqPhaseSpan {
	var spans []ReqPhaseSpan
	open := map[string]int64{}
	clamp := func(us int64) int64 {
		if us < beginUS {
			return beginUS
		}
		if us > endUS {
			return endUS
		}
		return us
	}
	sess.cursor.Lost = 0
	sess.rec.Drain(&sess.cursor, func(owner int, e telemetry.Event) {
		if owner != -1 || e.Phase == "" || e.AtUS < sinceUS {
			return // only coordinator phase events from this compute window
		}
		switch e.Kind {
		case "phase-begin":
			open[e.Phase] = e.AtUS
		case "phase-end":
			b, ok := open[e.Phase]
			if !ok {
				return // begin fell off the ring; drop the half-span
			}
			delete(open, e.Phase)
			spans = append(spans, ReqPhaseSpan{
				Phase:   e.Phase,
				BeginUS: clamp(b + offsetUS),
				EndUS:   clamp(e.AtUS + offsetUS),
			})
		}
	})
	return spans
}

// WriteRequestTrace exports the retained request traces plus the batch
// track as Chrome trace-event JSON (the /v1/trace body). Requests overlap
// in time, and a Chrome-trace track is a stack, so concurrent requests are
// laid out on parallel lanes: each trace takes the first lane free at its
// start time (greedy interval coloring) — under load the lane count ≈ the
// client concurrency, which is itself worth seeing in the viewer.
func (s *Server) WriteRequestTrace(w io.Writer) error {
	traces := s.reqTraces.snapshot()
	batches := s.batchSpans.snapshot()

	tracks := []tracing.Track{{Tid: 0, Name: "batcher (batches)", SortIndex: -1}}
	var spans []tracing.Span
	for _, b := range batches {
		spans = append(spans, tracing.Span{
			Name: "batch", Cat: "batch", Tid: 0, BeginUS: b.BeginUS, EndUS: b.EndUS,
			Args: map[string]any{"seq": b.Seq, "size": b.Size},
		})
	}

	sort.SliceStable(traces, func(i, j int) bool { return traces[i].StartUS < traces[j].StartUS })
	var laneEnd []int64
	for _, rt := range traces {
		lane := -1
		for i, end := range laneEnd {
			if end <= rt.StartUS {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = rt.DoneUS
		spans = append(spans, requestSpans(rt, lane+1)...)
	}
	for lane := range laneEnd {
		tracks = append(tracks, tracing.Track{
			Tid: lane + 1, Name: "request lane " + strconv.Itoa(lane), SortIndex: lane + 1,
		})
	}
	return tracing.WriteSpans(w, "mwserved requests", tracks, spans, nil)
}

// requestSpans lays one trace out as a span tree on its lane: the outer
// request span, then the sequential queue-wait → batch-assembly → compute →
// serialize children, with the tenant's engine phases nested inside
// compute. Stamps are clamped to a monotone sequence so a record truncated
// by an error path still renders as a valid (if partial) tree.
func requestSpans(rt *RequestTrace, tid int) []tracing.Span {
	out := make([]tracing.Span, 0, 5+len(rt.Phases))
	args := map[string]any{
		"trace_id": rt.TraceID, "span_id": rt.SpanID,
		"session": rt.Session, "workload": rt.Workload,
		"steps": rt.Steps, "status": rt.Status,
	}
	if rt.Batch != 0 {
		args["batch"] = rt.Batch
		args["batch_size"] = rt.BatchSize
	}
	if rt.StragglerUS > 0 {
		args["straggler_share_us"] = rt.StragglerUS
	}
	done := rt.DoneUS
	if done < rt.StartUS {
		done = rt.StartUS
	}
	out = append(out, tracing.Span{
		Name: "request:step", Cat: "request", Tid: tid,
		BeginUS: rt.StartUS, EndUS: done, Args: args,
	})
	child := func(name string, begin, end int64) {
		if begin <= 0 || end <= 0 {
			return
		}
		if begin < rt.StartUS {
			begin = rt.StartUS
		}
		if end > done {
			end = done
		}
		if end < begin {
			end = begin
		}
		out = append(out, tracing.Span{Name: name, Cat: "request", Tid: tid, BeginUS: begin, EndUS: end})
	}
	child("queue-wait", rt.EnqueueUS, rt.DequeueUS)
	child("batch-assembly", rt.DequeueUS, rt.ExecBeginUS)
	child("compute", rt.ExecBeginUS, rt.ExecEndUS)
	child("serialize", rt.ReplyUS, rt.DoneUS)
	for _, ph := range rt.Phases {
		b, e := ph.BeginUS, ph.EndUS
		if b < rt.ExecBeginUS {
			b = rt.ExecBeginUS
		}
		if e > rt.ExecEndUS {
			e = rt.ExecEndUS
		}
		if e < b {
			continue
		}
		out = append(out, tracing.Span{Name: ph.Phase, Cat: "phase", Tid: tid, BeginUS: b, EndUS: e})
	}
	return out
}
