package serve

import (
	"sort"
	"sync"
	"time"
)

// Per-tenant SLO tracking: the target is a p99 latency, so the error
// budget is 1% — a request is "bad" when it exceeds the target or is shed,
// and the burn rate is the bad fraction divided by that 1% budget (burn 1.0
// = exactly spending the budget, >1 = on track to violate the SLO). Burn is
// computed over two rotating windows (the multiwindow alerting shape: the
// fast window catches an acute regression, the slow one a sustained one).

// sloBudget is the allowed bad fraction implied by a p99 target.
const sloBudget = 0.01

// sloBucketCount is the rotation granularity of each burn window: burn
// reads cover between (N-1)/N and N/N of the nominal window length.
const sloBucketCount = 6

// sloWindow is one rotating-bucket counter window. Mutex-guarded; it is
// touched once per request completion, which is noise next to a step.
type sloWindow struct {
	mu       sync.Mutex
	span     time.Duration
	buckets  [sloBucketCount]struct{ total, bad int64 }
	cur      int
	rotateAt time.Time
}

func (w *sloWindow) init(span time.Duration, now time.Time) {
	w.span = span
	w.rotateAt = now.Add(span / sloBucketCount)
}

// rotate advances the ring past any expired bucket boundaries. Called with
// the lock held.
func (w *sloWindow) rotate(now time.Time) {
	width := w.span / sloBucketCount
	for !now.Before(w.rotateAt) {
		w.cur = (w.cur + 1) % sloBucketCount
		w.buckets[w.cur] = struct{ total, bad int64 }{}
		w.rotateAt = w.rotateAt.Add(width)
		// A long quiet gap: skip ahead instead of looping bucket by bucket.
		if now.Sub(w.rotateAt) > w.span {
			w.rotateAt = now.Add(width)
			for i := range w.buckets {
				w.buckets[i] = struct{ total, bad int64 }{}
			}
		}
	}
}

func (w *sloWindow) record(bad bool, now time.Time) {
	w.mu.Lock()
	w.rotate(now)
	w.buckets[w.cur].total++
	if bad {
		w.buckets[w.cur].bad++
	}
	w.mu.Unlock()
}

// burn returns the window's burn rate and its request count.
func (w *sloWindow) burn(now time.Time) (float64, int64) {
	w.mu.Lock()
	w.rotate(now)
	var total, bad int64
	for _, b := range w.buckets {
		total += b.total
		bad += b.bad
	}
	w.mu.Unlock()
	if total == 0 {
		return 0, 0
	}
	return float64(bad) / float64(total) / sloBudget, total
}

// sloTracker scores one scope (the whole service, or one tenant) against
// the p99 target.
type sloTracker struct {
	target time.Duration
	fast   sloWindow
	slow   sloWindow

	mu    sync.Mutex
	total int64
	bad   int64
}

func newSLOTracker(target, fastWin, slowWin time.Duration) *sloTracker {
	t := &sloTracker{target: target}
	now := time.Now()
	t.fast.init(fastWin, now)
	t.slow.init(slowWin, now)
	return t
}

// record scores one request. Shed requests count as bad with no latency.
func (t *sloTracker) record(lat time.Duration, shed bool) {
	bad := shed || lat > t.target
	now := time.Now()
	t.mu.Lock()
	t.total++
	if bad {
		t.bad++
	}
	t.mu.Unlock()
	t.fast.record(bad, now)
	t.slow.record(bad, now)
}

// SLOStatus is one scope's exported SLO state.
type SLOStatus struct {
	Requests   int64   `json:"requests"`
	Bad        int64   `json:"bad"`
	BadPct     float64 `json:"bad_pct"`
	FastBurn   float64 `json:"fast_burn"`
	FastWindow int64   `json:"fast_window_requests"`
	SlowBurn   float64 `json:"slow_burn"`
	SlowWindow int64   `json:"slow_window_requests"`
}

func (t *sloTracker) status() SLOStatus {
	now := time.Now()
	t.mu.Lock()
	st := SLOStatus{Requests: t.total, Bad: t.bad}
	t.mu.Unlock()
	if st.Requests > 0 {
		st.BadPct = 100 * float64(st.Bad) / float64(st.Requests)
	}
	st.FastBurn, st.FastWindow = t.fast.burn(now)
	st.SlowBurn, st.SlowWindow = t.slow.burn(now)
	return st
}

// TenantSLO is one tenant's row in the /v1/slo body.
type TenantSLO struct {
	Session  string `json:"session"`
	Workload string `json:"workload"`
	SLOStatus
}

// SLOReport is the /v1/slo body.
type SLOReport struct {
	TargetP99Ms    float64     `json:"target_p99_ms"`
	BudgetPct      float64     `json:"budget_pct"`
	FastWindowSecs float64     `json:"fast_window_seconds"`
	SlowWindowSecs float64     `json:"slow_window_seconds"`
	Service        SLOStatus   `json:"service"`
	Tenants        []TenantSLO `json:"tenants"`
}

// SLONow assembles the current SLO report (worst fast-burn tenants first,
// capped at limit rows; limit <= 0 means all).
func (s *Server) SLONow(limit int) SLOReport {
	rep := SLOReport{
		TargetP99Ms:    float64(s.cfg.SLOTargetP99) / float64(time.Millisecond),
		BudgetPct:      100 * sloBudget,
		FastWindowSecs: s.cfg.SLOFastWindow.Seconds(),
		SlowWindowSecs: s.cfg.SLOSlowWindow.Seconds(),
		Service:        s.slo.status(),
	}
	s.mu.RLock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()
	for _, sess := range sessions {
		rep.Tenants = append(rep.Tenants, TenantSLO{
			Session:  sess.ID,
			Workload: sess.Workload,
			SLOStatus: sess.slo.status(),
		})
	}
	sort.Slice(rep.Tenants, func(i, j int) bool {
		a, b := rep.Tenants[i], rep.Tenants[j]
		if a.FastBurn != b.FastBurn {
			return a.FastBurn > b.FastBurn
		}
		if a.SlowBurn != b.SlowBurn {
			return a.SlowBurn > b.SlowBurn
		}
		return a.Session < b.Session
	})
	if limit > 0 && len(rep.Tenants) > limit {
		rep.Tenants = rep.Tenants[:limit]
	}
	return rep
}
