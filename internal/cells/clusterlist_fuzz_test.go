package cells

import (
	"encoding/binary"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

// FuzzClusterList drives BuildClusterRange with arbitrary positions, box
// shapes and chunk cuts. The contract under test: every brute-force half
// pair within range (minus excluded and fixed-fixed pairs) is covered by
// exactly one unmasked lane of exactly one cluster-pair entry, no mask bit
// covers anything else, and the chunked builds partition the pair set. This
// is the property the force kernels rely on to visit each interaction once.
func FuzzClusterList(f *testing.F) {
	f.Add(uint8(9), uint8(60), false, uint16(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(17), uint8(90), true, uint16(300), []byte{200, 10, 250, 30, 90, 120, 7, 77})
	f.Add(uint8(33), uint8(120), false, uint16(33), []byte{0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Fuzz(func(t *testing.T, n uint8, boxScale uint8, periodic bool, cut uint16, posBytes []byte) {
		if n == 0 || n > 80 {
			return
		}
		l := 4 + float64(boxScale)/8 // 4 .. 36 Å
		const rng = 3.5
		if periodic && l < 2*rng {
			// Minimum-image needs every periodic edge ≥ the range; smaller
			// boxes are rejected by the engine before any list is built.
			return
		}
		s := atom.NewSystem(atom.CubicBox(l, periodic))
		for i := 0; i < int(n); i++ {
			var c [3]float64
			for d := 0; d < 3; d++ {
				idx := (i*3 + d) * 2
				var v uint16
				if idx+1 < len(posBytes) {
					v = binary.LittleEndian.Uint16(posBytes[idx:])
				} else if idx < len(posBytes) {
					v = uint16(posBytes[idx])
				} else {
					v = uint16(i*2654435761) ^ uint16(d*40503)
				}
				c[d] = float64(v) / 65536 * l
			}
			elem := int16(atom.Ar)
			if i%2 == 1 {
				elem = int16(atom.Al)
			}
			s.AddAtom(elem, vec.New(c[0], c[1], c[2]), vec.Zero, 0, i%5 == 0)
		}
		if n > 1 {
			s.Bonds = append(s.Bonds, atom.Bond{I: 0, J: int32(n / 2)})
			s.BuildExclusions()
		}

		g := NewGrid(s.Box, rng)
		g.Assign(s)
		var cl ClusterList
		g.BuildClusterRange(s, rng, 0, s.N(), &cl)
		got := clusterPairs(t, &cl)
		want := expectedPairs(s, rng)
		if len(got) != len(want) {
			t.Fatalf("full build covers %d pairs, brute force %d", len(got), len(want))
		}
		for k := range want {
			if got[k] != 1 {
				t.Fatalf("pair (%d,%d) not covered exactly once", k>>32, int32(k))
			}
		}

		// Chunked build at an arbitrary cut must partition the same set.
		mid := int(cut) % (s.N() + 1)
		var lo, hi ClusterList
		g.BuildClusterRange(s, rng, 0, mid, &lo)
		g.BuildClusterRange(s, rng, mid, s.N(), &hi)
		union := map[int64]int{}
		for k := range clusterPairs(t, &lo) {
			union[k]++
		}
		for k := range clusterPairs(t, &hi) {
			union[k]++
		}
		if len(union) != len(want) {
			t.Fatalf("chunked union covers %d pairs, want %d", len(union), len(want))
		}
		for k, c := range union {
			if c != 1 {
				t.Fatalf("pair (%d,%d) owned by both chunks", k>>32, int32(k))
			}
		}
	})
}
