// Package cells implements the linked-cell algorithm (Hockney & Eastwood)
// used by Molecular Workbench to build Lennard-Jones neighbor lists in O(N):
// a 3D grid is superimposed over the simulation box, sized so that all
// neighbors of an atom lie in its own or an adjacent grid cell (paper §II-B).
package cells

import (
	"math"

	"mw/internal/atom"
	"mw/internal/vec"
)

// Grid is the linked-cell decomposition of a box. Cell edge lengths are at
// least the interaction range, so the 27-cell stencil around an atom's cell
// covers all possible neighbors.
type Grid struct {
	Box   atom.Box
	Range float64 // minimum cell edge (cutoff + skin)

	Dims [3]int   // cells per dimension (≥1)
	inv  vec.Vec3 // reciprocal cell edge lengths
	head []int32  // per-cell head of chain, -1 if empty
	next []int32  // per-atom next link, -1 at end
}

// NewGrid creates a grid for the box with cells at least r on a side.
// r must be positive.
//
//mw:coldcall
func NewGrid(box atom.Box, r float64) *Grid {
	if r <= 0 {
		panic("cells: non-positive interaction range")
	}
	g := &Grid{Box: box, Range: r}
	dims := [3]float64{box.L.X, box.L.Y, box.L.Z}
	for d := 0; d < 3; d++ {
		n := int(math.Floor(dims[d] / r))
		if n < 1 {
			n = 1
		}
		// Periodic boxes need ≥3 cells per dimension for the stencil not to
		// double-count images; fall back to fewer cells ⇒ treat the whole
		// dimension as one cell (stencil degenerates safely).
		if box.Periodic && n < 3 {
			n = 1
		}
		g.Dims[d] = n
	}
	g.inv = vec.New(
		float64(g.Dims[0])/box.L.X,
		float64(g.Dims[1])/box.L.Y,
		float64(g.Dims[2])/box.L.Z,
	)
	g.head = make([]int32, g.Dims[0]*g.Dims[1]*g.Dims[2])
	return g
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.Dims[0] * g.Dims[1] * g.Dims[2] }

// CellIndexOf returns the flat cell index a position maps to — useful for
// spatial sorting of atoms (the inspector/executor reordering of §V-A).
func (g *Grid) CellIndexOf(p vec.Vec3) int { return g.cellIndex(p) }

// cellIndex maps a position to its flat cell index, clamping non-periodic
// coordinates to the box.
//
//mw:hotpath
func (g *Grid) cellIndex(p vec.Vec3) int {
	cx := g.coord(p.X, g.inv.X, g.Dims[0])
	cy := g.coord(p.Y, g.inv.Y, g.Dims[1])
	cz := g.coord(p.Z, g.inv.Z, g.Dims[2])
	return (cz*g.Dims[1]+cy)*g.Dims[0] + cx
}

//mw:hotpath
func (g *Grid) coord(x, inv float64, n int) int {
	c := int(math.Floor(x * inv))
	if g.Box.Periodic {
		c %= n
		if c < 0 {
			c += n
		}
		return c
	}
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// Assign distributes all atoms of s into cells. It must be called before
// Neighbors and after any batch of position updates.
//
//mw:hotpath
func (g *Grid) Assign(s *atom.System) {
	n := s.N()
	if cap(g.next) < n {
		g.next = make([]int32, n)
	}
	g.next = g.next[:n]
	for i := range g.head {
		g.head[i] = -1
	}
	for i := 0; i < n; i++ {
		c := g.cellIndex(s.Pos[i])
		g.next[i] = g.head[c]
		g.head[c] = int32(i)
	}
}

// AppendNeighbors appends to buf the indices j > i of atoms within rng of
// atom i (center distance, minimum-image for periodic boxes) and returns the
// extended slice. The j > i half-pairing is exactly Molecular Workbench's
// scheme: each pair is processed once, by its lower-indexed atom, which is
// why lower-numbered atoms carry more work (paper §II-B).
//
//mw:hotpath
func (g *Grid) AppendNeighbors(s *atom.System, i int, rng float64, buf []int32) []int32 {
	r2 := rng * rng
	pi := s.Pos[i]
	cx := g.coord(pi.X, g.inv.X, g.Dims[0])
	cy := g.coord(pi.Y, g.inv.Y, g.Dims[1])
	cz := g.coord(pi.Z, g.inv.Z, g.Dims[2])
	for dz := -1; dz <= 1; dz++ {
		z, ok := g.wrapCoord(cz+dz, g.Dims[2])
		if !ok {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y, ok := g.wrapCoord(cy+dy, g.Dims[1])
			if !ok {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				x, ok := g.wrapCoord(cx+dx, g.Dims[0])
				if !ok {
					continue
				}
				c := (z*g.Dims[1]+y)*g.Dims[0] + x
				for j := g.head[c]; j >= 0; j = g.next[j] {
					if int(j) <= i {
						continue
					}
					d := g.Box.MinImage(s.Pos[j].Sub(pi))
					if d.Norm2() < r2 {
						buf = append(buf, j)
					}
				}
			}
		}
	}
	return buf
}

// wrapCoord maps a stencil coordinate into the grid; for non-periodic boxes
// out-of-range coordinates report ok=false. Dimensions collapsed to a single
// cell visit that cell exactly once (dz/dy/dx = ±1 are skipped).
//
//mw:hotpath
func (g *Grid) wrapCoord(c, n int) (int, bool) {
	if n == 1 {
		if c == 0 {
			return 0, true
		}
		return 0, false // visit the single cell only once per stencil pass
	}
	if g.Box.Periodic {
		if c < 0 {
			return c + n, true
		}
		if c >= n {
			return c - n, true
		}
		return c, true
	}
	if c < 0 || c >= n {
		return 0, false
	}
	return c, true
}

// NeighborList is a compressed half neighbor list with a verlet skin:
// Neighbors[Offsets[i]:Offsets[i+1]] are the indices j > i within
// cutoff+skin of atom i at build time. The list remains valid until some
// atom has moved more than skin/2 since the build (paper §II-B: "when any
// atom moves in any dimension by more than a threshold value").
type NeighborList struct {
	Cutoff float64
	Skin   float64

	Offsets   []int32
	Neighbors []int32

	refPos []vec.Vec3 // positions at build time
	grid   *Grid
	builds int
}

// NewNeighborList creates a list with the given cutoff and skin.
func NewNeighborList(cutoff, skin float64) *NeighborList {
	if cutoff <= 0 || skin < 0 {
		panic("cells: invalid cutoff/skin")
	}
	return &NeighborList{Cutoff: cutoff, Skin: skin}
}

// Build (re)constructs the list from scratch using linked cells: O(N).
//
//mw:hotpath
func (nl *NeighborList) Build(s *atom.System) {
	n := s.N()
	rng := nl.Cutoff + nl.Skin
	if nl.grid == nil || nl.grid.Box != s.Box || nl.grid.Range != rng {
		nl.grid = NewGrid(s.Box, rng)
	}
	nl.grid.Assign(s)

	if cap(nl.Offsets) < n+1 {
		nl.Offsets = make([]int32, n+1)
	}
	nl.Offsets = nl.Offsets[:n+1]
	nl.Neighbors = nl.Neighbors[:0]
	for i := 0; i < n; i++ {
		nl.Offsets[i] = int32(len(nl.Neighbors))
		nl.Neighbors = nl.grid.AppendNeighbors(s, i, rng, nl.Neighbors)
	}
	nl.Offsets[n] = int32(len(nl.Neighbors))

	if cap(nl.refPos) < n {
		nl.refPos = make([]vec.Vec3, n)
	}
	nl.refPos = nl.refPos[:n]
	copy(nl.refPos, s.Pos)
	nl.builds++
}

// Valid reports whether the list still covers all pairs within the cutoff:
// no atom may have moved farther than skin/2 from its build-time position.
// It runs serially on the coordinator every step, so the loop hoists the
// box and reslices refPos against s.Pos to stay free of per-iteration
// bounds checks (`mwlint -bce`).
//
//mw:hotpath
func (nl *NeighborList) Valid(s *atom.System) bool {
	pos := s.Pos
	if len(nl.refPos) != len(pos) || nl.Offsets == nil {
		return false
	}
	ref := nl.refPos[:len(pos)]
	box := s.Box
	limit2 := nl.Skin * nl.Skin / 4
	for i, p := range pos {
		if box.MinImage(p.Sub(ref[i])).Norm2() > limit2 {
			return false
		}
	}
	return true
}

// Of returns the neighbor slice of atom i. The slice aliases internal
// storage and is invalidated by the next Build. An out-of-range index or a
// corrupt offset table yields an empty slice; the explicit guards exist so
// the prove pass eliminates every implicit bounds check from the inlined
// body (`mwlint -bce` keeps it that way).
//
//mw:hotpath
func (nl *NeighborList) Of(i int) []int32 {
	offs := nl.Offsets
	if i < 0 || i >= len(offs) {
		return nil
	}
	seg := offs[i:]
	if len(seg) < 2 {
		return nil
	}
	a, b := int(seg[0]), int(seg[1])
	nb := nl.Neighbors
	if a < 0 || b < a || b > len(nb) {
		return nil
	}
	return nb[a:b]
}

// Len returns the total number of stored (half) pairs.
func (nl *NeighborList) Len() int { return len(nl.Neighbors) }

// Builds returns how many times the list has been (re)built; the Al-1000
// benchmark is characterized by frequent rebuilds (paper §III).
func (nl *NeighborList) Builds() int { return nl.builds }

// BruteForcePairs returns the half pair list (i<j within rng) computed in
// O(N²); used by tests and as the reference for property checks.
func BruteForcePairs(s *atom.System, rng float64) [][2]int32 {
	r2 := rng * rng
	var out [][2]int32
	n := s.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Box.MinImage(s.Pos[j].Sub(s.Pos[i])).Norm2() < r2 {
				out = append(out, [2]int32{int32(i), int32(j)})
			}
		}
	}
	return out
}
