package cells

import (
	"math/rand"
	"sort"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

func randomSystem(seed int64, n int, l float64, periodic bool) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, periodic))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l)
		s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
	}
	return s
}

func pairsFromList(nl *NeighborList, n int) [][2]int32 {
	var out [][2]int32
	for i := 0; i < n; i++ {
		for _, j := range nl.Of(i) {
			out = append(out, [2]int32{int32(i), j})
		}
	}
	return out
}

func sortPairs(ps [][2]int32) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a][0] != ps[b][0] {
			return ps[a][0] < ps[b][0]
		}
		return ps[a][1] < ps[b][1]
	})
}

func assertPairsEqual(t *testing.T, got, want [][2]int32) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("pair count: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// The core invariant: linked-cell neighbor lists equal brute-force O(N²)
// pair enumeration, periodic and not, across densities.
func TestNeighborListMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name     string
		n        int
		l        float64
		periodic bool
		cutoff   float64
		skin     float64
	}{
		{"dilute-open", 50, 30, false, 4, 1},
		{"dense-open", 200, 12, false, 3, 0.5},
		{"dilute-periodic", 50, 30, true, 4, 1},
		{"dense-periodic", 200, 12, true, 3, 0.5},
		{"small-box-periodic", 20, 6, true, 2.5, 0.5}, // forces degenerate 1-cell dims
		{"single-cell-open", 10, 3, false, 4, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := randomSystem(42, c.n, c.l, c.periodic)
			nl := NewNeighborList(c.cutoff, c.skin)
			nl.Build(s)
			got := pairsFromList(nl, s.N())
			want := BruteForcePairs(s, c.cutoff+c.skin)
			assertPairsEqual(t, got, want)
		})
	}
}

// Randomized property sweep over many seeds.
func TestNeighborListPropertySweep(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		l := 5 + rng.Float64()*20
		periodic := seed%2 == 0
		cutoff := 1 + rng.Float64()*3
		s := randomSystem(seed+100, n, l, periodic)
		nl := NewNeighborList(cutoff, 0.5)
		nl.Build(s)
		got := pairsFromList(nl, s.N())
		want := BruteForcePairs(s, cutoff+0.5)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d pairs vs brute-force %d", seed, len(got), len(want))
		}
		assertPairsEqual(t, got, want)
	}
}

func TestHalfListOrdering(t *testing.T) {
	s := randomSystem(7, 100, 15, false)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	for i := 0; i < s.N(); i++ {
		for _, j := range nl.Of(i) {
			if int(j) <= i {
				t.Fatalf("half list violated: atom %d lists neighbor %d", i, j)
			}
		}
	}
}

func TestLowerIndexedAtomsHaveMoreNeighbors(t *testing.T) {
	// The paper notes lower-numbered atoms do more work under half pairing.
	// Statistically, the first third of atoms must hold more pairs than the
	// last third in a homogeneous system.
	s := randomSystem(3, 300, 12, true)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	third := s.N() / 3
	lo, hi := 0, 0
	for i := 0; i < third; i++ {
		lo += len(nl.Of(i))
	}
	for i := s.N() - third; i < s.N(); i++ {
		hi += len(nl.Of(i))
	}
	if lo <= hi {
		t.Errorf("expected front-loaded work: first third %d pairs, last third %d", lo, hi)
	}
}

func TestValidityThreshold(t *testing.T) {
	s := randomSystem(11, 50, 20, false)
	nl := NewNeighborList(3, 1.0)
	nl.Build(s)
	if !nl.Valid(s) {
		t.Fatal("list invalid immediately after build")
	}
	// Move an atom by just under skin/2: still valid.
	s.Pos[10] = s.Pos[10].Add(vec.New(0.49, 0, 0))
	if !nl.Valid(s) {
		t.Error("list invalidated below skin/2 displacement")
	}
	// Beyond skin/2: invalid.
	s.Pos[10] = s.Pos[10].Add(vec.New(0.1, 0, 0))
	if nl.Valid(s) {
		t.Error("list still valid beyond skin/2 displacement")
	}
}

func TestValidAfterAtomCountChange(t *testing.T) {
	s := randomSystem(1, 20, 15, false)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	s.AddAtom(atom.Ar, vec.New(1, 1, 1), vec.Zero, 0, false)
	if nl.Valid(s) {
		t.Error("list valid after atom count change")
	}
}

func TestBuildsCounter(t *testing.T) {
	s := randomSystem(2, 30, 15, false)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	nl.Build(s)
	if nl.Builds() != 2 {
		t.Errorf("Builds = %d", nl.Builds())
	}
}

func TestRebuildReusesStorage(t *testing.T) {
	s := randomSystem(2, 200, 15, true)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	neighCap := cap(nl.Neighbors)
	offCap := cap(nl.Offsets)
	nl.Build(s)
	if cap(nl.Neighbors) != neighCap || cap(nl.Offsets) != offCap {
		t.Error("rebuild reallocated storage for unchanged system")
	}
}

func TestGridDims(t *testing.T) {
	g := NewGrid(atom.CubicBox(10, false), 2.5)
	if g.Dims != [3]int{4, 4, 4} {
		t.Errorf("Dims = %v", g.Dims)
	}
	// Range larger than box: single cell.
	g = NewGrid(atom.CubicBox(2, false), 5)
	if g.NumCells() != 1 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	// Periodic with <3 cells collapses to 1 per dimension.
	g = NewGrid(atom.CubicBox(5, true), 2.4)
	if g.Dims != [3]int{1, 1, 1} {
		t.Errorf("periodic small Dims = %v", g.Dims)
	}
}

func TestGridPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid must panic on non-positive range")
		}
	}()
	NewGrid(atom.CubicBox(10, false), 0)
}

func TestNeighborListPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNeighborList must panic on bad params")
		}
	}()
	NewNeighborList(0, 1)
}

func TestEmptySystem(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	if nl.Len() != 0 {
		t.Error("empty system has pairs")
	}
	if !nl.Valid(s) {
		t.Error("empty list should be valid")
	}
}

func TestPairCoverageNoDuplicates(t *testing.T) {
	s := randomSystem(9, 150, 10, true)
	nl := NewNeighborList(2.5, 0.5)
	nl.Build(s)
	seen := map[[2]int32]bool{}
	for _, p := range pairsFromList(nl, s.N()) {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func BenchmarkNeighborListBuild1000(b *testing.B) {
	s := randomSystem(1, 1000, 25, false)
	nl := NewNeighborList(3, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl.Build(s)
	}
}

func BenchmarkBruteForcePairs1000(b *testing.B) {
	s := randomSystem(1, 1000, 25, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForcePairs(s, 3.5)
	}
}

// NewRectSystem builds a random system in a periodic rectangular box.
func NewRectSystem(seed int64, lx, ly, lz float64, n int) *atom.System {
	s := atom.NewSystem(atom.NewBox(lx, ly, lz, true))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.AddAtom(atom.Ar, vec.New(rng.Float64()*lx, rng.Float64()*ly, rng.Float64()*lz), vec.Zero, 0, false)
	}
	return s
}
