package cells

import (
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

// TestSpread3RoundTrip checks the dilation against a bit-by-bit reference.
func TestSpread3RoundTrip(t *testing.T) {
	ref := func(v uint32) uint64 {
		var out uint64
		for b := 0; b < 21; b++ {
			out |= uint64(v>>b&1) << (3 * b)
		}
		return out
	}
	cases := []uint32{0, 1, 2, 3, 7, 8, 0x155, 0xfffff, 0x1fffff, 0x3fffff}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		cases = append(cases, rng.Uint32())
	}
	for _, v := range cases {
		if got, want := spread3(v), ref(v&0x1fffff); got != want {
			t.Fatalf("spread3(%#x) = %#x, want %#x", v, got, want)
		}
	}
}

// TestMorton3Ordering spot-checks the canonical Z-order of the first octant.
func TestMorton3Ordering(t *testing.T) {
	// In Z-order the 2×2×2 corner cells enumerate as binary zyx.
	want := uint64(0)
	for z := uint32(0); z < 2; z++ {
		for y := uint32(0); y < 2; y++ {
			for x := uint32(0); x < 2; x++ {
				if got := morton3(x, y, z); got != want {
					t.Errorf("morton3(%d,%d,%d) = %d, want %d", x, y, z, got, want)
				}
				want++
			}
		}
	}
}

// TestMortonRanksIsPermutation verifies the rank table is a permutation of
// the cell indices and that neighboring cells in rank order are adjacent in
// space (each Morton step moves within the 3×3×3 stencil most of the time —
// locality being the whole point; we only assert permutation validity and
// determinism here).
func TestMortonRanksIsPermutation(t *testing.T) {
	g := NewGrid(atom.NewBox(30, 20, 40, false), 4)
	ranks := g.MortonRanks()
	if len(ranks) != g.NumCells() {
		t.Fatalf("ranks length %d, want %d", len(ranks), g.NumCells())
	}
	seen := make([]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || int(r) >= len(ranks) || seen[r] {
			t.Fatalf("ranks is not a permutation: %v", ranks)
		}
		seen[r] = true
	}
	again := g.MortonRanks()
	for i := range ranks {
		if ranks[i] != again[i] {
			t.Fatal("MortonRanks is not deterministic")
		}
	}
}

// TestMortonRankLocality: sorting random atoms by Morton cell rank must give
// a layout in which consecutive atoms are spatially closer on average than
// in the random order — the property the reorder pass exists for.
func TestMortonRankLocality(t *testing.T) {
	box := atom.CubicBox(40, false)
	g := NewGrid(box, 4)
	ranks := g.MortonRanks()
	rng := rand.New(rand.NewSource(7))
	n := 500
	pos := make([]vec.Vec3, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40)
	}
	meanStep := func(ps []vec.Vec3) float64 {
		var sum float64
		for i := 1; i < len(ps); i++ {
			sum += ps[i].Sub(ps[i-1]).Norm()
		}
		return sum / float64(len(ps)-1)
	}
	sorted := append([]vec.Vec3(nil), pos...)
	// Insertion-style sort by rank (n is small; clarity over speed).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			if ranks[g.CellIndexOf(sorted[j-1])] > ranks[g.CellIndexOf(sorted[j])] {
				sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
			} else {
				break
			}
		}
	}
	if ms, mr := meanStep(sorted), meanStep(pos); ms >= mr {
		t.Errorf("Morton order mean neighbor distance %.2f not below random order %.2f", ms, mr)
	}
}
