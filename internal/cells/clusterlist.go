package cells

import "mw/internal/atom"

// ClusterSize is M in the MxN cluster-pair scheme: atoms are grouped into
// clusters of four consecutive indices, so a Morton/cell reorder
// (atom.Reorderer) makes clusters spatially compact. Four doubles fill one
// AVX2 lane group, which is why M = N = 4 here (see EXPERIMENTS.md).
const ClusterSize = 4

// clusterPad is the coordinate used for the tail padding lanes of the last
// cluster. It must be finite: padded lanes are masked out of every
// interaction, but a SIMD kernel still computes dx against them, and an
// infinite coordinate would turn the masked 0·dx product into a NaN that
// poisons the lane accumulators.
const clusterPad = 1e30

// ClusterEntry is one cluster pair (ci → CJ) with a 16-bit interaction
// mask: bit a*ClusterSize+b covers the pair (i, j) = (ci*4+a, CJ*4+b).
// Only pairs with j > i are masked in, so each interaction appears exactly
// once across the whole list (Newton-3 half-list semantics), and pairs
// excluded by topology or between two fixed atoms are masked out at build
// time. K caches the element-pair table index when it is uniform across
// every masked pair of the entry; otherwise it holds the mixed sentinel
// nelem² (see MixedK), telling vector kernels to defer to a scalar pass.
//
// The field layout is load-bearing: {int32, uint16, uint16} packs into
// exactly eight little-endian bytes (CJ | Mask<<32 | K<<48), letting the
// amd64 kernel read entries as single MOVQ words. Do not reorder fields.
type ClusterEntry struct {
	CJ   int32
	Mask uint16
	K    uint16
}

// MixedK returns the sentinel K value marking an entry whose masked pairs
// span more than one element-pair table row.
//
//mw:hotpath
func MixedK(nelem int) uint16 { return uint16(nelem * nelem) }

// ClusterCoords holds positions transposed into padded structure-of-arrays
// form: lane i of X/Y/Z is atom i, with the tail of the last cluster padded
// by clusterPad. It is shared by every chunk's cluster kernel and must be
// repacked (serially) whenever positions change.
type ClusterCoords struct {
	NC      int // number of clusters = ceil(N/ClusterSize)
	X, Y, Z []float64
}

// Pack refreshes the padded SoA copy of s.Pos, reusing storage.
//
//mw:hotpath
func (cc *ClusterCoords) Pack(s *atom.System) {
	n := s.N()
	nc := (n + ClusterSize - 1) / ClusterSize
	np := nc * ClusterSize
	if cap(cc.X) < np {
		cc.X = make([]float64, np)
		cc.Y = make([]float64, np)
		cc.Z = make([]float64, np)
	}
	cc.NC = nc
	x, y, z := cc.X[:np], cc.Y[:np], cc.Z[:np]
	for i, p := range s.Pos {
		if i >= np {
			break
		}
		x[i], y[i], z[i] = p.X, p.Y, p.Z
	}
	for i := n; i < np; i++ {
		x[i], y[i], z[i] = clusterPad, clusterPad, clusterPad
	}
}

// ClusterList is the cluster-pair neighbor list for the atom range
// [Lo, Hi): the MxN counterpart of RangeList. Entries are grouped by
// i-cluster; Offsets[ci-CiLo] .. Offsets[ci-CiLo+1] index the entries of
// global cluster ci. A cluster straddling a chunk boundary appears in both
// chunks' lists, but each chunk masks in only the rows of atoms it owns, so
// the pair sets stay disjoint. Storage is reused across rebuilds.
type ClusterList struct {
	Lo, Hi     int // owned atom range
	CiLo, CiHi int // cluster range covering [Lo, Hi)
	MaxCJ      int // highest CJ referenced (scratch dirty-window bound)
	Mixed      int // number of entries with K == MixedK(nelem)
	Offsets    []int32
	Entries    []ClusterEntry

	last, at []int32 // per-cj dedup stamps / entry back-pointers
	buf      []int32 // neighbor scratch
}

// BuildClusterRange rebuilds the cluster-pair list for atoms [lo, hi) from
// the grid's current cell assignment (Assign must have run). Pairs beyond
// rng never enter the list; pairs excluded by topology or between two
// fixed atoms are masked out here so kernels need no per-pair checks.
//
//mw:hotpath
func (g *Grid) BuildClusterRange(s *atom.System, rng float64, lo, hi int, cl *ClusterList) {
	n := s.N()
	nc := (n + ClusterSize - 1) / ClusterSize
	cl.Lo, cl.Hi = lo, hi
	cl.CiLo, cl.CiHi = lo/ClusterSize, (hi+ClusterSize-1)/ClusterSize
	cl.MaxCJ = cl.CiHi - 1
	cl.Mixed = 0
	local := cl.CiHi - cl.CiLo
	if cap(cl.Offsets) < local+1 {
		cl.Offsets = make([]int32, local+1)
	}
	cl.Offsets = cl.Offsets[:local+1]
	cl.Entries = cl.Entries[:0]
	if cap(cl.last) < nc {
		cl.last = make([]int32, nc)
		cl.at = make([]int32, nc)
	}
	cl.last = cl.last[:nc]
	cl.at = cl.at[:nc]
	for i := range cl.last {
		cl.last[i] = -1
	}

	nelem := len(s.Elements)
	mixed := MixedK(nelem)
	elem, fixed := s.Elem, s.Fixed
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		cl.Offsets[ci-cl.CiLo] = int32(len(cl.Entries))
		rowLo, rowHi := ci*ClusterSize, ci*ClusterSize+ClusterSize
		if rowLo < lo {
			rowLo = lo
		}
		if rowHi > hi {
			rowHi = hi
		}
		for i := rowLo; i < rowHi; i++ {
			cl.buf = g.AppendNeighbors(s, i, rng, cl.buf[:0])
			a := i - ci*ClusterSize
			fixedI := fixed[i]
			ki := int(elem[i]) * nelem
			for _, j := range cl.buf {
				if fixedI && fixed[j] {
					continue
				}
				if s.Excl.Excluded(int32(i), j) {
					continue
				}
				cj := int(j) / ClusterSize
				b := int(j) - cj*ClusterSize
				k := uint16(ki + int(elem[j]))
				if cl.last[cj] != int32(ci) {
					cl.last[cj] = int32(ci)
					cl.at[cj] = int32(len(cl.Entries))
					cl.Entries = append(cl.Entries, ClusterEntry{CJ: int32(cj), K: k})
					if cj > cl.MaxCJ {
						cl.MaxCJ = cj
					}
				}
				e := &cl.Entries[cl.at[cj]]
				e.Mask |= 1 << uint(a*ClusterSize+b)
				if e.K != k {
					e.K = mixed
				}
			}
		}
	}
	cl.Offsets[local] = int32(len(cl.Entries))
	for i := range cl.Entries {
		if cl.Entries[i].K == mixed {
			cl.Mixed++
		}
	}
}

// EntriesOf returns the entry slice of global cluster ci. The slice aliases
// internal storage and is invalidated by the next build. The explicit
// guards keep the inlined body free of implicit bounds checks
// (`mwlint -bce`).
//
//mw:hotpath
func (cl *ClusterList) EntriesOf(ci int) []ClusterEntry {
	i := ci - cl.CiLo
	offs := cl.Offsets
	if i < 0 || i >= len(offs) {
		return nil
	}
	seg := offs[i:]
	if len(seg) < 2 {
		return nil
	}
	a, b := int(seg[0]), int(seg[1])
	es := cl.Entries
	if a < 0 || b < a || b > len(es) {
		return nil
	}
	return es[a:b]
}

// Pairs returns the total number of masked pairs in the list.
func (cl *ClusterList) Pairs() int {
	total := 0
	for _, e := range cl.Entries {
		m := e.Mask
		for m != 0 {
			m &= m - 1
			total++
		}
	}
	return total
}
