package cells

import (
	"testing"

	"mw/internal/vec"
)

func TestBuildRangeMatchesGlobalList(t *testing.T) {
	s := randomSystem(21, 120, 14, true)
	const cutoff, skin = 3.0, 0.5
	nl := NewNeighborList(cutoff, skin)
	nl.Build(s)

	g := NewGrid(s.Box, cutoff+skin)
	g.Assign(s)
	var rl RangeList
	for _, span := range [][2]int{{0, 40}, {40, 77}, {77, 120}} {
		g.BuildRange(s, cutoff+skin, span[0], span[1], &rl)
		if rl.Lo != span[0] || rl.Hi != span[1] {
			t.Fatalf("range not recorded: %d..%d", rl.Lo, rl.Hi)
		}
		for i := span[0]; i < span[1]; i++ {
			want := nl.Of(i)
			got := rl.Of(i)
			if len(got) != len(want) {
				t.Fatalf("atom %d: %d neighbors vs global %d", i, len(got), len(want))
			}
			seen := map[int32]bool{}
			for _, j := range want {
				seen[j] = true
			}
			for _, j := range got {
				if !seen[j] {
					t.Fatalf("atom %d: spurious neighbor %d", i, j)
				}
			}
		}
	}
}

func TestBuildRangeFullSymmetry(t *testing.T) {
	s := randomSystem(22, 80, 12, true)
	const rng = 3.5
	g := NewGrid(s.Box, rng)
	g.Assign(s)
	var rl RangeList
	g.BuildRangeFull(s, rng, 0, s.N(), &rl)

	// Every pair appears exactly twice: j in Of(i) iff i in Of(j).
	pair := map[[2]int32]int{}
	for i := 0; i < s.N(); i++ {
		for _, j := range rl.Of(i) {
			if int(j) == i {
				t.Fatal("self pair in full list")
			}
			a, b := int32(i), j
			if a > b {
				a, b = b, a
			}
			pair[[2]int32{a, b}]++
		}
	}
	for p, n := range pair {
		if n != 2 {
			t.Fatalf("pair %v appears %d times, want 2", p, n)
		}
	}
	// And matches brute force.
	bf := BruteForcePairs(s, rng)
	if len(pair) != len(bf) {
		t.Fatalf("full list has %d unique pairs, brute force %d", len(pair), len(bf))
	}
	if rl.Len() != 2*len(bf) {
		t.Fatalf("Len = %d, want %d", rl.Len(), 2*len(bf))
	}
}

func TestBuildRangeStorageReuse(t *testing.T) {
	s := randomSystem(23, 100, 12, false)
	g := NewGrid(s.Box, 3.5)
	g.Assign(s)
	var rl RangeList
	g.BuildRange(s, 3.5, 0, 50, &rl)
	c1 := cap(rl.Neighbors)
	g.BuildRange(s, 3.5, 0, 50, &rl)
	if cap(rl.Neighbors) != c1 {
		t.Error("rebuild reallocated neighbor storage")
	}
}

func TestMaxDisplacement2(t *testing.T) {
	s := randomSystem(24, 10, 20, false)
	ref := append([]vec.Vec3(nil), s.Pos...)
	if d := MaxDisplacement2(s, ref, 0, 10); d != 0 {
		t.Errorf("unmoved system displacement %v", d)
	}
	s.Pos[3] = s.Pos[3].Add(vec.New(0, 2, 0))
	if d := MaxDisplacement2(s, ref, 0, 10); d != 4 {
		t.Errorf("displacement² = %v, want 4", d)
	}
	// Out-of-range window ignores the move.
	if d := MaxDisplacement2(s, ref, 4, 10); d != 0 {
		t.Errorf("windowed displacement = %v", d)
	}
}

func TestCellIndexOfConsistentWithAssign(t *testing.T) {
	s := randomSystem(25, 60, 15, true)
	g := NewGrid(s.Box, 3)
	g.Assign(s)
	// Walk each cell's chain: every member must map back to that cell.
	for c := 0; c < g.NumCells(); c++ {
		for j := g.head[c]; j >= 0; j = g.next[j] {
			if got := g.CellIndexOf(s.Pos[j]); got != c {
				t.Fatalf("atom %d in chain of cell %d but CellIndexOf = %d", j, c, got)
			}
		}
	}
}

func TestNeighborListRectangularBox(t *testing.T) {
	// Non-cubic periodic box: grid dims differ per dimension and the lists
	// must still equal brute force.
	s := NewRectSystem(26, 40, 26, 13, 150)
	nl := NewNeighborList(3, 0.5)
	nl.Build(s)
	got := pairsFromList(nl, s.N())
	want := BruteForcePairs(s, 3.5)
	assertPairsEqual(t, got, want)
}
