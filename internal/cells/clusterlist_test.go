package cells

import (
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/vec"
)

// clusterTestSystem scatters n atoms of alternating elements (every 7th
// fixed) in an l³ box.
func clusterTestSystem(n int, l float64, periodic bool, seed int64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, periodic))
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := vec.New(r.Float64()*l, r.Float64()*l, r.Float64()*l)
		elem := int16(atom.Ar)
		if i%3 == 0 {
			elem = int16(atom.Na)
		}
		s.AddAtom(elem, p, vec.Zero, 0, i%7 == 0)
	}
	return s
}

// pairKey packs an (i, j) half pair for set membership.
func pairKey(i, j int32) int64 { return int64(i)<<32 | int64(j) }

// clusterPairs expands a list's masks into the covered (i, j) half pairs,
// failing on duplicates or pairs violating j > i.
func clusterPairs(t *testing.T, cl *ClusterList) map[int64]int {
	t.Helper()
	got := map[int64]int{}
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		seen := map[int32]bool{}
		for _, e := range cl.EntriesOf(ci) {
			if seen[e.CJ] {
				t.Fatalf("cluster %d: duplicate entry for cj=%d", ci, e.CJ)
			}
			seen[e.CJ] = true
			if int(e.CJ) < ci {
				t.Fatalf("cluster %d: entry cj=%d < ci", ci, e.CJ)
			}
			for a := 0; a < ClusterSize; a++ {
				for b := 0; b < ClusterSize; b++ {
					if e.Mask&(1<<uint(a*ClusterSize+b)) == 0 {
						continue
					}
					i := int32(ci*ClusterSize + a)
					j := e.CJ*ClusterSize + int32(b)
					if j <= i {
						t.Fatalf("masked pair (%d,%d) violates j > i", i, j)
					}
					got[pairKey(i, j)]++
				}
			}
		}
	}
	for k, c := range got {
		if c != 1 {
			t.Fatalf("pair (%d,%d) covered %d times", k>>32, int32(k), c)
		}
	}
	return got
}

// expectedPairs filters the brute-force half list the way the builder must:
// drop excluded and fixed-fixed pairs.
func expectedPairs(s *atom.System, rng float64) map[int64]bool {
	want := map[int64]bool{}
	for _, p := range BruteForcePairs(s, rng) {
		i, j := p[0], p[1]
		if s.Fixed[i] && s.Fixed[j] {
			continue
		}
		if s.Excl.Excluded(i, j) {
			continue
		}
		want[pairKey(i, j)] = true
	}
	return want
}

func TestBuildClusterRangeCoversBruteForce(t *testing.T) {
	const rng = 3.0
	for _, periodic := range []bool{false, true} {
		s := clusterTestSystem(153, 12, periodic, 42)
		// A little topology so exclusions are exercised.
		s.Bonds = append(s.Bonds, atom.Bond{I: 0, J: 1}, atom.Bond{I: 10, J: 11})
		s.BuildExclusions()
		g := NewGrid(s.Box, rng)
		g.Assign(s)
		var cl ClusterList
		g.BuildClusterRange(s, rng, 0, s.N(), &cl)

		got := clusterPairs(t, &cl)
		want := expectedPairs(s, rng)
		for k := range want {
			if got[k] != 1 {
				t.Errorf("periodic=%v: pair (%d,%d) not covered", periodic, k>>32, int32(k))
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("periodic=%v: spurious pair (%d,%d)", periodic, k>>32, int32(k))
			}
		}
	}
}

func TestBuildClusterRangeChunksPartition(t *testing.T) {
	const rng = 3.0
	s := clusterTestSystem(101, 10, false, 7)
	g := NewGrid(s.Box, rng)
	g.Assign(s)

	var full ClusterList
	g.BuildClusterRange(s, rng, 0, s.N(), &full)
	fullPairs := clusterPairs(t, &full)

	// Chunk cuts deliberately not cluster-aligned: boundary clusters appear
	// in two lists and must split their masks disjointly.
	cuts := []int{0, 37, 38, 70, s.N()}
	union := map[int64]int{}
	for c := 0; c+1 < len(cuts); c++ {
		var cl ClusterList
		g.BuildClusterRange(s, rng, cuts[c], cuts[c+1], &cl)
		for k := range clusterPairs(t, &cl) {
			union[k]++
		}
	}
	if len(union) != len(fullPairs) {
		t.Fatalf("chunked union has %d pairs, full list %d", len(union), len(fullPairs))
	}
	for k, c := range union {
		if c != 1 {
			t.Fatalf("pair (%d,%d) owned by %d chunks", k>>32, int32(k), c)
		}
		if fullPairs[k] != 1 {
			t.Fatalf("chunked pair (%d,%d) missing from full list", k>>32, int32(k))
		}
	}
}

func TestBuildClusterRangeKField(t *testing.T) {
	s := clusterTestSystem(60, 8, false, 3)
	const rng = 4.0
	g := NewGrid(s.Box, rng)
	g.Assign(s)
	var cl ClusterList
	g.BuildClusterRange(s, rng, 0, s.N(), &cl)

	nelem := len(s.Elements)
	mixed := MixedK(nelem)
	counted := 0
	for ci := cl.CiLo; ci < cl.CiHi; ci++ {
		for _, e := range cl.EntriesOf(ci) {
			ks := map[uint16]bool{}
			for a := 0; a < ClusterSize; a++ {
				for b := 0; b < ClusterSize; b++ {
					if e.Mask&(1<<uint(a*ClusterSize+b)) == 0 {
						continue
					}
					i := ci*ClusterSize + a
					j := int(e.CJ)*ClusterSize + b
					ks[uint16(int(s.Elem[i])*nelem+int(s.Elem[j]))] = true
				}
			}
			switch {
			case len(ks) == 0:
				t.Fatalf("cluster %d: entry cj=%d has empty mask", ci, e.CJ)
			case len(ks) == 1:
				for k := range ks {
					if e.K != k {
						t.Fatalf("uniform entry has K=%d want %d", e.K, k)
					}
				}
			default:
				if e.K != mixed {
					t.Fatalf("mixed entry has K=%d want sentinel %d", e.K, mixed)
				}
				counted++
			}
		}
	}
	mixedWant := 0
	for _, e := range cl.Entries {
		if e.K == mixed {
			mixedWant++
		}
	}
	if cl.Mixed != mixedWant || counted != mixedWant {
		t.Fatalf("Mixed=%d, recount=%d/%d", cl.Mixed, counted, mixedWant)
	}
}

func TestBuildClusterRangeReuse(t *testing.T) {
	const rng = 3.0
	var cl ClusterList
	// Rebuilding the same list across different systems must not leak state
	// (the dedup stamps are reset each build).
	for seed := int64(0); seed < 4; seed++ {
		s := clusterTestSystem(90, 9, seed%2 == 0, seed)
		g := NewGrid(s.Box, rng)
		g.Assign(s)
		g.BuildClusterRange(s, rng, 0, s.N(), &cl)
		got := clusterPairs(t, &cl)
		want := expectedPairs(s, rng)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d pairs, want %d", seed, len(got), len(want))
		}
		if cl.MaxCJ < cl.CiHi-1 || cl.MaxCJ >= (s.N()+ClusterSize-1)/ClusterSize {
			t.Fatalf("seed %d: MaxCJ=%d outside [%d,%d)", seed, cl.MaxCJ, cl.CiHi-1, (s.N()+ClusterSize-1)/ClusterSize)
		}
	}
}

func TestClusterCoordsPack(t *testing.T) {
	s := clusterTestSystem(10, 5, false, 1)
	var cc ClusterCoords
	cc.Pack(s)
	if cc.NC != 3 {
		t.Fatalf("NC=%d want 3", cc.NC)
	}
	for i := 0; i < s.N(); i++ {
		if cc.X[i] != s.Pos[i].X || cc.Y[i] != s.Pos[i].Y || cc.Z[i] != s.Pos[i].Z {
			t.Fatalf("lane %d mismatch", i)
		}
	}
	for i := s.N(); i < cc.NC*ClusterSize; i++ {
		if cc.X[i] != clusterPad {
			t.Fatalf("padding lane %d = %g", i, cc.X[i])
		}
	}
}
