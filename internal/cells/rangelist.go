package cells

import (
	"mw/internal/atom"
	"mw/internal/vec"
)

// RangeList is a half neighbor list covering only atoms [Lo, Hi). The
// parallel engine gives every force-phase chunk its own RangeList so that a
// worker can rebuild and immediately consume its chunk's neighbors — the
// paper's fused phases 3+4 ("which we fused into a single loop to improve
// data locality and reduce loop overhead", §II-A) — without synchronizing on
// a global list.
type RangeList struct {
	Lo, Hi    int
	Offsets   []int32 // length Hi-Lo+1
	Neighbors []int32
}

// BuildRange fills rl with the neighbors (j > i, within rng) of atoms
// [lo, hi) using the already-Assigned grid. Storage is reused across calls.
//
//mw:hotpath
func (g *Grid) BuildRange(s *atom.System, rng float64, lo, hi int, rl *RangeList) {
	rl.Lo, rl.Hi = lo, hi
	n := hi - lo
	if cap(rl.Offsets) < n+1 {
		rl.Offsets = make([]int32, n+1)
	}
	rl.Offsets = rl.Offsets[:n+1]
	rl.Neighbors = rl.Neighbors[:0]
	for i := lo; i < hi; i++ {
		rl.Offsets[i-lo] = int32(len(rl.Neighbors))
		rl.Neighbors = g.AppendNeighbors(s, i, rng, rl.Neighbors)
	}
	rl.Offsets[n] = int32(len(rl.Neighbors))
}

// BuildRangeFull fills rl with ALL neighbors (any j ≠ i within rng) of atoms
// [lo, hi) — the full-list alternative to Molecular Workbench's half
// pairing. Every pair appears twice (once per endpoint), so forces computed
// from it must not be mirrored to f[j]; the benefit is a perfectly uniform
// per-atom load shape, the ablation DESIGN.md calls out against §II-B's
// front-loaded half lists.
//
//mw:hotpath
func (g *Grid) BuildRangeFull(s *atom.System, rng float64, lo, hi int, rl *RangeList) {
	rl.Lo, rl.Hi = lo, hi
	n := hi - lo
	if cap(rl.Offsets) < n+1 {
		rl.Offsets = make([]int32, n+1)
	}
	rl.Offsets = rl.Offsets[:n+1]
	rl.Neighbors = rl.Neighbors[:0]
	r2 := rng * rng
	for i := lo; i < hi; i++ {
		rl.Offsets[i-lo] = int32(len(rl.Neighbors))
		pi := s.Pos[i]
		cx := g.coord(pi.X, g.inv.X, g.Dims[0])
		cy := g.coord(pi.Y, g.inv.Y, g.Dims[1])
		cz := g.coord(pi.Z, g.inv.Z, g.Dims[2])
		for dz := -1; dz <= 1; dz++ {
			z, ok := g.wrapCoord(cz+dz, g.Dims[2])
			if !ok {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				y, ok := g.wrapCoord(cy+dy, g.Dims[1])
				if !ok {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					x, ok := g.wrapCoord(cx+dx, g.Dims[0])
					if !ok {
						continue
					}
					c := (z*g.Dims[1]+y)*g.Dims[0] + x
					for j := g.head[c]; j >= 0; j = g.next[j] {
						if int(j) == i {
							continue
						}
						d := g.Box.MinImage(s.Pos[j].Sub(pi))
						if d.Norm2() < r2 {
							rl.Neighbors = append(rl.Neighbors, j)
						}
					}
				}
			}
		}
	}
	rl.Offsets[n] = int32(len(rl.Neighbors))
}

// Of returns the neighbor slice of atom i, which must lie in [Lo, Hi).
// An index outside the range, or a corrupt offset table, yields an empty
// slice. The explicit guards are bounds-check elimination: they hand the
// prove pass the facts it needs to drop every implicit check, so the inlined
// body contributes no panic edges to the kernels' pair loops (`mwlint -bce`
// keeps it that way).
//
//mw:hotpath
func (rl *RangeList) Of(i int) []int32 {
	k := i - rl.Lo
	offs := rl.Offsets
	if k < 0 || k >= len(offs) {
		return nil
	}
	seg := offs[k:]
	if len(seg) < 2 {
		return nil
	}
	a, b := int(seg[0]), int(seg[1])
	nb := rl.Neighbors
	if a < 0 || b < a || b > len(nb) {
		return nil
	}
	return nb[a:b]
}

// Len returns the number of stored pairs.
func (rl *RangeList) Len() int { return len(rl.Neighbors) }

// MaxDisplacement2 returns the largest squared displacement of atoms
// [lo, hi) from their reference positions — the per-chunk half of the
// neighbor-list validity check (phase 2).
//
//mw:hotpath
func MaxDisplacement2(s *atom.System, ref []vec.Vec3, lo, hi int) float64 {
	var mx float64
	for i := lo; i < hi; i++ {
		if d := s.Box.MinImage(s.Pos[i].Sub(ref[i])).Norm2(); d > mx {
			mx = d
		}
	}
	return mx
}
