package cells

import "sort"

// Morton (Z-order) indexing of grid cells. Interleaving the bits of the
// three cell coordinates produces a space-filling traversal in which cells
// that are close in index are close in space, so sorting atoms by the Morton
// rank of their cell turns the linked-cell neighbor structure into nearly
// contiguous memory accesses — the spatial data reordering the paper's §V-A
// concluded "was not practical in Java" because JVM heap addresses are not
// under program control. In Go the SoA slices are, so the engine can apply
// the permutation for real (MD-Bench calls this cell-ordered traversal; see
// EXPERIMENTS.md §V-A "engine-native packing").

// morton3 interleaves the low 21 bits of x, y and z (bit k of x lands at bit
// 3k), giving the Z-order key of a cell coordinate triple.
func morton3(x, y, z uint32) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// spread3 spaces the low 21 bits of v three apart (the classic magic-number
// dilation).
func spread3(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// MortonRanks returns rank[c] = position of flat cell index c in the Morton
// traversal of the grid, so sorting atoms by rank[cellIndex(pos)] yields the
// Z-order atom layout. The slice is freshly allocated; callers cache it for
// the grid's lifetime (the engine recomputes it only when the grid itself is
// recreated).
func (g *Grid) MortonRanks() []int32 {
	nc := g.NumCells()
	keys := make([]uint64, nc)
	order := make([]int32, nc)
	for z := 0; z < g.Dims[2]; z++ {
		for y := 0; y < g.Dims[1]; y++ {
			for x := 0; x < g.Dims[0]; x++ {
				c := (z*g.Dims[1]+y)*g.Dims[0] + x
				keys[c] = morton3(uint32(x), uint32(y), uint32(z))
				order[c] = int32(c)
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	ranks := make([]int32, nc)
	for r, c := range order {
		ranks[c] = int32(r)
	}
	return ranks
}
