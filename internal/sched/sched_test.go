package sched

import (
	"math"
	"testing"

	"mw/internal/topo"
)

func TestAffinityNeverViolated(t *testing.T) {
	mask := topo.MaskOf(1, 2)
	s, err := New(Config{
		Machine:    topo.CoreI7,
		Threads:    3,
		Affinity:   []topo.CPUMask{mask, mask, mask},
		Background: 2,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	for w := 0; w < 3; w++ {
		for q := 0; q < s.Quanta(); q++ {
			c := s.CoreAt(w, q)
			if c != Parked && !mask.Has(c) {
				t.Fatalf("worker %d ran on core %d outside mask %v at q=%d", w, c, mask, q)
			}
		}
	}
}

func TestPinnedThreadNeverMigrates(t *testing.T) {
	s, err := New(Config{
		Machine:    topo.CoreI7,
		Threads:    1,
		Affinity:   []topo.CPUMask{topo.MaskOf(2)},
		Background: 3,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5000)
	if s.Migrations(0) != 0 {
		t.Errorf("pinned thread migrated %d times", s.Migrations(0))
	}
}

func TestUnpinnedThreadMigratesUnderLoad(t *testing.T) {
	// Fig 2: without pinning, on a loaded quad-core, the worker visits every
	// core in well under a second (1000 quanta = 1 s at 1 ms quantum).
	s, err := New(Config{
		Machine:    topo.CoreI7,
		Threads:    4,
		Background: 3,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	if m := s.Migrations(0); m == 0 {
		t.Error("unpinned thread never migrated on a loaded system")
	}
	if v := s.CoresVisited(0, 1000); v != 4 {
		t.Errorf("worker visited %d cores in 1s, Fig 2 expects all 4", v)
	}
}

func TestMigrationOrderingPinnedVsFree(t *testing.T) {
	free, err := New(Config{Machine: topo.CoreI7, Threads: 4, Background: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	free.Run(3000)
	pinnedMasks := []topo.CPUMask{topo.MaskOf(0), topo.MaskOf(1), topo.MaskOf(2), topo.MaskOf(3)}
	pinned, err := New(Config{Machine: topo.CoreI7, Threads: 4, Affinity: pinnedMasks, Background: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pinned.Run(3000)
	for w := 0; w < 4; w++ {
		if pinned.Migrations(w) != 0 {
			t.Errorf("pinned worker %d migrated", w)
		}
		if free.Migrations(w) == 0 {
			t.Errorf("free worker %d never migrated", w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Scheduler {
		s, err := New(Config{Machine: topo.XeonE5450, Threads: 4, Background: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(500)
		return s
	}
	a, b := mk(), mk()
	for w := 0; w < 4; w++ {
		if a.Migrations(w) != b.Migrations(w) {
			t.Fatalf("nondeterministic migrations for worker %d", w)
		}
		ta, tb := a.Trace(w), b.Trace(w)
		for q := range ta {
			if ta[q] != tb[q] {
				t.Fatalf("traces diverge at worker %d quantum %d", w, q)
			}
		}
	}
}

func TestLoadMatrixProperties(t *testing.T) {
	s, err := New(Config{Machine: topo.CoreI7, Threads: 2, Background: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	const buckets = 10
	m := s.LoadMatrix(0, buckets)
	if len(m) != 4 {
		t.Fatalf("rows = %d", len(m))
	}
	// Column sums are ≤ 1 (a thread occupies at most one core per quantum)
	// and ≥ 0; total occupancy equals the thread's running fraction.
	var total float64
	for b := 0; b < buckets; b++ {
		var col float64
		for c := 0; c < 4; c++ {
			if m[c][b] < 0 {
				t.Fatal("negative load")
			}
			col += m[c][b]
		}
		if col > 1+1e-9 {
			t.Fatalf("bucket %d occupancy %v > 1", b, col)
		}
		total += col
	}
	if total == 0 {
		t.Error("thread never ran")
	}
	if s.LoadMatrix(0, 0) != nil {
		t.Error("zero buckets must return nil")
	}
}

func TestParkedFractionTracksBlockProb(t *testing.T) {
	s, err := New(Config{Machine: topo.CoreI7, Threads: 1, BlockProb: Prob(0.5), WakeProb: Prob(0.5), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20000)
	parked := 0
	for _, c := range s.Trace(0) {
		if c == Parked {
			parked++
		}
	}
	frac := float64(parked) / 20000
	// Two-state Markov chain with p=q=0.5 has stationary parked fraction 0.5.
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("parked fraction %v, want ≈0.5", frac)
	}
}

func TestStayBiasOneKeepsThreadPut(t *testing.T) {
	// With full stay bias and an idle machine, the previous core always ties
	// for least loaded and is always kept: no migrations.
	s, err := New(Config{Machine: topo.CoreI7, Threads: 1, Background: 0, StayBias: Prob(1), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	if m := s.Migrations(0); m != 0 {
		t.Errorf("fully biased solo thread migrated %d times", m)
	}
	// Default (low) bias on the same idle machine migrates frequently —
	// the paper's Fig 2 behaviour.
	s2, err := New(Config{Machine: topo.CoreI7, Threads: 1, Background: 0, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(2000)
	if s2.Migrations(0) == 0 {
		t.Error("default-bias thread never migrated")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Machine: topo.Machine{}}); err == nil {
		t.Error("zero-core machine accepted")
	}
	if _, err := New(Config{Machine: topo.CoreI7, Threads: 2, Affinity: []topo.CPUMask{1}}); err == nil {
		t.Error("mismatched affinity length accepted")
	}
}

func TestZeroMaskMeansUnrestricted(t *testing.T) {
	s, err := New(Config{
		Machine:    topo.CoreI7,
		Threads:    1,
		Affinity:   []topo.CPUMask{0},
		Background: 3,
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2000)
	if v := s.CoresVisited(0, 2000); v < 2 {
		t.Errorf("zero mask behaved as pinned (visited %d cores)", v)
	}
}

func TestExplicitZeroBlockProbNeverParks(t *testing.T) {
	// Regression: a plain-float64 BlockProb of 0 used to be silently
	// replaced by the 0.4 default, so "never parks" was unsimulatable.
	s, err := New(Config{Machine: topo.CoreI7, Threads: 2, BlockProb: Prob(0), Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5000)
	for w := 0; w < 2; w++ {
		for q := 0; q < s.Quanta(); q++ {
			if s.CoreAt(w, q) == Parked {
				t.Fatalf("worker %d parked at q=%d despite BlockProb=Prob(0)", w, q)
			}
		}
	}
	if got := s.blockProb; got != 0 {
		t.Errorf("resolved blockProb = %v, want 0", got)
	}
}

func TestExplicitZeroWakeProbNeverWakes(t *testing.T) {
	// BlockProb 1 parks the worker on the first quantum; WakeProb Prob(0)
	// must keep it parked forever rather than decaying to the 0.9 default.
	s, err := New(Config{Machine: topo.CoreI7, Threads: 1, BlockProb: Prob(1), WakeProb: Prob(0), Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	for q := 1; q < s.Quanta(); q++ {
		if s.CoreAt(0, q) != Parked {
			t.Fatalf("worker woke at q=%d despite WakeProb=Prob(0)", q)
		}
	}
}

func TestExplicitZeroStayBiasHonored(t *testing.T) {
	// With StayBias Prob(0) on an idle machine every wake placement is a
	// uniform pick over the 4 tied cores, so the migration-per-wake rate is
	// 3/4. Under the silently-applied 0.3 default it is 0.7·3/4 = 0.525.
	// The observed rate over many wakes separates the two cleanly.
	s, err := New(Config{
		Machine: topo.CoreI7, Threads: 1, Background: 0,
		BlockProb: Prob(0.5), WakeProb: Prob(1), StayBias: Prob(0), Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	const quanta = 20000
	s.Run(quanta)
	wakes := 0
	tr := s.Trace(0)
	for q := 1; q < len(tr); q++ {
		if tr[q-1] == Parked && tr[q] != Parked {
			wakes++
		}
	}
	if wakes < 1000 {
		t.Fatalf("too few wakes (%d) for a stable rate", wakes)
	}
	rate := float64(s.Migrations(0)) / float64(wakes)
	if rate < 0.65 {
		t.Errorf("migration-per-wake rate %.3f; want ≈0.75 (unbiased), got the biased default instead?", rate)
	}
	if got := s.stayBias; got != 0 {
		t.Errorf("resolved stayBias = %v, want 0", got)
	}
}

func TestLoadMatrixNonDivisibleBuckets(t *testing.T) {
	// Regression: with quanta % buckets != 0 every bucket used to be
	// normalized by the average width quanta/buckets, so the wider buckets'
	// column sums exceeded 1 (10 quanta / 4 buckets: bucket 0 covers 3
	// quanta but was normalized by 2.5 → 1.2).
	s, err := New(Config{
		Machine: topo.CoreI7, Threads: 1,
		Affinity:  []topo.CPUMask{topo.MaskOf(0)},
		BlockProb: Prob(0), Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	m := s.LoadMatrix(0, 4)
	for b := 0; b < 4; b++ {
		col := 0.0
		for c := range m {
			col += m[c][b]
		}
		if math.Abs(col-1) > 1e-9 {
			t.Errorf("bucket %d column sum = %v, want exactly 1 (always-running pinned thread)", b, col)
		}
	}
}
