// Package sched simulates the operating-system thread scheduler whose
// behaviour drives the paper's §V-B findings: "the Java runtime, in concert
// with the underlying operating system, can migrate a thread between various
// cores … particularly frequent when threads encounter synchronization
// operations … When it awakes, the scheduler will place it on a core based
// on the system load and some degree of affinity with the previously
// assigned core."
//
// The simulation is quantum-based and deterministic for a fixed seed. Worker
// threads park at synchronization points (the engine's per-phase barriers
// make this very frequent for an irregular application) and are re-placed on
// wakeup subject to a hard affinity mask (sched_setaffinity) and a soft
// preference for the previous core. Background threads model other system
// load. The per-quantum core assignment trace reproduces Fig 2 and feeds the
// machine-level timing model.
package sched

import (
	"fmt"
	"math/rand"

	"mw/internal/topo"
)

// Config parameterizes a scheduler simulation.
type Config struct {
	Machine topo.Machine
	// Threads is the number of worker threads.
	Threads int
	// Affinity holds one hard mask per worker; nil or a zero mask means
	// unrestricted ("OS scheduled").
	Affinity []topo.CPUMask
	// Background is the number of background (non-worker) load threads.
	Background int
	// BackgroundDuty is the fraction of quanta each background thread is
	// runnable (default 1.0).
	BackgroundDuty float64
	// BlockProb is the per-quantum probability that a running worker parks
	// at a synchronization point. Irregular applications with per-phase
	// barriers park constantly; nil defaults to 0.4. The field is a pointer
	// so that an explicit Prob(0) ("never parks") is distinguishable from
	// unset — a plain float64 zero value used to be silently replaced by
	// the default, making that scenario impossible to simulate.
	BlockProb *float64
	// WakeProb is the per-quantum probability that a parked worker wakes.
	// nil defaults to 0.9 (barriers are short); Prob(0) means parked
	// threads never wake.
	WakeProb *float64
	// StayBias is the probability that the scheduler keeps a woken thread
	// on its previous core when that core is not the least loaded (soft
	// affinity). nil defaults to 0.3 — the paper observed "the degree of
	// thread affinity was quite low" — and Prob(0) means no deliberate
	// affinity bias at all.
	StayBias *float64
	// MigrateProb is the per-quantum probability that a *running* unpinned
	// thread is moved anyway (rebalancing, interrupt steering, JVM service
	// threads displacing it) — the churn Fig 2 shows even for threads that
	// rarely block. Default 0.
	MigrateProb float64
	// QuantumUS is the scheduling quantum in microseconds (default 1000).
	QuantumUS float64
	Seed      int64
}

// Prob returns a pointer to p, for setting the Config probability fields
// whose zero value must stay distinguishable from "unset".
func Prob(p float64) *float64 { return &p }

// orDefault resolves an optional probability: nil means the default, an
// explicit pointer — including Prob(0) — is honored as configured.
func orDefault(p *float64, def float64) float64 {
	if p == nil {
		return def
	}
	return *p
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.QuantumUS <= 0 {
		c.QuantumUS = 1000
	}
	if c.BackgroundDuty <= 0 || c.BackgroundDuty > 1 {
		c.BackgroundDuty = 1
	}
	return c
}

// Parked marks a thread not currently on any core.
const Parked = -1

// Scheduler is a running simulation.
type Scheduler struct {
	cfg Config
	rng *rand.Rand

	// Resolved probabilities (Config pointers with defaults applied).
	blockProb float64
	wakeProb  float64
	stayBias  float64

	cores      int
	workerCore []int // current core or Parked
	prevCore   []int
	bgCore     []int
	bgActive   []bool
	migrations []int
	quanta     int
	trace      [][]int8 // [worker][quantum] → core or Parked
	bgTrace    [][]int8 // [quantum] → active background cores
}

// New creates a scheduler simulation.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	cores := cfg.Machine.NumCores()
	if cores == 0 {
		return nil, fmt.Errorf("sched: machine has no cores")
	}
	if cores > 64 {
		return nil, fmt.Errorf("sched: at most 64 cores supported")
	}
	if len(cfg.Affinity) != 0 && len(cfg.Affinity) != cfg.Threads {
		return nil, fmt.Errorf("sched: %d affinity masks for %d threads", len(cfg.Affinity), cfg.Threads)
	}
	s := &Scheduler{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		blockProb:  orDefault(cfg.BlockProb, 0.4),
		wakeProb:   orDefault(cfg.WakeProb, 0.9),
		stayBias:   orDefault(cfg.StayBias, 0.3),
		cores:      cores,
		workerCore: make([]int, cfg.Threads),
		prevCore:   make([]int, cfg.Threads),
		bgCore:     make([]int, cfg.Background),
		bgActive:   make([]bool, cfg.Background),
		migrations: make([]int, cfg.Threads),
		trace:      make([][]int8, cfg.Threads),
	}
	// Initial placement: spread workers over allowed cores, background
	// randomly.
	for w := range s.workerCore {
		allowed := s.allowed(w)
		s.workerCore[w] = allowed[w%len(allowed)]
		s.prevCore[w] = s.workerCore[w]
	}
	for b := range s.bgCore {
		s.bgCore[b] = s.rng.Intn(cores)
	}
	return s, nil
}

func (s *Scheduler) allowed(w int) []int {
	if len(s.cfg.Affinity) == 0 || s.cfg.Affinity[w] == 0 {
		all := make([]int, s.cores)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return s.cfg.Affinity[w].Cores()
}

// load returns the number of threads currently on core c.
func (s *Scheduler) load(c int) int {
	n := 0
	for _, wc := range s.workerCore {
		if wc == c {
			n++
		}
	}
	for b, bc := range s.bgCore {
		if s.bgActive[b] && bc == c {
			n++
		}
	}
	return n
}

// Step advances the simulation by one quantum.
func (s *Scheduler) Step() {
	// Background threads drift: each quantum one in four hops to a random
	// core, modelling unrelated system activity; each is runnable only for
	// its duty fraction.
	var bgRow []int8
	for b := range s.bgCore {
		if s.rng.Float64() < 0.25 {
			s.bgCore[b] = s.rng.Intn(s.cores)
		}
		s.bgActive[b] = s.rng.Float64() < s.cfg.BackgroundDuty
		if s.bgActive[b] {
			bgRow = append(bgRow, int8(s.bgCore[b]))
		}
	}
	s.bgTrace = append(s.bgTrace, bgRow)
	for w := range s.workerCore {
		switch {
		case s.workerCore[w] != Parked:
			// Running: maybe park at a synchronization point.
			if s.rng.Float64() < s.blockProb {
				s.prevCore[w] = s.workerCore[w]
				s.workerCore[w] = Parked
				continue
			}
			// Periodic load balancing: a running thread sharing its core
			// is pulled to an idle allowed core when one exists (CFS-style
			// rebalancing; impossible under a single-core affinity mask).
			if s.load(s.workerCore[w]) >= 2 {
				if idle, ok := s.idleAllowedCore(w); ok && s.rng.Float64() < 0.5 {
					s.prevCore[w] = s.workerCore[w]
					s.workerCore[w] = idle
					s.migrations[w]++
					continue
				}
			}
			// Unprovoked churn: rebalancing and interrupt steering move
			// even busy threads.
			if s.cfg.MigrateProb > 0 && s.rng.Float64() < s.cfg.MigrateProb {
				s.prevCore[w] = s.workerCore[w]
				s.place(w)
			}
		default:
			// Parked: maybe wake; placement decision happens here.
			if s.rng.Float64() < s.wakeProb {
				s.place(w)
			}
		}
	}
	for w := range s.workerCore {
		s.trace[w] = append(s.trace[w], int8(s.workerCore[w]))
	}
	s.quanta++
}

// idleAllowedCore returns an allowed core with zero load, if any.
func (s *Scheduler) idleAllowedCore(w int) (int, bool) {
	for _, c := range s.allowed(w) {
		if s.load(c) == 0 {
			return c, true
		}
	}
	return 0, false
}

// place chooses a core for woken worker w among the least-loaded allowed
// cores. The previous core is kept with probability StayBias when it ties
// for least loaded; otherwise the scheduler picks randomly among the
// minimum-load candidates — which on a symmetric idle machine means woken
// threads hop cores constantly, exactly the low affinity the paper observed
// ("the thread visited every core in the system in less than one second").
func (s *Scheduler) place(w int) {
	allowed := s.allowed(w)
	prev := s.prevCore[w]
	minLoad := int(^uint(0) >> 1)
	for _, c := range allowed {
		if l := s.load(c); l < minLoad {
			minLoad = l
		}
	}
	candidates := make([]int, 0, len(allowed))
	prevTies := false
	for _, c := range allowed {
		if s.load(c) == minLoad {
			candidates = append(candidates, c)
			if c == prev {
				prevTies = true
			}
		}
	}
	best := prev
	if !prevTies || s.rng.Float64() >= s.stayBias {
		best = candidates[s.rng.Intn(len(candidates))]
	}
	if best != prev {
		s.migrations[w]++
	}
	s.workerCore[w] = best
}

// Run advances the simulation n quanta.
func (s *Scheduler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Quanta returns the number of simulated quanta.
func (s *Scheduler) Quanta() int { return s.quanta }

// Migrations returns how many times worker w changed cores on wakeup.
func (s *Scheduler) Migrations(w int) int { return s.migrations[w] }

// Trace returns worker w's per-quantum core assignment (Parked = -1). The
// slice aliases internal storage.
func (s *Scheduler) Trace(w int) []int8 { return s.trace[w] }

// CoreAt returns the core worker w occupied during quantum q, or Parked.
func (s *Scheduler) CoreAt(w, q int) int { return int(s.trace[w][q]) }

// BackgroundAt returns the cores occupied by active background threads
// during quantum q.
func (s *Scheduler) BackgroundAt(q int) []int8 { return s.bgTrace[q] }

// LoadMatrix buckets worker w's trace into the Fig 2 heat map: rows are
// cores, columns time buckets, values the fraction of each bucket's quanta
// the worker spent on that core. Each bucket is normalized by the number of
// quanta it actually covers — when quanta does not divide evenly into
// buckets the widths differ, and normalizing by the average width would push
// the wider buckets' fractions past 1.
func (s *Scheduler) LoadMatrix(w, buckets int) [][]float64 {
	if buckets <= 0 || s.quanta == 0 {
		return nil
	}
	m := make([][]float64, s.cores)
	for c := range m {
		m[c] = make([]float64, buckets)
	}
	per := float64(s.quanta) / float64(buckets)
	width := make([]int, buckets)
	for q := 0; q < s.quanta; q++ {
		b := int(float64(q) / per)
		if b >= buckets {
			b = buckets - 1
		}
		width[b]++
	}
	for q, c := range s.trace[w] {
		if c < 0 {
			continue
		}
		b := int(float64(q) / per)
		if b >= buckets {
			b = buckets - 1
		}
		m[c][b] += 1 / float64(width[b])
	}
	return m
}

// CoresVisited returns the distinct cores worker w has run on within the
// first n quanta (n ≤ recorded quanta); Fig 2's headline observation is that
// an unpinned thread visits every core of a quad-core system in under one
// second.
func (s *Scheduler) CoresVisited(w, n int) int {
	if n > len(s.trace[w]) {
		n = len(s.trace[w])
	}
	var seen uint64
	for q := 0; q < n; q++ {
		if c := s.trace[w][q]; c >= 0 {
			seen |= 1 << uint(c)
		}
	}
	count := 0
	for c := 0; c < s.cores; c++ {
		if seen&(1<<uint(c)) != 0 {
			count++
		}
	}
	return count
}
