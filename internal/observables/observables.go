// Package observables provides the standard observables a molecular dynamics
// user computes from trajectories: radial distribution functions, mean
// squared displacement, velocity autocorrelation, and the virial pressure.
// These are the quantities the Molecular Workbench GUI plots for students;
// here they double as physics-level validation of the engine.
package observables

import (
	"math"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/units"
	"mw/internal/vec"
)

// RDF accumulates the radial distribution function g(r) over snapshots.
type RDF struct {
	RMax   float64
	Bins   []float64 // accumulated pair counts per shell
	nAtoms int
	frames int
	volume float64
}

// NewRDF creates an accumulator with nbins shells up to rmax.
func NewRDF(rmax float64, nbins int) *RDF {
	if rmax <= 0 || nbins <= 0 {
		panic("analysis: invalid RDF parameters")
	}
	return &RDF{RMax: rmax, Bins: make([]float64, nbins)}
}

// Accumulate adds one snapshot (all pairs, minimum image).
func (r *RDF) Accumulate(s *atom.System) {
	n := s.N()
	dr := r.RMax / float64(len(r.Bins))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.Box.MinImage(s.Pos[j].Sub(s.Pos[i])).Norm()
			if d < r.RMax {
				r.Bins[int(d/dr)] += 2 // each pair counts for both atoms
			}
		}
	}
	r.nAtoms = n
	r.frames++
	r.volume = s.Box.Volume()
}

// G returns the normalized g(r) at bin centers.
func (r *RDF) G() (rs, g []float64) {
	if r.frames == 0 || r.nAtoms == 0 {
		return nil, nil
	}
	dr := r.RMax / float64(len(r.Bins))
	rho := float64(r.nAtoms) / r.volume
	rs = make([]float64, len(r.Bins))
	g = make([]float64, len(r.Bins))
	for b := range r.Bins {
		rs[b] = (float64(b) + 0.5) * dr
		shell := 4 * math.Pi * rs[b] * rs[b] * dr
		ideal := rho * shell * float64(r.nAtoms) * float64(r.frames)
		if ideal > 0 {
			g[b] = r.Bins[b] / ideal
		}
	}
	return rs, g
}

// MSD tracks mean squared displacement from a reference snapshot, with
// periodic-image unwrapping.
type MSD struct {
	ref    []vec.Vec3
	prev   []vec.Vec3
	unwrap []vec.Vec3 // accumulated unwrapped displacement
	box    atom.Box
}

// NewMSD captures the reference positions.
func NewMSD(s *atom.System) *MSD {
	return &MSD{
		ref:    append([]vec.Vec3(nil), s.Pos...),
		prev:   append([]vec.Vec3(nil), s.Pos...),
		unwrap: make([]vec.Vec3, s.N()),
		box:    s.Box,
	}
}

// Update advances the unwrapped displacement using minimum-image steps and
// returns the current MSD in Å².
func (m *MSD) Update(s *atom.System) float64 {
	var sum float64
	for i := range m.ref {
		step := m.box.MinImage(s.Pos[i].Sub(m.prev[i]))
		m.unwrap[i] = m.unwrap[i].Add(step)
		m.prev[i] = s.Pos[i]
		sum += m.unwrap[i].Norm2()
	}
	return sum / float64(len(m.ref))
}

// VACF accumulates the normalized velocity autocorrelation C(k) between the
// reference snapshot's velocities and later ones.
type VACF struct {
	v0     []vec.Vec3
	norm   float64
	Series []float64
}

// NewVACF captures reference velocities.
func NewVACF(s *atom.System) *VACF {
	v := &VACF{v0: append([]vec.Vec3(nil), s.Vel...)}
	for _, u := range v.v0 {
		v.norm += u.Norm2()
	}
	return v
}

// Sample appends C(now) = <v(0)·v(t)> / <v(0)²>.
func (v *VACF) Sample(s *atom.System) float64 {
	var dot float64
	for i, u := range v.v0 {
		dot += u.Dot(s.Vel[i])
	}
	c := 0.0
	if v.norm > 0 {
		c = dot / v.norm
	}
	v.Series = append(v.Series, c)
	return c
}

// Pressure returns the instantaneous virial pressure of an LJ system in
// eV/Å³: P = (N·k_B·T + W/3) / V with W = Σ_pairs f·r. Only Lennard-Jones
// pair interactions contribute to the virial here (the paper's benchmarks
// are evaluated in closed boxes; pressure is an engine-validation
// diagnostic for periodic LJ systems).
func Pressure(s *atom.System, lj *LJVirial) float64 {
	if !s.Box.Periodic {
		panic("analysis: pressure needs a periodic box")
	}
	w := lj.Virial(s)
	n := float64(s.NumMobile())
	v := s.Box.Volume()
	return (n*units.Boltzmann*s.Temperature() + w/3) / v
}

// LJVirial computes the Lennard-Jones pair virial with the same cutoff and
// combination rules as the engine's force kernel.
type LJVirial struct {
	Cutoff float64
	Skin   float64
	nl     *cells.NeighborList
}

// NewLJVirial creates a virial calculator.
func NewLJVirial(cutoff, skin float64) *LJVirial {
	return &LJVirial{Cutoff: cutoff, Skin: skin, nl: cells.NewNeighborList(cutoff, skin)}
}

// Virial returns W = Σ_pairs f(r)·r for the LJ interactions.
func (l *LJVirial) Virial(s *atom.System) float64 {
	l.nl.Build(s)
	c2 := l.Cutoff * l.Cutoff
	var w float64
	for i := 0; i < s.N(); i++ {
		ei := s.Elements[s.Elem[i]]
		for _, j := range l.nl.Of(i) {
			if s.Excl.Excluded(int32(i), j) {
				continue
			}
			d := s.Box.MinImage(s.Pos[j].Sub(s.Pos[i]))
			r2 := d.Norm2()
			if r2 >= c2 || r2 == 0 {
				continue
			}
			sigma, eps := atom.MixLJ(ei, s.Elements[s.Elem[j]])
			sr2 := sigma * sigma / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			// f·r = 24ε(2(σ/r)¹² − (σ/r)⁶)
			w += 24 * eps * (2*sr12 - sr6)
		}
	}
	return w
}
