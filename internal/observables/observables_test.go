package observables

import (
	"math"
	"math/rand"
	"testing"

	"mw/internal/atom"
	"mw/internal/core"
	"mw/internal/units"
	"mw/internal/vec"
	"mw/internal/workload"
)

// idealGas places non-interacting points uniformly in a periodic box.
func idealGas(seed int64, n int, l float64) *atom.System {
	s := atom.NewSystem(atom.CubicBox(l, true))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.AddAtom(atom.Ar, vec.New(rng.Float64()*l, rng.Float64()*l, rng.Float64()*l), vec.Zero, 0, false)
	}
	return s
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	// For uniform random points, g(r) ≈ 1 at all r below L/2.
	s := idealGas(1, 600, 20)
	r := NewRDF(8, 16)
	for k := 0; k < 5; k++ {
		r.Accumulate(s)
	}
	rs, g := r.G()
	if len(rs) != 16 {
		t.Fatalf("bins = %d", len(rs))
	}
	for b := 2; b < len(g); b++ { // skip the smallest shells (poor statistics)
		if math.Abs(g[b]-1) > 0.25 {
			t.Errorf("ideal-gas g(%.2f) = %.3f, want ≈1", rs[b], g[b])
		}
	}
}

func TestRDFLatticePeaks(t *testing.T) {
	// A perfect cubic lattice has a sharp peak at the lattice spacing and a
	// gap below it.
	const a = 4.0
	s := atom.NewSystem(atom.CubicBox(8*a, true))
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				s.AddAtom(atom.Ar, vec.New(float64(x)*a, float64(y)*a, float64(z)*a), vec.Zero, 0, false)
			}
		}
	}
	r := NewRDF(6, 60)
	r.Accumulate(s)
	rs, g := r.G()
	peakBin, gapBin := -1, -1
	for b := range rs {
		if math.Abs(rs[b]-a) < 0.06 {
			peakBin = b
		}
		if math.Abs(rs[b]-0.6*a) < 0.06 {
			gapBin = b
		}
	}
	if peakBin < 0 || gapBin < 0 {
		t.Fatal("bins not found")
	}
	if g[peakBin] < 10 {
		t.Errorf("no lattice peak: g(a) = %v", g[peakBin])
	}
	if g[gapBin] != 0 {
		t.Errorf("lattice gap not empty: g(0.6a) = %v", g[gapBin])
	}
}

func TestRDFPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad RDF params accepted")
		}
	}()
	NewRDF(0, 10)
}

func TestMSDBallisticFreeParticles(t *testing.T) {
	// Non-interacting particles moving at constant velocity: MSD = <v²>t².
	s := idealGas(2, 100, 50)
	rng := rand.New(rand.NewSource(3))
	var v2 float64
	for i := range s.Vel {
		s.Vel[i] = vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.01)
		v2 += s.Vel[i].Norm2()
	}
	v2 /= float64(s.N())
	m := NewMSD(s)
	const dt = 1.0
	var msd float64
	for step := 1; step <= 50; step++ {
		for i := range s.Pos {
			s.Pos[i] = s.Box.Wrap(s.Pos[i].AddScaled(dt, s.Vel[i]))
		}
		msd = m.Update(s)
	}
	want := v2 * 50 * 50 // (vt)²
	if math.Abs(msd-want)/want > 1e-9 {
		t.Errorf("ballistic MSD = %v, want %v", msd, want)
	}
}

func TestMSDUnwrapsPeriodicImages(t *testing.T) {
	// One particle crossing the periodic boundary many times: unwrapped MSD
	// keeps growing rather than folding back.
	s := atom.NewSystem(atom.CubicBox(10, true))
	s.AddAtom(atom.Ar, vec.New(5, 5, 5), vec.New(1, 0, 0), 0, false)
	m := NewMSD(s)
	var msd float64
	for step := 0; step < 100; step++ {
		s.Pos[0] = s.Box.Wrap(s.Pos[0].Add(vec.New(1, 0, 0)))
		msd = m.Update(s)
	}
	if math.Abs(msd-100*100) > 1e-6 {
		t.Errorf("unwrapped MSD = %v, want 10000", msd)
	}
}

func TestVACFStartsAtOneAndDecorrelates(t *testing.T) {
	b := workload.LJGas(4, 150, true)
	sim, err := core.New(b.Sys, b.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	v := NewVACF(b.Sys)
	if c := v.Sample(b.Sys); math.Abs(c-1) > 1e-12 {
		t.Fatalf("C(0) = %v, want 1", c)
	}
	var last float64
	for k := 0; k < 30; k++ {
		sim.Run(10)
		last = v.Sample(b.Sys)
	}
	if math.Abs(last) >= 0.9 {
		t.Errorf("VACF did not decay: C(end) = %v", last)
	}
	if len(v.Series) != 31 {
		t.Errorf("series length %d", len(v.Series))
	}
}

func TestPressureDiluteGasApproachesIdeal(t *testing.T) {
	// A dilute thermalized LJ gas (atoms kept out of each other's repulsive
	// core): P ≈ ρ k_B T within the small attractive virial correction.
	s := atom.NewSystem(atom.CubicBox(60, true))
	rng := rand.New(rand.NewSource(5))
	for s.N() < 200 {
		p := vec.New(rng.Float64()*60, rng.Float64()*60, rng.Float64()*60)
		ok := true
		for _, q := range s.Pos {
			if s.Box.MinImage(q.Sub(p)).Norm() < 4.5 {
				ok = false
				break
			}
		}
		if ok {
			s.AddAtom(atom.Ar, p, vec.Zero, 0, false)
		}
	}
	s.Thermalize(300, rand.New(rand.NewSource(6)))
	lv := NewLJVirial(8, 0.5)
	p := Pressure(s, lv)
	ideal := float64(s.N()) / s.Box.Volume() * units.Boltzmann * s.Temperature()
	if math.Abs(p-ideal)/ideal > 0.2 {
		t.Errorf("dilute pressure %v vs ideal %v", p, ideal)
	}
}

func TestPressureCompressedGasExceedsIdeal(t *testing.T) {
	// Compress argon below σ spacing: the repulsive virial dominates and
	// P ≫ ρkT.
	s := atom.NewSystem(atom.CubicBox(12, true))
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			for z := 0; z < 4; z++ {
				s.AddAtom(atom.Ar, vec.New(float64(x)*3, float64(y)*3, float64(z)*3), vec.Zero, 0, false)
			}
		}
	}
	s.Thermalize(100, rand.New(rand.NewSource(7)))
	lv := NewLJVirial(5, 0.3)
	p := Pressure(s, lv)
	ideal := float64(s.N()) / s.Box.Volume() * units.Boltzmann * s.Temperature()
	if p <= 2*ideal {
		t.Errorf("compressed pressure %v not ≫ ideal %v", p, ideal)
	}
}

func TestPressurePanicsOnOpenBox(t *testing.T) {
	s := atom.NewSystem(atom.CubicBox(10, false))
	defer func() {
		if recover() == nil {
			t.Error("open-box pressure accepted")
		}
	}()
	Pressure(s, NewLJVirial(5, 0.3))
}
