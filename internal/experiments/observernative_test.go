package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestObserverNativeProducesRowsAndReport(t *testing.T) {
	// Tiny steps/trials: this exercises the full off/ring/naive pipeline,
	// not the timing quality, so the budget is set high enough that host
	// noise cannot fail the run.
	r, err := ObserverNative(2, 1, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.OffWall <= 0 || row.RingWall <= 0 || row.TracerWall <= 0 || row.NaiveWall <= 0 {
			t.Errorf("%s: non-positive wall times: off=%v ring=%v tracer=%v naive=%v",
				row.Workload, row.OffWall, row.RingWall, row.TracerWall, row.NaiveWall)
		}
		if row.RingChunkEvents == 0 {
			t.Errorf("%s: recorder saw no chunk events", row.Workload)
		}
		if row.TracerSteps == 0 {
			t.Errorf("%s: tracer assembled no step records", row.Workload)
		}
	}
	if !strings.Contains(r.Report, "observer effect") {
		t.Errorf("report missing title:\n%s", r.Report)
	}
	if !strings.Contains(r.Report, "PASS") && !strings.Contains(r.Report, "FAIL") {
		t.Errorf("report has no verdict:\n%s", r.Report)
	}
}

func TestObserverNativeGate(t *testing.T) {
	res := &ObserverNativeResult{
		BudgetPct: 2,
		Rows: []ObserverNativeRow{
			{Workload: "ok", RingOverheadPct: 1.2, TracerOverheadPct: 1.4, RingChunkEvents: 10, TracerSteps: 5},
		},
	}
	if err := res.Gate(); err != nil {
		t.Errorf("in-budget row failed the gate: %v", err)
	}
	res.Rows = append(res.Rows, ObserverNativeRow{Workload: "hot", RingOverheadPct: 2.5, RingChunkEvents: 10, TracerSteps: 5})
	if err := res.Gate(); err == nil || !strings.Contains(err.Error(), "hot") {
		t.Errorf("over-budget row not reported: %v", err)
	}
	res.Rows = []ObserverNativeRow{
		{Workload: "hot-tracer", RingOverheadPct: 1.0, TracerOverheadPct: 2.5, RingChunkEvents: 10, TracerSteps: 5},
	}
	if err := res.Gate(); err == nil || !strings.Contains(err.Error(), "structured tracer") {
		t.Errorf("over-budget tracer not reported: %v", err)
	}
	res.Rows = []ObserverNativeRow{{Workload: "empty", RingOverheadPct: 0}}
	if err := res.Gate(); err == nil || !strings.Contains(err.Error(), "measured nothing") {
		t.Errorf("zero-event row not reported: %v", err)
	}
	res.Rows = []ObserverNativeRow{{Workload: "no-steps", RingChunkEvents: 10}}
	if err := res.Gate(); err == nil || !strings.Contains(err.Error(), "no step records") {
		t.Errorf("zero-step tracer row not reported: %v", err)
	}
}

func TestOverheadEstimateTakesTheSmallerBound(t *testing.T) {
	ms := func(vs ...float64) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v * float64(time.Millisecond))
		}
		return out
	}
	// Two preempted ring trials inflate the median to 10%, but the min
	// walls agree at 100ms: the floor estimator wins and reports 0.
	off := ms(100, 100, 100)
	ring := ms(110, 110, 100)
	if got := overheadEstimate(ring, off); got != 0 {
		t.Errorf("outlier trials: got %.3f%%, want 0", got)
	}
	// A genuine 10% cost moves every trial together: both estimators see
	// it and the gate cannot be dodged.
	ring = ms(110, 110, 110)
	if got := overheadEstimate(ring, off); got < 9.9 || got > 10.1 {
		t.Errorf("real cost: got %.3f%%, want ~10", got)
	}
	// Drift: the off series never lands a quiet slot as low as its true
	// floor in the same trials the ring does, but pairing cancels it.
	off = ms(100, 120, 140)
	ring = ms(101, 121, 141)
	if got := overheadEstimate(ring, off); got > 1.1 {
		t.Errorf("drift: got %.3f%%, want ~<=1", got)
	}
	// A clamped negative is noise, not a speedup.
	if got := overheadEstimate(ms(95, 96, 97), ms(100, 100, 100)); got != 0 {
		t.Errorf("faster-than-off: got %.3f%%, want 0", got)
	}
	if got := overheadEstimate(nil, nil); got != 0 {
		t.Errorf("empty series: got %.3f%%, want 0", got)
	}
}

func TestMedianOverheadPct(t *testing.T) {
	d := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v)
		}
		return out
	}
	if got := medianOverheadPct(d(102, 104, 199), d(100, 100, 100)); got != 4 {
		t.Errorf("odd count: got %v, want 4 (median ignores the outlier)", got)
	}
	if got := medianOverheadPct(d(102, 104), d(100, 100)); got != 3 {
		t.Errorf("even count: got %v, want 3", got)
	}
	if got := medianOverheadPct(d(90, 95, 98), d(100, 100, 100)); got != 0 {
		t.Errorf("negative median clamps: got %v, want 0", got)
	}
}
