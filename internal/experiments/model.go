package experiments

import "mw/internal/cache"

// modelHier is the shared cache-hierarchy calibration used by every
// machine-model experiment: 64 B lines, Nehalem-class latencies, a
// MemService of 240 cycles (~90 ns per random 64 B line per channel — the
// mostly-row-miss DRAM behaviour of a pointer-scattered Java heap), and an
// MLP of 8 (out-of-order + streamer overlap), which together reproduce the
// paper's Fig 1 shape. EXPERIMENTS.md records the calibration rationale.
var modelHier = cache.HierConfig{MemService: 240, MLP: 8}
