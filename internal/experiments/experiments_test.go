package experiments

import (
	"strings"
	"testing"
	"time"

	"mw/internal/jheap"
)

func TestTable1MatchesPaper(t *testing.T) {
	out := Table1()
	for _, frag := range []string{
		"nanocar", "989", "2277", "Bonds",
		"salt", "800", "Ionic",
		"Al-1000", "1000", "Lennard-Jones",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table1 missing %q:\n%s", frag, out)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	out := Table2(false)
	for _, frag := range []string{
		"Core i7 920", "1x4", "8 MB shared/4 cores", "6 GB",
		"Xeon E5450", "2x4", "6 MB shared/2 cores", "16 GB",
		"Xeon X7560", "4x8", "24 MB shared/8 cores", "192 GB",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table2 missing %q:\n%s", frag, out)
		}
	}
	verbose := Table2(true)
	if !strings.Contains(verbose, "Machine #0") || !strings.Contains(verbose, "PU #") {
		t.Error("verbose Table2 missing topology trees")
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	// Small budget run: the ordering and the headline gap must hold —
	// salt and nanocar scale, Al-1000 barely does.
	r, err := Fig1(120_000_000)
	if err != nil {
		t.Fatal(err)
	}
	salt := r.Speedup["salt"][3]
	nano := r.Speedup["nanocar"][3]
	al := r.Speedup["Al-1000"][3]
	if salt < 2.5 {
		t.Errorf("salt 4-core speedup %v < 2.5 (paper 3.63)", salt)
	}
	if nano < 2.2 {
		t.Errorf("nanocar 4-core speedup %v < 2.2 (paper 3.03)", nano)
	}
	if al > 2.2 {
		t.Errorf("Al-1000 4-core speedup %v > 2.2 (paper 1.42)", al)
	}
	if !(salt > al && nano > al) {
		t.Errorf("ordering violated: salt %v, nanocar %v, Al-1000 %v", salt, nano, al)
	}
	// Every curve starts at 1.
	for name, sp := range r.Speedup {
		if sp[0] != 1 {
			t.Errorf("%s speedup(1) = %v", name, sp[0])
		}
	}
	if !strings.Contains(r.Report, "Fig 1") {
		t.Error("report missing title")
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2()
	if r.CoresVisited != 4 {
		t.Errorf("worker visited %d cores, want 4", r.CoresVisited)
	}
	if r.QuantaTo4 == 0 || r.QuantaTo4 > 1000 {
		t.Errorf("all cores visited in %d ms, paper observed <1s", r.QuantaTo4)
	}
	if r.Migrations == 0 {
		t.Error("no migrations without pinning")
	}
	if !strings.Contains(r.Report, "core 3") {
		t.Error("heat map missing rows")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seconds) != 7 {
		t.Fatalf("rows = %d", len(r.Seconds))
	}
	sec := map[string]float64{}
	for i, row := range r.Rows {
		sec[itoaKey(row.Cores, row.Topology)] = r.Seconds[i]
	}
	// Spread across packages is the worst 4-core topology (the paper's
	// 172.2 s row).
	spread4 := sec[itoaKey(4, "one core per processor")]
	if spread4 < sec[itoaKey(4, "4 cores on one processor")] ||
		spread4 < sec[itoaKey(4, "OS scheduled")] {
		t.Errorf("4-core spread (%v) is not the slowest 4-core row", spread4)
	}
	// 8 pinned cores on one socket beat every 4-core row.
	if sec[itoaKey(8, "8 cores on one processor")] >= sec[itoaKey(4, "OS scheduled")] {
		t.Error("8 pinned cores not faster than 4 cores")
	}
	// One-socket pinning is the best 8-core row.
	one8 := sec[itoaKey(8, "8 cores on one processor")]
	if one8 > sec[itoaKey(8, "OS scheduled")] || one8 > sec[itoaKey(8, "two cores per processor")] {
		t.Error("8-on-one-socket is not the fastest 8-core row")
	}
	// 32 OS is the overall fastest.
	for k, v := range sec {
		if v < sec[itoaKey(32, "OS scheduled")] {
			t.Errorf("row %s (%v) faster than 32-core OS", k, v)
		}
	}
}

func itoaKey(cores int, topo string) string {
	return strings.TrimSpace(topo) + "/" + strings.Repeat("I", cores)
}

func TestObserverModeledOrdering(t *testing.T) {
	r, err := Observer(4000, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	sync := r.ModelMonitored["synchronized"]
	atomic := r.ModelMonitored["atomic"]
	sharded := r.ModelMonitored["sharded"]
	if !(sync > atomic && atomic > sharded) {
		t.Errorf("modeled ordering violated: sync %d, atomic %d, sharded %d", sync, atomic, sharded)
	}
	if sharded < r.ModelBaseline {
		t.Errorf("sharded monitor faster than no monitor: %d vs %d", sharded, r.ModelBaseline)
	}
	// Synchronized monitoring costs at least 15% on the modeled machine.
	if float64(sync)/float64(r.ModelBaseline) < 1.15 {
		t.Errorf("synchronized slowdown %v too small", float64(sync)/float64(r.ModelBaseline))
	}
	if r.Baseline <= 0 || r.EngineBaseline <= 0 {
		t.Error("wall-clock baselines missing")
	}
}

func TestSamplingGranularityShape(t *testing.T) {
	r := Sampling(1500)
	fine := r.Reports[100*time.Microsecond]
	coarse := r.Reports[10*time.Millisecond]
	second := r.Reports[time.Second]
	if fine.DetectionRate() < 0.9 {
		t.Errorf("fine sampler detection %v", fine.DetectionRate())
	}
	if coarse.DetectionRate() >= fine.DetectionRate() {
		t.Error("coarse sampler not worse than fine")
	}
	if second.DetectionRate() > 0.15 {
		t.Errorf("1s sampler detected %v of 500µs events", second.DetectionRate())
	}
}

func TestImbalanceBlockWorstForSalt(t *testing.T) {
	r, err := Imbalance(8)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ImbalanceRow{}
	for _, row := range r.Rows {
		byKey[row.Benchmark+"/"+row.Partition.String()] = row
	}
	// Salt's triangular Coulomb load: block much worse than cyclic.
	if byKey["salt/block"].MeanStepImbalance <= byKey["salt/cyclic"].MeanStepImbalance {
		t.Errorf("salt block imbalance %v not above cyclic %v",
			byKey["salt/block"].MeanStepImbalance, byKey["salt/cyclic"].MeanStepImbalance)
	}
	if !strings.Contains(r.Report, "Static work distribution") {
		t.Error("static work table missing")
	}
}

func TestPackingLayoutOrdering(t *testing.T) {
	r, err := Packing(4)
	if err != nil {
		t.Fatal(err)
	}
	byLayout := map[jheap.Layout]PackingRow{}
	for _, row := range r.Rows {
		byLayout[row.Layout] = row
	}
	if byLayout[jheap.LayoutPacked].Cycles >= byLayout[jheap.LayoutScattered].Cycles {
		t.Errorf("packed (%d) not faster than scattered (%d)",
			byLayout[jheap.LayoutPacked].Cycles, byLayout[jheap.LayoutScattered].Cycles)
	}
	if byLayout[jheap.LayoutPacked].L2MissRate >= byLayout[jheap.LayoutScattered].L2MissRate {
		t.Error("packed L2 miss rate not below scattered")
	}
}

func TestPollutionFindings(t *testing.T) {
	r, err := Pollution(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Vec3Fraction <= 0.5 {
		t.Errorf("Vec3 live-heap share %v ≤ 0.5 (paper: over 50%%)", r.Vec3Fraction)
	}
	if r.CyclesWithTemps <= r.CyclesWithoutTemps {
		t.Error("temp churn did not slow the run")
	}
	if r.MissesWithTemps <= r.MissesWithoutTemps {
		t.Error("temp churn did not push more accesses past L2")
	}
}

func TestPMEAccuracyAndScaling(t *testing.T) {
	r, err := PME(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.EnergyRelErr > 0.01 {
			t.Errorf("N=%d energy error %v", row.N, row.EnergyRelErr)
		}
		if row.ForceRelErr > 0.05 {
			t.Errorf("N=%d force error %v", row.N, row.ForceRelErr)
		}
	}
	// PME/direct ratio must fall with N (the crossover trend).
	r0 := r.Rows[0].PMESec / r.Rows[0].DirectSec
	r1 := r.Rows[1].PMESec / r.Rows[1].DirectSec
	if r1 >= r0 {
		t.Errorf("PME/direct ratio not falling: %v → %v", r0, r1)
	}
}

func TestAblationRuns(t *testing.T) {
	r, err := Ablation(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.FusedSec <= 0 || r.SeparateSec <= 0 || r.PrivatizedSec <= 0 || r.MutexSec <= 0 {
		t.Error("missing timings")
	}
	// The half-list shape is deterministic: front third owns more pairs.
	if r.HalfFirstThird <= r.HalfLastThird {
		t.Errorf("half-list shape wrong: %d vs %d", r.HalfFirstThird, r.HalfLastThird)
	}
	if !strings.Contains(r.Report, "rebuild fusion") {
		t.Error("report incomplete")
	}
}

func TestEngineTimelineDemo(t *testing.T) {
	h, err := engineTimelineDemo()
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Error("empty recorded timeline")
	}
}

func TestThreadViewReport(t *testing.T) {
	r, err := ThreadView(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"ground truth", "sample-and-hold", "thread 3"} {
		if !strings.Contains(r.Report, frag) {
			t.Errorf("threadview report missing %q", frag)
		}
	}
	if len(r.Timeline.PhaseSpans) != 10 {
		t.Errorf("recorded %d phase spans, want 10", len(r.Timeline.PhaseSpans))
	}
	// Block partition on salt: strong spread between the heaviest and
	// lightest workers (the triangular Coulomb chunks land as one block).
	busy := make([]time.Duration, 4)
	for _, span := range r.Timeline.PhaseSpans {
		for w, d := range span.Busy {
			busy[w] += d
		}
	}
	mx, mn := busy[0], busy[0]
	for _, d := range busy[1:] {
		if d > mx {
			mx = d
		}
		if d < mn {
			mn = d
		}
	}
	if float64(mx) < 1.5*float64(mn) {
		t.Errorf("block partition spread too small: %v", busy)
	}
}

func TestFig1NativeRuns(t *testing.T) {
	r, err := Fig1Native(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Order {
		sp := r.Speedup[name]
		if len(sp) != 4 || sp[0] != 1 {
			t.Errorf("%s speedup series malformed: %v", name, sp)
		}
	}
	if !strings.Contains(r.Report, "native") {
		t.Error("native report missing label")
	}
}

func TestScalingExponents(t *testing.T) {
	r, err := Scaling(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.LJSlope < 0.6 || r.LJSlope > 1.4 {
		t.Errorf("LJ exponent %v outside ~O(N)", r.LJSlope)
	}
	if r.CoulSlope < 1.6 || r.CoulSlope > 2.4 {
		t.Errorf("Coulomb exponent %v outside ~O(N²)", r.CoulSlope)
	}
	if r.CoulSlope <= r.LJSlope {
		t.Error("Coulomb path does not scale worse than LJ path")
	}
}
