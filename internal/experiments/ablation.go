package experiments

import (
	"fmt"
	"time"

	"mw/internal/cells"
	"mw/internal/core"
	"mw/internal/report"
	"mw/internal/workload"
)

// AblationResult holds the design-choice ablations DESIGN.md calls out.
type AblationResult struct {
	FusedSec, SeparateSec         float64
	SharedQueueSec, PerQueueSec   float64
	StealingSec                   float64
	StealCount                    int64
	SharedContended, PerContended int64
	PrivatizedSec, MutexSec       float64
	HalfSec, FullSec              float64
	VerletSec, BeemanSec          float64
	HalfFirstThird, HalfLastThird int
	Report                        string
}

// timeRun advances a fresh clone of the benchmark and returns seconds.
func timeRun(b *workload.Benchmark, cfg core.Config, steps int) (float64, *core.Simulation, error) {
	sim, err := core.New(b.Sys.Clone(), cfg)
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	sim.Run(steps)
	return time.Since(start).Seconds(), sim, nil
}

// Ablation measures the engine design choices:
//
//   - fused rebuild+force (the paper's §II-A loop fusion) vs a separate
//     rebuild phase;
//   - one shared work queue vs per-worker queues (§II-B), with the queue
//     contention counters;
//   - privatized force arrays + reduction (phase 5) vs a mutex-guarded
//     shared array;
//   - the half-pair-list load shape (§II-B: lower-numbered atoms do more
//     work).
func Ablation(steps int) (*AblationResult, error) {
	if steps <= 0 {
		steps = 30
	}
	res := &AblationResult{}
	al := workload.Al1000()

	// Fusion: Al-1000 rebuilds nearly every step, so the separate phase
	// costs an extra pass + barrier per step.
	var err error
	var sim *core.Simulation
	cfgF := al.Cfg
	cfgF.Threads = 2
	res.FusedSec, sim, err = timeRun(al, cfgF, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()
	cfgS := cfgF
	cfgS.SeparateRebuild = true
	res.SeparateSec, sim, err = timeRun(al, cfgS, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()

	// Queue topology on salt with 4 workers.
	salt := workload.Salt()
	cfgQ := salt.Cfg
	cfgQ.Threads = 4
	cfgQ.Queues = core.SharedQueue
	secShared, simShared, err := timeRun(salt, cfgQ, steps)
	if err != nil {
		return nil, err
	}
	res.SharedQueueSec = secShared
	_, _, res.SharedContended = simShared.QueueStats()
	simShared.Close()
	cfgQ.Queues = core.PerWorkerQueues
	secPer, simPer, err := timeRun(salt, cfgQ, steps)
	if err != nil {
		return nil, err
	}
	res.PerQueueSec = secPer
	_, _, res.PerContended = simPer.QueueStats()
	simPer.Close()
	cfgQ.Queues = core.WorkStealingQueues
	cfgQ.Partition = core.PartitionBlock // stealing fixes the block imbalance
	secSteal, simSteal, err := timeRun(salt, cfgQ, steps)
	if err != nil {
		return nil, err
	}
	res.StealingSec = secSteal
	for _, st := range simSteal.Steals() {
		res.StealCount += st
	}
	simSteal.Close()

	// Reduction mode on salt with 4 workers.
	cfgR := salt.Cfg
	cfgR.Threads = 4
	cfgR.Reduce = core.ReducePrivatized
	res.PrivatizedSec, sim, err = timeRun(salt, cfgR, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()
	cfgR.Reduce = core.ReduceSharedMutex
	res.MutexSec, sim, err = timeRun(salt, cfgR, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()

	// Half vs full pair lists on Al-1000.
	cfgL := al.Cfg
	cfgL.Threads = 2
	cfgL.PairLists = core.HalfLists
	res.HalfSec, sim, err = timeRun(al, cfgL, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()
	cfgL.PairLists = core.FullLists
	res.FullSec, sim, err = timeRun(al, cfgL, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()

	// Integrator scheme on Al-1000.
	cfgI := al.Cfg
	cfgI.Integrator = core.VelocityVerlet
	res.VerletSec, sim, err = timeRun(al, cfgI, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()
	cfgI.Integrator = core.Beeman
	res.BeemanSec, sim, err = timeRun(al, cfgI, steps)
	if err != nil {
		return nil, err
	}
	sim.Close()

	// Half-list load shape.
	nl := cells.NewNeighborList(al.Cfg.LJCutoff, al.Cfg.Skin)
	nl.Build(al.Sys)
	third := al.Sys.N() / 3
	for i := 0; i < third; i++ {
		res.HalfFirstThird += len(nl.Of(i))
	}
	for i := al.Sys.N() - third; i < al.Sys.N(); i++ {
		res.HalfLastThird += len(nl.Of(i))
	}

	t := report.NewTable("Design ablations (wall time, this host)",
		"Ablation", "Variant A", "Variant B", "Notes")
	t.AddRow("rebuild fusion (Al-1000, 2 workers)",
		fmt.Sprintf("fused %.3fs", res.FusedSec),
		fmt.Sprintf("separate %.3fs", res.SeparateSec),
		"paper fuses phases 3+4 (§II-A)")
	t.AddRow("queue topology (salt, 4 workers)",
		fmt.Sprintf("shared %.3fs (contended %d)", res.SharedQueueSec, res.SharedContended),
		fmt.Sprintf("per-worker %.3fs (contended %d)", res.PerQueueSec, res.PerContended),
		"shared queue contends; private queues can idle (§II-B)")
	t.AddRow("work stealing (salt, 4 workers, block owners)",
		fmt.Sprintf("stealing %.3fs", res.StealingSec),
		fmt.Sprintf("steals %d", res.StealCount),
		"per-worker deques + idle-worker stealing (ForkJoinPool-style)")
	t.AddRow("force accumulation (salt, 4 workers)",
		fmt.Sprintf("privatized %.3fs", res.PrivatizedSec),
		fmt.Sprintf("shared+mutex %.3fs", res.MutexSec),
		"privatized arrays + reduction (phase 5)")
	t.AddRow("pair lists (Al-1000, 2 workers)",
		fmt.Sprintf("half %.3fs", res.HalfSec),
		fmt.Sprintf("full %.3fs", res.FullSec),
		"full lists do ~2x the pair math but balance perfectly")
	t.AddRow("integrator (Al-1000, serial)",
		fmt.Sprintf("velocity-verlet %.3fs", res.VerletSec),
		fmt.Sprintf("beeman %.3fs", res.BeemanSec),
		"MW documents a Beeman-family predictor-corrector")
	t.AddRow("half-list load shape (Al-1000 pairs)",
		fmt.Sprintf("first third: %d", res.HalfFirstThird),
		fmt.Sprintf("last third: %d", res.HalfLastThird),
		"lower-numbered atoms own more pairs (§II-B)")
	res.Report = t.String()
	return res, nil
}
