package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"mw/internal/core"
	"mw/internal/report"
	"mw/internal/telemetry"
	"mw/internal/tracing"
	"mw/internal/workload"
)

// ObserverNativeRow is one workload's measured observer effect for the real
// telemetry layer: the same run with telemetry off, with the ring-buffer
// Recorder, with the full structured Tracer stacked on a recorder (spans,
// straggler attribution, flight ring, affinity probe), and with the
// deliberately JaMON-like mutex-per-event NaiveSink.
type ObserverNativeRow struct {
	Workload          string
	OffWall           time.Duration // min-of-trials uninstrumented wall
	RingWall          time.Duration
	TracerWall        time.Duration
	NaiveWall         time.Duration
	RingOverheadPct   float64 // (ring-off)/off, clamped at 0
	TracerOverheadPct float64
	NaiveOverheadPct  float64
	RingChunkEvents   int64 // sanity: the recorder really saw the run
	TracerSteps       int64 // sanity: the tracer really assembled records
}

// ObserverNativeResult is the §IV-A observer-effect methodology applied to
// internal/telemetry itself, with a pass/fail budget on the ring monitor.
type ObserverNativeResult struct {
	Rows      []ObserverNativeRow
	BudgetPct float64
	Report    string
}

// Gate returns an error if the ring-buffer recorder or the structured tracer
// exceeded the overhead budget on any workload — the regression gate
// `make telemetry-overhead` fails the build on.
func (r *ObserverNativeResult) Gate() error {
	for _, row := range r.Rows {
		if row.RingOverheadPct >= r.BudgetPct {
			return fmt.Errorf(
				"telemetry observer effect: ring recorder costs %.2f%% on %s (budget %.1f%%); off=%v ring=%v",
				row.RingOverheadPct, row.Workload, r.BudgetPct, row.OffWall, row.RingWall)
		}
		if row.TracerOverheadPct >= r.BudgetPct {
			return fmt.Errorf(
				"telemetry observer effect: structured tracer costs %.2f%% on %s (budget %.1f%%); off=%v tracer=%v",
				row.TracerOverheadPct, row.Workload, r.BudgetPct, row.OffWall, row.TracerWall)
		}
		if row.RingChunkEvents == 0 {
			return fmt.Errorf("telemetry observer effect: recorder saw no chunk events on %s — the gate measured nothing", row.Workload)
		}
		if row.TracerSteps == 0 {
			return fmt.Errorf("telemetry observer effect: tracer assembled no step records on %s — the gate measured nothing", row.Workload)
		}
	}
	return nil
}

// observerNativeSteps/Trials are the defaults; paired trials with
// interleaved modes absorb most scheduler noise on a busy host.
const (
	observerNativeSteps  = 25
	observerNativeTrials = 7
)

// runObserverNative does one timed run of a freshly built benchmark with the
// given sink. Only Run is timed — constructing the simulation (bootstrap
// forces, pool spin-up) is setup the monitors don't see either.
func runObserverNative(mk func() *workload.Benchmark, sink telemetry.Sink, steps int) (time.Duration, error) {
	// The production configuration is what the budget is about: default
	// chunk granularity, 4 workers. Shrinking ChunkAtoms to amplify the
	// event rate makes every monitor fail (at sub-µs chunks even ~35ns per
	// event is >2%) and measures a configuration nobody runs.
	b := mk()
	cfg := b.Cfg
	cfg.Threads = 4
	cfg.Telemetry = sink
	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	// Collect, then hold GC off for the timed region. The recorder keeps a
	// couple hundred KB of rings live, which is enough to shift whether the
	// pacer fires a cycle inside a ~100ms run — a whole-run ±7% artifact
	// that has nothing to do with per-event cost and flips between process
	// invocations. Each monitor's inline cost (atomics for the ring; mutex,
	// map and time.Now work for the naive control) is still fully timed.
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	start := time.Now()
	sim.Run(steps)
	d := time.Since(start)
	debug.SetGCPercent(gcPct)
	return d, nil
}

// ObserverNative measures the observer effect of the live telemetry layer on
// the paper's three benchmarks. steps and trials of 0 select defaults;
// budgetPct of 0 selects the 2% budget.
func ObserverNative(steps, trials int, budgetPct float64) (*ObserverNativeResult, error) {
	if steps <= 0 {
		steps = observerNativeSteps
	}
	if trials <= 0 {
		trials = observerNativeTrials
	}
	if budgetPct <= 0 {
		budgetPct = 2.0
	}
	res := &ObserverNativeResult{BudgetPct: budgetPct}

	// stepsMul stretches the cheap workloads so every timed run is tens of
	// milliseconds: a ~7ms nanocar run drowns a 2% effect in timer and
	// scheduler noise; at 8× the signal clears it.
	workloads := []struct {
		name     string
		mk       func() *workload.Benchmark
		stepsMul int
	}{
		{"salt", workload.Salt, 1},
		{"nanocar", workload.Nanocar, 8},
		{"Al-1000", workload.Al1000, 8},
	}

	for _, wl := range workloads {
		steps := steps * wl.stepsMul
		// Warm up caches, the allocator and the scheduler once per workload.
		if _, err := runObserverNative(wl.mk, nil, steps); err != nil {
			return nil, err
		}

		row := ObserverNativeRow{Workload: wl.name}
		// Each trial runs all four modes back-to-back (order rotated across
		// trials) and contributes one PAIRED overhead sample per monitor:
		// instrumented wall over that same trial's uninstrumented wall. Host
		// drift on this class of machine swings absolute walls by ±10%
		// between trials but moves the adjacent runs of one trial together,
		// so the paired ratio cancels it; the median over trials then drops
		// the preemption outliers min-of-trials is fragile to.
		const nModes = 4
		offW := make([]time.Duration, trials)
		ringW := make([]time.Duration, trials)
		tracerW := make([]time.Duration, trials)
		naiveW := make([]time.Duration, trials)
		for trial := 0; trial < trials; trial++ {
			for i := 0; i < nModes; i++ {
				switch (trial + i) % nModes {
				case 0:
					d, err := runObserverNative(wl.mk, nil, steps)
					if err != nil {
						return nil, err
					}
					offW[trial] = d
				case 1:
					rec := telemetry.NewRecorder(4, core.PhaseNames())
					d, err := runObserverNative(wl.mk, rec, steps)
					if err != nil {
						return nil, err
					}
					ringW[trial] = d
					for _, wv := range rec.Snapshot(0).PerWorker {
						row.RingChunkEvents += wv.Chunks
					}
				case 2:
					// The full production tracer: spans, straggler
					// attribution, ring drain, affinity probe, anomaly
					// detection armed (FlightDir empty, so anomalies are
					// counted, never dumped mid-measurement).
					tr := tracing.New(telemetry.NewRecorder(4, core.PhaseNames()), tracing.Config{})
					d, err := runObserverNative(wl.mk, tr, steps)
					if err != nil {
						return nil, err
					}
					tracerW[trial] = d
					row.TracerSteps += tr.TotalSteps()
				case 3:
					d, err := runObserverNative(wl.mk, telemetry.NewNaiveSink(core.PhaseNames()), steps)
					if err != nil {
						return nil, err
					}
					naiveW[trial] = d
				}
			}
		}
		row.OffWall = minWall(offW)
		row.RingWall = minWall(ringW)
		row.TracerWall = minWall(tracerW)
		row.NaiveWall = minWall(naiveW)
		row.RingOverheadPct = overheadEstimate(ringW, offW)
		row.TracerOverheadPct = overheadEstimate(tracerW, offW)
		row.NaiveOverheadPct = overheadEstimate(naiveW, offW)
		res.Rows = append(res.Rows, row)
	}

	t := report.NewTable(
		fmt.Sprintf("Telemetry observer effect (native engine, %d steps × %d paired trials, budget %.1f%%)",
			steps, trials, budgetPct),
		"Workload", "Off", "Ring", "Tracer", "Naive", "Ring ovh %", "Tracer ovh %", "Naive ovh %", "Chunk events")
	for _, row := range res.Rows {
		t.AddRow(row.Workload, row.OffWall, row.RingWall, row.TracerWall, row.NaiveWall,
			row.RingOverheadPct, row.TracerOverheadPct, row.NaiveOverheadPct, row.RingChunkEvents)
	}
	verdict := "PASS: ring recorder and structured tracer within budget on every workload"
	if err := res.Gate(); err != nil {
		verdict = "FAIL: " + err.Error()
	}
	res.Report = t.String() + fmt.Sprintf(
		"\n%s\npaper §IV-A: a monitor is only usable if it does not distort what it\nmeasures. The ring recorder (per-worker lock-free rings + atomics) and\nthe structured tracer stacked on it (span timeline, straggler\nattribution, flight ring, affinity probe) must stay under the budget;\nthe naive monitor (one mutex + string-keyed maps per event — JaMON's\ndesign) is run as the control and is expected to cost visibly more.\n", verdict)
	return res, nil
}

// minWall returns the smallest duration of a trial series (0 if empty).
func minWall(ds []time.Duration) time.Duration {
	var best time.Duration
	for _, d := range ds {
		if best == 0 || (d > 0 && d < best) {
			best = d
		}
	}
	return best
}

// overheadEstimate combines two noise-robust estimators of the monitor's
// true cost and keeps the smaller, clamped at 0. The median of per-trial
// paired ratios cancels slow host drift but a couple of preempted trials
// can still push a small-sample median up; the ratio of per-mode minimum
// walls converges on the true floor as trials grow but is inflated when
// one mode never lands a quiet slot. Scheduler noise only ever inflates
// an overhead estimate, and it rarely inflates both the same way, so the
// smaller one is the better bound — while a genuine per-event cost (the
// NaiveSink control reliably measures 5–15%) moves both together and
// still trips the gate.
func overheadEstimate(instrumented, off []time.Duration) float64 {
	med := medianOverheadPct(instrumented, off)
	iMin, oMin := minWall(instrumented), minWall(off)
	if oMin <= 0 || iMin <= 0 {
		return med
	}
	floor := (float64(iMin) - float64(oMin)) / float64(oMin) * 100
	if floor < 0 {
		floor = 0
	}
	if floor < med {
		return floor
	}
	return med
}

// medianOverheadPct returns the median of the per-trial paired overhead
// ratios, in percent, clamped at 0 (a negative median is timing noise, not
// a speedup).
func medianOverheadPct(instrumented, off []time.Duration) float64 {
	var ratios []float64
	for i := range instrumented {
		if i < len(off) && off[i] > 0 && instrumented[i] > 0 {
			ratios = append(ratios, (float64(instrumented[i])-float64(off[i]))/float64(off[i])*100)
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	var med float64
	if n := len(ratios); n%2 == 1 {
		med = ratios[n/2]
	} else {
		med = (ratios[n/2-1] + ratios[n/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return med
}
