package experiments

import (
	"fmt"
	"sort"

	"mw/internal/cells"
	"mw/internal/jheap"
	"mw/internal/machine"
	"mw/internal/memtrace"
	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// PackingRow is one heap-layout configuration of the §V-A data-packing
// experiment.
type PackingRow struct {
	Layout      jheap.Layout
	L2MissRate  float64
	LLCMissRate float64
	Cycles      int64
}

// PackingResult holds the §V-A experiment: the LJ force phase of Al-1000
// replayed under the three heap layouts the paper wanted to compare but
// could not observe in Java ("it is difficult to determine to what degree
// data is packed in Java").
type PackingResult struct {
	Rows   []PackingRow
	Report string
}

// spatialOrder returns atom indices sorted by linked-cell index — the
// inspector/executor reordering ("put atoms that were physically proximate
// in the simulation into adjacent memory locations").
func spatialOrder(b *workload.Benchmark) []int {
	grid := cells.NewGrid(b.Sys.Box, b.Cfg.LJCutoff+b.Cfg.Skin)
	type ca struct{ cell, atom int }
	byCell := make([]ca, b.Sys.N())
	for i := range byCell {
		byCell[i] = ca{grid.CellIndexOf(b.Sys.Pos[i]), i}
	}
	sort.Slice(byCell, func(a, b int) bool {
		if byCell[a].cell != byCell[b].cell {
			return byCell[a].cell < byCell[b].cell
		}
		return byCell[a].atom < byCell[b].atom
	})
	order := make([]int, len(byCell))
	for k, c := range byCell {
		order[k] = c.atom
	}
	return order
}

// Packing measures cache behaviour of the Al-1000 LJ phase under packed,
// scattered, and spatially reordered layouts on one modeled i7 core.
func Packing(repeat int) (*PackingResult, error) {
	if repeat <= 0 {
		repeat = 8
	}
	b := workload.Al1000()
	res := &PackingResult{}
	t := report.NewTable("Data packing and spatial locality (§V-A): Al-1000 LJ phase, 1 core, modeled i7",
		"Layout", "L2 miss rate", "LLC miss rate", "Modeled cycles")
	for _, layout := range []jheap.Layout{
		jheap.LayoutScattered, jheap.LayoutPacked, jheap.LayoutReordered,
	} {
		opt := memtrace.Options{
			Threads:   1,
			Layout:    layout,
			JavaTemps: true, // the nursery churn that keeps evicting L2
			Cutoff:    b.Cfg.LJCutoff,
			Skin:      b.Cfg.Skin,
			Seed:      5,
		}
		if layout == jheap.LayoutReordered {
			opt.Order = spatialOrder(b)
		}
		m := memtrace.NewAddrMap(b.Sys.N(), opt)
		streams := memtrace.ForcePhase(b.Sys, m, opt)
		r, err := machine.Run(machine.Config{
			Machine:    topo.CoreI7,
			Threads:    1,
			Background: 1, BackgroundDuty: 0.1,
			Hier: modelHier,
			Seed: 5,
		}, streams, repeat)
		if err != nil {
			return nil, err
		}
		row := PackingRow{
			Layout:      layout,
			L2MissRate:  r.Stats.L2MissRate(),
			LLCMissRate: r.Stats.LLCMissRate(),
			Cycles:      r.Cycles,
		}
		res.Rows = append(res.Rows, row)
		t.AddRow(layout.String(), row.L2MissRate, row.LLCMissRate, row.Cycles)
	}
	res.Report = t.String() + fmt.Sprintf(
		"\npaper: the attempted runtime reordering produced no miss-rate improvement —\n\"a strong indicator that the objects were not being reordered and packed in\nmemory\". Here the layouts are observable: packing/reordering beats scatter.\n")
	return res, nil
}

// PollutionResult holds the §V-B cache-pollution experiment.
type PollutionResult struct {
	// Vec3Fraction is the live-heap share of the 3-float wrapper class.
	Vec3Fraction float64
	// Census is the VisualVM-style live allocated objects view.
	Census map[string]jheap.ClassStats
	// CyclesWithTemps / CyclesWithoutTemps quantify the slowdown.
	CyclesWithTemps    int64
	CyclesWithoutTemps int64
	// MissesWithTemps / MissesWithoutTemps count accesses that fell past L2
	// (L3, remote L3 or memory) — the pollution's eviction pressure.
	MissesWithTemps    int64
	MissesWithoutTemps int64
	Report             string
}

// Pollution measures §V-B: per-pair temporary Vec3 wrappers dominating the
// live heap and polluting caches during the Al-1000 force phase.
func Pollution(repeat int) (*PollutionResult, error) {
	if repeat <= 0 {
		repeat = 8
	}
	b := workload.Al1000()
	run := func(temps bool) (int64, int64, *jheap.Heap, error) {
		opt := memtrace.Options{
			Threads:   4,
			Layout:    jheap.LayoutScattered,
			JavaTemps: temps,
			Cutoff:    b.Cfg.LJCutoff,
			Skin:      b.Cfg.Skin,
			Seed:      6,
		}
		m := memtrace.NewAddrMap(b.Sys.N(), opt)
		streams := memtrace.ForcePhase(b.Sys, m, opt)
		r, err := machine.Run(machine.Config{
			Machine:    topo.CoreI7,
			Threads:    4,
			Background: 1, BackgroundDuty: 0.1,
			Hier: modelHier,
			Seed: 6,
		}, streams, repeat)
		if err != nil {
			return 0, 0, nil, err
		}
		beyondL2 := r.Stats.Accesses - r.Stats.L1Hits - r.Stats.L2Hits
		return r.Cycles, beyondL2, m.Heap(), nil
	}
	withC, withMiss, heap, err := run(true)
	if err != nil {
		return nil, err
	}
	withoutC, withoutMiss, _, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &PollutionResult{
		Vec3Fraction:       heap.ClassFraction("Vec3"),
		Census:             heap.Census(),
		CyclesWithTemps:    withC,
		CyclesWithoutTemps: withoutC,
		MissesWithTemps:    withMiss,
		MissesWithoutTemps: withoutMiss,
	}

	t := report.NewTable("Cache pollution by temporaries (§V-B): Al-1000 force phase, 4 workers",
		"Configuration", "Modeled cycles", "Accesses past L2")
	t.AddRow("with per-pair Vec3 temps", withC, withMiss)
	t.AddRow("without temps", withoutC, withoutMiss)

	c := report.NewTable("Live allocated objects (VisualVM-style census)",
		"Class", "Count", "Bytes", "Share of live heap")
	names := make([]string, 0, len(res.Census))
	for name := range res.Census {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		return res.Census[names[a]].Bytes > res.Census[names[b]].Bytes
	})
	total := heap.LiveBytes()
	for _, name := range names {
		st := res.Census[name]
		c.AddRow(name, st.Count, st.Bytes, float64(st.Bytes)/float64(total))
	}
	res.Report = t.String() + "\n" + c.String() + fmt.Sprintf(
		"\npaper: \"over 50%% of our live memory was being used by one type of temporary\nobject, a simple convenience class that wraps together three floating point\nvalues.\" Measured Vec3 share: %.0f%%.\n", 100*res.Vec3Fraction)
	return res, nil
}
