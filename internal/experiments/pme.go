package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mw/internal/atom"
	"mw/internal/ewald"
	"mw/internal/forces"
	"mw/internal/report"
	"mw/internal/vec"
)

// PMERow is one system size of the PME crossover experiment.
type PMERow struct {
	N            int
	DirectSec    float64
	PMESec       float64
	ForceRelErr  float64 // PME vs direct Ewald reference
	EnergyRelErr float64
}

// PMEResult holds the future-work extension experiment: the O(N²) direct
// Coulomb sum (what Molecular Workbench ships) against the O(N log N)
// smooth particle-mesh Ewald the paper names as its replacement.
type PMEResult struct {
	Rows   []PMERow
	CrossN int // first N where PME is faster (0 = never in range)
	Report string
}

// periodicSalt builds an n³-ion periodic rock-salt system with thermal
// jitter so forces are non-trivial.
func periodicSalt(side int, seed int64) *atom.System {
	const a = 2.82
	s := atom.NewSystem(atom.CubicBox(float64(side)*a, true))
	rng := rand.New(rand.NewSource(seed))
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				p := vec.New(
					(float64(x)+0.3*rng.Float64())*a,
					(float64(y)+0.3*rng.Float64())*a,
					(float64(z)+0.3*rng.Float64())*a,
				)
				p = s.Box.Wrap(p)
				if (x+y+z)%2 == 0 {
					s.AddAtom(atom.Na, p, vec.Zero, +1, false)
				} else {
					s.AddAtom(atom.Cl, p, vec.Zero, -1, false)
				}
			}
		}
	}
	return s
}

// timeIt runs fn enough times to exceed ~30 ms and returns seconds/call.
func timeIt(fn func()) float64 {
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		d := time.Since(start)
		if d > 30*time.Millisecond || reps >= 1<<16 {
			return d.Seconds() / float64(reps)
		}
		reps *= 4
	}
}

// PME runs the crossover experiment over rock-salt systems of increasing
// size (side³ ions per entry; default 4..16). These are real wall-clock
// timings (pure algorithms, single core).
func PME(sides ...int) (*PMEResult, error) {
	if len(sides) == 0 {
		sides = []int{4, 6, 8, 10, 12, 14, 16}
	}
	res := &PMEResult{}
	t := report.NewTable("PME extension: direct O(N²) Coulomb vs smooth PME O(N log N), wall time per force evaluation",
		"N ions", "Direct (ms)", "PME (ms)", "PME/Direct", "Force rel err", "Energy rel err")
	for _, side := range sides {
		s := periodicSalt(side, int64(side))
		n := s.N()
		l := s.Box.L.X
		charged := s.ChargedIndices()

		direct := forces.Coulomb{Softening: 0.05}
		fDirect := make([]vec.Vec3, n)
		directSec := timeIt(func() {
			for i := range fDirect {
				fDirect[i] = vec.Zero
			}
			direct.Accumulate(s, charged, fDirect)
		})

		alpha := 0.45
		rcut := math.Min(7.5, 0.4999*l)
		// ~1 mesh point per Å is the standard SPME resolution at this alpha.
		mesh := 16
		for float64(mesh) < 0.9*l {
			mesh *= 2
		}
		p := ewald.PME{Alpha: alpha, RCut: rcut, Mesh: mesh, Order: 4}
		fPME := make([]vec.Vec3, n)
		var pmeErr error
		pmeSec := timeIt(func() {
			for i := range fPME {
				fPME[i] = vec.Zero
			}
			if _, err := p.Accumulate(s, fPME); err != nil {
				pmeErr = err
			}
		})
		if pmeErr != nil {
			return nil, pmeErr
		}

		// Accuracy vs the converged classical Ewald reference.
		ref := ewald.Ewald{Alpha: alpha, RCut: rcut, KMax: 10}
		fRef := make([]vec.Vec3, n)
		peRef, err := ref.Accumulate(s, fRef)
		if err != nil {
			return nil, err
		}
		pePME, err := p.Energy(s)
		if err != nil {
			return nil, err
		}
		var num, den float64
		for i := range fRef {
			num += fPME[i].Sub(fRef[i]).Norm2()
			den += fRef[i].Norm2()
		}
		row := PMERow{
			N:            n,
			DirectSec:    directSec,
			PMESec:       pmeSec,
			ForceRelErr:  math.Sqrt(num / (den + 1e-30)),
			EnergyRelErr: math.Abs(pePME-peRef) / math.Abs(peRef),
		}
		res.Rows = append(res.Rows, row)
		if res.CrossN == 0 && pmeSec < directSec {
			res.CrossN = n
		}
		t.AddRow(n, directSec*1e3, pmeSec*1e3, pmeSec/directSec, row.ForceRelErr, row.EnergyRelErr)
	}
	cross := "not reached in range"
	if res.CrossN > 0 {
		cross = fmt.Sprintf("N = %d", res.CrossN)
	}
	res.Report = t.String() + fmt.Sprintf(
		"\ncrossover (PME faster than direct): %s\npaper: PME \"would have lower algorithmic complexity at O(N logN), but its use\nis a future work direction due to its implementation complexity\" (§II-B).\n", cross)
	return res, nil
}
