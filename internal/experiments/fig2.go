package experiments

import (
	"fmt"
	"strings"

	"mw/internal/report"
	"mw/internal/sched"
	"mw/internal/topo"
)

// Fig2Result holds the thread-to-core affinity trace of Fig 2.
type Fig2Result struct {
	Migrations   int
	CoresVisited int
	QuantaTo4    int // quanta until all four cores had been visited
	Report       string
}

// Fig2 reproduces Fig 2: one worker thread of the parallel MW run observed
// on the four cores of the Core i7 system without pinning. The heat map row
// intensity is the fraction of each time bucket the thread spent on that
// core; the paper's observation is that "even in a four core system, the
// degree of thread affinity was quite low. In many cases, the thread visited
// every core in the system in less than one second."
func Fig2() *Fig2Result {
	s, err := sched.New(sched.Config{
		Machine:    topo.CoreI7,
		Threads:    4, // the parallel MW worker pool
		Background: 3, // GUI, tool and JVM service threads
		Seed:       42,
	})
	if err != nil {
		panic(err) // static config cannot fail
	}
	const quanta = 4000 // 4 s at the 1 ms quantum
	s.Run(quanta)

	res := &Fig2Result{
		Migrations:   s.Migrations(0),
		CoresVisited: s.CoresVisited(0, quanta),
	}
	for q := 1; q <= quanta; q++ {
		if s.CoresVisited(0, q) == 4 {
			res.QuantaTo4 = q
			break
		}
	}

	m := s.LoadMatrix(0, 72)
	labels := make([]string, 4)
	for c := range labels {
		labels[c] = fmt.Sprintf("core %d", c)
	}
	var b strings.Builder
	b.WriteString(report.Heatmap(
		"Fig 2: worker thread to core affinity without pinning (4 s, Core i7 920)",
		labels, m))
	fmt.Fprintf(&b, "\nmigrations=%d  cores visited=%d/4  all 4 cores visited within %d ms (paper: <1 s)\n",
		res.Migrations, res.CoresVisited, res.QuantaTo4)
	res.Report = b.String()
	return res
}
