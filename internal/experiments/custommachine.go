package experiments

import (
	"fmt"
	"strings"

	"mw/internal/machine"
	"mw/internal/memtrace"
	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// CustomMachine parses a machine spec (see topo.ParseMachine), renders its
// hwloc-style tree, and models the Al-1000 speedup curve on it — the
// "bring your own hardware" entry point for the machine model.
func CustomMachine(spec string) (string, error) {
	m, err := topo.ParseMachine(spec)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n\n", m.String())
	sb.WriteString(m.Tree().Render())
	sb.WriteByte('\n')

	b := workload.Al1000()
	maxThreads := m.NumCores()
	if maxThreads > 8 {
		maxThreads = 8
	}
	serial := javaStreams(b, 1, 7)
	repeat := int(200_000_000 / (estCycles(serial) + 1))
	if repeat < 4 {
		repeat = 4
	}
	sp, err := machine.Speedup(
		machine.Config{Machine: m, Seed: 7, Background: 1, BackgroundDuty: 0.1,
			QuantumCycles: 300_000, Hier: modelHier},
		maxThreads, repeat,
		func(threads int) []memtrace.Stream { return javaStreams(b, threads, 7) },
	)
	if err != nil {
		return "", err
	}
	xs := make([]float64, maxThreads)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	series := report.NewSeries(fmt.Sprintf("Modeled Al-1000 speedup on %s", m.Name), "threads", xs)
	series.Add("Al-1000", sp)
	sb.WriteString(series.String())
	return sb.String(), nil
}
