package experiments

import (
	"fmt"
	"time"

	"mw/internal/perfmon"
	"mw/internal/report"
)

// SamplingResult holds §IV-B's sampling-granularity experiment: ground-truth
// imbalance events vs what samplers at the tools' periods can see.
type SamplingResult struct {
	Reports map[time.Duration]perfmon.SampleReport
	Periods []time.Duration
	Report  string
}

// Sampling generates an MW-like ground-truth timeline (tasks in the paper's
// 80–5000 µs range, imbalance events every 5th step, launch skew) and
// samples it at the periods of the §IV-B tools: VisualVM (1 s), VTune
// (10 ms and 5 ms), plus the fine-grained 100 µs sampler the paper wishes
// existed.
func Sampling(steps int) *SamplingResult {
	if steps <= 0 {
		steps = 4000
	}
	tl := perfmon.Synthetic(perfmon.SyntheticConfig{
		Threads:         4,
		Steps:           steps,
		MeanTask:        500 * time.Microsecond,
		ImbalanceEvery:  5,
		ImbalanceFactor: 4,
		Skew:            100 * time.Microsecond,
		Seed:            3,
	})
	res := &SamplingResult{
		Reports: map[time.Duration]perfmon.SampleReport{},
		Periods: []time.Duration{
			time.Second,
			10 * time.Millisecond,
			5 * time.Millisecond,
			100 * time.Microsecond,
		},
	}
	const threshold = 1.0
	t := report.NewTable("Sampling granularity (§IV-B): 500 µs tasks, imbalance event every 5th step",
		"Sampler period", "Samples", "True events", "Detected", "Detection rate", "False positives")
	for _, p := range res.Periods {
		rep := perfmon.Sampler{Period: p}.Run(tl, threshold)
		res.Reports[p] = rep
		t.AddRow(p, rep.Samples, rep.TrueEvents, rep.DetectedEvents,
			rep.DetectionRate(), rep.FalsePositives)
	}
	res.Report = t.String() + fmt.Sprintf(
		"\npaper: \"At the thread state sampling granularity of these tools, we were able\nto observe only the most severe imbalance\"; stale sampled states displayed\nuntil the next sample generated false positives.\n")
	return res
}
