package experiments

import (
	"fmt"
	"time"

	"mw/internal/cells"
	"mw/internal/core"
	"mw/internal/perfmon"
	"mw/internal/report"
	"mw/internal/stats"
	"mw/internal/workload"
)

// ImbalanceRow summarizes the force-phase load balance of one engine
// configuration.
type ImbalanceRow struct {
	Benchmark string
	Partition core.Partition
	// MeanStepImbalance is the average of per-step imbalance factors.
	MeanStepImbalance float64
	// MaxStepImbalance is the worst single step.
	MaxStepImbalance float64
	// TotalImbalance is the imbalance of the per-worker TOTALS — the
	// misleading aggregate the paper warns about: "Imbalance on any
	// particular iteration can disappear when averaged over many
	// iterations."
	TotalImbalance float64
	// BarrierWaste is the mean fraction of worker time lost at barriers.
	BarrierWaste float64
}

// ImbalanceResult holds the §IV load-balance analysis on real engine runs.
type ImbalanceResult struct {
	Rows   []ImbalanceRow
	Report string
}

// measureImbalance runs a benchmark with the given partition strategy and
// derives the per-step force-phase imbalance from the engine's
// ground-truth instrumentation.
func measureImbalance(b *workload.Benchmark, p core.Partition, steps int) (ImbalanceRow, error) {
	const threads = 4
	rec := perfmon.NewRecorder(core.PhaseForce, threads)
	cfg := b.Cfg
	cfg.Threads = threads
	cfg.Partition = p
	cfg.Instrument = rec
	sim, err := core.New(b.Sys.Clone(), cfg)
	if err != nil {
		return ImbalanceRow{}, err
	}
	defer sim.Close()
	sim.Run(steps)

	tl := rec.Timeline()
	row := ImbalanceRow{Benchmark: b.Name, Partition: p}
	totals := make([]float64, threads)
	var perStep, waste stats.Running
	for _, span := range tl.PhaseSpans {
		loads := make([]float64, len(span.Busy))
		for w, d := range span.Busy {
			loads[w] = d.Seconds()
			totals[w] += d.Seconds()
		}
		imb := stats.Imbalance(loads)
		perStep.Add(imb)
		waste.Add(stats.BarrierWaste(loads))
		if imb > row.MaxStepImbalance {
			row.MaxStepImbalance = imb
		}
	}
	row.MeanStepImbalance = perStep.Mean()
	row.TotalImbalance = stats.Imbalance(totals)
	row.BarrierWaste = waste.Mean()
	return row, nil
}

// Imbalance runs the §IV load-balance analysis: salt (triangular Coulomb
// load) and Al-1000 (neighbor-count variability) under every partition
// strategy.
func Imbalance(steps int) (*ImbalanceResult, error) {
	if steps <= 0 {
		steps = 25
	}
	res := &ImbalanceResult{}
	t := report.NewTable("Load imbalance of the force phase (§IV), 4 workers",
		"Benchmark", "Partition", "Mean step imbalance", "Max step", "Imbalance of totals", "Barrier waste")
	for _, mk := range []func() *workload.Benchmark{workload.Salt, workload.Al1000} {
		for _, p := range []core.Partition{
			core.PartitionBlock, core.PartitionCyclic, core.PartitionGuided, core.PartitionDynamic,
		} {
			b := mk()
			row, err := measureImbalance(b, p, steps)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			t.AddRow(row.Benchmark, row.Partition.String(),
				row.MeanStepImbalance, row.MaxStepImbalance,
				row.TotalImbalance, row.BarrierWaste)
		}
	}
	res.Report = t.String() + "\n" + staticWorkTable() + fmt.Sprintf(
		"\npaper: block partitioning of half pair lists front-loads work onto the\nworkers owning low-numbered atoms (§II-B); per-step imbalance can be much\nlarger than the imbalance of long-run totals (§IV).\nNote: the guided/dynamic rows measure wall time on this single-CPU host,\nwhere a self-scheduling worker drains the shared counter before the others\nare ever scheduled — their time-based rows are degenerate here; the static\nwork-distribution table below is host-independent.\n")
	return res, nil
}

// staticWorkTable computes the host-independent work distribution: how many
// pairs each of 4 workers owns under block vs cyclic partitioning.
func staticWorkTable() string {
	const threads = 4
	const chunk = 64
	t := report.NewTable("Static work distribution (pairs owned per worker, host-independent)",
		"Benchmark", "Pairs", "Partition", "w0", "w1", "w2", "w3", "Imbalance")
	add := func(name string, perChunk []int, totalPairs int) {
		nchunks := len(perChunk)
		for _, part := range []core.Partition{core.PartitionBlock, core.PartitionCyclic} {
			loads := make([]float64, threads)
			for c, pairs := range perChunk {
				var w int
				if part == core.PartitionBlock {
					w = c * threads / nchunks
					if w >= threads {
						w = threads - 1
					}
				} else {
					w = c % threads
				}
				loads[w] += float64(pairs)
			}
			t.AddRow(name, totalPairs, part.String(),
				int(loads[0]), int(loads[1]), int(loads[2]), int(loads[3]),
				stats.Imbalance(loads))
		}
	}

	// salt: triangular Coulomb pair counts per chunk of the charged list.
	salt := workload.Salt()
	nCharged := salt.Sys.NumCharged()
	ccs := chunk/2 + 1
	var saltChunks []int
	totalSalt := 0
	for lo := 0; lo < nCharged; lo += ccs {
		hi := lo + ccs
		if hi > nCharged {
			hi = nCharged
		}
		pairs := 0
		for ci := lo; ci < hi; ci++ {
			pairs += nCharged - ci - 1
		}
		saltChunks = append(saltChunks, pairs)
		totalSalt += pairs
	}
	add("salt (Coulomb)", saltChunks, totalSalt)

	// Al-1000: half-list LJ pair counts per atom chunk.
	al := workload.Al1000()
	nl := cells.NewNeighborList(al.Cfg.LJCutoff, al.Cfg.Skin)
	nl.Build(al.Sys)
	var alChunks []int
	totalAl := 0
	for lo := 0; lo < al.Sys.N(); lo += chunk {
		hi := lo + chunk
		if hi > al.Sys.N() {
			hi = al.Sys.N()
		}
		pairs := 0
		for i := lo; i < hi; i++ {
			pairs += len(nl.Of(i))
		}
		alChunks = append(alChunks, pairs)
		totalAl += pairs
	}
	add("Al-1000 (LJ)", alChunks, totalAl)
	return t.String()
}

// engineTimelineDemo is used by tests: a tiny run that exercises Recorder.
func engineTimelineDemo() (time.Duration, error) {
	b := workload.LJGas(3, 100, true)
	rec := perfmon.NewRecorder(core.PhaseForce, 2)
	cfg := b.Cfg
	cfg.Threads = 2
	cfg.Instrument = rec
	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	sim.Run(3)
	return rec.Timeline().Horizon, nil
}
