package experiments

import (
	"fmt"
	"math"
	"time"

	"mw/internal/core"
	"mw/internal/report"
	"mw/internal/stats"
	"mw/internal/workload"
)

// ScalingResult holds the empirical complexity exponents of the engine's
// two non-bonded paths: the linked-cell Lennard-Jones pipeline (O(N), the
// point of the Hockney-Eastwood algorithm the paper adopts) and the direct
// all-pairs Coulomb sum (O(N²), the scaling PME is meant to fix).
type ScalingResult struct {
	LJSizes   []int
	LJPerStep []float64 // seconds
	LJSlope   float64   // log-log fit exponent

	CoulSizes   []int
	CoulPerStep []float64
	CoulSlope   float64

	Report string
}

// timePerStep measures mean wall time per engine step (serial).
func timePerStep(b *workload.Benchmark, steps int) (float64, error) {
	sim, err := core.New(b.Sys, b.Cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	sim.Run(2) // warm lists
	start := time.Now()
	sim.Run(steps)
	return time.Since(start).Seconds() / float64(steps), nil
}

func loglogSlope(ns []int, ts []float64) float64 {
	xs := make([]float64, len(ns))
	ys := make([]float64, len(ts))
	for i := range ns {
		xs[i] = math.Log(float64(ns[i]))
		ys[i] = math.Log(ts[i])
	}
	slope, _ := stats.LinearFit(xs, ys)
	return slope
}

// Scaling measures per-step wall time across system sizes and fits the
// complexity exponents.
func Scaling(steps int) (*ScalingResult, error) {
	if steps <= 0 {
		steps = 15
	}
	res := &ScalingResult{}

	// LJ path: neutral argon lattices, constant density.
	for _, side := range []int{6, 8, 10, 13, 16} {
		b := workload.LJGas(side, 120, true)
		t, err := timePerStep(b, steps)
		if err != nil {
			return nil, err
		}
		res.LJSizes = append(res.LJSizes, b.Sys.N())
		res.LJPerStep = append(res.LJPerStep, t)
	}
	res.LJSlope = loglogSlope(res.LJSizes, res.LJPerStep)

	// Coulomb path: fully charged rock-salt clusters.
	for _, n := range []int{200, 400, 800, 1600} {
		b := workload.ScaledSalt(n)
		t, err := timePerStep(b, steps)
		if err != nil {
			return nil, err
		}
		res.CoulSizes = append(res.CoulSizes, b.Sys.N())
		res.CoulPerStep = append(res.CoulPerStep, t)
	}
	res.CoulSlope = loglogSlope(res.CoulSizes, res.CoulPerStep)

	t1 := report.NewTable("Engine scaling: linked-cell LJ path (expect ~O(N))",
		"N atoms", "s/step", "µs/step/atom")
	for i, n := range res.LJSizes {
		t1.AddRow(n, res.LJPerStep[i], res.LJPerStep[i]/float64(n)*1e6)
	}
	t2 := report.NewTable("Engine scaling: direct Coulomb path (expect ~O(N²))",
		"N ions", "s/step", "µs/step/atom")
	for i, n := range res.CoulSizes {
		t2.AddRow(n, res.CoulPerStep[i], res.CoulPerStep[i]/float64(n)*1e6)
	}
	res.Report = t1.String() +
		fmt.Sprintf("fitted exponent: N^%.2f\n\n", res.LJSlope) +
		t2.String() +
		fmt.Sprintf("fitted exponent: N^%.2f\n\npaper §II-B: the linked-cell algorithm \"keeps the complexity of the\nneighbor-finding algorithm to O(N)\"; Coulombic forces \"are calculated\nbetween every pair of charged particles\" — the O(N²) cost PME replaces.\n", res.CoulSlope)
	return res, nil
}
