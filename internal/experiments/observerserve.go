package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"mw/internal/report"
	"mw/internal/serve"
	"mw/internal/workload"
)

// ObserverServeResult is the §IV-A observer-effect methodology applied to
// the serving layer's request tracing: the same in-process load sweep with
// tracing off, with the production 1-in-64 sampling mwserved ships with,
// and with every request traced (TraceSample=1). "Overhead" is the paired
// increase in mean request service time. The gate holds the production
// mode under the same <2% budget the engine-side monitors live under; the
// trace-everything mode is the stress control — reported, never gated —
// exactly as observer-native treats the NaiveSink (on a loaded or
// single-core host its paired ratios are dominated by scheduler noise).
type ObserverServeResult struct {
	Workload    string
	Sessions    int
	Concurrency int
	Trials      int
	OffWall     time.Duration // min-of-trials mean request service time, tracing off
	SampledWall time.Duration // TraceSample=64, the production default
	EveryWall   time.Duration // TraceSample=1, the stress control
	SampledPct  float64
	EveryPct    float64
	Requests    int64 // sanity: the traced modes really served requests
	BudgetPct   float64
	Report      string
}

// Gate returns an error if production-sampled request tracing breached the
// overhead budget — the `make telemetry-overhead` serving-side gate.
func (r *ObserverServeResult) Gate() error {
	if r.SampledPct >= r.BudgetPct {
		return fmt.Errorf(
			"serve observer effect: 1-in-64 request tracing costs %.2f%% on %s c=%d (budget %.1f%%); off=%v sampled=%v",
			r.SampledPct, r.Workload, r.Concurrency, r.BudgetPct, r.OffWall, r.SampledWall)
	}
	if r.Requests == 0 {
		return fmt.Errorf("serve observer effect: traced modes served no requests — the gate measured nothing")
	}
	return nil
}

// observerServe defaults: Al-1000 steps are ~1 ms of real compute, so the
// per-request tracing cost (a few µs of stamps, one ring publish, a fenced
// cursor drain) is measured against a production-shaped denominator.
const (
	observerServeSessions = 24
	observerServeConc     = 8
	observerServeNRuns    = 8
	observerServeTrials   = 7
)

// runObserverServe boots one in-process server with the given trace
// sampling, runs a single-level sweep, and returns the mean request
// service time plus the request count.
func runObserverServe(traceSample, sessions, conc, nruns int) (time.Duration, int64, error) {
	srv := serve.NewServer(serve.Config{
		MaxSessions: sessions + 8,
		GCInterval:  -1,
		TraceSample: traceSample,
	})
	defer srv.Close()
	httpSrv, addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer httpSrv.Close()
	// Same discipline as runObserverNative: collect, then hold GC off for
	// the timed region. The sweep's HTTP+JSON traffic allocates enough that
	// whether the pacer fires a cycle inside a run is a whole-run several-%
	// artifact on a single-core host — noise that swamps the ~0.1% true
	// cost of 1-in-64 tracing. The tracing path's own allocations (trace
	// records, exemplars, ring entries) are still fully timed.
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	rep, err := serve.RunSweep("http://"+addr, serve.SweepOptions{
		Workload:    workload.Al1000().Name,
		Sessions:    sessions,
		StepsPerReq: 1,
		NRuns:       nruns,
		Concurrency: []int{conc},
		Retries:     16,
	})
	debug.SetGCPercent(gcPct)
	if err != nil {
		return 0, 0, err
	}
	row := rep.Rows[0]
	if row.ReqPerSec <= 0 {
		return 0, 0, fmt.Errorf("sweep reported %f req/s", row.ReqPerSec)
	}
	return time.Duration(1e9 / row.ReqPerSec), row.Requests, nil
}

// ObserverServe measures the serving layer's request-tracing observer
// effect. trials of 0 selects the default; budgetPct of 0 selects 2%.
func ObserverServe(trials int, budgetPct float64) (*ObserverServeResult, error) {
	if trials <= 0 {
		trials = observerServeTrials
	}
	if budgetPct <= 0 {
		budgetPct = 2.0
	}
	res := &ObserverServeResult{
		Workload:    workload.Al1000().Name,
		Sessions:    observerServeSessions,
		Concurrency: observerServeConc,
		Trials:      trials,
		BudgetPct:   budgetPct,
	}

	// Warm-up: pool spin-up, page faults, connection pool.
	if _, _, err := runObserverServe(-1, res.Sessions, res.Concurrency, 1); err != nil {
		return nil, err
	}

	// Paired trials, mode order rotated, same estimator as the engine-side
	// gate: host drift moves the modes of one trial together, the paired
	// ratio cancels it, and the min-wall floor bounds small-sample medians.
	const nModes = 3
	samples := [nModes]struct {
		traceSample int
		walls       []time.Duration
	}{
		{-1, make([]time.Duration, trials)},
		{64, make([]time.Duration, trials)},
		{1, make([]time.Duration, trials)},
	}
	for trial := 0; trial < trials; trial++ {
		for i := 0; i < nModes; i++ {
			m := (trial + i) % nModes
			d, requests, err := runObserverServe(
				samples[m].traceSample, res.Sessions, res.Concurrency, observerServeNRuns)
			if err != nil {
				return nil, err
			}
			samples[m].walls[trial] = d
			if samples[m].traceSample > 0 {
				res.Requests += requests
			}
		}
	}
	res.OffWall = minWall(samples[0].walls)
	res.SampledWall = minWall(samples[1].walls)
	res.EveryWall = minWall(samples[2].walls)
	res.SampledPct = overheadEstimate(samples[1].walls, samples[0].walls)
	res.EveryPct = overheadEstimate(samples[2].walls, samples[0].walls)

	t := report.NewTable(
		fmt.Sprintf("Serve request-tracing observer effect (%s, %d sessions, c=%d, %d paired trials, budget %.1f%%)",
			res.Workload, res.Sessions, res.Concurrency, trials, budgetPct),
		"Mode", "Mean request", "Overhead %", "Gated")
	t.AddRow("tracing off", res.OffWall, 0.0, "-")
	t.AddRow("TraceSample=64 (prod)", res.SampledWall, res.SampledPct, "yes")
	t.AddRow("TraceSample=1 (stress)", res.EveryWall, res.EveryPct, "no")
	verdict := "PASS: production-sampled request tracing within budget"
	if err := res.Gate(); err != nil {
		verdict = "FAIL: " + err.Error()
	}
	res.Report = t.String() + fmt.Sprintf(
		"\n%s\npaper §IV-A applied to the service: tracing must not distort the\nlatency it exists to explain. The gated mode is the deployed 1-in-64\nsampling; the stress mode traces every request (64× the deployed rate)\nand bounds the whole observer path — context generation, stamps,\nexemplar stores, trace-ring publish, fenced tenant phase drain.\n", verdict)
	return res, nil
}
