package experiments

import (
	"strconv"
	"strings"

	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// Table1 regenerates Table I: representative benchmark characteristics.
func Table1() string {
	t := report.NewTable("Table I: Representative Benchmark Characteristics",
		"Benchmark", "# of Atoms", "# of Charged Atoms", "# of Bonds", "Dominant Computation Type")
	for _, b := range workload.All() {
		c := workload.Characterize(b.Name, b.Sys)
		t.AddRow(c.Name, c.Atoms, c.ChargedAtoms, c.BondTerms, c.Dominant)
	}
	return t.String()
}

// Table2 regenerates Table II: test machines and their memory hierarchies.
// verbose additionally renders the hwloc-style topology trees (§V-C).
func Table2(verbose bool) string {
	t := report.NewTable("Table II: Test Machines and Their Memory Hierarchies",
		"Processor Type", "Procs x Cores", "L1 Data", "L2", "L3", "Memory")
	for _, m := range topo.TableII() {
		t.AddRow(
			m.Name,
			strconv.Itoa(m.Packages)+"x"+strconv.Itoa(m.CoresPerPackage),
			strconv.Itoa(m.L1KB)+" kB",
			strconv.Itoa(m.L2KB)+" kB",
			strconv.Itoa(m.NumL3Groups())+" x ("+strconv.Itoa(m.L3KB/1024)+" MB shared/"+strconv.Itoa(m.L3GroupCores)+" cores)",
			strconv.Itoa(m.MemoryGB)+" GB",
		)
	}
	out := t.String()
	if verbose {
		var b strings.Builder
		b.WriteString(out)
		b.WriteString("\nhwloc-style topology trees (§V-C):\n\n")
		for _, m := range topo.TableII() {
			b.WriteString(m.Tree().Render())
			b.WriteByte('\n')
		}
		out = b.String()
	}
	return out
}
