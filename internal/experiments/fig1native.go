package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mw/internal/core"
	"mw/internal/report"
	"mw/internal/workload"
)

// Fig1Native measures REAL wall-clock engine speedup for the three
// benchmarks at 1..4 worker threads. On a host with four or more physical
// cores this is the direct analogue of the paper's Fig 1 (now for the Go
// engine with SoA data rather than the Java engine); on the single-CPU
// evaluation container it documents ≈1× for all thread counts, which is why
// the modeled Fig1 exists.
func Fig1Native(steps int) (*Fig1Result, error) {
	if steps <= 0 {
		steps = 40
	}
	res := &Fig1Result{
		Cores:   []int{1, 2, 3, 4},
		Speedup: map[string][]float64{},
		Order:   []string{"salt", "nanocar", "Al-1000"},
	}
	for _, name := range res.Order {
		var base float64
		for _, threads := range res.Cores {
			b := workload.ByName(name)
			cfg := b.Cfg
			cfg.Threads = threads
			sim, err := core.New(b.Sys, cfg)
			if err != nil {
				return nil, err
			}
			sim.Run(3) // warm caches and neighbor lists
			start := time.Now()
			sim.Run(steps)
			wall := time.Since(start).Seconds()
			sim.Close()
			if threads == 1 {
				base = wall
			}
			res.Speedup[name] = append(res.Speedup[name], base/wall)
		}
	}
	xs := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		xs[i] = float64(c)
	}
	s := report.NewSeries(
		fmt.Sprintf("Fig 1 (native): wall-clock engine speedup on this host (GOMAXPROCS=%d, NumCPU=%d)",
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"threads", xs)
	for _, name := range res.Order {
		s.Add(name, res.Speedup[name])
	}
	res.Report = s.String()
	if runtime.NumCPU() < 4 {
		res.Report += fmt.Sprintf(
			"\nNOTE: this host exposes %d CPU(s); wall-clock speedup cannot exceed ~1x here.\nThe modeled run (`mwbench fig1`) reproduces the paper's multicore shape.\n",
			runtime.NumCPU())
	}
	return res, nil
}
