package experiments

import (
	"fmt"
	"strings"
	"time"

	"mw/internal/core"
	"mw/internal/perfmon"
	"mw/internal/workload"
)

// ThreadViewResult holds the §IV-C demonstration: the per-thread display
// the paper wished for, rendered from engine ground truth, next to what a
// coarse sample-and-hold tool shows for the same run.
type ThreadViewResult struct {
	Timeline *perfmon.Timeline
	Report   string
}

// ThreadView records the force phase of a short 4-worker salt run and
// renders (a) the ground-truth per-thread view — "a simple way to see what
// method a thread was executing at a given moment for all threads" — and
// (b) the same run as displayed by a VisualVM-style sampler, showing the
// stale-state distortion of §IV-B.
func ThreadView(steps int) (*ThreadViewResult, error) {
	if steps <= 0 {
		steps = 40
	}
	const threads = 4
	b := workload.Salt()
	rec := perfmon.NewRecorder(core.PhaseForce, threads)
	cfg := b.Cfg
	cfg.Threads = threads
	cfg.Partition = core.PartitionBlock // the paper's 1/N split: visible imbalance
	cfg.Instrument = rec
	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	sim.Run(steps)

	tl := rec.Timeline()
	var sb strings.Builder
	fmt.Fprintf(&sb, "== Per-thread force-phase view (§IV-C), salt, block partition, %d steps ==\n", steps)
	sb.WriteString("ground truth ('#' busy, '+' partly, '.' waiting at barrier):\n")
	sb.WriteString(perfmon.ThreadView(tl, 72))
	period := tl.Horizon / 6
	fmt.Fprintf(&sb, "\nas displayed by a sample-and-hold tool (period %v ≈ horizon/6):\n", period.Round(time.Microsecond))
	sb.WriteString(perfmon.SampledThreadView(tl, 72, period))
	sb.WriteString("\nThe triangular Coulomb load shows worker 0 busy long after the others\nhit the barrier; the sampled display smears or misses those tails\n(paper: tools \"lack sufficiently fine granularity to expose small\nimbalances\").\n")
	return &ThreadViewResult{Timeline: tl, Report: sb.String()}, nil
}
