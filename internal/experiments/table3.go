package experiments

import (
	"fmt"

	"mw/internal/machine"
	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// Table3Row is one pinning-topology configuration.
type Table3Row struct {
	Cores    int
	Topology string
	Affinity []topo.CPUMask // nil = OS scheduled
	PaperSec float64
}

// Table3Result holds the modeled runtimes for the paper's Table III.
type Table3Result struct {
	Rows    []Table3Row
	Seconds []float64
	Report  string
}

// perCoreMasks pins thread i to the i-th core of the mask.
func perCoreMasks(mk topo.CPUMask) []topo.CPUMask {
	cores := mk.Cores()
	out := make([]topo.CPUMask, len(cores))
	for i, c := range cores {
		out[i] = topo.MaskOf(c)
	}
	return out
}

// table3Rows builds the paper's seven configurations on the 32-core
// Xeon X7560 system (4 packages × 8 cores, the only Table II machine that
// can host every row).
func table3Rows() ([]Table3Row, error) {
	m := topo.XeonX7560
	onePer4, err := m.OneCorePerPackage(4)
	if err != nil {
		return nil, err
	}
	fourOnOne, err := m.CoresOnOnePackage(4)
	if err != nil {
		return nil, err
	}
	twoPer8, err := m.CoresPerPackageSpread(2, 4)
	if err != nil {
		return nil, err
	}
	eightOnOne, err := m.CoresOnOnePackage(8)
	if err != nil {
		return nil, err
	}
	return []Table3Row{
		{4, "one core per processor", perCoreMasks(onePer4), 172.2},
		{4, "4 cores on one processor", perCoreMasks(fourOnOne), 154.7},
		{4, "OS scheduled", nil, 147.3},
		{8, "OS scheduled", nil, 164.3},
		{8, "two cores per processor", perCoreMasks(twoPer8), 132.0},
		{8, "8 cores on one processor", perCoreMasks(eightOnOne), 103.7},
		{32, "OS scheduled", nil, 100.2},
	}, nil
}

// Table3 models Table III: the same LJ-dominated workload run with the
// thread count of each row under its affinity topology on the Xeon X7560.
// repeat scales the modeled horizon.
func Table3(repeat int) (*Table3Result, error) {
	if repeat <= 0 {
		repeat = 12
	}
	rows, err := table3Rows()
	if err != nil {
		return nil, err
	}
	b := workload.Al1000()
	res := &Table3Result{Rows: rows}
	t := report.NewTable("Table III: modeled runtime with the same workload but different topologies (Xeon X7560)",
		"Cores", "Topology", "Modeled (s)", "Paper (s)")
	for _, row := range rows {
		streams := javaStreams(b, row.Cores, 7)
		cfg := machine.Config{
			Machine:  topo.XeonX7560,
			Threads:  row.Cores,
			Affinity: row.Affinity,
			// The 32-core machine was Intel's shared Manycore Testing Lab:
			// substantial unrelated load, which is exactly why the paper
			// found "the OS can avoid cores loaded with other tasks".
			Background:     8,
			BackgroundDuty: 0.5,
			QuantumCycles:  300_000,
			Hier:           modelHier,
			Seed:           11,
		}
		r, err := machine.Run(cfg, streams, repeat)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", row.Topology, err)
		}
		res.Seconds = append(res.Seconds, r.Seconds)
		t.AddRow(row.Cores, row.Topology, r.Seconds, row.PaperSec)
	}
	res.Report = t.String()
	return res, nil
}
