package experiments

import (
	"fmt"
	"time"

	"mw/internal/core"
	"mw/internal/machine"
	"mw/internal/memtrace"
	"mw/internal/perfmon"
	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// ObserverResult quantifies §IV-A's observer effect: the same workload run
// uninstrumented and with per-work-unit monitors of each synchronization
// flavor.
type ObserverResult struct {
	// Synthetic microbenchmark: wall time per monitor flavor.
	Baseline  time.Duration
	Monitored map[string]time.Duration
	// Engine: wall time of a real parallel MD run with per-chunk monitors.
	EngineBaseline  time.Duration
	EngineMonitored map[string]time.Duration
	// Machine model: modeled 4-core cycles with per-work-unit monitor
	// updates of each flavor (this is where the coherence serialization the
	// paper suffered is visible; the wall-clock rows cannot show it on a
	// single-CPU host).
	ModelBaseline  int64
	ModelMonitored map[string]int64
	Report         string
}

// Slowdown returns wall/baseline for a flavor in the synthetic benchmark.
func (r *ObserverResult) Slowdown(flavor string) float64 {
	return float64(r.Monitored[flavor]) / float64(r.Baseline)
}

// runEngine measures a short parallel salt run with an optional per-chunk
// monitor hook (the fine-grained instrumentation points JaMON would hook).
func runEngine(steps int, hook func(worker int)) (time.Duration, error) {
	b := workload.Salt()
	cfg := b.Cfg
	cfg.Threads = 4
	cfg.ChunkHook = hook
	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		return 0, err
	}
	defer sim.Close()
	start := time.Now()
	sim.Run(steps)
	return time.Since(start), nil
}

// monitorFlavor describes how a monitor's counters are laid out in memory.
type monitorFlavor struct {
	name string
	// accesses returns the monitor-update accesses for one work unit by
	// worker w.
	accesses func(w int) []memtrace.Access
}

// modelObserver replays the salt force phase on the modeled 4-core i7 with
// a monitor update injected after every work unit (~16 accesses).
func modelObserver() (int64, map[string]int64, error) {
	const threads = 4
	const lockAddr = uint64(0x9000_0000)
	const counterAddr = uint64(0x9000_0040)
	perWorker := func(w int) uint64 { return 0x9100_0000 + uint64(w)*64 }

	flavors := []monitorFlavor{
		{"none", nil},
		{"synchronized", func(w int) []memtrace.Access {
			return []memtrace.Access{
				{Addr: lockAddr, Write: true, Compute: 10},    // lock acquire (RMW)
				{Addr: counterAddr, Write: true, Compute: 10}, // guarded update
				{Addr: lockAddr, Write: true, Compute: 10},    // release
			}
		}},
		{"atomic", func(w int) []memtrace.Access {
			return []memtrace.Access{{Addr: counterAddr, Write: true, Compute: 10}}
		}},
		{"sharded", func(w int) []memtrace.Access {
			return []memtrace.Access{{Addr: perWorker(w), Write: true, Compute: 10}}
		}},
	}

	b := workload.Salt()
	opt := memtrace.Options{Threads: threads, Cutoff: b.Cfg.LJCutoff, Skin: b.Cfg.Skin, Seed: 9}
	m := memtrace.NewAddrMap(b.Sys.N(), opt)
	base := memtrace.ForcePhase(b.Sys, m, opt)

	out := map[string]int64{}
	var baseline int64
	for _, fl := range flavors {
		streams := make([]memtrace.Stream, threads)
		for w := range streams {
			src := base[w].Accesses
			dst := make([]memtrace.Access, 0, len(src)*5/4)
			for i, a := range src {
				dst = append(dst, a)
				if fl.accesses != nil && i%16 == 15 {
					dst = append(dst, fl.accesses(w)...)
				}
			}
			streams[w].Accesses = dst
		}
		r, err := machine.Run(machine.Config{
			Machine:    topo.CoreI7,
			Threads:    threads,
			Background: 1, BackgroundDuty: 0.1,
			Hier: modelHier,
			Seed: 9,
		}, streams, 4)
		if err != nil {
			return 0, nil, err
		}
		if fl.name == "none" {
			baseline = r.Cycles
		} else {
			out[fl.name] = r.Cycles
		}
	}
	return baseline, out, nil
}

// Observer runs both observer-effect measurements. units/iters size the
// synthetic benchmark; steps sizes the engine run.
func Observer(units, iters, steps int) (*ObserverResult, error) {
	if units <= 0 {
		units = 40000
	}
	if iters <= 0 {
		iters = 300
	}
	if steps <= 0 {
		steps = 15
	}
	const workers = 4
	res := &ObserverResult{
		Monitored:       map[string]time.Duration{},
		EngineMonitored: map[string]time.Duration{},
	}

	// Warm up the scheduler/allocator once.
	perfmon.MeasureObserverEffect(workers, units/10, iters, nil)
	res.Baseline = perfmon.MeasureObserverEffect(workers, units, iters, nil)
	monitors := []perfmon.Monitor{
		perfmon.NewSyncMonitor(),
		perfmon.NewAtomicMonitor("work"),
		perfmon.NewShardedMonitor(workers, "work"),
	}
	for _, m := range monitors {
		res.Monitored[m.Name()] = perfmon.MeasureObserverEffect(workers, units, iters, m)
	}

	base, err := runEngine(steps, nil)
	if err != nil {
		return nil, err
	}
	res.EngineBaseline = base
	for _, mk := range []func() perfmon.Monitor{
		func() perfmon.Monitor { return perfmon.NewSyncMonitor() },
		func() perfmon.Monitor { return perfmon.NewAtomicMonitor("chunk") },
		func() perfmon.Monitor { return perfmon.NewShardedMonitor(workers, "chunk") },
	} {
		m := mk()
		start := time.Now()
		d, err := runEngine(steps, func(worker int) {
			m.Record(worker, "chunk", time.Since(start))
		})
		if err != nil {
			return nil, err
		}
		res.EngineMonitored[m.Name()] = d
	}

	res.ModelBaseline, res.ModelMonitored, err = modelObserver()
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Observer effect (§IV-A): per-unit monitors vs uninstrumented run",
		"Monitor", "Synthetic wall", "Slowdown", "Engine wall", "Slowdown", "Modeled 4-core cycles", "Slowdown")
	t.AddRow("none", res.Baseline, 1.0, res.EngineBaseline, 1.0, res.ModelBaseline, 1.0)
	for _, name := range []string{"synchronized", "atomic", "sharded"} {
		t.AddRow(name,
			res.Monitored[name],
			res.Slowdown(name),
			res.EngineMonitored[name],
			float64(res.EngineMonitored[name])/float64(res.EngineBaseline),
			res.ModelMonitored[name],
			float64(res.ModelMonitored[name])/float64(res.ModelBaseline),
		)
	}
	res.Report = t.String() + fmt.Sprintf(
		"\npaper: JaMON's synchronized monitors serialized MW; VisualVM's per-method\ninstrumentation ran it at ~1/4 speed. Expected ordering: synchronized >\natomic > sharded ≈ none. (The wall-clock columns run on this host, which\nexposes one CPU — real lock contention is only visible in the modeled\ncolumns, where shared monitor lines ping-pong between the four cores.)\n")
	return res, nil
}
