// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns structured results plus a rendered
// text report; cmd/mwbench and the root benchmark harness are thin layers
// over this package. DESIGN.md's per-experiment index maps each function to
// its table/figure.
package experiments

import (
	"fmt"

	"mw/internal/jheap"
	"mw/internal/machine"
	"mw/internal/memtrace"
	"mw/internal/report"
	"mw/internal/topo"
	"mw/internal/workload"
)

// Fig1Result holds the modeled speedup curves of Fig 1.
type Fig1Result struct {
	Cores   []int
	Speedup map[string][]float64 // benchmark → speedup at Cores[i]
	Order   []string
	Report  string
}

// paperFig1 is the paper's measured 4-core speedup per benchmark.
var paperFig1 = map[string]float64{"salt": 3.63, "nanocar": 3.03, "Al-1000": 1.42}

// javaStreams builds the Java-like force-phase streams for a benchmark: atom
// objects scattered across a ~24 MB heap region and a Vec3 temp allocated
// per pair (§V's two memory findings). These are the conditions the paper's
// Fig 1 numbers were measured under.
func javaStreams(b *workload.Benchmark, threads int, seed int64) []memtrace.Stream {
	opt := memtrace.Options{
		Threads:        threads,
		Layout:         jheap.LayoutScattered,
		JavaTemps:      true,
		IncludeRebuild: b.RebuildHeavy,
		Cutoff:         b.Cfg.LJCutoff,
		Skin:           b.Cfg.Skin,
		Seed:           seed,
	}
	m := memtrace.NewAddrMap(b.Sys.N(), opt)
	return memtrace.ForcePhase(b.Sys, m, opt)
}

// estCycles estimates the serial cycles of a one-thread stream set (compute
// plus a nominal per-access cost) to pick a repeat count that makes each run
// long relative to the scheduling quantum.
func estCycles(streams []memtrace.Stream) int64 {
	var c int64
	for _, s := range streams {
		c += s.ComputeCycles() + int64(s.Len())*40
	}
	return c
}

// Fig1 models the paper's Fig 1 on the simulated Core i7 920: speedup of
// the three benchmarks from 1 to 4 cores. budget scales the modeled work
// (total serial cycles per benchmark); 0 selects the default.
func Fig1(budget int64) (*Fig1Result, error) {
	if budget <= 0 {
		budget = 400_000_000
	}
	res := &Fig1Result{
		Cores:   []int{1, 2, 3, 4},
		Speedup: map[string][]float64{},
		Order:   []string{"salt", "nanocar", "Al-1000"},
	}
	for _, b := range workload.All() {
		b := b
		serial := javaStreams(b, 1, 7)
		repeat := int(budget / (estCycles(serial) + 1))
		if repeat < 4 {
			repeat = 4
		}
		if repeat > 200 {
			repeat = 200
		}
		sp, err := machine.Speedup(
			// MemService 100 cycles models the mostly-random DRAM access
			// pattern of the scattered heap (row misses), ~5 GB/s aggregate
			// on the i7 920's three channels. The background load is the
			// mostly idle MW GUI.
			machine.Config{Machine: topo.CoreI7, Seed: 7,
				Background: 1, BackgroundDuty: 0.1,
				QuantumCycles: 300_000,
				Hier:          modelHier},
			4, repeat,
			func(threads int) []memtrace.Stream { return javaStreams(b, threads, 7) },
		)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", b.Name, err)
		}
		res.Speedup[b.Name] = sp
	}

	xs := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		xs[i] = float64(c)
	}
	s := report.NewSeries("Fig 1: modeled speedup on Core i7 920 (paper: salt 3.63x, nanocar 3.03x, Al-1000 1.42x)", "cores", xs)
	for _, name := range res.Order {
		s.Add(name, res.Speedup[name])
	}
	res.Report = s.String()
	return res, nil
}
