package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestForwardKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v", i, v)
		}
	}
	// DFT of a pure tone lands in a single bin.
	const n = 16
	tone := make([]complex128, n)
	for i := range tone {
		ang := 2 * math.Pi * 3 * float64(i) / n
		tone[i] = cmplx.Exp(complex(0, ang))
	}
	if err := Forward(tone); err != nil {
		t.Fatal(err)
	}
	for k, v := range tone {
		want := 0.0
		if k == 3 {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d magnitude %v, want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := randComplex(rng, n)
		orig := append([]complex128(nil), x...)
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip diverged at %d", n, i)
			}
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		x := randComplex(rng, 256)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= 256
		if math.Abs(timeE-freqE) > 1e-9*(1+timeE) {
			t.Fatalf("Parseval violated: %v vs %v", timeE, freqE)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randComplex(rng, 128)
	b := randComplex(rng, 128)
	sum := make([]complex128, 128)
	for i := range sum {
		sum[i] = a[i] + 2*b[i]
	}
	Forward(a)
	Forward(b)
	Forward(sum)
	for i := range sum {
		if cmplx.Abs(sum[i]-(a[i]+2*b[i])) > 1e-9 {
			t.Fatal("linearity violated")
		}
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := Forward(make([]complex128, 6)); err == nil {
		t.Error("length 6 accepted")
	}
	if err := Inverse(make([]complex128, 100)); err == nil {
		t.Error("length 100 accepted")
	}
	if err := Forward(nil); err != nil {
		t.Error("empty transform must be a no-op")
	}
}

func TestMesh3DRoundTrip(t *testing.T) {
	m, err := NewMesh3D(8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	orig := make([]complex128, len(m.Data))
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = m.Data[i]
	}
	if err := m.Transform(false); err != nil {
		t.Fatal(err)
	}
	if err := m.Transform(true); err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip diverged at %d", i)
		}
	}
}

func TestMesh3DDeltaTransform(t *testing.T) {
	// A delta at the origin transforms to a constant field.
	m, _ := NewMesh3D(4, 4, 4)
	m.Set(0, 0, 0, 1)
	if err := m.Transform(false); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Data {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform not flat: %v", v)
		}
	}
}

func TestMesh3DIndexing(t *testing.T) {
	m, _ := NewMesh3D(4, 8, 2)
	m.Set(3, 7, 1, 42)
	if m.At(3, 7, 1) != 42 {
		t.Error("Set/At mismatch")
	}
	if m.Index(0, 0, 0) != 0 || m.Index(3, 7, 1) != len(m.Data)-1 {
		t.Error("index layout wrong")
	}
	m.Zero()
	if m.At(3, 7, 1) != 0 {
		t.Error("Zero incomplete")
	}
}

func TestMesh3DRejectsBadDims(t *testing.T) {
	if _, err := NewMesh3D(3, 4, 4); err == nil {
		t.Error("non-power-of-two mesh accepted")
	}
	if _, err := NewMesh3D(0, 4, 4); err == nil {
		t.Error("zero mesh accepted")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randComplex(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
