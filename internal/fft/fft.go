// Package fft provides the radix-2 complex fast Fourier transform used by
// the particle-mesh-Ewald extension (the O(N log N) Coulomb method the paper
// names as future work, citing Darden et al.). Only power-of-two lengths
// are supported; PME meshes are chosen accordingly.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Forward computes the in-place forward DFT of x:
// X[k] = Σ_n x[n]·exp(-2πi·kn/N). len(x) must be a power of two.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse DFT including the 1/N
// normalization, so Inverse(Forward(x)) == x.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size *= 2 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
	return nil
}

// Mesh3D is a dense complex scalar field on an nx×ny×nz grid with x fastest.
type Mesh3D struct {
	Nx, Ny, Nz int
	Data       []complex128
}

// NewMesh3D allocates a zeroed mesh. Dimensions must be powers of two.
func NewMesh3D(nx, ny, nz int) (*Mesh3D, error) {
	for _, n := range []int{nx, ny, nz} {
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("fft: mesh dimension %d is not a power of two", n)
		}
	}
	return &Mesh3D{Nx: nx, Ny: ny, Nz: nz, Data: make([]complex128, nx*ny*nz)}, nil
}

// Index returns the flat index of (ix, iy, iz).
func (m *Mesh3D) Index(ix, iy, iz int) int { return (iz*m.Ny+iy)*m.Nx + ix }

// At returns the value at (ix, iy, iz).
func (m *Mesh3D) At(ix, iy, iz int) complex128 { return m.Data[m.Index(ix, iy, iz)] }

// Set stores v at (ix, iy, iz).
func (m *Mesh3D) Set(ix, iy, iz int, v complex128) { m.Data[m.Index(ix, iy, iz)] = v }

// Zero clears the mesh.
func (m *Mesh3D) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Transform applies the 3D FFT in place (inverse includes normalization).
func (m *Mesh3D) Transform(inverse bool) error {
	t := Forward
	if inverse {
		t = Inverse
	}
	// X lines.
	for iz := 0; iz < m.Nz; iz++ {
		for iy := 0; iy < m.Ny; iy++ {
			base := m.Index(0, iy, iz)
			if err := t(m.Data[base : base+m.Nx]); err != nil {
				return err
			}
		}
	}
	// Y lines (gather/scatter with stride Nx).
	line := make([]complex128, max(m.Ny, m.Nz))
	for iz := 0; iz < m.Nz; iz++ {
		for ix := 0; ix < m.Nx; ix++ {
			for iy := 0; iy < m.Ny; iy++ {
				line[iy] = m.Data[m.Index(ix, iy, iz)]
			}
			if err := t(line[:m.Ny]); err != nil {
				return err
			}
			for iy := 0; iy < m.Ny; iy++ {
				m.Data[m.Index(ix, iy, iz)] = line[iy]
			}
		}
	}
	// Z lines.
	for iy := 0; iy < m.Ny; iy++ {
		for ix := 0; ix < m.Nx; ix++ {
			for iz := 0; iz < m.Nz; iz++ {
				line[iz] = m.Data[m.Index(ix, iy, iz)]
			}
			if err := t(line[:m.Nz]); err != nil {
				return err
			}
			for iz := 0; iz < m.Nz; iz++ {
				m.Data[m.Index(ix, iy, iz)] = line[iz]
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
