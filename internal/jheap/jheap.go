// Package jheap models the Java heap behaviours at the center of the
// paper's §V memory analysis:
//
//   - object placement the programmer cannot control: Molecular Workbench
//     stores atoms as an array of objects whose addresses the JVM picks, so
//     spatial data reordering "was not practical in Java" (§V-A). The
//     package lays out atom objects packed, scattered (allocation history +
//     garbage-collection survivors), or spatially reordered, and exposes the
//     addresses so the cache model can measure the difference the paper
//     could only infer from miss rates;
//
//   - nursery churn: "over 50% of our live memory was being used by one type
//     of temporary object, a simple convenience class that wraps together
//     three floating point values" (§V-B). AllocTemp hands out short-lived
//     wrapper objects from a TLAB-style nursery whose traffic pollutes the
//     caches; Census reports live bytes by class the way VisualVM's live
//     allocated objects view does.
package jheap

import "math/rand"

// Layout selects an atom-object placement policy.
type Layout int

const (
	// LayoutPacked places atom objects contiguously in index order — the
	// layout a C program (or Go SoA slices) would get.
	LayoutPacked Layout = iota
	// LayoutScattered places atom objects in random order with gaps, the
	// state of a mature JVM heap after allocation churn and partial GC.
	LayoutScattered
	// LayoutReordered places objects contiguously but in a caller-provided
	// order (e.g. sorted by simulation-space position) — the inspector/
	// executor data packing the paper attempted.
	LayoutReordered
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case LayoutPacked:
		return "packed"
	case LayoutScattered:
		return "scattered"
	case LayoutReordered:
		return "reordered"
	}
	return "unknown"
}

// Object sizes in bytes, modeled on HotSpot: a 16-byte header plus fields.
const (
	// AtomObjectBytes models MW's per-atom object: header + position,
	// velocity, acceleration, force (4 × 3 doubles) + element/charge/flags.
	AtomObjectBytes = 16 + 4*3*8 + 16 // 128
	// Vec3ObjectBytes models the 3-float convenience wrapper of §V-B.
	Vec3ObjectBytes = 16 + 3*8 // 40
	// NurseryBytes is the per-thread TLAB region size temps cycle through.
	// Each allocating thread gets its own region (HotSpot thread-local
	// allocation buffers), which is why temp churn scales its cache
	// footprint with the thread count — the §V-B pollution mechanism.
	NurseryBytes = 3 << 19
)

// ClassStats is one row of the live-object census.
type ClassStats struct {
	Count int64
	Bytes int64
}

// Heap is the modeled Java heap.
type Heap struct {
	rng *rand.Rand

	base uint64 // old-generation base address
	brk  uint64

	nurseryBase uint64
	nurseryOff  []uint64 // per-thread TLAB cursors

	live map[string]ClassStats
}

// New creates a heap model with deterministic placement for a given seed.
func New(seed int64) *Heap {
	return &Heap{
		rng:         rand.New(rand.NewSource(seed)),
		base:        0x1000_0000,
		brk:         0x1000_0000,
		nurseryBase: 0x8000_0000,
		live:        make(map[string]ClassStats),
	}
}

// LayoutAtoms assigns an address to each of n atom objects under the given
// policy and registers them as live. order is used only by LayoutReordered
// and must then be a permutation of [0,n): order[k] is the atom placed k-th.
func (h *Heap) LayoutAtoms(n int, layout Layout, order []int) []uint64 {
	addrs := h.LayoutObjects(n, layout, order)
	st := h.live["Atom3D"]
	st.Count += int64(n)
	st.Bytes += int64(n) * AtomObjectBytes
	h.live["Atom3D"] = st
	return addrs
}

// LayoutObjects places n atom-sized objects without registering them in the
// live census — used for phantom objects standing in for dead or unrelated
// heap contents when modelling a fragmented old generation.
func (h *Heap) LayoutObjects(n int, layout Layout, order []int) []uint64 {
	addrs := make([]uint64, n)
	switch layout {
	case LayoutPacked:
		for i := range addrs {
			addrs[i] = h.brk + uint64(i)*AtomObjectBytes
		}
		h.brk += uint64(n) * AtomObjectBytes
	case LayoutReordered:
		if len(order) != n {
			panic("jheap: reordered layout requires a full order")
		}
		for k, i := range order {
			addrs[i] = h.brk + uint64(k)*AtomObjectBytes
		}
		h.brk += uint64(n) * AtomObjectBytes
	case LayoutScattered:
		// Allocation-history model: objects land in random order across a
		// region ~4× their packed footprint (survivor gaps + interleaved
		// allocations of other classes).
		region := uint64(n) * AtomObjectBytes * 4
		slots := region / AtomObjectBytes
		perm := h.rng.Perm(int(slots))[:n]
		for i := range addrs {
			addrs[i] = h.brk + uint64(perm[i])*AtomObjectBytes
		}
		h.brk += region
	default:
		panic("jheap: unknown layout")
	}
	return addrs
}

// AllocTemp allocates one short-lived wrapper object in thread t's TLAB and
// returns its address. Temps stay "live until the next garbage collection"
// (§V-B), so they accumulate in the census until GC is called.
func (h *Heap) AllocTemp(t int, class string, size int) uint64 {
	if size <= 0 {
		size = Vec3ObjectBytes
	}
	for t >= len(h.nurseryOff) {
		h.nurseryOff = append(h.nurseryOff, 0)
	}
	addr := h.nurseryBase + uint64(t)*NurseryBytes + h.nurseryOff[t]
	h.nurseryOff[t] += uint64(size)
	if h.nurseryOff[t] >= NurseryBytes {
		h.nurseryOff[t] = 0 // wrap: TLAB reuse after a minor collection
	}
	st := h.live[class]
	st.Count++
	st.Bytes += int64(size)
	h.live[class] = st
	return addr
}

// RegisterLive records n objects of the class totalling bytes in the census
// without placing them (used when addresses were assigned by LayoutObjects).
func (h *Heap) RegisterLive(class string, n, bytes int) {
	st := h.live[class]
	st.Count += int64(n)
	st.Bytes += int64(bytes)
	h.live[class] = st
}

// GC clears the given temporary classes from the census (a minor collection
// reclaiming the nursery). Long-lived classes are untouched.
func (h *Heap) GC(tempClasses ...string) {
	for _, c := range tempClasses {
		delete(h.live, c)
	}
	for t := range h.nurseryOff {
		h.nurseryOff[t] = 0
	}
}

// Census returns a copy of the live-object statistics by class.
func (h *Heap) Census() map[string]ClassStats {
	out := make(map[string]ClassStats, len(h.live))
	for k, v := range h.live {
		out[k] = v
	}
	return out
}

// LiveBytes returns the total live bytes across classes.
func (h *Heap) LiveBytes() int64 {
	var b int64
	for _, v := range h.live {
		b += v.Bytes
	}
	return b
}

// ClassFraction returns class's share of live bytes (0 when heap is empty).
func (h *Heap) ClassFraction(class string) float64 {
	total := h.LiveBytes()
	if total == 0 {
		return 0
	}
	return float64(h.live[class].Bytes) / float64(total)
}

// Span returns the address span covered by a set of objects (max − min +
// object size): the footprint a hardware prefetcher and the TLB see.
// Packing minimizes span; scattering inflates it.
func Span(addrs []uint64, objBytes uint64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	lo, hi := addrs[0], addrs[0]
	for _, a := range addrs {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return hi - lo + objBytes
}

// MeanNeighborGap returns the mean absolute address distance between
// consecutively indexed objects — the spatial-locality metric §V-A wants a
// "heap viewer" to expose.
func MeanNeighborGap(addrs []uint64) float64 {
	if len(addrs) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(addrs); i++ {
		d := int64(addrs[i]) - int64(addrs[i-1])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(addrs)-1)
}
