package jheap

import (
	"testing"
)

func TestPackedLayoutContiguous(t *testing.T) {
	h := New(1)
	addrs := h.LayoutAtoms(100, LayoutPacked, nil)
	for i := 1; i < 100; i++ {
		if addrs[i]-addrs[i-1] != AtomObjectBytes {
			t.Fatalf("gap at %d: %d", i, addrs[i]-addrs[i-1])
		}
	}
	if Span(addrs, AtomObjectBytes) != 100*AtomObjectBytes {
		t.Errorf("packed span = %d", Span(addrs, AtomObjectBytes))
	}
}

func TestScatteredLayoutSpread(t *testing.T) {
	h := New(2)
	packed := h.LayoutAtoms(200, LayoutPacked, nil)
	scattered := h.LayoutAtoms(200, LayoutScattered, nil)
	if Span(scattered, AtomObjectBytes) <= Span(packed, AtomObjectBytes) {
		t.Error("scattered span not larger than packed")
	}
	if MeanNeighborGap(scattered) <= MeanNeighborGap(packed) {
		t.Error("scattered neighbor gap not larger than packed")
	}
	// No two objects share an address.
	seen := map[uint64]bool{}
	for _, a := range scattered {
		if seen[a] {
			t.Fatal("address collision in scattered layout")
		}
		seen[a] = true
	}
}

func TestReorderedLayoutFollowsOrder(t *testing.T) {
	h := New(3)
	order := []int{3, 1, 0, 2} // atom 3 placed first, then 1, 0, 2
	addrs := h.LayoutAtoms(4, LayoutReordered, order)
	if addrs[3] >= addrs[1] || addrs[1] >= addrs[0] || addrs[0] >= addrs[2] {
		t.Errorf("reordered addresses wrong: %v", addrs)
	}
	// Still packed: same span as a packed layout.
	if Span(addrs, AtomObjectBytes) != 4*AtomObjectBytes {
		t.Errorf("reordered span = %d", Span(addrs, AtomObjectBytes))
	}
}

func TestReorderedLayoutValidation(t *testing.T) {
	h := New(4)
	defer func() {
		if recover() == nil {
			t.Error("short order must panic")
		}
	}()
	h.LayoutAtoms(5, LayoutReordered, []int{0, 1})
}

func TestUnknownLayoutPanics(t *testing.T) {
	h := New(4)
	defer func() {
		if recover() == nil {
			t.Error("unknown layout must panic")
		}
	}()
	h.LayoutAtoms(1, Layout(42), nil)
}

func TestCensusTracksClasses(t *testing.T) {
	h := New(5)
	h.LayoutAtoms(10, LayoutPacked, nil)
	for i := 0; i < 100; i++ {
		h.AllocTemp(0, "Vec3", Vec3ObjectBytes)
	}
	c := h.Census()
	if c["Atom3D"].Count != 10 || c["Atom3D"].Bytes != 10*AtomObjectBytes {
		t.Errorf("Atom3D census = %+v", c["Atom3D"])
	}
	if c["Vec3"].Count != 100 || c["Vec3"].Bytes != 100*Vec3ObjectBytes {
		t.Errorf("Vec3 census = %+v", c["Vec3"])
	}
	if h.LiveBytes() != 10*AtomObjectBytes+100*Vec3ObjectBytes {
		t.Errorf("LiveBytes = %d", h.LiveBytes())
	}
}

func TestVec3DominatesLiveHeap(t *testing.T) {
	// §V-B's observation: run enough force-phase temps and the wrapper class
	// exceeds 50% of live memory.
	h := New(6)
	h.LayoutAtoms(1000, LayoutScattered, nil)
	// One timestep of a 1000-atom LJ system allocates a few temps per pair;
	// ~40 pairs per atom → ~4000+ temps comfortably dominate.
	for i := 0; i < 1000*40/4; i++ {
		h.AllocTemp(0, "Vec3", Vec3ObjectBytes)
	}
	if f := h.ClassFraction("Vec3"); f <= 0.5 {
		t.Errorf("Vec3 fraction = %v, want > 0.5", f)
	}
}

func TestGCReclaimsTemps(t *testing.T) {
	h := New(7)
	h.LayoutAtoms(10, LayoutPacked, nil)
	h.AllocTemp(0, "Vec3", 0)
	h.GC("Vec3")
	if h.Census()["Vec3"].Count != 0 {
		t.Error("GC left temps live")
	}
	if h.Census()["Atom3D"].Count != 10 {
		t.Error("GC reclaimed long-lived objects")
	}
	if h.ClassFraction("Vec3") != 0 {
		t.Error("fraction nonzero after GC")
	}
}

func TestNurseryWraps(t *testing.T) {
	h := New(8)
	first := h.AllocTemp(0, "Vec3", Vec3ObjectBytes)
	var last uint64
	// Allocate more than the nursery holds; addresses must stay in range.
	for i := 0; i < int(NurseryBytes/Vec3ObjectBytes)+10; i++ {
		last = h.AllocTemp(0, "Vec3", Vec3ObjectBytes)
	}
	if last < first || last >= first+NurseryBytes {
		t.Errorf("nursery address %#x escaped region starting %#x", last, first)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(42).LayoutAtoms(50, LayoutScattered, nil)
	b := New(42).LayoutAtoms(50, LayoutScattered, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scattered layout nondeterministic for fixed seed")
		}
	}
}

func TestSpanAndGapEdgeCases(t *testing.T) {
	if Span(nil, 8) != 0 {
		t.Error("empty span")
	}
	if MeanNeighborGap([]uint64{5}) != 0 {
		t.Error("single-element gap")
	}
	if Span([]uint64{100}, 8) != 8 {
		t.Error("single-object span must be object size")
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutPacked.String() != "packed" || LayoutScattered.String() != "scattered" ||
		LayoutReordered.String() != "reordered" || Layout(9).String() != "unknown" {
		t.Error("layout names wrong")
	}
}

func TestAllocTempDefaultSize(t *testing.T) {
	h := New(9)
	h.AllocTemp(0, "Vec3", 0)
	if h.Census()["Vec3"].Bytes != Vec3ObjectBytes {
		t.Error("default temp size not applied")
	}
}
