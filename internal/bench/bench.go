// Package bench is the benchmark-regression harness gating the cell-ordered
// hot path: it measures the LJ force kernels and whole engine steps
// (ns/op, allocs/op, bytes/op) plus per-phase latency percentiles from the
// telemetry histograms, serializes everything as a JSON report
// (BENCH_<n>.json via `make bench-json`), and diffs reports within a
// tolerance so a PR that slows a kernel or adds a hot-loop allocation fails
// visibly instead of silently (`mwbench benchdiff`).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mw/internal/atom"
	"mw/internal/cells"
	"mw/internal/core"
	"mw/internal/forces"
	"mw/internal/telemetry"
	"mw/internal/vec"
	"mw/internal/workload"
)

// Schema identifies the report layout; bump on incompatible changes.
const Schema = 1

// Result is one measured benchmark.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// PhasePercentiles is one engine phase's latency distribution, read from the
// telemetry recorder's ring histograms after a timed run.
type PhasePercentiles struct {
	Phase     string  `json:"phase"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// WorkloadPhases couples a workload + engine configuration with its phase
// percentiles.
type WorkloadPhases struct {
	Workload string             `json:"workload"`
	Config   string             `json:"config"`
	Steps    int                `json:"steps"`
	Phases   []PhasePercentiles `json:"phases"`
}

// Report is the serialized output of one harness run.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Benchmarks []Result         `json:"benchmarks"`
	Phases     []WorkloadPhases `json:"phases"`

	// Serve is the service-level tail-latency section (mwserved driven by
	// the in-process load sweep). Its p99/throughput numbers also appear as
	// serve/* rows in Benchmarks so Diff gates them like kernel timings.
	// Absent when the harness ran with SkipServe.
	Serve *ServeSection `json:"serve,omitempty"`

	// KernelSpeedup is the headline §V-A number: the seed half-list LJ kernel
	// (exclusion check, file-ordered atoms) over the cell-ordered one
	// (exclusion-free, Morton-ordered atoms) on Al-1000.
	KernelSpeedup float64 `json:"kernel_speedup"`
}

// Options tunes a harness run; the zero value uses the defaults the committed
// baselines were generated with.
type Options struct {
	// BenchTime is the minimum measuring window per benchmark (default 500ms).
	BenchTime time.Duration
	// Steps is the length of the phase-percentile runs (default 150).
	Steps int

	// ServeSessions is the tenant-fleet size for the service sweep
	// (default 1024 — above the 1000-session acceptance floor).
	ServeSessions int
	// ServeConcurrency lists the client concurrency levels (default 64, 512).
	ServeConcurrency []int
	// ServeNRuns is runs per concurrency level (default 2).
	ServeNRuns int
	// ServeStepsPerReq is engine steps per step request (default 1).
	ServeStepsPerReq int
	// ServeWorkload names the per-session workload (default Al-1000).
	ServeWorkload string
	// SkipServe omits the service section entirely.
	SkipServe bool
}

func (o Options) withDefaults() Options {
	if o.BenchTime <= 0 {
		o.BenchTime = 500 * time.Millisecond
	}
	if o.Steps <= 0 {
		o.Steps = 150
	}
	if o.ServeSessions <= 0 {
		o.ServeSessions = 1024
	}
	if len(o.ServeConcurrency) == 0 {
		o.ServeConcurrency = []int{64, 512}
	}
	if o.ServeNRuns <= 0 {
		o.ServeNRuns = 2
	}
	if o.ServeStepsPerReq <= 0 {
		o.ServeStepsPerReq = 1
	}
	if o.ServeWorkload == "" {
		o.ServeWorkload = "Al-1000"
	}
	return o
}

// nsPerOp times f over at least the measuring window (and at least 3 runs
// after one warmup) and returns mean nanoseconds per call.
func nsPerOp(window time.Duration, f func()) float64 {
	f() // warmup
	iters := 0
	start := time.Now()
	for time.Since(start) < window || iters < 3 {
		f()
		iters++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// bytesPerOp measures mean heap bytes allocated per call.
func bytesPerOp(f func()) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const n = 5
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / n
}

// allocsPerOp measures mean heap allocations per call. It is
// testing.AllocsPerRun without importing the testing package into a
// non-test binary (mwbench links this package).
func allocsPerOp(f func()) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const n = 5
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / n
}

func measure(name string, window time.Duration, f func()) Result {
	return Result{
		Name:        name,
		NsPerOp:     nsPerOp(window, f),
		AllocsPerOp: allocsPerOp(f),
		BytesPerOp:  bytesPerOp(f),
	}
}

// mortonOrder computes the gather permutation sorting s into Morton cell
// order under g (the same stable counting sort the engine's reorder pass
// uses, reimplemented here so the harness can prepare a cell-ordered system
// without driving the whole engine).
func mortonOrder(g *cells.Grid, s *atom.System) []int32 {
	g.Assign(s)
	ranks := g.MortonRanks()
	n := s.N()
	nc := g.NumCells()
	keys := make([]int32, n)
	counts := make([]int32, nc+1)
	for i := 0; i < n; i++ {
		k := ranks[g.CellIndexOf(s.Pos[i])]
		keys[i] = k
		counts[k+1]++
	}
	for r := 0; r < nc; r++ {
		counts[r+1] += counts[r]
	}
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		order[counts[keys[i]]] = int32(i)
		counts[keys[i]]++
	}
	return order
}

// kernelSetup holds one prepared Al-1000 instance for kernel benchmarks:
// the classic half range list plus the Verlet cluster-pair state (list,
// packed SoA coordinates, SIMD scratch) over the same atoms.
type kernelSetup struct {
	sys *atom.System
	lj  *forces.LJ
	rl  cells.RangeList
	cl  cells.ClusterList
	cc  cells.ClusterCoords
	scr forces.ClusterScratch
	f   []vec.Vec3
}

func newKernelSetup(morton bool) (*kernelSetup, error) {
	b := workload.Al1000()
	sys := b.Sys
	rng := b.Cfg.LJCutoff + b.Cfg.Skin
	g := cells.NewGrid(sys.Box, rng)
	if morton {
		order := mortonOrder(g, sys)
		var r atom.Reorderer
		if err := r.Apply(sys, order); err != nil {
			return nil, err
		}
	}
	g.Assign(sys)
	ks := &kernelSetup{
		sys: sys,
		lj:  forces.NewLJ(sys.Elements, b.Cfg.LJCutoff),
		f:   make([]vec.Vec3, sys.N()),
	}
	g.BuildRange(sys, rng, 0, sys.N(), &ks.rl)
	g.BuildClusterRange(sys, rng, 0, sys.N(), &ks.cl)
	ks.cc.Pack(sys)
	return ks, nil
}

// Run executes the full harness and returns the report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	// LJ kernel benchmarks on Al-1000 (Excl.Len() == 0, so the exclusion-free
	// kernels are the ones the engine actually selects for it).
	seed, err := newKernelSetup(false)
	if err != nil {
		return nil, err
	}
	sorted, err := newKernelSetup(true)
	if err != nil {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks,
		measure("kernel/lj-halflist/seed", opts.BenchTime, func() {
			seed.lj.AccumulateRangeList(seed.sys, &seed.rl, seed.f)
		}),
		measure("kernel/lj-halflist-noexcl/seed-order", opts.BenchTime, func() {
			seed.lj.AccumulateRangeListNoExcl(seed.sys, &seed.rl, seed.f)
		}),
		measure("kernel/lj-halflist-noexcl/morton-order", opts.BenchTime, func() {
			sorted.lj.AccumulateRangeListNoExcl(sorted.sys, &sorted.rl, sorted.f)
		}),
		measure("kernel/lj-halflist-fast/morton-order", opts.BenchTime, func() {
			sorted.lj.AccumulateRangeListFast(sorted.sys, &sorted.rl, sorted.f)
		}),
		measure("kernel/lj-fulllist-noexcl/morton-order", opts.BenchTime, func() {
			sorted.lj.AccumulateRangeListFullNoExcl(sorted.sys, &sorted.rl, sorted.f)
		}),
		measure("kernel/lj-cluster-ref/morton-order", opts.BenchTime, func() {
			sorted.lj.AccumulateClusterList(sorted.sys, &sorted.cl, sorted.f)
		}),
		measure("kernel/lj-cluster-fast/morton-order", opts.BenchTime, func() {
			sorted.lj.AccumulateClusterListFast(sorted.sys, &sorted.cl, sorted.f)
		}),
	)
	if forces.HaveClusterSIMD && !sorted.sys.Box.Periodic {
		rep.Benchmarks = append(rep.Benchmarks,
			measure("kernel/lj-cluster-simd/morton-order", opts.BenchTime, func() {
				sorted.lj.AccumulateClusterListSIMD(sorted.sys, &sorted.cc, &sorted.cl, &sorted.scr, sorted.f)
			}),
		)
	}
	// Headline §V-A ratio: the seed kernel over the kernel the engine
	// actually runs on Al-1000 with the hot path on.
	rep.KernelSpeedup = rep.Benchmarks[0].NsPerOp / rep.Benchmarks[3].NsPerOp

	// Whole-engine step benchmarks: the seed configuration against the
	// cell-ordered hot path, per Table I workload.
	for _, wl := range workload.All() {
		for _, mode := range []struct {
			name string
			mut  func(*core.Config)
		}{
			{"seed", func(c *core.Config) {}},
			{"cell-ordered", func(c *core.Config) {
				c.Reorder = true
				c.Partition = core.PartitionGuided
			}},
			{"cluster", func(c *core.Config) {
				c.Reorder = true
				c.Partition = core.PartitionGuided
				c.Cluster = true
			}},
		} {
			cfg := wl.Cfg
			mode.mut(&cfg)
			sim, err := core.New(wl.Sys.Clone(), cfg)
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", wl.Name, mode.name, err)
			}
			rep.Benchmarks = append(rep.Benchmarks,
				measure(fmt.Sprintf("step/%s/%s", wl.Name, mode.name), opts.BenchTime, sim.Step))
			sim.Close()
		}
	}

	// Phase percentiles from the telemetry histograms: seed, cell-ordered,
	// and the cluster rung layered on top of it.
	for _, mode := range []struct {
		name    string
		reorder bool
		cluster bool
	}{{"seed", false, false}, {"cell-ordered", true, false}, {"cluster", true, true}} {
		wl := workload.Al1000()
		cfg := wl.Cfg
		if mode.reorder {
			cfg.Reorder = true
			cfg.Partition = core.PartitionGuided
		}
		cfg.Cluster = mode.cluster
		rec := telemetry.NewRecorder(cfg.Threads, core.PhaseNames())
		cfg.Telemetry = rec
		sim, err := core.New(wl.Sys.Clone(), cfg)
		if err != nil {
			return nil, fmt.Errorf("phases %s: %w", mode.name, err)
		}
		sim.Run(opts.Steps)
		sim.Close()
		snap := rec.Snapshot(0)
		wp := WorkloadPhases{Workload: wl.Name, Config: mode.name, Steps: opts.Steps}
		for _, ph := range snap.Phases {
			wp.Phases = append(wp.Phases, PhasePercentiles{
				Phase:     ph.Phase,
				P50Micros: ph.P50Micros,
				P99Micros: ph.P99Micros,
			})
		}
		rep.Phases = append(rep.Phases, wp)
	}

	// Service tail latency: mwserved under the load sweep, gated like any
	// other benchmark through the serve/* rows.
	if !opts.SkipServe {
		if err := runServe(opts, rep); err != nil {
			return nil, fmt.Errorf("serve bench: %w", err)
		}
	}
	return rep, nil
}

// WriteFile serializes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %d, this binary speaks %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// NextPath returns dir's first unused BENCH_<n>.json path.
func NextPath(dir string) string {
	for n := 0; ; n++ {
		p := fmt.Sprintf("%s/BENCH_%d.json", dir, n)
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p
		}
	}
}
