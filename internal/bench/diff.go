package bench

import (
	"fmt"
	"strings"
)

// DiffResult is one benchmark's base-vs-new comparison.
type DiffResult struct {
	Name       string
	BaseNs     float64
	NewNs      float64
	Ratio      float64 // NewNs / BaseNs
	AllocDelta float64 // new allocs/op − base allocs/op
	Regressed  bool
}

// Diff compares cur against base within tol (fractional: 0.15 allows a 15%
// slowdown before flagging). A benchmark regresses when its time ratio
// exceeds 1+tol or it allocates where the baseline did not — the alloc gate
// is exact, because a single hot-loop allocation is a GC-pressure change, not
// noise. Benchmarks present in only one report are listed but never fail the
// diff (renames should not brick CI); a schema mismatch already failed in
// ReadFile. The returned report is always complete; err != nil iff at least
// one benchmark regressed.
func Diff(base, cur *Report, tol float64) (string, []DiffResult, error) {
	if tol <= 0 {
		tol = 0.15
	}
	baseBy := map[string]Result{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: tolerance %.0f%%  (base %s/%s %s, new %s/%s %s)\n",
		tol*100, base.GOOS, base.GOARCH, base.GoVersion, cur.GOOS, cur.GOARCH, cur.GoVersion)
	if base.GoVersion != cur.GoVersion || base.CPUs != cur.CPUs {
		sb.WriteString("note: toolchain or machine differs from baseline; timings are indicative only\n")
	}
	fmt.Fprintf(&sb, "%-45s %12s %12s %7s %8s\n", "benchmark", "base ns/op", "new ns/op", "ratio", "Δallocs")

	var out []DiffResult
	var regressed []string
	seen := map[string]bool{}
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-45s %12s %12.0f %7s %8s  (new)\n", c.Name, "-", c.NsPerOp, "-", "-")
			continue
		}
		d := DiffResult{
			Name:       c.Name,
			BaseNs:     b.NsPerOp,
			NewNs:      c.NsPerOp,
			Ratio:      c.NsPerOp / b.NsPerOp,
			AllocDelta: c.AllocsPerOp - b.AllocsPerOp,
		}
		d.Regressed = d.Ratio > 1+tol || (b.AllocsPerOp < 0.5 && c.AllocsPerOp >= 0.5)
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
			regressed = append(regressed, d.Name)
		}
		fmt.Fprintf(&sb, "%-45s %12.0f %12.0f %6.2fx %8.1f%s\n",
			d.Name, d.BaseNs, d.NewNs, d.Ratio, d.AllocDelta, mark)
		out = append(out, d)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(&sb, "%-45s %12.0f %12s %7s %8s  (removed)\n", b.Name, b.NsPerOp, "-", "-", "-")
		}
	}
	fmt.Fprintf(&sb, "kernel speedup (seed kernel / cell-ordered kernel on Al-1000): base %.2fx, new %.2fx\n",
		base.KernelSpeedup, cur.KernelSpeedup)
	if len(regressed) > 0 {
		return sb.String(), out, fmt.Errorf("bench: %d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), tol*100, strings.Join(regressed, ", "))
	}
	return sb.String(), out, nil
}

// Summary renders the report as a table for terminal output.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench: %s %s/%s, %d CPUs\n", r.GoVersion, r.GOOS, r.GOARCH, r.CPUs)
	fmt.Fprintf(&sb, "%-45s %12s %10s %10s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%-45s %12.0f %10.1f %10.0f\n", b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	fmt.Fprintf(&sb, "kernel speedup (seed vs cell-ordered, Al-1000): %.2fx\n", r.KernelSpeedup)
	for _, wp := range r.Phases {
		fmt.Fprintf(&sb, "phases %s/%s (%d steps):", wp.Workload, wp.Config, wp.Steps)
		for _, ph := range wp.Phases {
			fmt.Fprintf(&sb, "  %s p50=%.1fµs p99=%.1fµs", ph.Phase, ph.P50Micros, ph.P99Micros)
		}
		sb.WriteByte('\n')
	}
	if s := r.Serve; s != nil {
		fmt.Fprintf(&sb, "serve %s: %d sessions × %d steps/req × %d runs over %d workers\n",
			s.Workload, s.Sessions, s.StepsPerReq, s.NRuns, s.Workers)
		for _, row := range s.Rows {
			fmt.Fprintf(&sb, "  c=%-4d %10.1f req/s  p50=%.0fµs p99=%.0fµs p999=%.0fµs shed=%d\n",
				row.Concurrency, row.ReqPerSec, row.P50us, row.P99us, row.P999us, row.Shed429)
		}
		fmt.Fprintf(&sb, "  oversubscribe: burst=%d shed(429)=%d healthy=%v\n",
			s.OversubBurst, s.OversubShed429, s.OversubHealthy)
	}
	return sb.String()
}
