package bench

import (
	"fmt"
	"net/url"
	"runtime"

	"mw/internal/serve"
)

// ServeSection is the service-level result block: one load sweep against an
// in-process mwserved (many concurrent tenant sessions, one shared pool)
// plus an oversubscription probe against a deliberately tiny queue. The
// sweep's throughput and p99 also land in Report.Benchmarks as serve/*
// rows, so Diff applies the same regression gate to service tail latency
// as to kernel timings.
type ServeSection struct {
	Workload    string           `json:"workload"`
	Sessions    int              `json:"sessions"`
	StepsPerReq int              `json:"steps_per_req"`
	NRuns       int              `json:"nruns"`
	Workers     int              `json:"workers"`
	Rows        []serve.SweepRow `json:"rows"`

	// Oversubscription probe: a no-retry burst against a queue-depth-8
	// server. Shed429 > 0 with Healthy true is the "sheds load instead of
	// collapsing" acceptance evidence.
	OversubBurst   int   `json:"oversub_burst"`
	OversubShed429 int64 `json:"oversub_shed_429"`
	OversubHealthy bool  `json:"oversub_healthy"`
}

// serveWorkloadQuery returns extra create parameters for workloads that
// take them. The lj-gas lattice is pinned to n=3 (27 atoms) — the smallest
// legal size — so tiny test runs stay tiny.
func serveWorkloadQuery(name string) url.Values {
	if name == "lj-gas" {
		return url.Values{"n": {"3"}}
	}
	return nil
}

// runServe boots an in-process service, runs the load sweep and the
// oversubscription probe, and appends the serve/* benchmark rows.
func runServe(opts Options, rep *Report) error {
	srv := serve.NewServer(serve.Config{
		MaxSessions: opts.ServeSessions + 64, // fleet plus probe headroom
		GCInterval:  -1,                      // benchmarks manage their own lifecycle
	})
	defer srv.Close()
	httpSrv, addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	base := "http://" + addr

	sweep, err := serve.RunSweep(base, serve.SweepOptions{
		Workload:      opts.ServeWorkload,
		WorkloadQuery: serveWorkloadQuery(opts.ServeWorkload),
		Sessions:      opts.ServeSessions,
		StepsPerReq:   opts.ServeStepsPerReq,
		NRuns:         opts.ServeNRuns,
		Concurrency:   opts.ServeConcurrency,
		Retries:       16,
	})
	if err != nil {
		return err
	}
	if err := sweep.Validate(); err != nil {
		return fmt.Errorf("sweep report invalid: %w", err)
	}

	sect := &ServeSection{
		Workload:    sweep.Workload,
		Sessions:    sweep.Sessions,
		StepsPerReq: sweep.StepsPerReq,
		NRuns:       sweep.NRuns,
		Workers:     srv.Workers(),
		Rows:        sweep.Rows,
	}
	for _, row := range sweep.Rows {
		prefix := fmt.Sprintf("serve/%s/c%d", sweep.Workload, row.Concurrency)
		rep.Benchmarks = append(rep.Benchmarks,
			// Mean service time per step request (1e9/ReqPerSec): the
			// throughput row. Service benchmarks have no meaningful
			// allocs/bytes per op; zero keeps the Diff alloc gate inert.
			Result{Name: prefix + "/step", NsPerOp: 1e9 / row.ReqPerSec},
			// Tail: p99 step-request latency in nanoseconds.
			Result{Name: prefix + "/step-p99", NsPerOp: row.P99us * 1e3},
		)
	}

	// Oversubscription probe: a separate server with an 8-deep queue and
	// small batches, hit by a no-retry burst of heavy requests. The sweep
	// server's production-depth queue is deliberately not reused — the
	// probe must fill the queue while a batch holds the pool.
	probeSrv := serve.NewServer(serve.Config{
		Workers:    1,
		QueueDepth: 8,
		MaxBatch:   4,
		GCInterval: -1,
	})
	defer probeSrv.Close()
	probeHTTP, probeAddr, err := probeSrv.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer probeHTTP.Close()
	burst := 8 * runtime.GOMAXPROCS(0)
	if burst < 64 {
		burst = 64
	}
	shed, healthy, err := serve.OversubscribeProbe("http://"+probeAddr, serve.SweepOptions{
		Workload:      opts.ServeWorkload,
		WorkloadQuery: serveWorkloadQuery(opts.ServeWorkload),
		Sessions:      16,
		StepsPerReq:   50,
	}, burst)
	if err != nil {
		return fmt.Errorf("oversubscribe probe: %w", err)
	}
	sect.OversubBurst = burst
	sect.OversubShed429 = shed
	sect.OversubHealthy = healthy
	rep.Serve = sect
	return nil
}
