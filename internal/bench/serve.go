package bench

import (
	"fmt"
	"net/url"
	"runtime"

	"mw/internal/serve"
)

// ServeSection is the service-level result block: one load sweep against an
// in-process mwserved (many concurrent tenant sessions, one shared pool)
// plus an oversubscription probe against a deliberately tiny queue. The
// sweep's throughput and p99 also land in Report.Benchmarks as serve/*
// rows, so Diff applies the same regression gate to service tail latency
// as to kernel timings.
type ServeSection struct {
	Workload    string           `json:"workload"`
	Sessions    int              `json:"sessions"`
	StepsPerReq int              `json:"steps_per_req"`
	NRuns       int              `json:"nruns"`
	Workers     int              `json:"workers"`
	Rows        []serve.SweepRow `json:"rows"`

	// Oversubscription probe: a no-retry burst against a queue-depth-8
	// server. Shed429 > 0 with Healthy true is the "sheds load instead of
	// collapsing" acceptance evidence.
	OversubBurst   int   `json:"oversub_burst"`
	OversubShed429 int64 `json:"oversub_shed_429"`
	OversubHealthy bool  `json:"oversub_healthy"`
	// OversubRetryAfter tallies the Retry-After hints the shed burst saw
	// (header value → count) — evidence the 429s carry usable backoff.
	OversubRetryAfter map[string]int64 `json:"oversub_retry_after,omitempty"`

	// Attribution-overhead pair: mean step time with tracing off vs every
	// request traced (TraceSample=1), at the sweep's top concurrency. The
	// pair lands in Report.Benchmarks as serve/<wl>/attr-{off,on}/step rows
	// so benchdiff gates attribution cost like any other regression.
	AttrOffNsPerOp  float64 `json:"attr_off_ns_per_op"`
	AttrOnNsPerOp   float64 `json:"attr_on_ns_per_op"`
	AttrOverheadPct float64 `json:"attr_overhead_pct"`
}

// serveWorkloadQuery returns extra create parameters for workloads that
// take them. The lj-gas lattice is pinned to n=3 (27 atoms) — the smallest
// legal size — so tiny test runs stay tiny.
func serveWorkloadQuery(name string) url.Values {
	if name == "lj-gas" {
		return url.Values{"n": {"3"}}
	}
	return nil
}

// runServe boots an in-process service, runs the load sweep and the
// oversubscription probe, and appends the serve/* benchmark rows.
func runServe(opts Options, rep *Report) error {
	srv := serve.NewServer(serve.Config{
		MaxSessions: opts.ServeSessions + 64, // fleet plus probe headroom
		GCInterval:  -1,                      // benchmarks manage their own lifecycle
	})
	defer srv.Close()
	httpSrv, addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	base := "http://" + addr

	sweep, err := serve.RunSweep(base, serve.SweepOptions{
		Workload:      opts.ServeWorkload,
		WorkloadQuery: serveWorkloadQuery(opts.ServeWorkload),
		Sessions:      opts.ServeSessions,
		StepsPerReq:   opts.ServeStepsPerReq,
		NRuns:         opts.ServeNRuns,
		Concurrency:   opts.ServeConcurrency,
		Retries:       16,
		Attr:          true,
	})
	if err != nil {
		return err
	}
	if err := sweep.Validate(); err != nil {
		return fmt.Errorf("sweep report invalid: %w", err)
	}
	// The attribution acceptance gate: the four measured components
	// (ingress + queue-wait + batch-wait + compute) must explain the
	// p99-rank request's end-to-end latency to within 5%. A growing
	// residual means a latency source appeared that the attribution layer
	// does not see.
	for _, row := range sweep.Rows {
		if a := row.Attr; a != nil && (a.ResidualPct > 5 || a.ResidualPct < -5) {
			return fmt.Errorf(
				"c=%d: attribution residual %.1f%% of p99 e2e (budget 5%%): e2e=%.0fµs sum=%.0fµs (ingress=%.0f qw=%.0f bw=%.0f comp=%.0f)",
				row.Concurrency, a.ResidualPct, a.P99E2Eus, a.P99SumUs,
				a.P99IngressUs, a.P99QueueUs, a.P99BatchUs, a.P99ComputeUs)
		}
	}

	sect := &ServeSection{
		Workload:    sweep.Workload,
		Sessions:    sweep.Sessions,
		StepsPerReq: sweep.StepsPerReq,
		NRuns:       sweep.NRuns,
		Workers:     srv.Workers(),
		Rows:        sweep.Rows,
	}
	for _, row := range sweep.Rows {
		prefix := fmt.Sprintf("serve/%s/c%d", sweep.Workload, row.Concurrency)
		rep.Benchmarks = append(rep.Benchmarks,
			// Mean service time per step request (1e9/ReqPerSec): the
			// throughput row. Service benchmarks have no meaningful
			// allocs/bytes per op; zero keeps the Diff alloc gate inert.
			Result{Name: prefix + "/step", NsPerOp: 1e9 / row.ReqPerSec},
			// Tail: p99 step-request latency in nanoseconds.
			Result{Name: prefix + "/step-p99", NsPerOp: row.P99us * 1e3},
		)
	}

	// Oversubscription probe: a separate server with an 8-deep queue and
	// small batches, hit by a no-retry burst of heavy requests. The sweep
	// server's production-depth queue is deliberately not reused — the
	// probe must fill the queue while a batch holds the pool.
	probeSrv := serve.NewServer(serve.Config{
		Workers:    1,
		QueueDepth: 8,
		MaxBatch:   4,
		GCInterval: -1,
	})
	defer probeSrv.Close()
	probeHTTP, probeAddr, err := probeSrv.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer probeHTTP.Close()
	burst := 8 * runtime.GOMAXPROCS(0)
	if burst < 64 {
		burst = 64
	}
	shed, probeRetryAfter, healthy, err := serve.OversubscribeProbe("http://"+probeAddr, serve.SweepOptions{
		Workload:      opts.ServeWorkload,
		WorkloadQuery: serveWorkloadQuery(opts.ServeWorkload),
		Sessions:      16,
		StepsPerReq:   50,
	}, burst)
	if err != nil {
		return fmt.Errorf("oversubscribe probe: %w", err)
	}
	sect.OversubBurst = burst
	sect.OversubShed429 = shed
	sect.OversubHealthy = healthy
	sect.OversubRetryAfter = probeRetryAfter

	if err := runAttrOverhead(opts, rep, sect); err != nil {
		return err
	}
	rep.Serve = sect
	return nil
}

// runAttrOverhead measures what request tracing + attribution cost the
// service: the same single-level sweep against a tracing-off server and a
// trace-everything server (TraceSample=1, the worst case — production
// samples 1-in-64). The resulting rows ride the ordinary benchdiff gate,
// and the observer-native experiment (mwbench observer-native) gates the
// same pair against the <2% budget with confidence intervals.
func runAttrOverhead(opts Options, rep *Report, sect *ServeSection) error {
	level := opts.ServeConcurrency[len(opts.ServeConcurrency)-1]
	run := func(sample int) (float64, error) {
		srv := serve.NewServer(serve.Config{
			MaxSessions: opts.ServeSessions + 64,
			GCInterval:  -1,
			TraceSample: sample,
		})
		defer srv.Close()
		httpSrv, addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer httpSrv.Close()
		sweep, err := serve.RunSweep("http://"+addr, serve.SweepOptions{
			Workload:      opts.ServeWorkload,
			WorkloadQuery: serveWorkloadQuery(opts.ServeWorkload),
			Sessions:      opts.ServeSessions,
			StepsPerReq:   opts.ServeStepsPerReq,
			NRuns:         opts.ServeNRuns,
			Concurrency:   []int{level},
			Retries:       16,
		})
		if err != nil {
			return 0, err
		}
		return 1e9 / sweep.Rows[0].ReqPerSec, nil
	}
	// ABBA order, best-of-two per mode: a single pass each is at the mercy
	// of whatever else the host runs during it, and these rows sit under
	// the benchdiff gate where a one-off stall reads as a regression.
	var off, on float64
	for i, sample := range []int{-1, 1, 1, -1} {
		d, err := run(sample)
		if err != nil {
			return fmt.Errorf("attr-overhead (trace-sample %d): %w", sample, err)
		}
		switch {
		case sample == -1 && (i == 0 || d < off):
			off = d
		case sample == 1 && (i == 1 || d < on):
			on = d
		}
	}
	sect.AttrOffNsPerOp = off
	sect.AttrOnNsPerOp = on
	sect.AttrOverheadPct = 100 * (on - off) / off
	prefix := fmt.Sprintf("serve/%s/c%d", opts.ServeWorkload, level)
	rep.Benchmarks = append(rep.Benchmarks,
		Result{Name: prefix + "/attr-off/step", NsPerOp: off},
		Result{Name: prefix + "/attr-on/step", NsPerOp: on},
	)
	return nil
}
