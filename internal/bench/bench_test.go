package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fastOpts keeps the harness test cheap; timings are meaningless at this
// window, but the structure, alloc counts and serialization are exact. The
// serve sweep shrinks to a handful of 27-atom sessions for the same reason.
var fastOpts = Options{
	BenchTime:        10 * time.Millisecond,
	Steps:            10,
	ServeSessions:    4,
	ServeConcurrency: []int{2},
	ServeNRuns:       1,
	ServeWorkload:    "lj-gas",
}

func TestRunReportStructure(t *testing.T) {
	rep, err := Run(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"kernel/lj-halflist/seed",
		"kernel/lj-halflist-noexcl/seed-order",
		"kernel/lj-halflist-noexcl/morton-order",
		"kernel/lj-halflist-fast/morton-order",
		"kernel/lj-fulllist-noexcl/morton-order",
		"kernel/lj-cluster-ref/morton-order",
		"kernel/lj-cluster-fast/morton-order",
		"step/salt/seed", "step/salt/cell-ordered", "step/salt/cluster",
		"step/Al-1000/seed", "step/Al-1000/cell-ordered", "step/Al-1000/cluster",
		"step/nanocar/seed", "step/nanocar/cell-ordered", "step/nanocar/cluster",
		"serve/lj-gas/c2/step", "serve/lj-gas/c2/step-p99",
	}
	byName := map[string]Result{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range want {
		r, ok := byName[name]
		if !ok {
			t.Errorf("report missing benchmark %q", name)
			continue
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %g", name, r.NsPerOp)
		}
	}
	// The acceptance criterion behind the whole harness: the LJ kernels are
	// allocation-free. (testing.AllocsPerRun-style measurement; an allocation
	// here is a hot-loop escape, not noise.)
	for _, name := range want[:7] {
		if a := byName[name].AllocsPerOp; a >= 0.5 {
			t.Errorf("%s: %g allocs/op in a kernel, want 0", name, a)
		}
	}
	if rep.KernelSpeedup <= 0 {
		t.Errorf("kernel speedup %g, want positive", rep.KernelSpeedup)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("got %d phase sections, want 3 (seed, cell-ordered, cluster)", len(rep.Phases))
	}
	for _, wp := range rep.Phases {
		if len(wp.Phases) == 0 {
			t.Errorf("phase section %s/%s is empty", wp.Workload, wp.Config)
		}
	}
	if rep.Serve == nil {
		t.Fatal("report has no serve section")
	}
	if rep.Serve.Sessions != fastOpts.ServeSessions || len(rep.Serve.Rows) != 1 {
		t.Errorf("serve section = %+v, want %d sessions and 1 row", rep.Serve, fastOpts.ServeSessions)
	}
	if !rep.Serve.OversubHealthy {
		t.Error("server unhealthy after oversubscription probe")
	}
}

// TestRunSkipServe verifies the serve section is optional — the knob the
// CI race-bench path uses to stay cheap.
func TestRunSkipServe(t *testing.T) {
	opts := fastOpts
	opts.SkipServe = true
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serve != nil {
		t.Error("SkipServe report still has a serve section")
	}
	for _, b := range rep.Benchmarks {
		if strings.HasPrefix(b.Name, "serve/") {
			t.Errorf("SkipServe report has row %s", b.Name)
		}
	}
}

func TestReportRoundTripAndDiff(t *testing.T) {
	rep, err := Run(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) || back.Schema != Schema {
		t.Fatal("report did not round-trip")
	}

	// A report diffed against itself is clean.
	if _, _, err := Diff(rep, back, 0.15); err != nil {
		t.Errorf("self-diff regressed: %v", err)
	}

	// A 2× slowdown on one benchmark must fail the diff and name it.
	slow := *back
	slow.Benchmarks = append([]Result(nil), back.Benchmarks...)
	slow.Benchmarks[0].NsPerOp *= 2
	report, _, err := Diff(rep, &slow, 0.15)
	if err == nil {
		t.Fatal("2x regression passed the diff")
	}
	if !strings.Contains(err.Error(), slow.Benchmarks[0].Name) {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Error("report does not mark the regression")
	}

	// A fresh allocation in a previously allocation-free benchmark regresses
	// regardless of timing.
	alloc := *back
	alloc.Benchmarks = append([]Result(nil), back.Benchmarks...)
	alloc.Benchmarks[0].AllocsPerOp = 1
	if _, _, err := Diff(rep, &alloc, 0.15); err == nil {
		t.Error("new hot-loop allocation passed the diff")
	}

	// Within-tolerance drift passes.
	drift := *back
	drift.Benchmarks = append([]Result(nil), back.Benchmarks...)
	for i := range drift.Benchmarks {
		drift.Benchmarks[i].NsPerOp *= 1.05
	}
	if _, _, err := Diff(rep, &drift, 0.15); err != nil {
		t.Errorf("5%% drift failed a 15%% tolerance: %v", err)
	}
}

func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	if got, want := NextPath(dir), filepath.Join(dir, "BENCH_0.json"); got != want {
		t.Fatalf("NextPath = %q, want %q", got, want)
	}
	rep := &Report{Schema: Schema}
	if err := rep.WriteFile(filepath.Join(dir, "BENCH_0.json")); err != nil {
		t.Fatal(err)
	}
	if got, want := NextPath(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Fatalf("NextPath = %q, want %q", got, want)
	}
}
