package topo

import (
	"strings"
	"testing"
)

func TestTableIIShapes(t *testing.T) {
	cases := []struct {
		m           Machine
		cores, pus  int
		l3Groups    int
		sharedAllL3 bool // all cores share one LLC?
	}{
		{CoreI7, 4, 8, 1, true},
		{XeonE5450, 8, 8, 4, false},
		{XeonX7560, 32, 64, 4, false},
	}
	for _, c := range cases {
		if got := c.m.NumCores(); got != c.cores {
			t.Errorf("%s: cores = %d, want %d", c.m.Name, got, c.cores)
		}
		if got := c.m.NumPUs(); got != c.pus {
			t.Errorf("%s: PUs = %d, want %d", c.m.Name, got, c.pus)
		}
		if got := c.m.NumL3Groups(); got != c.l3Groups {
			t.Errorf("%s: L3 groups = %d, want %d", c.m.Name, got, c.l3Groups)
		}
		if got := c.m.SharesL3(0, c.cores-1); got != c.sharedAllL3 {
			t.Errorf("%s: SharesL3(0,last) = %v", c.m.Name, got)
		}
	}
	if len(TableII()) != 3 {
		t.Error("TableII must list three machines")
	}
}

func TestPUEnumeration(t *testing.T) {
	m := CoreI7 // 4 cores, 2 HT → PUs 0-7, PU 4 is core 0's second thread
	if m.CoreOfPU(0) != 0 || m.CoreOfPU(4) != 0 {
		t.Error("hyperthread PU mapping wrong")
	}
	if m.SMTIndexOfPU(0) != 0 || m.SMTIndexOfPU(4) != 1 {
		t.Error("SMT index wrong")
	}
	if m.CoreOfPU(3) != 3 || m.CoreOfPU(7) != 3 {
		t.Error("last-core PU mapping wrong")
	}
}

func TestPackageAndL3Mapping(t *testing.T) {
	m := XeonE5450 // 2 pkg × 4 cores, L3 per 2 cores
	if m.PackageOfCore(3) != 0 || m.PackageOfCore(4) != 1 {
		t.Error("package mapping wrong")
	}
	if !m.SharesL3(0, 1) || m.SharesL3(1, 2) {
		t.Error("E5450 L3 pairs wrong")
	}
	if !m.SamePackage(0, 3) || m.SamePackage(3, 4) {
		t.Error("SamePackage wrong")
	}
}

func TestMaskHelpers(t *testing.T) {
	m := XeonE5450
	one, err := m.OneCorePerPackage(2)
	if err != nil {
		t.Fatal(err)
	}
	if one.Cores()[0] != 0 || one.Cores()[1] != 4 || one.Count() != 2 {
		t.Errorf("OneCorePerPackage = %v", one)
	}
	same, err := m.CoresOnOnePackage(4)
	if err != nil {
		t.Fatal(err)
	}
	if same.Count() != 4 || !same.Has(0) || !same.Has(3) || same.Has(4) {
		t.Errorf("CoresOnOnePackage = %v", same)
	}
	spread, err := m.CoresPerPackageSpread(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := MaskOf(0, 1, 4, 5)
	if spread != want {
		t.Errorf("spread = %v, want %v", spread, want)
	}
	if _, err := m.OneCorePerPackage(3); err == nil {
		t.Error("overflowing packages not rejected")
	}
	if _, err := m.CoresOnOnePackage(5); err == nil {
		t.Error("overflowing package cores not rejected")
	}
	if _, err := m.CoresPerPackageSpread(9, 1); err == nil {
		t.Error("overflowing spread not rejected")
	}
}

func TestAllCores(t *testing.T) {
	if CoreI7.AllCores().Count() != 4 {
		t.Error("i7 AllCores != 4")
	}
	if XeonX7560.AllCores().Count() != 32 {
		t.Error("X7560 AllCores != 32")
	}
}

func TestMaskStringAndCores(t *testing.T) {
	mk := MaskOf(0, 2, 5)
	if mk.String() != "{0,2,5}" {
		t.Errorf("String = %s", mk.String())
	}
	if !mk.Has(2) || mk.Has(1) {
		t.Error("Has wrong")
	}
}

func TestTreeStructure(t *testing.T) {
	tr := XeonE5450.Tree()
	if got := tr.CountKind("Package"); got != 2 {
		t.Errorf("packages in tree = %d", got)
	}
	if got := tr.CountKind("L3"); got != 4 {
		t.Errorf("L3 slices in tree = %d", got)
	}
	if got := tr.CountKind("Core"); got != 8 {
		t.Errorf("cores in tree = %d", got)
	}
	if got := tr.CountKind("PU"); got != 8 {
		t.Errorf("PUs in tree = %d", got)
	}
	txt := tr.Render()
	if !strings.Contains(txt, "Machine #0") || !strings.Contains(txt, "6 MB shared/2 cores") {
		t.Errorf("render missing content:\n%s", txt)
	}
}

func TestTreePUCountWithSMT(t *testing.T) {
	tr := CoreI7.Tree()
	if got := tr.CountKind("PU"); got != 8 {
		t.Errorf("i7 tree PUs = %d, want 8", got)
	}
	tr = XeonX7560.Tree()
	if got := tr.CountKind("PU"); got != 64 {
		t.Errorf("X7560 tree PUs = %d, want 64", got)
	}
}

func TestMachineString(t *testing.T) {
	s := CoreI7.String()
	for _, frag := range []string{"Core i7", "1x4 cores", "8 PUs", "8MB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}
