package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMachine builds a Machine from a compact spec, so machine-model
// experiments can target hardware beyond the Table II presets:
//
//	"myhost:2x8x2,l1=32K,l2=512K,l3=16M/8,mem=64G,ch=6"
//
// The first field is PACKAGESxCORESxTHREADS (threads optional, default 1);
// remaining comma-separated fields set cache sizes (K/M suffixes), the L3
// sharing group ("/N cores"), memory (G suffix) and channel count. Omitted
// fields default to Nehalem-class values.
func ParseMachine(spec string) (Machine, error) {
	m := Machine{
		Name: "custom", ThreadsPerCore: 1,
		L1KB: 32, L2KB: 256, L3KB: 8 * 1024, L3GroupCores: 0,
		MemoryGB: 8, MemChannels: 3,
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		m.Name = spec[:i]
		spec = spec[i+1:]
	}
	fields := strings.Split(spec, ",")
	if len(fields) == 0 || fields[0] == "" {
		return m, fmt.Errorf("topo: empty machine spec")
	}

	dims := strings.Split(fields[0], "x")
	if len(dims) < 2 || len(dims) > 3 {
		return m, fmt.Errorf("topo: geometry %q is not PxC or PxCxT", fields[0])
	}
	var err error
	if m.Packages, err = strconv.Atoi(dims[0]); err != nil || m.Packages < 1 {
		return m, fmt.Errorf("topo: bad package count %q", dims[0])
	}
	if m.CoresPerPackage, err = strconv.Atoi(dims[1]); err != nil || m.CoresPerPackage < 1 {
		return m, fmt.Errorf("topo: bad core count %q", dims[1])
	}
	if len(dims) == 3 {
		if m.ThreadsPerCore, err = strconv.Atoi(dims[2]); err != nil || m.ThreadsPerCore < 1 {
			return m, fmt.Errorf("topo: bad thread count %q", dims[2])
		}
	}

	for _, f := range fields[1:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("topo: field %q is not key=value", f)
		}
		switch strings.ToLower(kv[0]) {
		case "l1":
			if m.L1KB, err = parseKB(kv[1]); err != nil {
				return m, err
			}
		case "l2":
			if m.L2KB, err = parseKB(kv[1]); err != nil {
				return m, err
			}
		case "l3":
			size := kv[1]
			if i := strings.IndexByte(size, '/'); i >= 0 {
				if m.L3GroupCores, err = strconv.Atoi(size[i+1:]); err != nil || m.L3GroupCores < 1 {
					return m, fmt.Errorf("topo: bad L3 sharing %q", size[i+1:])
				}
				size = size[:i]
			}
			if m.L3KB, err = parseKB(size); err != nil {
				return m, err
			}
		case "mem":
			v := strings.TrimSuffix(strings.ToUpper(kv[1]), "G")
			if m.MemoryGB, err = strconv.Atoi(v); err != nil || m.MemoryGB < 1 {
				return m, fmt.Errorf("topo: bad memory %q", kv[1])
			}
		case "ch":
			if m.MemChannels, err = strconv.Atoi(kv[1]); err != nil || m.MemChannels < 1 {
				return m, fmt.Errorf("topo: bad channel count %q", kv[1])
			}
		default:
			return m, fmt.Errorf("topo: unknown field %q", kv[0])
		}
	}
	if m.L3GroupCores == 0 {
		m.L3GroupCores = m.CoresPerPackage // default: one slice per package
	}
	if m.L3GroupCores > m.CoresPerPackage {
		return m, fmt.Errorf("topo: L3 group (%d) exceeds cores per package (%d)",
			m.L3GroupCores, m.CoresPerPackage)
	}
	if m.NumCores() > 64 {
		return m, fmt.Errorf("topo: %d cores exceed the 64-core mask limit", m.NumCores())
	}
	return m, nil
}

// parseKB parses "32K", "8M" or a raw KB number into kilobytes.
func parseKB(s string) (int, error) {
	u := strings.ToUpper(s)
	mult := 1
	switch {
	case strings.HasSuffix(u, "K"):
		u = u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		u, mult = u[:len(u)-1], 1024
	}
	v, err := strconv.Atoi(u)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("topo: bad size %q", s)
	}
	return v * mult, nil
}
