package topo

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUMask is a set of cores (bit c = core c), the representation
// sched_setaffinity uses and the one the Table III experiments pass to the
// scheduler. Machines up to 64 cores are supported — enough for the paper's
// largest (32-core) testbed.
type CPUMask uint64

// AllCores returns the mask of every core of the machine ("OS scheduled":
// no restriction).
func (m Machine) AllCores() CPUMask {
	return CPUMask(1)<<uint(m.NumCores()) - 1
}

// MaskOf returns the mask containing exactly the given cores.
func MaskOf(cores ...int) CPUMask {
	var mk CPUMask
	for _, c := range cores {
		mk |= 1 << uint(c)
	}
	return mk
}

// OneCorePerPackage returns a mask with n cores, one on each of the first n
// packages — Table III's "one core per processor" topology.
func (m Machine) OneCorePerPackage(n int) (CPUMask, error) {
	if n > m.Packages {
		return 0, fmt.Errorf("topo: %d packages available, %d requested", m.Packages, n)
	}
	var mk CPUMask
	for p := 0; p < n; p++ {
		mk |= 1 << uint(p*m.CoresPerPackage)
	}
	return mk, nil
}

// CoresOnOnePackage returns a mask with n cores all on package 0 — Table
// III's "N cores on one processor" topology.
func (m Machine) CoresOnOnePackage(n int) (CPUMask, error) {
	if n > m.CoresPerPackage {
		return 0, fmt.Errorf("topo: package has %d cores, %d requested", m.CoresPerPackage, n)
	}
	var mk CPUMask
	for c := 0; c < n; c++ {
		mk |= 1 << uint(c)
	}
	return mk, nil
}

// CoresPerPackageSpread returns a mask with perPkg cores on each of
// npkg packages — Table III's "two cores per processor" topology.
func (m Machine) CoresPerPackageSpread(perPkg, npkg int) (CPUMask, error) {
	if npkg > m.Packages || perPkg > m.CoresPerPackage {
		return 0, fmt.Errorf("topo: spread %dx%d does not fit %dx%d",
			npkg, perPkg, m.Packages, m.CoresPerPackage)
	}
	var mk CPUMask
	for p := 0; p < npkg; p++ {
		for c := 0; c < perPkg; c++ {
			mk |= 1 << uint(p*m.CoresPerPackage+c)
		}
	}
	return mk, nil
}

// Has reports whether core c is in the mask.
func (mk CPUMask) Has(c int) bool { return mk&(1<<uint(c)) != 0 }

// Count returns the number of cores in the mask.
func (mk CPUMask) Count() int { return bits.OnesCount64(uint64(mk)) }

// Cores lists the cores in the mask in ascending order.
func (mk CPUMask) Cores() []int {
	out := make([]int, 0, mk.Count())
	for c := 0; c < 64; c++ {
		if mk.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the mask as a core list, e.g. "{0,1,4,5}".
func (mk CPUMask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, c := range mk.Cores() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte('}')
	return b.String()
}
