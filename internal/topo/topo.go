// Package topo provides the hwloc-style hardware-topology model the paper's
// §V-C calls for: machines as trees of packages, cores and processing units
// (hardware threads), annotated with cache sharing domains, plus the three
// test machines of Table II as presets and the CPU-mask helpers used by the
// thread-pinning experiments of Table III.
package topo

import "fmt"

// Machine describes a symmetric multiprocessor: Packages sockets, each with
// CoresPerPackage physical cores running ThreadsPerCore hardware threads.
// L1/L2 are private per core; L3 is shared by groups of L3GroupCores cores
// within a package.
type Machine struct {
	Name            string
	Packages        int
	CoresPerPackage int
	ThreadsPerCore  int

	L1KB, L2KB   int
	L3KB         int // size of one L3 slice
	L3GroupCores int // cores sharing one L3 slice

	MemoryGB int
	// MemChannels is the number of independent memory-controller channels,
	// the parameter that caps aggregate bandwidth in the cache model.
	MemChannels int
}

// Table II's three test machines.
var (
	// CoreI7 is the Intel Core i7 920: 1 socket × 4 cores × 2 HT, 8 MB L3
	// shared by all four cores, 6 GB memory.
	CoreI7 = Machine{
		Name: "Core i7 920", Packages: 1, CoresPerPackage: 4, ThreadsPerCore: 2,
		L1KB: 32, L2KB: 256, L3KB: 8 * 1024, L3GroupCores: 4,
		MemoryGB: 6, MemChannels: 3,
	}
	// XeonE5450 is the 2 × Xeon E5450: 8 cores total, no SMT, last-level
	// cache 6 MB shared per pair of cores (4 slices).
	XeonE5450 = Machine{
		Name: "Xeon E5450", Packages: 2, CoresPerPackage: 4, ThreadsPerCore: 1,
		L1KB: 32, L2KB: 256, L3KB: 6 * 1024, L3GroupCores: 2,
		MemoryGB: 16, MemChannels: 4,
	}
	// XeonX7560 is the 4 × Xeon X7560: 32 cores × 2 HT = 64 PUs, 24 MB L3
	// shared per 8-core package.
	XeonX7560 = Machine{
		Name: "Xeon X7560", Packages: 4, CoresPerPackage: 8, ThreadsPerCore: 2,
		L1KB: 32, L2KB: 256, L3KB: 24 * 1024, L3GroupCores: 8,
		MemoryGB: 192, MemChannels: 16,
	}
)

// TableII returns the three test machines in the paper's order.
func TableII() []Machine { return []Machine{CoreI7, XeonE5450, XeonX7560} }

// NumCores returns the number of physical cores.
func (m Machine) NumCores() int { return m.Packages * m.CoresPerPackage }

// NumPUs returns the number of processing units (hardware threads).
func (m Machine) NumPUs() int { return m.NumCores() * m.ThreadsPerCore }

// NumL3Groups returns the number of L3 slices.
func (m Machine) NumL3Groups() int {
	if m.L3GroupCores <= 0 {
		return 0
	}
	return m.NumCores() / m.L3GroupCores
}

// CoreOfPU maps a PU id to its physical core. PUs are numbered so that PU p
// is thread p / cores-per-thread? No: hardware thread t of core c is
// PU c + t*NumCores (Linux-like enumeration: secondary hyperthreads get the
// high PU numbers, which is exactly the virtual/physical confusion §V-C
// describes).
func (m Machine) CoreOfPU(pu int) int { return pu % m.NumCores() }

// SMTIndexOfPU returns which hardware thread of its core the PU is (0 =
// primary, 1 = secondary, …).
func (m Machine) SMTIndexOfPU(pu int) int { return pu / m.NumCores() }

// PackageOfCore maps a core to its socket.
func (m Machine) PackageOfCore(core int) int { return core / m.CoresPerPackage }

// L3GroupOfCore maps a core to its L3 slice.
func (m Machine) L3GroupOfCore(core int) int {
	if m.L3GroupCores <= 0 {
		return 0
	}
	return core / m.L3GroupCores
}

// SharesL3 reports whether two cores share a last-level cache slice.
func (m Machine) SharesL3(a, b int) bool {
	return m.L3GroupOfCore(a) == m.L3GroupOfCore(b)
}

// SamePackage reports whether two cores are on the same socket.
func (m Machine) SamePackage(a, b int) bool {
	return m.PackageOfCore(a) == m.PackageOfCore(b)
}

// String summarizes the machine the way Table II's rows do.
func (m Machine) String() string {
	return fmt.Sprintf("%s: %dx%d cores (%d PUs), L1 %dKB, L2 %dKB, L3 %dx(%dMB/%d cores), %dGB",
		m.Name, m.Packages, m.CoresPerPackage, m.NumPUs(), m.L1KB, m.L2KB,
		m.NumL3Groups(), m.L3KB/1024, m.L3GroupCores, m.MemoryGB)
}
