package topo

import (
	"fmt"
	"strings"
)

// Object is one node of the hwloc-style resource tree: Machine → Package →
// L3 group → Core → PU. The tree view is what §V-C argues performance tools
// should surface ("present information about the system as a general-purpose
// tree of resources").
type Object struct {
	Kind     string
	Index    int
	Detail   string
	Children []*Object
}

// Tree builds the full resource tree of the machine.
func (m Machine) Tree() *Object {
	root := &Object{Kind: "Machine", Detail: fmt.Sprintf("%s, %d GB", m.Name, m.MemoryGB)}
	for p := 0; p < m.Packages; p++ {
		pkg := &Object{Kind: "Package", Index: p}
		groups := m.CoresPerPackage / maxInt(1, m.L3GroupCores)
		if groups == 0 {
			groups = 1
		}
		for g := 0; g < groups; g++ {
			l3 := &Object{
				Kind:   "L3",
				Index:  p*groups + g,
				Detail: fmt.Sprintf("%d MB shared/%d cores", m.L3KB/1024, m.L3GroupCores),
			}
			for cc := 0; cc < m.L3GroupCores; cc++ {
				core := p*m.CoresPerPackage + g*m.L3GroupCores + cc
				if core >= m.NumCores() {
					break
				}
				cn := &Object{
					Kind:   "Core",
					Index:  core,
					Detail: fmt.Sprintf("L1d %d KB, L2 %d KB", m.L1KB, m.L2KB),
				}
				for t := 0; t < m.ThreadsPerCore; t++ {
					cn.Children = append(cn.Children, &Object{
						Kind:  "PU",
						Index: core + t*m.NumCores(),
					})
				}
				l3.Children = append(l3.Children, cn)
			}
			pkg.Children = append(pkg.Children, l3)
		}
		root.Children = append(root.Children, pkg)
	}
	return root
}

// Render writes the tree as indented text.
func (o *Object) Render() string {
	var b strings.Builder
	o.render(&b, 0)
	return b.String()
}

func (o *Object) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if o.Detail != "" {
		fmt.Fprintf(b, "%s #%d (%s)\n", o.Kind, o.Index, o.Detail)
	} else {
		fmt.Fprintf(b, "%s #%d\n", o.Kind, o.Index)
	}
	for _, c := range o.Children {
		c.render(b, depth+1)
	}
}

// CountKind returns how many nodes of the given kind the tree holds.
func (o *Object) CountKind(kind string) int {
	n := 0
	if o.Kind == kind {
		n++
	}
	for _, c := range o.Children {
		n += c.CountKind(kind)
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
