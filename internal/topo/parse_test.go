package topo

import "testing"

func TestParseMachineFull(t *testing.T) {
	m, err := ParseMachine("box:2x8x2,l1=64K,l2=1M,l3=16M/4,mem=64G,ch=6")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "box" || m.Packages != 2 || m.CoresPerPackage != 8 || m.ThreadsPerCore != 2 {
		t.Errorf("geometry: %+v", m)
	}
	if m.L1KB != 64 || m.L2KB != 1024 || m.L3KB != 16*1024 || m.L3GroupCores != 4 {
		t.Errorf("caches: %+v", m)
	}
	if m.MemoryGB != 64 || m.MemChannels != 6 {
		t.Errorf("memory: %+v", m)
	}
	if m.NumPUs() != 32 || m.NumL3Groups() != 4 {
		t.Errorf("derived: PUs=%d groups=%d", m.NumPUs(), m.NumL3Groups())
	}
}

func TestParseMachineDefaults(t *testing.T) {
	m, err := ParseMachine("1x4")
	if err != nil {
		t.Fatal(err)
	}
	if m.ThreadsPerCore != 1 || m.L1KB != 32 || m.L2KB != 256 {
		t.Errorf("defaults: %+v", m)
	}
	if m.L3GroupCores != 4 {
		t.Errorf("default L3 group = %d, want per-package", m.L3GroupCores)
	}
	if m.Name != "custom" {
		t.Errorf("default name %q", m.Name)
	}
}

func TestParseMachineRoundTripPresets(t *testing.T) {
	// Specs replicating Table II must reproduce the presets' shapes.
	m, err := ParseMachine("Core i7 920:1x4x2,l1=32K,l2=256K,l3=8M/4,mem=6G,ch=3")
	if err != nil {
		t.Fatal(err)
	}
	if m != CoreI7 {
		t.Errorf("parsed i7 %+v != preset %+v", m, CoreI7)
	}
}

func TestParseMachineErrors(t *testing.T) {
	bad := []string{
		"",
		"4",            // no x
		"axb",          // non-numeric
		"0x4",          // zero packages
		"1x4x0",        // zero threads
		"1x4,l1=?",     // bad size
		"1x4,nope=3",   // unknown key
		"1x4,l3=8M/9",  // sharing exceeds package
		"1x4,mem=zero", // bad memory
		"1x4,ch=0",     // bad channels
		"1x4,l2",       // missing value
		"9x8",          // 72 cores > 64-bit mask
		"1x4x2x2",      // too many dims
	}
	for _, spec := range bad {
		if _, err := ParseMachine(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseKB(t *testing.T) {
	cases := map[string]int{"32K": 32, "8M": 8192, "256": 256}
	for in, want := range cases {
		got, err := parseKB(in)
		if err != nil || got != want {
			t.Errorf("parseKB(%q) = %d, %v", in, got, err)
		}
	}
	if _, err := parseKB("-1K"); err == nil {
		t.Error("negative size accepted")
	}
}
