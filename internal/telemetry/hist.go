package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log₂ duration buckets: bucket b counts
// durations in [2^(b-1), 2^b) ns, so the last bucket starts at ~9 minutes
// and everything longer saturates into it.
const histBuckets = 40

// Histogram is a log-bucketed latency histogram. Observe is a single
// bounds-check plus two atomic adds on state owned by one writer, so it is
// safe (and cheap) to read concurrently while the owner keeps recording.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanoseconds
	n      atomic.Int64
}

// bucketIndex maps a duration to its log₂ bucket — the indexing contract
// shared by Observe and the exemplar slots in ExemplarHistogram.
//
//mw:hotpath
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
//
//mw:hotpath
func (h *Histogram) Observe(d time.Duration) {
	b := bucketIndex(d)
	if d < 0 {
		d = 0
	}
	h.counts[b].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, histBuckets)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the log buckets: it
// finds the bucket holding the q·n-th observation and returns the geometric
// midpoint of that bucket's range. Log-bucket resolution means the estimate
// is within a factor √2 of the true value — plenty for a live phase table.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= target {
			return bucketMid(b)
		}
	}
	return bucketMid(histBuckets - 1)
}

// bucketMid returns the geometric midpoint of bucket b's range
// [2^(b-1), 2^b) ns; bucket 0 holds only zero durations.
func bucketMid(b int) time.Duration {
	if b == 0 {
		return 0
	}
	lo := math.Exp2(float64(b - 1))
	return time.Duration(lo * math.Sqrt2)
}
