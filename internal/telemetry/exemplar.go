package telemetry

import (
	"sync/atomic"
	"time"
)

// Exemplar links one histogram bucket to a recent traced observation — the
// OpenMetrics exemplar idea applied to the log₂ histograms: a percentile
// bucket is only actionable if it can name a concrete request to go look at.
type Exemplar struct {
	// TraceID is the W3C trace id (32 lowercase hex chars) of the traced
	// request whose observation landed in this bucket.
	TraceID string `json:"trace_id"`
	// ValueUS is the observed duration in microseconds.
	ValueUS int64 `json:"value_us"`
	// AtUS is when the observation was recorded, in the owning recorder's
	// µs-since-start timebase.
	AtUS int64 `json:"at_us"`
}

// ExemplarHistogram is a Histogram with one exemplar slot per log₂ bucket.
// Untraced observations cost exactly a Histogram.Observe; traced ones add a
// single atomic pointer store, so the type is safe on request hot paths and
// for concurrent readers.
type ExemplarHistogram struct {
	Hist Histogram
	ex   [histBuckets]atomic.Pointer[Exemplar]
}

// Observe records an untraced observation.
func (h *ExemplarHistogram) Observe(d time.Duration) { h.Hist.Observe(d) }

// ObserveTraced records an observation carrying a trace id: the bucket the
// duration lands in remembers this trace as its most recent exemplar. atUS
// is the caller's recorder timebase stamp.
func (h *ExemplarHistogram) ObserveTraced(d time.Duration, traceID string, atUS int64) {
	h.Hist.Observe(d)
	if traceID == "" {
		return
	}
	if d < 0 {
		d = 0
	}
	h.ex[bucketIndex(d)].Store(&Exemplar{
		TraceID: traceID,
		ValueUS: int64(d / time.Microsecond),
		AtUS:    atUS,
	})
}

// Exemplars returns the non-empty exemplar slots, lowest bucket first. The
// result is a snapshot: concurrent ObserveTraced calls may replace slots
// while it is built, but every returned exemplar is internally consistent
// (slots are swapped whole, never mutated).
func (h *ExemplarHistogram) Exemplars() []Exemplar {
	var out []Exemplar
	for b := range h.ex {
		if e := h.ex[b].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}
