package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPackDecodeRoundTrip(t *testing.T) {
	r := NewRecorder(2, []string{"forces", "integrate"})
	cases := []struct {
		kind  Kind
		phase uint8
		step  int
		us    int64
	}{
		{KindChunk, 1, 0, 0},
		{KindChunk, 0, 12345, 987654321},
		{KindSteal, phaseNone, stepMask, usMask},
		{KindPhaseBegin, 1, 7, 42},
	}
	for _, c := range cases {
		ev := r.decode(0, packEvent(c.kind, c.phase, c.step, c.us))
		if ev.Kind != c.kind.String() {
			t.Errorf("kind: got %q want %q", ev.Kind, c.kind.String())
		}
		if ev.Step != c.step&stepMask {
			t.Errorf("step: got %d want %d", ev.Step, c.step&stepMask)
		}
		if ev.AtUS != c.us&usMask {
			t.Errorf("at_us: got %d want %d", ev.AtUS, c.us&usMask)
		}
		if c.phase != phaseNone {
			want := r.phases[c.phase]
			if ev.Phase != want {
				t.Errorf("phase: got %q want %q", ev.Phase, want)
			}
		} else if ev.Phase != "" {
			t.Errorf("phase: got %q want empty for phaseNone", ev.Phase)
		}
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	r := newRing(8)
	for i := 1; i <= 20; i++ {
		r.push(uint64(i))
	}
	got := r.snapshot(0)
	if len(got) != 8 {
		t.Fatalf("snapshot length: got %d want 8", len(got))
	}
	for i, ev := range got {
		if want := uint64(13 + i); ev != want {
			t.Errorf("slot %d: got %d want %d (oldest-first window of last 8)", i, ev, want)
		}
	}
	if capped := r.snapshot(3); len(capped) != 3 || capped[2] != 20 {
		t.Errorf("capped snapshot: got %v, want the 3 most recent ending in 20", capped)
	}
}

func TestRingCapacityRoundsToPowerOfTwo(t *testing.T) {
	r := newRing(1000)
	if len(r.slots) != 1024 {
		t.Errorf("capacity: got %d want 1024", len(r.slots))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations around 1µs, 10 slow around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count: got %d want 100", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 %v not within √2 of 1µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 %v not within √2 of 1ms", p99)
	}
	if mean := h.Mean(); mean < 50*time.Microsecond || mean > 250*time.Microsecond {
		t.Errorf("mean %v implausible for 90×1µs + 10×1ms", mean)
	}
}

func TestHistogramQuantileWithinSqrt2(t *testing.T) {
	var h Histogram
	d := 37 * time.Microsecond
	for i := 0; i < 1000; i++ {
		h.Observe(d)
	}
	got := float64(h.Quantile(0.5))
	ratio := got / float64(d)
	if ratio < 1/math.Sqrt2-1e-9 || ratio > math.Sqrt2+1e-9 {
		t.Errorf("quantile %v off true value %v by ratio %.3f (> √2)", time.Duration(got), d, ratio)
	}
}

func TestRecorderEventFlow(t *testing.T) {
	r := NewRecorder(2, []string{"forces", "integrate"})
	r.PhaseBegin(3, 0)
	for w := 0; w < 2; w++ {
		for i := 0; i < 5; i++ {
			r.Chunk(w, 0)
		}
	}
	r.Steal(1)
	r.Park(0, 2*time.Millisecond)
	r.PhaseEnd(3, 0, 10*time.Millisecond, []time.Duration{4 * time.Millisecond, 6 * time.Millisecond})
	r.StepDone(3)

	snap := r.Snapshot(64)
	if snap.Workers != 2 {
		t.Fatalf("workers: got %d want 2", snap.Workers)
	}
	if snap.Steps != 3 {
		t.Errorf("steps: got %d want 3", snap.Steps)
	}
	if snap.Phases[0].Count != 1 {
		t.Errorf("forces phase count: got %d want 1", snap.Phases[0].Count)
	}
	if got := snap.Phases[0].TotalSeconds; math.Abs(got-0.010) > 1e-9 {
		t.Errorf("forces wall: got %g want 0.010", got)
	}
	if snap.PerWorker[0].Chunks != 5 || snap.PerWorker[1].Chunks != 5 {
		t.Errorf("chunks: got %d/%d want 5/5", snap.PerWorker[0].Chunks, snap.PerWorker[1].Chunks)
	}
	if snap.PerWorker[1].Steals != 1 {
		t.Errorf("steals: got %d want 1", snap.PerWorker[1].Steals)
	}
	if snap.PerWorker[0].Parks != 1 || math.Abs(snap.PerWorker[0].ParkSeconds-0.002) > 1e-9 {
		t.Errorf("parks: got %d/%g want 1/0.002", snap.PerWorker[0].Parks, snap.PerWorker[0].ParkSeconds)
	}
	if math.Abs(snap.PerWorker[1].BusySeconds[0]-0.006) > 1e-9 {
		t.Errorf("worker 1 busy: got %g want 0.006", snap.PerWorker[1].BusySeconds[0])
	}
	var kinds []string
	for _, ev := range snap.Recent {
		kinds = append(kinds, ev.Kind)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"phase-begin", "chunk", "steal", "park", "phase-end", "step"} {
		if !strings.Contains(joined, want) {
			t.Errorf("recent events %v missing kind %q", kinds, want)
		}
	}
	if snap.Dropped != 0 {
		t.Errorf("dropped: got %d want 0", snap.Dropped)
	}
}

func TestRecorderDropsOutOfRangeWorkers(t *testing.T) {
	r := NewRecorder(2, []string{"forces"})
	r.Chunk(-1, 0)
	r.Chunk(2, 0) // index 2 is the coordinator shard, not a worker
	r.Steal(99)
	r.Park(99, time.Millisecond)
	if got := r.Snapshot(0).Dropped; got != 4 {
		t.Errorf("dropped: got %d want 4", got)
	}
}

func TestRecorderConcurrentRecordAndSnapshot(t *testing.T) {
	// Each worker is the sole producer on its shard while snapshots run
	// concurrently; run under -race to check the lock-free paths.
	r := NewRecorderSize(4, []string{"forces", "integrate"}, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Chunk(w, uint8(i%2))
				if i%100 == 0 {
					r.Steal(w)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := r.Snapshot(32)
			for _, ev := range snap.Recent {
				if ev.Kind == "none" {
					t.Error("snapshot decoded an empty slot as an event")
				}
			}
		}
	}()
	wg.Wait()
	<-done
	snap := r.Snapshot(0)
	var chunks int64
	for _, wv := range snap.PerWorker {
		chunks += wv.Chunks
	}
	if chunks != 8000 {
		t.Errorf("total chunks: got %d want 8000", chunks)
	}
}

func TestNaiveSinkCounts(t *testing.T) {
	n := NewNaiveSink([]string{"forces", "integrate"})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n.Chunk(w, 1)
			}
		}(w)
	}
	wg.Wait()
	n.Steal(0)
	n.Park(1, time.Millisecond)
	if got := n.Count("integrate"); got != 2000 {
		t.Errorf("integrate count: got %d want 2000", got)
	}
	if n.Count("steal") != 1 || n.Count("park") != 1 {
		t.Errorf("steal/park counts: got %d/%d want 1/1", n.Count("steal"), n.Count("park"))
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRecorder(2, []string{"forces", "integrate"})
	r.PhaseBegin(1, 0)
	r.Chunk(0, 0)
	r.Chunk(1, 0)
	r.PhaseEnd(1, 0, 5*time.Millisecond, []time.Duration{2 * time.Millisecond, 3 * time.Millisecond})
	r.StepDone(1)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/telemetry.json?events=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /telemetry.json: %v", err)
	}
	if snap.Workers != 2 || snap.Steps != 1 {
		t.Errorf("snapshot over HTTP: workers=%d steps=%d, want 2/1", snap.Workers, snap.Steps)
	}
	if len(snap.Phases) != 2 || snap.Phases[0].Phase != "forces" {
		t.Errorf("phases over HTTP: %+v", snap.Phases)
	}
	if len(snap.Recent) == 0 {
		t.Error("expected recent events in snapshot")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"mw_steps_total 1",
		`mw_phase_wall_seconds_total{phase="forces"} 0.005`,
		`mw_phase_count_total{phase="forces"} 1`,
		`mw_worker_chunks_total{worker="0"} 1`,
		"mw_phase_wall_duration_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}

	iresp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Errorf("index status: %d", iresp.StatusCode)
	}
}

func TestServePicksFreePort(t *testing.T) {
	r := NewRecorder(1, []string{"forces"})
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/telemetry.json")
	if err != nil {
		t.Fatalf("GET on served addr %s: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status: %d", resp.StatusCode)
	}
}
