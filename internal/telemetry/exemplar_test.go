package telemetry

import (
	"testing"
	"time"
)

// TestExemplarHistogram pins the exemplar contract: traced observations
// land one exemplar in exactly the bucket the duration hashes to, later
// traced observations in the same bucket replace it, and untraced
// observations never touch the slots.
func TestExemplarHistogram(t *testing.T) {
	var h ExemplarHistogram

	h.Observe(100 * time.Microsecond)
	if got := h.Exemplars(); len(got) != 0 {
		t.Fatalf("untraced Observe produced exemplars: %+v", got)
	}

	h.ObserveTraced(100*time.Microsecond, "aaaa", 10)
	h.ObserveTraced(100*time.Millisecond, "bbbb", 20)
	got := h.Exemplars()
	if len(got) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(got), got)
	}
	if got[0].TraceID != "aaaa" || got[1].TraceID != "bbbb" {
		t.Errorf("exemplars out of bucket order: %+v", got)
	}
	if got[0].ValueUS != 100 || got[0].AtUS != 10 {
		t.Errorf("exemplar 0 = %+v, want value 100 µs at 10", got[0])
	}

	// Same bucket (identical duration): last trace wins.
	h.ObserveTraced(100*time.Microsecond, "cccc", 30)
	got = h.Exemplars()
	if len(got) != 2 || got[0].TraceID != "cccc" {
		t.Errorf("replacement exemplar = %+v, want cccc first", got)
	}

	// Empty trace ids observe without claiming a slot.
	h.ObserveTraced(time.Second, "", 40)
	if got := h.Exemplars(); len(got) != 2 {
		t.Errorf("empty trace id claimed an exemplar slot: %+v", got)
	}
	if n := h.Hist.Count(); n != 5 {
		t.Errorf("histogram counted %d observations, want 5", n)
	}

	// The exemplar's bucket must agree with the histogram's indexing.
	var idx ExemplarHistogram
	for _, d := range []time.Duration{0, time.Nanosecond, time.Microsecond, time.Second, 42 * time.Minute} {
		idx.ObserveTraced(d, "t", 1)
		counts := idx.Hist.Buckets()
		if counts[bucketIndex(d)] == 0 {
			t.Errorf("duration %v: bucket %d empty after ObserveTraced", d, bucketIndex(d))
		}
	}
}
