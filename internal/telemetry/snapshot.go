package telemetry

import (
	"sort"
	"time"
)

// Snapshot is a consistent-enough view of a live Recorder, cheap to take
// while the engine keeps running: counters are atomic loads, rings are
// copied without locks, and the producer is never blocked — the snapshot
// itself obeys the observer-effect budget.
type Snapshot struct {
	TakenAt       time.Time       `json:"taken_at"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Steps         int64           `json:"steps"`
	Workers       int             `json:"workers"`
	Dropped       int64           `json:"dropped_events"`
	Phases        []PhaseSnapshot `json:"phases"`
	PerWorker     []WorkerView    `json:"per_worker"`
	// Recent holds the most recent decoded events across all rings, oldest
	// first, capped by the Snapshot call's limit.
	Recent []Event `json:"recent_events,omitempty"`
}

// PhaseSnapshot aggregates one phase's wall-time histogram.
type PhaseSnapshot struct {
	Phase        string   `json:"phase"`
	Count        int64    `json:"count"`
	TotalSeconds float64  `json:"total_seconds"`
	MeanMicros   float64  `json:"mean_us"`
	P50Micros    float64  `json:"p50_us"`
	P90Micros    float64  `json:"p90_us"`
	P99Micros    float64  `json:"p99_us"`
	Buckets      []uint64 `json:"buckets,omitempty"`
}

// WorkerView is one worker's accumulated counters and per-phase busy time.
type WorkerView struct {
	Worker       int       `json:"worker"`
	Chunks       int64     `json:"chunks"`
	Steals       int64     `json:"steals"`
	Parks        int64     `json:"parks"`
	ParkSeconds  float64   `json:"park_seconds"`
	BusySeconds  []float64 `json:"busy_seconds_per_phase"`
	BusyP99Micro []float64 `json:"busy_p99_us_per_phase"`
	// Barrier-straggler blame (coordinator-attributed at every phase
	// barrier): how many phase instances this worker finished last, split
	// per phase, and the total time it held barriers past the median worker.
	Straggler        int64   `json:"straggler_phases"`
	StragglerByPhase []int64 `json:"straggler_by_phase"`
	LatenessSeconds  float64 `json:"lateness_seconds"`
}

// Snapshot captures the recorder state. recentEvents caps how many decoded
// ring events are included (0 = none).
func (r *Recorder) Snapshot(recentEvents int) Snapshot {
	snap := Snapshot{
		TakenAt:       time.Now(),
		UptimeSeconds: r.Uptime().Seconds(),
		Steps:         r.steps.Load(),
		Workers:       r.Workers(),
		Dropped:       r.dropped.Load(),
	}
	coord := r.coord()
	for ph, name := range r.phases {
		h := &coord.hist[ph]
		snap.Phases = append(snap.Phases, PhaseSnapshot{
			Phase:        name,
			Count:        h.Count(),
			TotalSeconds: h.Sum().Seconds(),
			MeanMicros:   micros(h.Mean()),
			P50Micros:    micros(h.Quantile(0.50)),
			P90Micros:    micros(h.Quantile(0.90)),
			P99Micros:    micros(h.Quantile(0.99)),
			Buckets:      h.Buckets(),
		})
	}
	for w := 0; w < r.Workers(); w++ {
		s := &r.shards[w]
		wv := WorkerView{
			Worker:      w,
			Chunks:      s.chunks.Load(),
			Steals:      s.steals.Load(),
			Parks:       s.parks.Load(),
			ParkSeconds: time.Duration(s.parkNanos.Load()).Seconds(),
		}
		for ph := range r.phases {
			wv.BusySeconds = append(wv.BusySeconds, s.hist[ph].Sum().Seconds())
			wv.BusyP99Micro = append(wv.BusyP99Micro, micros(s.hist[ph].Quantile(0.99)))
			b := s.blame[ph].Load()
			wv.StragglerByPhase = append(wv.StragglerByPhase, b)
			wv.Straggler += b
		}
		wv.LatenessSeconds = time.Duration(s.lateNanos.Load()).Seconds()
		snap.PerWorker = append(snap.PerWorker, wv)
	}
	if recentEvents > 0 {
		perShard := recentEvents/len(r.shards) + 1
		for i := range r.shards {
			owner := i
			if i == len(r.shards)-1 {
				owner = -1 // coordinator
			}
			for _, ev := range r.shards[i].ring.snapshot(perShard) {
				snap.Recent = append(snap.Recent, r.decode(owner, ev))
			}
		}
		sort.SliceStable(snap.Recent, func(i, j int) bool {
			return snap.Recent[i].AtUS < snap.Recent[j].AtUS
		})
		if len(snap.Recent) > recentEvents {
			snap.Recent = snap.Recent[len(snap.Recent)-recentEvents:]
		}
	}
	return snap
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
