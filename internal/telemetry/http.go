package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the telemetry HTTP surface for a live recorder:
//
//	/telemetry.json  expvar-style JSON snapshot (what cmd/mwtop consumes)
//	/metrics         Prometheus text exposition
//	/debug/pprof/    the standard profiles; worker goroutines carry
//	                 mw_pool/mw_worker pprof labels, so CPU profiles split
//	                 per worker
//	/                a tiny index
//
// The snapshot endpoints read only atomic state, so hitting them while a
// simulation runs costs the engine nothing but cache traffic.
func Handler(r *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, req *http.Request) {
		events := 64
		if s := req.URL.Query().Get("events"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("events=%q: not an integer", s), http.StatusBadRequest)
				return
			}
			// Clamp to [1, total ring capacity]: negative or zero asks for
			// nothing useful, and more events than the rings hold cannot
			// exist.
			if n < 1 {
				n = 1
			}
			if m := r.EventCapacity(); n > m {
				n = m
			}
			events = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot(events))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writePrometheus(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "mw telemetry — %d workers, step %d, up %.1fs\n\n"+
			"  /telemetry.json   JSON snapshot (mwtop)\n"+
			"  /metrics          Prometheus text\n"+
			"  /debug/pprof/     profiles (workers labeled mw_worker=N)\n",
			r.Workers(), r.Steps(), r.Uptime().Seconds())
	})
	return mux
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port) and
// returns the server and the bound address. The server runs until Close.
func Serve(addr string, r *Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// writePrometheus renders the recorder as Prometheus text exposition.
func writePrometheus(w http.ResponseWriter, r *Recorder) {
	snap := r.Snapshot(0)
	fmt.Fprintf(w, "# TYPE mw_steps_total counter\nmw_steps_total %d\n", snap.Steps)
	fmt.Fprintf(w, "# TYPE mw_uptime_seconds gauge\nmw_uptime_seconds %g\n", snap.UptimeSeconds)
	fmt.Fprintf(w, "# TYPE mw_dropped_events_total counter\nmw_dropped_events_total %d\n", snap.Dropped)

	fmt.Fprintf(w, "# TYPE mw_phase_wall_seconds_total counter\n")
	for _, p := range snap.Phases {
		fmt.Fprintf(w, "mw_phase_wall_seconds_total{phase=%q} %g\n", p.Phase, p.TotalSeconds)
	}
	fmt.Fprintf(w, "# TYPE mw_phase_count_total counter\n")
	for _, p := range snap.Phases {
		fmt.Fprintf(w, "mw_phase_count_total{phase=%q} %d\n", p.Phase, p.Count)
	}
	// Log₂ histogram as a Prometheus cumulative histogram; bucket b's upper
	// bound is 2^b ns expressed in seconds.
	fmt.Fprintf(w, "# TYPE mw_phase_wall_duration_seconds histogram\n")
	for _, p := range snap.Phases {
		var cum uint64
		for b, c := range p.Buckets {
			cum += c
			if c == 0 && b != len(p.Buckets)-1 {
				continue
			}
			le := math.Exp2(float64(b)) / 1e9
			fmt.Fprintf(w, "mw_phase_wall_duration_seconds_bucket{phase=%q,le=%q} %d\n",
				p.Phase, fmt.Sprintf("%g", le), cum)
		}
		fmt.Fprintf(w, "mw_phase_wall_duration_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", p.Phase, cum)
		fmt.Fprintf(w, "mw_phase_wall_duration_seconds_sum{phase=%q} %g\n", p.Phase, p.TotalSeconds)
		fmt.Fprintf(w, "mw_phase_wall_duration_seconds_count{phase=%q} %d\n", p.Phase, p.Count)
	}

	fmt.Fprintf(w, "# TYPE mw_worker_chunks_total counter\n")
	for _, wv := range snap.PerWorker {
		fmt.Fprintf(w, "mw_worker_chunks_total{worker=\"%d\"} %d\n", wv.Worker, wv.Chunks)
	}
	fmt.Fprintf(w, "# TYPE mw_worker_steals_total counter\n")
	for _, wv := range snap.PerWorker {
		fmt.Fprintf(w, "mw_worker_steals_total{worker=\"%d\"} %d\n", wv.Worker, wv.Steals)
	}
	fmt.Fprintf(w, "# TYPE mw_worker_parks_total counter\n")
	for _, wv := range snap.PerWorker {
		fmt.Fprintf(w, "mw_worker_parks_total{worker=\"%d\"} %d\n", wv.Worker, wv.Parks)
	}
	fmt.Fprintf(w, "# TYPE mw_worker_park_seconds_total counter\n")
	for _, wv := range snap.PerWorker {
		fmt.Fprintf(w, "mw_worker_park_seconds_total{worker=\"%d\"} %g\n", wv.Worker, wv.ParkSeconds)
	}
	fmt.Fprintf(w, "# TYPE mw_worker_busy_seconds_total counter\n")
	for _, wv := range snap.PerWorker {
		for ph, s := range wv.BusySeconds {
			fmt.Fprintf(w, "mw_worker_busy_seconds_total{worker=\"%d\",phase=%q} %g\n",
				wv.Worker, snap.Phases[ph].Phase, s)
		}
	}
}
