package telemetry

import (
	"sync"
	"time"
)

// NaiveSink is the deliberately JaMON-like control monitor for the
// observer-native experiment: every event from every worker serializes on
// one mutex and updates string-keyed maps, stamping a time.Now() inside the
// critical section — the synchronized-monitor design whose updates "were
// serializing the overall performance of MW" (§IV-A). It exists to be
// measured, not used: the experiment shows it blowing the overhead budget
// the ring-buffer Recorder stays under.
type NaiveSink struct {
	mu     sync.Mutex
	phases []string
	counts map[string]int64
	nanos  map[string]int64
	last   map[string]time.Time
	steps  int64
}

// NewNaiveSink creates the control monitor for the given phase-name table.
func NewNaiveSink(phases []string) *NaiveSink {
	return &NaiveSink{
		phases: append([]string(nil), phases...),
		counts: map[string]int64{},
		nanos:  map[string]int64{},
		last:   map[string]time.Time{},
	}
}

func (n *NaiveSink) label(phase uint8) string {
	if int(phase) < len(n.phases) {
		return n.phases[phase]
	}
	return "unknown"
}

// record is the shared mutex-per-event path: map lookups, a timestamp and
// an inter-arrival update, all under one global lock.
func (n *NaiveSink) record(label string) {
	now := time.Now()
	n.mu.Lock()
	n.counts[label]++
	if prev, ok := n.last[label]; ok {
		n.nanos[label] += int64(now.Sub(prev))
	}
	n.last[label] = now
	n.mu.Unlock()
}

// PhaseBegin implements Sink.
func (n *NaiveSink) PhaseBegin(step int, phase uint8) { n.record(n.label(phase)) }

// PhaseEnd implements Sink.
func (n *NaiveSink) PhaseEnd(step int, phase uint8, wall time.Duration, workerBusy []time.Duration) {
	n.record(n.label(phase))
}

// Chunk implements Sink — the per-work-unit path the experiment hammers.
func (n *NaiveSink) Chunk(worker int, phase uint8) { n.record(n.label(phase)) }

// Steal implements Sink.
func (n *NaiveSink) Steal(worker int) { n.record("steal") }

// Park implements Sink.
func (n *NaiveSink) Park(worker int, wait time.Duration) { n.record("park") }

// StepDone implements Sink.
func (n *NaiveSink) StepDone(step int) {
	n.mu.Lock()
	n.steps = int64(step)
	n.mu.Unlock()
}

// Count returns the number of events recorded for a label.
func (n *NaiveSink) Count(label string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts[label]
}
