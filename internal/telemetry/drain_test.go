package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDrainCursorSeesEachEventOnce(t *testing.T) {
	r := NewRecorderSize(2, []string{"forces"}, 64)
	var c DrainCursor

	r.PhaseBegin(1, 0)
	r.Chunk(0, 0)
	r.Chunk(1, 0)
	r.PhaseEnd(1, 0, time.Millisecond, []time.Duration{time.Millisecond, time.Millisecond})
	r.StepDone(1)

	count := map[string]int{}
	r.Drain(&c, func(owner int, e Event) { count[e.Kind]++ })
	if count["chunk"] != 2 || count["phase-begin"] != 1 || count["phase-end"] != 1 || count["step"] != 1 {
		t.Fatalf("first drain counts = %v", count)
	}

	// A second drain with no new events yields nothing.
	n := 0
	r.Drain(&c, func(owner int, e Event) { n++ })
	if n != 0 {
		t.Fatalf("second drain returned %d events, want 0", n)
	}

	// New events after the cursor show up exactly once.
	r.Steal(1)
	r.Drain(&c, func(owner int, e Event) {
		n++
		if e.Kind != "steal" || e.Worker != 1 {
			t.Errorf("unexpected event %+v", e)
		}
	})
	if n != 1 {
		t.Fatalf("third drain returned %d events, want 1", n)
	}
	if c.Lost != 0 {
		t.Errorf("Lost = %d, want 0", c.Lost)
	}
}

func TestSeekSkipsBacklogWithoutDecoding(t *testing.T) {
	r := NewRecorderSize(2, []string{"forces"}, 64)
	var c DrainCursor

	// Backlog a seeking consumer never wants to see.
	for i := 0; i < 10; i++ {
		r.Chunk(0, 0)
	}
	r.PhaseBegin(1, 0)
	r.PhaseEnd(1, 0, time.Millisecond, []time.Duration{time.Millisecond, time.Millisecond})

	r.Seek(&c)
	n := 0
	r.Drain(&c, func(int, Event) { n++ })
	if n != 0 {
		t.Fatalf("drain after seek returned %d backlog events, want 0", n)
	}

	// Events recorded after the seek drain normally, exactly once.
	r.PhaseBegin(2, 0)
	r.Steal(1)
	kinds := map[string]int{}
	r.Drain(&c, func(owner int, e Event) { kinds[e.Kind]++ })
	if kinds["phase-begin"] != 1 || kinds["steal"] != 1 || len(kinds) != 2 {
		t.Fatalf("post-seek drain kinds = %v, want one phase-begin and one steal", kinds)
	}
	if c.Lost != 0 {
		t.Errorf("Lost = %d, want 0 (seek is a skip, not a loss)", c.Lost)
	}

	// Seek on a fresh (nil-heads) cursor also lands at the head.
	var c2 DrainCursor
	r.Seek(&c2)
	n = 0
	r.Drain(&c2, func(int, Event) { n++ })
	if n != 0 {
		t.Fatalf("fresh-cursor seek still drained %d events, want 0", n)
	}
}

func TestDrainCountsOverwrittenEventsAsLost(t *testing.T) {
	r := NewRecorderSize(1, []string{"forces"}, 8)
	var c DrainCursor
	r.Drain(&c, func(int, Event) {}) // position at head
	for i := 0; i < 20; i++ {
		r.Chunk(0, 0)
	}
	n := 0
	r.Drain(&c, func(int, Event) { n++ })
	if n != 8 {
		t.Errorf("drained %d events from an 8-slot ring, want 8", n)
	}
	if c.Lost != 12 {
		t.Errorf("Lost = %d, want 12", c.Lost)
	}
}

func TestStragglerAttribution(t *testing.T) {
	r := NewRecorder(4, []string{"forces", "integrate"})
	busy := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond}
	r.PhaseEnd(1, 0, 9*time.Millisecond, busy)
	r.PhaseEnd(1, 1, 9*time.Millisecond, busy)
	r.PhaseEnd(2, 0, 9*time.Millisecond, []time.Duration{9 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 1 * time.Millisecond})

	snap := r.Snapshot(0)
	w3 := snap.PerWorker[3]
	if w3.Straggler != 2 {
		t.Errorf("worker 3 straggler count = %d, want 2", w3.Straggler)
	}
	if w3.StragglerByPhase[0] != 1 || w3.StragglerByPhase[1] != 1 {
		t.Errorf("worker 3 per-phase blame = %v, want [1 1]", w3.StragglerByPhase)
	}
	// Lateness per instance: 9ms − median(1,2,3,9)=3ms → 6ms; two instances.
	if got, want := w3.LatenessSeconds, 0.012; got < want*0.99 || got > want*1.01 {
		t.Errorf("worker 3 lateness = %gs, want %gs", got, want)
	}
	if snap.PerWorker[0].Straggler != 1 {
		t.Errorf("worker 0 straggler count = %d, want 1", snap.PerWorker[0].Straggler)
	}
	if snap.PerWorker[1].Straggler != 0 {
		t.Errorf("worker 1 straggler count = %d, want 0", snap.PerWorker[1].Straggler)
	}
}

func TestStragglerSkipsSerialRuns(t *testing.T) {
	r := NewRecorder(1, []string{"forces"})
	r.PhaseEnd(1, 0, time.Millisecond, []time.Duration{time.Millisecond})
	if got := r.Snapshot(0).PerWorker[0].Straggler; got != 0 {
		t.Errorf("serial run attributed a straggler (%d); one worker cannot straggle itself", got)
	}
}

func TestTelemetryJSONEventsParam(t *testing.T) {
	r := NewRecorderSize(1, []string{"forces"}, 16)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?events=10", http.StatusOK},
		{"", http.StatusOK},
		{"?events=1", http.StatusOK},
		{"?events=-5", http.StatusOK},        // clamped to 1
		{"?events=999999999", http.StatusOK}, // clamped to ring capacity
		{"?events=bogus", http.StatusBadRequest},
		{"?events=1e9", http.StatusBadRequest},
		{"?events=", http.StatusOK}, // empty = default
	} {
		resp, err := http.Get(srv.URL + "/telemetry.json" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET /telemetry.json%s: status %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
}

func TestEventCapacity(t *testing.T) {
	r := NewRecorderSize(3, []string{"forces"}, 16)
	// 3 workers + 1 coordinator shard, 16 slots each.
	if got := r.EventCapacity(); got != 64 {
		t.Errorf("EventCapacity = %d, want 64", got)
	}
}
