// Package telemetry is the engine's always-compiled-in runtime
// instrumentation layer — the "less timing-intrusive" monitor the paper's
// §IV conclusions call for. Where internal/perfmon *simulates* the Java
// tools of §IV on a model timeline, this package instruments the real Go
// engine: per-worker lock-free ring buffers of phase/chunk/steal/park
// events, log-bucketed latency histograms per phase, and an HTTP snapshot
// endpoint for live inspection (cmd/mwtop).
//
// The design budget is the lesson of §IV-A: an observer must cost so little
// that it does not distort what it measures. Every record path is a handful
// of arithmetic ops and uncontended atomic stores into per-worker state —
// no locks, no maps, no allocation (the paths are //mw:hotpath, so mwlint's
// hotalloc analyzer and the escape-budget gate enforce that). The
// `mwbench observer-native` experiment re-runs the paper's observer-effect
// methodology on this very package and gates the build on a <2% overhead,
// against a deliberately JaMON-like mutex-per-event monitor (NaiveSink)
// that demonstrably fails the same budget.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindNone marks an empty ring slot.
	KindNone Kind = iota
	// KindPhaseBegin: the coordinator started fanning out a phase.
	KindPhaseBegin
	// KindPhaseEnd: the phase barrier completed.
	KindPhaseEnd
	// KindChunk: a worker finished one work chunk.
	KindChunk
	// KindSteal: a worker took a task from another worker's deque.
	KindSteal
	// KindPark: a worker waited for work (duration in the park counters).
	KindPark
	// KindStep: a full timestep completed.
	KindStep
)

// String returns the event-kind name.
func (k Kind) String() string {
	switch k {
	case KindPhaseBegin:
		return "phase-begin"
	case KindPhaseEnd:
		return "phase-end"
	case KindChunk:
		return "chunk"
	case KindSteal:
		return "steal"
	case KindPark:
		return "park"
	case KindStep:
		return "step"
	}
	return "none"
}

// Sink receives engine instrumentation events. The engine's schedule paths
// and the pool executors call it on their hot paths, so implementations
// must be safe for concurrent use and should be cheap; the ring-buffer
// Recorder is the production implementation, NaiveSink the deliberately
// expensive control for the observer-effect experiment.
type Sink interface {
	// PhaseBegin is called by the coordinator before fanning out a phase.
	PhaseBegin(step int, phase uint8)
	// PhaseEnd is called after the phase barrier with the wall time and
	// each worker's busy time. workerBusy aliases engine storage; do not
	// retain it.
	PhaseEnd(step int, phase uint8, wall time.Duration, workerBusy []time.Duration)
	// Chunk is called by the executing worker after every work chunk.
	Chunk(worker int, phase uint8)
	// Steal is called when a worker executes a task stolen from another
	// worker's deque.
	Steal(worker int)
	// Park is called when a worker waited for work, with the wait duration.
	Park(worker int, wait time.Duration)
	// StepDone is called once per completed timestep.
	StepDone(step int)
}

// Event packing: one uint64 per event so ring slots are single atomic words
// and snapshots can never observe a torn event.
//
//	[63:61] kind   (3 bits)
//	[60:58] phase  (3 bits; 7 = no phase)
//	[57:38] step   (20 bits, wraps)
//	[37:0]  µs since recorder start (38 bits ≈ 76 h)
const (
	kindShift  = 61
	phaseShift = 58
	stepShift  = 38
	phaseNone  = 0x7
	stepMask   = 1<<20 - 1
	usMask     = 1<<38 - 1
)

//mw:hotpath
func packEvent(k Kind, phase uint8, step int, us int64) uint64 {
	return uint64(k)<<kindShift |
		uint64(phase&0x7)<<phaseShift |
		uint64(step&stepMask)<<stepShift |
		uint64(us)&usMask
}

// Event is one decoded telemetry event.
type Event struct {
	Worker int    `json:"worker"` // -1 for coordinator events
	Kind   string `json:"kind"`
	Phase  string `json:"phase,omitempty"`
	Step   int    `json:"step"`
	AtUS   int64  `json:"at_us"` // µs since recorder start
}

// ring is a single-producer lock-free ring buffer of packed events. The
// producer (one worker goroutine, or the coordinator) stores the event word
// and then advances head; slots are atomic words, so concurrent snapshot
// readers see a consistent (if slightly stale) recent-event window without
// any lock and without perturbing the producer.
type ring struct {
	mask uint64
	// head is the single-producer write cursor; only push advances it, and
	// atomiccheck enforces that no other function ever will.
	//
	//mw:ring(writer=push)
	head  atomic.Uint64
	slots []atomic.Uint64
}

func newRing(capacity int) ring {
	if capacity <= 0 {
		capacity = 4096
	}
	// Round up to a power of two for mask indexing.
	c := 1 << bits.Len(uint(capacity-1))
	return ring{mask: uint64(c - 1), slots: make([]atomic.Uint64, c)}
}

//mw:hotpath
func (r *ring) push(ev uint64) {
	h := r.head.Load() // single producer: plain load-modify-store ordering
	r.slots[h&r.mask].Store(ev)
	r.head.Store(h + 1)
}

// snapshot copies up to max most-recent events, oldest first.
func (r *ring) snapshot(max int) []uint64 {
	h := r.head.Load()
	n := int(h)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]uint64, 0, n)
	for i := h - uint64(n); i != h; i++ {
		if ev := r.slots[i&r.mask].Load(); ev != 0 {
			out = append(out, ev)
		}
	}
	return out
}

// shard is one worker's private telemetry state. Counters are written only
// by the owning worker (or, for the histograms and blame counters, only by
// the coordinator at phase barriers), so every update is an uncontended
// atomic on a line no other writer touches — the sharded-monitor design
// §IV-A found necessary.
type shard struct {
	ring      ring
	hist      []Histogram // per phase: busy time (workers), wall time (coordinator)
	chunks    atomic.Int64
	steals    atomic.Int64
	parks     atomic.Int64
	parkNanos atomic.Int64
	// Barrier-straggler blame, written by the coordinator in PhaseEnd: how
	// many phase instances this worker finished last (per phase), and the
	// total time it held the barrier past the median worker.
	blame     []atomic.Int64 // per phase: times straggler
	lateNanos atomic.Int64   // total lateness vs the median worker
	_         [24]byte       // keep neighboring shards' counters off one line
}

// Recorder is the ring-buffer Sink. One shard per worker plus a coordinator
// shard (index workers) for phase begin/end and step events.
type Recorder struct {
	start  time.Time
	phases []string
	shards []shard
	steps  atomic.Int64
	// usHint is a coarse µs-since-start clock refreshed by the coordinator
	// at every phase boundary and step. Worker-side events (chunks, steals)
	// stamp themselves from it with one atomic load instead of calling the
	// time source — on chunk rates of ~100k/s the nanotime call would be
	// most of the monitor's cost. Worker events therefore carry their
	// phase's begin time; ring order still disambiguates within a phase.
	usHint  atomic.Int64
	dropped atomic.Int64 // events with out-of-range worker ids
	// busyScratch is the coordinator-only sort buffer for the PhaseEnd
	// straggler attribution; preallocated so the attribution never touches
	// the heap on the record path.
	busyScratch []time.Duration
	released    atomic.Bool
}

// liveRings counts recorders created and not yet released. Ring storage is
// ordinary GC-managed memory, so this is a liveness ledger, not an
// allocator: a server that creates a recorder per tenant must Release each
// one on eviction, and a leak regression test can assert the count returns
// to baseline after a GC sweep (the per-tenant-ring satellite of the
// serve-observability work).
var liveRings atomic.Int64

// LiveRings returns how many recorders exist that have not been Released.
func LiveRings() int64 { return liveRings.Load() }

// NewRecorder creates a recorder for the given worker count and phase-name
// table (phase codes index into it; at most 7 phases fit the event format).
func NewRecorder(workers int, phases []string) *Recorder {
	return NewRecorderSize(workers, phases, 4096)
}

// NewRecorderSize creates a recorder with an explicit per-worker ring
// capacity (rounded up to a power of two).
func NewRecorderSize(workers int, phases []string, ringCap int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if len(phases) > 7 {
		phases = phases[:7]
	}
	r := &Recorder{
		start:       time.Now(),
		phases:      append([]string(nil), phases...),
		shards:      make([]shard, workers+1),
		busyScratch: make([]time.Duration, workers),
	}
	for i := range r.shards {
		r.shards[i].ring = newRing(ringCap)
		r.shards[i].hist = make([]Histogram, len(phases))
		r.shards[i].blame = make([]atomic.Int64, len(phases))
	}
	liveRings.Add(1)
	return r
}

// Release marks the recorder's rings dead in the LiveRings ledger.
// Idempotent. It deliberately does not nil out the ring storage — snapshot
// readers and late producers may still hold the recorder, and the memory is
// reclaimed by the GC once the last reference drops; Release exists so that
// owners (one recorder per tenant session in internal/serve) account for
// that drop explicitly and tests can catch eviction paths that forget to.
func (r *Recorder) Release() {
	if r.released.CompareAndSwap(false, true) {
		liveRings.Add(-1)
	}
}

// Workers returns the worker count the recorder was sized for.
func (r *Recorder) Workers() int { return len(r.shards) - 1 }

// PhaseNames returns the phase-name table.
func (r *Recorder) PhaseNames() []string { return r.phases }

//mw:hotpath
func (r *Recorder) nowUS() int64 { return int64(time.Since(r.start) / time.Microsecond) }

//mw:hotpath
func (r *Recorder) coord() *shard { return &r.shards[len(r.shards)-1] }

// PhaseBegin implements Sink: one event in the coordinator ring, and a
// refresh of the coarse clock worker events stamp themselves from.
//
//mw:hotpath
func (r *Recorder) PhaseBegin(step int, phase uint8) {
	us := r.nowUS()
	r.usHint.Store(us)
	r.coord().ring.push(packEvent(KindPhaseBegin, phase, step, us))
}

// PhaseEnd implements Sink: an event in the coordinator ring, the wall time
// into the coordinator's per-phase histogram, and each worker's busy time
// into that worker's per-phase histogram. Called only by the coordinator,
// so the worker histograms stay single-writer.
//
//mw:hotpath
func (r *Recorder) PhaseEnd(step int, phase uint8, wall time.Duration, workerBusy []time.Duration) {
	us := r.nowUS()
	r.usHint.Store(us)
	c := r.coord()
	c.ring.push(packEvent(KindPhaseEnd, phase, step, us))
	if int(phase) >= len(c.hist) {
		return
	}
	c.hist[phase].Observe(wall)
	n := len(r.shards) - 1
	if len(workerBusy) < n {
		n = len(workerBusy)
	}
	for w := 0; w < n; w++ {
		r.shards[w].hist[phase].Observe(workerBusy[w])
	}
	r.attributeStraggler(phase, workerBusy[:n])
}

// attributeStraggler charges this phase instance's barrier critical path to
// the worker that finished last: the straggler's blame counter for the phase
// is bumped and its lateness — how long it kept the barrier closed past the
// median worker — accumulated. Coordinator-only, allocation-free (the sort
// scratch is preallocated), so it rides PhaseEnd without touching the
// observer budget.
//
//mw:hotpath
func (r *Recorder) attributeStraggler(phase uint8, busy []time.Duration) {
	if len(busy) < 2 {
		return
	}
	straggler := 0
	for w := 1; w < len(busy); w++ {
		if busy[w] > busy[straggler] {
			straggler = w
		}
	}
	// Insertion sort into the scratch buffer: worker counts are single
	// digits, so this is a handful of compares, not a heap allocation.
	s := r.busyScratch[:0]
	for _, b := range busy {
		s = append(s, b)
		for i := len(s) - 1; i > 0 && s[i-1] > s[i]; i-- {
			s[i-1], s[i] = s[i], s[i-1]
		}
	}
	late := busy[straggler] - s[len(s)/2]
	sh := &r.shards[straggler]
	sh.blame[phase].Add(1)
	sh.lateNanos.Add(int64(late))
}

// Chunk implements Sink: the finest-grained event, one ring push in the
// executing worker's shard. This is the path whose cost the observer-native
// experiment gates.
//
//mw:hotpath
func (r *Recorder) Chunk(worker int, phase uint8) {
	if worker < 0 || worker >= len(r.shards)-1 {
		r.dropped.Add(1)
		return
	}
	s := &r.shards[worker]
	s.ring.push(packEvent(KindChunk, phase, int(r.steps.Load()), r.usHint.Load()))
	s.chunks.Add(1)
}

// Steal implements Sink.
//
//mw:hotpath
func (r *Recorder) Steal(worker int) {
	if worker < 0 || worker >= len(r.shards)-1 {
		r.dropped.Add(1)
		return
	}
	s := &r.shards[worker]
	s.ring.push(packEvent(KindSteal, phaseNone, int(r.steps.Load()), r.usHint.Load()))
	s.steals.Add(1)
}

// Park implements Sink.
//
//mw:hotpath
func (r *Recorder) Park(worker int, wait time.Duration) {
	if worker < 0 || worker >= len(r.shards)-1 {
		r.dropped.Add(1)
		return
	}
	s := &r.shards[worker]
	s.ring.push(packEvent(KindPark, phaseNone, int(r.steps.Load()), r.nowUS()))
	s.parks.Add(1)
	s.parkNanos.Add(int64(wait))
}

// StepDone implements Sink.
//
//mw:hotpath
func (r *Recorder) StepDone(step int) {
	us := r.nowUS()
	r.usHint.Store(us)
	r.steps.Store(int64(step))
	r.coord().ring.push(packEvent(KindStep, phaseNone, step, us))
}

// Steps returns the last completed timestep.
func (r *Recorder) Steps() int64 { return r.steps.Load() }

// NowMicros returns the recorder's clock: µs since it was created — the
// timebase every recorded event is stamped in.
func (r *Recorder) NowMicros() int64 { return r.nowUS() }

// EventCapacity returns the total number of ring slots across all shards —
// the most events one Snapshot or Drain can ever return.
func (r *Recorder) EventCapacity() int {
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].ring.slots)
	}
	return n
}

// DrainCursor remembers per-shard ring positions between Drain calls. The
// zero value starts at the beginning of every ring.
type DrainCursor struct {
	heads []uint64
	// Lost counts events that were overwritten before the cursor reached
	// them (the consumer drained too rarely for the ring capacity).
	Lost int64
}

// Drain decodes every event recorded since the cursor's previous position
// and advances the cursor. It reads only atomic ring state, so it is safe
// to call while producers keep recording; events pushed concurrently are
// picked up by the next call. This is the feed for internal/tracing: the
// span builder drains at step barriers, off the workers' critical paths.
func (r *Recorder) Drain(c *DrainCursor, emit func(owner int, e Event)) {
	if c.heads == nil {
		c.heads = make([]uint64, len(r.shards))
	}
	for i := range r.shards {
		rg := &r.shards[i].ring
		h := rg.head.Load()
		lo := c.heads[i]
		if h-lo > uint64(len(rg.slots)) {
			c.Lost += int64(h - lo - uint64(len(rg.slots)))
			lo = h - uint64(len(rg.slots))
		}
		owner := i
		if i == len(r.shards)-1 {
			owner = -1 // coordinator shard
		}
		for j := lo; j != h; j++ {
			if ev := rg.slots[j&rg.mask].Load(); ev != 0 {
				emit(owner, r.decode(owner, ev))
			}
		}
		c.heads[i] = h
	}
}

// Seek advances the cursor to every ring's current head without decoding
// the skipped events — O(shards), not O(backlog). The serve layer uses it
// to open a traced request's drain window: whatever untraced requests left
// in the rings is skipped in constant time instead of being walked and
// filtered out, which matters because the skip runs inside the traced
// request's compute window (the observer-overhead gate watches it).
func (r *Recorder) Seek(c *DrainCursor) {
	if c.heads == nil {
		c.heads = make([]uint64, len(r.shards))
	}
	for i := range r.shards {
		c.heads[i] = r.shards[i].ring.head.Load()
	}
}

// Uptime returns the time since the recorder was created.
func (r *Recorder) Uptime() time.Duration { return time.Since(r.start) }

// decode unpacks a packed event from shard owner (worker index, or -1 for
// the coordinator shard).
func (r *Recorder) decode(owner int, ev uint64) Event {
	k := Kind(ev >> kindShift)
	ph := uint8(ev>>phaseShift) & 0x7
	e := Event{
		Worker: owner,
		Kind:   k.String(),
		Step:   int(ev >> stepShift & stepMask),
		AtUS:   int64(ev & usMask),
	}
	if ph != phaseNone && int(ph) < len(r.phases) {
		e.Phase = r.phases[ph]
	}
	return e
}
