//go:build linux

package tracing

import (
	"runtime"
	"syscall"
	"unsafe"
)

// sysGetCPU is the getcpu(2) syscall number. The stdlib syscall package's
// frozen zsysnum tables predate getcpu on some GOARCHes (notably amd64,
// whose list stops at 303), so the number is carried here per architecture;
// 0 marks an arch we don't know, and the probe reports unsupported.
var sysGetCPU = map[string]uintptr{
	"amd64":   309,
	"386":     318,
	"arm":     345,
	"arm64":   168,
	"riscv64": 168,
	"loong64": 168,
	"ppc64":   302,
	"ppc64le": 302,
	"s390x":   311,
	"mips64":  5271,
}[runtime.GOARCH]

// currentCPU returns the CPU the calling goroutine's thread is running on,
// via the getcpu syscall, or -1 if unsupported or failing. RawSyscall is
// correct here: getcpu never blocks, so the runtime need not be told the
// thread may stall. ~50 ns — taken 1-in-K chunks it is invisible next to
// the chunk itself.
func currentCPU() int32 {
	if sysGetCPU == 0 {
		return -1
	}
	var cpu uint32
	if _, _, errno := syscall.RawSyscall(sysGetCPU,
		uintptr(unsafe.Pointer(&cpu)), 0, 0); errno != 0 {
		return -1
	}
	return int32(cpu)
}
