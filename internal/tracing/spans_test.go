package tracing

import (
	"bytes"
	"testing"
)

// TestWriteSpansValid checks WriteSpans' core promise: properly nested or
// disjoint spans per track come out as a trace that ValidateChromeTrace
// accepts, across multiple tracks, nesting, zero-length and clamped spans.
func TestWriteSpansValid(t *testing.T) {
	tracks := []Track{
		{Tid: 0, Name: "batcher", SortIndex: -1},
		{Tid: 1, Name: "lane 0"},
		{Tid: 2, Name: "lane 1"},
	}
	spans := []Span{
		// Disjoint batches on track 0.
		{Name: "batch", Tid: 0, BeginUS: 10, EndUS: 50},
		{Name: "batch", Tid: 0, BeginUS: 60, EndUS: 90},
		// A nested request tree on track 1 (same begin as parent, shorter).
		{Name: "request", Tid: 1, BeginUS: 10, EndUS: 100, Args: map[string]any{"trace_id": "t1"}},
		{Name: "queue-wait", Tid: 1, BeginUS: 10, EndUS: 40},
		{Name: "compute", Tid: 1, BeginUS: 40, EndUS: 95},
		{Name: "phase", Tid: 1, BeginUS: 41, EndUS: 41}, // zero length
		// Track 2 overlaps track 1 in time — lanes exist for exactly this.
		{Name: "request", Tid: 2, BeginUS: 5, EndUS: 80},
		// End before begin: clamped, not rejected.
		{Name: "truncated", Tid: 2, BeginUS: 90, EndUS: 30},
	}
	instants := []Instant{{Name: "mark", Tid: 0, AtUS: 55}}

	var buf bytes.Buffer
	if err := WriteSpans(&buf, "test", tracks, spans, instants); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	st, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted trace fails validation: %v\n%s", err, buf.Bytes())
	}
	if st.Spans != len(spans) {
		t.Errorf("validator counted %d spans, want %d", st.Spans, len(spans))
	}
	if st.Instants != 1 {
		t.Errorf("validator counted %d instants, want 1", st.Instants)
	}
	if st.Tracks != 3 {
		t.Errorf("validator counted %d tracks, want 3", st.Tracks)
	}
	if st.TrackNames[0] != "batcher" || st.TrackNames[2] != "lane 1" {
		t.Errorf("track names = %v", st.TrackNames)
	}
}

// TestWriteSpansEmpty: no spans at all must still be a valid (metadata-only)
// trace — the /v1/trace body of a freshly booted server.
func TestWriteSpansEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, "empty", []Track{{Tid: 0, Name: "batcher"}}, nil, nil); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty trace fails validation: %v", err)
	}
}
