package tracing

import (
	"bytes"
	"testing"

	"mw/internal/core"
	"mw/internal/telemetry"
	"mw/internal/workload"
)

// TestEngineTraceExport drives the real engine with a Tracer installed and
// checks that the exported timeline is a valid Chrome trace with one track
// per worker plus the barrier track — the CI trace-smoke in miniature.
func TestEngineTraceExport(t *testing.T) {
	b := workload.LJGas(4, 120, true)
	cfg := b.Cfg
	cfg.Threads = 4
	cfg.Partition = core.PartitionGuided
	rec := telemetry.NewRecorder(cfg.Threads, core.PhaseNames())
	tr := New(rec, Config{RingSteps: 32, AnomalyFactor: -1, AffinityEvery: 16})
	cfg.Telemetry = tr

	sim, err := core.New(b.Sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	const steps = 8
	sim.Run(steps)

	recs := tr.Records()
	if len(recs) != steps {
		t.Fatalf("traced %d steps, want %d", len(recs), steps)
	}
	for _, r := range recs {
		if len(r.Phases) != int(core.NumPhases) {
			t.Fatalf("step %d: %d phase spans, want %d", r.Step, len(r.Phases), core.NumPhases)
		}
		for _, sp := range r.Phases {
			if sp.EndUS < sp.BeginUS {
				t.Errorf("step %d %s: span ends before it begins", r.Step, sp.Phase)
			}
			if len(sp.BusyUS) != cfg.Threads {
				t.Errorf("step %d %s: %d busy entries, want %d", r.Step, sp.Phase, len(sp.BusyUS), cfg.Threads)
			}
			if sp.Straggler < 0 || sp.Straggler >= cfg.Threads {
				t.Errorf("step %d %s: straggler %d out of range", r.Step, sp.Phase, sp.Straggler)
			}
		}
		if len(r.Events) == 0 {
			t.Errorf("step %d: no ring events attached", r.Step)
		}
	}

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("engine trace invalid: %v", err)
	}
	if st.Tracks != cfg.Threads+1 {
		t.Errorf("tracks = %d, want %d", st.Tracks, cfg.Threads+1)
	}
	if st.Spans < steps*int(core.NumPhases) {
		t.Errorf("spans = %d, want at least %d (coordinator spans alone)", st.Spans, steps*int(core.NumPhases))
	}

	// The telemetry snapshot must carry the blame counters mwtop renders.
	snap := rec.Snapshot(0)
	var blamed int64
	for _, wv := range snap.PerWorker {
		blamed += wv.Straggler
	}
	if blamed == 0 {
		t.Error("no straggler attribution in snapshot after a parallel run")
	}
}
