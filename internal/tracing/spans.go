package tracing

import (
	"encoding/json"
	"io"
	"sort"
)

// This file generalizes the Chrome-trace writer: where chrometrace.go lays
// out engine StepRecords, WriteSpans accepts arbitrary caller-built span
// trees (internal/serve uses it to export per-request span trees stitched
// next to the batcher track). The emitted JSON passes ValidateChromeTrace's
// structural invariants as long as the caller's spans obey the one rule a
// B/E timeline imposes: spans sharing a track must be properly nested or
// disjoint — partial overlap on one track is unrepresentable.

// Track declares one tid's metadata in an exported trace.
type Track struct {
	Tid  int
	Name string
	// SortIndex orders tracks in the viewer (lower = higher). Zero is fine.
	SortIndex int
}

// Span is one B/E interval on a track. EndUS < BeginUS is clamped to a
// zero-length span rather than rejected — truncated requests still render.
type Span struct {
	Name    string
	Cat     string
	Tid     int
	BeginUS int64
	EndUS   int64
	Args    map[string]any
}

// Instant is one "i" mark on a track.
type Instant struct {
	Name string
	Cat  string
	Tid  int
	AtUS int64
	Args map[string]any
}

// WriteSpans exports the spans and instants as Chrome trace-event JSON for
// the named process. Spans on one track must be properly nested or
// disjoint; within that contract the emission order (parents' B before
// children's, children's E before parents') and the per-track timestamp
// monotonicity demanded by ValidateChromeTrace hold by construction.
func WriteSpans(w io.Writer, process string, tracks []Track, spans []Span, instants []Instant) error {
	events := make([]chromeEvent, 0, len(tracks)+2*len(spans)+len(instants)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": process},
	})
	for _, t := range tracks {
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: t.Tid,
				Args: map[string]any{"name": t.Name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: tracePid, Tid: t.Tid,
				Args: map[string]any{"sort_index": t.SortIndex}})
	}

	// Per-track emission: sort (begin asc, end desc) so parents precede
	// their children, then close spans with a stack as later begins pass
	// their ends. The resulting per-track sequence is timestamp
	// non-decreasing, so one global stable sort by TS interleaves tracks
	// without breaking any track's order.
	byTid := map[int][]Span{}
	for _, sp := range spans {
		if sp.EndUS < sp.BeginUS {
			sp.EndUS = sp.BeginUS
		}
		byTid[sp.Tid] = append(byTid[sp.Tid], sp)
	}
	var data []chromeEvent
	for _, tspans := range byTid {
		sort.SliceStable(tspans, func(i, j int) bool {
			if tspans[i].BeginUS != tspans[j].BeginUS {
				return tspans[i].BeginUS < tspans[j].BeginUS
			}
			return tspans[i].EndUS > tspans[j].EndUS
		})
		var stack []Span
		closePast := func(ts int64) {
			for len(stack) > 0 && stack[len(stack)-1].EndUS <= ts {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				data = append(data, chromeEvent{
					Name: top.Name, Cat: top.Cat, Ph: "E",
					TS: top.EndUS, Pid: tracePid, Tid: top.Tid})
			}
		}
		for _, sp := range tspans {
			closePast(sp.BeginUS)
			data = append(data, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "B",
				TS: sp.BeginUS, Pid: tracePid, Tid: sp.Tid, Args: sp.Args})
			stack = append(stack, sp)
		}
		closePast(int64(1)<<62 - 1)
	}
	for _, in := range instants {
		data = append(data, chromeEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i", S: "t",
			TS: in.AtUS, Pid: tracePid, Tid: in.Tid, Args: in.Args})
	}
	sort.SliceStable(data, func(i, j int) bool { return data[i].TS < data[j].TS })
	events = append(events, data...)

	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
