package tracing

// AffinityView is one worker's goroutine→CPU placement statistics from the
// chunk-ride probe — the engine-native §IV-C trace. Samples land on whatever
// CPU the worker goroutine's OS thread was running on at probe time, so the
// per-CPU row is the real engine's affinity matrix, next to the simulated
// perfmon threadview.
type AffinityView struct {
	Worker     int     `json:"worker"`
	Samples    int64   `json:"samples"`
	Migrations int64   `json:"migrations"`
	LastCPU    int32   `json:"last_cpu"` // -1 before the first sample
	PerCPU     []int64 `json:"per_cpu"`
}

// Affinity returns the per-worker affinity matrix accumulated so far. Safe
// while the engine runs (atomic reads only). Empty samples on non-Linux
// builds, where the getcpu probe is unavailable.
func (t *Tracer) Affinity() []AffinityView {
	out := make([]AffinityView, len(t.aff))
	for w := range t.aff {
		a := &t.aff[w]
		v := AffinityView{
			Worker:     w,
			Samples:    a.samples.Load(),
			Migrations: a.migrations.Load(),
			LastCPU:    a.lastCPU.Load(),
			PerCPU:     make([]int64, len(a.perCPU)),
		}
		for c := range a.perCPU {
			v.PerCPU[c] = a.perCPU[c].Load()
		}
		out[w] = v
	}
	return out
}

// AffinitySupported reports whether the getcpu probe works on this platform.
func AffinitySupported() bool { return currentCPU() >= 0 }
