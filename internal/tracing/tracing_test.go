package tracing

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mw/internal/telemetry"
)

var testPhases = []string{"predictor", "neighbor-check", "force", "reduce", "corrector"}

// driveStep pushes one synthetic engine step through the tracer: every phase
// begins and ends with the given per-worker busy times, then the step
// completes. busy[phase][worker].
func driveStep(t *Tracer, step int, busy [][]time.Duration) {
	for ph := range busy {
		t.PhaseBegin(step, uint8(ph))
		wall := time.Duration(0)
		for _, b := range busy[ph] {
			if b > wall {
				wall = b
			}
		}
		t.PhaseEnd(step, uint8(ph), wall, busy[ph])
	}
	t.StepDone(step)
}

func TestTracerBuildsStepRecords(t *testing.T) {
	rec := telemetry.NewRecorder(3, testPhases)
	tr := New(rec, Config{RingSteps: 8, AnomalyFactor: -1})
	for step := 1; step <= 5; step++ {
		busy := [][]time.Duration{
			{1 * time.Millisecond, 2 * time.Millisecond, 9 * time.Millisecond},
			{1 * time.Millisecond, 1 * time.Millisecond, 1 * time.Millisecond},
		}
		driveStep(tr, step, busy)
	}
	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if got := tr.TotalSteps(); got != 5 {
		t.Fatalf("TotalSteps = %d, want 5", got)
	}
	for i, r := range recs {
		if r.Step != i+1 {
			t.Errorf("record %d: step %d, want %d (oldest first)", i, r.Step, i+1)
		}
		if len(r.Phases) != 2 {
			t.Fatalf("record %d: %d phase spans, want 2", i, len(r.Phases))
		}
		sp := r.Phases[0]
		if sp.Phase != "predictor" || sp.EndUS < sp.BeginUS {
			t.Errorf("record %d: bad span %+v", i, sp)
		}
		if sp.Straggler != 2 {
			t.Errorf("record %d: straggler = %d, want 2 (busiest worker)", i, sp.Straggler)
		}
		// lateness = 9ms − median(1,2,9)=2ms = 7ms
		if sp.LatenessUS != 7000 {
			t.Errorf("record %d: lateness %d µs, want 7000", i, sp.LatenessUS)
		}
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	rec := telemetry.NewRecorder(2, testPhases)
	tr := New(rec, Config{RingSteps: 4, AnomalyFactor: -1})
	for step := 1; step <= 10; step++ {
		driveStep(tr, step, [][]time.Duration{{time.Millisecond, time.Millisecond}})
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want ring size 4", len(recs))
	}
	for i, want := range []int{7, 8, 9, 10} {
		if recs[i].Step != want {
			t.Errorf("record %d: step %d, want %d", i, recs[i].Step, want)
		}
	}
}

func TestChromeTraceExportGolden(t *testing.T) {
	rec := telemetry.NewRecorder(2, testPhases)
	tr := New(rec, Config{RingSteps: 8, AnomalyFactor: -1})
	for step := 1; step <= 3; step++ {
		driveStep(tr, step, [][]time.Duration{
			{4 * time.Millisecond, 1 * time.Millisecond},
			{2 * time.Millisecond, 2 * time.Millisecond},
		})
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	// Per step: 2 coordinator spans + 2 workers × (busy span + possible
	// barrier-wait). Worker 0 phase 0 busy==wall → no wait; worker 1 phase 0
	// waits; phase 1 both busy==wall → no waits. 3 steps × (2 + 4 + 1) = 21.
	if st.Spans != 21 {
		t.Errorf("spans = %d, want 21", st.Spans)
	}
	if st.Tracks != 3 {
		t.Errorf("tracks = %d, want 3 (coordinator + 2 workers)", st.Tracks)
	}
	if st.TrackNames[0] != "barrier (coordinator)" || st.TrackNames[1] != "worker 0" {
		t.Errorf("track names wrong: %v", st.TrackNames)
	}
}

func TestValidateRejectsCorruptTraces(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{"traceEvents": "nope"}`,
		"unmatched E":    `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"unclosed B":     `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`,
		"time reversal":  `{"traceEvents":[{"name":"x","ph":"i","ts":5,"pid":1,"tid":0},{"name":"y","ph":"i","ts":4,"pid":1,"tid":0}]}`,
		"E before its B": `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":0},{"name":"x","ph":"E","ts":4,"pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted corrupt trace", name)
		}
	}
}

func TestFlightRecorderTriggersExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	rec := telemetry.NewRecorder(2, testPhases)
	var flights []int
	tr := New(rec, Config{
		RingSteps:     16,
		AnomalyFactor: 16,
		MinSteps:      8,
		FlightDir:     dir,
		OnFlight:      func(path string, step int) { flights = append(flights, step) },
	})
	step := 0
	fast := func() {
		step++
		tr.PhaseBegin(step, 0)
		time.Sleep(2 * time.Millisecond)
		tr.PhaseEnd(step, 0, 2*time.Millisecond, []time.Duration{2 * time.Millisecond, time.Millisecond})
		tr.StepDone(step)
	}
	for i := 0; i < 12; i++ {
		fast()
	}
	if got := tr.Anomalies(); got != 0 {
		t.Fatalf("anomalies after warmup = %d, want 0", got)
	}
	// The synthetically slow step: 200 ms against a rolling p99 in the
	// low milliseconds — two decades above the 16× threshold.
	step++
	tr.PhaseBegin(step, 0)
	time.Sleep(200 * time.Millisecond)
	tr.PhaseEnd(step, 0, 200*time.Millisecond, []time.Duration{200 * time.Millisecond, time.Millisecond})
	tr.StepDone(step)
	for i := 0; i < 5; i++ {
		fast()
	}
	if len(flights) != 1 {
		t.Fatalf("flight dumps = %v, want exactly one (at the slow step)", flights)
	}
	if flights[0] != 13 {
		t.Errorf("flight at step %d, want 13", flights[0])
	}
	dumps, last := tr.FlightDumps()
	if dumps != 1 {
		t.Fatalf("FlightDumps = %d, want 1", dumps)
	}
	want := filepath.Join(dir, "flight-000013.trace.json")
	if last != want {
		t.Errorf("flight path %q, want %q", last, want)
	}
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if st.Spans == 0 {
		t.Error("flight dump has no spans")
	}
}

func TestBlameAggregation(t *testing.T) {
	rec := telemetry.NewRecorder(3, testPhases)
	tr := New(rec, Config{RingSteps: 8, AnomalyFactor: -1})
	// Worker 2 straggles the force phase twice; worker 0 straggles reduce
	// once.
	driveStep(tr, 1, [][]time.Duration{
		{time.Millisecond, time.Millisecond, 5 * time.Millisecond},
		{3 * time.Millisecond, time.Millisecond, time.Millisecond},
	})
	driveStep(tr, 2, [][]time.Duration{
		{time.Millisecond, time.Millisecond, 6 * time.Millisecond},
		{time.Millisecond, 2 * time.Millisecond, time.Millisecond},
	})
	rows := Blame(tr.Records(), 3, len(testPhases))
	if rows[2].Stragglers != 2 {
		t.Errorf("worker 2 stragglers = %d, want 2", rows[2].Stragglers)
	}
	if rows[2].ByPhase[0] != 2 {
		t.Errorf("worker 2 phase-0 blame = %d, want 2", rows[2].ByPhase[0])
	}
	// 5ms−1ms + 6ms−1ms = 9ms
	if rows[2].LatenessUS != 9000 {
		t.Errorf("worker 2 lateness = %d µs, want 9000", rows[2].LatenessUS)
	}
	if rows[2].WorstStep != 2 || rows[2].WorstLateUS != 5000 {
		t.Errorf("worker 2 worst = step %d %d µs, want step 2, 5000 µs", rows[2].WorstStep, rows[2].WorstLateUS)
	}
	if rows[0].Stragglers != 1 || rows[1].Stragglers != 1 {
		t.Errorf("stragglers = %d/%d for workers 0/1, want 1/1", rows[0].Stragglers, rows[1].Stragglers)
	}
	worst := WorstSteps(tr.Records(), 1)
	if len(worst) != 1 {
		t.Fatalf("WorstSteps returned %d records", len(worst))
	}
}

func TestAffinityProbe(t *testing.T) {
	if !AffinitySupported() {
		t.Skip("getcpu probe unsupported on this platform")
	}
	rec := telemetry.NewRecorder(2, testPhases)
	tr := New(rec, Config{AffinityEvery: 4, AnomalyFactor: -1})
	tr.PhaseBegin(1, 0)
	for i := 0; i < 64; i++ {
		tr.Chunk(0, 0)
	}
	tr.PhaseEnd(1, 0, time.Millisecond, []time.Duration{time.Millisecond, 0})
	tr.StepDone(1)
	aff := tr.Affinity()
	if len(aff) != 2 {
		t.Fatalf("affinity views = %d, want 2", len(aff))
	}
	if aff[0].Samples != 16 {
		t.Errorf("worker 0 samples = %d, want 64/4 = 16", aff[0].Samples)
	}
	var inMatrix int64
	for _, n := range aff[0].PerCPU {
		inMatrix += n
	}
	if inMatrix != aff[0].Samples {
		t.Errorf("matrix total %d != samples %d", inMatrix, aff[0].Samples)
	}
	if aff[1].Samples != 0 {
		t.Errorf("idle worker sampled %d times, want 0", aff[1].Samples)
	}
}

func TestAffinityDisabled(t *testing.T) {
	rec := telemetry.NewRecorder(1, testPhases)
	tr := New(rec, Config{AffinityEvery: -1, AnomalyFactor: -1})
	for i := 0; i < 64; i++ {
		tr.Chunk(0, 0)
	}
	if got := tr.Affinity()[0].Samples; got != 0 {
		t.Errorf("samples with probe disabled = %d, want 0", got)
	}
}
